// YCSB-style read-write serving over the concurrent chained hash table:
// the capstone of the epoch-reclamation + write-path subsystem.
//
// Three scenarios, every one of them a self-check that exits nonzero on
// divergence or a reclamation leak:
//
//  1. Mixed-mix grid — YCSB-B (95% read / 5% update) and YCSB-A (50/50)
//     Zipf traces run as 8 concurrent queries through the QueryScheduler,
//     for every ExecPolicy (including the kAdaptive governor) x worker
//     counts {1, 2, 4}.  Updates write a per-key deterministic value, so
//     the final table state is interleaving-independent: after the drain
//     it is compared slot-for-slot against the sequential-replay oracle.
//     Reads validate online (a payload must be the loaded or the updated
//     value of ITS OWN key — the claim-once slot discipline forbids
//     stitching key A to payload B) and must never miss (no key is ever
//     erased in the mixed grid).
//
//  2. Churn — concurrent inserts then erases (hash table AND skip list)
//     through the staged write ops, with compaction forced by deep
//     chains; gates on the structural audit, the exact surviving key set,
//     and retired == reclaimed after the final drain.
//
//  3. Open-loop — a LoadGenerator submits point read-write queries on a
//     Poisson schedule with a deadline SLO against a live table; gates on
//     online validation and outcome-counter conservation.
//
//   --quick        CI smoke: 2^12 keys, 8 ops/key, all policies
//   --workers=...  override the worker-count sweep's maximum
//   --json=PATH    perf artifact (default BENCH_ext_ycsb.json)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cycle_timer.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/zipf.h"
#include "epoch/epoch.h"
#include "hashtable/concurrent_ops.h"
#include "hashtable/concurrent_table.h"
#include "server/load_gen.h"
#include "server/query_scheduler.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_write_ops.h"

namespace amac::bench {
namespace {

/// Deterministic per-key values: LoadVal seeds the table, every update of
/// key k writes UpVal(k).  Updates being idempotent per key is what makes
/// the final state independent of the concurrent interleaving.
int64_t LoadVal(int64_t key) { return key * 2; }
int64_t UpVal(int64_t key) { return key * 2 + 1; }

enum class TraceKind : uint8_t { kRead, kUpdate };
struct TraceOp {
  TraceKind kind;
  int64_t key;
};

struct MixSpec {
  const char* name;
  double read_fraction;
};
constexpr MixSpec kMixes[] = {
    {"ycsb-b-95r-5u", 0.95},
    {"ycsb-a-50r-50u", 0.50},
};
constexpr double kZipfTheta = 0.8;

std::vector<TraceOp> MakeTrace(uint64_t num_ops, uint64_t num_keys,
                               double read_fraction, uint64_t seed) {
  ZipfGenerator zipf(num_keys, kZipfTheta, seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  const uint64_t read_cut =
      static_cast<uint64_t>(read_fraction * 1'000'000.0);
  std::vector<TraceOp> trace;
  trace.reserve(num_ops);
  for (uint64_t i = 0; i < num_ops; ++i) {
    const TraceKind kind = rng.NextBounded(1'000'000) < read_cut
                               ? TraceKind::kRead
                               : TraceKind::kUpdate;
    trace.push_back(TraceOp{kind, static_cast<int64_t>(zipf.Next())});
  }
  return trace;
}

/// Shared per-cell gate counters (morsels of different queries bump them
/// concurrently).
struct CellCounters {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> read_misses{0};
  std::atomic<uint64_t> payload_violations{0};
};

/// The YCSB stage machine: one trace op per input, reads walking the
/// chain latch-free (parking per node hop like ConcurrentFindOp), updates
/// try-acquiring the bucket latch (kRetry like UpsertOp).  No vector
/// interface — the vectorized policies take the counted scalar fallback,
/// which the JSON reports as vec_fallbacks.
class YcsbOp {
 public:
  struct State {
    const BucketNode* node;  ///< read cursor
    BucketNode* head;        ///< update target
    int64_t key;
    bool is_update;
  };

  YcsbOp(ConcurrentChainedTable& table, const TraceOp* trace,
         CellCounters* counters)
      : table_(&table),
        trace_(trace),
        counters_(counters),
        guard_(table.epochs()) {}

  void Start(State& st, uint64_t idx) {
    if (inflight_ == 0) guard_.Refresh();
    ++inflight_;
    const TraceOp& op = trace_[idx];
    st.key = op.key;
    st.is_update = op.kind == TraceKind::kUpdate;
    if (st.is_update) {
      st.head = table_->BucketForKey(st.key);
      PrefetchWrite(st.head);
    } else {
      st.node = table_->BucketForKey(st.key);
      Prefetch(st.node);
    }
  }

  StepStatus Step(State& st) {
    if (st.is_update) {
      if (!st.head->latch.TryAcquire()) return StepStatus::kRetry;
      table_->UpsertLocked(st.head, st.key, UpVal(st.key), guard_);
      st.head->latch.Release();
      counters_->updates.fetch_add(1, std::memory_order_relaxed);
      --inflight_;
      return StepStatus::kDone;
    }
    const BucketNode* node = st.node;
    for (uint32_t i = 0; i < BucketNode::kTuplesPerNode; ++i) {
      if (concurrent_detail::LoadKeyAcquire(node->tuples[i]) == st.key) {
        const int64_t payload =
            concurrent_detail::LoadPayloadRelaxed(node->tuples[i]);
        if (payload != LoadVal(st.key) && payload != UpVal(st.key)) {
          counters_->payload_violations.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
        counters_->reads.fetch_add(1, std::memory_order_relaxed);
        --inflight_;
        return StepStatus::kDone;
      }
    }
    const BucketNode* next = concurrent_detail::LoadNextAcquire(node);
    if (next == nullptr) {
      counters_->read_misses.fetch_add(1, std::memory_order_relaxed);
      counters_->reads.fetch_add(1, std::memory_order_relaxed);
      --inflight_;
      return StepStatus::kDone;
    }
    st.node = next;
    Prefetch(next);
    return StepStatus::kParked;
  }

 private:
  ConcurrentChainedTable* table_;
  const TraceOp* trace_;
  CellCounters* counters_;
  EpochGuard guard_;
  uint64_t inflight_ = 0;
};

int Fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  return 1;
}

struct CellResult {
  bool ok = false;
  double mops_per_sec = 0;
  uint64_t vec_fallbacks = 0;
  uint64_t morsels = 0;
  uint64_t reclaimed = 0;
  PerfCounters::Sample perf;  ///< merged across the cell's queries
};

/// One grid cell: fresh table, load, serve the trace as 8 concurrent
/// queries, verify online + final state + leak accounting.
CellResult RunMixCell(const std::vector<TraceOp>& trace,
                      const std::vector<uint8_t>& oracle_updated,
                      uint64_t num_keys, ExecPolicy policy, uint32_t workers,
                      uint32_t inflight) {
  CellResult result;
  EpochManager epochs;
  ConcurrentChainedTable table(num_keys, &epochs);
  {
    EpochGuard guard(&epochs);
    for (int64_t k = 1; k <= static_cast<int64_t>(num_keys); ++k) {
      table.Upsert(k, LoadVal(k), guard);
    }
  }
  CellCounters counters;
  uint64_t vec_fallbacks = 0;
  uint64_t morsels = 0;
  double wall = 0;
  {
    QuerySchedulerOptions sopt;
    sopt.num_workers = workers;
    QueryScheduler sched(sopt);
    // The serving loop's quiescence driver: idle workers advance the epoch
    // and sweep orphans, exactly how a long-lived server stays leak-free.
    sched.pool().SetIdleTask([&epochs] { epochs.AdvanceAndReclaim(); });
    QueryOptions options;
    options.policy = policy;
    options.params.inflight = inflight;
    options.params.stages = 2;
    constexpr uint64_t kQueries = 8;
    const uint64_t per_query = trace.size() / kQueries;
    std::vector<QueryTicket> tickets;
    WallTimer timer;
    for (uint64_t q = 0; q < kQueries; ++q) {
      const uint64_t begin = q * per_query;
      const uint64_t len =
          q + 1 == kQueries ? trace.size() - begin : per_query;
      const TraceOp* segment = trace.data() + begin;
      tickets.push_back(Submit(
          sched,
          Plan::FromOp(len,
                       [&table, segment, &counters](uint32_t) {
                         return YcsbOp(table, segment, &counters);
                       }),
          options));
    }
    for (const QueryTicket& t : tickets) {
      const QueryStats stats = sched.Wait(t);
      if (stats.outcome != QueryOutcome::kServed) return result;
      vec_fallbacks += stats.run.engine.vec_fallbacks;
      morsels += stats.run.morsels;
      result.perf.Merge(stats.run.perf);
    }
    wall = timer.ElapsedSeconds();
    tickets.clear();
    sched.Drain();
  }  // scheduler destroyed: every per-slot op (and its guard) is gone

  // Gates: exact op accounting, no misses (nothing is ever erased here),
  // no payload rule violations.
  uint64_t expect_updates = 0;
  for (const TraceOp& op : trace) {
    expect_updates += op.kind == TraceKind::kUpdate ? 1 : 0;
  }
  if (counters.updates.load() != expect_updates) return result;
  if (counters.reads.load() != trace.size() - expect_updates) return result;
  if (counters.read_misses.load() != 0) return result;
  if (counters.payload_violations.load() != 0) return result;
  // Final state must equal the sequential replay bit for bit.
  const auto audit = table.AuditQuiesced();
  if (!audit.ok || audit.live_tuples != num_keys) return result;
  std::vector<Tuple> live;
  table.CollectLive(&live);
  if (live.size() != num_keys) return result;
  std::sort(live.begin(), live.end(),
            [](const Tuple& a, const Tuple& b) { return a.key < b.key; });
  for (uint64_t i = 0; i < num_keys; ++i) {
    const int64_t k = static_cast<int64_t>(i + 1);
    const int64_t want = oracle_updated[i + 1] ? UpVal(k) : LoadVal(k);
    if (live[i].key != k || live[i].payload != want) return result;
  }
  epochs.ReclaimAll();
  if (epochs.retired() != epochs.reclaimed()) return result;
  result.ok = true;
  result.mops_per_sec =
      wall > 0 ? static_cast<double>(trace.size()) / wall / 1e6 : 0;
  result.vec_fallbacks = vec_fallbacks;
  result.morsels = morsels;
  result.reclaimed = epochs.reclaimed();
  return result;
}

/// Churn scenario: staged concurrent inserts then erases through the
/// QueryScheduler, on both write-path structures, with deep chains so the
/// table's tombstone compaction has something to unlink.
int RunChurn(uint64_t num_keys, uint32_t workers, JsonWriter* json) {
  constexpr uint64_t kQueries = 4;
  const uint64_t stripe = num_keys / kQueries;
  std::vector<int64_t> keys(stripe * kQueries);
  std::vector<int64_t> payloads(keys.size());
  for (uint64_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(i) + 1;
    payloads[i] = LoadVal(keys[i]);
  }
  std::vector<int64_t> odd_keys;
  for (const int64_t k : keys) {
    if (k % 2 == 1) odd_keys.push_back(k);
  }
  const uint64_t odd_stripe = odd_keys.size() / kQueries;

  QueryOptions options;
  options.policy = ExecPolicy::kAmac;
  options.params.inflight = 8;

  // Hash table: insert all stripes concurrently, then erase the odd keys.
  EpochManager epochs;
  ConcurrentChainedTable::Options topt;
  topt.target_tuples_per_slot = 8.0;  // deep chains -> compaction work
  topt.compact_tombstones = 4;
  ConcurrentChainedTable table(keys.size(), &epochs, topt);
  SkipList slist(keys.size());
  {
    QuerySchedulerOptions sopt;
    sopt.num_workers = workers;
    QueryScheduler sched(sopt);
    sched.pool().SetIdleTask([&epochs] { epochs.AdvanceAndReclaim(); });
    std::vector<QueryTicket> tickets;
    for (uint64_t q = 0; q < kQueries; ++q) {
      const int64_t* kp = keys.data() + q * stripe;
      const int64_t* pp = payloads.data() + q * stripe;
      tickets.push_back(Submit(
          sched,
          Plan::FromOp(
              stripe,
              [&table, kp, pp](uint32_t) { return UpsertOp(table, kp, pp); }),
          options));
      tickets.push_back(Submit(
          sched,
          Plan::FromOp(stripe,
                       [&slist, &epochs, kp, pp, q](uint32_t slot) {
                         return SkipInsertOp(slist, &epochs, kp, pp,
                                             /*seed=*/q * 31 + slot + 1);
                       }),
          options));
    }
    for (const QueryTicket& t : tickets) (void)sched.Wait(t);
    tickets.clear();
    for (uint64_t q = 0; q < kQueries; ++q) {
      const int64_t* kp = odd_keys.data() + q * odd_stripe;
      const uint64_t len =
          q + 1 == kQueries ? odd_keys.size() - q * odd_stripe : odd_stripe;
      tickets.push_back(Submit(
          sched,
          Plan::FromOp(len,
                       [&table, kp](uint32_t) { return EraseOp(table, kp); }),
          options));
      tickets.push_back(Submit(
          sched,
          Plan::FromOp(len,
                       [&slist, &epochs, kp](uint32_t) {
                         return SkipEraseOp(slist, &epochs, kp);
                       }),
          options));
    }
    for (const QueryTicket& t : tickets) (void)sched.Wait(t);
    tickets.clear();
    sched.Drain();
  }

  // Survivors: exactly the even keys, in both structures.
  const uint64_t expect_live = keys.size() - odd_keys.size();
  const auto audit = table.AuditQuiesced();
  if (!audit.ok) return Fail("churn: table audit failed");
  if (audit.live_tuples != expect_live) {
    return Fail("churn: table live count diverged");
  }
  std::vector<Tuple> live;
  table.CollectLive(&live);
  std::sort(live.begin(), live.end(),
            [](const Tuple& a, const Tuple& b) { return a.key < b.key; });
  for (uint64_t i = 0; i < live.size(); ++i) {
    const int64_t k = static_cast<int64_t>(2 * (i + 1));
    if (live[i].key != k || live[i].payload != LoadVal(k)) {
      return Fail("churn: table survivor set diverged");
    }
  }
  if (slist.size() != expect_live) {
    return Fail("churn: skiplist live count diverged");
  }
  {
    int64_t prev = 0;
    bool ordered = true;
    uint64_t walked = 0;
    slist.ForEach([&](const SkipNode& n) {
      ordered = ordered && n.key > prev && n.key % 2 == 0;
      prev = n.key;
      ++walked;
    });
    if (!ordered || walked != expect_live) {
      return Fail("churn: skiplist walk diverged");
    }
  }
  epochs.ReclaimAll();
  if (epochs.retired() != epochs.reclaimed()) {
    return Fail("churn: reclamation leak (retired != reclaimed)");
  }
  std::printf(
      "churn: %llu live of %llu, compactions=%llu retired=%llu "
      "reclaimed=%llu recycled(ht)=%llu recycled(skip)=%llu\n",
      static_cast<unsigned long long>(expect_live),
      static_cast<unsigned long long>(keys.size()),
      static_cast<unsigned long long>(table.compactions()),
      static_cast<unsigned long long>(epochs.retired()),
      static_cast<unsigned long long>(epochs.reclaimed()),
      static_cast<unsigned long long>(table.recycled_nodes()),
      static_cast<unsigned long long>(slist.recycled_nodes()));
  if (json != nullptr) {
    json->BeginPoint();
    json->Field("section", std::string("churn"));
    json->Field("live", expect_live);
    json->Field("compactions", table.compactions());
    json->Field("retired", epochs.retired());
    json->Field("reclaimed", epochs.reclaimed());
  }
  return 0;
}

/// Open-loop scenario: Poisson arrivals of small read-write point queries
/// with a deadline SLO, against one live table.
int RunOpenLoop(const std::vector<TraceOp>& trace, uint64_t num_keys,
                uint32_t workers, bool quick, JsonWriter* json) {
  EpochManager epochs;
  ConcurrentChainedTable table(num_keys, &epochs);
  {
    EpochGuard guard(&epochs);
    for (int64_t k = 1; k <= static_cast<int64_t>(num_keys); ++k) {
      table.Upsert(k, LoadVal(k), guard);
    }
  }
  CellCounters counters;
  constexpr uint64_t kOpsPerQuery = 256;
  LoadGenReport report;
  ServingStats stats;
  uint64_t waited_served = 0, waited_other = 0;
  // num_workers == 1 means the client pumps in Wait(), but here the client
  // is busy generating arrivals for the whole run — queries would just sit
  // until their deadline expires.  Open loop needs a background pump.
  workers = std::max(workers, 2u);
  {
    QuerySchedulerOptions sopt;
    sopt.num_workers = workers;
    sopt.max_inflight_queries = workers;
    sopt.max_pending = 64;
    sopt.shed_expired = true;
    sopt.order = AdmissionOrder::kDeadline;
    QueryScheduler sched(sopt);
    sched.pool().SetIdleTask([&epochs] { epochs.AdvanceAndReclaim(); });
    QueryOptions options;
    options.policy = ExecPolicy::kAmac;
    options.params.inflight = 8;
    options.deadline_seconds = 0.05;
    LoadGenOptions gopt;
    gopt.arrival.kind = ArrivalKind::kPoisson;
    gopt.arrival.rate_qps = quick ? 2000 : 5000;
    gopt.duration_seconds = quick ? 0.25 : 1.0;
    gopt.max_queries = 4096;
    std::vector<QueryTicket> tickets;
    const uint64_t max_begin = trace.size() - kOpsPerQuery;
    report = LoadGenerator::Run(gopt, [&](uint64_t index, const TenantMix&) {
      const TraceOp* segment =
          trace.data() + (index * kOpsPerQuery) % max_begin;
      tickets.push_back(Submit(
          sched,
          Plan::FromOp(kOpsPerQuery,
                       [&table, segment, &counters](uint32_t) {
                         return YcsbOp(table, segment, &counters);
                       }),
          options));
    });
    for (const QueryTicket& t : tickets) {
      const QueryStats qs = sched.Wait(t);
      ++(qs.outcome == QueryOutcome::kServed ? waited_served : waited_other);
    }
    tickets.clear();
    sched.Drain();
    stats = sched.serving_stats();
  }
  if (counters.read_misses.load() != 0) {
    return Fail("open-loop: read misses on a no-erase table");
  }
  if (counters.payload_violations.load() != 0) {
    return Fail("open-loop: payload rule violated");
  }
  if (stats.submitted != report.submitted) {
    return Fail("open-loop: submit counter mismatch");
  }
  if (stats.completed + stats.rejected + stats.shed != stats.submitted) {
    return Fail("open-loop: outcome counters do not conserve");
  }
  if (stats.completed != waited_served ||
      stats.rejected + stats.shed != waited_other) {
    return Fail("open-loop: per-ticket outcomes diverge from ServingStats");
  }
  epochs.ReclaimAll();
  if (epochs.retired() != epochs.reclaimed()) {
    return Fail("open-loop: reclamation leak");
  }
  std::printf(
      "open-loop: offered %.0f qps, served %llu / rejected %llu / shed "
      "%llu of %llu, goodput %llu, p95 %.2f ms\n",
      report.offered_qps, static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.goodput_queries),
      stats.p95_latency_seconds * 1e3);
  if (json != nullptr) {
    json->BeginPoint();
    json->Field("section", std::string("open-loop"));
    json->Field("offered_qps", report.offered_qps);
    json->Field("submitted", stats.submitted);
    json->Field("completed", stats.completed);
    json->Field("rejected", stats.rejected);
    json->Field("shed", stats.shed);
    json->Field("goodput_queries", stats.goodput_queries);
    json->Field("p95_latency_seconds", stats.p95_latency_seconds);
  }
  return 0;
}

int Main(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/17);
  args.flags.DefineBool("quick", false,
                        "CI smoke scale (2^12 keys, 8 ops per key)");
  args.flags.DefineString("json", "BENCH_ext_ycsb.json",
                          "perf artifact path (empty disables)");
  args.flags.DefineInt("workers", 0,
                       "max workers in the sweep (0 = min(4, hardware))");
  args.Parse(argc, argv);
  const bool quick = args.flags.GetBool("quick");
  const uint64_t num_keys = quick ? uint64_t{1} << 12 : args.scale;
  const uint64_t num_ops = num_keys * 8;
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  uint32_t max_workers = static_cast<uint32_t>(args.flags.GetInt("workers"));
  if (max_workers == 0) max_workers = std::min(4u, hw);

  PrintHeader("ext: YCSB read-write serving (epoch-reclaimed write path)",
              "updates are per-key deterministic; final state is compared "
              "against the sequential-replay oracle");
  std::printf("keys=%llu ops=%llu max_workers=%u\n\n",
              static_cast<unsigned long long>(num_keys),
              static_cast<unsigned long long>(num_ops), max_workers);

  const std::string json_path = args.flags.GetString("json");
  std::unique_ptr<JsonWriter> json;
  if (!json_path.empty()) {
    json = std::make_unique<JsonWriter>(json_path, "ext_ycsb");
    if (!json->ok()) return 1;
    json->Field("keys", num_keys);
    json->Field("ops", num_ops);
    json->Field("zipf_theta", kZipfTheta);
    json->Field("max_workers", max_workers);
    json->Field("quick", std::string(quick ? "true" : "false"));
    json->BeginSeries();
  }

  std::vector<uint32_t> worker_sweep;
  for (uint32_t w = 1; w <= max_workers; w *= 2) worker_sweep.push_back(w);

  std::vector<ExecPolicy> policies(std::begin(kAllExecPolicies),
                                   std::end(kAllExecPolicies));
  policies.push_back(ExecPolicy::kAdaptive);

  TablePrinter printer("YCSB mixes (Mops/s, workers=" +
                           std::to_string(max_workers) + ")",
                       {"mix", "policy", "Mops/s", "vec_fallbacks"});
  for (const MixSpec& mix : kMixes) {
    const std::vector<TraceOp> trace =
        MakeTrace(num_ops, num_keys, mix.read_fraction, /*seed=*/1701);
    // Sequential-replay oracle: which keys saw an update.
    std::vector<uint8_t> updated(num_keys + 1, 0);
    for (const TraceOp& op : trace) {
      if (op.kind == TraceKind::kUpdate) updated[op.key] = 1;
    }
    for (const ExecPolicy policy : policies) {
      for (const uint32_t workers : worker_sweep) {
        const CellResult cell = RunMixCell(trace, updated, num_keys, policy,
                                           workers, args.inflight);
        if (!cell.ok) {
          std::fprintf(stderr, "FAIL: %s %s workers=%u diverged\n", mix.name,
                       ExecPolicyName(policy), workers);
          return 1;
        }
        if (json != nullptr) {
          json->BeginPoint();
          json->Field("section", std::string("mix"));
          json->Field("mix", std::string(mix.name));
          json->Field("policy", std::string(ExecPolicyName(policy)));
          json->Field("workers", workers);
          json->Field("mops_per_sec", cell.mops_per_sec);
          json->Field("vec_fallbacks", cell.vec_fallbacks);
          json->Field("morsels", cell.morsels);
          json->Field("reclaimed", cell.reclaimed);
          PerfJsonFields(json.get(), cell.perf);
        }
        if (workers == max_workers) {
          printer.AddRow({mix.name, ExecPolicyName(policy),
                          TablePrinter::Fmt(cell.mops_per_sec, 2),
                          TablePrinter::Fmt(cell.vec_fallbacks)});
        }
      }
    }
  }
  printer.Print();
  std::printf("\n");

  if (const int rc = RunChurn(num_keys, max_workers, json.get()); rc != 0) {
    return rc;
  }
  {
    const std::vector<TraceOp> trace =
        MakeTrace(num_ops, num_keys, /*read_fraction=*/0.95, /*seed=*/1702);
    if (const int rc =
            RunOpenLoop(trace, num_keys, max_workers, quick, json.get());
        rc != 0) {
      return rc;
    }
  }

  if (json != nullptr && !json->Close()) return 1;
  std::printf("\next_ycsb: all gates passed\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Main(argc, argv); }
