// Extension (paper §8 future work): random walks over a CSR graph, run
// through the generic engine under all four schedules plus the coroutine
// interleaver.  Dependent chain per hop: adjacency row bounds -> random
// edge -> next vertex.  Target skew (power-law in-degree) supplies the
// irregularity knob.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/cycle_timer.h"
#include "common/table_printer.h"
#include "graph/csr.h"
#include "graph/random_walk.h"

namespace amac::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("hops", 8, "steps per walker");
  args.flags.DefineInt("walkers_log2", 18, "number of walkers (log2)");
  args.Define(/*default_scale_log2=*/23);  // vertices
  args.Parse(argc, argv);
  const uint32_t hops = static_cast<uint32_t>(args.flags.GetInt("hops"));
  const uint64_t walkers = uint64_t{1}
                           << args.flags.GetInt("walkers_log2");

  PrintHeader("Extension: graph random walks (paper §8 future work)",
              "CSR graph 2^" + std::to_string(args.flags.GetInt("scale_log2")) +
                  " vertices, out-degree 8; all schedules via the generic "
                  "engine");

  TablePrinter table("graph random walks: cycles per hop",
                     {"target skew", "Sequential", "GP", "SPP", "AMAC",
                      "coroutines"});
  for (double theta : {0.0, 0.99}) {
    CsrGraph::Options opt;
    opt.num_vertices = args.scale;
    opt.out_degree = 8;
    opt.target_theta = theta;
    const CsrGraph graph(opt);
    const double total_hops =
        static_cast<double>(walkers) * static_cast<double>(hops);

    auto measure = [&](auto&& run) {
      uint64_t best = UINT64_MAX;
      for (uint32_t rep = 0; rep < args.reps; ++rep) {
        WalkSink sink;
        CycleTimer timer;
        run(sink);
        best = std::min(best, timer.Elapsed());
      }
      return static_cast<double>(best) / total_hops;
    };

    const double seq = measure([&](WalkSink& sink) {
      RandomWalkOp op(graph, hops, 7, sink);
      RunSequential(op, walkers);
    });
    const double gp = measure([&](WalkSink& sink) {
      RandomWalkOp op(graph, hops, 7, sink);
      RunGroupPrefetch(op, walkers, args.inflight, 2 * hops);
    });
    const double spp = measure([&](WalkSink& sink) {
      RandomWalkOp op(graph, hops, 7, sink);
      RunSoftwarePipelined(op, walkers, 2 * hops,
                           std::max(1u, args.inflight / (2 * hops) + 1));
    });
    const double amac = measure([&](WalkSink& sink) {
      RandomWalkOp op(graph, hops, 7, sink);
      RunAmac(op, walkers, args.inflight);
    });
    const double coro_cyc = measure([&](WalkSink& sink) {
      coro::Interleave(
          [&](uint64_t w) {
            return RandomWalkTask(graph, w, hops, 7, sink);
          },
          walkers, args.inflight);
    });
    table.AddRow({theta == 0.0 ? "uniform" : "Zipf(0.99)",
                  TablePrinter::Fmt(seq, 1), TablePrinter::Fmt(gp, 1),
                  TablePrinter::Fmt(spp, 1), TablePrinter::Fmt(amac, 1),
                  TablePrinter::Fmt(coro_cyc, 1)});
  }
  table.Print();
  std::printf(
      "reading: every walker chases two dependent accesses per hop; the "
      "AMAC schedule overlaps walkers exactly as it overlaps DB lookups — "
      "the §8 hypothesis that AMAC generalizes beyond relational operators."
      "\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
