// Extension (paper §8 future work): random walks over a CSR graph, run
// through the unified runtime (core/scheduler.h) under every ExecPolicy,
// then scaled across threads with the morsel-driven parallel driver.
// Dependent chain per hop: adjacency row bounds -> random edge -> next
// vertex.  Target skew (power-law in-degree) supplies the irregularity
// knob.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/cycle_timer.h"
#include "common/macros.h"
#include "common/table_printer.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "graph/csr.h"
#include "graph/graph_ops.h"

namespace amac::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("hops", 8, "steps per walker");
  args.flags.DefineInt("walkers_log2", 18, "number of walkers (log2)");
  args.flags.DefineInt("threads", 4, "threads for the parallel-driver table");
  args.Define(/*default_scale_log2=*/23);  // vertices
  args.Parse(argc, argv);
  const uint32_t hops =
      std::max(1, static_cast<int>(args.flags.GetInt("hops")));
  const uint64_t walkers = uint64_t{1}
                           << args.flags.GetInt("walkers_log2");
  const uint32_t threads =
      std::max(1, static_cast<int>(args.flags.GetInt("threads")));

  PrintHeader("Extension: graph random walks (paper §8 future work)",
              "CSR graph 2^" + std::to_string(args.flags.GetInt("scale_log2")) +
                  " vertices, out-degree 8; every ExecPolicy via "
                  "Run(policy, ...), then the morsel-driven driver");

  // Same SPP pipeline shape the pre-runtime bench used: 2*hops stages at
  // distance inflight/(2*hops) + 1.
  const SchedulerParams params{args.inflight, 2 * hops,
                               args.inflight / (2 * hops) + 1};

  TablePrinter table("graph random walks: cycles per hop (1 thread)",
                     {"target skew", "Sequential", "GP", "SPP", "AMAC",
                      "Coroutine", "Vectorized", "VecAMAC"});
  TablePrinter par_table(
      "graph random walks: cycles per hop (" + std::to_string(threads) +
          " threads, morsel-driven Executor)",
      {"target skew", "Sequential", "GP", "SPP", "AMAC", "Coroutine",
       "Vectorized", "VecAMAC"});
  Executor par_exec(
      ExecConfig{ExecPolicy::kAmac, params, threads, 0});
  for (double theta : {0.0, 0.99}) {
    CsrGraph::Options opt;
    opt.num_vertices = args.scale;
    opt.out_degree = 8;
    opt.target_theta = theta;
    const CsrGraph graph(opt);
    const double total_hops =
        static_cast<double>(walkers) * static_cast<double>(hops);
    const char* label = theta == 0.0 ? "uniform" : "Zipf(0.99)";

    std::vector<std::string> row{label};
    std::vector<std::string> par_row{label};
    for (ExecPolicy policy : kAllExecPolicies) {
      uint64_t best = UINT64_MAX;
      for (uint32_t rep = 0; rep < std::max(1u, args.reps); ++rep) {
        WalkSink sink;
        RandomWalkOp op(graph, hops, 7, sink);
        CycleTimer timer;
        amac::Run(policy, params, op, walkers);
        best = std::min(best, timer.Elapsed());
      }
      row.push_back(
          TablePrinter::Fmt(static_cast<double>(best) / total_hops, 1));

      par_exec.set_policy(policy);
      uint64_t par_best = UINT64_MAX;
      for (uint32_t rep = 0; rep < std::max(1u, args.reps); ++rep) {
        // Cache-line padding keeps concurrent sink updates off shared
        // lines; the driver's own cycle counter excludes thread spawn.
        struct AMAC_CACHE_ALIGNED PaddedSink {
          WalkSink sink;
        };
        std::vector<PaddedSink> sinks(threads);
        const RunStats stats =
            par_exec.Run(FromOp(walkers, [&](uint32_t tid) {
              return RandomWalkOp(graph, hops, 7, sinks[tid].sink);
            }));
        par_best = std::min(par_best, stats.cycles);
      }
      par_row.push_back(
          TablePrinter::Fmt(static_cast<double>(par_best) / total_hops, 1));
    }
    table.AddRow(row);
    par_table.AddRow(par_row);
  }
  table.Print();
  par_table.Print();
  std::printf(
      "reading: every walker chases two dependent accesses per hop; the "
      "AMAC schedule overlaps walkers exactly as it overlaps DB lookups — "
      "the §8 hypothesis that AMAC generalizes beyond relational operators. "
      "The parallel table stacks morsel-driven thread scaling on top of "
      "per-thread memory-level parallelism.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
