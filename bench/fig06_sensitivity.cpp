// Figure 6: probe cycles-per-tuple sensitivity to the tuning parameter
// (number of in-flight lookups, 1..19) for GP, SPP, and AMAC, across the
// five [ZR, ZS] skew configurations of the large join.
//
// This policy x inflight grid is exactly the candidate space the adaptive
// governor (src/adaptive/) searches, so the bench doubles as the perf
// trajectory's view of that surface: --json writes every (skew, M, policy)
// point as a machine-readable artifact (CI's BENCH_fig06.json), and
// --quick shrinks the scale for the bench-smoke job.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "join/hash_join.h"

namespace amac::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineBool("quick", false,
                        "CI smoke mode: scale 2^14, 1 rep");
  args.flags.DefineString("json", "",
                          "write the policy x inflight sensitivity grid "
                          "as JSON to this path");
  args.Define(/*default_scale_log2=*/22);
  args.Parse(argc, argv);
  const bool quick = args.flags.GetBool("quick");
  if (quick) {
    args.scale = uint64_t{1} << 14;
    args.reps = 1;
  }

  PrintHeader("Figure 6 (probe cycles vs in-flight lookups, 2GB-class join)",
              quick ? "CI smoke (--quick): sweep M = 1..19 at scale 2^14"
                    : "sweep M = 1..19 as in the paper's sensitivity plots");

  const double kSkews[][2] = {
      {0, 0}, {0.5, 0}, {1, 0}, {0.5, 0.5}, {1, 1}};
  const uint32_t kWindows[] = {1, 3, 5, 7, 9, 11, 15, 19};
  // VecAMAC rides the same M axis: each AMAC slot carries an 8-lane
  // vector, so M in-flight lookups occupy ceil(M/8) slots.
  constexpr ExecPolicy kSweepPolicies[] = {ExecPolicy::kGroupPrefetch,
                                           ExecPolicy::kSoftwarePipelined,
                                           ExecPolicy::kAmac,
                                           ExecPolicy::kVectorizedAmac};

  const std::string json_path = args.flags.GetString("json");
  std::unique_ptr<JsonWriter> json;
  if (!json_path.empty()) {
    json = std::make_unique<JsonWriter>(json_path, "fig06_sensitivity");
    json->Field("scale", args.scale);
    json->BeginSeries();
  }

  bool ok = true;
  // One skew at a time (each prepared join holds several hundred MB).
  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        args.scale, args.scale, zr, zs,
        static_cast<uint64_t>(7 + zr * 10 + zs * 100));
    TablePrinter table(
        "Fig 6 " + SkewLabel(zr, zs) + ": probe cycles/tuple vs M",
        {"M", "GP", "SPP", "AMAC", "VecAMAC"});
    for (uint32_t m : kWindows) {
      std::vector<std::string> row{std::to_string(m)};
      for (ExecPolicy policy : kSweepPolicies) {
        Executor exec(
            ExecConfig{policy, SchedulerParams{m, 1, 0}, 1, 0});
        // First-match semantics (Listing 1).
        const RunStats run = MeasureProbe(exec, prepared, true, args.reps);
        const double cycles_per_tuple = run.CyclesPerInput();
        row.push_back(TablePrinter::Fmt(cycles_per_tuple, 1));
        if (cycles_per_tuple <= 0) {
          std::printf("ERROR: %s M=%u measured zero cycles/tuple\n",
                      ExecPolicyName(policy), m);
          ok = false;
        }
        if (json) {
          json->BeginPoint();
          json->Field("zr", zr);
          json->Field("zs", zs);
          json->Field("inflight", m);
          json->Field("policy", std::string(SeriesName(policy)));
          json->Field("cycles_per_tuple", cycles_per_tuple);
          json->Field("perf_valid", run.perf.valid ? 1 : 0);
          json->Field("llc_misses", run.perf.llc_misses);
          json->Field("stalled_cycles", run.perf.stalled_cycles);
        }
      }
      table.AddRow(row);
    }
    table.Print();
  }
  if (json) ok = json->Close() && ok;
  std::printf(
      "expected shape: at [0,0] cycles fall steeply to ~M=9-11 then "
      "plateau (L1-D MSHR limit); under ZR=1 GP/SPP barely improve with M "
      "while AMAC still gains and plateaus around M=8.\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
