// Figure 6: probe cycles-per-tuple sensitivity to the tuning parameter
// (number of in-flight lookups, 1..19) for GP, SPP, and AMAC, across the
// five [ZR, ZS] skew configurations of the large join.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "join/hash_join.h"

namespace amac::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/22);
  args.Parse(argc, argv);

  PrintHeader("Figure 6 (probe cycles vs in-flight lookups, 2GB-class join)",
              "sweep M = 1..19 as in the paper's sensitivity plots");

  const double kSkews[][2] = {
      {0, 0}, {0.5, 0}, {1, 0}, {0.5, 0.5}, {1, 1}};
  const uint32_t kWindows[] = {1, 3, 5, 7, 9, 11, 15, 19};

  // One skew at a time (each prepared join holds several hundred MB).
  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        args.scale, args.scale, zr, zs,
        static_cast<uint64_t>(7 + zr * 10 + zs * 100));
    TablePrinter table(
        "Fig 6 " + SkewLabel(zr, zs) + ": probe cycles/tuple vs M",
        {"M", "GP", "SPP", "AMAC"});
    for (uint32_t m : kWindows) {
      std::vector<std::string> row{std::to_string(m)};
      for (ExecPolicy policy : {ExecPolicy::kGroupPrefetch, ExecPolicy::kSoftwarePipelined, ExecPolicy::kAmac}) {
        Executor exec(
            ExecConfig{policy, SchedulerParams{m, 1, 0}, 1, 0});
        // First-match semantics (Listing 1).
        const RunStats run = MeasureProbe(exec, prepared, true, args.reps);
        row.push_back(TablePrinter::Fmt(run.CyclesPerInput(), 1));
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "expected shape: at [0,0] cycles fall steeply to ~M=9-11 then "
      "plateau (L1-D MSHR limit); under ZR=1 GP/SPP barely improve with M "
      "while AMAC still gains and plateaus around M=8.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
