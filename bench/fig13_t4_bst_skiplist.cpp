// Figure 13: BST search and skip list search on the SPARC T4 (single
// hardware context).  MODELED on memsim T4 with walk-length traces from
// the real structures (see DESIGN.md substitution #4).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "bst/bst.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "memsim/memsim.h"
#include "memsim/workload.h"
#include "skiplist/skiplist.h"

namespace amac::bench {
namespace {

void SimRow(TablePrinter* table, const std::string& label,
            const std::vector<uint32_t>& lengths, uint32_t inflight,
            uint32_t stages) {
  const memsim::MachineConfig machine = memsim::MachineConfig::SparcT4();
  std::vector<std::string> row{label};
  for (ExecPolicy policy : kPaperPolicies) {
    memsim::SimConfig config;
    config.policy = policy;
    config.inflight = inflight;
    config.stages = stages;
    config.num_threads = 1;
    config.lookups_per_thread = 20000;
    config.chain_lengths = &lengths;
    const memsim::SimResult r = memsim::Simulate(machine, config);
    row.push_back(TablePrinter::Fmt(
        static_cast<double>(r.cycles) / static_cast<double>(r.lookups), 1));
  }
  table->AddRow(row);
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/20);
  args.Parse(argc, argv);
  const int log2 = static_cast<int>(args.flags.GetInt("scale_log2"));

  PrintHeader("Figure 13 (BST search & skip list search, SPARC T4)",
              "MODELED on memsim T4; BST at 2^" + std::to_string(log2) +
                  " (paper: 2^29), skip list at 2^" +
                  std::to_string(log2 > 2 ? log2 - 2 : log2) +
                  " (paper: 2^25)");

  TablePrinter table("Fig 13: modeled cycles per output tuple, T4",
                     {"workload", "Baseline", "GP", "SPP", "AMAC"});

  {  // BST search trace.
    const uint64_t n = args.scale;
    const Relation rel = MakeDenseUniqueRelation(n, 43);
    const BinarySearchTree tree = BuildBst(rel);
    const Relation probe = MakeForeignKeyRelation(n, n, 44);
    const auto lengths = memsim::CollectBstWalkLengths(tree, probe);
    SimRow(&table, "BST search (2^" + std::to_string(log2) + ")", lengths,
           args.inflight, 16);
  }
  {  // Skip list search trace.
    const uint64_t n = args.scale >> 2;
    const Relation rel = MakeDenseUniqueRelation(n, 46);
    const auto list = BuildSkipList(rel, 45);
    const Relation probe = MakeForeignKeyRelation(n, n, 47);
    const auto lengths = memsim::CollectSkipWalkLengths(*list, probe);
    SimRow(&table, "Skip list search (2^" + std::to_string(log2 - 2) + ")",
           lengths, args.inflight, 8);
  }
  table.Print();
  std::printf(
      "expected shape: deep dependent chains => large prefetcher gains "
      "(paper: 5.6x GP / 4.5x SPP / 6.2x AMAC on tree search); skip list "
      "gains smaller and AMAC most consistent.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
