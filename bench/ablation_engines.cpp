// Ablation (paper §6 "AMAC automation"): what does generalizing AMAC cost?
// Compares, on the same workloads:
//   * the hand-written AMAC kernels (paper Listing 1 style),
//   * the generic stage-machine engine (core/engine.h),
//   * the C++20 coroutine interleaver (coro/) — the framework §6 sketches.
// The paper predicts "user-land threads' state maintenance and space
// overhead" for framework approaches; this bench quantifies it.
#include <cstdio>

#include "bench_util.h"
#include "bst/bst.h"
#include "bst/bst_search.h"
#include "common/cycle_timer.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "core/ops.h"
#include "coro/coro_ops.h"
#include "join/probe_kernels.h"
#include "join/sink.h"

namespace amac::bench {
namespace {

template <typename Fn>
uint64_t MinCycles(uint32_t reps, Fn&& fn) {
  uint64_t best = UINT64_MAX;
  for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
    CycleTimer timer;
    fn();
    best = std::min(best, timer.Elapsed());
  }
  return best;
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/22);
  args.Parse(argc, argv);
  const uint32_t m = args.inflight;

  PrintHeader("Ablation: hand-written AMAC vs generic engine vs coroutines",
              "paper §6 framework discussion; join probe and BST search");

  TablePrinter table("engine-implementation ablation: cycles per lookup",
                     {"workload", "hand AMAC", "generic engine",
                      "coroutines", "hand GP", "generic GP"});

  {  // Hash join probe, uniform and skewed.
    for (double z : {0.0, 1.0}) {
      const PreparedJoin prepared =
          PrepareJoin(args.scale, args.scale, z, z, 51);
      const double n = static_cast<double>(prepared.s.size());
      // First-match semantics throughout (paper Listing 1).
      const bool early = true;
      uint64_t hand = 0, generic = 0, coro_cycles = 0, hand_gp = 0,
               generic_gp = 0;
      auto run_all = [&](auto early_tag) {
        constexpr bool kEarly = decltype(early_tag)::value;
        hand = MinCycles(args.reps, [&] {
          CountChecksumSink sink;
          ProbeAmac<kEarly>(*prepared.table, prepared.s, 0,
                            prepared.s.size(), m, sink);
        });
        generic = MinCycles(args.reps, [&] {
          CountChecksumSink sink;
          HashProbeOp<kEarly, CountChecksumSink> op(*prepared.table,
                                                    prepared.s, sink);
          RunAmac(op, prepared.s.size(), m);
        });
        coro_cycles = MinCycles(args.reps, [&] {
          CountChecksumSink sink;
          coro::ProbeInterleaved<kEarly>(*prepared.table, prepared.s, 0,
                                         prepared.s.size(), m, sink);
        });
        hand_gp = MinCycles(args.reps, [&] {
          CountChecksumSink sink;
          ProbeGroupPrefetch<kEarly>(*prepared.table, prepared.s, 0,
                                     prepared.s.size(), m, 1, sink);
        });
        generic_gp = MinCycles(args.reps, [&] {
          CountChecksumSink sink;
          HashProbeOp<kEarly, CountChecksumSink> op(*prepared.table,
                                                    prepared.s, sink);
          RunGroupPrefetch(op, prepared.s.size(), m, 1);
        });
      };
      if (early) {
        run_all(std::true_type{});
      } else {
        run_all(std::false_type{});
      }
      table.AddRow({std::string("join probe z=") + TablePrinter::Fmt(z, 1),
                    TablePrinter::Fmt(hand / n, 1),
                    TablePrinter::Fmt(generic / n, 1),
                    TablePrinter::Fmt(coro_cycles / n, 1),
                    TablePrinter::Fmt(hand_gp / n, 1),
                    TablePrinter::Fmt(generic_gp / n, 1)});
    }
  }
  {  // BST search.
    const uint64_t n = args.scale;  // must exceed the LLC
    const Relation rel = MakeDenseUniqueRelation(n, 52);
    const BinarySearchTree tree = BuildBst(rel);
    const Relation probe = MakeForeignKeyRelation(n, n, 53);
    const double dn = static_cast<double>(n);
    const uint64_t hand = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      BstSearchAmac(tree, probe, 0, n, m, sink);
    });
    const uint64_t generic = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      BstSearchOp<CountChecksumSink> op(tree, probe, sink);
      RunAmac(op, n, m);
    });
    const uint64_t coro_cycles = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      coro::BstSearchInterleaved(tree, probe, 0, n, m, sink);
    });
    const uint64_t hand_gp = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      BstSearchGroupPrefetch(tree, probe, 0, n, m, 24, sink);
    });
    const uint64_t generic_gp = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      BstSearchOp<CountChecksumSink> op(tree, probe, sink);
      RunGroupPrefetch(op, n, m, 24);
    });
    table.AddRow({"BST search", TablePrinter::Fmt(hand / dn, 1),
                  TablePrinter::Fmt(generic / dn, 1),
                  TablePrinter::Fmt(coro_cycles / dn, 1),
                  TablePrinter::Fmt(hand_gp / dn, 1),
                  TablePrinter::Fmt(generic_gp / dn, 1)});
  }
  table.Print();
  std::printf(
      "reading: generic engine should sit within ~10%% of hand-written "
      "AMAC; coroutines carry frame-allocation overhead per lookup (the "
      "cost §6 anticipates) but stay well ahead of the baseline.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
