// Ablation (paper §6 "AMAC automation"): what does generalizing AMAC cost?
// Compares, on the same workloads:
//   * the hand-written AMAC kernels (paper Listing 1 style),
//   * the generic stage-machine engine dispatched through the unified
//     runtime (core/scheduler.h) — Run(policy, params, op, n),
//   * the hand-written C++20 coroutine kernels (coro/),
//   * the generic coroutine adapter (ExecPolicy::kCoroutine), which wraps
//     the same stage-machine op in a coroutine frame mechanically.
// The paper predicts "user-land threads' state maintenance and space
// overhead" for framework approaches; this bench quantifies it.
#include <cstdio>

#include "bench_util.h"
#include "bst/bst.h"
#include "bst/bst_search.h"
#include "common/cycle_timer.h"
#include "common/table_printer.h"
#include "core/ops.h"
#include "join/join_ops.h"
#include "core/scheduler.h"
#include "coro/coro_ops.h"
#include "join/probe_kernels.h"
#include "join/sink.h"

namespace amac::bench {
namespace {

template <typename Fn>
uint64_t MinCycles(uint32_t reps, Fn&& fn) {
  uint64_t best = UINT64_MAX;
  for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
    CycleTimer timer;
    fn();
    best = std::min(best, timer.Elapsed());
  }
  return best;
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/22);
  args.Parse(argc, argv);
  const uint32_t m = args.inflight;

  PrintHeader("Ablation: hand-written AMAC vs generic engine vs coroutines",
              "paper §6 framework discussion; join probe and BST search; "
              "generic columns dispatch through Run(policy, ...)");

  TablePrinter table("engine-implementation ablation: cycles per lookup",
                     {"workload", "hand AMAC", "generic engine",
                      "hand coro", "generic coro", "hand GP", "generic GP"});

  {  // Hash join probe, uniform and skewed.
    for (double z : {0.0, 1.0}) {
      const PreparedJoin prepared =
          PrepareJoin(args.scale, args.scale, z, z, 51);
      const double n = static_cast<double>(prepared.s.size());
      // First-match semantics throughout (paper Listing 1).
      constexpr bool kEarly = true;
      const SchedulerParams params{m, 1};  // GP stages = 1 for hash chains
      const uint64_t hand = MinCycles(args.reps, [&] {
        CountChecksumSink sink;
        ProbeAmac<kEarly>(*prepared.table, prepared.s, 0, prepared.s.size(),
                          m, sink);
      });
      const uint64_t generic = MinCycles(args.reps, [&] {
        CountChecksumSink sink;
        ProbeOp<kEarly, CountChecksumSink> op(*prepared.table,
                                                  prepared.s, sink);
        amac::Run(ExecPolicy::kAmac, params, op, prepared.s.size());
      });
      const uint64_t hand_coro = MinCycles(args.reps, [&] {
        CountChecksumSink sink;
        coro::ProbeInterleaved<kEarly>(*prepared.table, prepared.s, 0,
                                       prepared.s.size(), m, sink);
      });
      const uint64_t generic_coro = MinCycles(args.reps, [&] {
        CountChecksumSink sink;
        ProbeOp<kEarly, CountChecksumSink> op(*prepared.table,
                                                  prepared.s, sink);
        amac::Run(ExecPolicy::kCoroutine, params, op,
                  prepared.s.size());
      });
      const uint64_t hand_gp = MinCycles(args.reps, [&] {
        CountChecksumSink sink;
        ProbeGroupPrefetch<kEarly>(*prepared.table, prepared.s, 0,
                                   prepared.s.size(), m, 1, sink);
      });
      const uint64_t generic_gp = MinCycles(args.reps, [&] {
        CountChecksumSink sink;
        ProbeOp<kEarly, CountChecksumSink> op(*prepared.table,
                                                  prepared.s, sink);
        amac::Run(ExecPolicy::kGroupPrefetch, params, op,
                  prepared.s.size());
      });
      table.AddRow({std::string("join probe z=") + TablePrinter::Fmt(z, 1),
                    TablePrinter::Fmt(hand / n, 1),
                    TablePrinter::Fmt(generic / n, 1),
                    TablePrinter::Fmt(hand_coro / n, 1),
                    TablePrinter::Fmt(generic_coro / n, 1),
                    TablePrinter::Fmt(hand_gp / n, 1),
                    TablePrinter::Fmt(generic_gp / n, 1)});
    }
  }
  {  // BST search.
    const uint64_t n = args.scale;  // must exceed the LLC
    const Relation rel = MakeDenseUniqueRelation(n, 52);
    const BinarySearchTree tree = BuildBst(rel);
    const Relation probe = MakeForeignKeyRelation(n, n, 53);
    const double dn = static_cast<double>(n);
    const SchedulerParams amac_params{m, 1};
    const SchedulerParams gp_params{m, 24};
    const uint64_t hand = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      BstSearchAmac(tree, probe, 0, n, m, sink);
    });
    const uint64_t generic = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      BstSearchOp<CountChecksumSink> op(tree, probe, sink);
      amac::Run(ExecPolicy::kAmac, amac_params, op, n);
    });
    const uint64_t hand_coro = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      coro::BstSearchInterleaved(tree, probe, 0, n, m, sink);
    });
    const uint64_t generic_coro = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      BstSearchOp<CountChecksumSink> op(tree, probe, sink);
      amac::Run(ExecPolicy::kCoroutine, amac_params, op, n);
    });
    const uint64_t hand_gp = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      BstSearchGroupPrefetch(tree, probe, 0, n, m, 24, sink);
    });
    const uint64_t generic_gp = MinCycles(args.reps, [&] {
      CountChecksumSink sink;
      BstSearchOp<CountChecksumSink> op(tree, probe, sink);
      amac::Run(ExecPolicy::kGroupPrefetch, gp_params, op, n);
    });
    table.AddRow({"BST search", TablePrinter::Fmt(hand / dn, 1),
                  TablePrinter::Fmt(generic / dn, 1),
                  TablePrinter::Fmt(hand_coro / dn, 1),
                  TablePrinter::Fmt(generic_coro / dn, 1),
                  TablePrinter::Fmt(hand_gp / dn, 1),
                  TablePrinter::Fmt(generic_gp / dn, 1)});
  }
  table.Print();
  std::printf(
      "reading: generic engine should sit within ~10%% of hand-written "
      "AMAC; coroutines carry frame-allocation overhead per lookup (the "
      "cost §6 anticipates) but stay well ahead of the baseline; the "
      "generic coroutine adapter prices the fully-automated path.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
