#include "bench_util.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace amac::bench {

void BenchArgs::Define(int default_scale_log2) {
  flags.DefineInt("scale_log2", default_scale_log2,
                  "log2 of the probe/input cardinality (paper used 27)");
  flags.DefineInt("reps", 2, "repetitions per point (min is reported)");
  flags.DefineInt("inflight", 10,
                  "in-flight lookups per thread (paper's M; 10 matches the "
                  "Xeon's L1-D MSHR count)");
}

void BenchArgs::Parse(int argc, char** argv) {
  flags.Parse(argc, argv);
  scale = uint64_t{1} << flags.GetInt("scale_log2");
  reps = static_cast<uint32_t>(flags.GetInt("reps"));
  inflight = static_cast<uint32_t>(flags.GetInt("inflight"));
}

PreparedJoin PrepareJoin(uint64_t r_size, uint64_t s_size, double zr,
                         double zs, uint64_t seed,
                         double target_nodes_per_bucket, HashKind hash_kind) {
  PreparedJoin prepared;
  prepared.r = zr == 0.0 ? MakeDenseUniqueRelation(r_size, seed)
                         : MakeZipfRelation(r_size, r_size, zr, seed);
  prepared.s = zs == 0.0 ? MakeForeignKeyRelation(s_size, r_size, seed + 1)
                         : MakeZipfRelation(s_size, r_size, zs, seed + 1);
  ChainedHashTable::Options options;
  options.target_nodes_per_bucket = target_nodes_per_bucket;
  options.hash_kind = hash_kind;
  prepared.table = std::make_unique<ChainedHashTable>(r_size, options);
  BuildTableUnsync(prepared.r, prepared.table.get());
  return prepared;
}

RunStats MeasureProbe(Executor& exec, const PreparedJoin& prepared,
                      bool early_exit, uint32_t reps) {
  RunStats best;
  for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
    const RunStats run =
        ProbePhase(exec, *prepared.table, prepared.s, early_exit);
    if (rep == 0 || run.cycles < best.cycles) best = run;
  }
  return best;
}

JoinResult MeasureJoin(Executor& exec, const PreparedJoin& prepared,
                       const JoinOptions& options, uint32_t reps) {
  JoinResult best;
  for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
    ChainedHashTable::Options table_options;
    table_options.target_nodes_per_bucket = options.target_nodes_per_bucket;
    table_options.hash_kind = options.hash_kind;
    ChainedHashTable table(prepared.r.size(), table_options);
    JoinResult result;
    result.build = BuildPhase(exec, prepared.r, &table);
    result.probe = ProbePhase(exec, table, prepared.s, options.early_exit);
    if (rep == 0 || result.build.cycles + result.probe.cycles <
                        best.build.cycles + best.probe.cycles) {
      best = result;
    }
  }
  return best;
}

PlanResult MeasurePlan(Executor& exec, const Plan& plan,
                       const PlanOptions& options, uint32_t reps) {
  PlanResult best;
  for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
    PlanResult result = RunPlan(exec, plan, options);
    if (rep == 0 || result.TotalCycles() < best.TotalCycles()) {
      best = std::move(result);
    }
  }
  return best;
}

RunStats SoloRun(const Plan& plan, const PlanOptions& options) {
  Executor solo(
      ExecConfig{ExecPolicy::kSequential, SchedulerParams{1, 1, 0}, 1, 0});
  return RunPlan(solo, plan, options).run;
}

std::unique_ptr<SkipList> BuildSkipList(const Relation& rel, uint64_t seed) {
  auto slist = std::make_unique<SkipList>(rel.size());
  Rng rng(seed);
  for (const Tuple& t : rel) slist->InsertUnsync(t.key, t.payload, rng);
  return slist;
}

std::unique_ptr<CsrGraph> MakeWalkGraph(uint64_t scale, uint64_t seed) {
  CsrGraph::Options options;
  options.num_vertices = std::max<uint64_t>(64, scale / 4);
  options.out_degree = 8;
  options.seed = seed;
  return std::make_unique<CsrGraph>(options);
}

void PlanJsonFields(JsonWriter* json, const PlanStats& plan) {
  json->Field("plan_shape", std::string(PlanShapeName(plan.shape)));
  json->Field("plan_build_side",
              std::string(PlanBuildSideName(plan.build_side)));
  json->Field("plan_build_mode",
              std::string(PlanBuildModeName(plan.build_mode)));
  json->Field("plan_candidates", plan.candidates_considered);
  json->Field("plan_from_priors", uint64_t{plan.from_priors ? 1u : 0u});
  json->Field("plan_estimated_cost_cycles", plan.estimated_cost_cycles);
  json->Field("plan_measured_cost_cycles", plan.measured_cost_cycles);
  json->Field("plan_observed_selectivity", plan.observed_selectivity);
}

void PerfJsonFields(JsonWriter* json, const PerfCounters::Sample& perf) {
  json->Field("perf_valid", uint64_t{perf.valid ? 1u : 0u});
  json->Field("llc_misses", perf.llc_misses);
  json->Field("stalled_cycles", perf.stalled_cycles);
  json->Field("instructions", perf.instructions);
}

std::string SkewLabel(double zr, double zs) {
  char buf[32];
  auto one = [](double z) {
    char b[8];
    if (z == 0.0) return std::string("0");
    if (z == 1.0) return std::string("1");
    std::snprintf(b, sizeof(b), "%.2g", z);
    return std::string(b);
  };
  std::snprintf(buf, sizeof(buf), "[%s, %s]", one(zr).c_str(),
                one(zs).c_str());
  return buf;
}

void PrintHeader(const std::string& artifact, const std::string& notes) {
  std::printf("\n########################################################\n");
  std::printf("# Reproduces: %s\n", artifact.c_str());
  if (!notes.empty()) std::printf("# %s\n", notes.c_str());
  std::printf("########################################################\n");
}

namespace {

/// Minimal escaping for the strings our benches emit (policy/workload
/// names): quotes, backslashes, and control characters.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

JsonWriter::JsonWriter(const std::string& path, const std::string& bench) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    std::printf("ERROR: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(file_, "{");
  Field("bench", bench);
}

JsonWriter::~JsonWriter() {
  if (file_ != nullptr) Close();
}

void JsonWriter::Key(const std::string& key) {
  std::fprintf(file_, "%s\n%s\"%s\": ", first_in_scope_ ? "" : ",",
               in_point_ ? "      " : "  ", JsonEscape(key).c_str());
  first_in_scope_ = false;
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  if (!ok()) return;
  Key(key);
  std::fprintf(file_, "\"%s\"", JsonEscape(value).c_str());
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  if (!ok()) return;
  Key(key);
  std::fprintf(file_, "%llu", static_cast<unsigned long long>(value));
}

void JsonWriter::Field(const std::string& key, int64_t value) {
  if (!ok()) return;
  Key(key);
  std::fprintf(file_, "%lld", static_cast<long long>(value));
}

void JsonWriter::Field(const std::string& key, double value) {
  if (!ok()) return;
  Key(key);
  // Fixed-point with enough digits for throughputs and millisecond
  // latencies alike; JSON has no infinity/NaN, so degenerate values
  // (unmeasured points) are emitted as 0.
  if (!(value > -1e300 && value < 1e300)) value = 0;
  std::fprintf(file_, "%.6f", value);
}

void JsonWriter::BeginSeries() {
  if (!ok()) return;
  std::fprintf(file_, "%s\n  \"series\": [", first_in_scope_ ? "" : ",");
  in_series_ = true;
  first_in_scope_ = true;
}

void JsonWriter::ClosePoint() {
  if (in_point_) {
    std::fprintf(file_, "\n    }");
    in_point_ = false;
    // Back in the series scope, which now has at least this point.
    first_in_scope_ = false;
  }
}

void JsonWriter::BeginPoint() {
  if (!ok()) return;
  ClosePoint();
  std::fprintf(file_, "%s\n    {", first_in_scope_ ? "" : ",");
  in_point_ = true;
  first_in_scope_ = true;
}

bool JsonWriter::Close() {
  if (file_ == nullptr) return false;
  ClosePoint();
  if (in_series_) {
    std::fprintf(file_, "\n  ]");
    in_series_ = false;
  }
  std::fprintf(file_, "\n}\n");
  const bool ok = std::fclose(file_) == 0;
  file_ = nullptr;
  return ok;
}

}  // namespace amac::bench
