// Table 4: hash join probe scalability profiling on the Xeon x5670 — IPC
// and L1-D MSHR hits per kilo-instruction at 1, 2, 4, 6 threads, plus the
// "2+2" configuration (four threads spread over two sockets).
//
// MODELED on memsim (see DESIGN.md): the "MSHR hits" counter is the number
// of times a thread stalled on an access that was already in flight, which
// is exactly what the hardware event counts for this code pattern.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "memsim/memsim.h"
#include "memsim/workload.h"

namespace amac::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/18);
  args.Parse(argc, argv);

  PrintHeader("Table 4 (probe scalability profiling, Xeon x5670)",
              "MODELED on memsim; AMAC engine, large uniform join trace");

  const PreparedJoin prepared =
      PrepareJoin(args.scale, args.scale, 0.0, 0.0, 13);
  const auto lengths =
      memsim::CollectWalkLengths(*prepared.table, prepared.s, true);
  const memsim::MachineConfig machine = memsim::MachineConfig::XeonX5670();

  TablePrinter table("Table 4: per-thread IPC and L1-D MSHR hits",
                     {"threads", "IPC", "MSHR hits / k-inst"});
  struct Config {
    const char* label;
    uint32_t threads;
    bool scatter;
  };
  const Config kConfigs[] = {
      {"1", 1, false}, {"2", 2, false}, {"4", 4, false},
      {"6", 6, false}, {"2+2", 4, true},
  };
  for (const Config& c : kConfigs) {
    memsim::SimConfig config;
    config.policy = ExecPolicy::kAmac;
    config.inflight = args.inflight;
    config.num_threads = c.threads;
    config.lookups_per_thread = 20000;
    config.chain_lengths = &lengths;
    config.scatter_sockets = c.scatter;
    const memsim::SimResult r = memsim::Simulate(machine, config);
    table.AddRow({c.label, TablePrinter::Fmt(r.ipc, 2),
                  TablePrinter::Fmt(r.mshr_hits_per_kinstr, 1)});
  }
  table.Print();
  std::printf(
      "paper reference: IPC 1.4 / 1.4 / 1.0 / 0.7 / 1.3 and MSHR hits 1.8 / "
      "2.5 / 5.5 / 6.9 / 3.7 — the shape to match: IPC halves by 6 threads, "
      "MSHR hits ~4x, and 2+2 recovers to ~2-thread behavior.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
