// ext_memsim: acceptance gates for the cache-hierarchy simulator and the
// hardware-model-in-the-loop calibration seeding (EXPERIMENTS.md).
//
// Three gated sections, each tied to a claim the hierarchy model must
// uphold before its priors are allowed anywhere near the calibrator:
//
//  1. SCALING  — hierarchy-mode thread scaling on both machine presets
//     over a REAL hash-probe address trace reproduces the Fig 7/8 shape:
//     AMAC >= Baseline at every thread count, and on the GQ-limited Xeon
//     the AMAC/Baseline gap compresses as threads saturate the 32-entry
//     LLC queue (the crossover the paper measures).
//  2. PREFETCH — the modeled SPP prefetcher behaves like the literature
//     says it should: near-total coverage on a sequential stride stream,
//     materially lower coverage on a pointer-chase stream with no
//     learnable signature (the paper's irregularity premise — if the
//     model prefetched pointer chases, AMAC would have nothing to hide).
//  3. SEED     — SeedCalibrator's simulated policy-grid ranking agrees
//     with real measured calibration on two workload families (hash
//     probe, skip list search): same argmax, or the sim winner measures
//     within 10% cycles-per-input of the measured best.
//
// Exit status is the number of failed gates (0 = all pass), so CI can run
// `ext_memsim --quick` as a smoke gate.  --json emits BENCH_ext_memsim.json
// with every point behind the gates.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "adaptive/calibrator.h"
#include "adaptive/signature.h"
#include "join/hash_join.h"
#include "memsim/cache/trace.h"
#include "memsim/memsim.h"
#include "memsim/seed_calibrator.h"
#include "skiplist/skiplist_ops.h"

namespace amac::bench {
namespace {

std::vector<std::string> g_failures;

void Gate(bool ok, const std::string& what) {
  if (!ok) g_failures.push_back(what);
  std::printf("  gate %-58s %s\n", what.c_str(), ok ? "PASS" : "FAIL");
}

// ---------------------------------------------------------------------------
// Section 1: hierarchy-mode thread scaling (Fig 7/8 shape).
// ---------------------------------------------------------------------------

void ScalingSection(const memsim::AccessTrace& trace, bool quick,
                    uint64_t sim_lookups, JsonWriter* json) {
  struct MachinePlan {
    memsim::MachineConfig machine;
    std::vector<uint32_t> threads;
    bool gate_crossover;  ///< GQ-limited: expect the gap to compress
  };
  const std::vector<MachinePlan> plans = {
      {memsim::MachineConfig::XeonX5670(),
       quick ? std::vector<uint32_t>{1, 4, 12}
             : std::vector<uint32_t>{1, 2, 4, 6, 8, 12},
       true},
      {memsim::MachineConfig::SparcT4(),
       quick ? std::vector<uint32_t>{1, 8, 32}
             : std::vector<uint32_t>{1, 8, 32, 64},
       false},
  };

  for (const MachinePlan& plan : plans) {
    TablePrinter table(
        "ext_memsim scaling [" + plan.machine.name +
            "]: hierarchy-mode probe throughput (lookups/kilocycle)",
        {"threads", "Baseline", "GP", "SPP", "AMAC", "AMAC LLC miss%"});
    // AMAC/Baseline throughput ratio at the smallest and largest team —
    // the Xeon crossover gate compares these two.
    double first_ratio = 0, last_ratio = 0;
    bool amac_ge_baseline = true;
    for (uint32_t threads : plan.threads) {
      std::vector<std::string> row{std::to_string(threads)};
      double base_tpk = 0, amac_tpk = 0, amac_llc_miss = 0;
      for (ExecPolicy policy : kPaperPolicies) {
        memsim::SimConfig config;
        config.policy = policy;
        config.inflight = 10;
        config.stages = 2;
        config.num_threads = threads;
        config.lookups_per_thread = sim_lookups;
        config.trace = &trace;
        config.prefetcher = memsim::PrefetcherKind::kStride;
        const memsim::SimResult r = memsim::Simulate(plan.machine, config);
        const double tpk = r.ThroughputPerKilocycle();
        if (policy == ExecPolicy::kSequential) base_tpk = tpk;
        if (policy == ExecPolicy::kAmac) {
          amac_tpk = tpk;
          amac_llc_miss = r.LlcMissRate();
        }
        row.push_back(TablePrinter::Fmt(tpk, 2));
        if (json != nullptr) {
          json->BeginPoint();
          json->Field("section", std::string("scaling"));
          json->Field("machine", plan.machine.name);
          json->Field("threads", threads);
          json->Field("policy", std::string(SeriesName(policy)));
          json->Field("throughput_per_kilocycle", tpk);
          json->Field("cycles_per_lookup", r.CyclesPerLookup());
          json->Field("l1_miss_rate", r.L1MissRate());
          json->Field("l2_miss_rate", r.L2MissRate());
          json->Field("llc_miss_rate", r.LlcMissRate());
          json->Field("dram_row_hit_rate", r.DramRowHitRate());
          json->Field("gq_full_waits", r.gq_full_waits);
          json->Field("prefetch_accuracy", r.PrefetchAccuracy());
          json->Field("prefetch_coverage", r.PrefetchCoverage());
        }
      }
      row.push_back(TablePrinter::Fmt(amac_llc_miss * 100.0, 1));
      table.AddRow(row);
      if (amac_tpk < base_tpk) amac_ge_baseline = false;
      const double ratio = base_tpk > 0 ? amac_tpk / base_tpk : 0;
      if (threads == plan.threads.front()) first_ratio = ratio;
      if (threads == plan.threads.back()) last_ratio = ratio;
    }
    table.Print();
    Gate(amac_ge_baseline,
         "scaling[" + plan.machine.name + "]: AMAC >= Baseline everywhere");
    if (plan.gate_crossover) {
      std::printf("  AMAC/Baseline ratio: %.2fx at %u thread(s) -> %.2fx at "
                  "%u threads\n",
                  first_ratio, plan.threads.front(), last_ratio,
                  plan.threads.back());
      Gate(first_ratio >= 1.1 * last_ratio,
           "scaling[" + plan.machine.name +
               "]: GQ saturation compresses AMAC gap >=1.1x");
    }
  }
}

// ---------------------------------------------------------------------------
// Section 2: prefetcher ablation (stride vs pointer-chase coverage).
// ---------------------------------------------------------------------------

struct PrefetchPoint {
  double accuracy = 0, coverage = 0, timeliness = 0;
};

PrefetchPoint PrefetchRun(const memsim::MachineConfig& machine,
                          const memsim::AccessTrace& trace,
                          memsim::PrefetcherKind kind, JsonWriter* json,
                          const std::string& trace_name) {
  memsim::SimConfig config;
  config.policy = ExecPolicy::kSequential;
  config.inflight = 1;
  config.stages = 1;
  config.num_threads = 1;
  config.lookups_per_thread = trace.lookups();
  config.trace = &trace;
  config.prefetcher = kind;
  const memsim::SimResult r = memsim::Simulate(machine, config);
  if (json != nullptr) {
    json->BeginPoint();
    json->Field("section", std::string("prefetch"));
    json->Field("trace", trace_name);
    json->Field("prefetcher",
                std::string(memsim::PrefetcherKindName(kind)));
    json->Field("prefetch_accuracy", r.PrefetchAccuracy());
    json->Field("prefetch_coverage", r.PrefetchCoverage());
    json->Field("prefetch_timeliness", r.PrefetchTimeliness());
    json->Field("prefetches_issued", r.cache.prefetches_issued);
    json->Field("llc_misses", r.cache.llc_misses);
    json->Field("cycles_per_lookup", r.CyclesPerLookup());
  }
  return {r.PrefetchAccuracy(), r.PrefetchCoverage(),
          r.PrefetchTimeliness()};
}

void PrefetchSection(const memsim::AccessTrace& hash_trace, bool quick,
                     JsonWriter* json) {
  const memsim::MachineConfig machine = memsim::MachineConfig::XeonX5670();
  const uint64_t lookups = quick ? 4096 : 8192;
  const memsim::AccessTrace stride =
      memsim::StrideAccessTrace(lookups, 4, 64);
  const memsim::AccessTrace chase = memsim::PointerChaseAccessTrace(
      lookups, 4, /*region_bytes=*/64ull << 20, /*seed=*/11);

  struct Named {
    const char* name;
    const memsim::AccessTrace* trace;
  };
  const Named traces[] = {
      {"stride", &stride}, {"pointer-chase", &chase}, {"hash-probe",
                                                       &hash_trace}};
  const memsim::PrefetcherKind kinds[] = {
      memsim::PrefetcherKind::kNone, memsim::PrefetcherKind::kNextLine,
      memsim::PrefetcherKind::kStride, memsim::PrefetcherKind::kSpp};

  TablePrinter table(
      "ext_memsim prefetch [" + machine.name +
          "]: coverage / accuracy by trace (sequential, 1 thread)",
      {"trace", "none", "next-line", "stride", "spp",
       "spp accuracy"});
  double spp_stride_cov = 0, spp_chase_cov = 0;
  for (const Named& t : traces) {
    std::vector<std::string> row{t.name};
    double spp_acc = 0;
    for (memsim::PrefetcherKind kind : kinds) {
      const PrefetchPoint p =
          PrefetchRun(machine, *t.trace, kind, json, t.name);
      row.push_back(TablePrinter::Fmt(p.coverage, 3));
      if (kind == memsim::PrefetcherKind::kSpp) {
        spp_acc = p.accuracy;
        if (t.trace == &stride) spp_stride_cov = p.coverage;
        if (t.trace == &chase) spp_chase_cov = p.coverage;
      }
    }
    row.push_back(TablePrinter::Fmt(spp_acc, 3));
    table.AddRow(row);
  }
  table.Print();
  Gate(spp_stride_cov >= 0.9, "prefetch: SPP coverage >= 0.9 on stride");
  Gate(spp_chase_cov <= 0.5 * spp_stride_cov,
       "prefetch: SPP pointer-chase coverage <= 0.5x stride");
}

// ---------------------------------------------------------------------------
// Section 3: SeedCalibrator priors vs real measured calibration.
// ---------------------------------------------------------------------------

struct MeasuredPoint {
  GridPoint point;
  double cycles_per_input = 0;
};

/// Measure every grid point on the real machine: min cycles over `reps`,
/// one single-threaded executor per point (matching the governor's
/// per-thread-team calibration granularity).
template <typename RunFn>
std::vector<MeasuredPoint> MeasureGrid(const std::vector<GridPoint>& grid,
                                       uint32_t stages, uint32_t reps,
                                       RunFn&& run_once) {
  std::vector<MeasuredPoint> measured;
  measured.reserve(grid.size());
  for (const GridPoint& point : grid) {
    Executor exec(ExecConfig{point.policy, point.Params(stages), 1, 0});
    uint64_t best_cycles = 0;
    uint64_t inputs = 0;
    for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
      const RunStats run = run_once(exec);
      if (rep == 0 || run.cycles < best_cycles) best_cycles = run.cycles;
      inputs = run.inputs;
    }
    measured.push_back(
        {point, inputs ? static_cast<double>(best_cycles) /
                             static_cast<double>(inputs)
                       : 0});
  }
  return measured;
}

/// Compare the sim ranking against the measured table for one family.
void SeedFamily(const std::string& family,
                const memsim::AccessTrace& trace,
                const WorkloadSignature& sig,
                const std::vector<MeasuredPoint>& measured,
                JsonWriter* json) {
  const memsim::MachineConfig machine = memsim::MachineConfig::XeonX5670();
  Calibrator calibrator;
  memsim::SeedOptions options;
  options.num_threads = 1;
  options.stages = 2;
  options.prefetcher = memsim::PrefetcherKind::kStride;
  const memsim::SeedResult seed =
      memsim::SeedCalibrator(machine, trace, sig, &calibrator, options);

  auto measured_cpi = [&](const GridPoint& p) {
    for (const MeasuredPoint& m : measured)
      if (m.point == p) return m.cycles_per_input;
    return 0.0;
  };
  const MeasuredPoint* best = &measured.front();
  for (const MeasuredPoint& m : measured)
    if (m.cycles_per_input < best->cycles_per_input) best = &m;

  TablePrinter table("ext_memsim seed [" + family +
                         "]: sim ranking vs measured cycles/input",
                     {"rank", "policy", "M", "sim c/l", "measured c/l"});
  uint32_t rank = 0;
  for (const memsim::SeedEntry& e : seed.table) {
    table.AddRow({std::to_string(++rank), SeriesName(e.point.policy),
                  std::to_string(e.point.inflight),
                  TablePrinter::Fmt(e.cycles_per_input, 1),
                  TablePrinter::Fmt(measured_cpi(e.point), 1)});
    if (json != nullptr) {
      json->BeginPoint();
      json->Field("section", std::string("seed"));
      json->Field("family", family);
      json->Field("sim_rank", rank);
      json->Field("policy", std::string(SeriesName(e.point.policy)));
      json->Field("inflight", e.point.inflight);
      json->Field("sim_cycles_per_input", e.cycles_per_input);
      json->Field("measured_cycles_per_input", measured_cpi(e.point));
    }
  }
  table.Print();

  const double winner_measured = measured_cpi(seed.winner);
  const bool same_argmax = seed.winner == best->point;
  std::printf(
      "  sim winner %s/M=%u measures %.1f c/l; measured best %s/M=%u at "
      "%.1f c/l\n",
      SeriesName(seed.winner.policy), seed.winner.inflight, winner_measured,
      SeriesName(best->point.policy), best->point.inflight,
      best->cycles_per_input);
  Gate(seed.stored,
       "seed[" + family + "]: prior stored into the calibrator");
  Gate(calibrator.seeded_entries() == 1,
       "seed[" + family + "]: entry is marked from_sim");
  Gate(same_argmax ||
           winner_measured <= 1.10 * best->cycles_per_input,
       "seed[" + family + "]: sim winner within 10% of measured best");
}

void SeedSection(const BenchArgs& args, bool quick, JsonWriter* json) {
  const uint32_t reps = std::max(2u, args.reps);
  const std::vector<GridPoint> grid = memsim::DefaultSeedGrid();

  // Family 1: hash-probe.  The table (2^20 keys) dwarfs any real LLC, and
  // the probe keys are random, so the measured runs are DRAM-bound — the
  // regime the simulator models.
  {
    const uint64_t probe_n = quick ? uint64_t{1} << 14 : uint64_t{1} << 16;
    const PreparedJoin prepared =
        PrepareJoin(uint64_t{1} << 20, probe_n, 0, 0, 42);
    const memsim::AccessTrace trace = memsim::CollectAccessTrace(
        *prepared.table, prepared.s, /*early_exit=*/true);
    const auto measured =
        MeasureGrid(grid, /*stages=*/2, reps, [&](Executor& exec) {
          return ProbePhase(exec, *prepared.table, prepared.s,
                            /*early_exit=*/true);
        });
    SeedFamily("hash-probe", trace,
               WorkloadSignature::Make("ext_memsim.hash_probe", probe_n, 64),
               measured, json);
  }

  // Family 2: skip list search — deeper dependent chains, bigger nodes.
  {
    const uint64_t keys = uint64_t{1} << 18;
    const uint64_t probe_n = quick ? uint64_t{1} << 13 : uint64_t{1} << 15;
    const PreparedJoin prepared = PrepareJoin(keys, probe_n, 0, 0, 7);
    const std::unique_ptr<SkipList> list = BuildSkipList(prepared.r, 19);
    const memsim::AccessTrace trace =
        memsim::CollectSkipAccessTrace(*list, prepared.s);
    const auto measured =
        MeasureGrid(grid, /*stages=*/2, reps, [&](Executor& exec) {
          return RunSkipListSearch(exec, *list, prepared.s);
        });
    SeedFamily("skiplist", trace,
               WorkloadSignature::Make("ext_memsim.skiplist", probe_n, 64),
               measured, json);
  }
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineBool("quick", false,
                        "smaller traces/grids for the CI smoke gate");
  args.flags.DefineString("json", "",
                          "write machine-readable results to this path");
  args.flags.DefineInt("sim_lookups", 0,
                       "simulated lookups per thread in the scaling "
                       "section (0 picks by mode)");
  args.Define(/*default_scale_log2=*/18);
  args.Parse(argc, argv);
  const bool quick = args.flags.GetBool("quick");
  const uint64_t sim_lookups =
      args.flags.GetInt("sim_lookups") > 0
          ? static_cast<uint64_t>(args.flags.GetInt("sim_lookups"))
          : (quick ? 1500 : 5000);

  PrintHeader(
      "ext_memsim (cache-hierarchy model acceptance: Fig 7/8 shape, "
      "prefetcher ablation, calibration seeding)",
      "gates exit nonzero on failure; see src/memsim/DESIGN.md");

  std::unique_ptr<JsonWriter> json;
  const std::string json_path = args.flags.GetString("json");
  if (!json_path.empty()) {
    json = std::make_unique<JsonWriter>(json_path, "ext_memsim");
    json->Field("quick", uint64_t{quick ? 1u : 0u});
    json->Field("scale", args.scale);
    json->BeginSeries();
  }

  // The shared real-workload trace: a uniform hash probe whose footprint
  // exceeds the modeled Xeon LLC (12 MB), so the simulated hierarchy is
  // DRAM-bound like the paper's 2^27-scale runs.
  const PreparedJoin prepared =
      PrepareJoin(args.scale, args.scale, 0, 0, 13);
  const memsim::AccessTrace hash_trace = memsim::CollectAccessTrace(
      *prepared.table, prepared.s, /*early_exit=*/true);

  ScalingSection(hash_trace, quick, sim_lookups, json.get());
  PrefetchSection(hash_trace, quick, json.get());
  SeedSection(args, quick, json.get());

  if (json != nullptr && !json->Close()) {
    g_failures.push_back("json artifact write failed");
  }
  if (g_failures.empty()) {
    std::printf("\next_memsim: all gates PASS\n");
  } else {
    std::printf("\next_memsim: %zu gate(s) FAILED:\n", g_failures.size());
    for (const std::string& f : g_failures)
      std::printf("  FAIL %s\n", f.c_str());
  }
  return static_cast<int>(g_failures.size());
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
