// Figure 10: BST search cycles per output tuple vs tree size (the paper
// sweeps 2^15..2^29; default here sweeps up to the --scale_log2 cap).
// The scheduled engines dispatch through the unified runtime (one
// BstSearchOp, three policies); Baseline stays the hand-written
// no-prefetch chase that anchors the paper's speedup ratios.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "bst/bst.h"
#include "bst/bst_search.h"
#include "common/cycle_timer.h"
#include "common/table_printer.h"
#include "core/ops.h"
#include "core/scheduler.h"
#include "join/sink.h"

namespace amac::bench {
namespace {

uint64_t MeasureBst(Executor& exec, const BinarySearchTree& tree,
                    const Relation& probe, ExecPolicy policy,
                    uint32_t reps) {
  uint64_t best = UINT64_MAX;
  for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
    CountChecksumSink sink;
    if (policy == ExecPolicy::kSequential) {
      // The paper's baseline is a plain pointer chase with no prefetches;
      // keep the hand kernel so the speedup ratios stay comparable.
      CycleTimer timer;
      BstSearchBaseline(tree, probe, 0, probe.size(), sink);
      best = std::min(best, timer.Elapsed());
    } else {
      exec.set_policy(policy);
      const RunStats run = exec.Run(FromOp(probe.size(), [&](uint32_t) {
        return BstSearchOp<CountChecksumSink>(tree, probe, sink);
      }));
      best = std::min(best, run.cycles);
    }
  }
  return best;
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("gp_stages", 24,
                       "provisioned descent stages for GP/SPP (tune to ~avg "
                       "tree depth)");
  args.Define(/*default_scale_log2=*/23);
  args.Parse(argc, argv);

  PrintHeader("Figure 10 (BST search, Xeon x5670)",
              "random (unbalanced) tree; probe count = tree size; every "
              "probe matches");

  std::vector<int> sizes;
  for (int log2 = 15; log2 <= args.flags.GetInt("scale_log2"); log2 += 2) {
    sizes.push_back(log2);
  }
  if (sizes.empty() || sizes.back() != args.flags.GetInt("scale_log2")) {
    sizes.push_back(static_cast<int>(args.flags.GetInt("scale_log2")));
  }
  const uint32_t stages =
      static_cast<uint32_t>(args.flags.GetInt("gp_stages"));
  Executor exec(ExecConfig{ExecPolicy::kAmac,
                           SchedulerParams{args.inflight, stages, 0}, 1,
                           0});

  // The vector columns run the 8-wide gathered descent (bst/bst_search.h);
  // on scalar-only hosts they fall back to the equivalent scalar schedule.
  constexpr ExecPolicy kFig10Policies[] = {
      ExecPolicy::kSequential,        ExecPolicy::kGroupPrefetch,
      ExecPolicy::kSoftwarePipelined, ExecPolicy::kAmac,
      ExecPolicy::kVectorized,        ExecPolicy::kVectorizedAmac};
  TablePrinter table("Fig 10: BST search cycles per output tuple",
                     {"tree size (log2)", "avg depth", "Baseline", "GP",
                      "SPP", "AMAC", "Vectorized", "VecAMAC"});
  for (int log2 : sizes) {
    const uint64_t n = uint64_t{1} << log2;
    const Relation rel = MakeDenseUniqueRelation(n, 23);
    const BinarySearchTree tree = BuildBst(rel);
    const Relation probe = MakeForeignKeyRelation(n, n, 24);
    const BstStats stats = tree.ComputeStats();
    std::vector<std::string> row{std::to_string(log2),
                                 TablePrinter::Fmt(stats.avg_depth, 1)};
    for (ExecPolicy policy : kFig10Policies) {
      const uint64_t cycles = MeasureBst(exec, tree, probe, policy,
                                         args.reps);
      row.push_back(TablePrinter::Fmt(
          static_cast<double>(cycles) / static_cast<double>(n), 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "expected shape: prefetcher advantage grows with tree height; AMAC > "
      "GP > SPP (paper: 2.8x / 2.1x / 1.8x geomean, AMAC max 4.45x).\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
