// Serving extension: mixed-workload throughput and tail latency of the
// shared-pool QueryScheduler as concurrent clients scale.
//
// This is the repo's first latency-under-load scenario.  C closed-loop
// clients each submit a stream of mixed queries — hash-join probe,
// group-by, btree/bst/skiplist point lookups, graph random walks, and the
// fused join->group-by — against shared read-only structures, all
// multiplexed over ONE QueryScheduler (one ThreadPool) with admission
// control.  Every completed query is verified against a solo sequential
// oracle (schedule-independent checksums), so the bench doubles as a
// concurrency self-check: any divergence, zero throughput, or zero
// latency percentile exits nonzero.
//
//   --quick            CI smoke: scale 2^12, 8 clients x all 5 policies
//   --workers=N        scheduler pool size (default: hardware threads)
//   --max_inflight=N   admission cap (0 = unbounded; default 2x workers)
//   --queries=N        queries per client
//
// --open-loop switches to the OPEN-loop scenario instead: a LoadGenerator
// submits single-morsel point queries on a Poisson/bursty/diurnal arrival
// schedule regardless of completions, sweeping offered load through the
// capacity planner's predicted knee.  Each offered rate runs twice — a
// queue-forever baseline vs SLO-aware admission (EDF + bounded pending +
// expiry shedding) — and the gates require (a) zero oracle divergence,
// (b) ServingStats outcome counters exactly matching per-ticket tallies,
// (c) past predicted capacity, SLO-aware goodput-under-SLO strictly above
// the baseline's, and (d) predicted capacity within 30% of measured for
// at least two policies.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "bst/bst.h"
#include "btree/btree.h"
#include "btree/btree_ops.h"
#include "common/cycle_timer.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/zipf.h"
#include "core/ops.h"
#include "core/pipeline.h"
#include "graph/csr.h"
#include "graph/graph_ops.h"
#include "groupby/groupby_ops.h"
#include "join/join_ops.h"
#include "server/capacity_planner.h"
#include "server/load_gen.h"
#include "server/query_scheduler.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_ops.h"

namespace amac::bench {
namespace {

/// Shared read-only structures every query kind runs against, plus the
/// solo-sequential oracle results each concurrent run must reproduce.
struct Workload {
  Relation r;          ///< build side
  Relation s;          ///< probe / fused input
  Relation gb_input;   ///< group-by input
  Relation idx_probe;  ///< index point-lookup keys (hits and misses)
  std::unique_ptr<ChainedHashTable> table;
  std::unique_ptr<BTree> btree;
  std::unique_ptr<BinarySearchTree> bst;
  std::unique_ptr<SkipList> slist;
  std::unique_ptr<CsrGraph> graph;
  uint64_t group_capacity = 0;
  uint64_t walkers = 0;
  uint32_t hops = 8;

  struct Oracle {
    uint64_t outputs = 0;
    uint64_t checksum = 0;
  };
  // One oracle per query kind (indexes match kQueryKinds).
  std::vector<Oracle> oracles;
};

constexpr const char* kQueryKinds[] = {
    "join-probe", "group-by", "btree", "bst", "skiplist", "walks", "fused"};
constexpr int kNumKinds = 7;

Workload PrepareWorkload(uint64_t scale) {
  Workload w;
  w.r = MakeDenseUniqueRelation(scale, 901);
  w.s = MakeForeignKeyRelation(scale, scale, 902);
  w.gb_input = MakeZipfRelation(scale, scale / 8 + 1, 0.6, 903);
  w.idx_probe = MakeZipfRelation(scale, 2 * scale, 0.3, 904);
  w.table = std::make_unique<ChainedHashTable>(scale,
                                               ChainedHashTable::Options{});
  BuildTableUnsync(w.r, w.table.get());
  w.btree = std::make_unique<BTree>(w.r);
  w.bst = std::make_unique<BinarySearchTree>(BuildBst(w.r));
  w.slist = BuildSkipList(w.r, 905);
  w.graph = MakeWalkGraph(scale, 906);
  w.walkers = scale / 4;
  w.group_capacity = scale + 1;
  return w;
}

/// A submitted query plus how to verify its result against the oracle.
struct PendingQuery {
  QueryTicket ticket;
  int kind = 0;
  /// Returns false on divergence from the solo oracle.
  std::function<bool(const QueryStats&)> verify;
};

/// The declarative plan for query `kind`.  Aggregating kinds (group-by and
/// fused, indexes 1 and 6) write into `agg`, which must outlive execution;
/// the other kinds ignore it.
Plan KindPlan(const Workload& w, int kind, AggregateTable* agg) {
  switch (kind) {
    case 0: return Plan::Scan(w.s).Lookup(*w.table);
    case 1: return Plan::Scan(w.gb_input).GroupByInto(agg);
    case 2: return Plan::Scan(w.idx_probe).LookupBTree(*w.btree);
    case 3: return Plan::Scan(w.idx_probe).LookupBst(*w.bst);
    case 4: return Plan::Scan(w.idx_probe).LookupSkipList(*w.slist);
    case 5: return Plan::Walks(*w.graph, w.walkers, w.hops, 907);
    default: return Plan::Scan(w.s).Lookup(*w.table).GroupByInto(agg);
  }
}

bool KindAggregates(int kind) { return kind == 1 || kind >= 6; }

/// Submit one query of `kind` to the scheduler.  Aggregating kinds carry a
/// per-query AggregateTable kept alive by the verify closure.
PendingQuery SubmitKind(QueryScheduler& sched, const Workload& w, int kind,
                        const QueryOptions& options) {
  PendingQuery pending;
  pending.kind = kind;
  const Workload::Oracle& oracle = w.oracles[static_cast<size_t>(kind)];
  if (KindAggregates(kind)) {
    auto agg = std::make_shared<AggregateTable>(w.group_capacity,
                                                AggregateTable::Options{});
    pending.ticket = Submit(sched, KindPlan(w, kind, agg.get()), options);
    pending.verify = [agg, oracle](const QueryStats&) {
      return agg->CountGroups() == oracle.outputs &&
             agg->Checksum() == oracle.checksum;
    };
  } else {
    pending.ticket = Submit(sched, KindPlan(w, kind, nullptr), options);
    pending.verify = [oracle](const QueryStats& q) {
      return q.run.outputs == oracle.outputs &&
             q.run.checksum == oracle.checksum;
    };
  }
  return pending;
}

/// Record every kind's solo sequential run: the schedule-independent
/// result the concurrent runs must reproduce.  Aggregating plans report
/// their table's groups/checksum through RunStats, so one loop covers all
/// seven kinds.
void ComputeOracles(Workload* w) {
  w->oracles.assign(kNumKinds, {});
  for (int kind = 0; kind < kNumKinds; ++kind) {
    AggregateTable agg(w->group_capacity, AggregateTable::Options{});
    const RunStats run = SoloRun(KindPlan(*w, kind, &agg));
    w->oracles[static_cast<size_t>(kind)] = {run.outputs, run.checksum};
  }
}

struct LoadPoint {
  uint32_t clients = 0;
  uint64_t queries = 0;
  double seconds = 0;
  ServingStats serving;
  uint64_t divergent = 0;
};

/// Closed-loop load: `clients` threads each submit+wait `per_client` mixed
/// queries against one shared scheduler.
LoadPoint RunLoad(const Workload& w, ExecPolicy policy, uint32_t workers,
                  uint32_t max_inflight, uint32_t clients,
                  uint32_t per_client, uint32_t inflight) {
  QueryScheduler sched(
      QuerySchedulerOptions{workers, max_inflight, AdmissionOrder::kFifo});
  QueryOptions options;
  options.policy = policy;
  options.params = SchedulerParams{inflight, 2, 0};
  std::atomic<uint64_t> divergent{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (uint32_t i = 0; i < per_client; ++i) {
        const int kind = static_cast<int>((c + i) % kNumKinds);
        PendingQuery pending = SubmitKind(sched, w, kind, options);
        const QueryStats q = sched.Wait(pending.ticket);
        if (!pending.verify(q)) divergent.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadPoint point;
  point.clients = clients;
  point.queries = static_cast<uint64_t>(clients) * per_client;
  point.seconds = wall.ElapsedSeconds();
  point.serving = sched.serving_stats();
  point.divergent = divergent.load();
  return point;
}

bool ReportPoint(TablePrinter* table, const LoadPoint& point) {
  const double qps =
      point.seconds > 0 ? static_cast<double>(point.queries) / point.seconds
                        : 0;
  table->AddRow(
      {std::to_string(point.clients), TablePrinter::Fmt(qps, 1),
       TablePrinter::Fmt(point.serving.p50_latency_seconds * 1e3, 2),
       TablePrinter::Fmt(point.serving.p95_latency_seconds * 1e3, 2),
       TablePrinter::Fmt(point.serving.p99_latency_seconds * 1e3, 2),
       TablePrinter::Fmt(point.serving.total_queue_seconds /
                             std::max<uint64_t>(1, point.serving.completed) *
                             1e3,
                         2)});
  bool ok = true;
  if (point.divergent > 0) {
    std::printf("ERROR: %llu queries diverged from the solo oracle at %u "
                "clients\n",
                static_cast<unsigned long long>(point.divergent),
                point.clients);
    ok = false;
  }
  if (point.serving.completed != point.queries) {
    std::printf("ERROR: scheduler completed %llu of %llu queries\n",
                static_cast<unsigned long long>(point.serving.completed),
                static_cast<unsigned long long>(point.queries));
    ok = false;
  }
  if (qps <= 0 || point.serving.p50_latency_seconds <= 0 ||
      point.serving.p95_latency_seconds <= 0 ||
      point.serving.p99_latency_seconds <= 0) {
    std::printf("ERROR: zero throughput or latency percentile at %u "
                "clients\n",
                point.clients);
    ok = false;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Open-loop scenario (--open-loop)
// ---------------------------------------------------------------------------

/// Single-morsel point-query kinds (indexes into kQueryKinds).  The
/// aggregating kinds are excluded: a per-query AggregateTable across tens
/// of thousands of open-loop tickets would dominate memory, and the
/// capacity model wants queries that are one morsel of pure lookup work.
constexpr int kOpenLoopKinds[] = {0, 2, 3, 4};  // join-probe, btree, bst,
                                                // skiplist
constexpr int kNumOpenLoopKinds = 4;
/// Popularity windows: each query targets one of these pre-built input
/// relations, picked by Zipf rank — the key-popularity skew of a real
/// serving mix without per-query input construction.
constexpr uint32_t kNumWindows = 8;
constexpr double kWindowZipfTheta = 0.9;

struct OpenLoopWorkload {
  uint64_t scale = 0;
  Relation r;  ///< shared build side
  std::unique_ptr<ChainedHashTable> table;
  std::unique_ptr<BTree> btree;
  std::unique_ptr<BinarySearchTree> bst;
  std::unique_ptr<SkipList> slist;
  std::vector<Relation> s;          ///< per-window join-probe input
  std::vector<Relation> idx_probe;  ///< per-window index-lookup keys
  /// Solo-sequential oracle per (open-loop kind index, window).
  Workload::Oracle oracles[kNumOpenLoopKinds][kNumWindows];
};

QueryTicket SubmitOpenLoopKind(QueryScheduler& sched,
                               const OpenLoopWorkload& w, int kind_index,
                               uint32_t window, const QueryOptions& options) {
  switch (kOpenLoopKinds[kind_index]) {
    case 0:
      return Submit(sched, Plan::Scan(w.s[window]).Lookup(*w.table),
                    options);
    case 2:
      return Submit(
          sched, Plan::Scan(w.idx_probe[window]).LookupBTree(*w.btree),
          options);
    case 3:
      return Submit(sched, Plan::Scan(w.idx_probe[window]).LookupBst(*w.bst),
                    options);
    default:
      return Submit(
          sched, Plan::Scan(w.idx_probe[window]).LookupSkipList(*w.slist),
          options);
  }
}

/// Per-query execution shape of the open-loop scenario: ONE morsel, ONE
/// slot, so the scheduler serves it like an M/G/c queue and the capacity
/// model has a chance of being right.
QueryOptions OpenLoopQueryOptions(const OpenLoopWorkload& w,
                                  ExecPolicy policy, uint32_t inflight) {
  QueryOptions options;
  options.policy = policy;
  options.params = SchedulerParams{inflight, 2, 0};
  options.morsel_size = w.scale;
  options.max_slots = 1;
  return options;
}

OpenLoopWorkload PrepareOpenLoopWorkload(uint64_t scale) {
  OpenLoopWorkload w;
  w.scale = scale;
  w.r = MakeDenseUniqueRelation(scale, 901);
  w.table =
      std::make_unique<ChainedHashTable>(scale, ChainedHashTable::Options{});
  BuildTableUnsync(w.r, w.table.get());
  w.btree = std::make_unique<BTree>(w.r);
  w.bst = std::make_unique<BinarySearchTree>(BuildBst(w.r));
  w.slist = BuildSkipList(w.r, 905);
  for (uint32_t win = 0; win < kNumWindows; ++win) {
    w.s.push_back(MakeForeignKeyRelation(scale, scale, 910 + win));
    w.idx_probe.push_back(MakeZipfRelation(scale, 2 * scale, 0.3, 930 + win));
  }
  // Solo-sequential oracles for every (kind, window) combination.
  QueryScheduler solo(QuerySchedulerOptions{1, 1, AdmissionOrder::kFifo});
  QueryOptions options =
      OpenLoopQueryOptions(w, ExecPolicy::kSequential, 1);
  options.params = SchedulerParams{1, 1, 0};
  for (int k = 0; k < kNumOpenLoopKinds; ++k) {
    for (uint32_t win = 0; win < kNumWindows; ++win) {
      const QueryStats q =
          solo.Wait(SubmitOpenLoopKind(solo, w, k, win, options));
      w.oracles[k][win] = {q.run.outputs, q.run.checksum};
    }
  }
  return w;
}

/// What the capacity planner predicts for one policy, plus the SLO the
/// sweep will serve under (a generous multiple of E[S], so below the knee
/// nearly everything meets it and past the knee only queueing kills it).
struct PolicyPlan {
  CapacityEstimate estimate;
  double slo_seconds = 0;
};

/// Measure cycles-per-input calibrator-style (solo runs of the real
/// queries) and turn it into a capacity prediction for `serve_workers`.
PolicyPlan MeasurePolicyPlan(const OpenLoopWorkload& w, ExecPolicy policy,
                             uint32_t serve_workers, uint32_t inflight,
                             double tsc_hz, uint32_t reps) {
  QueryScheduler solo(QuerySchedulerOptions{1, 1, AdmissionOrder::kFifo});
  const QueryOptions options = OpenLoopQueryOptions(w, policy, inflight);
  // One throwaway pass first: at bench scales the tables are cache
  // resident, so a cold first rep would inflate E[S] (and deflate the
  // predicted capacity) by the one-time miss cost.
  for (int k = 0; k < kNumOpenLoopKinds; ++k) {
    (void)solo.Wait(SubmitOpenLoopKind(solo, w, k, 0, options));
  }
  double cpi_sum = 0;
  uint32_t n = 0;
  for (uint32_t rep = 0; rep < reps; ++rep) {
    for (int k = 0; k < kNumOpenLoopKinds; ++k) {
      const QueryStats q = solo.Wait(
          SubmitOpenLoopKind(solo, w, k, rep % kNumWindows, options));
      cpi_sum += q.run.CyclesPerInput();
      ++n;
    }
  }
  PolicyPlan plan;
  plan.estimate = CapacityPlanner::FromCyclesPerInput(
      policy, cpi_sum / n, w.scale, serve_workers, tsc_hz);
  plan.slo_seconds = 20 * plan.estimate.service_seconds;
  return plan;
}

struct OpenLoopResult {
  LoadGenReport gen;
  ServingStats stats;
  uint64_t divergent = 0;
  // Per-ticket tallies, independently recomputed from Wait() results;
  // must match the ServingStats counters exactly.
  uint64_t served = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t goodput = 0;
  double serve_seconds = 0;  ///< submit through drain, the full window
  double goodput_qps = 0;    ///< goodput over the full serving window
};

/// One open-loop run: drive `offered_qps` arrivals for `duration` seconds
/// against a fresh scheduler, then drain and verify every served ticket.
OpenLoopResult RunOpenLoopPoint(const OpenLoopWorkload& w,
                                const PolicyPlan& plan, uint32_t workers,
                                uint32_t inflight, bool slo_aware,
                                ArrivalKind arrival, double offered_qps,
                                double duration, uint64_t seed) {
  const uint32_t serve = workers > 1 ? workers - 1 : 1;
  QuerySchedulerOptions sopts;
  sopts.num_workers = workers;
  sopts.max_inflight_queries = serve;
  if (slo_aware) {
    sopts.order = AdmissionOrder::kDeadline;
    sopts.shed_expired = true;
    // Bound pending so the worst admitted queue wait roughly fits the
    // SLO: serve drains c queries per E[S], so 16c pending ~= 16 E[S].
    sopts.max_pending = 16 * serve;
  }
  struct Issued {
    QueryTicket ticket;
    int kind_index;
    uint32_t window;
  };
  std::vector<Issued> issued;
  issued.reserve(static_cast<size_t>(offered_qps * duration * 2) + 16);

  OpenLoopResult result;
  {
    QueryScheduler sched(sopts);
    QueryOptions base = OpenLoopQueryOptions(w, plan.estimate.policy,
                                             inflight);
    base.deadline_seconds = plan.slo_seconds;
    ZipfGenerator window_pick(kNumWindows, kWindowZipfTheta, seed ^ 0x51);
    LoadGenOptions lopts;
    lopts.arrival.kind = arrival;
    lopts.arrival.rate_qps = offered_qps;
    lopts.arrival.seed = seed;
    lopts.duration_seconds = duration;
    // Two tenants with unequal fair-share weights keep the per-tenant
    // accounting exercised even though the open-loop gates don't key on
    // it.
    lopts.tenants = {TenantMix{0, 0.5, 1.0}, TenantMix{1, 0.5, 3.0}};
    lopts.mix_seed = seed ^ 0xa11;
    // Goodput is measured over the FULL serving window, submit through
    // drain: the drain tail is real serving time (at overload the
    // queue-forever baseline pays for its backlog there).
    WallTimer serve_wall;
    result.gen = LoadGenerator::Run(
        lopts, [&](uint64_t i, const TenantMix& tenant) {
          QueryOptions options = base;
          options.tenant = tenant.tenant;
          options.tenant_weight = tenant.weight;
          const int kind_index = static_cast<int>(i % kNumOpenLoopKinds);
          const uint32_t window =
              static_cast<uint32_t>(window_pick.Next() - 1);
          issued.push_back(Issued{
              SubmitOpenLoopKind(sched, w, kind_index, window, options),
              kind_index, window});
        });
    sched.Drain();
    result.serve_seconds = serve_wall.ElapsedSeconds();
    result.stats = sched.serving_stats();
    for (const Issued& q : issued) {
      const QueryStats stats = sched.Wait(q.ticket);
      switch (stats.outcome) {
        case QueryOutcome::kServed: {
          ++result.served;
          const Workload::Oracle& oracle =
              w.oracles[q.kind_index][q.window];
          if (stats.run.outputs != oracle.outputs ||
              stats.run.checksum != oracle.checksum) {
            ++result.divergent;
          }
          if (stats.deadline_met) ++result.goodput;
          break;
        }
        case QueryOutcome::kRejected:
          ++result.rejected;
          break;
        case QueryOutcome::kShed:
          ++result.shed;
          break;
      }
    }
  }
  result.goodput_qps =
      result.serve_seconds > 0
          ? static_cast<double>(result.goodput) / result.serve_seconds
          : 0;
  return result;
}

/// Gate: ServingStats counters must exactly match the per-ticket tallies
/// and the outcome partition must cover every submission (the merge
/// invariant — rejected/shed queries must not leak into served sums).
bool CheckOpenLoopInvariants(const OpenLoopResult& r, const char* where) {
  bool ok = true;
  const ServingStats& s = r.stats;
  if (s.submitted != r.gen.submitted ||
      s.completed + s.rejected + s.shed != s.submitted) {
    std::printf("ERROR[%s]: outcome partition broken: submitted=%llu "
                "completed=%llu rejected=%llu shed=%llu\n",
                where, static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.shed));
    ok = false;
  }
  if (s.completed != r.served || s.rejected != r.rejected ||
      s.shed != r.shed || s.goodput_queries != r.goodput) {
    std::printf("ERROR[%s]: ServingStats counters disagree with per-ticket "
                "tallies\n",
                where);
    ok = false;
  }
  if (s.goodput_queries + s.deadline_missed != s.completed) {
    std::printf("ERROR[%s]: goodput + missed != completed\n", where);
    ok = false;
  }
  uint64_t tenant_submitted = 0;
  for (const TenantServingStats& t : s.tenants) {
    tenant_submitted += t.submitted;
  }
  if (tenant_submitted != s.submitted) {
    std::printf("ERROR[%s]: per-tenant submitted sums to %llu, not %llu\n",
                where, static_cast<unsigned long long>(tenant_submitted),
                static_cast<unsigned long long>(s.submitted));
    ok = false;
  }
  if (r.divergent > 0) {
    std::printf("ERROR[%s]: %llu served queries diverged from the solo "
                "oracle\n",
                where, static_cast<unsigned long long>(r.divergent));
    ok = false;
  }
  return ok;
}

int RunOpenLoop(const BenchArgs& args, bool quick, uint64_t scale,
                uint32_t inflight) {
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  uint32_t workers = 0;
  // Small pools on purpose: the single generator thread must sustain
  // 1.5x the pool's capacity, and the capacity model is cleanest when
  // the serve workers, not the submit path, are the bottleneck.
  workers = std::min(hw, quick ? 3u : 5u);
  workers = std::max(2u, workers);
  const uint32_t serve = workers - 1;
  const double duration = quick ? 0.4 : 1.0;
  const std::vector<ExecPolicy> policies =
      quick ? std::vector<ExecPolicy>{ExecPolicy::kSequential,
                                      ExecPolicy::kAmac}
            : std::vector<ExecPolicy>{
                  ExecPolicy::kSequential, ExecPolicy::kGroupPrefetch,
                  ExecPolicy::kAmac, ExecPolicy::kVectorizedAmac};
  const std::vector<double> load_factors =
      quick ? std::vector<double>{0.6, 0.9, 1.5}
            : std::vector<double>{0.5, 0.8, 1.0, 1.5};
  const double overload_factor = load_factors.back();

  PrintHeader(
      "Serving extension (open loop): offered load vs goodput-under-SLO",
      (quick ? std::string("CI smoke (--quick)")
             : std::string("full sweep")) +
          ": " + std::to_string(workers) + " workers (" +
          std::to_string(serve) + " serving), " +
          std::to_string(kNumOpenLoopKinds) + " query kinds x " +
          std::to_string(kNumWindows) + " Zipf(" +
          TablePrinter::Fmt(kWindowZipfTheta, 2) + ") windows, scale 2^" +
          std::to_string(63 - __builtin_clzll(scale)));

  OpenLoopWorkload w = PrepareOpenLoopWorkload(scale);
  const double tsc_hz = EstimateTscHz();

  const std::string json_path = args.flags.GetString("json");
  std::unique_ptr<JsonWriter> json;
  if (!json_path.empty()) {
    json = std::make_unique<JsonWriter>(json_path, "ext_serving_openloop");
    json->Field("scale", scale);
    json->Field("workers", workers);
    json->Field("serve_workers", serve);
    json->Field("duration_seconds", duration);
    json->BeginSeries();
  }

  bool ok = true;
  uint32_t policies_within_band = 0;
  uint64_t seed = 7001;
  for (const ExecPolicy policy : policies) {
    const PolicyPlan plan =
        MeasurePolicyPlan(w, policy, serve, inflight, tsc_hz,
                          /*reps=*/quick ? 2 : 3);
    TablePrinter table(
        std::string("ext_serving --open-loop ") + ExecPolicyName(policy) +
            ": predicted capacity " +
            TablePrinter::Fmt(plan.estimate.capacity_qps, 0) +
            " qps, SLO " +
            TablePrinter::Fmt(plan.slo_seconds * 1e3, 2) + " ms",
        {"offered qps", "mode", "served", "rejected", "shed",
         "goodput qps", "p99 ms", "max lag ms"});
    double measured_qps = 0;
    double baseline_overload_goodput = 0;
    double slo_overload_goodput = 0;
    for (const double factor : load_factors) {
      const double offered = factor * plan.estimate.capacity_qps;
      for (const bool slo_aware : {false, true}) {
        const OpenLoopResult r = RunOpenLoopPoint(
            w, plan, workers, inflight, slo_aware, ArrivalKind::kPoisson,
            offered, duration, seed++);
        ok = CheckOpenLoopInvariants(
                 r, slo_aware ? "slo-aware" : "baseline") &&
             ok;
        table.AddRow({TablePrinter::Fmt(offered, 0),
                      slo_aware ? "slo-aware" : "baseline",
                      std::to_string(r.served), std::to_string(r.rejected),
                      std::to_string(r.shed),
                      TablePrinter::Fmt(r.goodput_qps, 1),
                      TablePrinter::Fmt(
                          r.stats.p99_latency_seconds * 1e3, 2),
                      TablePrinter::Fmt(r.gen.max_lag_seconds * 1e3, 2)});
        if (slo_aware) {
          measured_qps = std::max(measured_qps, r.goodput_qps);
          if (factor == overload_factor) slo_overload_goodput = r.goodput_qps;
        } else if (factor == overload_factor) {
          baseline_overload_goodput = r.goodput_qps;
        }
        if (json) {
          json->BeginPoint();
          json->Field("policy", std::string(ExecPolicyName(policy)));
          json->Field("arrival", std::string("poisson"));
          json->Field("mode", std::string(slo_aware ? "slo-aware"
                                                    : "baseline"));
          json->Field("load_factor", factor);
          json->Field("offered_qps", offered);
          json->Field("predicted_capacity_qps", plan.estimate.capacity_qps);
          json->Field("submitted", r.gen.submitted);
          json->Field("served", r.served);
          json->Field("rejected", r.rejected);
          json->Field("shed", r.shed);
          json->Field("goodput_qps", r.goodput_qps);
          json->Field("p50_ms", r.stats.p50_latency_seconds * 1e3);
          json->Field("p99_ms", r.stats.p99_latency_seconds * 1e3);
          json->Field("max_lag_ms", r.gen.max_lag_seconds * 1e3);
        }
      }
    }
    table.Print();
    // The queueing knee: past predicted capacity the queue-forever
    // baseline's latencies blow through the SLO, while shedding admission
    // keeps serving within it.
    if (slo_overload_goodput <= baseline_overload_goodput) {
      std::printf("ERROR: %s at %.1fx capacity: slo-aware goodput %.1f qps "
                  "not above baseline %.1f qps\n",
                  ExecPolicyName(policy), overload_factor,
                  slo_overload_goodput, baseline_overload_goodput);
      ok = false;
    }
    const double ratio =
        measured_qps > 0 ? plan.estimate.capacity_qps / measured_qps : 0;
    const bool within = ratio >= 0.7 && ratio <= 1.43;
    std::printf("%s: predicted %.0f qps, measured max goodput %.0f qps "
                "(ratio %.2f%s)\n",
                ExecPolicyName(policy), plan.estimate.capacity_qps,
                measured_qps, ratio, within ? ", within 30%" : "");
    if (within) ++policies_within_band;
  }
  if (policies_within_band < 2) {
    std::printf("ERROR: capacity prediction within 30%% for only %u "
                "policies (need >= 2)\n",
                policies_within_band);
    ok = false;
  }

  // Arrival-process section: same mean offered load, different shapes.
  // Burstiness costs goodput at the same mean rate — the reason the
  // planner's capacity number alone does not size a deployment.
  {
    const ExecPolicy policy = ExecPolicy::kAmac;
    const PolicyPlan plan =
        MeasurePolicyPlan(w, policy, serve, inflight, tsc_hz, 2);
    const double offered = 0.9 * plan.estimate.capacity_qps;
    TablePrinter table(
        std::string("ext_serving --open-loop arrival shapes (") +
            ExecPolicyName(policy) + ", 0.9x capacity, slo-aware)",
        {"arrival", "submitted", "served", "shed", "goodput qps",
         "p99 ms"});
    for (const ArrivalKind arrival :
         {ArrivalKind::kPoisson, ArrivalKind::kBursty,
          ArrivalKind::kDiurnal}) {
      const OpenLoopResult r =
          RunOpenLoopPoint(w, plan, workers, inflight, /*slo_aware=*/true,
                           arrival, offered, duration, seed++);
      ok = CheckOpenLoopInvariants(r, ArrivalKindName(arrival)) && ok;
      table.AddRow({ArrivalKindName(arrival),
                    std::to_string(r.gen.submitted),
                    std::to_string(r.served), std::to_string(r.shed),
                    TablePrinter::Fmt(r.goodput_qps, 1),
                    TablePrinter::Fmt(r.stats.p99_latency_seconds * 1e3,
                                      2)});
      if (json) {
        json->BeginPoint();
        json->Field("policy", std::string(ExecPolicyName(policy)));
        json->Field("arrival", std::string(ArrivalKindName(arrival)));
        json->Field("mode", std::string("slo-aware"));
        json->Field("load_factor", 0.9);
        json->Field("offered_qps", offered);
        json->Field("submitted", r.gen.submitted);
        json->Field("served", r.served);
        json->Field("shed", r.shed);
        json->Field("goodput_qps", r.goodput_qps);
        json->Field("p99_ms", r.stats.p99_latency_seconds * 1e3);
      }
    }
    table.Print();
  }

  if (json) ok = json->Close() && ok;
  std::printf("ext_serving --open-loop: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineBool("quick", false,
                        "CI smoke: small scale, 8 clients, verify only");
  args.flags.DefineBool("open-loop", false,
                        "open-loop scenario: arrival-schedule load "
                        "generator, SLO-aware admission, capacity gates");
  args.flags.DefineString("json", "",
                          "write the per-policy load series as JSON to "
                          "this path");
  args.flags.DefineInt("workers", 0,
                       "scheduler pool size (0 = hardware threads)");
  args.flags.DefineInt("max_inflight", 0,
                       "admission cap on concurrent queries (0 = 2x "
                       "workers)");
  args.flags.DefineInt("queries", 4, "queries per client");
  args.Define(/*default_scale_log2=*/16);
  args.Parse(argc, argv);
  const bool quick = args.flags.GetBool("quick");
  if (quick) args.scale = uint64_t{1} << 12;
  if (args.flags.GetBool("open-loop")) {
    return RunOpenLoop(args, quick, args.scale, args.inflight);
  }

  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  uint32_t workers = static_cast<uint32_t>(args.flags.GetInt("workers"));
  if (workers == 0) workers = hw;
  uint32_t max_inflight =
      static_cast<uint32_t>(args.flags.GetInt("max_inflight"));
  if (max_inflight == 0) max_inflight = 2 * workers;
  const uint32_t per_client =
      std::max<uint32_t>(1, static_cast<uint32_t>(
                                args.flags.GetInt("queries")));

  PrintHeader(
      "Serving extension: concurrent mixed queries on one shared pool",
      (quick ? std::string("CI smoke (--quick): 8 clients, scale 2^12")
             : "clients 1->64, scale 2^" +
                   std::to_string(args.flags.GetInt("scale_log2"))) +
          ", " + std::to_string(workers) + " workers, max_inflight " +
          std::to_string(max_inflight) + ", mixed " +
          std::to_string(kNumKinds) + "-kind workload");

  Workload w = PrepareWorkload(args.scale);
  ComputeOracles(&w);

  std::vector<uint32_t> client_counts;
  if (quick) {
    client_counts = {8};
  } else {
    for (uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      client_counts.push_back(c);
    }
  }

  const std::string json_path = args.flags.GetString("json");
  std::unique_ptr<JsonWriter> json;
  if (!json_path.empty()) {
    json = std::make_unique<JsonWriter>(json_path, "ext_serving");
    json->Field("scale", args.scale);
    json->Field("workers", workers);
    json->Field("max_inflight", max_inflight);
    json->BeginSeries();
  }

  bool ok = true;
  for (ExecPolicy policy : kAllExecPolicies) {
    TablePrinter table(
        std::string("ext_serving ") + ExecPolicyName(policy) +
            ": throughput and latency vs concurrent clients",
        {"clients", "queries/s", "p50 ms", "p95 ms", "p99 ms",
         "avg queue ms"});
    for (uint32_t clients : client_counts) {
      const LoadPoint point = RunLoad(w, policy, workers, max_inflight,
                                      clients, per_client, args.inflight);
      ok = ReportPoint(&table, point) && ok;
      if (json) {
        json->BeginPoint();
        json->Field("policy", std::string(ExecPolicyName(policy)));
        json->Field("clients", clients);
        json->Field("queries_per_sec",
                    point.seconds > 0
                        ? static_cast<double>(point.queries) / point.seconds
                        : 0.0);
        json->Field("p50_ms", point.serving.p50_latency_seconds * 1e3);
        json->Field("p95_ms", point.serving.p95_latency_seconds * 1e3);
        json->Field("p99_ms", point.serving.p99_latency_seconds * 1e3);
      }
    }
    table.Print();
  }
  if (json) ok = json->Close() && ok;
  if (!quick) {
    std::printf(
        "expected shape: throughput rises with clients until the pool "
        "saturates (~workers), then p95/p99 grow with queue depth while "
        "p50 stays near the solo execute time; prefetching policies hold "
        "higher plateaus than Sequential.\n");
  }
  std::printf("ext_serving: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
