// Serving extension: mixed-workload throughput and tail latency of the
// shared-pool QueryScheduler as concurrent clients scale.
//
// This is the repo's first latency-under-load scenario.  C closed-loop
// clients each submit a stream of mixed queries — hash-join probe,
// group-by, btree/bst/skiplist point lookups, graph random walks, and the
// fused join->group-by — against shared read-only structures, all
// multiplexed over ONE QueryScheduler (one ThreadPool) with admission
// control.  Every completed query is verified against a solo sequential
// oracle (schedule-independent checksums), so the bench doubles as a
// concurrency self-check: any divergence, zero throughput, or zero
// latency percentile exits nonzero.
//
//   --quick            CI smoke: scale 2^12, 8 clients x all 5 policies
//   --workers=N        scheduler pool size (default: hardware threads)
//   --max_inflight=N   admission cap (0 = unbounded; default 2x workers)
//   --queries=N        queries per client
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "bst/bst.h"
#include "btree/btree.h"
#include "btree/btree_ops.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/ops.h"
#include "core/pipeline.h"
#include "graph/csr.h"
#include "graph/graph_ops.h"
#include "groupby/groupby_ops.h"
#include "join/join_ops.h"
#include "server/query_scheduler.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_ops.h"

namespace amac::bench {
namespace {

/// Shared read-only structures every query kind runs against, plus the
/// solo-sequential oracle results each concurrent run must reproduce.
struct Workload {
  Relation r;          ///< build side
  Relation s;          ///< probe / fused input
  Relation gb_input;   ///< group-by input
  Relation idx_probe;  ///< index point-lookup keys (hits and misses)
  std::unique_ptr<ChainedHashTable> table;
  std::unique_ptr<BTree> btree;
  std::unique_ptr<BinarySearchTree> bst;
  std::unique_ptr<SkipList> slist;
  std::unique_ptr<CsrGraph> graph;
  uint64_t group_capacity = 0;
  uint64_t walkers = 0;
  uint32_t hops = 8;

  struct Oracle {
    uint64_t outputs = 0;
    uint64_t checksum = 0;
  };
  // One oracle per query kind (indexes match kQueryKinds).
  std::vector<Oracle> oracles;
};

constexpr const char* kQueryKinds[] = {
    "join-probe", "group-by", "btree", "bst", "skiplist", "walks", "fused"};
constexpr int kNumKinds = 7;

Workload PrepareWorkload(uint64_t scale) {
  Workload w;
  w.r = MakeDenseUniqueRelation(scale, 901);
  w.s = MakeForeignKeyRelation(scale, scale, 902);
  w.gb_input = MakeZipfRelation(scale, scale / 8 + 1, 0.6, 903);
  w.idx_probe = MakeZipfRelation(scale, 2 * scale, 0.3, 904);
  w.table = std::make_unique<ChainedHashTable>(scale,
                                               ChainedHashTable::Options{});
  BuildTableUnsync(w.r, w.table.get());
  w.btree = std::make_unique<BTree>(w.r);
  w.bst = std::make_unique<BinarySearchTree>(BuildBst(w.r));
  w.slist = std::make_unique<SkipList>(scale);
  {
    Rng rng(905);
    for (const Tuple& t : w.r) w.slist->InsertUnsync(t.key, t.payload, rng);
  }
  CsrGraph::Options graph_options;
  graph_options.num_vertices = std::max<uint64_t>(64, scale / 4);
  graph_options.out_degree = 8;
  graph_options.seed = 906;
  w.graph = std::make_unique<CsrGraph>(graph_options);
  w.walkers = scale / 4;
  w.group_capacity = scale + 1;
  return w;
}

/// A submitted query plus how to verify its result against the oracle.
struct PendingQuery {
  QueryTicket ticket;
  int kind = 0;
  /// Returns false on divergence from the solo oracle.
  std::function<bool(const QueryStats&)> verify;
};

/// Submit one query of `kind` to the scheduler.  Aggregating kinds carry a
/// per-query AggregateTable kept alive by the verify closure.
PendingQuery SubmitKind(QueryScheduler& sched, const Workload& w, int kind,
                        const QueryOptions& options) {
  PendingQuery pending;
  pending.kind = kind;
  const Workload::Oracle& oracle = w.oracles[static_cast<size_t>(kind)];
  const auto verify_sink = [oracle](const QueryStats& q) {
    return q.run.outputs == oracle.outputs &&
           q.run.checksum == oracle.checksum;
  };
  switch (kind) {
    case 0:
      pending.ticket =
          Submit(sched, Scan(w.s).Then(Probe<true>(*w.table)), options);
      pending.verify = verify_sink;
      break;
    case 1: {
      auto agg = std::make_shared<AggregateTable>(w.group_capacity,
                                                  AggregateTable::Options{});
      pending.ticket =
          Submit(sched, Scan(w.gb_input).Then(Aggregate(*agg)), options);
      pending.verify = [agg, oracle](const QueryStats&) {
        return agg->CountGroups() == oracle.outputs &&
               agg->Checksum() == oracle.checksum;
      };
      break;
    }
    case 2:
      pending.ticket = Submit(
          sched, Scan(w.idx_probe).Then(LookupBTree(*w.btree)), options);
      pending.verify = verify_sink;
      break;
    case 3:
      pending.ticket =
          Submit(sched, Scan(w.idx_probe).Then(LookupBst(*w.bst)), options);
      pending.verify = verify_sink;
      break;
    case 4:
      pending.ticket = Submit(
          sched, Scan(w.idx_probe).Then(LookupSkipList(*w.slist)), options);
      pending.verify = verify_sink;
      break;
    case 5:
      pending.ticket =
          Submit(sched, Walks(*w.graph, w.walkers, w.hops, 907), options);
      pending.verify = verify_sink;
      break;
    default: {
      auto agg = std::make_shared<AggregateTable>(w.group_capacity,
                                                  AggregateTable::Options{});
      pending.ticket = Submit(
          sched,
          Scan(w.s).Then(Probe<true>(*w.table)).Then(Aggregate(*agg)),
          options);
      pending.verify = [agg, oracle](const QueryStats&) {
        return agg->CountGroups() == oracle.outputs &&
               agg->Checksum() == oracle.checksum;
      };
      break;
    }
  }
  return pending;
}

/// Record every kind's solo sequential run (1 worker, kSequential): the
/// schedule-independent result the concurrent runs must reproduce.
void ComputeOracles(Workload* w) {
  QueryScheduler solo(QuerySchedulerOptions{1, 1, AdmissionOrder::kFifo});
  QueryOptions options;
  options.policy = ExecPolicy::kSequential;
  options.params = SchedulerParams{1, 1, 0};
  w->oracles.assign(kNumKinds, {});
  for (int kind : {0, 2, 3, 4, 5}) {
    PendingQuery pending = SubmitKind(solo, *w, kind, options);
    const QueryStats q = solo.Wait(pending.ticket);
    w->oracles[static_cast<size_t>(kind)] = {q.run.outputs, q.run.checksum};
  }
  // Aggregating kinds (1, 6) leave the result in their table; record the
  // table-derived oracle from a direct solo Executor run.
  Executor exec(
      ExecConfig{ExecPolicy::kSequential, SchedulerParams{1, 1, 0}, 1, 0});
  {
    AggregateTable agg(w->group_capacity, AggregateTable::Options{});
    exec.Run(Scan(w->gb_input).Then(Aggregate(agg)));
    w->oracles[1] = {agg.CountGroups(), agg.Checksum()};
  }
  {
    AggregateTable agg(w->group_capacity, AggregateTable::Options{});
    exec.Run(Scan(w->s).Then(Probe<true>(*w->table)).Then(Aggregate(agg)));
    w->oracles[6] = {agg.CountGroups(), agg.Checksum()};
  }
}

struct LoadPoint {
  uint32_t clients = 0;
  uint64_t queries = 0;
  double seconds = 0;
  ServingStats serving;
  uint64_t divergent = 0;
};

/// Closed-loop load: `clients` threads each submit+wait `per_client` mixed
/// queries against one shared scheduler.
LoadPoint RunLoad(const Workload& w, ExecPolicy policy, uint32_t workers,
                  uint32_t max_inflight, uint32_t clients,
                  uint32_t per_client, uint32_t inflight) {
  QueryScheduler sched(
      QuerySchedulerOptions{workers, max_inflight, AdmissionOrder::kFifo});
  QueryOptions options;
  options.policy = policy;
  options.params = SchedulerParams{inflight, 2, 0};
  std::atomic<uint64_t> divergent{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (uint32_t i = 0; i < per_client; ++i) {
        const int kind = static_cast<int>((c + i) % kNumKinds);
        PendingQuery pending = SubmitKind(sched, w, kind, options);
        const QueryStats q = sched.Wait(pending.ticket);
        if (!pending.verify(q)) divergent.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadPoint point;
  point.clients = clients;
  point.queries = static_cast<uint64_t>(clients) * per_client;
  point.seconds = wall.ElapsedSeconds();
  point.serving = sched.serving_stats();
  point.divergent = divergent.load();
  return point;
}

bool ReportPoint(TablePrinter* table, const LoadPoint& point) {
  const double qps =
      point.seconds > 0 ? static_cast<double>(point.queries) / point.seconds
                        : 0;
  table->AddRow(
      {std::to_string(point.clients), TablePrinter::Fmt(qps, 1),
       TablePrinter::Fmt(point.serving.p50_latency_seconds * 1e3, 2),
       TablePrinter::Fmt(point.serving.p95_latency_seconds * 1e3, 2),
       TablePrinter::Fmt(point.serving.p99_latency_seconds * 1e3, 2),
       TablePrinter::Fmt(point.serving.total_queue_seconds /
                             std::max<uint64_t>(1, point.serving.completed) *
                             1e3,
                         2)});
  bool ok = true;
  if (point.divergent > 0) {
    std::printf("ERROR: %llu queries diverged from the solo oracle at %u "
                "clients\n",
                static_cast<unsigned long long>(point.divergent),
                point.clients);
    ok = false;
  }
  if (point.serving.completed != point.queries) {
    std::printf("ERROR: scheduler completed %llu of %llu queries\n",
                static_cast<unsigned long long>(point.serving.completed),
                static_cast<unsigned long long>(point.queries));
    ok = false;
  }
  if (qps <= 0 || point.serving.p50_latency_seconds <= 0 ||
      point.serving.p95_latency_seconds <= 0 ||
      point.serving.p99_latency_seconds <= 0) {
    std::printf("ERROR: zero throughput or latency percentile at %u "
                "clients\n",
                point.clients);
    ok = false;
  }
  return ok;
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineBool("quick", false,
                        "CI smoke: small scale, 8 clients, verify only");
  args.flags.DefineString("json", "",
                          "write the per-policy load series as JSON to "
                          "this path");
  args.flags.DefineInt("workers", 0,
                       "scheduler pool size (0 = hardware threads)");
  args.flags.DefineInt("max_inflight", 0,
                       "admission cap on concurrent queries (0 = 2x "
                       "workers)");
  args.flags.DefineInt("queries", 4, "queries per client");
  args.Define(/*default_scale_log2=*/16);
  args.Parse(argc, argv);
  const bool quick = args.flags.GetBool("quick");
  if (quick) args.scale = uint64_t{1} << 12;

  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  uint32_t workers = static_cast<uint32_t>(args.flags.GetInt("workers"));
  if (workers == 0) workers = hw;
  uint32_t max_inflight =
      static_cast<uint32_t>(args.flags.GetInt("max_inflight"));
  if (max_inflight == 0) max_inflight = 2 * workers;
  const uint32_t per_client =
      std::max<uint32_t>(1, static_cast<uint32_t>(
                                args.flags.GetInt("queries")));

  PrintHeader(
      "Serving extension: concurrent mixed queries on one shared pool",
      (quick ? std::string("CI smoke (--quick): 8 clients, scale 2^12")
             : "clients 1->64, scale 2^" +
                   std::to_string(args.flags.GetInt("scale_log2"))) +
          ", " + std::to_string(workers) + " workers, max_inflight " +
          std::to_string(max_inflight) + ", mixed " +
          std::to_string(kNumKinds) + "-kind workload");

  Workload w = PrepareWorkload(args.scale);
  ComputeOracles(&w);

  std::vector<uint32_t> client_counts;
  if (quick) {
    client_counts = {8};
  } else {
    for (uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      client_counts.push_back(c);
    }
  }

  const std::string json_path = args.flags.GetString("json");
  std::unique_ptr<JsonWriter> json;
  if (!json_path.empty()) {
    json = std::make_unique<JsonWriter>(json_path, "ext_serving");
    json->Field("scale", args.scale);
    json->Field("workers", workers);
    json->Field("max_inflight", max_inflight);
    json->BeginSeries();
  }

  bool ok = true;
  for (ExecPolicy policy : kAllExecPolicies) {
    TablePrinter table(
        std::string("ext_serving ") + ExecPolicyName(policy) +
            ": throughput and latency vs concurrent clients",
        {"clients", "queries/s", "p50 ms", "p95 ms", "p99 ms",
         "avg queue ms"});
    for (uint32_t clients : client_counts) {
      const LoadPoint point = RunLoad(w, policy, workers, max_inflight,
                                      clients, per_client, args.inflight);
      ok = ReportPoint(&table, point) && ok;
      if (json) {
        json->BeginPoint();
        json->Field("policy", std::string(ExecPolicyName(policy)));
        json->Field("clients", clients);
        json->Field("queries_per_sec",
                    point.seconds > 0
                        ? static_cast<double>(point.queries) / point.seconds
                        : 0.0);
        json->Field("p50_ms", point.serving.p50_latency_seconds * 1e3);
        json->Field("p95_ms", point.serving.p95_latency_seconds * 1e3);
        json->Field("p99_ms", point.serving.p99_latency_seconds * 1e3);
      }
    }
    table.Print();
  }
  if (json) ok = json->Close() && ok;
  if (!quick) {
    std::printf(
        "expected shape: throughput rises with clients until the pool "
        "saturates (~workers), then p95/p99 grow with queue depth while "
        "p50 stays near the solo execute time; prefetching policies hold "
        "higher plateaus than Sequential.\n");
  }
  std::printf("ext_serving: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
