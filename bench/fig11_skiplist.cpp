// Figure 11: skip list search and insert cycles per output tuple across
// list sizes (paper: 2^16, 2^21, 2^25 elements).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/cycle_timer.h"
#include "common/table_printer.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_ops.h"

namespace amac::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("stages", 24,
                       "provisioned search steps for GP/SPP before bailout");
  args.Define(/*default_scale_log2=*/22);
  args.Parse(argc, argv);

  PrintHeader("Figure 11 (skip list search & insert, Xeon x5670)",
              "Pugh latched skip list; unique keys; AMAC insert keeps the "
              "~0.5KB pred/succ vector per in-flight lookup");

  std::vector<int> sizes = {14, 16, args.flags.GetInt("scale_log2") >= 18
                                        ? static_cast<int>(
                                              args.flags.GetInt("scale_log2"))
                                        : 18};
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  const uint32_t stages = static_cast<uint32_t>(args.flags.GetInt("stages"));

  // The skip list ops carry no vector kernel (the per-lookup pred/succ
  // vector defeats lane-structured state); the VecAMAC column therefore
  // measures the documented scalar-schedule fallback — it should track
  // AMAC, and the column exists to keep the figure set's policy axis
  // uniform with fig05/fig10.
  TablePrinter search_table(
      "Fig 11 search: cycles per output tuple",
      {"elements (log2)", "Baseline", "GP", "SPP", "AMAC", "VecAMAC"});
  TablePrinter insert_table(
      "Fig 11 insert: cycles per output tuple",
      {"elements (log2)", "Baseline", "GP", "SPP", "AMAC", "VecAMAC"});

  for (int log2 : sizes) {
    const uint64_t n = uint64_t{1} << log2;
    const Relation rel = MakeDenseUniqueRelation(n, 29);
    const Relation probe = MakeForeignKeyRelation(n, n, 30);

    // Search: one pre-built list probed by every engine.
    const auto list_owner = BuildSkipList(rel, 31);
    SkipList& list = *list_owner;
    std::vector<std::string> search_row{std::to_string(log2)};
    std::vector<std::string> insert_row{std::to_string(log2)};
    Executor exec(ExecConfig{ExecPolicy::kAmac,
                             SchedulerParams{args.inflight, stages, 0}, 1,
                             0});
    constexpr ExecPolicy kFig11Policies[] = {
        ExecPolicy::kSequential,        ExecPolicy::kGroupPrefetch,
        ExecPolicy::kSoftwarePipelined, ExecPolicy::kAmac,
        ExecPolicy::kVectorizedAmac};
    for (ExecPolicy policy : kFig11Policies) {
      exec.set_policy(policy);
      RunStats best;
      for (uint32_t rep = 0; rep < args.reps; ++rep) {
        const RunStats run = RunSkipListSearch(exec, list, probe);
        if (rep == 0 || run.cycles < best.cycles) best = run;
      }
      search_row.push_back(TablePrinter::Fmt(best.CyclesPerInput(), 1));

      // Insert: build a fresh list from scratch per measurement.
      RunStats best_insert;
      for (uint32_t rep = 0; rep < args.reps; ++rep) {
        SkipList fresh(n);
        const RunStats run =
            RunSkipListInsert(exec, &fresh, rel, /*seed=*/100 + rep);
        if (rep == 0 || run.cycles < best_insert.cycles) {
          best_insert = run;
        }
      }
      insert_row.push_back(
          TablePrinter::Fmt(best_insert.CyclesPerInput(), 1));
    }
    search_table.AddRow(search_row);
    insert_table.AddRow(insert_row);
  }
  search_table.Print();
  insert_table.Print();
  std::printf(
      "expected shape: search - AMAC ~1.9x avg over Baseline, GP/SPP only "
      "~1.15-1.2x (per-level irregularity); insert - gains compressed (CPU-"
      "bound splice): AMAC ~1.4x, GP/SPP ~1.1-1.2x.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
