// Figure 12: hash join and group-by on the SPARC T4 (single hardware
// context).  MODELED: no SPARC hardware is available, so the T4 run is the
// memsim machine model (2-wide cores, higher memory latency) replaying
// walk-length traces from the real x86-built data structures.  See
// DESIGN.md substitution #4.
//
// MEASURED addition (ISSUE 3, re-based on the plan layer in ISSUE 9): the
// same join+group-by pair run on THIS machine as one declarative plan
// (Scan -> Lookup -> GroupBy) with the shape dimension pinned fused vs
// two-phase (materialized intermediate), under all five ExecPolicies,
// plus one unpinned run where the cost-driven optimizer makes the call.
// The binary self-checks that every shape produces the identical
// aggregate table and exits nonzero on mismatch or zero throughput, so
// CI's bench-smoke job (--quick) keeps the plan layer honest.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/pipeline.h"
#include "groupby/groupby.h"
#include "memsim/memsim.h"
#include "memsim/workload.h"

namespace amac::bench {
namespace {

/// One measured fused-vs-two-phase point, for the optional JSON artifact.
struct FusedPoint {
  const char* policy;
  double fused_tps = 0;
  double two_phase_tps = 0;
};

/// Fused vs two-phase join+group-by, measured on this machine.  Both
/// columns are the SAME declarative plan (Scan -> Lookup -> GroupBy) with
/// the shape dimension pinned each way, so the comparison exercises
/// exactly the structural alternative the plan optimizer chooses between;
/// a final unpinned run checks that the optimizer lands on one of the two
/// shapes and reproduces the identical aggregate.  Returns false on any
/// divergence or zero throughput.  Fills `points` (one per policy) and
/// `chosen` (the optimizer's decision) when non-null.
bool FusedSection(const BenchArgs& args, uint32_t threads,
                  std::vector<FusedPoint>* points, PlanStats* chosen) {
  const PreparedJoin prepared =
      PrepareJoin(args.scale, args.scale, 0, 0, 67);
  const Relation& s = prepared.s;
  const uint64_t group_capacity = prepared.r.size() + 1;
  const Plan plan =
      Plan::Scan(s).Lookup(*prepared.table).GroupBy(group_capacity);
  PlanOptions fused_pin;
  fused_pin.shape = PlanShape::kFused;
  PlanOptions two_phase_pin;
  two_phase_pin.shape = PlanShape::kTwoPhase;

  TablePrinter fused_table(
      "Fig 12 MEASURED on this machine: fused join->group-by (one "
      "pipeline, " + std::to_string(threads) + " thread(s)) vs two-phase "
      "(materialized intermediate), Mtuples/s",
      {"policy", "fused", "two-phase", "fused speedup"});

  bool ok = true;
  uint64_t checksum = 0;
  Executor exec(ExecConfig{ExecPolicy::kAmac,
                           SchedulerParams{args.inflight, 1, 0}, threads,
                           0});
  for (ExecPolicy policy : kAllExecPolicies) {
    exec.set_policy(policy);
    const PlanResult fused = MeasurePlan(exec, plan, fused_pin, args.reps);
    const PlanResult two_phase =
        MeasurePlan(exec, plan, two_phase_pin, args.reps);
    const double fused_tps = fused.run.Throughput();
    const double two_phase_tps = two_phase.run.Throughput();
    checksum = fused.run.checksum;

    fused_table.AddRow(
        {SeriesName(policy), TablePrinter::Fmt(fused_tps / 1e6, 2),
         TablePrinter::Fmt(two_phase_tps / 1e6, 2),
         TablePrinter::Fmt(
             two_phase_tps > 0 ? fused_tps / two_phase_tps : 0, 2)});
    if (points != nullptr) {
      points->push_back({SeriesName(policy), fused_tps, two_phase_tps});
    }

    if (fused.run.checksum != two_phase.run.checksum ||
        fused.run.outputs != two_phase.run.outputs) {
      std::printf("ERROR: %s fused aggregate diverges from two-phase "
                  "(groups %llu vs %llu)\n",
                  ExecPolicyName(policy),
                  static_cast<unsigned long long>(fused.run.outputs),
                  static_cast<unsigned long long>(two_phase.run.outputs));
      ok = false;
    }
    if (fused_tps <= 0) {
      std::printf("ERROR: %s fused throughput is zero\n",
                  ExecPolicyName(policy));
      ok = false;
    }
  }
  fused_table.Print();

  // Unpinned: the optimizer must consider both shapes (measure fallback on
  // the first repetition, priors after) and reproduce the same aggregate.
  exec.set_policy(ExecPolicy::kAmac);
  const PlanResult auto_run =
      MeasurePlan(exec, plan, PlanOptions{}, std::max(2u, args.reps));
  if (!auto_run.run.plan.active ||
      auto_run.run.plan.candidates_considered != 2 ||
      auto_run.run.checksum != checksum) {
    std::printf("ERROR: optimizer run diverged (active=%d candidates=%u)\n",
                auto_run.run.plan.active ? 1 : 0,
                auto_run.run.plan.candidates_considered);
    ok = false;
  }
  std::printf("plan optimizer (AMAC): chose %s of 2 shapes, %.2f "
              "Mtuples/s%s\n",
              PlanShapeName(auto_run.run.plan.shape),
              auto_run.run.Throughput() / 1e6,
              auto_run.run.plan.from_priors ? " (from priors)" : "");
  if (chosen != nullptr) *chosen = auto_run.run.plan;
  return ok;
}

void SimRow(TablePrinter* table, const std::string& label,
            const std::vector<uint32_t>& lengths, uint32_t inflight,
            uint32_t stages) {
  const memsim::MachineConfig machine = memsim::MachineConfig::SparcT4();
  std::vector<std::string> row{label};
  for (ExecPolicy policy : kPaperPolicies) {
    memsim::SimConfig config;
    config.policy = policy;
    config.inflight = inflight;
    config.stages = stages;
    config.num_threads = 1;
    config.lookups_per_thread = 20000;
    config.chain_lengths = &lengths;
    const memsim::SimResult r = memsim::Simulate(machine, config);
    row.push_back(TablePrinter::Fmt(
        static_cast<double>(r.cycles) / static_cast<double>(r.lookups), 1));
  }
  table->AddRow(row);
}

/// Write the measured fused-section series as a machine-readable JSON
/// artifact (CI's perf trajectory: BENCH_fig12.json).
bool WriteJson(const std::string& path, uint64_t scale, uint32_t threads,
               const std::vector<FusedPoint>& points,
               const PlanStats& chosen) {
  JsonWriter json(path, "fig12_fused_join_groupby");
  json.Field("scale", scale);
  json.Field("threads", threads);
  PlanJsonFields(&json, chosen);
  json.BeginSeries();
  for (const FusedPoint& point : points) {
    json.BeginPoint();
    json.Field("policy", std::string(point.policy));
    json.Field("fused_tuples_per_sec", point.fused_tps);
    json.Field("two_phase_tuples_per_sec", point.two_phase_tps);
  }
  return json.Close();
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineBool("quick", false,
                        "CI smoke mode: small scale, fused section only");
  args.flags.DefineInt("threads", 1,
                       "threads for the measured fused section");
  args.flags.DefineString("json", "",
                          "write the fused-section throughput series as "
                          "JSON to this path");
  args.Define(/*default_scale_log2=*/18);
  args.Parse(argc, argv);
  const bool quick = args.flags.GetBool("quick");
  if (quick) {
    args.scale = uint64_t{1} << 12;
    args.reps = 1;
  }
  const uint32_t threads = static_cast<uint32_t>(
      std::max<int64_t>(1, args.flags.GetInt("threads")));

  PrintHeader("Figure 12 (hash join & group-by, SPARC T4, 1 context)",
              quick ? "CI smoke (--quick): MEASURED fused vs two-phase "
                      "self-check only, scale 2^12"
                    : "MEASURED fused vs two-phase on this machine, then "
                      "MODELED on memsim T4 with traces from real tables "
                      "at 2^" +
                          std::to_string(args.flags.GetInt("scale_log2")));

  std::vector<FusedPoint> points;
  PlanStats chosen;
  bool fused_ok = FusedSection(args, threads, &points, &chosen);
  const std::string json_path = args.flags.GetString("json");
  if (!json_path.empty()) {
    fused_ok =
        WriteJson(json_path, args.scale, threads, points, chosen) && fused_ok;
  }
  if (quick) return fused_ok ? 0 : 1;

  // (a) Hash join probe.
  TablePrinter join_table(
      "Fig 12a: modeled probe cycles per tuple, T4",
      {"skew", "Baseline", "GP", "SPP", "AMAC"});
  const double kSkews[][2] = {{0, 0}, {0.5, 0.5}, {1, 1}};
  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        args.scale, args.scale, zr, zs,
        static_cast<uint64_t>(37 + zr * 10 + zs * 100));
    const auto lengths = memsim::CollectWalkLengths(
        *prepared.table, prepared.s, /*early_exit=*/true);
    SimRow(&join_table, SkewLabel(zr, zs), lengths, args.inflight,
           zr == 0.0 ? 1 : 2);
  }
  join_table.Print();

  // (b) Group-by: trace = chain nodes visited per input tuple against the
  // populated aggregation table.
  const double kThetas[] = {0.0, 0.5, 1.0};
  TablePrinter gb(
      "Fig 12b: modeled group-by cycles per tuple, T4",
      {"skew", "Baseline", "GP", "SPP", "AMAC"});
  for (double theta : kThetas) {
    const uint64_t tuples = args.scale;
    const Relation input =
        theta == 0.0
            ? MakeGroupByInput(tuples / 3, 3, 41)
            : MakeZipfRelation(tuples, tuples / 3, theta, 42);
    AggregateTable agg(tuples / 3 * 2, AggregateTable::Options{});
    Executor trace_exec(
        ExecConfig{ExecPolicy::kSequential, SchedulerParams{}, 1, 0});
    RunGroupBy(trace_exec, input, &agg);
    const auto lengths = memsim::CollectGroupByWalkLengths(agg, input);
    SimRow(&gb, theta == 0.0 ? "uniform"
                             : "Zipf(" + TablePrinter::Fmt(theta, 1) + ")",
           lengths, args.inflight, 1);
  }
  gb.Print();
  std::printf(
      "expected shape: all prefetchers ~1.5-2.3x over Baseline; AMAC most "
      "consistent; absolute gains smaller than Xeon (2-wide T4 core); "
      "fused >= two-phase (no intermediate materialization, one ramp).\n");
  return fused_ok ? 0 : 1;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
