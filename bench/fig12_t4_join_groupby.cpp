// Figure 12: hash join and group-by on the SPARC T4 (single hardware
// context).  MODELED: no SPARC hardware is available, so the T4 run is the
// memsim machine model (2-wide cores, higher memory latency) replaying
// walk-length traces from the real x86-built data structures.  See
// DESIGN.md substitution #4.
//
// MEASURED addition (ISSUE 3): the same join+group-by pair run on THIS
// machine as one fused Pipeline (Scan -> Probe -> Aggregate through one
// Executor) vs the two-phase plan with a materialized intermediate, under
// all five ExecPolicies.  The binary self-checks that both plans produce
// the identical aggregate table and exits nonzero on mismatch or zero
// throughput, so CI's bench-smoke job (--quick) keeps the fused path
// honest.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/cycle_timer.h"
#include "common/table_printer.h"
#include "core/pipeline.h"
#include "groupby/groupby.h"
#include "groupby/groupby_ops.h"
#include "join/join_ops.h"
#include "join/sink.h"
#include "memsim/memsim.h"
#include "memsim/workload.h"

namespace amac::bench {
namespace {

/// One measured fused-vs-two-phase point, for the optional JSON artifact.
struct FusedPoint {
  const char* policy;
  double fused_tps = 0;
  double two_phase_tps = 0;
};

/// Fused vs two-phase join+group-by, measured on this machine.  Returns
/// false when the plans disagree or the fused plan reports zero
/// throughput.  Fills `points` (one per policy) when non-null.
bool FusedSection(const BenchArgs& args, uint32_t threads,
                  std::vector<FusedPoint>* points) {
  const PreparedJoin prepared =
      PrepareJoin(args.scale, args.scale, 0, 0, 67);
  const Relation& s = prepared.s;
  const ChainedHashTable& table = *prepared.table;
  const uint64_t group_capacity = prepared.r.size() + 1;

  TablePrinter fused_table(
      "Fig 12 MEASURED on this machine: fused join->group-by (one "
      "pipeline, " + std::to_string(threads) + " thread(s)) vs two-phase "
      "(materialized intermediate), Mtuples/s",
      {"policy", "fused", "two-phase", "fused speedup"});

  bool ok = true;
  Executor exec(ExecConfig{ExecPolicy::kAmac,
                           SchedulerParams{args.inflight, 1, 0}, threads,
                           0});
  for (ExecPolicy policy : kAllExecPolicies) {
    exec.set_policy(policy);

    // Fused: probe hits flow straight into the aggregation insert.
    double fused_seconds = 1e18;
    uint64_t fused_checksum = 0, fused_groups = 0;
    for (uint32_t rep = 0; rep < std::max(1u, args.reps); ++rep) {
      AggregateTable agg(group_capacity, AggregateTable::Options{});
      const RunStats run =
          exec.Run(Scan(s).Then(Probe<true>(table)).Then(Aggregate(agg)));
      if (run.seconds < fused_seconds) fused_seconds = run.seconds;
      fused_checksum = agg.Checksum();
      fused_groups = agg.CountGroups();
    }

    // Two-phase: probe materializing (rid, build payload), rebuild the
    // intermediate relation, then a separate group-by — the pre-Pipeline
    // plan, timed end to end on the same executor.
    double two_phase_seconds = 1e18;
    uint64_t two_phase_checksum = 0, two_phase_groups = 0;
    for (uint32_t rep = 0; rep < std::max(1u, args.reps); ++rep) {
      WallTimer wall;
      // Early-exit probe: at most one emission per probe tuple, so
      // s.size() bounds each thread's materialization.
      std::vector<MaterializeSink> sinks;
      sinks.reserve(exec.num_threads());
      for (uint32_t t = 0; t < exec.num_threads(); ++t) {
        sinks.emplace_back(s.size());
      }
      exec.Run(FromOp(s.size(), [&](uint32_t tid) {
        return ProbeOp<true, MaterializeSink>(table, s, sinks[tid]);
      }));
      uint64_t total = 0;
      for (const auto& sink : sinks) total += sink.size();
      Relation mid(total);
      uint64_t at = 0;
      for (const auto& sink : sinks) {
        for (uint64_t i = 0; i < sink.size(); ++i) {
          const Tuple& row = sink.data()[i];
          mid[at++] = Tuple{row.payload,
                            s[static_cast<uint64_t>(row.key)].payload};
        }
      }
      AggregateTable agg(group_capacity, AggregateTable::Options{});
      RunGroupBy(exec, mid, &agg);
      const double seconds = wall.ElapsedSeconds();
      if (seconds < two_phase_seconds) two_phase_seconds = seconds;
      two_phase_checksum = agg.Checksum();
      two_phase_groups = agg.CountGroups();
    }

    const double fused_tps =
        fused_seconds > 0 ? static_cast<double>(s.size()) / fused_seconds
                          : 0;
    const double two_phase_tps =
        two_phase_seconds > 0
            ? static_cast<double>(s.size()) / two_phase_seconds
            : 0;
    fused_table.AddRow(
        {SeriesName(policy), TablePrinter::Fmt(fused_tps / 1e6, 2),
         TablePrinter::Fmt(two_phase_tps / 1e6, 2),
         TablePrinter::Fmt(
             two_phase_tps > 0 ? fused_tps / two_phase_tps : 0, 2)});
    if (points != nullptr) {
      points->push_back({SeriesName(policy), fused_tps, two_phase_tps});
    }

    if (fused_checksum != two_phase_checksum ||
        fused_groups != two_phase_groups) {
      std::printf("ERROR: %s fused aggregate diverges from two-phase "
                  "(groups %llu vs %llu)\n",
                  ExecPolicyName(policy),
                  static_cast<unsigned long long>(fused_groups),
                  static_cast<unsigned long long>(two_phase_groups));
      ok = false;
    }
    if (fused_tps <= 0) {
      std::printf("ERROR: %s fused throughput is zero\n",
                  ExecPolicyName(policy));
      ok = false;
    }
  }
  fused_table.Print();
  return ok;
}

void SimRow(TablePrinter* table, const std::string& label,
            const std::vector<uint32_t>& lengths, uint32_t inflight,
            uint32_t stages) {
  const memsim::MachineConfig machine = memsim::MachineConfig::SparcT4();
  std::vector<std::string> row{label};
  for (ExecPolicy policy : kPaperPolicies) {
    memsim::SimConfig config;
    config.policy = policy;
    config.inflight = inflight;
    config.stages = stages;
    config.num_threads = 1;
    config.lookups_per_thread = 20000;
    config.chain_lengths = &lengths;
    const memsim::SimResult r = memsim::Simulate(machine, config);
    row.push_back(TablePrinter::Fmt(
        static_cast<double>(r.cycles) / static_cast<double>(r.lookups), 1));
  }
  table->AddRow(row);
}

/// Write the measured fused-section series as a machine-readable JSON
/// artifact (CI's perf trajectory: BENCH_fig12.json).
bool WriteJson(const std::string& path, uint64_t scale, uint32_t threads,
               const std::vector<FusedPoint>& points) {
  JsonWriter json(path, "fig12_fused_join_groupby");
  json.Field("scale", scale);
  json.Field("threads", threads);
  json.BeginSeries();
  for (const FusedPoint& point : points) {
    json.BeginPoint();
    json.Field("policy", std::string(point.policy));
    json.Field("fused_tuples_per_sec", point.fused_tps);
    json.Field("two_phase_tuples_per_sec", point.two_phase_tps);
  }
  return json.Close();
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineBool("quick", false,
                        "CI smoke mode: small scale, fused section only");
  args.flags.DefineInt("threads", 1,
                       "threads for the measured fused section");
  args.flags.DefineString("json", "",
                          "write the fused-section throughput series as "
                          "JSON to this path");
  args.Define(/*default_scale_log2=*/18);
  args.Parse(argc, argv);
  const bool quick = args.flags.GetBool("quick");
  if (quick) {
    args.scale = uint64_t{1} << 12;
    args.reps = 1;
  }
  const uint32_t threads = static_cast<uint32_t>(
      std::max<int64_t>(1, args.flags.GetInt("threads")));

  PrintHeader("Figure 12 (hash join & group-by, SPARC T4, 1 context)",
              quick ? "CI smoke (--quick): MEASURED fused vs two-phase "
                      "self-check only, scale 2^12"
                    : "MEASURED fused vs two-phase on this machine, then "
                      "MODELED on memsim T4 with traces from real tables "
                      "at 2^" +
                          std::to_string(args.flags.GetInt("scale_log2")));

  std::vector<FusedPoint> points;
  bool fused_ok = FusedSection(args, threads, &points);
  const std::string json_path = args.flags.GetString("json");
  if (!json_path.empty()) {
    fused_ok = WriteJson(json_path, args.scale, threads, points) && fused_ok;
  }
  if (quick) return fused_ok ? 0 : 1;

  // (a) Hash join probe.
  TablePrinter join_table(
      "Fig 12a: modeled probe cycles per tuple, T4",
      {"skew", "Baseline", "GP", "SPP", "AMAC"});
  const double kSkews[][2] = {{0, 0}, {0.5, 0.5}, {1, 1}};
  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        args.scale, args.scale, zr, zs,
        static_cast<uint64_t>(37 + zr * 10 + zs * 100));
    const auto lengths = memsim::CollectWalkLengths(
        *prepared.table, prepared.s, /*early_exit=*/true);
    SimRow(&join_table, SkewLabel(zr, zs), lengths, args.inflight,
           zr == 0.0 ? 1 : 2);
  }
  join_table.Print();

  // (b) Group-by: trace = chain nodes visited per input tuple against the
  // populated aggregation table.
  const double kThetas[] = {0.0, 0.5, 1.0};
  TablePrinter gb(
      "Fig 12b: modeled group-by cycles per tuple, T4",
      {"skew", "Baseline", "GP", "SPP", "AMAC"});
  for (double theta : kThetas) {
    const uint64_t tuples = args.scale;
    const Relation input =
        theta == 0.0
            ? MakeGroupByInput(tuples / 3, 3, 41)
            : MakeZipfRelation(tuples, tuples / 3, theta, 42);
    AggregateTable agg(tuples / 3 * 2, AggregateTable::Options{});
    Executor trace_exec(
        ExecConfig{ExecPolicy::kSequential, SchedulerParams{}, 1, 0});
    RunGroupBy(trace_exec, input, &agg);
    const auto lengths = memsim::CollectGroupByWalkLengths(agg, input);
    SimRow(&gb, theta == 0.0 ? "uniform"
                             : "Zipf(" + TablePrinter::Fmt(theta, 1) + ")",
           lengths, args.inflight, 1);
  }
  gb.Print();
  std::printf(
      "expected shape: all prefetchers ~1.5-2.3x over Baseline; AMAC most "
      "consistent; absolute gains smaller than Xeon (2-wide T4 core); "
      "fused >= two-phase (no intermediate materialization, one ramp).\n");
  return fused_ok ? 0 : 1;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
