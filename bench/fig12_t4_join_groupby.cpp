// Figure 12: hash join and group-by on the SPARC T4 (single hardware
// context).  MODELED: no SPARC hardware is available, so the T4 run is the
// memsim machine model (2-wide cores, higher memory latency) replaying
// walk-length traces from the real x86-built data structures.  See
// DESIGN.md substitution #4.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "groupby/groupby.h"
#include "memsim/memsim.h"
#include "memsim/workload.h"

namespace amac::bench {
namespace {

void SimRow(TablePrinter* table, const std::string& label,
            const std::vector<uint32_t>& lengths, uint32_t inflight,
            uint32_t stages) {
  const memsim::MachineConfig machine = memsim::MachineConfig::SparcT4();
  std::vector<std::string> row{label};
  for (ExecPolicy policy : kPaperPolicies) {
    memsim::SimConfig config;
    config.policy = policy;
    config.inflight = inflight;
    config.stages = stages;
    config.num_threads = 1;
    config.lookups_per_thread = 20000;
    config.chain_lengths = &lengths;
    const memsim::SimResult r = memsim::Simulate(machine, config);
    row.push_back(TablePrinter::Fmt(
        static_cast<double>(r.cycles) / static_cast<double>(r.lookups), 1));
  }
  table->AddRow(row);
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/18);
  args.Parse(argc, argv);

  PrintHeader("Figure 12 (hash join & group-by, SPARC T4, 1 context)",
              "MODELED on memsim T4; traces extracted from real tables at "
              "2^" + std::to_string(args.flags.GetInt("scale_log2")));

  // (a) Hash join probe.
  TablePrinter join_table(
      "Fig 12a: modeled probe cycles per tuple, T4",
      {"skew", "Baseline", "GP", "SPP", "AMAC"});
  const double kSkews[][2] = {{0, 0}, {0.5, 0.5}, {1, 1}};
  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        args.scale, args.scale, zr, zs,
        static_cast<uint64_t>(37 + zr * 10 + zs * 100));
    const auto lengths = memsim::CollectWalkLengths(
        *prepared.table, prepared.s, /*early_exit=*/true);
    SimRow(&join_table, SkewLabel(zr, zs), lengths, args.inflight,
           zr == 0.0 ? 1 : 2);
  }
  join_table.Print();

  // (b) Group-by: trace = chain nodes visited per input tuple against the
  // populated aggregation table.
  const double kThetas[] = {0.0, 0.5, 1.0};
  TablePrinter gb(
      "Fig 12b: modeled group-by cycles per tuple, T4",
      {"skew", "Baseline", "GP", "SPP", "AMAC"});
  for (double theta : kThetas) {
    const uint64_t tuples = args.scale;
    const Relation input =
        theta == 0.0
            ? MakeGroupByInput(tuples / 3, 3, 41)
            : MakeZipfRelation(tuples, tuples / 3, theta, 42);
    AggregateTable agg(tuples / 3 * 2, AggregateTable::Options{});
    GroupByConfig config;
    config.policy = ExecPolicy::kSequential;
    RunGroupBy(input, config, &agg);
    const auto lengths = memsim::CollectGroupByWalkLengths(agg, input);
    SimRow(&gb, theta == 0.0 ? "uniform"
                             : "Zipf(" + TablePrinter::Fmt(theta, 1) + ")",
           lengths, args.inflight, 1);
  }
  gb.Print();
  std::printf(
      "expected shape: all prefetchers ~1.5-2.3x over Baseline; AMAC most "
      "consistent; absolute gains smaller than Xeon (2-wide T4 core).\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
