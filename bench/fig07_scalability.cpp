// Figure 7: hash join probe throughput vs hardware threads on the Xeon
// x5670, for [0,0], [.5,.5] and [1,1] key skews.
//
// Hardware substitution (see DESIGN.md): this container has one core, so
// the multi-core run is reproduced on the memsim model (per-core L1-D
// MSHRs + shared 32-entry LLC Global Queue).  The model replays walk-length
// traces collected from the *real* hash table built at the configured
// scale, so workload irregularity is identical to the measured benches.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "memsim/memsim.h"
#include "memsim/workload.h"

namespace amac::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("lookups_per_thread", 20000,
                       "simulated lookups per thread");
  args.Define(/*default_scale_log2=*/18);
  args.Parse(argc, argv);

  PrintHeader("Figure 7 (probe throughput vs threads, Xeon x5670)",
              "MODELED on memsim (1-core container); traces from the real "
              "chained table");

  const memsim::MachineConfig machine = memsim::MachineConfig::XeonX5670();
  const double kSkews[][2] = {{0, 0}, {0.5, 0.5}, {1, 1}};
  const uint32_t kThreads[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};

  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        args.scale, args.scale, zr, zs,
        static_cast<uint64_t>(11 + zr * 10 + zs * 100));
    const auto lengths = memsim::CollectWalkLengths(
        *prepared.table, prepared.s, /*early_exit=*/true);

    TablePrinter table(
        "Fig 7 " + SkewLabel(zr, zs) +
            ": modeled probe throughput (lookups/kilocycle, all threads)",
        {"threads", "Baseline", "GP", "SPP", "AMAC"});
    for (uint32_t threads : kThreads) {
      std::vector<std::string> row{std::to_string(threads)};
      for (Engine engine : kAllEngines) {
        memsim::SimConfig config;
        config.engine = engine;
        config.inflight = args.inflight;
        config.stages = zr == 0.0 ? 1 : 2;
        config.num_threads = threads;
        config.lookups_per_thread =
            static_cast<uint64_t>(args.flags.GetInt("lookups_per_thread"));
        config.chain_lengths = &lengths;
        const memsim::SimResult r = memsim::Simulate(machine, config);
        row.push_back(TablePrinter::Fmt(r.ThroughputPerKilocycle(), 1));
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "expected shape: GP/SPP/AMAC level off after ~4 threads (32-entry LLC "
      "Global Queue < 4x10 MSHRs); Baseline scales further and closes the "
      "gap; SMT threads (7-12) add little.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
