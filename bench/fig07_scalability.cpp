// Figure 7: hash join probe throughput vs hardware threads on the Xeon
// x5670, for [0,0], [.5,.5] and [1,1] key skews.
//
// Two sections:
//  * MEASURED — the real parallel probe on this machine's hardware threads,
//    morsel-driven through core/parallel_driver.h (per-thread sinks, atomic
//    morsel cursor).  Thread counts are capped at hardware concurrency.
//  * MODELED — the paper's 6-core Xeon reproduced on the memsim model
//    (per-core L1-D MSHRs + shared 32-entry LLC Global Queue), replaying
//    walk-length traces collected from the *real* hash table built at the
//    configured scale, so workload irregularity matches the measured runs.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/parallel_driver.h"
#include "core/pipeline.h"
#include "join/hash_join.h"
#include "join/join_ops.h"
#include "memsim/memsim.h"
#include "memsim/workload.h"

namespace amac::bench {
namespace {

std::vector<uint32_t> ThreadCounts(uint32_t hw) {
  std::vector<uint32_t> counts;
  for (uint32_t t : {1u, 2u, 4u, 8u, 16u, 32u}) {
    if (t <= hw) counts.push_back(t);
  }
  if (counts.back() != hw) counts.push_back(hw);
  return counts;
}

void MeasuredSection(const BenchArgs& args) {
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<uint32_t> thread_counts = ThreadCounts(hw);

  const double kSkews[][2] = {{0, 0}, {0.5, 0.5}, {1, 1}};
  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        args.scale, args.scale, zr, zs,
        static_cast<uint64_t>(53 + zr * 10 + zs * 100));
    TablePrinter table(
        "Fig 7 " + SkewLabel(zr, zs) +
            ": MEASURED probe throughput (Mtuples/s, morsel driver, " +
            std::to_string(hw) + " hw threads)",
        {"threads", "Baseline", "GP", "SPP", "AMAC"});
    for (uint32_t threads : thread_counts) {
      // One executor (one persistent pool) serves every policy and rep at
      // this thread count.
      Executor exec(ExecConfig{
          ExecPolicy::kAmac,
          SchedulerParams{args.inflight, zr == 0.0 ? 1u : 2u, 0}, threads,
          0});
      std::vector<std::string> row{std::to_string(threads)};
      for (ExecPolicy policy : kPaperPolicies) {
        exec.set_policy(policy);
        const RunStats run =
            MeasureProbe(exec, prepared, /*early_exit=*/true, args.reps);
        row.push_back(TablePrinter::Fmt(run.Throughput() / 1e6, 1));
      }
      table.AddRow(row);
    }
    table.Print();
  }
}

/// The fix the Executor's persistent pool delivers: the team cost of one
/// probe call (dispatch wall time minus the barrier-to-barrier measured
/// region) with per-call std::thread spawn vs the persistent pool.
void SpawnOverheadSection(const BenchArgs& args) {
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const PreparedJoin prepared =
      PrepareJoin(args.scale, args.scale, 0, 0, 53);
  const SchedulerParams params{args.inflight, 1, 0};
  TablePrinter table(
      "Fig 7 team cost per probe call, AMAC (ms; min over reps)",
      {"threads", "spawned std::threads", "persistent pool",
       "measured region"});
  // Fixed team sizes (oversubscription is fine: the measured quantity is
  // the dispatch cost itself), plus the machine's full width.
  std::vector<uint32_t> team_sizes{2, 4};
  if (hw > 4) team_sizes.push_back(hw);
  for (uint32_t threads : team_sizes) {
    const uint32_t reps = std::max(3u, args.reps);
    double spawned = 1e9, pooled = 1e9, region = 1e9;
    ParallelDriverConfig config;
    config.policy = ExecPolicy::kAmac;
    config.params = params;
    config.num_threads = threads;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      std::vector<CountChecksumSink> sinks(threads);
      const ParallelDriverStats stats =
          RunParallel(config, prepared.s.size(), [&](uint32_t tid) {
            return ProbeOp<true, CountChecksumSink>(*prepared.table,
                                                    prepared.s, sinks[tid]);
          });
      spawned = std::min(spawned, stats.dispatch_seconds - stats.seconds);
    }
    Executor exec(ExecConfig{ExecPolicy::kAmac, params, threads, 0});
    for (uint32_t rep = 0; rep < reps; ++rep) {
      std::vector<CountChecksumSink> sinks(threads);
      const RunStats run =
          exec.Run(FromOp(prepared.s.size(), [&](uint32_t tid) {
            return ProbeOp<true, CountChecksumSink>(*prepared.table,
                                                    prepared.s, sinks[tid]);
          }));
      pooled = std::min(pooled, run.dispatch_seconds - run.seconds);
      region = std::min(region, run.seconds);
    }
    table.AddRow({std::to_string(threads),
                  TablePrinter::Fmt(spawned * 1e3, 3),
                  TablePrinter::Fmt(pooled * 1e3, 3),
                  TablePrinter::Fmt(region * 1e3, 3)});
  }
  table.Print();
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("lookups_per_thread", 20000,
                       "simulated lookups per thread");
  args.Define(/*default_scale_log2=*/18);
  args.Parse(argc, argv);

  PrintHeader("Figure 7 (probe throughput vs threads, Xeon x5670)",
              "MEASURED morsel-driven parallel probe on this machine, then "
              "MODELED on memsim with traces from the real chained table");

  MeasuredSection(args);
  SpawnOverheadSection(args);

  const memsim::MachineConfig machine = memsim::MachineConfig::XeonX5670();
  const double kSkews[][2] = {{0, 0}, {0.5, 0.5}, {1, 1}};
  const uint32_t kThreads[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};

  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        args.scale, args.scale, zr, zs,
        static_cast<uint64_t>(11 + zr * 10 + zs * 100));
    const auto lengths = memsim::CollectWalkLengths(
        *prepared.table, prepared.s, /*early_exit=*/true);

    TablePrinter table(
        "Fig 7 " + SkewLabel(zr, zs) +
            ": modeled probe throughput (lookups/kilocycle, all threads)",
        {"threads", "Baseline", "GP", "SPP", "AMAC"});
    for (uint32_t threads : kThreads) {
      std::vector<std::string> row{std::to_string(threads)};
      for (ExecPolicy policy : kPaperPolicies) {
        memsim::SimConfig config;
        config.policy = policy;
        config.inflight = args.inflight;
        config.stages = zr == 0.0 ? 1 : 2;
        config.num_threads = threads;
        config.lookups_per_thread =
            static_cast<uint64_t>(args.flags.GetInt("lookups_per_thread"));
        config.chain_lengths = &lengths;
        const memsim::SimResult r = memsim::Simulate(machine, config);
        row.push_back(TablePrinter::Fmt(r.ThroughputPerKilocycle(), 1));
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "expected shape: GP/SPP/AMAC level off after ~4 threads (32-entry LLC "
      "Global Queue < 4x10 MSHRs); Baseline scales further and closes the "
      "gap; SMT threads (7-12) add little.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
