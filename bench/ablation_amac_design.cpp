// Ablation of the two §3.1 design decisions inside the AMAC probe loop:
//   1. circular-buffer cursor: rolling counter (the paper's choice) vs a
//      modulo, with power-of-two and non-power-of-two window sizes;
//   2. terminal/initial stage merge (the paper's optimization 1) vs
//      refilling a finished slot only on its next cursor visit.
// The variant kernels live in this file only — they are ablation subjects,
// not library code.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/cycle_timer.h"
#include "common/prefetch.h"
#include "common/table_printer.h"
#include "join/probe_kernels.h"
#include "join/sink.h"

namespace amac::bench {
namespace {

struct ProbeState {
  const BucketNode* ptr;
  int64_t key;
  uint64_t rid;
  bool active;
};

/// Variant A: modulo cursor instead of the rolling counter.
template <bool kEarlyExit, typename Sink>
void ProbeAmacModulo(const ChainedHashTable& ht, const Relation& probe,
                     uint32_t num_inflight, Sink& sink) {
  std::vector<ProbeState> s(num_inflight);
  uint64_t next_input = 0;
  uint32_t num_active = 0;
  for (uint32_t k = 0; k < num_inflight; ++k) {
    if (next_input < probe.size()) {
      const int64_t key = probe[next_input].key;
      const BucketNode* bucket = ht.BucketForKey(key);
      Prefetch(bucket);
      s[k] = ProbeState{bucket, key, next_input++, true};
      ++num_active;
    } else {
      s[k].active = false;
    }
  }
  uint64_t k = 0;
  while (num_active > 0) {
    ProbeState& st = s[k % num_inflight];  // the modulo the paper avoids
    ++k;
    if (!st.active) continue;
    const BucketNode* next = nullptr;
    if (!VisitNode<kEarlyExit>(st.ptr, st.key, st.rid, sink, &next)) {
      Prefetch(next);
      st.ptr = next;
    } else if (next_input < probe.size()) {
      const int64_t key = probe[next_input].key;
      const BucketNode* bucket = ht.BucketForKey(key);
      Prefetch(bucket);
      st = ProbeState{bucket, key, next_input++, true};
    } else {
      st.active = false;
      --num_active;
    }
  }
}

/// Variant B: no terminal/initial merge — a finished slot is refilled only
/// when the cursor next reaches it, so one in-flight opportunity is lost
/// per completed lookup.
template <bool kEarlyExit, typename Sink>
void ProbeAmacNoMerge(const ChainedHashTable& ht, const Relation& probe,
                      uint32_t num_inflight, Sink& sink) {
  std::vector<ProbeState> s(num_inflight);
  for (auto& st : s) st.active = false;
  uint64_t next_input = 0;
  uint64_t completed = 0;
  uint32_t k = 0;
  while (completed < probe.size()) {
    ProbeState& st = s[k];
    if (!st.active) {
      if (next_input < probe.size()) {
        // Stage 0 runs as its own cursor visit (no merge).
        const int64_t key = probe[next_input].key;
        const BucketNode* bucket = ht.BucketForKey(key);
        Prefetch(bucket);
        st = ProbeState{bucket, key, next_input++, true};
      }
    } else {
      const BucketNode* next = nullptr;
      if (!VisitNode<kEarlyExit>(st.ptr, st.key, st.rid, sink, &next)) {
        Prefetch(next);
        st.ptr = next;
      } else {
        st.active = false;
        ++completed;
      }
    }
    ++k;
    if (k == num_inflight) k = 0;
  }
}

template <typename Fn>
double MeasurePerTuple(uint64_t n, uint32_t reps, Fn&& fn) {
  uint64_t best = UINT64_MAX;
  for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
    CycleTimer timer;
    fn();
    best = std::min(best, timer.Elapsed());
  }
  return static_cast<double>(best) / static_cast<double>(n);
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/22);
  args.Parse(argc, argv);

  PrintHeader("Ablation: AMAC §3.1 design choices",
              "rolling counter vs modulo cursor; terminal/initial merge vs "
              "deferred refill");

  const PreparedJoin uniform = PrepareJoin(args.scale, args.scale, 0, 0, 61);
  const PreparedJoin skewed =
      PrepareJoin(args.scale, args.scale, 1.0, 1.0, 62);
  const uint64_t n = args.scale;

  TablePrinter table("AMAC design ablation: probe cycles per tuple",
                     {"variant", "M", "uniform [0,0]", "skewed [1,1]"});
  for (uint32_t m : {8u, 10u, 16u}) {  // 10 is the paper's non-pow2 choice
    auto rolling_u = MeasurePerTuple(n, args.reps, [&] {
      CountChecksumSink sink;
      ProbeAmac<true>(*uniform.table, uniform.s, 0, n, m, sink);
    });
    auto rolling_s = MeasurePerTuple(n, args.reps, [&] {
      CountChecksumSink sink;
      ProbeAmac<true>(*skewed.table, skewed.s, 0, n, m, sink);
    });
    auto modulo_u = MeasurePerTuple(n, args.reps, [&] {
      CountChecksumSink sink;
      ProbeAmacModulo<true>(*uniform.table, uniform.s, m, sink);
    });
    auto modulo_s = MeasurePerTuple(n, args.reps, [&] {
      CountChecksumSink sink;
      ProbeAmacModulo<true>(*skewed.table, skewed.s, m, sink);
    });
    auto nomerge_u = MeasurePerTuple(n, args.reps, [&] {
      CountChecksumSink sink;
      ProbeAmacNoMerge<true>(*uniform.table, uniform.s, m, sink);
    });
    auto nomerge_s = MeasurePerTuple(n, args.reps, [&] {
      CountChecksumSink sink;
      ProbeAmacNoMerge<true>(*skewed.table, skewed.s, m, sink);
    });
    table.AddRow({"rolling + merge (paper)", std::to_string(m),
                  TablePrinter::Fmt(rolling_u, 1),
                  TablePrinter::Fmt(rolling_s, 1)});
    table.AddRow({"modulo cursor", std::to_string(m),
                  TablePrinter::Fmt(modulo_u, 1),
                  TablePrinter::Fmt(modulo_s, 1)});
    table.AddRow({"no terminal/initial merge", std::to_string(m),
                  TablePrinter::Fmt(nomerge_u, 1),
                  TablePrinter::Fmt(nomerge_s, 1)});
  }
  table.Print();
  std::printf(
      "reading: the modulo costs an integer divide per visit at non-pow2 M "
      "(paper picks M=10); dropping the merge wastes one in-flight slot per "
      "completion, visible as a small uniform-case regression.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
