// Adaptive extension: ExecPolicy::kAdaptive vs the static-policy oracle
// grid, across every workload family the runtime serves.
//
// The paper's sensitivity results say there is no single best schedule:
// the winner flips with the data structure, hit rate, skew, and
// contention.  This bench quantifies what the adaptive governor buys on
// top of that observation — for each workload it measures every static
// policy (the oracle grid the governor searches), then the governed run,
// and reports "adaptive within X% of oracle-best everywhere, no hand
// tuning".  The adaptive executor warms its calibration cache on one
// untimed run, so the measured repetitions show steady state (cache hit +
// epsilon exploration), exactly how a serving system would see it.
//
// Every run is verified against a solo sequential oracle
// (schedule-independent outputs/checksums), and the binary exits nonzero
// on divergence, zero throughput, or adaptive < 0.5x best-static — the
// CI bench-smoke contract (--quick).
//
//   --quick       CI smoke: scale 2^14, fewer reps
//   --threads=N   executor/scheduler width (0 = min(4, hardware))
//   --json=PATH   machine-readable series (BENCH_ext_adaptive.json)
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cycle_timer.h"
#include "common/table_printer.h"
#include "core/pipeline.h"
#include "server/query_scheduler.h"

namespace amac::bench {
namespace {

/// One measured run: timing plus the schedule-independent result.
struct Outcome {
  double seconds = 0;
  uint64_t inputs = 0;
  uint64_t outputs = 0;
  uint64_t checksum = 0;
  uint64_t vec_fallbacks = 0;
  AdaptiveStats adaptive;
  PerfCounters::Sample perf;

  double Throughput() const {
    return seconds > 0 ? static_cast<double>(inputs) / seconds : 0;
  }
};

/// A workload family: `run` executes one repetition on the given executor
/// (allocating any per-run state, e.g. a fresh AggregateTable).
struct AdaptiveWorkload {
  std::string name;
  std::function<Outcome(Executor&)> run;
};

/// Shared inputs for every workload family.
struct Datasets {
  PreparedJoin uniform;      ///< dense R, FK S
  PreparedJoin zipf;         ///< skewed build and probe keys
  Relation gb_input;
  Relation idx_probe;
  std::unique_ptr<SkipList> slist;
  std::unique_ptr<CsrGraph> graph;
  uint64_t group_capacity = 0;
  uint64_t walkers = 0;
};

Datasets PrepareDatasets(uint64_t scale) {
  Datasets d;
  d.uniform = PrepareJoin(scale, scale, 0, 0, 1301);
  d.zipf = PrepareJoin(scale, scale, 0.75, 0.75, 1302);
  d.gb_input = MakeZipfRelation(scale, scale / 8 + 1, 0.6, 1303);
  d.idx_probe = MakeZipfRelation(scale, 2 * scale, 0.3, 1304);
  d.slist = BuildSkipList(MakeDenseUniqueRelation(scale, 1306), 1305);
  d.graph = MakeWalkGraph(scale, 1307);
  d.walkers = scale;
  d.group_capacity = scale + 1;
  return d;
}

std::vector<AdaptiveWorkload> BuildWorkloads(const Datasets& d) {
  const auto sink_outcome = [](const RunStats& run) {
    Outcome out;
    out.seconds = run.seconds;
    out.inputs = run.inputs;
    out.outputs = run.outputs;
    out.checksum = run.checksum;
    out.vec_fallbacks = run.engine.vec_fallbacks;
    out.adaptive = run.adaptive;
    out.perf = run.perf;
    return out;
  };
  // Every family is a declarative Plan; Executor::Run(Plan) fills the
  // group-by outputs/checksum itself, so no per-family accounting remains.
  std::vector<AdaptiveWorkload> workloads;
  workloads.push_back({"probe-uniform", [&d, sink_outcome](Executor& exec) {
    return sink_outcome(
        exec.Run(Plan::Scan(d.uniform.s).Lookup(*d.uniform.table)));
  }});
  workloads.push_back({"probe-zipf", [&d, sink_outcome](Executor& exec) {
    return sink_outcome(
        exec.Run(Plan::Scan(d.zipf.s).Lookup(*d.zipf.table)));
  }});
  workloads.push_back({"group-by", [&d, sink_outcome](Executor& exec) {
    AggregateTable agg(d.group_capacity, AggregateTable::Options{});
    return sink_outcome(exec.Run(Plan::Scan(d.gb_input).GroupByInto(&agg)));
  }});
  workloads.push_back({"skiplist", [&d, sink_outcome](Executor& exec) {
    return sink_outcome(
        exec.Run(Plan::Scan(d.idx_probe).LookupSkipList(*d.slist)));
  }});
  workloads.push_back({"walks", [&d, sink_outcome](Executor& exec) {
    return sink_outcome(exec.Run(Plan::Walks(*d.graph, d.walkers, 8, 1308)));
  }});
  workloads.push_back({"fused-join-gb", [&d, sink_outcome](Executor& exec) {
    // The shape is pinned fused here: this grid compares SCHEDULES on a
    // fixed plan shape (the structural section below lets the optimizer
    // pick the shape itself).
    AggregateTable agg(d.group_capacity, AggregateTable::Options{});
    PlanOptions pin;
    pin.shape = PlanShape::kFused;
    return sink_outcome(RunPlan(exec,
                                Plan::Scan(d.uniform.s)
                                    .Lookup(*d.uniform.table)
                                    .GroupByInto(&agg),
                                pin)
                            .run);
  }});
  return workloads;
}

/// Best-of-reps measurement; `warmups` untimed runs first (the adaptive
/// executor calibrates there, so measured reps ride the cache).
Outcome Measure(Executor& exec, const AdaptiveWorkload& workload,
                uint32_t reps, uint32_t warmups) {
  for (uint32_t i = 0; i < warmups; ++i) workload.run(exec);
  Outcome best;
  for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
    const Outcome out = workload.run(exec);
    if (rep == 0 || (out.seconds > 0 && out.seconds < best.seconds)) {
      best = out;
    }
  }
  return best;
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineBool("quick", false,
                        "CI smoke: scale 2^14, fewer reps");
  args.flags.DefineInt("threads", 0,
                       "executor width (0 = min(4, hardware threads))");
  args.flags.DefineString("json", "",
                          "write the adaptive-vs-oracle series as JSON to "
                          "this path");
  args.Define(/*default_scale_log2=*/18);
  args.Parse(argc, argv);
  const bool quick = args.flags.GetBool("quick");
  if (quick) {
    args.scale = uint64_t{1} << 14;
    // 3 reps: min-of-reps denoises the 0.5x CI floor on loaded shared
    // runners (the adaptive measurement rides the calibration cache, so
    // extra reps are cheap).
    args.reps = 3;
  }
  uint32_t threads = static_cast<uint32_t>(args.flags.GetInt("threads"));
  if (threads == 0) {
    threads = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  }

  PrintHeader(
      "Adaptive extension: kAdaptive vs the static-policy oracle grid",
      (quick ? std::string("CI smoke (--quick): scale 2^14")
             : "scale 2^" + std::to_string(args.flags.GetInt("scale_log2"))) +
          ", " + std::to_string(threads) + " thread(s), M=" +
          std::to_string(args.inflight) +
          " for static policies; adaptive searches policy x {4,10,16,32}");

  Datasets d = PrepareDatasets(args.scale);
  const std::vector<AdaptiveWorkload> workloads = BuildWorkloads(d);

  const std::string json_path = args.flags.GetString("json");
  std::unique_ptr<JsonWriter> json;
  if (!json_path.empty()) {
    json = std::make_unique<JsonWriter>(json_path, "ext_adaptive");
    json->Field("scale", args.scale);
    json->Field("threads", threads);
    json->BeginSeries();
  }

  TablePrinter table(
      "ext_adaptive: adaptive vs best/worst static throughput (Minputs/s, " +
          std::to_string(threads) + " thread(s))",
      {"workload", "adaptive", "best static", "worst static", "vs best",
       "chosen", "switches"});
  bool ok = true;
  const SchedulerParams static_params{args.inflight, 2, 0};
  for (const AdaptiveWorkload& workload : workloads) {
    // Sequential solo oracle: the result every schedule must reproduce.
    Executor oracle_exec(
        ExecConfig{ExecPolicy::kSequential, SchedulerParams{1, 1, 0}, 1, 0});
    const Outcome oracle = Measure(oracle_exec, workload, 1, 0);

    // The static-policy oracle grid at the paper's default M.
    double best_static = 0, worst_static = 0;
    const char* best_policy = "?";
    for (ExecPolicy policy : kAllExecPolicies) {
      Executor exec(ExecConfig{policy, static_params, threads, 0});
      const Outcome out = Measure(exec, workload, args.reps, 0);
      if (out.outputs != oracle.outputs ||
          out.checksum != oracle.checksum) {
        std::printf("ERROR: %s %s diverges from the sequential oracle\n",
                    workload.name.c_str(), ExecPolicyName(policy));
        ok = false;
      }
      const double tput = out.Throughput();
      if (best_static == 0 || tput > best_static) {
        best_static = tput;
        best_policy = SeriesName(policy);
      }
      if (worst_static == 0 || tput < worst_static) worst_static = tput;
    }

    // The governed run: one warmup (calibration) + measured cache-hit reps.
    Executor adaptive_exec(
        ExecConfig{ExecPolicy::kAdaptive, static_params, threads, 0});
    const Outcome adaptive = Measure(adaptive_exec, workload, args.reps, 1);
    if (adaptive.outputs != oracle.outputs ||
        adaptive.checksum != oracle.checksum) {
      std::printf("ERROR: %s adaptive diverges from the sequential oracle\n",
                  workload.name.c_str());
      ok = false;
    }
    if (!adaptive.adaptive.active || !adaptive.adaptive.cache_hit) {
      std::printf("ERROR: %s adaptive run did not report a governed "
                  "cache-hit execution\n",
                  workload.name.c_str());
      ok = false;
    }
    const double adaptive_tput = adaptive.Throughput();
    const double ratio =
        best_static > 0 ? adaptive_tput / best_static : 0;
    if (adaptive_tput <= 0) {
      std::printf("ERROR: %s adaptive throughput is zero\n",
                  workload.name.c_str());
      ok = false;
    } else if (ratio < 0.5) {
      std::printf("ERROR: %s adaptive is %.2fx best-static (< 0.5x)\n",
                  workload.name.c_str(), ratio);
      ok = false;
    }

    table.AddRow({workload.name, TablePrinter::Fmt(adaptive_tput / 1e6, 2),
                  TablePrinter::Fmt(best_static / 1e6, 2),
                  TablePrinter::Fmt(worst_static / 1e6, 2),
                  TablePrinter::Fmt(ratio, 2),
                  std::string(ExecPolicyName(
                      adaptive.adaptive.chosen_policy)) +
                      "/" +
                      std::to_string(adaptive.adaptive.chosen_inflight),
                  std::to_string(adaptive.adaptive.tuning_switches)});
    if (json) {
      json->BeginPoint();
      json->Field("workload", workload.name);
      json->Field("adaptive_inputs_per_sec", adaptive_tput);
      json->Field("best_static_inputs_per_sec", best_static);
      json->Field("worst_static_inputs_per_sec", worst_static);
      json->Field("best_static_policy", std::string(best_policy));
      json->Field("adaptive_vs_best", ratio);
      json->Field("chosen_policy",
                  std::string(
                      ExecPolicyName(adaptive.adaptive.chosen_policy)));
      json->Field("chosen_inflight", adaptive.adaptive.chosen_inflight);
      json->Field("tuning_switches", adaptive.adaptive.tuning_switches);
      json->Field("vec_fallbacks", adaptive.vec_fallbacks);
      PerfJsonFields(json.get(), adaptive.perf);
    }
  }
  table.Print();

  // ---- Mixed concurrent serving: governed queries on one shared pool ----
  // The same shapes submitted concurrently through a QueryScheduler, the
  // adaptive path vs the best single hand-picked static policy.  Every
  // completed query is checked against its solo sequential oracle.
  struct ServingOracle {
    uint64_t outputs;
    uint64_t checksum;
  };
  std::vector<ServingOracle> serving_oracles;
  for (const RunStats& run :
       {SoloRun(Plan::Scan(d.uniform.s).Lookup(*d.uniform.table)),
        SoloRun(Plan::Scan(d.idx_probe).LookupSkipList(*d.slist)),
        SoloRun(Plan::Walks(*d.graph, d.walkers, 8, 1308))}) {
    serving_oracles.push_back({run.outputs, run.checksum});
  }
  const uint32_t rounds = quick ? 2 : 4;
  const auto run_serving = [&](ExecPolicy policy,
                               uint64_t* vec_fallbacks_out = nullptr,
                               PerfCounters::Sample* perf_out = nullptr) {
    QueryScheduler sched(
        QuerySchedulerOptions{threads, 2 * threads, AdmissionOrder::kFifo});
    QueryOptions options;
    options.policy = policy;
    options.params = static_params;
    uint64_t queries = 0, divergent = 0, vec_fallbacks = 0;
    WallTimer wall;
    for (uint32_t r = 0; r < rounds; ++r) {
      std::vector<QueryTicket> tickets;
      tickets.push_back(Submit(
          sched, Plan::Scan(d.uniform.s).Lookup(*d.uniform.table), options));
      tickets.push_back(Submit(
          sched, Plan::Scan(d.idx_probe).LookupSkipList(*d.slist), options));
      tickets.push_back(
          Submit(sched, Plan::Walks(*d.graph, d.walkers, 8, 1308), options));
      queries += tickets.size();
      for (size_t i = 0; i < tickets.size(); ++i) {
        const QueryStats q = sched.Wait(tickets[i]);
        vec_fallbacks += q.run.engine.vec_fallbacks;
        if (perf_out != nullptr) perf_out->Merge(q.run.perf);
        if (q.run.outputs != serving_oracles[i].outputs ||
            q.run.checksum != serving_oracles[i].checksum) {
          ++divergent;
        }
      }
    }
    const double seconds = wall.ElapsedSeconds();
    const ServingStats serving = sched.serving_stats();
    if (serving.completed != queries) {
      std::printf("ERROR: serving-mix completed %llu of %llu queries\n",
                  static_cast<unsigned long long>(serving.completed),
                  static_cast<unsigned long long>(queries));
      ok = false;
    }
    if (divergent > 0) {
      std::printf("ERROR: serving-mix (%s): %llu queries diverged from "
                  "the solo oracle\n",
                  ExecPolicyName(policy),
                  static_cast<unsigned long long>(divergent));
      ok = false;
    }
    if (vec_fallbacks_out != nullptr) *vec_fallbacks_out = vec_fallbacks;
    return seconds > 0 ? static_cast<double>(queries) / seconds : 0;
  };

  double best_serving = 0;
  const char* best_serving_policy = "?";
  for (ExecPolicy policy : kAllExecPolicies) {
    const double qps = run_serving(policy);
    if (qps > best_serving) {
      best_serving = qps;
      best_serving_policy = SeriesName(policy);
    }
  }
  uint64_t serving_vec_fallbacks = 0;
  PerfCounters::Sample serving_perf;
  const double adaptive_serving = run_serving(
      ExecPolicy::kAdaptive, &serving_vec_fallbacks, &serving_perf);
  const double serving_ratio =
      best_serving > 0 ? adaptive_serving / best_serving : 0;
  std::printf(
      "serving-mix: adaptive %.1f q/s vs best static (%s) %.1f q/s "
      "(%.2fx)\n",
      adaptive_serving, best_serving_policy, best_serving, serving_ratio);
  if (adaptive_serving <= 0 || serving_ratio < 0.5) {
    std::printf("ERROR: serving-mix adaptive is %.2fx best-static\n",
                serving_ratio);
    ok = false;
  }
  if (json) {
    json->BeginPoint();
    json->Field("workload", std::string("serving-mix"));
    json->Field("adaptive_queries_per_sec", adaptive_serving);
    json->Field("best_static_queries_per_sec", best_serving);
    json->Field("best_static_policy", std::string(best_serving_policy));
    json->Field("adaptive_vs_best", serving_ratio);
    json->Field("vec_fallbacks", serving_vec_fallbacks);
    PerfJsonFields(json.get(), serving_perf);
  }

  // ---- Structural adaptivity: the plan optimizer across the fig12
  // crossover ----
  // The schedule grid above holds the plan SHAPE fixed and varies the
  // schedule; this section holds the schedule fixed (AMAC) and lets the
  // plan optimizer pick the shape.  One declarative plan
  // (Scan -> Lookup -> GroupBy) runs on both sides of the join's
  // selectivity crossover: a full-hit probe, where fusing the aggregate
  // into the probe avoids materializing every row, and a 1/16-hit probe,
  // where the join filters hard and two-phase aggregates a tiny
  // intermediate.  The optimizer must reproduce the sequential oracle's
  // aggregate bit for bit and land within 0.9x of the better pinned shape
  // — the structural analogue of the 0.5x schedule floor above.
  {
    Relation sparse(d.uniform.s.size());
    for (uint64_t i = 0; i < sparse.size(); ++i) {
      sparse[i] = d.uniform.s[i];
      if (i % 16 != 0) {
        // Dense unique R holds keys [1, |R|]; anything above misses.
        sparse[i].key = static_cast<int64_t>(d.uniform.r.size() + 1 + i);
      }
    }
    const struct {
      const char* name;
      const Relation* probe;
    } ends[] = {{"structural-dense", &d.uniform.s},
                {"structural-sparse", &sparse}};
    TablePrinter structural_table(
        "structural adaptivity: plan optimizer vs pinned shapes "
        "(Minputs/s, AMAC, " + std::to_string(threads) + " thread(s))",
        {"probe", "fused", "two-phase", "optimizer", "chosen", "vs best"});
    PlanOptions fused_pin;
    fused_pin.shape = PlanShape::kFused;
    PlanOptions two_phase_pin;
    two_phase_pin.shape = PlanShape::kTwoPhase;
    for (const auto& end : ends) {
      const Plan plan = Plan::Scan(*end.probe)
                            .Lookup(*d.uniform.table)
                            .GroupBy(d.group_capacity);
      const RunStats oracle = SoloRun(plan, fused_pin);
      Executor exec(
          ExecConfig{ExecPolicy::kAmac, static_params, threads, 0});
      // One untimed run pays the prefix measurement and stores the priors
      // (the same warmup discipline as the schedule grid above); the
      // measured reps then ride — and keep self-correcting — the priors.
      (void)RunPlan(exec, plan, PlanOptions{});
      // Interleave the three arms rep by rep and take minima: comparing
      // minima of disjoint time windows lets one load burst on a shared
      // runner sink a single arm, which is what made the 0.9x gate flaky.
      const uint32_t reps = std::max(7u, args.reps);
      PlanResult fused, two_phase, chosen;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        PlanResult f = RunPlan(exec, plan, fused_pin);
        if (rep == 0 || f.TotalCycles() < fused.TotalCycles()) {
          fused = std::move(f);
        }
        PlanResult t = RunPlan(exec, plan, two_phase_pin);
        if (rep == 0 || t.TotalCycles() < two_phase.TotalCycles()) {
          two_phase = std::move(t);
        }
        PlanResult c = RunPlan(exec, plan, PlanOptions{});
        if (rep == 0 || c.TotalCycles() < chosen.TotalCycles()) {
          chosen = std::move(c);
        }
      }
      const double best_pinned =
          std::max(fused.run.Throughput(), two_phase.run.Throughput());
      const double chosen_tput = chosen.run.Throughput();
      const double ratio =
          best_pinned > 0 ? chosen_tput / best_pinned : 0;
      for (const PlanResult* r : {&fused, &two_phase, &chosen}) {
        if (r->run.outputs != oracle.outputs ||
            r->run.checksum != oracle.checksum) {
          std::printf("ERROR: %s shape diverges from the sequential "
                      "oracle\n", end.name);
          ok = false;
        }
      }
      if (!chosen.run.plan.active ||
          chosen.run.plan.candidates_considered != 2) {
        std::printf("ERROR: %s optimizer saw %u shapes (want 2)\n",
                    end.name, chosen.run.plan.candidates_considered);
        ok = false;
      }
      if (chosen_tput <= 0 || ratio < 0.9) {
        std::printf("ERROR: %s optimizer is %.2fx the best pinned shape "
                    "(< 0.9x)\n", end.name, ratio);
        ok = false;
      }
      structural_table.AddRow(
          {end.name, TablePrinter::Fmt(fused.run.Throughput() / 1e6, 2),
           TablePrinter::Fmt(two_phase.run.Throughput() / 1e6, 2),
           TablePrinter::Fmt(chosen_tput / 1e6, 2),
           PlanShapeName(chosen.run.plan.shape),
           TablePrinter::Fmt(ratio, 2)});
      if (json) {
        json->BeginPoint();
        json->Field("workload", std::string(end.name));
        json->Field("fused_inputs_per_sec", fused.run.Throughput());
        json->Field("two_phase_inputs_per_sec", two_phase.run.Throughput());
        json->Field("optimizer_inputs_per_sec", chosen_tput);
        json->Field("optimizer_vs_best_pinned", ratio);
        PlanJsonFields(json.get(), chosen.run.plan);
        PerfJsonFields(json.get(), chosen.run.perf);
      }
    }
    structural_table.Print();
  }
  if (json) ok = json->Close() && ok;

  if (!quick) {
    std::printf(
        "expected shape: adaptive tracks the per-workload best static "
        "schedule (prefetching ones on pointer-chasing probes, Baseline "
        "where working sets fit in cache) without any hand tuning; the "
        "0.5x floor is the CI guardrail, steady state should sit well "
        "above 0.8x.\n");
  }
  std::printf("ext_adaptive: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
