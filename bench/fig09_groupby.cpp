// Figure 9: group-by cycles per output tuple for a small (2^17-class) and a
// big (2^27-class) input relation, under uniform, Zipf(0.5) and Zipf(1)
// key distributions, with all six aggregate functions applied per match.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/pipeline.h"
#include "groupby/groupby.h"

namespace amac::bench {
namespace {

Relation MakeInput(uint64_t tuples, double theta, uint64_t seed) {
  if (theta == 0.0) {
    // Paper: uniform keys, each appearing exactly three times.
    return MakeGroupByInput(tuples / 3, 3, seed);
  }
  return MakeZipfRelation(tuples, tuples / 3, theta, seed);
}

void RunOne(const char* title, uint64_t tuples, const BenchArgs& args) {
  const double kThetas[] = {0.0, 0.5, 1.0};
  TablePrinter table(std::string(title) + " - cycles per input tuple",
                     {"skew", "Baseline", "GP", "SPP", "AMAC", "groups"});
  Executor exec(ExecConfig{ExecPolicy::kAmac,
                           SchedulerParams{args.inflight, 1, 0}, 1, 0});
  for (double theta : kThetas) {
    const Relation input =
        MakeInput(tuples, theta, static_cast<uint64_t>(19 + theta * 10));
    std::vector<std::string> row{
        theta == 0.0 ? "uniform" : ("Zipf(" + TablePrinter::Fmt(theta, 1) +
                                    ")")};
    uint64_t groups = 0;
    for (ExecPolicy policy : kPaperPolicies) {
      exec.set_policy(policy);
      RunStats best;
      for (uint32_t rep = 0; rep < args.reps; ++rep) {
        AggregateTable agg(tuples / 3 * 2, AggregateTable::Options{});
        const RunStats run = RunGroupBy(exec, input, &agg);
        if (rep == 0 || run.cycles < best.cycles) best = run;
      }
      groups = best.outputs;
      row.push_back(TablePrinter::Fmt(best.CyclesPerInput(), 1));
    }
    row.push_back(TablePrinter::Fmt(groups));
    table.AddRow(row);
  }
  table.Print();
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("small_scale_log2", 13,
                       "log2 input size of the small case (paper: 17)");
  args.Define(/*default_scale_log2=*/23);
  args.Parse(argc, argv);

  PrintHeader("Figure 9 (group-by, Xeon x5670)",
              "six aggregates (count/sum/min/max/avg/sumsq) applied per "
              "match; latch per bucket");

  RunOne("Fig 9 small input (2^17-class)",
         uint64_t{1} << args.flags.GetInt("small_scale_log2"), args);
  RunOne("Fig 9 big input (2^27-class)", args.scale, args);
  std::printf(
      "expected shape: small+skewed - GP/SPP at or below Baseline, AMAC "
      "~1.6x better; big - all prefetchers win ~2-2.6x, AMAC best.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
