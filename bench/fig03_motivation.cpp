// Figure 3: normalized cycles per lookup tuple for uniform, non-uniform and
// skewed traversals (the motivation experiment of §2.2.2).
//
// Setup mirrors the paper: a chained hash table with ~4 nodes per bucket on
// average.
//  * uniform:     dense keys, radix hash => every bucket exactly 4 nodes;
//                 lookups traverse the full chain (no early exit).
//  * non-uniform: same table, unique keys, early exit on match.
//  * skewed:      build keys Zipf(0.75) => irregular chain lengths.
// Values are normalized to the Baseline/uniform case, as in the paper.
#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "join/hash_join.h"

namespace amac::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("gp_stages", 4, "provisioned node-visit stages N");
  args.Define(/*default_scale_log2=*/23);
  args.Parse(argc, argv);
  const uint32_t stages =
      static_cast<uint32_t>(args.flags.GetInt("gp_stages"));

  PrintHeader("Figure 3 (normalized cycles per lookup tuple, Xeon x5670)",
              "scale |R|=|S|=2^" +
                  std::to_string(args.flags.GetInt("scale_log2")) +
                  " (paper: 2^27); ~4 chain nodes per bucket");

  // Uniform / non-uniform: dense keys + radix hash + 4-node buckets.
  const PreparedJoin uniform =
      PrepareJoin(args.scale, args.scale, 0.0, 0.0, 1,
                  /*target_nodes_per_bucket=*/4.0, HashKind::kRadix);
  // Skewed: Zipf(.75) build keys, uniformly distributed probe keys
  // (§2.2.2: the lookup tuples stay uniform; only the table is skewed).
  const PreparedJoin skewed =
      PrepareJoin(args.scale, args.scale, 0.75, 0.0, 2,
                  /*target_nodes_per_bucket=*/4.0, HashKind::kMurmur);

  const ChainStats chain_stats = uniform.table->ComputeStats();
  std::printf("uniform table: %.2f nodes/bucket (max %llu)\n",
              chain_stats.avg_nodes_per_used_bucket,
              static_cast<unsigned long long>(chain_stats.max_chain_nodes));
  const ChainStats skew_stats = skewed.table->ComputeStats();
  std::printf("skewed table: top 1%% buckets hold %.0f%% of tuples "
              "(paper: 19%%), max chain %llu nodes\n",
              skew_stats.top1pct_tuple_share * 100,
              static_cast<unsigned long long>(skew_stats.max_chain_nodes));

  TablePrinter table(
      "Fig 3: cycles per lookup, normalized to Baseline/uniform",
      {"engine", "uniform", "non-uniform", "skewed"});

  double norm = 0;
  for (ExecPolicy policy : kPaperPolicies) {
    Executor exec(ExecConfig{policy, SchedulerParams{args.inflight, stages, 0},
                             1, 0});

    // uniform: traverse all nodes (no early exit)
    const RunStats u = MeasureProbe(exec, uniform, false, args.reps);
    // non-uniform: early exit on unique match
    const RunStats nu = MeasureProbe(exec, uniform, true, args.reps);
    // skewed: first match; misses walk the chain
    const RunStats sk = MeasureProbe(exec, skewed, true, args.reps);

    if (policy == ExecPolicy::kSequential) norm = u.CyclesPerInput();
    table.AddRow({SeriesName(policy),
                  TablePrinter::Fmt(u.CyclesPerInput() / norm, 2),
                  TablePrinter::Fmt(nu.CyclesPerInput() / norm, 2),
                  TablePrinter::Fmt(sk.CyclesPerInput() / norm, 2)});
  }
  table.Print();
  std::printf("expected shape: GP/SPP ~3-4x faster than Baseline on uniform "
              "(0.25-0.35), degrading toward Baseline under skew; AMAC low "
              "everywhere.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
