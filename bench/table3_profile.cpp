// Table 3: execution profile of the uniform join with unequal table sizes
// (2MB-class ⋈ 2GB-class) — instructions per tuple and cycles per tuple for
// all four engines.
//
// Instructions come from perf_event counters when the kernel permits; in
// locked-down containers the bench falls back to a static per-stage
// estimate derived from the kernels' code (marked "est.").
#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "join/hash_join.h"
#include "metrics/perf_counters.h"

namespace amac::bench {
namespace {

/// Static instruction estimates per probe tuple at ~1 node visited, from
/// inspection of the compiled kernels (documented in EXPERIMENTS.md).
/// The paper's measured values at ~4 nodes were 36/90/67/55.
double EstimatedInstrPerTuple(ExecPolicy policy) {
  switch (policy) {
    case ExecPolicy::kSequential: return 14;
    case ExecPolicy::kGroupPrefetch: return 34;
    case ExecPolicy::kSoftwarePipelined: return 27;
    case ExecPolicy::kAmac: return 22;
    case ExecPolicy::kCoroutine: return 25;  // AMAC + frame resume overhead
    case ExecPolicy::kVectorized: return 9;  // 8 lanes share one gather seq
    case ExecPolicy::kVectorizedAmac: return 11;
    case ExecPolicy::kAdaptive: return 22;   // resolves to a static schedule
  }
  return 0;
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("small_ratio_log2", 10,
                       "|R| = |S| >> this many bits (paper: 1024x)");
  args.Define(/*default_scale_log2=*/23);
  args.Parse(argc, argv);

  PrintHeader("Table 3 (execution profile, uniform unequal join)",
              "paper reference: instr/tuple 36 / 90 / 67 / 55 and "
              "cycles/tuple 27 / 37 / 28 / 22 (Baseline/GP/SPP/AMAC)");

  const uint64_t r_size = args.scale >> args.flags.GetInt("small_ratio_log2");
  const PreparedJoin prepared =
      PrepareJoin(r_size, args.scale, 0.0, 0.0, 77);

  PerfCounters counters;
  if (!counters.available()) {
    std::printf("note: perf_event_open unavailable here; instruction counts "
                "are static estimates (est.).\n");
  }

  TablePrinter table("Table 3: per-tuple execution profile",
                     {"metric", "Baseline", "GP", "SPP", "AMAC"});
  std::vector<std::string> instr_row{"Instructions per Tuple"};
  std::vector<std::string> cycle_row{"Cycles per Tuple"};
  for (ExecPolicy policy : kPaperPolicies) {
    Executor exec(ExecConfig{
        policy, SchedulerParams{args.inflight, 1, 0}, 1, 0});

    double instr_per_tuple = 0;
    RunStats best;
    for (uint32_t rep = 0; rep < args.reps; ++rep) {
      counters.Start();
      const RunStats run =
          ProbePhase(exec, *prepared.table, prepared.s, /*early_exit=*/true);
      const PerfCounters::Sample sample = counters.Stop();
      if (rep == 0 || run.cycles < best.cycles) {
        best = run;
        instr_per_tuple =
            sample.valid
                ? static_cast<double>(sample.instructions) /
                      static_cast<double>(run.inputs)
                : EstimatedInstrPerTuple(policy);
      }
    }
    instr_row.push_back(TablePrinter::Fmt(instr_per_tuple, 0) +
                        (counters.available() ? "" : " (est.)"));
    cycle_row.push_back(TablePrinter::Fmt(best.CyclesPerInput(), 1));
  }
  table.AddRow(instr_row);
  table.AddRow(cycle_row);
  table.Print();
  std::printf(
      "expected shape: GP carries ~2.5x Baseline's instruction count, SPP "
      "~1.9x, AMAC ~1.5x; with the LLC-resident table those overheads decide "
      "cycles/tuple, so Baseline beats GP/SPP while AMAC wins overall.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
