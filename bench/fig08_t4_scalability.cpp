// Figure 8: hash join probe throughput vs hardware threads on the SPARC
// T4 (8 cores x 8 SMT), for [0,0], [.5,.5], [1,1] skews.  MODELED on
// memsim with the T4 machine description (no shared-queue wall; weaker
// 2-wide cores).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "memsim/memsim.h"
#include "memsim/workload.h"

namespace amac::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/18);
  args.Parse(argc, argv);

  PrintHeader("Figure 8 (probe throughput vs threads, SPARC T4)",
              "MODELED on memsim; threads fill physical cores first, then "
              "SMT contexts");

  const memsim::MachineConfig machine = memsim::MachineConfig::SparcT4();
  const double kSkews[][2] = {{0, 0}, {0.5, 0.5}, {1, 1}};
  const uint32_t kThreads[] = {1, 2, 4, 8, 16, 24, 32, 48, 64};

  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        args.scale, args.scale, zr, zs,
        static_cast<uint64_t>(17 + zr * 10 + zs * 100));
    const auto lengths = memsim::CollectWalkLengths(
        *prepared.table, prepared.s, /*early_exit=*/true);

    TablePrinter table(
        "Fig 8 " + SkewLabel(zr, zs) +
            ": modeled probe throughput (lookups/kilocycle, all threads)",
        {"threads", "Baseline", "GP", "SPP", "AMAC"});
    for (uint32_t threads : kThreads) {
      std::vector<std::string> row{std::to_string(threads)};
      for (ExecPolicy policy : kPaperPolicies) {
        memsim::SimConfig config;
        config.policy = policy;
        config.inflight = args.inflight;
        config.stages = zr == 0.0 ? 1 : 2;
        config.num_threads = threads;
        config.lookups_per_thread = 5000;
        config.chain_lengths = &lengths;
        const memsim::SimResult r = memsim::Simulate(machine, config);
        row.push_back(TablePrinter::Fmt(r.ThroughputPerKilocycle(), 1));
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "expected shape: near-linear scaling across the 8 physical cores, "
      "moderate further gains from SMT contexts, no 4-thread wall (deeper "
      "banked LLC queueing than Nehalem).\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
