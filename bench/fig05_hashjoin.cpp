// Figure 5: hash join cycles per output tuple, build + probe breakdown,
// under five key-distribution configurations [ZR, ZS], for (a) a small
// build relation (|R| = |S|/1024, table fits in LLC) and (b) equally sized
// relations.
//
// Extended beyond the paper with the vectorized policies (Vectorized =
// pure 8-wide batch gather, VecAMAC = interleaved multi-vectorization):
// every policy's join result is checked against the sequential oracle
// (nonzero exit on divergence), and on AVX2-capable hosts the bench
// additionally gates VecAMAC beating the best scalar static policy by
// >= 1.2x on at least one probe-heavy chained family (build-side skew)
// while holding parity on the uniform families.  --json emits the
// grid machine-readably, including the hardware LLC-miss / stalled-cycle
// counters when the kernel admits them (perf_valid says which).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cpu_features.h"
#include "common/table_printer.h"
#include "join/hash_join.h"

namespace amac::bench {
namespace {

constexpr ExecPolicy kFig5Policies[] = {
    ExecPolicy::kSequential,       ExecPolicy::kGroupPrefetch,
    ExecPolicy::kSoftwarePipelined, ExecPolicy::kAmac,
    ExecPolicy::kVectorized,       ExecPolicy::kVectorizedAmac};

/// Scalar static policies VecAMAC must beat on the speedup gate.
constexpr ExecPolicy kScalarPolicies[] = {
    ExecPolicy::kSequential, ExecPolicy::kGroupPrefetch,
    ExecPolicy::kSoftwarePipelined, ExecPolicy::kAmac};

bool IsScalarPolicy(ExecPolicy p) {
  for (ExecPolicy s : kScalarPolicies) {
    if (p == s) return true;
  }
  return false;
}

/// One [config, ZR, ZS] family's probe-side comparison for the
/// vectorization gate.
struct GateFamily {
  std::string label;
  double zr = 0;
  double best_scalar = 0;  ///< probe cycles/output, best scalar policy
  double vec_amac = 0;     ///< probe cycles/output, VecAMAC
  double Speedup() const {
    return vec_amac > 0 ? best_scalar / vec_amac : 0;
  }
};

bool RunOne(const char* title, uint64_t r_size, uint64_t s_size,
            const BenchArgs& args, JsonWriter* json,
            std::vector<GateFamily>* gate) {
  const double kSkews[][2] = {
      {0, 0}, {0.5, 0}, {1, 0}, {0.5, 0.5}, {1, 1}};
  const std::vector<std::string> header{
      "skew", "Baseline", "GP", "SPP", "AMAC", "Vectorized", "VecAMAC"};

  TablePrinter build_table(std::string(title) + " - build cycles/output",
                           header);
  TablePrinter probe_table(std::string(title) + " - probe cycles/output",
                           header);
  TablePrinter total_table(std::string(title) + " - total cycles/output",
                           header);

  bool ok = true;
  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        r_size, s_size, zr, zs, static_cast<uint64_t>(zr * 10 + zs * 100 + 3));
    std::vector<std::string> build_row{SkewLabel(zr, zs)};
    std::vector<std::string> probe_row{SkewLabel(zr, zs)};
    std::vector<std::string> total_row{SkewLabel(zr, zs)};
    uint64_t oracle_matches = 0, oracle_checksum = 0;
    double best_scalar_probe = 0;
    for (ExecPolicy policy : kFig5Policies) {
      // NPO layout: ~1 chain node in the uniform case (stages = 1).
      Executor exec(ExecConfig{
          policy, SchedulerParams{args.inflight, 1, 0}, 1, 0});
      // First-match semantics throughout, as in the paper's Listing 1
      // (out[idx] holds one result per probe tuple).
      const JoinResult result =
          MeasureJoin(exec, prepared, JoinOptions{}, args.reps);
      if (policy == ExecPolicy::kSequential) {
        oracle_matches = result.matches();
        oracle_checksum = result.checksum();
      } else if (result.matches() != oracle_matches ||
                 result.checksum() != oracle_checksum) {
        std::printf("ERROR: %s diverges from the sequential oracle at %s "
                    "(matches %llu vs %llu, checksum %llx vs %llx)\n",
                    ExecPolicyName(policy), SkewLabel(zr, zs).c_str(),
                    static_cast<unsigned long long>(result.matches()),
                    static_cast<unsigned long long>(oracle_matches),
                    static_cast<unsigned long long>(result.checksum()),
                    static_cast<unsigned long long>(oracle_checksum));
        ok = false;
      }
      const double out = static_cast<double>(
          result.matches() ? result.matches() : result.probe.inputs);
      const double probe_cpo =
          static_cast<double>(result.probe.cycles) / out;
      build_row.push_back(TablePrinter::Fmt(
          static_cast<double>(result.build.cycles) / out, 1));
      probe_row.push_back(TablePrinter::Fmt(probe_cpo, 1));
      total_row.push_back(TablePrinter::Fmt(
          static_cast<double>(result.build.cycles + result.probe.cycles) /
              out,
          1));
      if (gate != nullptr) {
        if (IsScalarPolicy(policy) &&
            (best_scalar_probe == 0 || probe_cpo < best_scalar_probe)) {
          best_scalar_probe = probe_cpo;
        }
        if (policy == ExecPolicy::kVectorizedAmac) {
          gate->push_back(GateFamily{std::string(title) + " " +
                                         SkewLabel(zr, zs),
                                     zr, best_scalar_probe, probe_cpo});
        }
      }
      if (json != nullptr) {
        json->BeginPoint();
        json->Field("config", std::string(title));
        json->Field("zr", zr);
        json->Field("zs", zs);
        json->Field("policy", std::string(SeriesName(policy)));
        json->Field("build_cycles_per_output",
                    static_cast<double>(result.build.cycles) / out);
        json->Field("probe_cycles_per_output", probe_cpo);
        json->Field("probe_vec_fallbacks", result.probe.engine.vec_fallbacks);
        json->Field("perf_valid", result.probe.perf.valid ? 1 : 0);
        json->Field("probe_llc_misses", result.probe.perf.llc_misses);
        json->Field("probe_stalled_cycles",
                    result.probe.perf.stalled_cycles);
        json->Field("probe_instructions", result.probe.perf.instructions);
      }
    }
    build_table.AddRow(build_row);
    probe_table.AddRow(probe_row);
    total_table.AddRow(total_row);
  }
  build_table.Print();
  probe_table.Print();
  total_table.Print();
  return ok;
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("small_ratio_log2", 10,
                       "small build is |S| >> this many bits (paper: 1024x)");
  args.flags.DefineBool("quick", false, "CI smoke mode: scale 2^16, 3 reps");
  args.flags.DefineString("json", "",
                          "write the skew x policy grid (with hardware "
                          "counters when available) as JSON to this path");
  args.Define(/*default_scale_log2=*/23);
  args.Parse(argc, argv);
  if (args.flags.GetBool("quick")) {
    args.scale = uint64_t{1} << 16;
    args.reps = 3;
  }

  PrintHeader("Figure 5 (hash join cycles breakdown, Xeon x5670)",
              "scale |S|=2^" + std::to_string(63 - __builtin_clzll(args.scale)) +
                  " (paper: 2^27 = 2GB); extended with the vectorized "
                  "policies (SIMD level: " +
                  SimdLevelName(CurrentSimdLevel()) + ")");

  const std::string json_path = args.flags.GetString("json");
  std::unique_ptr<JsonWriter> json;
  if (!json_path.empty()) {
    json = std::make_unique<JsonWriter>(json_path, "fig05_hashjoin");
    json->Field("scale", args.scale);
    json->Field("simd_level", std::string(SimdLevelName(CurrentSimdLevel())));
    json->BeginSeries();
  }

  const uint64_t small_r =
      args.scale >> args.flags.GetInt("small_ratio_log2");
  std::vector<GateFamily> gate;
  bool ok = RunOne("5a", small_r, args.scale, args, json.get(), &gate);
  ok = RunOne("5b", args.scale, args.scale, args, json.get(), &gate) && ok;
  if (json) ok = json->Close() && ok;

  // Vectorization gate, probe side.  Where the 8-wide gather walk wins on
  // this class of hardware is the chained families (build-side skew ZR > 0:
  // bucket chains longer than one node, resident in cache) — there VecAMAC
  // amortizes one gather sequence over 8 lane-parallel chain walks and must
  // beat the best scalar static policy by >= 1.2x on at least one family.
  // On the uniform unique-key families (~1 node per bucket) a gather costs
  // ~2.4 uops per loaded element (vs 1 for a scalar load), which cancels
  // the SIMD compare/hash savings, and the DRAM-bound large join is
  // MSHR-limited for every policy — exactly the paper's argument for
  // interleaving over vectorization — so there VecAMAC is required to hold
  // parity (>= 0.7x) with the best scalar policy, not beat it.
  if (!gate.empty()) {
    const GateFamily* peak = nullptr;
    const GateFamily* worst_uniform = nullptr;
    for (const GateFamily& f : gate) {
      std::printf("vectorization gate [%s probe]: best scalar %.1f vs "
                  "VecAMAC %.1f cycles/output -> %.2fx\n",
                  f.label.c_str(), f.best_scalar, f.vec_amac, f.Speedup());
      if (f.zr > 0 && (peak == nullptr || f.Speedup() > peak->Speedup())) {
        peak = &f;
      }
      if (f.zr == 0 && (worst_uniform == nullptr ||
                        f.Speedup() < worst_uniform->Speedup())) {
        worst_uniform = &f;
      }
    }
    // Only enforced where the SIMD kernels actually run: on scalar-only
    // hosts (or forced-scalar runs) the vector policies are schedule-
    // equivalent fallbacks and the gate is informational.
    if (CurrentSimdLevel() >= SimdLevel::kAvx2) {
      if (peak != nullptr && peak->Speedup() < 1.2) {
        std::printf("ERROR: best VecAMAC speedup on the chained families "
                    "is %.2fx (%s), below the 1.2x gate\n",
                    peak->Speedup(), peak->label.c_str());
        ok = false;
      }
      if (worst_uniform != nullptr && worst_uniform->Speedup() < 0.7) {
        std::printf("ERROR: VecAMAC parity on the uniform families is "
                    "%.2fx (%s), below the 0.7x floor\n",
                    worst_uniform->Speedup(), worst_uniform->label.c_str());
        ok = false;
      }
    }
  }
  std::printf(
      "expected shape: 5a - Baseline beats GP/SPP (LLC-resident table), "
      "AMAC best; 5b - all prefetchers ~3-4x over Baseline at [0,0]; GP/SPP "
      "probe degrades ~2x as ZR grows, AMAC stays ~flat; VecAMAC matches "
      "the best scalar policy on uniform keys (gather uop cost offsets the "
      "SIMD compares) and pulls ahead on build-skewed chained families, "
      "where one gather sequence advances 8 lane-parallel chain walks.\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
