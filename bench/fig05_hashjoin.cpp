// Figure 5: hash join cycles per output tuple, build + probe breakdown,
// under five key-distribution configurations [ZR, ZS], for (a) a small
// build relation (|R| = |S|/1024, table fits in LLC) and (b) equally sized
// relations.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "join/hash_join.h"

namespace amac::bench {
namespace {

void RunOne(const char* title, uint64_t r_size, uint64_t s_size,
            const BenchArgs& args) {
  const double kSkews[][2] = {
      {0, 0}, {0.5, 0}, {1, 0}, {0.5, 0.5}, {1, 1}};

  TablePrinter build_table(std::string(title) + " - build cycles/output",
                           {"skew", "Baseline", "GP", "SPP", "AMAC"});
  TablePrinter probe_table(std::string(title) + " - probe cycles/output",
                           {"skew", "Baseline", "GP", "SPP", "AMAC"});
  TablePrinter total_table(std::string(title) + " - total cycles/output",
                           {"skew", "Baseline", "GP", "SPP", "AMAC"});

  for (const auto& skew : kSkews) {
    const double zr = skew[0], zs = skew[1];
    const PreparedJoin prepared = PrepareJoin(
        r_size, s_size, zr, zs, static_cast<uint64_t>(zr * 10 + zs * 100 + 3));
    std::vector<std::string> build_row{SkewLabel(zr, zs)};
    std::vector<std::string> probe_row{SkewLabel(zr, zs)};
    std::vector<std::string> total_row{SkewLabel(zr, zs)};
    for (ExecPolicy policy : kPaperPolicies) {
      // NPO layout: ~1 chain node in the uniform case (stages = 1).
      Executor exec(ExecConfig{
          policy, SchedulerParams{args.inflight, 1, 0}, 1, 0});
      // First-match semantics throughout, as in the paper's Listing 1
      // (out[idx] holds one result per probe tuple).
      const JoinResult result =
          MeasureJoin(exec, prepared, JoinOptions{}, args.reps);
      const double out = static_cast<double>(
          result.matches() ? result.matches() : result.probe.inputs);
      build_row.push_back(TablePrinter::Fmt(
          static_cast<double>(result.build.cycles) / out, 1));
      probe_row.push_back(TablePrinter::Fmt(
          static_cast<double>(result.probe.cycles) / out, 1));
      total_row.push_back(TablePrinter::Fmt(
          static_cast<double>(result.build.cycles + result.probe.cycles) /
              out,
          1));
    }
    build_table.AddRow(build_row);
    probe_table.AddRow(probe_row);
    total_table.AddRow(total_row);
  }
  build_table.Print();
  probe_table.Print();
  total_table.Print();
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.flags.DefineInt("small_ratio_log2", 10,
                       "small build is |S| >> this many bits (paper: 1024x)");
  args.Define(/*default_scale_log2=*/23);
  args.Parse(argc, argv);

  PrintHeader("Figure 5 (hash join cycles breakdown, Xeon x5670)",
              "scale |S|=2^" + std::to_string(args.flags.GetInt("scale_log2")) +
                  " (paper: 2^27 = 2GB)");

  const uint64_t small_r =
      args.scale >> args.flags.GetInt("small_ratio_log2");
  RunOne("Fig 5a: small build (2MB-class |R| ⋈ 2GB-class |S|)", small_r,
         args.scale, args);
  RunOne("Fig 5b: large build (|R| = |S|)", args.scale, args.scale, args);
  std::printf(
      "expected shape: 5a - Baseline beats GP/SPP (LLC-resident table), "
      "AMAC best; 5b - all prefetchers ~3-4x over Baseline at [0,0]; GP/SPP "
      "probe degrades ~2x as ZR grows, AMAC stays ~flat.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
