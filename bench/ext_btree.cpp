// Extension (paper §2.1.2 context): the engines on a *balanced, wide-node*
// index — a bulk-loaded B+-tree with 4-cache-line nodes.  Every lookup
// performs exactly `height` dependent node visits, so this is the fully
// regular regime where GP/SPP were designed to shine; contrasted with
// fig10_bst it isolates how much of AMAC's edge comes from irregularity
// and how much from schedule efficiency.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "btree/btree.h"
#include "btree/btree_ops.h"
#include "btree/btree_search.h"
#include "common/cycle_timer.h"
#include "common/table_printer.h"
#include "core/scheduler.h"
#include "join/sink.h"

namespace amac::bench {
namespace {

uint64_t Measure(const BTree& tree, const Relation& probe, ExecPolicy policy,
                 uint32_t m, uint32_t reps) {
  const SchedulerParams params{m, tree.height()};
  uint64_t best = UINT64_MAX;
  for (uint32_t rep = 0; rep < std::max(1u, reps); ++rep) {
    CountChecksumSink sink;
    CycleTimer timer;
    if (policy == ExecPolicy::kSequential) {
      // No-prefetch pointer chase: the anchor the speedups are measured
      // against, kept hand-written like the paper's baseline.
      BTreeSearchBaseline(tree, probe, 0, probe.size(), sink);
    } else {
      BTreeSearchOp<CountChecksumSink> op(tree, probe, sink);
      amac::Run(policy, params, op, probe.size());
    }
    best = std::min(best, timer.Elapsed());
  }
  return best;
}

int Run(int argc, char** argv) {
  BenchArgs args;
  args.Define(/*default_scale_log2=*/23);
  args.Parse(argc, argv);

  PrintHeader("Extension: B+-tree index search (regular traversals)",
              "bulk-loaded, 256B nodes, exactly height() accesses per "
              "lookup; compare against fig10_bst");

  TablePrinter table("B+-tree search: cycles per lookup",
                     {"keys (log2)", "height", "Baseline", "GP", "SPP",
                      "AMAC"});
  for (int log2 = 17; log2 <= args.flags.GetInt("scale_log2"); log2 += 3) {
    const uint64_t n = uint64_t{1} << log2;
    const Relation rel = MakeDenseUniqueRelation(n, 211);
    const BTree tree(rel);
    const Relation probe = MakeForeignKeyRelation(n, n, 212);
    std::vector<std::string> row{std::to_string(log2),
                                 std::to_string(tree.height())};
    for (ExecPolicy policy : kPaperPolicies) {
      const uint64_t cycles =
          Measure(tree, probe, policy, args.inflight, args.reps);
      row.push_back(TablePrinter::Fmt(
          static_cast<double>(cycles) / static_cast<double>(n), 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "reading: with fully regular traversals GP/SPP recover much of "
      "AMAC's fig10 advantage (no wasted stages, no bailouts) — evidence "
      "that AMAC's edge on the BST is its irregularity handling, as the "
      "paper argues.\n");
  return 0;
}

}  // namespace
}  // namespace amac::bench

int main(int argc, char** argv) { return amac::bench::Run(argc, argv); }
