// Google-benchmark microbenchmarks for the substrate primitives used on
// the hot paths: hashing, RNG, Zipf generation, latch operations, and
// single chain-node visits.  These bound the per-stage bookkeeping costs
// that the paper's Table 3 instruction profile aggregates.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/cpu_features.h"
#include "common/hash.h"
#include "common/latch.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/zipf.h"
#include "hashtable/chained_table.h"
#include "join/probe_kernels.h"
#include "join/sink.h"
#include "relation/relation.h"

namespace amac {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 12345;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngNextBounded(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextBounded(1000003));
  }
}
BENCHMARK(BM_RngNextBounded);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(1 << 20, 0.75, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
}
BENCHMARK(BM_ZipfNext);

void BM_LatchUncontended(benchmark::State& state) {
  Latch latch;
  for (auto _ : state) {
    latch.Acquire();
    latch.Release();
  }
}
BENCHMARK(BM_LatchUncontended);

void BM_LatchTryAcquire(benchmark::State& state) {
  Latch latch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(latch.TryAcquire());
    latch.Release();
  }
}
BENCHMARK(BM_LatchTryAcquire);

void BM_VisitNodeHit(benchmark::State& state) {
  BucketNode node;
  node.count = 2;
  node.tuples[0] = Tuple{1, 10};
  node.tuples[1] = Tuple{2, 20};
  CountChecksumSink sink;
  for (auto _ : state) {
    const BucketNode* next = nullptr;
    benchmark::DoNotOptimize(VisitNode<true>(&node, 2, 0, sink, &next));
  }
}
BENCHMARK(BM_VisitNodeHit);

// --- vector hash vs scalar hash -----------------------------------------
// The vectorized policies' per-lookup hash budget: 8 Mix64 lanes per call
// vs 8 sequential scalar calls.  items = keys hashed.

void BM_ScalarHash8(benchmark::State& state) {
  uint64_t keys[kSimdLanes] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint64_t out[kSimdLanes];
  for (auto _ : state) {
    for (uint32_t i = 0; i < kSimdLanes; ++i) out[i] = Mix64(keys[i] + i);
    benchmark::DoNotOptimize(out);
    keys[0] = out[0];
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kSimdLanes);
}
BENCHMARK(BM_ScalarHash8);

void BM_VectorHash8(benchmark::State& state) {
  uint64_t keys[kSimdLanes] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint64_t out[kSimdLanes];
  for (auto _ : state) {
    Mix64x8(keys, out);
    benchmark::DoNotOptimize(out);
    keys[0] = out[0];
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kSimdLanes);
}
BENCHMARK(BM_VectorHash8);

void BM_VectorHash8ForcedScalar(benchmark::State& state) {
  // The runtime-dispatch fallback path of the same primitive.
  SetSimdLevelOverride(SimdLevel::kScalar);
  uint64_t keys[kSimdLanes] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint64_t out[kSimdLanes];
  for (auto _ : state) {
    Mix64x8(keys, out);
    benchmark::DoNotOptimize(out);
    keys[0] = out[0];
  }
  ClearSimdLevelOverride();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kSimdLanes);
}
BENCHMARK(BM_VectorHash8ForcedScalar);

// --- gather vs scalar loads ---------------------------------------------
// 8 dependent-free 64-bit loads from a working set larger than L2, as one
// hardware gather vs eight scalar dereferences.  items = words loaded.

constexpr uint64_t kGatherPoolWords = uint64_t{1} << 22;  // 32 MB

std::vector<uint64_t>& GatherPool() {
  static std::vector<uint64_t> pool = [] {
    std::vector<uint64_t> p(kGatherPoolWords);
    for (uint64_t i = 0; i < kGatherPoolWords; ++i) p[i] = i * 1000003ull;
    return p;
  }();
  return pool;
}

void BM_ScalarLoad8(benchmark::State& state) {
  const std::vector<uint64_t>& pool = GatherPool();
  Rng rng(81);
  uint64_t sum = 0;
  for (auto _ : state) {
    uint64_t out[kSimdLanes];
    for (uint32_t i = 0; i < kSimdLanes; ++i) {
      out[i] = pool[rng.Next() & (kGatherPoolWords - 1)];
    }
    for (uint64_t v : out) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kSimdLanes);
}
BENCHMARK(BM_ScalarLoad8);

void BM_Gather8(benchmark::State& state) {
  const std::vector<uint64_t>& pool = GatherPool();
  Rng rng(81);  // same address stream as BM_ScalarLoad8
  uint64_t sum = 0;
  for (auto _ : state) {
    const uint64_t* addrs[kSimdLanes];
    for (uint32_t i = 0; i < kSimdLanes; ++i) {
      addrs[i] = &pool[rng.Next() & (kGatherPoolWords - 1)];
    }
    uint64_t out[kSimdLanes];
    Gather64x8(addrs, out);
    for (uint64_t v : out) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kSimdLanes);
}
BENCHMARK(BM_Gather8);

void BM_BucketIndexMurmur(benchmark::State& state) {
  ChainedHashTable table(1 << 16, ChainedHashTable::Options{});
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.BucketIndex(++key));
  }
}
BENCHMARK(BM_BucketIndexMurmur);

void BM_CacheResidentProbeAmac(benchmark::State& state) {
  // Upper bound on AMAC bookkeeping: probe a table that fits in L1/L2 so
  // the measured cost is the state machine, not DRAM.
  const uint64_t n = 1 << 10;
  const Relation build = MakeDenseUniqueRelation(n, 71);
  const Relation probe = MakeForeignKeyRelation(n, n, 72);
  ChainedHashTable table(n, ChainedHashTable::Options{});
  BuildTableUnsync(build, &table);
  for (auto _ : state) {
    CountChecksumSink sink;
    ProbeAmac<true>(table, probe, 0, n, 10, sink);
    benchmark::DoNotOptimize(sink.checksum());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CacheResidentProbeAmac);

void BM_CacheResidentProbeBaseline(benchmark::State& state) {
  const uint64_t n = 1 << 10;
  const Relation build = MakeDenseUniqueRelation(n, 73);
  const Relation probe = MakeForeignKeyRelation(n, n, 74);
  ChainedHashTable table(n, ChainedHashTable::Options{});
  BuildTableUnsync(build, &table);
  for (auto _ : state) {
    CountChecksumSink sink;
    ProbeBaseline<true>(table, probe, 0, n, sink);
    benchmark::DoNotOptimize(sink.checksum());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CacheResidentProbeBaseline);

}  // namespace
}  // namespace amac

BENCHMARK_MAIN();
