// Shared plumbing for the per-figure benchmark binaries.
//
// Conventions (see EXPERIMENTS.md):
//  * every binary prints the paper table/figure it regenerates, the scale it
//    ran at, and one TablePrinter block whose rows mirror the paper's
//    series;
//  * dataset sizes default to laptop scale (2^20-class instead of the
//    paper's 2^27) and are adjustable via --scale_log2;
//  * each measured point is the minimum over --reps repetitions (the paper
//    reports best-configuration numbers; min-of-reps removes timer noise).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/scheduler.h"
#include "graph/csr.h"
#include "hashtable/chained_table.h"
#include "join/hash_join.h"
#include "metrics/perf_counters.h"
#include "plan/plan.h"
#include "relation/relation.h"
#include "skiplist/skiplist.h"

namespace amac::bench {

/// The four schedules the paper's figures compare, as unified-runtime
/// policies (the legacy Engine enum's Baseline/GP/SPP/AMAC series).
inline constexpr ExecPolicy kPaperPolicies[] = {
    ExecPolicy::kSequential, ExecPolicy::kGroupPrefetch,
    ExecPolicy::kSoftwarePipelined, ExecPolicy::kAmac};

/// Figure-series label: the paper calls kSequential "Baseline"; the other
/// policies keep their runtime names (GP/SPP/AMAC/Coroutine).
inline const char* SeriesName(ExecPolicy p) {
  return p == ExecPolicy::kSequential ? "Baseline" : ExecPolicyName(p);
}

/// Standard flags shared by the figure benches; individual benches may add
/// their own before calling Parse.
struct BenchArgs {
  Flags flags;
  uint64_t scale = 0;   ///< |S| (probe/input cardinality)
  uint32_t reps = 0;
  uint32_t inflight = 0;

  /// Define the common flags with a bench-specific default scale.
  void Define(int default_scale_log2);
  void Parse(int argc, char** argv);
};

/// A built join input: relations plus the populated hash table.
struct PreparedJoin {
  Relation r;
  Relation s;
  std::unique_ptr<ChainedHashTable> table;
};

/// Build R (optionally Zipf-skewed with factor `zr`), S (skew `zs`, keys in
/// R's key range), and the hash table.  zr == 0 gives the dense unique R /
/// FK-constrained S of the paper's uniform workloads.
PreparedJoin PrepareJoin(uint64_t r_size, uint64_t s_size, double zr,
                         double zs, uint64_t seed,
                         double target_nodes_per_bucket = 1.0,
                         HashKind hash_kind = HashKind::kMurmur);

/// Probe `prepared` on `exec`, `reps` times; returns the repetition with
/// the fewest probe cycles.  The executor's persistent pool is reused
/// across repetitions, so per-call thread spawn stays off the measurement.
RunStats MeasureProbe(Executor& exec, const PreparedJoin& prepared,
                      bool early_exit, uint32_t reps);

/// Full build+probe measurement on `exec` (fresh table per repetition);
/// returns the repetition with the fewest total cycles.
JoinResult MeasureJoin(Executor& exec, const PreparedJoin& prepared,
                       const JoinOptions& options, uint32_t reps);

/// Run `plan` on `exec` `reps` times; returns the repetition with the
/// fewest total (build + run) cycles.  Plan-owned group tables are
/// allocated fresh inside each RunPlan call, so per-rep state reset — the
/// AggregateTable/MaterializeSink boilerplate the benches used to
/// hand-roll — is the plan layer's problem now.  Later repetitions ride
/// the priors the first one stored (run.plan.from_priors), which is the
/// steady state a serving system would measure.
PlanResult MeasurePlan(Executor& exec, const Plan& plan,
                       const PlanOptions& options, uint32_t reps);

/// Run `plan` once on a throwaway solo sequential executor (1 thread,
/// M=1): the schedule-independent oracle result every other schedule and
/// shape must reproduce.
RunStats SoloRun(const Plan& plan, const PlanOptions& options = {});

/// A skip list holding every (key, payload) of `rel`, inserted unsynced
/// with a deterministic level RNG — the index the serving/adaptive benches
/// probe.
std::unique_ptr<SkipList> BuildSkipList(const Relation& rel, uint64_t seed);

/// The benches' standard random-walk graph: scale/4 vertices (min 64),
/// out-degree 8.
std::unique_ptr<CsrGraph> MakeWalkGraph(uint64_t scale, uint64_t seed);

/// "[ZR, ZS]" labels used by Figs. 5/7/8.
std::string SkewLabel(double zr, double zs);

/// Banner naming the paper artifact this binary regenerates.
void PrintHeader(const std::string& artifact, const std::string& notes);

/// Streaming writer for the machine-readable perf artifacts CI uploads
/// (BENCH_*.json): one flat object of header fields plus one "series"
/// array of flat point objects.  Shared by fig06/fig12/ext_serving/
/// ext_adaptive so the escaping/comma bookkeeping lives in exactly one
/// place.
///
///   JsonWriter json(path, "fig12_fused_join_groupby");
///   json.Field("scale", scale);
///   json.BeginSeries();
///   for (...) { json.BeginPoint(); json.Field("policy", name); ... }
///   ok = json.Close();
class JsonWriter {
 public:
  /// Opens `path` and writes the object header with a "bench" name field.
  JsonWriter(const std::string& path, const std::string& bench);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  /// False when the file could not be opened (an error was printed).
  bool ok() const { return file_ != nullptr; }

  void Field(const std::string& key, const std::string& value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, int64_t value);
  void Field(const std::string& key, double value);
  // Disambiguating delegates (an int literal would otherwise be torn
  // between the integer and double overloads).
  void Field(const std::string& key, uint32_t value) {
    Field(key, uint64_t{value});
  }
  void Field(const std::string& key, int value) {
    Field(key, static_cast<int64_t>(value));
  }

  /// Start the "series" array; every point between BeginPoint() calls is
  /// one flat object of Field()s.
  void BeginSeries();
  void BeginPoint();

  /// Close all open scopes and the file; false on any I/O failure.
  bool Close();

 private:
  void Key(const std::string& key);
  void ClosePoint();

  std::FILE* file_ = nullptr;
  bool in_series_ = false;
  bool in_point_ = false;
  bool first_in_scope_ = true;
};

/// Emit a run's optimizer decision (RunStats::plan) as flat JSON fields —
/// shape/build-side/build-mode names, candidate count, and the cost-model
/// provenance — under the current JsonWriter point.
void PlanJsonFields(JsonWriter* json, const PlanStats& plan);

/// Emit a run's hardware counters (RunStats::perf) as flat JSON fields
/// with the fig05/fig06 names — perf_valid, llc_misses, stalled_cycles,
/// instructions — so every bench artifact carries the same counter
/// vocabulary for the nightly trajectory.  Zeroes with perf_valid=0 when
/// the kernel forbade sampling.
void PerfJsonFields(JsonWriter* json, const PerfCounters::Sample& perf);

}  // namespace amac::bench
