// Streaming statistics and histograms for benchmark reporting and for
// validating workload generators (e.g. Zipf frequency shape, bucket chain
// length distributions).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace amac {

/// Nearest-rank percentile over an ascending-sorted sample: the smallest
/// element whose rank is >= ceil(q * n).  This is THE definition of
/// "percentile" for every latency number the repo reports (ServingStats,
/// the open-loop serving bench) — pinned against a full-sample oracle by
/// tests/common/stats_test.cpp, so keep the two call sites on one helper.
inline double PercentileOfSorted(const std::vector<double>& sorted,
                                 double q) {
  if (sorted.empty()) return 0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const size_t idx = static_cast<size_t>(std::max(0.0, rank - 1));
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Bounded uniform sample of an unbounded stream (Vitter's Algorithm R):
/// after Add()ing n > capacity values, every value seen has an equal
/// capacity/n chance of being in the sample, so order statistics over the
/// sample estimate the full stream's without O(n) memory.
///
/// The replacement draws come from a seeded common/rng.h stream.  (An
/// earlier version hashed the completion counter instead of drawing: that
/// picks the SAME index subset on every run — not a uniform sample at all,
/// merely a fixed one, so index-correlated streams estimate with a bias
/// that repeated runs can never average out.  The stats_test uniformity
/// suite pins the RNG behavior.)
class ReservoirSample {
 public:
  explicit ReservoirSample(size_t capacity,
                           uint64_t seed = 0x5e5e5e5e5e5e5e5eull)
      : capacity_(capacity), rng_(seed) {
    AMAC_CHECK(capacity >= 1);
  }

  void Add(double value) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      return;
    }
    const uint64_t j = rng_.NextBounded(seen_);
    if (j < capacity_) sample_[j] = value;
  }

  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }
  const std::vector<double>& sample() const { return sample_; }

  /// Ascending copy of the sample, ready for PercentileOfSorted.
  std::vector<double> Sorted() const {
    std::vector<double> sorted = sample_;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

 private:
  size_t capacity_;
  uint64_t seen_ = 0;
  std::vector<double> sample_;
  Rng rng_;
};

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    const double new_mean =
        mean_ + delta * static_cast<double>(other.n_) / total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = new_mean;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket integer histogram with exact counts for small values and a
/// single overflow bucket; enough for chain-length / tower-height shapes.
class Histogram {
 public:
  explicit Histogram(uint64_t max_tracked = 64) : counts_(max_tracked + 1, 0) {}

  void Add(uint64_t value) {
    const uint64_t idx =
        std::min<uint64_t>(value, counts_.size() - 1);
    ++counts_[idx];
    ++total_;
    sum_ += value;
    max_seen_ = std::max(max_seen_, value);
  }

  uint64_t Count(uint64_t value) const {
    return value < counts_.size() ? counts_[value] : 0;
  }
  uint64_t OverflowCount() const { return counts_.back(); }
  uint64_t total() const { return total_; }
  uint64_t max_seen() const { return max_seen_; }
  double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(total_);
  }

  /// Smallest value v such that at least `q` (0..1] of samples are <= v.
  /// Overflowed samples count at the last tracked bucket.
  uint64_t Quantile(double q) const {
    AMAC_CHECK(q > 0 && q <= 1.0);
    const uint64_t target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    uint64_t cum = 0;
    for (std::size_t v = 0; v < counts_.size(); ++v) {
      cum += counts_[v];
      if (cum >= target) return v;
    }
    return counts_.size() - 1;
  }

  std::string ToString() const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_seen_ = 0;
};

}  // namespace amac
