// Streaming statistics and histograms for benchmark reporting and for
// validating workload generators (e.g. Zipf frequency shape, bucket chain
// length distributions).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/macros.h"

namespace amac {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    const double new_mean =
        mean_ + delta * static_cast<double>(other.n_) / total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = new_mean;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket integer histogram with exact counts for small values and a
/// single overflow bucket; enough for chain-length / tower-height shapes.
class Histogram {
 public:
  explicit Histogram(uint64_t max_tracked = 64) : counts_(max_tracked + 1, 0) {}

  void Add(uint64_t value) {
    const uint64_t idx =
        std::min<uint64_t>(value, counts_.size() - 1);
    ++counts_[idx];
    ++total_;
    sum_ += value;
    max_seen_ = std::max(max_seen_, value);
  }

  uint64_t Count(uint64_t value) const {
    return value < counts_.size() ? counts_[value] : 0;
  }
  uint64_t OverflowCount() const { return counts_.back(); }
  uint64_t total() const { return total_; }
  uint64_t max_seen() const { return max_seen_; }
  double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(total_);
  }

  /// Smallest value v such that at least `q` (0..1] of samples are <= v.
  /// Overflowed samples count at the last tracked bucket.
  uint64_t Quantile(double q) const {
    AMAC_CHECK(q > 0 && q <= 1.0);
    const uint64_t target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    uint64_t cum = 0;
    for (std::size_t v = 0; v < counts_.size(); ++v) {
      cum += counts_[v];
      if (cum >= target) return v;
    }
    return counts_.size() - 1;
  }

  std::string ToString() const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_seen_ = 0;
};

}  // namespace amac
