// Hash functions and bit utilities.
//
// The join literature this paper builds on (Balkesen et al.) uses masked
// multiplicative / radix hashing over dense integer keys; we provide that
// plus a finalizer-strength mixer for skewed keys, selectable per table.
#pragma once

#include <cstdint>

#include "common/macros.h"

namespace amac {

/// Round up to the next power of two (returns 1 for 0).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << (64 - __builtin_clzll(v - 1));
}

inline bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

inline uint32_t Log2Floor(uint64_t v) {
  AMAC_DCHECK(v != 0);
  return 63 - __builtin_clzll(v);
}

/// MurmurHash3 finalizer: full-avalanche 64-bit mixer.  The vectorized
/// execution policies hash 8 keys at once through Mix64x8 / HashToBucket8
/// (common/simd.h), bitwise-identical to this scalar form per lane.
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// Hash a key into [0, num_buckets) where num_buckets is a power of two.
/// `kRadix` reproduces the Balkesen-style masked hash used for dense keys;
/// `kMurmur` applies Mix64 first (required for Zipf-skewed key spaces where
/// low bits are badly distributed).
enum class HashKind { kRadix, kMurmur };

template <HashKind Kind>
inline uint64_t HashToBucket(uint64_t key, uint64_t bucket_mask) {
  if constexpr (Kind == HashKind::kRadix) {
    return key & bucket_mask;
  } else {
    return Mix64(key) & bucket_mask;
  }
}

}  // namespace amac
