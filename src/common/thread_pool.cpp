#include "common/thread_pool.h"

namespace amac {

void ParallelFor(uint32_t num_threads,
                 const std::function<void(uint32_t)>& fn) {
  AMAC_CHECK(num_threads > 0);
  if (num_threads == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&fn, t] { fn(t); });
  }
  for (auto& th : threads) th.join();
}

Range PartitionRange(uint64_t total, uint32_t parts, uint32_t index) {
  AMAC_CHECK(parts > 0 && index < parts);
  const uint64_t base = total / parts;
  const uint64_t extra = total % parts;
  const uint64_t begin =
      static_cast<uint64_t>(index) * base + (index < extra ? index : extra);
  const uint64_t len = base + (index < extra ? 1 : 0);
  return Range{begin, begin + len};
}

}  // namespace amac
