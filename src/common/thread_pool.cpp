#include "common/thread_pool.h"

namespace amac {

void ParallelFor(uint32_t num_threads,
                 const std::function<void(uint32_t)>& fn) {
  AMAC_CHECK(num_threads > 0);
  if (num_threads == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&fn, t] { fn(t); });
  }
  for (auto& th : threads) th.join();
}

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(std::max(1u, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(uint32_t tid) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(uint32_t)>* fn = nullptr;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto ready = [&] {
        return stop_ || generation_ != seen || !tasks_.empty();
      };
      // Each time the worker is about to park with nothing to do, run the
      // idle hook once (outside the lock — it may take other locks), then
      // block.  The hook runs once per park, not in a spin: the condvar
      // wait blocks until the next notify.
      while (!ready()) {
        if (idle_) {
          std::function<void()> idle = idle_;
          lock.unlock();
          idle();
          lock.lock();
          if (ready()) break;
        }
        work_cv_.wait(lock);
      }
      if (stop_) return;
      if (generation_ != seen) {
        // Fork-join generations take precedence: a Run() caller is blocked
        // synchronously while queued tasks have asynchronous waiters.
        seen = generation_;
        fn = fn_;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (fn != nullptr) {
      (*fn)(tid);
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    } else {
      task();
    }
  }
}

void ThreadPool::Run(const std::function<void(uint32_t)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::TryRunTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::SetIdleTask(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    idle_ = std::move(task);
  }
  // Wake parked workers so the new hook runs at least once promptly.
  work_cv_.notify_all();
}

uint64_t ThreadPool::queued_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

Range PartitionRange(uint64_t total, uint32_t parts, uint32_t index) {
  AMAC_CHECK(parts > 0 && index < parts);
  const uint64_t base = total / parts;
  const uint64_t extra = total % parts;
  const uint64_t begin =
      static_cast<uint64_t>(index) * base + (index < extra ? index : extra);
  const uint64_t len = base + (index < extra ? 1 : 0);
  return Range{begin, begin + len};
}

}  // namespace amac
