// Core macros and build-time constants shared by every AMAC module.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace amac {

/// Cache line size assumed throughout: data-structure nodes are padded and
/// aligned to this boundary (paper §4: "nodes are aligned to 64-byte cache
/// block boundary").
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace amac

#define AMAC_LIKELY(x) (__builtin_expect(!!(x), 1))
#define AMAC_UNLIKELY(x) (__builtin_expect(!!(x), 0))

#define AMAC_CACHE_ALIGNED alignas(::amac::kCacheLineSize)

/// Always-on assertion (used for invariants that must hold in Release
/// benchmarking builds too; cost is negligible off the hot path).
#define AMAC_CHECK(cond)                                                    \
  do {                                                                      \
    if (AMAC_UNLIKELY(!(cond))) {                                           \
      std::fprintf(stderr, "AMAC_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define AMAC_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (AMAC_UNLIKELY(!(cond))) {                                           \
      std::fprintf(stderr, "AMAC_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Debug-only assertion for hot paths.
#ifdef NDEBUG
#define AMAC_DCHECK(cond) ((void)0)
#else
#define AMAC_DCHECK(cond) assert(cond)
#endif
