// Core macros and build-time constants shared by every AMAC module.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace amac {

/// Cache line size assumed throughout: data-structure nodes are padded and
/// aligned to this boundary (paper §4: "nodes are aligned to 64-byte cache
/// block boundary").
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace amac

#define AMAC_LIKELY(x) (__builtin_expect(!!(x), 1))
#define AMAC_UNLIKELY(x) (__builtin_expect(!!(x), 0))

#define AMAC_CACHE_ALIGNED alignas(::amac::kCacheLineSize)

/// Always-on assertion (used for invariants that must hold in Release
/// benchmarking builds too; cost is negligible off the hot path).
#define AMAC_CHECK(cond)                                                    \
  do {                                                                      \
    if (AMAC_UNLIKELY(!(cond))) {                                           \
      std::fprintf(stderr, "AMAC_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define AMAC_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (AMAC_UNLIKELY(!(cond))) {                                           \
      std::fprintf(stderr, "AMAC_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Debug-only assertion for hot paths.
#ifdef NDEBUG
#define AMAC_DCHECK(cond) ((void)0)
#else
#define AMAC_DCHECK(cond) assert(cond)
#endif

/// True when compiling under ThreadSanitizer.  The race-tolerant read paths
/// (SIMD gathers over concurrently mutated nodes, whose plain loads are
/// exact under x86-TSO but are data races in the C++ memory model) are
/// compiled out under TSan instead of suppressed, so the TSan CI leg keeps
/// full signal on the paths that must be race-free.
#if defined(__SANITIZE_THREAD__)
#define AMAC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AMAC_TSAN 1
#else
#define AMAC_TSAN 0
#endif
#else
#define AMAC_TSAN 0
#endif
