#include "common/stats.h"

#include <cstdio>

namespace amac {

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (counts_[v] == 0) continue;
    const double pct =
        100.0 * static_cast<double>(counts_[v]) / static_cast<double>(total_);
    std::snprintf(line, sizeof(line), "%s%zu: %llu (%.2f%%)\n",
                  v + 1 == counts_.size() ? ">=" : "", v,
                  static_cast<unsigned long long>(counts_[v]), pct);
    out += line;
  }
  return out;
}

}  // namespace amac
