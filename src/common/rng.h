// Deterministic pseudo-random number generation.
//
// All workload generators take explicit seeds so every experiment is
// reproducible bit-for-bit.  splitmix64 seeds xoshiro256** (Blackman &
// Vigna), which is fast enough to sit inside data-generation loops.
#pragma once

#include <cstdint>

#include "common/macros.h"

namespace amac {

/// splitmix64: used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x8badf00ddeadbeefull) { Seed(seed); }

  void Seed(uint64_t seed) {
    for (auto& word : s_) word = SplitMix64(seed);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    AMAC_DCHECK(bound > 0);
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Fair coin.
  bool NextBool() { return (Next() & 1) != 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace amac
