// Thread team primitives: per-call fork-join (ParallelFor), a persistent
// fork-join team with a task queue (ThreadPool), and the morsel cursor.
//
// Benchmarks need "run this closure on T threads, each knowing its id, and
// join"; the serving layer additionally needs "run these queued tasks on
// whichever worker is free" so morsels from different queries can
// interleave on one shared team.  Both modes share ThreadPool's workers.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace amac {

/// Run `fn(thread_id)` on `num_threads` std::threads and join them all.
void ParallelFor(uint32_t num_threads,
                 const std::function<void(uint32_t)>& fn);

/// Persistent thread team: `size() - 1` workers are spawned once and parked
/// on a condition variable; every Run() reuses them, so the per-call
/// std::thread spawn/join cost of ParallelFor (hundreds of microseconds for
/// a wide team) is paid once per pool instead of once per phase.  The core
/// Executor owns one of these across Run() calls.
///
/// Thread id 0 is the calling thread — a pool of size 1 runs entirely
/// inline, keeping the single-threaded path identical to a plain call.
/// Run() is fork-join (returns after every thread finished) and is NOT
/// reentrant: calling Run() from inside a pool closure deadlocks.
///
/// Beyond fork-join, the same workers drain a FIFO *task queue*
/// (Submit/TryRunTask): the serving layer (server/query_scheduler.h)
/// enqueues one task per in-flight morsel so lookups from different
/// queries interleave on one shared team, and any thread — worker or a
/// client blocked in Wait() — can help drain the queue.  Fork-join Run()
/// and queued tasks may coexist: a worker finishes its current task before
/// joining a fork-join generation.  Do not call Run() while tasks that
/// take long are queued if the closure uses spin barriers.
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t size() const { return num_threads_; }

  /// Run `fn(tid)` for every tid in [0, size()); tid 0 executes on the
  /// caller.  Returns once all threads completed the closure.
  void Run(const std::function<void(uint32_t)>& fn);

  /// Enqueue a task for any free worker.  Tasks run in FIFO order (the
  /// interleaving discipline: a resubmitted morsel task goes to the back,
  /// so concurrent queries round-robin).  With size() == 1 there are no
  /// workers; tasks only run when some thread calls TryRunTask().
  void Submit(std::function<void()> task);

  /// Pop and run one queued task on the calling thread; false when the
  /// queue was empty.  Lets client threads blocked on a result help drain
  /// the queue instead of idling (work-conserving Wait()).
  bool TryRunTask();

  /// Tasks currently queued (racy snapshot; observability only).
  uint64_t queued_tasks() const;

  /// Install (or clear, with an empty function) a closure every worker runs
  /// once each time it is about to park with nothing to do.  The epoch
  /// subsystem hooks EpochManager::AdvanceAndReclaim here so quiescence
  /// advances and orphaned retirements drain from otherwise-idle workers.
  /// The closure must be cheap, must not touch the pool, and must tolerate
  /// concurrent invocation from several workers.
  void SetIdleTask(std::function<void()> task);

 private:
  void WorkerLoop(uint32_t tid);

  const uint32_t num_threads_;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(uint32_t)>* fn_ = nullptr;  ///< guarded by mu_
  uint64_t generation_ = 0;                            ///< guarded by mu_
  uint32_t pending_ = 0;                               ///< guarded by mu_
  std::deque<std::function<void()>> tasks_;            ///< guarded by mu_
  std::function<void()> idle_;                         ///< guarded by mu_
  bool stop_ = false;                                  ///< guarded by mu_
};

/// Split [0, total) into `parts` contiguous ranges; returns [begin, end) of
/// range `index`. Remainder elements go to the leading ranges so sizes
/// differ by at most one.
struct Range {
  uint64_t begin;
  uint64_t end;
  uint64_t size() const { return end - begin; }
};
Range PartitionRange(uint64_t total, uint32_t parts, uint32_t index);

/// Atomic work-stealing cursor over [0, total): threads claim fixed-size
/// morsels until the input is exhausted.  Unlike PartitionRange's static
/// split, stragglers (skewed chains, latch contention) cannot leave other
/// threads idle — the morsel-driven parallelism the parallel driver uses.
class MorselCursor {
 public:
  MorselCursor(uint64_t total, uint64_t morsel_size)
      : total_(total), morsel_(morsel_size) {
    AMAC_CHECK(morsel_size >= 1);
  }

  /// Claim the next unclaimed morsel; false once the input is exhausted.
  bool Next(Range* out) {
    const uint64_t begin =
        next_.fetch_add(morsel_, std::memory_order_relaxed);
    if (begin >= total_) return false;
    out->begin = begin;
    out->end = std::min(total_, begin + morsel_);
    return true;
  }

  uint64_t total() const { return total_; }
  uint64_t morsel_size() const { return morsel_; }

 private:
  std::atomic<uint64_t> next_{0};
  const uint64_t total_;
  const uint64_t morsel_;
};

}  // namespace amac
