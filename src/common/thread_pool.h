// Minimal fork-join helper used by multi-threaded build/probe phases.
//
// Benchmarks need "run this closure on T threads, each knowing its id, and
// join" — nothing more.  Threads are spawned per call; the scalability
// benches time only the region between barrier waits inside the closure, so
// spawn cost is off the measured path.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace amac {

/// Run `fn(thread_id)` on `num_threads` std::threads and join them all.
void ParallelFor(uint32_t num_threads,
                 const std::function<void(uint32_t)>& fn);

/// Split [0, total) into `parts` contiguous ranges; returns [begin, end) of
/// range `index`. Remainder elements go to the leading ranges so sizes
/// differ by at most one.
struct Range {
  uint64_t begin;
  uint64_t end;
  uint64_t size() const { return end - begin; }
};
Range PartitionRange(uint64_t total, uint32_t parts, uint32_t index);

}  // namespace amac
