// Cache-line / page aligned memory management.
//
// Data-structure nodes are allocated out of large aligned slabs so that (a)
// every node sits on a 64-byte boundary as in the paper's methodology and
// (b) allocation cost never pollutes measured loops.  On Linux we advise
// transparent huge pages, standing in for the paper's explicit 2 MB pages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/macros.h"

namespace amac {

/// Allocate `bytes` aligned to `alignment`; abort on failure (workload
/// buffers are sized up front — an allocation failure is not recoverable).
void* AlignedAlloc(std::size_t bytes, std::size_t alignment = kCacheLineSize);

/// Free memory obtained from AlignedAlloc.
void AlignedFree(void* p);

/// Advise the kernel to back [p, p+bytes) with huge pages (best effort).
void AdviseHugePages(void* p, std::size_t bytes);

/// Owning, movable buffer of `T` aligned to a cache line (or stronger).
/// Elements are default-constructed only when `T` is non-trivial.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count,
                         std::size_t alignment = kCacheLineSize)
      : size_(count) {
    if (count == 0) return;
    data_ = static_cast<T*>(AlignedAlloc(count * sizeof(T), alignment));
    AdviseHugePages(data_, count * sizeof(T));
    if constexpr (!std::is_trivially_default_constructible_v<T>) {
      for (std::size_t i = 0; i < count; ++i) new (data_ + i) T();
    }
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept { *this = std::move(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { Reset(); }

  void Reset() {
    if (data_ == nullptr) return;
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    }
    AlignedFree(data_);
    data_ = nullptr;
    size_ = 0;
  }

  /// Zero-fill the underlying bytes (valid only for trivially copyable T).
  void ZeroFill() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_ != nullptr) std::memset(data_, 0, size_ * sizeof(T));
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    AMAC_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    AMAC_DCHECK(i < size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace amac
