// Software prefetch wrappers.
//
// The paper issues PREFETCHNTA on x86 (via gcc builtins) and "strong"
// prefetches on SPARC.  We expose the locality hint as a template parameter
// so benchmarks can ablate NTA vs. T0 behaviour.
#pragma once

#include "common/macros.h"

namespace amac {

/// Prefetch locality hints, mirroring __builtin_prefetch's third argument.
enum class PrefetchLocality : int {
  kNTA = 0,  ///< non-temporal (paper's choice: PREFETCHNTA)
  kT2 = 1,
  kT1 = 2,
  kT0 = 3,
};

/// Issue a read prefetch for the cache line containing `p`.
template <PrefetchLocality Locality = PrefetchLocality::kNTA>
inline void Prefetch(const void* p) {
  __builtin_prefetch(p, /*rw=*/0, static_cast<int>(Locality));
}

/// Issue a write-intent prefetch (used before latched updates).
template <PrefetchLocality Locality = PrefetchLocality::kNTA>
inline void PrefetchWrite(const void* p) {
  __builtin_prefetch(p, /*rw=*/1, static_cast<int>(Locality));
}

/// Prefetch `bytes` worth of lines starting at `p` (for nodes that span
/// multiple cache lines, e.g. skip-list towers).
inline void PrefetchRange(const void* p, std::size_t bytes) {
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < bytes; off += kCacheLineSize) {
    __builtin_prefetch(c + off, 0, 0);
  }
}

}  // namespace amac
