#include "common/cycle_timer.h"

#include <thread>

namespace amac {

double EstimateTscHz() {
  // Calibrate once; a 20 ms spin gives < 1% error which is plenty for
  // converting cycles to approximate wall time in reports.
  static const double hz = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = ReadTscSerialized();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const uint64_t c1 = ReadTscSerialized();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(c1 - c0) / secs;
  }();
  return hz;
}

}  // namespace amac
