// One-byte test-and-set latch, matching the paper's data-structure layout
// ("each hash table bucket contains a 1-byte latch").
//
// Two acquisition modes mirror §3.2:
//  * TryAcquire(): single atomic exchange, never spins.  AMAC uses this —
//    on failure the lookup is parked in its circular-buffer slot and the
//    engine moves on to the next in-flight lookup ("we still spin on the
//    latch but at a coarser granularity").
//  * Acquire(): spin until acquired. Baseline/GP/SPP use this.
//
// Single-threaded runs can use the *Unsync variants which elide atomics
// (paper: "for single-threaded runs ... no need for an atomic instruction").
#pragma once

#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace amac {

class Latch {
 public:
  Latch() = default;

  /// One atomic exchange; returns true iff the latch was free.
  bool TryAcquire() {
    return state_.exchange(1, std::memory_order_acquire) == 0;
  }

  /// Spin (with pause) until acquired.
  void Acquire() {
    while (!TryAcquire()) {
      while (state_.load(std::memory_order_relaxed) != 0) CpuRelax();
    }
  }

  void Release() { state_.store(0, std::memory_order_release); }

  bool IsHeld() const { return state_.load(std::memory_order_relaxed) != 0; }

  /// Non-atomic variants for single-threaded execution.
  bool TryAcquireUnsync() {
    auto* raw = reinterpret_cast<uint8_t*>(&state_);
    if (*raw != 0) return false;
    *raw = 1;
    return true;
  }
  void ReleaseUnsync() { *reinterpret_cast<uint8_t*>(&state_) = 0; }

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  std::atomic<uint8_t> state_{0};
};

static_assert(sizeof(Latch) == 1, "latch must stay a single byte");

/// RAII guard for the spinning Acquire() mode.
class LatchGuard {
 public:
  explicit LatchGuard(Latch& latch) : latch_(latch) { latch_.Acquire(); }
  ~LatchGuard() { latch_.Release(); }
  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

 private:
  Latch& latch_;
};

}  // namespace amac
