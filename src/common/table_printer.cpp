#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace amac {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  AMAC_CHECK_MSG(cells.size() == columns_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t v) {
  return std::to_string(v);
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] +
              std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = "\n== " + title_ + " ==\n";
  out += render_row(columns_);
  std::string sep = "|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace amac
