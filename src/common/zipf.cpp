#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace amac {

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  // Direct summation; generators are constructed once per workload so this
  // O(n) cost is off every measured path. For very large n the sum converges
  // slowly but remains exact.
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  AMAC_CHECK(n >= 1);
  AMAC_CHECK(theta >= 0);
  if (theta_ == 0) return;  // uniform fast path
  // Exact discrete quantities: zetan_ scales u onto the exact CDF for the
  // rank-1/rank-2 branches of Next(), so it must use the true theta.
  zetan_ = Zeta(n_, theta_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
  // Gray et al. (SIGMOD'94) constants for the continuous-inverse tail
  // branch.  theta == 1 makes alpha = 1/(1-theta) blow up, so the tail
  // constants are computed from a theta clamped just off 1 — ALL of them,
  // including the zeta values inside eta's denominator.  (An earlier
  // version divided by the unclamped (1 - theta) first — an inf that was
  // then overwritten — and mixed the clamped exponent with unclamped zeta
  // values; the ZipfTest.GrayMatchesExactSampler* chi-squared suite pins
  // theta in {0.99, 1.0, 1.01} against ExactZipfSampler.)
  const double t = theta_ == 1.0 ? 1.0 - 1e-9 : theta_;
  const double zetan_t = theta_ == 1.0 ? Zeta(n_, t) : zetan_;
  const double zeta2_t = Zeta(2, t);
  alpha_ = 1.0 / (1.0 - t);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - t)) /
         (1.0 - zeta2_t / zetan_t);
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0) return rng_.NextBounded(n_) + 1;
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < half_pow_theta_) return 2;
  const uint64_t v = 1 + static_cast<uint64_t>(
                             static_cast<double>(n_) *
                             std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min<uint64_t>(v, n_);
}

ExactZipfSampler::ExactZipfSampler(uint64_t n, double theta, uint64_t seed)
    : rng_(seed) {
  AMAC_CHECK(n >= 1);
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf_[i - 1] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

uint64_t ExactZipfSampler::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace amac
