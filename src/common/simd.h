// SIMD primitives backing the vectorized execution policies.
//
// Every primitive here has three implementations — scalar, AVX2, AVX-512 —
// selected at runtime via common/cpu_features.h, and all three are
// *bitwise-identical* on every input: the AVX2 64x64->low64 multiply is
// emulated from 32-bit vpmuludq products exactly so Mix64x8 matches the
// scalar Mix64 lane for lane.  Callers therefore never branch on ISA for
// correctness, only the kernels do for speed.
//
// Intrinsics are confined to non-template free functions carrying
// function-level target attributes, so the translation unit — and the whole
// build — needs no global -mavx2 and stays runnable on any x86-64 host
// (the attributed functions are only *called* after cpuid says they are
// safe).  With AMAC_DISABLE_SIMD (or off x86) only the scalar paths exist.
#pragma once

#include <cstdint>

#include "common/cpu_features.h"
#include "common/hash.h"
#include "common/macros.h"

#if AMAC_SIMD_X86
#include <immintrin.h>
#define AMAC_TARGET_AVX2 __attribute__((target("avx2")))
#define AMAC_TARGET_AVX512 __attribute__((target("avx512f,avx512dq")))
#endif

namespace amac {

/// Lane width of the vectorized kernels: 8 x 64-bit keys (one AVX-512
/// vector, two AVX2 vectors, or an unrolled scalar loop).
inline constexpr uint32_t kSimdLanes = 8;

#if AMAC_SIMD_X86
namespace simd_detail {

/// Lane mask for a 4-wide half from the low 4 bits of `nibble`: lane i is
/// all-ones iff bit i is set (the form AVX2 masked gathers consume).
AMAC_TARGET_AVX2 inline __m256i LaneMask4(uint32_t nibble) {
  const __m256i bits = _mm256_set_epi64x(8, 4, 2, 1);
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(nibble));
  return _mm256_cmpeq_epi64(_mm256_and_si256(v, bits), bits);
}

/// Masked 64-bit gather treating the index lanes as absolute addresses
/// (base nullptr, scale 1).  Masked-off lanes touch no memory, so inactive
/// lanes may hold stale/null addresses safely.
AMAC_TARGET_AVX2 inline __m256i MaskGather64(__m256i addrs, __m256i mask) {
  return _mm256_mask_i64gather_epi64(_mm256_setzero_si256(),
                                     reinterpret_cast<const long long*>(0),
                                     addrs, mask, 1);
}

/// Low 64 bits of a*b per lane, emulated from 32-bit products (AVX2 has no
/// 64-bit multiply): lo*lo + ((lo*hi + hi*lo) << 32), bitwise-exact.
AMAC_TARGET_AVX2 inline __m256i MulLo64(__m256i a, uint64_t b) {
  const __m256i vb = _mm256_set1_epi64x(static_cast<long long>(b));
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(vb, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, vb);
  const __m256i lo_hi = _mm256_mul_epu32(a, b_hi);
  const __m256i hi_lo = _mm256_mul_epu32(a_hi, vb);
  const __m256i cross = _mm256_add_epi64(lo_hi, hi_lo);
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

AMAC_TARGET_AVX2 inline __m256i Mix64x4(__m256i k) {
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64(k, 0xff51afd7ed558ccdull);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64(k, 0xc4ceb9fe1a85ec53ull);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  return k;
}

AMAC_TARGET_AVX2 inline void Mix64x8Avx2(const uint64_t* in, uint64_t* out) {
  const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 4));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), Mix64x4(lo));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), Mix64x4(hi));
}

AMAC_TARGET_AVX512 inline void Mix64x8Avx512(const uint64_t* in,
                                             uint64_t* out) {
  __m512i k = _mm512_loadu_si512(in);
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(
      k, _mm512_set1_epi64(static_cast<long long>(0xff51afd7ed558ccdull)));
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(
      k, _mm512_set1_epi64(static_cast<long long>(0xc4ceb9fe1a85ec53ull)));
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  _mm512_storeu_si512(out, k);
}

AMAC_TARGET_AVX2 inline void Gather64x8Avx2(const uint64_t* const* addrs,
                                            uint64_t* out) {
  const __m256i a0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(addrs));
  const __m256i a1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(addrs + 4));
  const __m256i v0 = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(0), a0, 1);
  const __m256i v1 = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(0), a1, 1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), v0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), v1);
}

/// Count of sorted keys[i] (i < count) satisfying keys[i] <= key (le) or
/// keys[i] < key (lt), via 4-wide masked compares.  Reads ceil(count/4)*4
/// slots — see the contract on the public wrapper.
AMAC_TARGET_AVX2 inline uint32_t CountSortedAvx2(const int64_t* keys,
                                                 uint32_t count, int64_t key,
                                                 bool less_eq) {
  const __m256i vkey = _mm256_set1_epi64x(key);
  uint32_t matched = 0;
  for (uint32_t base = 0; base < count; base += 4) {
    const __m256i vk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + base));
    // less_eq: keys[i] <= key  ==  !(keys[i] > key); lt: key > keys[i].
    const __m256i pred = less_eq ? _mm256_cmpgt_epi64(vk, vkey)
                                 : _mm256_cmpgt_epi64(vkey, vk);
    uint32_t bits =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(pred)));
    if (less_eq) bits = (~bits) & 0xf;
    const uint32_t in_range =
        count - base >= 4 ? 0xf : ((1u << (count - base)) - 1);
    matched += static_cast<uint32_t>(__builtin_popcount(bits & in_range));
  }
  return matched;
}

}  // namespace simd_detail
#endif  // AMAC_SIMD_X86

/// MurmurHash3 finalizer over 8 lanes, bitwise-equal to Mix64 per lane.
inline void Mix64x8(const uint64_t in[kSimdLanes], uint64_t out[kSimdLanes]) {
#if AMAC_SIMD_X86
  const SimdLevel level = CurrentSimdLevel();
  if (level == SimdLevel::kAvx512) {
    simd_detail::Mix64x8Avx512(in, out);
    return;
  }
  if (level == SimdLevel::kAvx2) {
    simd_detail::Mix64x8Avx2(in, out);
    return;
  }
#endif
  for (uint32_t i = 0; i < kSimdLanes; ++i) out[i] = Mix64(in[i]);
}

/// 8-lane HashToBucket (common/hash.h) with the HashKind resolved at
/// runtime, as the table stores it.
///
/// Deliberately scalar inside: the Murmur finalizer is three 64-bit
/// multiplies, and eight *independent* scalar imuls pipeline at ~3
/// cycles/key, while the SIMD finalizer pays the AVX2 emulated 64x64
/// multiply (six vpmuludq + shifts per step) or AVX-512's multi-uop
/// vpmullq — measured 2-4x slower per key than the scalar loop on the
/// machines this targets (see micro_primitives BM_ScalarHash8 /
/// BM_VectorHash8).  The vector policies' win lives in the gather/compare
/// kernels, not the hash; Mix64x8 above remains for tests and benches.
inline void HashToBucket8(HashKind kind, const int64_t keys[kSimdLanes],
                          uint64_t bucket_mask, uint64_t out[kSimdLanes]) {
  if (kind == HashKind::kRadix) {
    for (uint32_t i = 0; i < kSimdLanes; ++i) {
      out[i] = static_cast<uint64_t>(keys[i]) & bucket_mask;
    }
    return;
  }
  for (uint32_t i = 0; i < kSimdLanes; ++i) {
    out[i] = Mix64(static_cast<uint64_t>(keys[i])) & bucket_mask;
  }
}

/// Gather one 64-bit word from each of 8 addresses (all must be valid).
/// Exists for the gather-vs-scalar-load microbench and kernel tests; the
/// probe/BST kernels use masked in-register gathers directly.
inline void Gather64x8(const uint64_t* const addrs[kSimdLanes],
                       uint64_t out[kSimdLanes]) {
#if AMAC_SIMD_X86
  if (CurrentSimdLevel() >= SimdLevel::kAvx2) {
    simd_detail::Gather64x8Avx2(addrs, out);
    return;
  }
#endif
  for (uint32_t i = 0; i < kSimdLanes; ++i) out[i] = *addrs[i];
}

/// Number of entries in the sorted array `keys[0..count)` that are <= key.
/// Equivalent to the B+-tree inner-node routing scan
/// (`while (i < count && key >= keys[i]) ++i`).  SIMD contract: the array
/// must be readable through index RoundUp(count, 4) - 1 (BTreeNode
/// satisfies this — keys[15] is followed in-struct by the child/payload
/// union).  count must be <= 16.
inline uint32_t CountSortedLessEq(const int64_t* keys, uint32_t count,
                                  int64_t key) {
  AMAC_DCHECK(count <= 16);
#if AMAC_SIMD_X86
  if (CurrentSimdLevel() >= SimdLevel::kAvx2) {
    return simd_detail::CountSortedAvx2(keys, count, key, /*less_eq=*/true);
  }
#endif
  uint32_t i = 0;
  while (i < count && key >= keys[i]) ++i;
  return i;
}

/// Number of entries in the sorted array `keys[0..count)` that are < key —
/// BTreeNode::LowerBound.  Same readability contract as CountSortedLessEq.
inline uint32_t CountSortedLess(const int64_t* keys, uint32_t count,
                                int64_t key) {
  AMAC_DCHECK(count <= 16);
#if AMAC_SIMD_X86
  if (CurrentSimdLevel() >= SimdLevel::kAvx2) {
    return simd_detail::CountSortedAvx2(keys, count, key, /*less_eq=*/false);
  }
#endif
  uint32_t i = 0;
  while (i < count && keys[i] < key) ++i;
  return i;
}

}  // namespace amac
