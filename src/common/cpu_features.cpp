#include "common/cpu_features.h"

#include <cstdlib>

namespace amac {
namespace cpu_detail {

std::atomic<int8_t> g_detected{-1};
std::atomic<int8_t> g_override{-1};

SimdLevel DetectSlow() {
  SimdLevel level = SimdLevel::kScalar;
#if AMAC_SIMD_X86
  const char* env = std::getenv("AMAC_FORCE_SCALAR");
  const bool forced = env != nullptr && env[0] != '\0' && env[0] != '0';
  if (!forced) {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq")) {
      level = SimdLevel::kAvx512;
    } else if (__builtin_cpu_supports("avx2")) {
      level = SimdLevel::kAvx2;
    }
  }
#endif
  // Benign race: every thread computes the same value.
  g_detected.store(static_cast<int8_t>(level), std::memory_order_relaxed);
  return level;
}

}  // namespace cpu_detail

void SetSimdLevelOverride(SimdLevel level) {
  cpu_detail::g_override.store(static_cast<int8_t>(level),
                               std::memory_order_relaxed);
}

void ClearSimdLevelOverride() {
  cpu_detail::g_override.store(-1, std::memory_order_relaxed);
}

}  // namespace amac
