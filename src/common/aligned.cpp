#include "common/aligned.h"

#include <mutex>
#include <unordered_map>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace amac {

namespace {

#if defined(__linux__)
constexpr std::size_t kHugePageBytes = 2ull << 20;
// Below this size page-table pressure is negligible; use the heap.
constexpr std::size_t kMmapThreshold = 4ull << 20;

// Large blocks come from mmap (hugetlb when the pool allows); their sizes
// must be remembered for munmap.  Allocations are rare and off the hot
// path, so a mutex-guarded map is fine.
std::mutex g_mmap_mutex;
std::unordered_map<void*, std::size_t>& MmapSizes() {
  static auto* sizes = new std::unordered_map<void*, std::size_t>();
  return *sizes;
}

void* TryMmapLarge(std::size_t bytes) {
  const std::size_t rounded =
      (bytes + kHugePageBytes - 1) / kHugePageBytes * kHugePageBytes;
  // Preferred: explicit 2 MB pages (the paper's methodology: "In all
  // measurements, we use large VM pages, 2 MB on x86").  Prefetches are
  // dropped on TLB misses, so large pages materially affect the results.
  void* p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
  if (p == MAP_FAILED) {
    // Fallback: normal pages with a THP hint.
    p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
             MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return nullptr;
#if defined(MADV_HUGEPAGE)
    (void)madvise(p, rounded, MADV_HUGEPAGE);
#endif
  }
  std::lock_guard<std::mutex> lock(g_mmap_mutex);
  MmapSizes().emplace(p, rounded);
  return p;
}
#endif  // __linux__

}  // namespace

void* AlignedAlloc(std::size_t bytes, std::size_t alignment) {
  AMAC_CHECK(alignment >= sizeof(void*) &&
             (alignment & (alignment - 1)) == 0);
#if defined(__linux__)
  if (bytes >= kMmapThreshold && alignment <= kHugePageBytes) {
    if (void* p = TryMmapLarge(bytes)) return p;
  }
#endif
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (bytes + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, padded == 0 ? alignment : padded);
  AMAC_CHECK_MSG(p != nullptr, "out of memory");
  return p;
}

void AlignedFree(void* p) {
  if (p == nullptr) return;
#if defined(__linux__)
  {
    std::lock_guard<std::mutex> lock(g_mmap_mutex);
    auto& sizes = MmapSizes();
    const auto it = sizes.find(p);
    if (it != sizes.end()) {
      munmap(p, it->second);
      sizes.erase(it);
      return;
    }
  }
#endif
  std::free(p);
}

void AdviseHugePages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  // Best effort: madvise needs page-aligned addresses; round inward.
  constexpr std::size_t kPage = 4096;
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t aligned = (addr + kPage - 1) & ~(kPage - 1);
  if (aligned - addr >= bytes) return;
  const std::size_t len = (bytes - (aligned - addr)) & ~(kPage - 1);
  if (len > 0) (void)madvise(reinterpret_cast<void*>(aligned), len, MADV_HUGEPAGE);
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace amac
