// Runtime ISA dispatch for the vectorized kernels (common/simd.h).
//
// The vector execution policies (core/scheduler.h kVectorized /
// kVectorizedAmac) are *schedules*, not ISA commitments: every kernel has a
// scalar implementation that is bitwise-identical to the SIMD one, and the
// level actually executed is chosen once per process from cpuid.  That
// keeps results, engine counters, and the scheduling trace independent of
// the host — only speed varies — so differential tests and the calibrator
// treat the vector policies exactly like the scalar ones on any machine.
//
// Build-time kill switch: configure with -DAMAC_DISABLE_SIMD=ON (CMake
// option) and every dispatch collapses to kScalar with no <immintrin.h>
// dependency — the CI leg proving the fallback path.  Runtime kill
// switches: the AMAC_FORCE_SCALAR=1 environment variable, or
// SetSimdLevelOverride() (used by the forced-fallback differential tests).
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) && !defined(AMAC_DISABLE_SIMD)
#define AMAC_SIMD_X86 1
#else
#define AMAC_SIMD_X86 0
#endif

namespace amac {

/// ISA tiers the kernels dispatch over.  kAvx512 implies AVX-512 F+DQ (the
/// subsets the hash kernel uses); kAvx2 implies AVX2 gathers.  Values are
/// ordered so `level >= kAvx2` reads naturally.
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

inline const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "?";
}

namespace cpu_detail {
// Dispatch state, exposed so the accessors below inline into the kernels:
// CurrentSimdLevel() sits on every vector-kernel invocation, and an
// out-of-line call (plus magic-static guard) is measurable against a
// ~100-cycle chain step.  g_detected is -1 until the first DetectSlow().
extern std::atomic<int8_t> g_detected;
extern std::atomic<int8_t> g_override;  // -1 = no override
SimdLevel DetectSlow();
}  // namespace cpu_detail

/// The host's detected level (cpuid, cached after the first call), after
/// applying the build-time gate and the AMAC_FORCE_SCALAR environment
/// variable.  Never changes within a process.
inline SimdLevel DetectedSimdLevel() {
  const int8_t v = cpu_detail::g_detected.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<SimdLevel>(v);
  return cpu_detail::DetectSlow();
}

/// The level kernels actually dispatch on: the override when one is set
/// (clamped to the detected level — requesting AVX2 on a non-AVX2 host
/// yields scalar, never an illegal instruction), otherwise the detected
/// level.
inline SimdLevel CurrentSimdLevel() {
  const int8_t over = cpu_detail::g_override.load(std::memory_order_relaxed);
  const SimdLevel detected = DetectedSimdLevel();
  if (over < 0) return detected;
  const SimdLevel requested = static_cast<SimdLevel>(over);
  return requested < detected ? requested : detected;
}

/// Test hook: force dispatch at `level` (clamped to detected) until
/// ClearSimdLevelOverride().  Not for production paths.
void SetSimdLevelOverride(SimdLevel level);
void ClearSimdLevelOverride();

}  // namespace amac
