// Cycle-accurate timing.
//
// The paper reports "cycles per tuple" measured with hardware timestamp
// counters.  On x86-64 we read TSC directly; elsewhere we fall back to
// steady_clock nanoseconds scaled by a calibrated frequency so that the unit
// stays "reference cycles".
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace amac {

/// Read the timestamp counter (reference cycles on x86; calibrated
/// nanosecond-derived ticks elsewhere).
inline uint64_t ReadTsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Serializing TSC read: prevents the measured region from leaking across
/// the timer boundary on out-of-order cores.
inline uint64_t ReadTscSerialized() {
#if defined(__x86_64__)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return ReadTsc();
#endif
}

/// Scoped stopwatch accumulating elapsed TSC ticks into a counter.
class CycleTimer {
 public:
  CycleTimer() : start_(ReadTscSerialized()) {}

  /// Ticks elapsed since construction or the last Restart().
  uint64_t Elapsed() const { return ReadTscSerialized() - start_; }

  void Restart() { start_ = ReadTscSerialized(); }

 private:
  uint64_t start_;
};

/// Wall-clock stopwatch (seconds) for throughput numbers
/// (paper Fig. 7/8 report tuples/second).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Estimate the TSC frequency in Hz by spinning for a short interval.
/// Used only for converting cycle counts to human-readable time in reports.
double EstimateTscHz();

}  // namespace amac
