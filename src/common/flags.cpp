#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/macros.h"

namespace amac {

namespace {

std::string TypeName(int t) {
  switch (t) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "bool";
    default: return "string";
  }
}

}  // namespace

void Flags::DefineInt(const std::string& name, int64_t default_value,
                      const std::string& help) {
  flags_[name] = Flag{Type::kInt, help, std::to_string(default_value)};
}

void Flags::DefineDouble(const std::string& name, double default_value,
                         const std::string& help) {
  flags_[name] = Flag{Type::kDouble, help, std::to_string(default_value)};
}

void Flags::DefineBool(const std::string& name, bool default_value,
                       const std::string& help) {
  flags_[name] = Flag{Type::kBool, help, default_value ? "true" : "false"};
}

void Flags::DefineString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  flags_[name] = Flag{Type::kString, help, default_value};
}

void Flags::Set(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                 Usage().c_str());
    std::exit(2);
  }
  // Validate numeric forms eagerly so typos fail at startup.
  try {
    switch (it->second.type) {
      case Type::kInt:
        (void)std::stoll(value);
        break;
      case Type::kDouble:
        (void)std::stod(value);
        break;
      case Type::kBool:
        if (value != "true" && value != "false" && value != "1" &&
            value != "0") {
          throw std::invalid_argument(value);
        }
        break;
      case Type::kString:
        break;
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "bad value for --%s (%s): '%s'\n", name.c_str(),
                 TypeName(static_cast<int>(it->second.type)).c_str(),
                 value.c_str());
    std::exit(2);
  }
  it->second.value = value;
}

void Flags::Parse(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", Usage().c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n%s", arg.c_str(),
                   Usage().c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      Set(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = flags_.find(arg);
    if (it != flags_.end() && it->second.type == Type::kBool) {
      it->second.value = "true";  // bare boolean flag
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag --%s expects a value\n%s", arg.c_str(),
                   Usage().c_str());
      std::exit(2);
    }
    Set(arg, argv[++i]);
  }
}

const Flags::Flag& Flags::Find(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  AMAC_CHECK_MSG(it != flags_.end(), name.c_str());
  AMAC_CHECK_MSG(it->second.type == type, "flag type mismatch");
  return it->second;
}

int64_t Flags::GetInt(const std::string& name) const {
  return std::stoll(Find(name, Type::kInt).value);
}

double Flags::GetDouble(const std::string& name) const {
  return std::stod(Find(name, Type::kDouble).value);
}

bool Flags::GetBool(const std::string& name) const {
  const std::string& v = Find(name, Type::kBool).value;
  return v == "true" || v == "1";
}

const std::string& Flags::GetString(const std::string& name) const {
  return Find(name, Type::kString).value;
}

std::string Flags::Usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (" + TypeName(static_cast<int>(flag.type)) +
           ", default " + flag.value + "): " + flag.help + "\n";
  }
  return out;
}

}  // namespace amac
