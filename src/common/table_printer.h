// Column-aligned table output for benchmark binaries.
//
// Every bench prints the same rows/series the paper's tables and figures
// report; this helper keeps that output consistent and machine-grepable
// (a leading marker column makes rows easy to extract with standard tools).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace amac {

class TablePrinter {
 public:
  /// `title` is printed as a banner; `columns` become the header row.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Append one row; cell count must match the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for numeric-heavy rows.
  static std::string Fmt(double v, int precision = 1);
  static std::string Fmt(uint64_t v);

  /// Render to stdout.
  void Print() const;

  std::string ToString() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amac
