// Zipfian key generation.
//
// The paper populates build/probe relations with Zipf-skewed keys
// (theta = 0.5, 0.75, 1.0 across experiments).  We implement the classic
// Gray et al. (SIGMOD'94) power-method generator with precomputed zeta
// constants, which draws from the same distribution family used by the hash
// join studies the paper builds on [3, 17].
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace amac {

/// Generates values in [1, n] with Zipf exponent `theta`.
/// theta == 0 degenerates to uniform.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Next sample in [1, n]; rank 1 is the most frequent value.
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_ = 0;
  double zetan_ = 0;
  double eta_ = 0;
  double half_pow_theta_ = 0;
  Rng rng_;
};

/// Precomputed-CDF Zipf sampler: O(log n) per draw via binary search but
/// exact; used by tests to cross-check ZipfGenerator and by small-n
/// workloads. Memory is O(n) so keep n modest.
class ExactZipfSampler {
 public:
  ExactZipfSampler(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

 private:
  std::vector<double> cdf_;
  Rng rng_;
};

}  // namespace amac
