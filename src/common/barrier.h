// Sense-reversing spin barrier for multi-threaded benchmark phases.
//
// The scalability experiments (Fig. 7/8) time the probe phase only; threads
// rendezvous on this barrier so the timed region starts and stops together.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/latch.h"
#include "common/macros.h"

namespace amac {

class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t parties) : parties_(parties) {
    AMAC_CHECK(parties > 0);
  }

  /// Block (spinning) until all parties arrive. Reusable across phases.
  void Wait() {
    const uint32_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      while (generation_.load(std::memory_order_acquire) == gen) {
        Latch::CpuRelax();
      }
    }
  }

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> arrived_{0};
  std::atomic<uint32_t> generation_{0};
};

}  // namespace amac
