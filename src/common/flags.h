// Tiny command-line flag parser for benchmark/example binaries.
//
// Supports --name=value and --name value forms plus bare --flag booleans.
// Unknown flags abort with a usage listing so benchmark sweeps fail loudly
// rather than silently measuring the wrong configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace amac {

class Flags {
 public:
  /// Register flags before Parse(). `help` is printed by Usage().
  void DefineInt(const std::string& name, int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);

  /// Parse argv; aborts (with usage) on unknown or malformed flags.
  /// Recognizes --help.
  void Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  std::string Usage() const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    std::string value;  // canonical textual value
  };

  const Flag& Find(const std::string& name, Type type) const;
  void Set(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::string program_;
};

}  // namespace amac
