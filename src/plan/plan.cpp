// Plan compilation, cost-driven shape selection, and execution.
//
// Layering: this file compiles logical plans down onto the EXISTING
// physical layer — Pipeline/FusedOp for fused chains, BuildPhase /
// ProbePhase (join/hash_join.h) for plan-built tables and the legacy
// match accounting, RunGroupBy (groupby/groupby.h) for aggregation phases
// (which keeps the fig09 sequential baseline anchor and the vectorized
// GroupByOp path engaged underneath plans).  hash_join.cpp's RunHashJoin
// conversely adapts onto RunPlan, so the dependency points one way:
// plan.cpp -> drivers -> ops.
//
// Type-erasure keeps the template surface bounded: all filters/maps of a
// plan collapse into ONE DynScanSource (folded into the scan, zero extra
// stages) or ONE DynRowStage (post-join), whatever their count, so the
// enumerable pipeline shapes stay a fixed, small set of FusedOp
// instantiations.
#include "plan/plan.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adaptive/calibrator.h"
#include "adaptive/signature.h"
#include "btree/btree_ops.h"
#include "common/cycle_timer.h"
#include "common/macros.h"
#include "common/prefetch.h"
#include "core/ops.h"
#include "graph/graph_ops.h"
#include "groupby/groupby.h"
#include "groupby/groupby_ops.h"
#include "join/join_ops.h"
#include "join/sink.h"
#include "skiplist/skiplist_ops.h"

namespace amac {

const char* PlanNodeKindName(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kScan: return "scan";
    case PlanNodeKind::kWalks: return "walks";
    case PlanNodeKind::kCustom: return "custom";
    case PlanNodeKind::kFilter: return "filter";
    case PlanNodeKind::kMap: return "map";
    case PlanNodeKind::kHashJoin: return "hash-join";
    case PlanNodeKind::kLookup: return "lookup";
    case PlanNodeKind::kLookupBTree: return "btree";
    case PlanNodeKind::kLookupBst: return "bst";
    case PlanNodeKind::kLookupSkip: return "skiplist";
    case PlanNodeKind::kGroupBy: return "group-by";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Plan builders
// ---------------------------------------------------------------------------

Plan Plan::Scan(const Relation& rel) {
  Plan plan;
  PlanNode node;
  node.kind = PlanNodeKind::kScan;
  node.rel = &rel;
  plan.nodes_.push_back(std::move(node));
  return plan;
}

Plan Plan::Walks(const CsrGraph& graph, uint64_t num_walkers, uint32_t hops,
                 uint64_t seed) {
  Plan plan;
  PlanNode node;
  node.kind = PlanNodeKind::kWalks;
  node.graph = &graph;
  node.walkers = num_walkers;
  node.hops = hops;
  node.seed = seed;
  plan.nodes_.push_back(std::move(node));
  return plan;
}

Plan Plan::Append(PlanNode node) const {
  AMAC_CHECK_MSG(!nodes_.empty(), "plan: add a source first");
  AMAC_CHECK_MSG(!is_custom(), "plan: custom-op plans take no stages");
  AMAC_CHECK_MSG(nodes_.back().kind != PlanNodeKind::kGroupBy,
                 "plan: GroupBy is terminal");
  Plan out = *this;
  out.nodes_.push_back(std::move(node));
  return out;
}

Plan Plan::Filter(std::function<bool(const Tuple&)> pred) const {
  PlanNode node;
  node.kind = PlanNodeKind::kFilter;
  node.pred = std::move(pred);
  return Append(std::move(node));
}

Plan Plan::Map(std::function<Tuple(const Tuple&)> fn) const {
  PlanNode node;
  node.kind = PlanNodeKind::kMap;
  node.map = std::move(fn);
  return Append(std::move(node));
}

Plan Plan::HashJoin(const Relation& rel, const JoinOptions& options) const {
  PlanNode node;
  node.kind = PlanNodeKind::kHashJoin;
  node.rel = &rel;
  node.join = options;
  return Append(std::move(node));
}

Plan Plan::Lookup(const ChainedHashTable& table, bool early_exit) const {
  PlanNode node;
  node.kind = PlanNodeKind::kLookup;
  node.table = &table;
  node.early_exit = early_exit;
  return Append(std::move(node));
}

Plan Plan::LookupBTree(const BTree& tree) const {
  PlanNode node;
  node.kind = PlanNodeKind::kLookupBTree;
  node.btree = &tree;
  return Append(std::move(node));
}

Plan Plan::LookupBst(const BinarySearchTree& tree) const {
  PlanNode node;
  node.kind = PlanNodeKind::kLookupBst;
  node.bst = &tree;
  return Append(std::move(node));
}

Plan Plan::LookupSkipList(const SkipList& list) const {
  PlanNode node;
  node.kind = PlanNodeKind::kLookupSkip;
  node.skiplist = &list;
  return Append(std::move(node));
}

Plan Plan::GroupBy(uint64_t expected_groups,
                   AggregateTable::Options options) const {
  PlanNode node;
  node.kind = PlanNodeKind::kGroupBy;
  node.expected_groups = expected_groups;
  node.group_options = options;
  return Append(std::move(node));
}

Plan Plan::GroupByInto(AggregateTable* table) const {
  AMAC_CHECK(table != nullptr);
  PlanNode node;
  node.kind = PlanNodeKind::kGroupBy;
  node.group_into = table;
  return Append(std::move(node));
}

std::string PhysicalShape::Name() const {
  std::string name = PlanShapeName(pipeline);
  name += '/';
  name += PlanBuildSideName(build_side);
  name += '/';
  name += PlanBuildModeName(build_mode);
  return name;
}

// ---------------------------------------------------------------------------
// Plan analysis
// ---------------------------------------------------------------------------

namespace {

/// The supported grammar, extracted and validated:
///   (scan | walks) [filter|map]* [hash-join | lookup | index]?
///                  [filter|map]* [group-by]?
/// Joins and index lookups require a scan source; walks chains carry
/// filters/maps and an optional terminal group-by.
struct Profile {
  const PlanNode* source = nullptr;
  std::vector<const PlanNode*> pre;   ///< fns before the join/index
  const PlanNode* join = nullptr;     ///< kHashJoin or kLookup
  const PlanNode* index = nullptr;    ///< kLookupBTree/Bst/Skip
  std::vector<const PlanNode*> post;  ///< fns after the join/index
  const PlanNode* groupby = nullptr;

  bool lean() const { return pre.empty() && post.empty(); }
  /// The join declared unique build keys (early-exit) — the precondition
  /// for result-identical structural alternatives.
  bool unique_build() const {
    if (join == nullptr) return false;
    return join->kind == PlanNodeKind::kHashJoin ? join->join.early_exit
                                                 : join->early_exit;
  }
};

Profile Analyze(const Plan& plan) {
  AMAC_CHECK_MSG(!plan.nodes().empty(), "plan: empty");
  AMAC_CHECK(!plan.is_custom());
  Profile p;
  for (const PlanNode& node : plan.nodes()) {
    AMAC_CHECK_MSG(p.groupby == nullptr, "plan: GroupBy is terminal");
    switch (node.kind) {
      case PlanNodeKind::kScan:
      case PlanNodeKind::kWalks:
        AMAC_CHECK_MSG(p.source == nullptr, "plan: one source only");
        p.source = &node;
        break;
      case PlanNodeKind::kFilter:
      case PlanNodeKind::kMap:
        AMAC_CHECK_MSG(p.source != nullptr, "plan: add a source first");
        (p.join != nullptr || p.index != nullptr ? p.post : p.pre)
            .push_back(&node);
        break;
      case PlanNodeKind::kHashJoin:
      case PlanNodeKind::kLookup:
        AMAC_CHECK_MSG(
            p.source != nullptr && p.source->kind == PlanNodeKind::kScan,
            "plan: joins need a Scan source");
        AMAC_CHECK_MSG(p.join == nullptr && p.index == nullptr,
                       "plan: one join/lookup per plan");
        p.join = &node;
        break;
      case PlanNodeKind::kLookupBTree:
      case PlanNodeKind::kLookupBst:
      case PlanNodeKind::kLookupSkip:
        AMAC_CHECK_MSG(
            p.source != nullptr && p.source->kind == PlanNodeKind::kScan,
            "plan: index lookups need a Scan source");
        AMAC_CHECK_MSG(p.join == nullptr && p.index == nullptr,
                       "plan: one join/lookup per plan");
        p.index = &node;
        break;
      case PlanNodeKind::kGroupBy:
        AMAC_CHECK_MSG(p.source != nullptr, "plan: add a source first");
        p.groupby = &node;
        break;
      case PlanNodeKind::kCustom:
        AMAC_CHECK_MSG(false, "plan: custom nodes cannot chain");
    }
  }
  return p;
}

// ---------------------------------------------------------------------------
// Type-erased row functions: the instantiation bound
// ---------------------------------------------------------------------------

/// In-place row transform: mutate `row`, return false to drop it.  One
/// vector of these represents ANY number of logical Filter/Map nodes.
using RowFn = std::function<bool(Tuple&)>;

std::vector<RowFn> CollectFns(const std::vector<const PlanNode*>& nodes) {
  std::vector<RowFn> fns;
  fns.reserve(nodes.size());
  for (const PlanNode* node : nodes) {
    if (node->kind == PlanNodeKind::kFilter) {
      auto pred = node->pred;
      fns.push_back([pred](Tuple& row) { return pred(row); });
    } else {
      auto map = node->map;
      fns.push_back([map](Tuple& row) {
        row = map(row);
        return true;
      });
    }
  }
  return fns;
}

/// Re-canonicalizes a flipped-build-side probe emission: the probe carries
/// (input payload, join-rel payload) when the table is built on the input,
/// so swapping restores the canonical (join-rel payload, input payload)
/// row every other shape emits.
RowFn SwapFn() {
  return [](Tuple& row) {
    row = Tuple{row.payload, row.key};
    return true;
  };
}

/// ScanSource with the plan's pre-join filters/maps folded into the scan
/// step itself — surviving rows cost no extra pipeline stage, and one
/// source type covers any fn count (see the header comment on bounding
/// instantiations).  With no fns this is ScanSource exactly (same
/// prefetch, same one-step emission).
class DynScanSource {
 public:
  struct State {
    uint64_t idx;
  };

  DynScanSource(const Relation& rel, std::vector<RowFn> fns)
      : rel_(&rel), fns_(std::move(fns)) {}

  uint64_t size() const { return rel_->size(); }

  void Start(State& st, uint64_t idx) {
    st.idx = idx;
    Prefetch(rel_->data() + idx);
  }

  template <typename Emit>
  StepStatus Step(State& st, Emit&& emit) {
    Tuple row = (*rel_)[st.idx];
    for (const RowFn& fn : fns_) {
      if (!fn(row)) return StepStatus::kDone;
    }
    emit(row);
    return StepStatus::kDone;
  }

 private:
  const Relation* rel_;
  std::vector<RowFn> fns_;
};

/// One pipeline stage applying a chain of RowFns to each row (post-join
/// filters/maps, and the flipped-build-side swap).
class DynRowStage {
 public:
  struct State {
    Tuple row;
  };

  explicit DynRowStage(std::vector<RowFn> fns) : fns_(std::move(fns)) {}

  void Start(State& st, const Tuple& in) { st.row = in; }

  template <typename Emit>
  StepStatus Step(State& st, Emit&& emit) {
    Tuple row = st.row;
    for (const RowFn& fn : fns_) {
      if (!fn(row)) return StepStatus::kDone;
    }
    emit(row);
    return StepStatus::kDone;
  }

 private:
  std::vector<RowFn> fns_;
};

// ---------------------------------------------------------------------------
// Shape execution
// ---------------------------------------------------------------------------

RunStats FillGroupStats(RunStats run, const AggregateTable& table) {
  run.outputs = table.CountGroups();
  run.checksum = table.Checksum();
  return run;
}

template <typename PipelineT>
RunStats RunMaybeAgg(Executor& exec, const PipelineT& pipeline,
                     AggregateTable* groups) {
  if (groups != nullptr) {
    return FillGroupStats(exec.Run(pipeline.Then(Aggregate<true>(*groups))),
                          *groups);
  }
  return exec.Run(pipeline);
}

template <typename PipelineT>
RunStats RunTail(Executor& exec, const PipelineT& pipeline,
                 const std::vector<RowFn>& fns, AggregateTable* groups) {
  if (!fns.empty()) {
    return RunMaybeAgg(exec, pipeline.Then(DynRowStage(fns)), groups);
  }
  return RunMaybeAgg(exec, pipeline, groups);
}

/// Execute the fused form of a shape.  `probe` is the scanned relation for
/// join-rel shapes (or a measurement prefix of it), the JOIN relation for
/// flipped build sides, and unused for walks plans.
RunStats RunFused(Executor& exec, const Profile& p,
                  const PhysicalShape& shape, const Relation* probe,
                  const ChainedHashTable* table, AggregateTable* groups) {
  std::vector<RowFn> pre = CollectFns(p.pre);
  std::vector<RowFn> post = CollectFns(p.post);
  if (p.source->kind == PlanNodeKind::kWalks) {
    const PlanNode& w = *p.source;
    return RunTail(exec, Walks(*w.graph, w.walkers, w.hops, w.seed), pre,
                   groups);
  }
  AMAC_DCHECK(probe != nullptr);
  if (p.join != nullptr) {
    bool early = p.unique_build();
    if (shape.build_side == PlanBuildSide::kInput) {
      // Probing the non-unique scanned side: every match must be
      // enumerated to reproduce the join-rel side's pair set, and the
      // emission order of (payloads) is swapped back to canonical.
      AMAC_DCHECK(pre.empty());
      post.insert(post.begin(), SwapFn());
      early = false;
    } else if (p.join->kind == PlanNodeKind::kHashJoin) {
      early = p.join->join.early_exit;
    } else {
      early = p.join->early_exit;
    }
    auto base = From(DynScanSource(*probe, std::move(pre)));
    if (early) {
      return RunTail(exec, base.Then(Probe<true>(*table)), post, groups);
    }
    return RunTail(exec, base.Then(Probe<false>(*table)), post, groups);
  }
  if (p.index != nullptr) {
    auto base = From(DynScanSource(*probe, std::move(pre)));
    switch (p.index->kind) {
      case PlanNodeKind::kLookupBTree:
        return RunTail(exec, base.Then(LookupBTree(*p.index->btree)), post,
                       groups);
      case PlanNodeKind::kLookupBst:
        return RunTail(exec, base.Then(LookupBst(*p.index->bst)), post,
                       groups);
      default:
        return RunTail(exec, base.Then(LookupSkipList(*p.index->skiplist)),
                       post, groups);
    }
  }
  if (groups != nullptr && pre.empty()) {
    // Pure scan -> group-by: drive the group-by driver directly, keeping
    // the fig09 sequential baseline anchor and the vectorized GroupByOp
    // path underneath plans.
    return RunGroupBy(exec, *probe, groups);
  }
  return RunTail(exec, From(DynScanSource(*probe, std::move(pre))), {},
                 groups);
}

/// Execute the two-phase form: probe-materialize (MaterializeSink per
/// slot), rebuild the canonical intermediate relation, then a separate
/// group-by phase — fig12's materialized plan, per shape.  Returns the
/// phases merged into one RunStats (inputs = probe rows, outputs/checksum
/// = the aggregation's).
RunStats RunTwoPhase(Executor& exec, const Profile& /*p*/,
                     const Relation& probe, const ChainedHashTable& table,
                     AggregateTable* groups, uint64_t* survivors = nullptr) {
  const uint32_t slots = exec.num_threads();
  // Early-exit probe (two-phase is only enumerated for unique build keys):
  // at most one emission per probe tuple bounds each slot's sink.
  std::vector<MaterializeSink> sinks;
  sinks.reserve(slots);
  for (uint32_t t = 0; t < slots; ++t) sinks.emplace_back(probe.size());
  RunStats phase1 = exec.Run(FromOp(probe.size(), [&](uint32_t tid) {
    return ProbeOp<true, MaterializeSink>(table, probe, sinks[tid]);
  }));
  CycleTimer mid_cycles;
  WallTimer mid_wall;
  uint64_t total = 0;
  for (const MaterializeSink& sink : sinks) total += sink.size();
  if (survivors != nullptr) *survivors = total;
  Relation mid(total);
  uint64_t at = 0;
  for (const MaterializeSink& sink : sinks) {
    for (uint64_t i = 0; i < sink.size(); ++i) {
      const Tuple& row = sink.data()[i];
      mid[at++] = Tuple{row.payload,
                        probe[static_cast<uint64_t>(row.key)].payload};
    }
  }
  const uint64_t mid_elapsed = mid_cycles.Elapsed();
  const double mid_seconds = mid_wall.ElapsedSeconds();
  RunStats phase2 = RunGroupBy(exec, mid, groups);
  RunStats run = phase1;
  run.engine.Merge(phase2.engine);
  run.morsels += phase2.morsels;
  run.cycles += mid_elapsed + phase2.cycles;
  run.seconds += mid_seconds + phase2.seconds;
  run.dispatch_seconds += mid_seconds + phase2.dispatch_seconds;
  run.inputs = probe.size();
  run.outputs = phase2.outputs;
  run.checksum = phase2.checksum;
  return run;
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// Rows entering the probe/scan phase of a shape (the cost model's n).
uint64_t ProbeInputs(const Profile& p, const PhysicalShape& shape) {
  if (p.source->kind == PlanNodeKind::kWalks) return p.source->walkers;
  if (shape.build_side == PlanBuildSide::kInput) return p.join->rel->size();
  return p.source->rel->size();
}

const Relation& FullProbe(const Profile& p, const PhysicalShape& shape) {
  return shape.build_side == PlanBuildSide::kInput ? *p.join->rel
                                                   : *p.source->rel;
}

/// Calibration key of one (plan, shape) pair: the node-kind chain, the
/// shape name, and the build side's cardinality bucket, bucketed by the
/// probe cardinality like every other signature.  Distinct from op-type
/// signatures by construction (the "plan:" prefix), so plan priors and
/// governor priors never collide.
WorkloadSignature ShapeSignature(const Plan& plan, const Profile& p,
                                 const PhysicalShape& shape) {
  std::string name = "plan:";
  for (const PlanNode& node : plan.nodes()) {
    name += PlanNodeKindName(node.kind);
    name += ',';
  }
  name += shape.Name();
  if (p.join != nullptr && p.join->kind == PlanNodeKind::kHashJoin) {
    name += ":b";
    name += std::to_string(
        WorkloadSignature::CardinalityBucket(p.join->rel->size()));
  }
  return WorkloadSignature::Make(name, ProbeInputs(p, shape),
                                 static_cast<uint32_t>(sizeof(Tuple)));
}

/// Fraction of a two-phase shape's measured per-input cost treated as
/// selectivity-independent (the probe phase); the remainder (materialize +
/// aggregate) scales with the rows that survive the join.  First-order
/// split used to transfer a two-phase prior measured under one match-rate
/// regime to the regime the latest run observed (fig12's crossover is
/// exactly this: two-phase wins when the join filters hard).
constexpr double kTwoPhaseFixedFraction = 0.5;

/// Terminal rows per probe input observed on a finished run.  When the
/// plan aggregates, run.outputs counts groups, not rows — the aggregate
/// table's folded row count (TotalRows) recovers the rows that reached the
/// terminal without any per-row instrumentation.  Negative when the run
/// could not observe it.
double ObservedSelectivity(const RunStats& run, const AggregateTable* groups,
                           uint64_t inputs) {
  if (inputs == 0) return -1;
  const uint64_t rows = groups != nullptr ? groups->TotalRows() : run.outputs;
  return static_cast<double>(rows) / static_cast<double>(inputs);
}

/// Record a plan-shape prior: total cycles over n probe rows, stored as
/// cycles-per-input under the shape signature (current epoch), together
/// with the selectivity the measurement observed (negative = unobserved).
void StorePrior(Calibrator& calibrator, const WorkloadSignature& sig,
                double total_cycles, uint64_t n, double selectivity) {
  if (n == 0) return;
  CalibrationResult result;
  result.winner_cycles_per_input = total_cycles / static_cast<double>(n);
  result.survivors = {result.winner};
  result.observed_selectivity = selectivity;
  calibrator.Store(sig, result);
}

/// A plan-built hash table for one (build side, build mode) pair, shared
/// by every candidate shape that needs it (and by the final run when the
/// winner was measured).
struct ShapeBuild {
  std::shared_ptr<ChainedHashTable> table;
  RunStats build;
};

using BuildKey = std::pair<int, int>;  ///< (build_side, build_mode)

BuildKey KeyOf(const PhysicalShape& shape) {
  return {static_cast<int>(shape.build_side),
          static_cast<int>(shape.build_mode)};
}

std::shared_ptr<ChainedHashTable> MakeTable(const Profile& p,
                                            const Relation& build_rel) {
  ChainedHashTable::Options options;
  options.target_nodes_per_bucket = p.join->join.target_nodes_per_bucket;
  options.hash_kind = p.join->join.hash_kind;
  return std::make_shared<ChainedHashTable>(
      std::max<uint64_t>(1, build_rel.size()), options);
}

ShapeBuild& EnsureBuilt(Executor& exec, const Profile& p,
                        const PhysicalShape& shape,
                        std::map<BuildKey, ShapeBuild>* built) {
  auto [it, inserted] = built->try_emplace(KeyOf(shape));
  if (inserted && p.join->kind == PlanNodeKind::kHashJoin) {
    const Relation& build_rel = shape.build_side == PlanBuildSide::kInput
                                    ? *p.source->rel
                                    : *p.join->rel;
    it->second.table = MakeTable(p, build_rel);
    it->second.build =
        BuildPhase(exec, build_rel, it->second.table.get(), shape.build_mode);
  }
  return it->second;
}

const ChainedHashTable* TableOf(const Profile& p, const ShapeBuild& sb) {
  return p.join->kind == PlanNodeKind::kLookup ? p.join->table
                                               : sb.table.get();
}

AggregateTable::Options ScratchGroupOptions(const Profile& p) {
  if (p.groupby->group_into != nullptr) {
    AggregateTable::Options options;
    options.hash_kind = p.groupby->group_into->hash_kind();
    return options;
  }
  return p.groupby->group_options;
}

/// The measure fallback: build each needed table once at full size,
/// execute every candidate over a probe prefix into scratch aggregation
/// state, and extrapolate total cost = build + probe_cpi * n.  Estimates
/// are stored as priors for every candidate (so the NEXT run of this plan
/// chooses from priors); the measurement runs themselves are discarded —
/// only the winner's full table is reused by the final run.
size_t MeasureCandidates(Executor& exec, const Plan& plan, const Profile& p,
                         const PlanOptions& options,
                         const std::vector<PhysicalShape>& shapes,
                         std::map<BuildKey, ShapeBuild>* built,
                         double* chosen_cost) {
  Calibrator& calibrator = exec.calibrator();
  size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  std::map<int, Relation> prefixes;  ///< by build side
  for (size_t i = 0; i < shapes.size(); ++i) {
    const PhysicalShape& shape = shapes[i];
    const Relation& full = FullProbe(p, shape);
    const uint64_t n = full.size();
    const uint64_t prefix_n =
        options.measure_prefix > 0
            ? std::min(n, options.measure_prefix)
            : std::min(n, std::max<uint64_t>(4096, n / 16));
    ShapeBuild& sb = EnsureBuilt(exec, p, shape, built);
    double cost = static_cast<double>(sb.build.cycles);
    double selectivity = -1;
    if (prefix_n > 0) {
      auto [pit, fresh] =
          prefixes.try_emplace(static_cast<int>(shape.build_side));
      if (fresh) {
        Relation prefix(prefix_n);
        for (uint64_t j = 0; j < prefix_n; ++j) prefix[j] = full[j];
        pit->second = std::move(prefix);
      }
      const Relation& prefix = pit->second;
      std::optional<AggregateTable> scratch;
      AggregateTable* groups = nullptr;
      if (p.groupby != nullptr) {
        // Groups are bounded by the prefix rows plus (for non-unique
        // joins) the distinct join-rel payloads.
        uint64_t expected = prefix_n;
        if (p.join != nullptr &&
            p.join->kind == PlanNodeKind::kHashJoin) {
          expected += p.join->rel->size();
        }
        scratch.emplace(std::max<uint64_t>(1, expected),
                        ScratchGroupOptions(p));
        groups = &*scratch;
      }
      const RunStats m =
          shape.pipeline == PlanShape::kTwoPhase
              ? RunTwoPhase(exec, p, prefix, *TableOf(p, sb), groups)
              : RunFused(exec, p, shape, &prefix, TableOf(p, sb), groups);
      cost += static_cast<double>(m.cycles) /
              static_cast<double>(prefix_n) * static_cast<double>(n);
      selectivity = ObservedSelectivity(m, groups, prefix_n);
    }
    StorePrior(calibrator, ShapeSignature(plan, p, shape), cost, n,
               selectivity);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  *chosen_cost = best_cost;
  return best;
}

}  // namespace

WorkloadSignature PlanShapeSignature(const Plan& plan,
                                     const PhysicalShape& shape) {
  const Profile p = Analyze(plan);
  return ShapeSignature(plan, p, shape);
}

// ---------------------------------------------------------------------------
// Shape enumeration
// ---------------------------------------------------------------------------

std::vector<PhysicalShape> PlanCompiler::Enumerate(const Plan& plan,
                                                   const PlanOptions& options,
                                                   uint32_t num_threads) {
  if (plan.is_custom()) return {PhysicalShape{}};
  const Profile p = Analyze(plan);
  if (options.terminal == PlanTerminal::kMatches) {
    // Legacy (rid, payload) accounting is probe-order-specific: exactly
    // the historic shape, nothing to optimize.
    AMAC_CHECK_MSG(p.join != nullptr && p.lean() && p.groupby == nullptr,
                   "plan: kMatches needs a lean scan->join plan");
    AMAC_CHECK(options.shape != PlanShape::kTwoPhase);
    AMAC_CHECK(options.build_side != PlanBuildSide::kInput);
    PhysicalShape shape;
    shape.build_mode = options.build_mode;
    return {shape};
  }
  const bool plan_built =
      p.join != nullptr && p.join->kind == PlanNodeKind::kHashJoin;
  std::vector<PlanBuildMode> modes{PlanBuildMode::kAuto};
  if (plan_built) {
    modes = num_threads > 1 ? std::vector<PlanBuildMode>{
                                  PlanBuildMode::kPartitioned,
                                  PlanBuildMode::kChained}
                            : std::vector<PlanBuildMode>{
                                  PlanBuildMode::kChained};
  }
  // Two-phase stays on the join-rel build side: its early-exit
  // materialization bound (one emission per probe row) is what keeps the
  // intermediate no larger than the probe input.
  const bool two_phase =
      p.join != nullptr && p.groupby != nullptr && p.lean() &&
      p.unique_build();
  const bool flip = plan_built && p.lean() && p.unique_build();
  std::vector<PhysicalShape> shapes;
  for (PlanBuildMode mode : modes) {
    shapes.push_back({PlanShape::kFused, PlanBuildSide::kJoinRel, mode});
  }
  if (two_phase) {
    for (PlanBuildMode mode : modes) {
      shapes.push_back(
          {PlanShape::kTwoPhase, PlanBuildSide::kJoinRel, mode});
    }
  }
  if (flip) {
    for (PlanBuildMode mode : modes) {
      shapes.push_back({PlanShape::kFused, PlanBuildSide::kInput, mode});
    }
  }
  // Apply pins.
  std::vector<PhysicalShape> pinned;
  for (const PhysicalShape& shape : shapes) {
    if (options.shape != PlanShape::kAuto &&
        shape.pipeline != options.shape) {
      continue;
    }
    if (options.build_side != PlanBuildSide::kAuto &&
        shape.build_side != options.build_side) {
      continue;
    }
    if (options.build_mode != PlanBuildMode::kAuto &&
        shape.build_mode != options.build_mode) {
      continue;
    }
    pinned.push_back(shape);
  }
  AMAC_CHECK_MSG(!pinned.empty(), "plan: pinned shape not applicable");
  return pinned;
}

// ---------------------------------------------------------------------------
// RunPlan
// ---------------------------------------------------------------------------

PlanResult RunPlan(Executor& exec, const Plan& plan,
                   const PlanOptions& options) {
  PlanResult result;
  if (plan.is_custom()) {
    result.run = plan.run_custom()(exec);
    result.run.plan.active = true;
    result.run.plan.shape = PlanShape::kFused;
    result.run.plan.candidates_considered = 1;
    result.run.plan.measured_cost_cycles =
        static_cast<double>(result.run.cycles);
    return result;
  }
  const Profile p = Analyze(plan);
  const std::vector<PhysicalShape> shapes =
      PlanCompiler::Enumerate(plan, options, exec.num_threads());
  PlanStats pstats;
  pstats.active = true;
  pstats.candidates_considered = static_cast<uint32_t>(shapes.size());

  size_t chosen = 0;
  double estimated = 0;
  std::map<BuildKey, ShapeBuild> built;
  if (shapes.size() > 1) {
    Calibrator& calibrator = exec.calibrator();
    double best_cost = std::numeric_limits<double>::infinity();
    bool all_priors = true;
    std::vector<CalibrationResult> priors(shapes.size());
    for (size_t i = 0; i < shapes.size(); ++i) {
      const uint64_t n = ProbeInputs(p, shapes[i]);
      const auto prior =
          calibrator.PeekResult(ShapeSignature(plan, p, shapes[i]), n);
      if (!prior || prior->winner_cycles_per_input <= 0) {
        all_priors = false;
        break;
      }
      priors[i] = *prior;
    }
    if (all_priors) {
      // Current-regime selectivity estimate: the default shape's entry —
      // index 0 of the enumeration — is the one the post-run refresh
      // updates most often, so its observed selectivity is the freshest
      // evidence of the match-rate the data is actually producing.
      const double s_est = priors[0].observed_selectivity;
      for (size_t i = 0; i < shapes.size(); ++i) {
        const uint64_t n = ProbeInputs(p, shapes[i]);
        double cost =
            priors[i].winner_cycles_per_input * static_cast<double>(n);
        if (shapes[i].pipeline == PlanShape::kTwoPhase) {
          // A two-phase prior is regime-specific: its materialize +
          // aggregate phases scale with the join's survivors.  Rescale
          // the per-survivor half from the selectivity the prior was
          // measured under to the selectivity the data shows now.
          const double s_stored = priors[i].observed_selectivity;
          if (s_est >= 0 && s_stored > 0) {
            cost *= kTwoPhaseFixedFraction +
                    (1 - kTwoPhaseFixedFraction) * (s_est / s_stored);
          }
        }
        if (cost < best_cost) {
          best_cost = cost;
          chosen = i;
        }
      }
      pstats.from_priors = true;
      estimated = best_cost;
    } else if (options.allow_measure) {
      chosen = MeasureCandidates(exec, plan, p, options, shapes, &built,
                                 &estimated);
    } else {
      chosen = 0;
      estimated = 0;
    }
  }
  const PhysicalShape shape = shapes[chosen];
  pstats.shape = shape.pipeline;
  pstats.build_side = shape.build_side;
  pstats.build_mode = shape.build_mode;
  pstats.estimated_cost_cycles = estimated;

  AggregateTable* groups = nullptr;
  if (p.groupby != nullptr) {
    if (p.groupby->group_into != nullptr) {
      groups = p.groupby->group_into;
    } else {
      result.groups = std::make_shared<AggregateTable>(
          std::max<uint64_t>(1, p.groupby->expected_groups),
          p.groupby->group_options);
      groups = result.groups.get();
    }
  }
  const ChainedHashTable* table = nullptr;
  if (p.join != nullptr) {
    if (p.join->kind == PlanNodeKind::kLookup) {
      table = p.join->table;
    } else {
      auto it = built.find(KeyOf(shape));
      if (it != built.end()) {
        result.table = it->second.table;
        result.build = it->second.build;
      } else {
        const Relation& build_rel =
            shape.build_side == PlanBuildSide::kInput ? *p.source->rel
                                                      : *p.join->rel;
        result.table = MakeTable(p, build_rel);
        result.build =
            BuildPhase(exec, build_rel, result.table.get(), shape.build_mode);
      }
      table = result.table.get();
    }
  }

  if (options.terminal == PlanTerminal::kMatches) {
    result.run = ProbePhase(exec, *table, *p.source->rel, p.unique_build());
  } else if (shape.pipeline == PlanShape::kTwoPhase) {
    result.run = RunTwoPhase(exec, p, *p.source->rel, *table, groups);
  } else {
    const Relation* probe =
        p.source->kind == PlanNodeKind::kWalks ? nullptr
        : shape.build_side == PlanBuildSide::kInput ? p.join->rel
                                                    : p.source->rel;
    result.run = RunFused(exec, p, shape, probe, table, groups);
  }
  pstats.measured_cost_cycles =
      static_cast<double>(result.build.cycles + result.run.cycles);
  pstats.observed_selectivity =
      ObservedSelectivity(result.run, groups, ProbeInputs(p, shape));
  // Refresh the chosen shape's prior with the full-run cost and the
  // full-run selectivity, so steady state tracks reality (including the
  // match-rate regime) rather than the first extrapolation forever.
  if (shapes.size() > 1) {
    StorePrior(exec.calibrator(), ShapeSignature(plan, p, shape),
               pstats.measured_cost_cycles, ProbeInputs(p, shape),
               pstats.observed_selectivity);
  }
  result.run.plan = pstats;
  return result;
}

RunStats Executor::Run(const Plan& plan) { return RunPlan(*this, plan).run; }

// ---------------------------------------------------------------------------
// Scheduler submission
// ---------------------------------------------------------------------------

namespace {

template <typename PipelineT>
QueryTicket SubmitCompiled(QueryScheduler& scheduler,
                           const PipelineT& pipeline,
                           const QueryOptions& options,
                           AggregateTable* group_into) {
  auto sinks =
      std::make_shared<std::vector<RowSink>>(scheduler.SlotCount(options));
  return scheduler.SubmitOp(
      pipeline.size(),
      [sinks, pipeline](uint32_t slot) {
        return pipeline.Compile((*sinks)[slot]);
      },
      options, [sinks, group_into](RunStats* run) {
        if (group_into != nullptr) {
          run->outputs = group_into->CountGroups();
          run->checksum = group_into->Checksum();
        } else {
          RowSink total;
          for (const RowSink& sink : *sinks) total.Merge(sink);
          run->outputs = total.rows();
          run->checksum = total.checksum();
        }
        run->plan.active = true;
        run->plan.shape = PlanShape::kFused;
        run->plan.candidates_considered = 1;
      });
}

template <typename PipelineT>
QueryTicket SubmitTail(QueryScheduler& scheduler, const PipelineT& pipeline,
                       const std::vector<RowFn>& fns,
                       const QueryOptions& options,
                       AggregateTable* group_into) {
  if (group_into != nullptr) {
    if (!fns.empty()) {
      return SubmitCompiled(
          scheduler,
          pipeline.Then(DynRowStage(fns)).Then(Aggregate<true>(*group_into)),
          options, group_into);
    }
    return SubmitCompiled(scheduler,
                          pipeline.Then(Aggregate<true>(*group_into)),
                          options, group_into);
  }
  if (!fns.empty()) {
    return SubmitCompiled(scheduler, pipeline.Then(DynRowStage(fns)),
                          options, nullptr);
  }
  return SubmitCompiled(scheduler, pipeline, options, nullptr);
}

}  // namespace

QueryTicket Submit(QueryScheduler& scheduler, const Plan& plan,
                   const QueryOptions& options) {
  if (plan.is_custom()) return plan.submit_custom()(scheduler, options);
  const Profile p = Analyze(plan);
  AMAC_CHECK_MSG(p.join == nullptr || p.join->kind == PlanNodeKind::kLookup,
                 "Submit(Plan): hash-join plans build state; use RunPlan");
  AMAC_CHECK_MSG(p.groupby == nullptr || p.groupby->group_into != nullptr,
                 "Submit(Plan): scheduler group-bys aggregate into a "
                 "caller-owned table (GroupByInto)");
  AggregateTable* groups =
      p.groupby != nullptr ? p.groupby->group_into : nullptr;
  std::vector<RowFn> pre = CollectFns(p.pre);
  std::vector<RowFn> post = CollectFns(p.post);
  if (p.source->kind == PlanNodeKind::kWalks) {
    const PlanNode& w = *p.source;
    return SubmitTail(scheduler, Walks(*w.graph, w.walkers, w.hops, w.seed),
                      pre, options, groups);
  }
  auto base = From(DynScanSource(*p.source->rel, std::move(pre)));
  if (p.join != nullptr) {
    if (p.join->early_exit) {
      return SubmitTail(scheduler, base.Then(Probe<true>(*p.join->table)),
                        post, options, groups);
    }
    return SubmitTail(scheduler, base.Then(Probe<false>(*p.join->table)),
                      post, options, groups);
  }
  if (p.index != nullptr) {
    switch (p.index->kind) {
      case PlanNodeKind::kLookupBTree:
        return SubmitTail(scheduler, base.Then(LookupBTree(*p.index->btree)),
                          post, options, groups);
      case PlanNodeKind::kLookupBst:
        return SubmitTail(scheduler, base.Then(LookupBst(*p.index->bst)),
                          post, options, groups);
      default:
        return SubmitTail(scheduler,
                          base.Then(LookupSkipList(*p.index->skiplist)),
                          post, options, groups);
    }
  }
  return SubmitTail(scheduler, base, post, options, groups);
}

}  // namespace amac
