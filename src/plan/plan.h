// Declarative query-plan layer above the fused Pipeline API.
//
// A Pipeline (core/pipeline.h) is a *physical* artifact: the caller has
// already decided to fuse the whole chain, which side of a join builds the
// hash table, and how that build partitions.  The paper's fig12 result is
// exactly that those structural choices matter — fused wins at high match
// rates, probe-materialize + aggregate wins when the join filters hard —
// yet nothing in the repo could make the choice; every bench hard-coded
// one shape.
//
// `Plan` describes the query as logical intent only:
//
//   Plan plan = Plan::Scan(s)
//                   .HashJoin(r)                 // no build side chosen
//                   .GroupBy(num_groups);        // no fusion chosen
//   PlanResult res = RunPlan(exec, plan);
//   res.run.plan.shape;                          // what the optimizer did
//
// `PlanCompiler::Enumerate` expands a plan into its equivalent physical
// shapes (fused vs two-phase, build side, build partitioning);
// `RunPlan` picks among them with a cost model over the Executor's
// Calibrator priors (cycles-per-input keyed by a plan-shape
// WorkloadSignature), falling back to measuring a prefix of the real input
// under every candidate — the plan-level analogue of the adaptive layer's
// successive-halving calibration — when no priors exist.  Every enumerated
// shape produces bitwise-identical outputs/checksums (pinned by
// tests/plan/), so the choice is purely a performance decision.
//
// Entry points: `RunPlan` (full result: build stats + owned structures),
// `Executor::Run(const Plan&)` (just the run stats), and
// `Submit(QueryScheduler&, const Plan&, ...)` for prebuilt-structure plans
// on the concurrent serving path.  `RunHashJoin` (join/hash_join.h) is now
// a thin adapter pinning the legacy shape on this layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/signature.h"
#include "core/pipeline.h"
#include "groupby/agg_table.h"
#include "hashtable/chained_table.h"
#include "join/hash_join.h"
#include "relation/relation.h"

namespace amac {

class BTree;
class BinarySearchTree;
class SkipList;
class CsrGraph;

/// The logical operator vocabulary.  Sources (kScan / kWalks / kCustom)
/// start a plan; kGroupBy is terminal; everything else chains.
enum class PlanNodeKind : uint8_t {
  kScan,        ///< emit every tuple of a relation
  kWalks,       ///< emit every vertex visit of N random walks
  kCustom,      ///< wrap an existing engine Operation factory
  kFilter,      ///< drop rows failing a predicate
  kMap,         ///< rewrite each row
  kHashJoin,    ///< join against a relation (table built by the plan)
  kLookup,      ///< join against a prebuilt ChainedHashTable
  kLookupBTree, ///< index lookup: row.key -> (key, payload)
  kLookupBst,
  kLookupSkip,
  kGroupBy,     ///< aggregate rows into an AggregateTable (terminal)
};

const char* PlanNodeKindName(PlanNodeKind kind);

/// One logical operator.  Plain data: non-owning pointers to the caller's
/// structures (which must outlive execution) plus per-kind parameters.
struct PlanNode {
  PlanNodeKind kind = PlanNodeKind::kScan;
  /// kScan: the scanned input; kHashJoin: the join relation.
  const Relation* rel = nullptr;
  std::function<bool(const Tuple&)> pred;  ///< kFilter
  std::function<Tuple(const Tuple&)> map;  ///< kMap
  JoinOptions join;                        ///< kHashJoin
  const ChainedHashTable* table = nullptr; ///< kLookup
  bool early_exit = true;                  ///< kLookup
  const BTree* btree = nullptr;
  const BinarySearchTree* bst = nullptr;
  const SkipList* skiplist = nullptr;
  const CsrGraph* graph = nullptr;         ///< kWalks
  uint64_t walkers = 0;                    ///< kWalks
  uint32_t hops = 0;
  uint64_t seed = 0;
  uint64_t expected_groups = 0;            ///< kGroupBy (plan-owned table)
  AggregateTable::Options group_options;   ///< kGroupBy
  AggregateTable* group_into = nullptr;    ///< kGroupBy: caller's table
};

/// What the terminal rows of a non-group-by plan fold into.
enum class PlanTerminal : uint8_t {
  /// RowSink discipline: count + checksum over emitted (key, payload) rows.
  kCollect,
  /// Legacy join accounting: ProbePhase's (probe rid, build payload)
  /// checksum.  Only valid for Scan -> HashJoin/Lookup plans with no
  /// filters or maps; pins the build side (the rid is probe-relative), so
  /// no structural alternatives are enumerated.  RunHashJoin uses this.
  kMatches,
};

/// Execution-time knobs: pin any structural dimension (kAuto = let the
/// optimizer choose) and control the measure fallback.
struct PlanOptions {
  PlanShape shape = PlanShape::kAuto;
  PlanBuildSide build_side = PlanBuildSide::kAuto;
  PlanBuildMode build_mode = PlanBuildMode::kAuto;
  PlanTerminal terminal = PlanTerminal::kCollect;
  /// Permit the measure fallback when priors are missing.  When false and
  /// priors are incomplete, the first enumerated shape (fused, join-rel
  /// build) runs unmeasured.
  bool allow_measure = true;
  /// Probe-prefix rows per candidate in the measure fallback; 0 derives
  /// min(n, max(4096, n/16)).
  uint64_t measure_prefix = 0;
};

/// A value-semantic logical plan, built fluently:
///
///   Plan::Scan(s).Filter(f).HashJoin(r).GroupBy(1024)
///
/// Builder methods validate chaining order via AMAC_CHECK (a plan is
/// program text, not user input).  Copying a Plan copies node descriptors
/// only; all data structures stay shared and non-owned.
class Plan {
 public:
  /// ---- sources -------------------------------------------------------
  static Plan Scan(const Relation& rel);
  static Plan Walks(const CsrGraph& graph, uint64_t num_walkers,
                    uint32_t hops, uint64_t seed);
  /// Wrap an existing engine-Operation factory (`make_op(slot)`), so
  /// callers driving hand-built ops (e.g. read-write YCSB ops) enter
  /// through the same plan API.  Runs/submits exactly as
  /// Executor::RunOp / QueryScheduler::SubmitOp would; no structural
  /// alternatives exist.
  template <typename OpFactory>
  static Plan FromOp(uint64_t num_inputs, OpFactory make_op) {
    Plan plan;
    PlanNode node;
    node.kind = PlanNodeKind::kCustom;
    plan.nodes_.push_back(std::move(node));
    plan.custom_inputs_ = num_inputs;
    plan.run_custom_ = [num_inputs, make_op](Executor& exec) {
      return exec.RunOp(num_inputs, make_op);
    };
    plan.submit_custom_ = [num_inputs, make_op](
                              QueryScheduler& scheduler,
                              const QueryOptions& options) {
      return scheduler.SubmitOp(num_inputs, make_op, options);
    };
    return plan;
  }

  /// ---- chained operators (each returns the extended plan) ------------
  Plan Filter(std::function<bool(const Tuple&)> pred) const;
  Plan Map(std::function<Tuple(const Tuple&)> fn) const;
  Plan HashJoin(const Relation& rel, const JoinOptions& options = {}) const;
  Plan Lookup(const ChainedHashTable& table, bool early_exit = true) const;
  Plan LookupBTree(const BTree& tree) const;
  Plan LookupBst(const BinarySearchTree& tree) const;
  Plan LookupSkipList(const SkipList& list) const;
  /// Terminal aggregation into a plan-owned table sized for
  /// `expected_groups` (returned via PlanResult::groups).
  Plan GroupBy(uint64_t expected_groups,
               AggregateTable::Options options = {}) const;
  /// Terminal aggregation into the caller's (empty) table.
  Plan GroupByInto(AggregateTable* table) const;

  const std::vector<PlanNode>& nodes() const { return nodes_; }
  bool is_custom() const {
    return !nodes_.empty() && nodes_[0].kind == PlanNodeKind::kCustom;
  }
  uint64_t custom_inputs() const { return custom_inputs_; }
  const std::function<RunStats(Executor&)>& run_custom() const {
    return run_custom_;
  }
  const std::function<QueryTicket(QueryScheduler&, const QueryOptions&)>&
  submit_custom() const {
    return submit_custom_;
  }

 private:
  Plan Append(PlanNode node) const;

  std::vector<PlanNode> nodes_;
  uint64_t custom_inputs_ = 0;
  std::function<RunStats(Executor&)> run_custom_;
  std::function<QueryTicket(QueryScheduler&, const QueryOptions&)>
      submit_custom_;
};

/// One physical alternative for a plan: every structural dimension pinned.
struct PhysicalShape {
  PlanShape pipeline = PlanShape::kFused;
  PlanBuildSide build_side = PlanBuildSide::kJoinRel;
  PlanBuildMode build_mode = PlanBuildMode::kAuto;

  /// Stable display / signature name, e.g. "fused/join-rel/partitioned".
  std::string Name() const;
};

/// Enumerates the physically equivalent shapes of a plan.  The result is
/// never empty; index 0 is the default (fused, join-rel build, auto
/// partitioning).  Alternatives appear only where they are provably
/// result-identical:
///   * two-phase — lean Scan -> HashJoin/Lookup -> GroupBy chains (no
///     filters/maps) with unique build keys (early_exit);
///   * build-side flip — plan-built hash joins under the same leanness
///     (the flipped probe re-canonicalizes rows, and unique join-rel keys
///     make early-exit and full enumeration emit the same pair set);
///   * build partitioning — chained (latched) vs pre-partitioned, for
///     plan-built tables on multi-threaded executors.
/// PlanOptions pins filter the list; a pin that matches no valid shape is
/// a programming error (AMAC_CHECK).
class PlanCompiler {
 public:
  static std::vector<PhysicalShape> Enumerate(const Plan& plan,
                                              const PlanOptions& options,
                                              uint32_t num_threads);
};

/// The calibration-cache key of one (plan, shape) pair — the signature
/// RunPlan stores shape priors under.  Exposed so tests and offline
/// tooling can seed or inspect plan-level priors without re-deriving the
/// naming scheme.
WorkloadSignature PlanShapeSignature(const Plan& plan,
                                     const PhysicalShape& shape);

/// Everything a plan execution produced.  `run` is the main phase
/// (probe/scan/aggregate) with run.plan filled in; `build` is the
/// plan-built hash table's build phase (zeroed otherwise).  The shared
/// pointers keep plan-owned structures alive for inspection.
struct PlanResult {
  RunStats run;
  RunStats build;
  std::shared_ptr<ChainedHashTable> table;  ///< plan-built join table
  std::shared_ptr<AggregateTable> groups;   ///< plan-owned group-by table

  uint64_t TotalCycles() const { return build.cycles + run.cycles; }
};

/// Execute `plan` on `exec`: enumerate shapes, choose by Calibrator priors
/// (or the measure fallback), run the winner.  Priors learned here are
/// stored back into exec.calibrator(), so repeated plans skip straight to
/// the costed choice (run.plan.from_priors).
PlanResult RunPlan(Executor& exec, const Plan& plan,
                   const PlanOptions& options = {});

/// Submit a plan to a QueryScheduler as one concurrent query.  Supports
/// the prebuilt-structure subset (scan/walks/custom sources, filters,
/// maps, prebuilt-table and index lookups, GroupByInto): serving queries
/// must not block the submitting thread on a table build, and structural
/// enumeration needs an Executor — plans that build state run via
/// RunPlan.  The fused default shape is submitted unconditionally.
QueryTicket Submit(QueryScheduler& scheduler, const Plan& plan,
                   const QueryOptions& options = {});

}  // namespace amac
