#include "epoch/epoch.h"

#include <utility>

#include "common/latch.h"

namespace amac {

EpochManager::EpochManager() : EpochManager(Options{}) {}

EpochManager::EpochManager(Options options)
    : options_(options),
      participants_(std::max(1u, options.max_participants)) {
  options_.max_participants = static_cast<uint32_t>(participants_.size());
  options_.retire_batch = std::max(1u, options_.retire_batch);
}

EpochManager::~EpochManager() {
  // Guards must not outlive the manager; retirements left behind are freed
  // here so a drained-but-not-ReclaimAll'd manager does not leak.
  AMAC_CHECK(active_guards() == 0);
  ReclaimAll();
}

uint32_t EpochManager::active_guards() const {
  uint32_t n = 0;
  for (const Participant& p : participants_) {
    if (p.used.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

bool EpochManager::TryAdvance() {
  const uint64_t e = global_.load(std::memory_order_seq_cst);
  for (const Participant& p : participants_) {
    if (!p.used.load(std::memory_order_acquire)) continue;
    const uint64_t pinned = p.epoch.load(std::memory_order_acquire);
    // A pinned participant behind the current epoch blocks the advance
    // (it may still hold pointers retired in e - 1).
    if (pinned != 0 && pinned != e) return false;
  }
  uint64_t expected = e;
  if (global_.compare_exchange_strong(expected, e + 1,
                                      std::memory_order_seq_cst)) {
    advances_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;  // another thread advanced first; its progress counts
}

void EpochManager::SweepList(std::vector<Retiree>* list) {
  if (list->empty()) return;
  const uint64_t global = global_.load(std::memory_order_acquire);
  size_t kept = 0;
  for (Retiree& r : *list) {
    if (r.epoch + 2 <= global) {
      r.deleter(r.obj, r.ctx);
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      (*list)[kept++] = r;
    }
  }
  list->resize(kept);
}

void EpochManager::SweepOrphans() {
  std::lock_guard<std::mutex> lock(orphan_mu_);
  SweepList(&orphans_);
}

void EpochManager::AdvanceAndReclaim() {
  TryAdvance();
  SweepOrphans();
}

void EpochManager::ReclaimAll() {
  AMAC_CHECK_MSG(active_guards() == 0,
                 "ReclaimAll with a live EpochGuard would free in-use nodes");
  std::lock_guard<std::mutex> lock(orphan_mu_);
  for (const Retiree& r : orphans_) {
    r.deleter(r.obj, r.ctx);
    reclaimed_.fetch_add(1, std::memory_order_relaxed);
  }
  orphans_.clear();
}

EpochManager::Participant* EpochManager::AcquireParticipant() {
  for (uint64_t rounds = 0;; ++rounds) {
    for (Participant& p : participants_) {
      bool expected = false;
      if (!p.used.load(std::memory_order_relaxed) &&
          p.used.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
        return &p;
      }
    }
    // All slots claimed: guards churn fast (one per query slot), so spin
    // rather than abort — sized generously, this path is cold.  But a
    // caller LEAKING guards turns this spin into a silent livelock, so
    // after an implausible number of full-table scans, abort loudly with
    // the diagnosis instead of wedging the process.
    AMAC_CHECK_MSG(rounds < (uint64_t{1} << 32),
                   "EpochManager participant table exhausted for too long: "
                   "some component is holding EpochGuards indefinitely "
                   "(leak), or max_participants is far too small for the "
                   "number of concurrently live guards");
    Latch::CpuRelax();
  }
}

void EpochManager::ReleaseParticipant(Participant* p) {
  p->epoch.store(0, std::memory_order_release);
  p->used.store(false, std::memory_order_release);
}

EpochGuard::EpochGuard(EpochManager* manager) : manager_(manager) {
  AMAC_CHECK(manager_ != nullptr);
  participant_ = manager_->AcquireParticipant();
  Pin();
}

EpochGuard::EpochGuard(EpochGuard&& other) noexcept
    : manager_(std::exchange(other.manager_, nullptr)),
      participant_(std::exchange(other.participant_, nullptr)) {}

EpochGuard& EpochGuard::operator=(EpochGuard&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = std::exchange(other.manager_, nullptr);
    participant_ = std::exchange(other.participant_, nullptr);
  }
  return *this;
}

EpochGuard::~EpochGuard() { Release(); }

void EpochGuard::Pin() {
  // Publish-then-verify: after storing the pin, the global may already
  // have moved past it (an advancing thread scanned before our store).
  // Re-reading and re-publishing until they agree guarantees the pin is
  // never more than one epoch behind any advance that observed it.
  for (;;) {
    const uint64_t e = manager_->global_.load(std::memory_order_seq_cst);
    participant_->epoch.store(e, std::memory_order_seq_cst);
    if (manager_->global_.load(std::memory_order_seq_cst) == e) break;
  }
  // Fence-pair with Retire()'s fence: a guard whose pin-verify load saw
  // epoch >= r + 1 is guaranteed to also see every unlink sequenced before
  // a Retire tagged r (the unlinker's fence precedes its tag load, which
  // precedes the r -> r+1 advance, which precedes this pin's verify load
  // in the seq_cst order) — so only guards pinned at r itself can hold
  // pointers to epoch-r retirees, and they block the advance to r + 2.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void EpochGuard::Refresh() {
  if (participant_ == nullptr) return;
  const uint64_t e = manager_->global_.load(std::memory_order_relaxed);
  if (e != participant_->epoch.load(std::memory_order_relaxed)) Pin();
}

void EpochGuard::Retire(void* obj, void (*deleter)(void*, void*),
                        void* ctx) {
  AMAC_CHECK(participant_ != nullptr);
  // See Pin(): the fence orders the caller's unlink stores before the
  // epoch tag in the seq_cst order, making them visible to every guard
  // that pins a later epoch.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const uint64_t e = manager_->global_.load(std::memory_order_seq_cst);
  participant_->retirees.push_back(
      EpochManager::Retiree{obj, deleter, ctx, e});
  manager_->retired_.fetch_add(1, std::memory_order_relaxed);
  if (participant_->retirees.size() >= manager_->options_.retire_batch) {
    manager_->TryAdvance();
    manager_->SweepList(&participant_->retirees);
  }
}

void EpochGuard::Release() {
  if (participant_ == nullptr) return;
  // Final sweep of the local backlog; whatever the epoch has not caught up
  // with yet is handed to the manager's orphan list for later guards (or
  // the idle hook / ReclaimAll) to free.
  manager_->TryAdvance();
  manager_->SweepList(&participant_->retirees);
  if (!participant_->retirees.empty()) {
    std::lock_guard<std::mutex> lock(manager_->orphan_mu_);
    for (const EpochManager::Retiree& r : participant_->retirees) {
      manager_->orphans_.push_back(r);
    }
  }
  participant_->retirees.clear();
  manager_->ReleaseParticipant(participant_);
  participant_ = nullptr;
  manager_ = nullptr;
}

}  // namespace amac
