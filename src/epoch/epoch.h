// Epoch-based memory reclamation for the concurrent write path.
//
// The read-optimized structures (hashtable/, skiplist/) keep readers fully
// latch-free: a reader walking a chain holds raw node pointers with no
// reference count, so a writer that unlinks a node must not free it while
// any reader might still dereference it.  Epochs solve this with three
// counters instead of per-node bookkeeping:
//
//   * A global epoch `e` advances by one whenever every *pinned*
//     participant has caught up to it (quiescence).
//   * Every reader/writer pins the current epoch for the duration of its
//     structure accesses (an `EpochGuard`).  A pinned participant is always
//     in epoch e or e-1 — never older — because pinning re-reads the global
//     after publishing the pin.
//   * A node retired (unlinked) in epoch r cannot be referenced by guards
//     pinned in epochs > r (it was unreachable before they pinned), so it
//     is free to reclaim once the global reaches r + 2: at that point every
//     guard still pinned is in {r+1, r+2}-or-later.
//
// Design choices, deliberately different from a classic thread-local EBR:
//
//   * Participants are pool slots, NOT thread_locals.  A query's operation
//     (and its guard) migrates across ThreadPool workers between morsels —
//     the serving layer's whole point — so pinning must follow the guard,
//     not the OS thread.  A guard acquires a participant slot on
//     construction and releases it on destruction; slots are cache-line
//     sized and scanned linearly on advance (max_participants is small).
//   * Retire lists are per-participant and unsynchronized: only the guard
//     holding the slot appends.  Reclamation is batched — every
//     `retire_batch` retirements the guard tries to advance the epoch and
//     sweeps its own list.  Whatever is still unreclaimable when the guard
//     dies moves to a mutex-guarded orphan list on the manager, swept by
//     later guards and by the ThreadPool idle hook
//     (ThreadPool::SetIdleTask -> EpochManager::AdvanceAndReclaim), which
//     drives quiescence from workers that have run out of tasks.
//
// Lifetime rule: deleters typically push nodes back onto the owning
// structure's free list, so the structure must outlive every pending
// retirement.  Drain (ReclaimAll after all guards released) before
// destroying the structure; the benches and tests all follow this order.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/macros.h"

namespace amac {

class EpochGuard;

/// Shared reclamation domain: one per concurrent structure family (the
/// benches use one per workload).  All methods are thread-safe.
class EpochManager {
 public:
  struct Options {
    /// Guard slots available concurrently; a guard construction beyond
    /// this aborts (sized far above any scheduler's slot count).
    uint32_t max_participants = 256;
    /// Retirements a guard accumulates before it attempts an epoch
    /// advance + local sweep (the "epoch advance interval" knob).
    uint32_t retire_batch = 64;
  };

  EpochManager();  ///< default Options
  explicit EpochManager(Options options);
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  uint64_t current_epoch() const {
    return global_.load(std::memory_order_acquire);
  }

  /// Advance the global epoch iff every pinned participant has caught up
  /// to it; true when the epoch moved.
  bool TryAdvance();

  /// The ThreadPool idle hook: try to advance, then sweep the orphan list.
  /// Cheap when there is nothing to do (one atomic load + short scans).
  void AdvanceAndReclaim();

  /// Free every orphaned retirement regardless of epoch.  Only legal when
  /// no guard exists (checked): this is the drain step benches/tests call
  /// after the last query completed, before tearing down structures.
  void ReclaimAll();

  // Leak accounting: after ReclaimAll, retired() == reclaimed() or nodes
  // leaked (the ext_ycsb gate).
  uint64_t retired() const {
    return retired_.load(std::memory_order_relaxed);
  }
  uint64_t reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  uint64_t advances() const {
    return advances_.load(std::memory_order_relaxed);
  }
  /// Live guard count (racy snapshot; observability/tests).
  uint32_t active_guards() const;
  const Options& options() const { return options_; }

 private:
  friend class EpochGuard;

  /// One deferred free: the object, how to free it, and when it became
  /// unreachable.
  struct Retiree {
    void* obj;
    void (*deleter)(void* obj, void* ctx);
    void* ctx;
    uint64_t epoch;
  };

  /// One guard slot.  `epoch` == 0 means unpinned; `used` claims the slot.
  /// The retire list is touched only by the guard holding the slot.
  struct AMAC_CACHE_ALIGNED Participant {
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> used{false};
    std::vector<Retiree> retirees;
  };

  Participant* AcquireParticipant();
  void ReleaseParticipant(Participant* p);
  /// Free list entries with epoch <= global - 2; returns survivors in
  /// place.  Caller owns `list` exclusively.
  void SweepList(std::vector<Retiree>* list);
  void SweepOrphans();

  Options options_;
  std::atomic<uint64_t> global_{2};  ///< starts at 2 so epoch-2 never wraps
  std::vector<Participant> participants_;
  std::mutex orphan_mu_;
  std::vector<Retiree> orphans_;  ///< guarded by orphan_mu_
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};
  std::atomic<uint64_t> advances_{0};
};

/// RAII pin on the current epoch.  While a guard lives, nothing retired at
/// or after its pinned epoch is freed, so raw pointers read from the
/// protected structure stay dereferenceable.  Movable (operations holding
/// a guard are moved into scheduler slots), not copyable.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* manager);
  ~EpochGuard();

  EpochGuard(EpochGuard&& other) noexcept;
  EpochGuard& operator=(EpochGuard&& other) noexcept;
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  /// Re-pin to the current global epoch if it moved (one relaxed load on
  /// the fast path).  Operations call this in Start() so a long-lived
  /// guard never holds the epoch back by more than one in-flight morsel.
  void Refresh();

  /// Defer `deleter(obj, ctx)` until every epoch pinned now (or earlier)
  /// has been released.  Batches: every retire_batch calls the guard tries
  /// to advance the epoch and free its eligible backlog.
  void Retire(void* obj, void (*deleter)(void* obj, void* ctx), void* ctx);

  uint64_t pinned_epoch() const {
    return participant_->epoch.load(std::memory_order_relaxed);
  }

  EpochManager* manager() const { return manager_; }

 private:
  void Pin();
  void Release();

  EpochManager* manager_ = nullptr;
  EpochManager::Participant* participant_ = nullptr;
};

}  // namespace amac
