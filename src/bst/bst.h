// Canonical (unbalanced) binary search tree, paper §4:
//
//   "Each binary tree node contains an 8-byte key, an 8-byte payload and
//    two 8-byte child pointers (i.e., left and right)."
//
// Nodes are bump-allocated from a contiguous pool in insertion order and
// padded to a cache line, so a random-key build produces the cache-hostile
// pointer topology the paper measures (low locality across levels).
#pragma once

#include <cstdint>

#include "common/aligned.h"
#include "common/macros.h"
#include "relation/relation.h"

namespace amac {

struct AMAC_CACHE_ALIGNED BstNode {
  int64_t key;
  int64_t payload;
  BstNode* left = nullptr;
  BstNode* right = nullptr;
};
static_assert(sizeof(BstNode) == kCacheLineSize);

struct BstStats {
  uint64_t num_nodes = 0;
  uint64_t height = 0;
  double avg_depth = 0;  ///< average node depth (root = 1)
};

class BinarySearchTree {
 public:
  /// `capacity` bounds the number of inserts (pool is preallocated).
  explicit BinarySearchTree(uint64_t capacity);

  /// Insert (single-threaded); duplicate keys are rejected (returns false).
  bool Insert(int64_t key, int64_t payload);

  /// Reference search used by tests.
  const BstNode* Find(int64_t key) const;

  const BstNode* root() const { return root_; }
  uint64_t size() const { return used_; }

  /// Walk the tree to gather height/depth statistics (not a hot path).
  BstStats ComputeStats() const;

 private:
  AlignedBuffer<BstNode> pool_;
  BstNode* root_ = nullptr;
  uint64_t used_ = 0;
};

/// Build a tree from a relation's tuples in relation order.
BinarySearchTree BuildBst(const Relation& rel);

}  // namespace amac
