#include "bst/bst.h"

#include <algorithm>
#include <vector>

namespace amac {

BinarySearchTree::BinarySearchTree(uint64_t capacity) : pool_(capacity) {}

bool BinarySearchTree::Insert(int64_t key, int64_t payload) {
  AMAC_CHECK_MSG(used_ < pool_.size(), "BST pool exhausted");
  BstNode** link = &root_;
  while (*link != nullptr) {
    BstNode* node = *link;
    if (key == node->key) return false;
    link = key < node->key ? &node->left : &node->right;
  }
  BstNode* fresh = &pool_[used_++];
  fresh->key = key;
  fresh->payload = payload;
  fresh->left = fresh->right = nullptr;
  *link = fresh;
  return true;
}

const BstNode* BinarySearchTree::Find(int64_t key) const {
  const BstNode* node = root_;
  while (node != nullptr) {
    if (key == node->key) return node;
    node = key < node->key ? node->left : node->right;
  }
  return nullptr;
}

BstStats BinarySearchTree::ComputeStats() const {
  BstStats stats;
  stats.num_nodes = used_;
  if (root_ == nullptr) return stats;
  // Iterative DFS with explicit (node, depth) stack; trees are unbalanced
  // so recursion depth could get large.
  std::vector<std::pair<const BstNode*, uint64_t>> stack = {{root_, 1}};
  uint64_t depth_sum = 0;
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    depth_sum += depth;
    stats.height = std::max(stats.height, depth);
    if (node->left != nullptr) stack.emplace_back(node->left, depth + 1);
    if (node->right != nullptr) stack.emplace_back(node->right, depth + 1);
  }
  stats.avg_depth =
      static_cast<double>(depth_sum) / static_cast<double>(used_);
  return stats;
}

BinarySearchTree BuildBst(const Relation& rel) {
  BinarySearchTree tree(rel.size());
  for (const Tuple& t : rel) tree.Insert(t.key, t.payload);
  return tree;
}

}  // namespace amac
