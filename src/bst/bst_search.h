// BST search kernels: Baseline, GP, SPP, AMAC (paper Table 1 column 4).
//
// A tree descent is a pure dependent-pointer chain: the child cannot be
// fetched before the parent's comparison resolves, so baseline MLP is ~1.
// The staged engines overlap `inflight` descents.  GP/SPP provision
// `num_stages` levels; descents deeper than that bail out sequentially
// (paper §5.3 discusses exactly this SPP weakness on tall trees), while
// shallow descents waste no-op stages.  AMAC descends each lookup fully
// asynchronously.
//
// Sink contract: Emit(rid, payload) on a key match; missing keys emit
// nothing.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bst/bst.h"
#include "common/macros.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "relation/relation.h"

namespace amac {

/// One level of descent. Returns true when the lookup finished (match or
/// null child); otherwise *next receives the child to visit.
template <typename Sink>
inline bool VisitBstNode(const BstNode* node, int64_t key, uint64_t rid,
                         Sink& sink, const BstNode** next) {
  if (node->key == key) {
    sink.Emit(rid, node->payload);
    return true;
  }
  const BstNode* child = key < node->key ? node->left : node->right;
  if (child == nullptr) return true;
  *next = child;
  return false;
}

// The gather offsets of the vectorized descent hard-code the BstNode layout.
static_assert(offsetof(BstNode, key) == 0);
static_assert(offsetof(BstNode, payload) == 8);
static_assert(offsetof(BstNode, left) == 16);
static_assert(offsetof(BstNode, right) == 24);

/// Per-step result of the AVX2 descent kernel: lanes that matched (payload
/// captured) and lanes that keep descending (ptrs already advanced).
struct VecBstStepResult {
  uint32_t next_active = 0;
  uint32_t hit = 0;
  int64_t payload[kSimdLanes] = {};
};

#if AMAC_SIMD_X86
namespace simd_detail {

AMAC_TARGET_AVX2 inline VecBstStepResult VecBstStepAvx2(
    const BstNode** ptrs, const int64_t* keys, uint32_t active) {
  VecBstStepResult r;
  for (uint32_t half = 0; half < 2; ++half) {
    const uint32_t nibble = (active >> (4 * half)) & 0xf;
    if (nibble == 0) continue;
    const __m256i lanes = LaneMask4(nibble);
    const __m256i ptrv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ptrs + 4 * half));
    const __m256i keyv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + 4 * half));
    const __m256i nk = MaskGather64(ptrv, lanes);
    const __m256i eq = _mm256_and_si256(_mm256_cmpeq_epi64(nk, keyv), lanes);
    const __m256i pay =
        MaskGather64(_mm256_add_epi64(ptrv, _mm256_set1_epi64x(8)), eq);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(r.payload + 4 * half),
                        pay);
    // Child selection: left (offset 16) when key < node->key, else right
    // (offset 24); lt lanes are all-ones so `24 + (lt & -8)` yields 16.
    const __m256i lt = _mm256_and_si256(_mm256_cmpgt_epi64(nk, keyv), lanes);
    const __m256i off = _mm256_add_epi64(
        _mm256_set1_epi64x(24), _mm256_and_si256(lt, _mm256_set1_epi64x(-8)));
    const __m256i walk = _mm256_andnot_si256(eq, lanes);
    const __m256i child = MaskGather64(_mm256_add_epi64(ptrv, off), walk);
    const __m256i cont = _mm256_andnot_si256(
        _mm256_cmpeq_epi64(child, _mm256_setzero_si256()), walk);
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(ptrs + 4 * half),
                           cont, child);
    r.hit |= static_cast<uint32_t>(
                 _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
             << (4 * half);
    r.next_active |= static_cast<uint32_t>(
                         _mm256_movemask_pd(_mm256_castsi256_pd(cont)))
                     << (4 * half);
  }
  return r;
}

}  // namespace simd_detail
#endif  // AMAC_SIMD_X86

/// Advance every active lane's descent by one level (the VisitBstNode stage
/// boundary) with gathered node keys/children.  Hits emit (lane, payload);
/// continuing lanes have ptrs advanced and prefetched.  Returns the new
/// active mask.  Lane results are bitwise-identical to VisitBstNode.
template <typename EmitFn>
inline uint32_t VecBstStep(const BstNode** ptrs, const int64_t* keys,
                           uint32_t active, EmitFn&& emit) {
#if AMAC_SIMD_X86
  if (CurrentSimdLevel() >= SimdLevel::kAvx2) {
    const VecBstStepResult r =
        simd_detail::VecBstStepAvx2(ptrs, keys, active);
    uint32_t hits = r.hit;
    while (hits != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(hits));
      hits &= hits - 1;
      emit(lane, r.payload[lane]);
    }
    uint32_t walking = r.next_active;
    while (walking != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(walking));
      walking &= walking - 1;
      Prefetch(ptrs[lane]);
    }
    return r.next_active;
  }
#endif
  uint32_t next_active = 0;
  uint32_t pending = active;
  while (pending != 0) {
    const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(pending));
    pending &= pending - 1;
    const BstNode* node = ptrs[lane];
    if (node->key == keys[lane]) {
      emit(lane, node->payload);
      continue;
    }
    const BstNode* child =
        keys[lane] < node->key ? node->left : node->right;
    if (child == nullptr) continue;
    ptrs[lane] = child;
    Prefetch(child);
    next_active |= 1u << lane;
  }
  return next_active;
}

template <typename Sink>
void BstSearchBaseline(const BinarySearchTree& tree, const Relation& probe,
                       uint64_t begin, uint64_t end, Sink& sink) {
  for (uint64_t i = begin; i < end; ++i) {
    const int64_t key = probe[i].key;
    const BstNode* node = tree.root();
    if (node == nullptr) continue;
    const BstNode* next = nullptr;
    while (!VisitBstNode(node, key, i, sink, &next)) node = next;
  }
}

template <typename Sink>
void BstSearchGroupPrefetch(const BinarySearchTree& tree,
                            const Relation& probe, uint64_t begin,
                            uint64_t end, uint32_t group_size,
                            uint32_t num_stages, Sink& sink) {
  AMAC_CHECK(group_size >= 1 && num_stages >= 1);
  if (tree.root() == nullptr) return;
  struct GpState {
    const BstNode* ptr;
    int64_t key;
    uint64_t rid;
    bool active;
  };
  std::vector<GpState> g(group_size);
  for (uint64_t base = begin; base < end; base += group_size) {
    const uint32_t n_in_group =
        static_cast<uint32_t>(std::min<uint64_t>(group_size, end - base));
    for (uint32_t j = 0; j < n_in_group; ++j) {
      g[j] = GpState{tree.root(), probe[base + j].key, base + j, true};
      Prefetch(tree.root());
    }
    for (uint32_t stage = 0; stage < num_stages; ++stage) {
      for (uint32_t j = 0; j < n_in_group; ++j) {
        if (!g[j].active) continue;
        const BstNode* next = nullptr;
        if (VisitBstNode(g[j].ptr, g[j].key, g[j].rid, sink, &next)) {
          g[j].active = false;
        } else {
          Prefetch(next);
          g[j].ptr = next;
        }
      }
    }
    for (uint32_t j = 0; j < n_in_group; ++j) {  // bailout pass
      if (!g[j].active) continue;
      const BstNode* node = g[j].ptr;
      const BstNode* next = nullptr;
      while (!VisitBstNode(node, g[j].key, g[j].rid, sink, &next)) {
        node = next;
      }
    }
  }
}

template <typename Sink>
void BstSearchSoftwarePipelined(const BinarySearchTree& tree,
                                const Relation& probe, uint64_t begin,
                                uint64_t end, uint32_t num_stages,
                                uint32_t distance, Sink& sink) {
  AMAC_CHECK(num_stages >= 1 && distance >= 1);
  if (tree.root() == nullptr) return;
  const uint64_t n = end - begin;
  const uint64_t window = static_cast<uint64_t>(num_stages) * distance;
  struct SppState {
    const BstNode* ptr;
    int64_t key;
    bool active;
  };
  std::vector<SppState> pipe(window);
  for (uint64_t i = 0; i < n + window; ++i) {
    for (uint32_t s = num_stages; s >= 1; --s) {
      const uint64_t delay = static_cast<uint64_t>(s) * distance;
      if (i < delay) continue;
      const uint64_t t = i - delay;
      if (t >= n) continue;
      SppState& st = pipe[t % window];
      if (!st.active) continue;
      const BstNode* next = nullptr;
      const uint64_t rid = begin + t;
      if (VisitBstNode(st.ptr, st.key, rid, sink, &next)) {
        st.active = false;
      } else if (s == num_stages) {
        const BstNode* node = next;  // bailout: finish descent serially
        while (!VisitBstNode(node, st.key, rid, sink, &next)) node = next;
        st.active = false;
      } else {
        Prefetch(next);
        st.ptr = next;
      }
    }
    if (i < n) {
      pipe[i % window] = SppState{tree.root(), probe[begin + i].key, true};
      Prefetch(tree.root());
    }
  }
}

template <typename Sink>
void BstSearchAmac(const BinarySearchTree& tree, const Relation& probe,
                   uint64_t begin, uint64_t end, uint32_t num_inflight,
                   Sink& sink) {
  AMAC_CHECK(num_inflight >= 1);
  if (tree.root() == nullptr) return;
  struct AmacState {
    const BstNode* ptr;
    int64_t key;
    uint64_t rid;
    bool active;
  };
  std::vector<AmacState> s(num_inflight);
  uint64_t next_input = begin;
  uint32_t num_active = 0;
  for (uint32_t k = 0; k < num_inflight; ++k) {
    if (next_input < end) {
      s[k] = AmacState{tree.root(), probe[next_input].key, next_input, true};
      Prefetch(tree.root());
      ++next_input;
      ++num_active;
    } else {
      s[k].active = false;
    }
  }
  uint32_t k = 0;
  while (num_active > 0) {
    AmacState& st = s[k];
    if (st.active) {
      const BstNode* next = nullptr;
      if (!VisitBstNode(st.ptr, st.key, st.rid, sink, &next)) {
        Prefetch(next);
        st.ptr = next;
      } else if (next_input < end) {
        st = AmacState{tree.root(), probe[next_input].key, next_input, true};
        ++next_input;
      } else {
        st.active = false;
        --num_active;
      }
    }
    ++k;
    if (k == num_inflight) k = 0;
  }
}

}  // namespace amac
