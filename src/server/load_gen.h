// Open-loop load generation for the serving layer.
//
// The closed-loop clients in bench/ext_serving.cpp cannot overload the
// scheduler: each client waits for its previous query, so offered load
// self-throttles to completion rate and the queueing knee never shows.
// An OPEN-loop generator submits on an arrival schedule regardless of
// completions — push it past capacity and the admission queue grows
// without bound, which is exactly the regime SLO-aware admission
// (QuerySchedulerOptions::max_pending / shed_expired) exists for.
//
// Two layers, split so tests never need a wall clock:
//
//   * ArrivalProcess — a PURE schedule generator: Next() returns the
//     absolute arrival time (seconds since the stream start) of the next
//     query under a Poisson, bursty (on-off MMPP), or diurnal
//     (sinusoidally modulated Poisson) process.  Deterministic for a
//     fixed seed; tests/server/load_gen_test.cpp pins rates, burst
//     dispersion, and the diurnal shape on the schedule alone.
//   * LoadGenerator::Run — the real-time driver: sleeps until each
//     scheduled arrival, picks a tenant from the configured mix, and
//     invokes the submit callback.  The callback must not block (submit
//     to a bounded-pending scheduler returns immediately, possibly as a
//     rejection) or the generator stops being open-loop; Run reports the
//     worst scheduling lag so benches can verify the generator kept up.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace amac {

/// The arrival processes the generator can drive.
enum class ArrivalKind : uint8_t {
  kPoisson,  ///< memoryless, constant rate — the M/G/c textbook case
  kBursty,   ///< on-off MMPP: rate alternates between a burst rate and a
             ///< trough rate with exponential sojourns (same long-run mean)
  kDiurnal,  ///< nonhomogeneous Poisson, rate modulated by a sinusoid
};

inline const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

struct ArrivalOptions {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Long-run mean arrival rate (queries per second) for ALL kinds: bursty
  /// and diurnal modulate around this mean, they do not change it.
  double rate_qps = 100;
  // Bursty (on-off MMPP).  The on-state rate is rate_qps *
  // burst_multiplier; the off-state rate is derived so the long-run mean
  // stays rate_qps (clamped at 0 when the duty cycle cannot absorb the
  // burst — mean_rate_qps() reports the achieved mean).
  double burst_multiplier = 4.0;
  double burst_on_seconds = 0.05;   ///< mean sojourn in the burst state
  double burst_off_seconds = 0.20;  ///< mean sojourn in the trough state
  // Diurnal: rate(t) = rate_qps * (1 + amplitude * sin(2*pi*t / period)).
  double diurnal_amplitude = 0.8;  ///< in [0, 1]
  double diurnal_period_seconds = 1.0;
  uint64_t seed = 0xa2217a10ad5eedull;
};

/// Pure arrival-schedule generator: no clocks, no threads, deterministic
/// per seed.  Next() is strictly about WHEN; who/what arrives is the
/// caller's business.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalOptions& options);

  /// Absolute time (seconds since the stream start) of the next arrival;
  /// non-decreasing across calls.
  double Next();

  /// The achieved long-run mean rate (== rate_qps unless the bursty
  /// off-rate clamped at zero).
  double mean_rate_qps() const { return mean_rate_qps_; }

  const ArrivalOptions& options() const { return options_; }

 private:
  double Exponential(double rate);

  ArrivalOptions options_;
  Rng rng_;
  double now_ = 0;
  double mean_rate_qps_ = 0;
  // Bursty state.
  bool burst_on_ = false;
  double switch_at_ = 0;  ///< absolute time of the next state flip
  double on_rate_ = 0;
  double off_rate_ = 0;
  // Diurnal state.
  double rate_max_ = 0;  ///< thinning envelope: rate_qps * (1 + amplitude)
};

/// One entry of the per-tenant workload mix.
struct TenantMix {
  uint32_t tenant = 0;
  double share = 1.0;   ///< probability weight of an arrival being this tenant
  double weight = 1.0;  ///< fair-share weight to submit with
};

struct LoadGenOptions {
  ArrivalOptions arrival;
  double duration_seconds = 1.0;
  /// Hard cap on submissions regardless of duration (0 = no cap); a
  /// backstop so a misconfigured rate cannot flood a test run.
  uint64_t max_queries = 0;
  /// Tenant mix; empty means a single tenant {0, 1.0, 1.0}.
  std::vector<TenantMix> tenants;
  uint64_t mix_seed = 0x717e9a9731a45eedull;
};

struct LoadGenReport {
  uint64_t submitted = 0;
  double wall_seconds = 0;  ///< total driving time
  double offered_qps = 0;   ///< submitted / wall_seconds
  /// Worst (actual submit instant - scheduled arrival): how far the driver
  /// fell behind its own schedule.  A lag comparable to the mean gap means
  /// the submit callback blocked and the run was not truly open-loop.
  double max_lag_seconds = 0;
};

/// Real-time open-loop driver.
class LoadGenerator {
 public:
  /// Called once per arrival, on the driving thread.  MUST NOT block.
  using SubmitFn = std::function<void(uint64_t index, const TenantMix&)>;

  /// Drive `submit` on the caller's thread until duration (or max_queries)
  /// is reached.  Completion of the submitted work is not awaited — that
  /// is the point.
  static LoadGenReport Run(const LoadGenOptions& options,
                           const SubmitFn& submit);
};

}  // namespace amac
