#include "server/capacity_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace amac {

CapacityEstimate CapacityPlanner::FromCyclesPerInput(
    ExecPolicy policy, double cycles_per_input, uint64_t inputs_per_query,
    uint32_t workers, double tsc_hz) {
  AMAC_CHECK(tsc_hz > 0);
  CapacityEstimate estimate;
  estimate.policy = policy;
  estimate.cycles_per_input = cycles_per_input;
  estimate.service_seconds =
      cycles_per_input * static_cast<double>(inputs_per_query) / tsc_hz;
  estimate.capacity_qps =
      estimate.service_seconds > 0
          ? static_cast<double>(std::max(1u, workers)) /
                estimate.service_seconds
          : 0;
  return estimate;
}

CapacityEstimate CapacityPlanner::FromServiceSeconds(ExecPolicy policy,
                                                     double service_seconds,
                                                     uint32_t workers) {
  CapacityEstimate estimate;
  estimate.policy = policy;
  estimate.service_seconds = service_seconds;
  estimate.capacity_qps =
      service_seconds > 0
          ? static_cast<double>(std::max(1u, workers)) / service_seconds
          : 0;
  return estimate;
}

double CapacityPlanner::Utilization(double offered_qps,
                                    double service_seconds,
                                    uint32_t workers) {
  return offered_qps * service_seconds /
         static_cast<double>(std::max(1u, workers));
}

double CapacityPlanner::ExpectedWaitSeconds(double offered_qps,
                                            double service_seconds,
                                            uint32_t workers, double ca2,
                                            double cs2) {
  const double c = static_cast<double>(std::max(1u, workers));
  const double rho = Utilization(offered_qps, service_seconds, workers);
  if (rho <= 0) return 0;
  if (rho >= 1) return std::numeric_limits<double>::infinity();
  // Sakasegawa (1977): Wq ~= (ca2 + cs2)/2 *
  //   rho^(sqrt(2(c+1)) - 1) / (c (1 - rho)) * E[S]
  // Exact for M/M/1; within a few percent of Erlang-C elsewhere — plenty
  // for a 30%-band capacity gate.
  const double exponent = std::sqrt(2.0 * (c + 1.0)) - 1.0;
  return (ca2 + cs2) / 2.0 * std::pow(rho, exponent) / (c * (1.0 - rho)) *
         service_seconds;
}

double CapacityPlanner::MaxQpsForWait(double wait_budget_seconds,
                                      double service_seconds,
                                      uint32_t workers, double ca2,
                                      double cs2) {
  AMAC_CHECK(wait_budget_seconds > 0);
  if (service_seconds <= 0) return 0;
  const double capacity =
      static_cast<double>(std::max(1u, workers)) / service_seconds;
  // ExpectedWaitSeconds is monotone in offered_qps on (0, capacity), 0 at
  // 0 and +inf at capacity, so the budget crossing exists and bisection
  // converges unconditionally.
  double lo = 0, hi = capacity;
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = (lo + hi) / 2;
    if (ExpectedWaitSeconds(mid, service_seconds, workers, ca2, cs2) <=
        wait_budget_seconds) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace amac
