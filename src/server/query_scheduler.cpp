#include "server/query_scheduler.h"

#include <cmath>

#include "common/hash.h"

namespace amac {

namespace {

/// Nearest-rank percentile over an ascending-sorted sample vector.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const size_t idx = static_cast<size_t>(
      std::max(0.0, rank - 1));
  return sorted[std::min(idx, sorted.size() - 1)];
}

constexpr std::chrono::microseconds kWaitPoll{200};

}  // namespace

QueryScheduler::QueryScheduler(const QuerySchedulerOptions& options)
    : options_(options), pool_(std::max(1u, options.num_workers)) {
  options_.num_workers = pool_.size();
}

QueryScheduler::~QueryScheduler() { Drain(); }

void QueryScheduler::Enqueue(std::shared_ptr<detail::QueryState> state) {
  std::lock_guard<std::mutex> lock(mu_);
  state->seq = next_seq_++;
  ++submitted_;
  const uint32_t cap = options_.max_inflight_queries;
  if (cap == 0 || inflight_ < cap) {
    ++inflight_;
    LaunchLocked(state);
  } else {
    pending_.push_back(std::move(state));
  }
}

void QueryScheduler::LaunchLocked(
    const std::shared_ptr<detail::QueryState>& state) {
  // At most one pump task per morsel (each runs exactly one morsel before
  // requeueing), at most one per slot; an empty query still gets one task
  // so completion flows through the single finalize path.
  const uint32_t tasks = static_cast<uint32_t>(std::max<uint64_t>(
      1, std::min<uint64_t>(state->slots, state->num_morsels)));
  state->free_slots.clear();
  state->free_slots.reserve(state->slots);
  for (uint32_t s = 0; s < state->slots; ++s) state->free_slots.push_back(s);
  state->outstanding.store(tasks, std::memory_order_relaxed);
  for (uint32_t t = 0; t < tasks; ++t) {
    pool_.Submit([this, state] { Pump(state); });
  }
}

void QueryScheduler::Pump(const std::shared_ptr<detail::QueryState>& state) {
  if (!state->started.exchange(true)) {
    // First morsel of this query: close the queue-wait window and open the
    // execute window.  Later tasks racing here in the same instant skew
    // the split by at most one morsel start.
    state->queue_seconds = state->submit_timer.ElapsedSeconds();
    state->exec_timer.Restart();
    state->exec_cycles.Restart();
  }
  uint32_t slot;
  {
    std::lock_guard<std::mutex> lock(state->slot_mu);
    AMAC_CHECK(!state->free_slots.empty());
    slot = state->free_slots.back();
    state->free_slots.pop_back();
  }
  const bool ran = state->run_one_morsel(slot);
  {
    std::lock_guard<std::mutex> lock(state->slot_mu);
    state->free_slots.push_back(slot);
  }
  if (ran) {
    // Re-enqueue at the BACK of the shared queue: other queries' pending
    // morsels run before this query's next one (round-robin interleaving).
    pool_.Submit([this, state] { Pump(state); });
    return;
  }
  // Cursor exhausted: this pump chain dies.  The last chain finalizes.
  if (state->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Finish(state);
  }
}

void QueryScheduler::Finish(
    const std::shared_ptr<detail::QueryState>& state) {
  QueryStats result;
  result.run.inputs = state->num_inputs;
  result.run.threads = state->slots;
  state->collect(&result.run);
  // `started` is always true here (even empty queries run one pump task).
  result.queue_seconds = state->queue_seconds;
  result.run.seconds = state->exec_timer.ElapsedSeconds();
  result.run.cycles = state->exec_cycles.Elapsed();
  result.latency_seconds = state->submit_timer.ElapsedSeconds();
  result.run.dispatch_seconds = result.latency_seconds;

  {
    // Publish the per-query result and the scheduler-level accounting
    // atomically (a waiter that saw `done` must also see the updated
    // serving stats).  Lock order is unique to this site; nothing nests
    // the other way.
    std::scoped_lock lock(mu_, state->mu);
    AMAC_CHECK(inflight_ > 0);
    --inflight_;
    ++completed_;
    total_morsels_ += result.run.morsels;
    total_engine_.Merge(result.run.engine);
    total_queue_seconds_ += result.queue_seconds;
    total_execute_seconds_ += result.run.seconds;
    max_latency_seconds_ =
        std::max(max_latency_seconds_, result.latency_seconds);
    if (result.run.adaptive.active) {
      ++adaptive_queries_;
      if (result.run.adaptive.cache_hit) ++adaptive_cache_hits_;
      adaptive_tuning_switches_ += result.run.adaptive.tuning_switches;
      ++adaptive_chosen_counts_[StaticExecPolicyIndex(
          result.run.adaptive.chosen_policy)];
    }
    // Reservoir sampling (Algorithm R, deterministic hash in place of an
    // RNG): every completed query has a kLatencySampleCap/completed_
    // chance of being in the sample.
    if (latencies_.size() < kLatencySampleCap) {
      latencies_.push_back(result.latency_seconds);
    } else {
      const uint64_t j = Mix64(completed_ * 0x9e3779b97f4a7c15ull) %
                         completed_;
      if (j < kLatencySampleCap) {
        latencies_[j] = result.latency_seconds;
      }
    }
    const uint32_t cap = options_.max_inflight_queries;
    while ((cap == 0 || inflight_ < cap) && !pending_.empty()) {
      std::shared_ptr<detail::QueryState> next = PopPendingLocked();
      ++inflight_;
      LaunchLocked(next);
    }
    state->result = result;
    state->done = true;
  }
  state->cv.notify_all();
  drain_cv_.notify_all();
}

std::shared_ptr<detail::QueryState> QueryScheduler::PopPendingLocked() {
  AMAC_CHECK(!pending_.empty());
  auto it = pending_.begin();
  if (options_.order == AdmissionOrder::kPriority) {
    for (auto cand = pending_.begin(); cand != pending_.end(); ++cand) {
      if ((*cand)->priority > (*it)->priority) it = cand;
      // FIFO within a priority level: the deque is in seq order, so the
      // first element of the best level wins automatically.
    }
  }
  std::shared_ptr<detail::QueryState> state = std::move(*it);
  pending_.erase(it);
  return state;
}

QueryStats QueryScheduler::Wait(const QueryTicket& ticket) {
  AMAC_CHECK(ticket.valid());
  detail::QueryState& state = *ticket.state_;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      if (state.done) return state.result;
    }
    // Work-conserving wait: drain the shared queue instead of idling.
    if (pool_.TryRunTask()) continue;
    std::unique_lock<std::mutex> lock(state.mu);
    // Timed wait covers the race where a task was enqueued between the
    // failed TryRunTask and this wait; completion notifies immediately.
    state.cv.wait_for(lock, kWaitPoll, [&] { return state.done; });
    if (state.done) return state.result;
  }
}

bool QueryScheduler::Finished(const QueryTicket& ticket) const {
  AMAC_CHECK(ticket.valid());
  std::lock_guard<std::mutex> lock(ticket.state_->mu);
  return ticket.state_->done;
}

void QueryScheduler::Drain() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (completed_ == submitted_) return;
    }
    if (pool_.TryRunTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait_for(lock, kWaitPoll,
                       [&] { return completed_ == submitted_; });
    if (completed_ == submitted_) return;
  }
}

ServingStats QueryScheduler::serving_stats() const {
  ServingStats stats;
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.submitted = submitted_;
    stats.completed = completed_;
    stats.morsels = total_morsels_;
    stats.engine = total_engine_;
    stats.total_queue_seconds = total_queue_seconds_;
    stats.total_execute_seconds = total_execute_seconds_;
    stats.max_latency_seconds = max_latency_seconds_;
    stats.adaptive_queries = adaptive_queries_;
    stats.adaptive_cache_hits = adaptive_cache_hits_;
    stats.adaptive_tuning_switches = adaptive_tuning_switches_;
    stats.adaptive_chosen_counts = adaptive_chosen_counts_;
    sorted = latencies_;
  }
  std::sort(sorted.begin(), sorted.end());
  stats.p50_latency_seconds = Percentile(sorted, 0.50);
  stats.p95_latency_seconds = Percentile(sorted, 0.95);
  stats.p99_latency_seconds = Percentile(sorted, 0.99);
  return stats;
}

}  // namespace amac
