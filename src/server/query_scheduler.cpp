#include "server/query_scheduler.h"

#include <cmath>

namespace amac {

namespace {

constexpr std::chrono::microseconds kWaitPoll{200};

}  // namespace

QueryScheduler::QueryScheduler(const QuerySchedulerOptions& options)
    : options_(options),
      latencies_(kLatencySampleCap, options.reservoir_seed),
      pool_(std::max(1u, options.num_workers)) {
  options_.num_workers = pool_.size();
}

QueryScheduler::~QueryScheduler() { Drain(); }

void QueryScheduler::Enqueue(std::shared_ptr<detail::QueryState> state) {
  bool reject = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->seq = next_seq_++;
    ++submitted_;
    TenantBook& book = tenants_[state->tenant];
    ++book.submitted;
    book.weight = state->tenant_weight;
    const uint32_t cap = options_.max_inflight_queries;
    if (cap == 0 || inflight_ < cap) {
      ++inflight_;
      ++book.admitted;
      MaybeDegradeLocked(*state);
      LaunchLocked(state);
      return;
    }
    if (options_.max_pending > 0 &&
        pending_.size() >= options_.max_pending) {
      reject = true;  // finalize outside mu_ (FinalizeUnlaunched retakes it)
    } else {
      pending_.push_back(std::move(state));
    }
  }
  if (reject) FinalizeUnlaunched(state, QueryOutcome::kRejected);
}

void QueryScheduler::LaunchLocked(
    const std::shared_ptr<detail::QueryState>& state) {
  // At most one pump task per morsel (each runs exactly one morsel before
  // requeueing), at most one per slot; an empty query still gets one task
  // so completion flows through the single finalize path.
  const uint32_t tasks = static_cast<uint32_t>(std::max<uint64_t>(
      1, std::min<uint64_t>(state->slots, state->num_morsels)));
  state->free_slots.clear();
  state->free_slots.reserve(state->slots);
  for (uint32_t s = 0; s < state->slots; ++s) state->free_slots.push_back(s);
  state->outstanding.store(tasks, std::memory_order_relaxed);
  for (uint32_t t = 0; t < tasks; ++t) {
    pool_.Submit([this, state] { Pump(state); });
  }
}

void QueryScheduler::Pump(const std::shared_ptr<detail::QueryState>& state) {
  if (!state->started.exchange(true)) {
    // First morsel of this query: close the queue-wait window and open the
    // execute window.  Later tasks racing here in the same instant skew
    // the split by at most one morsel start.
    state->queue_seconds = state->submit_timer.ElapsedSeconds();
    state->exec_timer.Restart();
    state->exec_cycles.Restart();
  }
  uint32_t slot;
  {
    std::lock_guard<std::mutex> lock(state->slot_mu);
    AMAC_CHECK(!state->free_slots.empty());
    slot = state->free_slots.back();
    state->free_slots.pop_back();
  }
  const bool ran = state->run_one_morsel(slot);
  {
    std::lock_guard<std::mutex> lock(state->slot_mu);
    state->free_slots.push_back(slot);
  }
  if (ran) {
    // Re-enqueue at the BACK of the shared queue: other queries' pending
    // morsels run before this query's next one (round-robin interleaving).
    pool_.Submit([this, state] { Pump(state); });
    return;
  }
  // Cursor exhausted: this pump chain dies.  The last chain finalizes.
  if (state->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Finish(state);
  }
}

void QueryScheduler::Finish(
    const std::shared_ptr<detail::QueryState>& state) {
  QueryStats result;
  result.run.inputs = state->num_inputs;
  result.run.threads = state->slots;
  state->collect(&result.run);
  // `started` is always true here (even empty queries run one pump task).
  result.queue_seconds = state->queue_seconds;
  result.run.seconds = state->exec_timer.ElapsedSeconds();
  result.run.cycles = state->exec_cycles.Elapsed();
  result.latency_seconds = state->submit_timer.ElapsedSeconds();
  result.run.dispatch_seconds = result.latency_seconds;
  result.outcome = QueryOutcome::kServed;
  result.deadline_seconds = state->deadline_seconds;
  result.deadline_met = state->deadline_seconds == 0 ||
                        result.latency_seconds <= state->deadline_seconds;
  result.policy_degraded = state->degraded.load(std::memory_order_relaxed);

  // Drop the typed execution state NOW, not when the last ticket copy
  // dies: the per-slot ops behind these closures own real resources
  // (sinks, and for the concurrent write path an epoch participant slot
  // each), and a client holding tickets of many completed queries must
  // not pin them — a few hundred live EpochGuards would exhaust the
  // EpochManager's participant table and wedge every later query.
  state->run_one_morsel = nullptr;
  state->collect = nullptr;

  std::vector<std::shared_ptr<detail::QueryState>> shed;
  {
    // Publish the per-query result and the scheduler-level accounting
    // atomically (a waiter that saw `done` must also see the updated
    // serving stats).  Lock order is unique to this site; nothing nests
    // the other way.
    std::scoped_lock lock(mu_, state->mu);
    AMAC_CHECK(inflight_ > 0);
    --inflight_;
    ++completed_;
    TenantBook& book = tenants_[state->tenant];
    ++book.completed;
    if (result.deadline_met) {
      ++goodput_queries_;
      ++book.goodput;
    } else {
      ++deadline_missed_;
    }
    total_morsels_ += result.run.morsels;
    total_engine_.Merge(result.run.engine);
    total_queue_seconds_ += result.queue_seconds;
    total_execute_seconds_ += result.run.seconds;
    max_latency_seconds_ =
        std::max(max_latency_seconds_, result.latency_seconds);
    if (result.run.adaptive.active) {
      ++adaptive_queries_;
      if (result.run.adaptive.cache_hit) ++adaptive_cache_hits_;
      adaptive_tuning_switches_ += result.run.adaptive.tuning_switches;
      ++adaptive_chosen_counts_[StaticExecPolicyIndex(
          result.run.adaptive.chosen_policy)];
    }
    latencies_.Add(result.latency_seconds);
    AdmitPendingLocked(&shed);
    state->result = result;
    state->done = true;
  }
  state->cv.notify_all();
  drain_cv_.notify_all();
  for (const auto& dropped : shed) {
    FinalizeUnlaunched(dropped, QueryOutcome::kShed);
  }
}

void QueryScheduler::AdmitPendingLocked(
    std::vector<std::shared_ptr<detail::QueryState>>* shed) {
  const uint32_t cap = options_.max_inflight_queries;
  while ((cap == 0 || inflight_ < cap) && !pending_.empty()) {
    std::shared_ptr<detail::QueryState> next = PopPendingLocked();
    if (options_.shed_expired && next->deadline_seconds > 0 &&
        next->submit_timer.ElapsedSeconds() > next->deadline_seconds) {
      // Already past its SLO: launching it would burn workers on a reply
      // nobody can use.  Shed it and keep admitting.
      shed->push_back(std::move(next));
      continue;
    }
    ++inflight_;
    ++tenants_[next->tenant].admitted;
    MaybeDegradeLocked(*next);
    LaunchLocked(next);
  }
}

void QueryScheduler::MaybeDegradeLocked(detail::QueryState& state) {
  const uint32_t threshold = options_.degrade_pending_threshold;
  if (threshold == 0 || !state.degradable) return;
  if (pending_.size() < threshold) return;
  if (!state.degraded.exchange(true, std::memory_order_relaxed)) {
    ++degraded_;
  }
}

uint64_t QueryScheduler::DeadlineCappedMorsel(
    uint64_t derived, const WorkloadSignature& sig, uint64_t num_inputs,
    const QueryOptions& options) const {
  const double fraction = options_.deadline_morsel_fraction;
  if (fraction <= 0 || options.deadline_seconds <= 0) return derived;
  // Validate the prior against the relation actually submitted: a pinned
  // signature reused across relation sizes must not size morsels off a
  // calibration taken at a different cardinality.
  const double cpi = calibrator_.PeekCyclesPerInput(sig, num_inputs);
  if (cpi <= 0) return derived;  // not calibrated yet: keep the default
  static const double tsc_hz = EstimateTscHz();
  const double budget_inputs =
      options.deadline_seconds * fraction * tsc_hz / cpi;
  // Floor well above the widest in-flight window so the cap cannot turn
  // every morsel into pure fill/drain ramp.
  constexpr uint64_t kMinMorsel = 32;
  if (budget_inputs <= static_cast<double>(kMinMorsel)) {
    return std::min(derived, kMinMorsel);
  }
  return std::min(derived, static_cast<uint64_t>(budget_inputs));
}

void QueryScheduler::FinalizeUnlaunched(
    const std::shared_ptr<detail::QueryState>& state, QueryOutcome outcome) {
  QueryStats result;  // run stays all-zero: nothing executed
  result.outcome = outcome;
  result.deadline_seconds = state->deadline_seconds;
  result.deadline_met = false;
  result.latency_seconds = state->submit_timer.ElapsedSeconds();
  // Same early release as Finish: nothing will ever execute, so the typed
  // state (op factory captures and all) has no reason to outlive this.
  state->run_one_morsel = nullptr;
  state->collect = nullptr;
  {
    std::scoped_lock lock(mu_, state->mu);
    TenantBook& book = tenants_[state->tenant];
    if (outcome == QueryOutcome::kRejected) {
      ++rejected_;
      ++book.rejected;
    } else {
      ++shed_;
      ++book.shed;
    }
    state->result = result;
    state->done = true;
  }
  state->cv.notify_all();
  drain_cv_.notify_all();
}

std::shared_ptr<detail::QueryState> QueryScheduler::PopPendingLocked() {
  AMAC_CHECK(!pending_.empty());
  // Effective priority with aging: queue wait buys points, so starvation
  // under kPriority / the kFairShare tie-break is bounded.
  const double aging = options_.priority_aging_per_second;
  const auto aged_priority = [aging](const detail::QueryState& s) {
    return static_cast<double>(s.priority) +
           (aging > 0 ? aging * s.submit_timer.ElapsedSeconds() : 0.0);
  };
  auto it = pending_.begin();
  switch (options_.order) {
    case AdmissionOrder::kFifo:
      break;  // deque is in seq order
    case AdmissionOrder::kPriority: {
      double best = aged_priority(**it);
      for (auto cand = std::next(pending_.begin()); cand != pending_.end();
           ++cand) {
        const double p = aged_priority(**cand);
        // Strictly-greater keeps FIFO within a level: the deque is in seq
        // order, so the first element of the best level wins.
        if (p > best) {
          best = p;
          it = cand;
        }
      }
      break;
    }
    case AdmissionOrder::kDeadline: {
      // EDF over remaining slack; deadline-free queries sort last (FIFO
      // among themselves via the strict < and seq-ordered deque).
      const auto remaining = [](const detail::QueryState& s) {
        return s.deadline_seconds > 0
                   ? s.deadline_seconds - s.submit_timer.ElapsedSeconds()
                   : std::numeric_limits<double>::infinity();
      };
      double best = remaining(**it);
      for (auto cand = std::next(pending_.begin()); cand != pending_.end();
           ++cand) {
        const double r = remaining(**cand);
        if (r < best) {
          best = r;
          it = cand;
        }
      }
      break;
    }
    case AdmissionOrder::kFairShare: {
      // Least weight-normalized admitted work first; aged priority then
      // seq (deque order) break ties.
      const auto share = [this](const detail::QueryState& s) {
        const auto found = tenants_.find(s.tenant);
        const double admitted =
            found == tenants_.end()
                ? 0.0
                : static_cast<double>(found->second.admitted);
        return admitted / s.tenant_weight;
      };
      double best_share = share(**it);
      double best_priority = aged_priority(**it);
      for (auto cand = std::next(pending_.begin()); cand != pending_.end();
           ++cand) {
        const double s = share(**cand);
        const double p = aged_priority(**cand);
        if (s < best_share ||
            (s == best_share && p > best_priority)) {
          best_share = s;
          best_priority = p;
          it = cand;
        }
      }
      break;
    }
  }
  std::shared_ptr<detail::QueryState> state = std::move(*it);
  pending_.erase(it);
  return state;
}

QueryStats QueryScheduler::Wait(const QueryTicket& ticket) {
  AMAC_CHECK(ticket.valid());
  detail::QueryState& state = *ticket.state_;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      if (state.done) return state.result;
    }
    // Work-conserving wait: drain the shared queue instead of idling.
    if (pool_.TryRunTask()) continue;
    std::unique_lock<std::mutex> lock(state.mu);
    // Timed wait covers the race where a task was enqueued between the
    // failed TryRunTask and this wait; completion notifies immediately.
    state.cv.wait_for(lock, kWaitPoll, [&] { return state.done; });
    if (state.done) return state.result;
  }
}

bool QueryScheduler::Finished(const QueryTicket& ticket) const {
  AMAC_CHECK(ticket.valid());
  std::lock_guard<std::mutex> lock(ticket.state_->mu);
  return ticket.state_->done;
}

void QueryScheduler::Drain() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (AllDoneLocked()) return;
    }
    if (pool_.TryRunTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait_for(lock, kWaitPoll, [&] { return AllDoneLocked(); });
    if (AllDoneLocked()) return;
  }
}

ServingStats QueryScheduler::serving_stats() const {
  ServingStats stats;
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.submitted = submitted_;
    stats.completed = completed_;
    stats.rejected = rejected_;
    stats.shed = shed_;
    stats.goodput_queries = goodput_queries_;
    stats.deadline_missed = deadline_missed_;
    stats.degraded_queries = degraded_;
    stats.morsels = total_morsels_;
    stats.engine = total_engine_;
    stats.inflight = inflight_;
    stats.pending = pending_.size();
    stats.total_queue_seconds = total_queue_seconds_;
    stats.total_execute_seconds = total_execute_seconds_;
    stats.max_latency_seconds = max_latency_seconds_;
    stats.adaptive_queries = adaptive_queries_;
    stats.adaptive_cache_hits = adaptive_cache_hits_;
    stats.adaptive_tuning_switches = adaptive_tuning_switches_;
    stats.adaptive_chosen_counts = adaptive_chosen_counts_;
    stats.tenants.reserve(tenants_.size());
    for (const auto& [tenant, book] : tenants_) {
      TenantServingStats t;
      t.tenant = tenant;
      t.weight = book.weight;
      t.submitted = book.submitted;
      t.completed = book.completed;
      t.rejected = book.rejected;
      t.shed = book.shed;
      t.goodput_queries = book.goodput;
      stats.tenants.push_back(t);
    }
    sorted = latencies_.Sorted();
  }
  stats.p50_latency_seconds = PercentileOfSorted(sorted, 0.50);
  stats.p95_latency_seconds = PercentileOfSorted(sorted, 0.95);
  stats.p99_latency_seconds = PercentileOfSorted(sorted, 0.99);
  return stats;
}

}  // namespace amac
