// Concurrent multi-query serving: a shared-pool scheduler with admission
// control.
//
// The paper's interleaving keeps ONE query's dependent misses overlapped;
// a serving system has many queries in flight at once.  Executor::Run()
// occupies its whole thread team fork-join style, so two queries can only
// run back to back.  QueryScheduler multiplexes instead: every admitted
// query is chopped into morsels, and each in-flight morsel is one task on
// one shared common/ThreadPool — tasks re-enqueue themselves to the BACK of
// the FIFO queue after each morsel, so morsels from different queries
// round-robin across the same workers and a long scan cannot starve a
// point-lookup query.
//
//   QueryScheduler sched({.num_workers = 8, .max_inflight_queries = 4});
//   QueryTicket a = Submit(sched, Scan(s).Then(Probe(table)), options);
//   QueryTicket b = Submit(sched, Walks(graph, 1 << 20, 16, 7), options);
//   QueryStats qa = sched.Wait(a);   // Wait() helps drain the task queue
//
// Admission control: at most `max_inflight_queries` queries execute
// concurrently; the rest wait in a FIFO or priority-ordered admission
// queue (the `order` knob).  Per-query QueryStats split latency into
// queue-wait vs execute time; scheduler-level ServingStats aggregate
// p50/p95/p99 latency across completed queries — the latency-under-load
// accounting bench/ext_serving.cpp drives.
//
// Threading model: the pool's `size() - 1` workers drain the task queue;
// client threads blocked in Wait() also pump tasks (work-conserving), so a
// scheduler over a 1-thread pool still makes progress.  Per-query
// parallelism is bounded by execution *slots*: `make_op(slot)` is called
// lazily, at most once per slot, with slot < slots(); a slot is held
// exclusively while one of the query's morsels runs, which is what lets
// op factories keep the familiar per-thread-sink discipline.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <typeinfo>
#include <utility>
#include <vector>

#include "adaptive/calibrator.h"
#include "adaptive/governor.h"
#include "adaptive/signature.h"
#include "common/cycle_timer.h"
#include "common/macros.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/parallel_driver.h"
#include "core/run_stats.h"
#include "core/scheduler.h"

namespace amac {

/// How the admission queue orders queries waiting for an inflight slot.
enum class AdmissionOrder : uint8_t {
  kFifo,      ///< submission order; priorities ignored
  kPriority,  ///< higher QueryOptions::priority first, FIFO within a level
              ///< (aged by priority_aging_per_second when configured)
  kDeadline,  ///< earliest absolute deadline first (EDF); no-deadline
              ///< queries admit last, FIFO among themselves
  kFairShare, ///< tenant with the least weight-normalized admitted work
              ///< first; aged priority then FIFO break ties
};

struct QuerySchedulerOptions {
  /// Thread-team size (including the slot client threads fill by pumping
  /// in Wait()); clamped to >= 1.
  uint32_t num_workers = 1;
  /// Queries executing concurrently before submissions queue up in the
  /// admission queue; 0 = unbounded.
  uint32_t max_inflight_queries = 0;
  AdmissionOrder order = AdmissionOrder::kFifo;
  /// Bound on the admission queue: a submission arriving with this many
  /// queries already pending is REJECTED immediately (outcome kRejected)
  /// instead of queueing forever — the load-shedding half of SLO-aware
  /// serving.  0 = unbounded (the closed-loop default).
  uint32_t max_pending = 0;
  /// Shed pending queries whose deadline already expired at the moment
  /// they would be admitted (outcome kShed): work that cannot possibly
  /// meet its SLO is dropped instead of wasting workers.  Queries without
  /// a deadline are never shed.
  bool shed_expired = false;
  /// Priority aging: a queued query's effective priority grows by this
  /// many points per second of admission-queue wait, so low-priority work
  /// cannot starve under kPriority / kFairShare tie-breaks.  0 disables.
  double priority_aging_per_second = 0;
  /// Pressure-based policy degrade (the soft tier between serving normally
  /// and rejecting/shedding): when a query is admitted while at least this
  /// many queries wait in the admission queue, its static policy is
  /// swapped for `degrade_policy` — typically a cheaper schedule that
  /// trades per-query speed for lower scheduling overhead under overload.
  /// Governed (kAdaptive) queries are never degraded (the governor already
  /// picks per-morsel).  0 disables.
  uint32_t degrade_pending_threshold = 0;
  ExecPolicy degrade_policy = ExecPolicy::kSequential;
  /// Latency-budget-aware morsel sizing: when a static-policy query has a
  /// deadline and its workload signature has a calibrated cycles-per-input
  /// (the shared Calibrator), cap its morsel so one morsel costs at most
  /// this fraction of the deadline — a query whose SLO is tight gets finer
  /// interleaving granules, so it cannot be stuck behind its own oversized
  /// morsel.  The cap only shrinks the derived size, never grows it, and
  /// explicit QueryOptions::morsel_size wins outright.  0 disables.
  double deadline_morsel_fraction = 0;
  /// Seed of the latency reservoir's RNG stream (deterministic stats for
  /// a fixed completion sequence).
  uint64_t reservoir_seed = 0x5e71e5a7f0e57a75ull;
};

/// Per-query execution configuration (the Executor's ExecConfig knobs plus
/// serving-level ones).
struct QueryOptions {
  ExecPolicy policy = ExecPolicy::kAmac;
  SchedulerParams params;
  /// Inputs per morsel; 0 derives one (ResolveMorselSize).  Morsel size is
  /// also the interleaving granule: smaller morsels = fairer sharing,
  /// more scheduling overhead.
  uint64_t morsel_size = 0;
  /// Under AdmissionOrder::kPriority, higher admits first.
  int32_t priority = 0;
  /// Client-observed latency SLO in seconds, measured submit-to-complete;
  /// 0 = none.  A deadline never aborts a running query — it drives EDF
  /// admission (kDeadline), expiry shedding (shed_expired), and the
  /// goodput/deadline-miss accounting in QueryStats / ServingStats.
  double deadline_seconds = 0;
  /// Tenant id for per-tenant accounting and kFairShare admission.
  uint32_t tenant = 0;
  /// Fair-share weight of this tenant (kFairShare normalizes admitted
  /// query counts by it); the last submitted value wins per tenant.
  double tenant_weight = 1.0;
  /// Cap on this query's concurrent morsels (execution slots); 0 = the
  /// scheduler's num_workers.
  uint32_t max_slots = 0;
  /// Under ExecPolicy::kAdaptive: the governor's tuning knobs.
  AdaptiveConfig adaptive;
  /// Under ExecPolicy::kAdaptive: calibration-cache key.  Invalid (the
  /// default) derives one from the operation type + input cardinality +
  /// per-lookup state size; set explicitly when the same op type runs over
  /// structurally different data.
  WorkloadSignature signature;
};

/// What Wait() returns: the familiar RunStats plus the serving split of
/// this query's latency.  run.seconds covers first-morsel to completion
/// (execute span); queue_seconds covers submit to first morsel (admission
/// wait + time behind other queries' morsels); latency_seconds is the
/// client-observed total (== run.dispatch_seconds).
/// Rejected/shed queries come back with outcome != kServed, an all-zero
/// `run`, and latency_seconds = submit-to-decision (so callers can account
/// the refusal cost); they never appear in ServingStats latency
/// percentiles or counter sums.
struct QueryStats {
  RunStats run;
  double queue_seconds = 0;
  double latency_seconds = 0;
  QueryOutcome outcome = QueryOutcome::kServed;
  double deadline_seconds = 0;  ///< the query's SLO (0 = none)
  /// Served within its deadline (always true for deadline-free served
  /// queries, always false for rejected/shed ones).
  bool deadline_met = true;
  /// This query ran under the scheduler's degrade_policy (admitted while
  /// the admission queue was past degrade_pending_threshold).
  bool policy_degraded = false;
};

/// Per-tenant slice of the serving accounting (kFairShare bookkeeping and
/// the multi-tenant bench sections).
struct TenantServingStats {
  uint32_t tenant = 0;
  double weight = 1.0;       ///< last submitted tenant_weight
  uint64_t submitted = 0;
  uint64_t completed = 0;    ///< served to completion
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t goodput_queries = 0;  ///< served AND met deadline (or had none)
};

/// Scheduler-level accounting over completed queries.  Latency
/// percentiles are computed over a bounded reservoir sample (uniform over
/// all completed queries), so a long-lived scheduler stays O(1) in memory
/// and serving_stats() cost no matter how many queries it has served;
/// max_latency_seconds is an exact running maximum, not sampled.
struct ServingStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;     ///< served to completion
  uint64_t rejected = 0;      ///< refused at submit (admission queue full)
  uint64_t shed = 0;          ///< dropped pending (deadline expired)
  /// Served queries that met their deadline, plus served queries with no
  /// deadline.  goodput-under-SLO — the headline serving metric — is this
  /// over the measurement window, NOT completed/window: a reply after its
  /// deadline is useless work.
  uint64_t goodput_queries = 0;
  uint64_t deadline_missed = 0;  ///< served, but past the deadline
  /// Queries admitted under pressure with their policy downgraded to the
  /// scheduler's degrade_policy (degrade_pending_threshold crossed).
  uint64_t degraded_queries = 0;
  uint64_t morsels = 0;       ///< morsels executed, all completed queries
  EngineStats engine;         ///< merged scheduling counters, ditto
  /// Racy point-in-time queue depths (observability only).
  uint64_t inflight = 0;
  uint64_t pending = 0;
  // Latency percentiles cover SERVED queries only: a rejected query's
  // submit-to-refusal time is not a service latency (it is accounted in
  // `rejected`), and folding refusals in would make shedding look like a
  // latency win twice over.
  double p50_latency_seconds = 0;
  double p95_latency_seconds = 0;
  double p99_latency_seconds = 0;
  double max_latency_seconds = 0;
  double total_queue_seconds = 0;    ///< sum of per-query queue waits
  double total_execute_seconds = 0;  ///< sum of per-query execute spans
  /// Per-tenant slices, ascending tenant id (only tenants seen).
  std::vector<TenantServingStats> tenants;
  // Adaptive-execution accounting (kAdaptive queries only).
  uint64_t adaptive_queries = 0;     ///< completed governed queries
  uint64_t adaptive_cache_hits = 0;  ///< of those, calibration-cache hits
  uint64_t adaptive_tuning_switches = 0;  ///< summed winner changes
  /// How often each static policy ended up the governed choice, indexed by
  /// StaticExecPolicyIndex.
  std::array<uint64_t, kNumStaticExecPolicies> adaptive_chosen_counts{};
};

namespace detail {

/// Type-erased shared state of one submitted query.  The typed morsel
/// runner (one per Submit call) lives behind run_one_morsel; everything the
/// scheduler itself touches is virtual-free plain data.
struct QueryState {
  // Immutable after Submit().
  uint64_t num_inputs = 0;
  uint64_t num_morsels = 0;  ///< bounds the pump-task fan-out
  uint32_t slots = 0;
  int32_t priority = 0;
  double deadline_seconds = 0;  ///< relative to submit; 0 = none
  uint32_t tenant = 0;
  double tenant_weight = 1.0;
  uint64_t seq = 0;  ///< submission order, ties under kPriority
  /// Static non-degrade policy, so pressure degrade applies (immutable).
  bool degradable = false;
  /// Set (under the scheduler's mu_) at admission when the queue is past
  /// degrade_pending_threshold; read by every morsel of the query.
  std::atomic<bool> degraded{false};
  /// Run one morsel on the given slot; false once the cursor is exhausted.
  std::function<bool(uint32_t)> run_one_morsel;
  /// Fold per-slot sinks/engine counters into the final RunStats.
  std::function<void(RunStats*)> collect;

  // Slot free-list (guarded by slot_mu).
  std::mutex slot_mu;
  std::vector<uint32_t> free_slots;

  /// Pump tasks still alive for this query; the task that observes the
  /// final decrement finalizes the query.
  std::atomic<uint32_t> outstanding{0};

  // Timing.  submit_timer starts in Submit(); the first morsel task
  // restarts exec timers (exchange on `started` picks the winner).
  WallTimer submit_timer;
  std::atomic<bool> started{false};
  double queue_seconds = 0;   ///< written by the starter, read after done
  WallTimer exec_timer;       ///< restarted by the starter
  CycleTimer exec_cycles;     ///< restarted by the starter

  // Completion.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;  ///< guarded by mu
  QueryStats result;  ///< valid once done
};

}  // namespace detail

/// Future-style handle to a submitted query; pass to Wait()/Finished().
/// Copyable; all copies refer to the same query.
class QueryTicket {
 public:
  QueryTicket() = default;

  bool valid() const { return state_ != nullptr; }

 private:
  friend class QueryScheduler;
  explicit QueryTicket(std::shared_ptr<detail::QueryState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::QueryState> state_;
};

class QueryScheduler {
 public:
  explicit QueryScheduler(const QuerySchedulerOptions& options);
  /// Drains: blocks until every submitted query completed.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  uint32_t num_workers() const { return pool_.size(); }
  const QuerySchedulerOptions& options() const { return options_; }
  ThreadPool& pool() { return pool_; }
  /// The shared calibration cache governed (kAdaptive) queries consult; a
  /// repeated query shape calibrates once per scheduler lifetime.
  Calibrator& calibrator() { return calibrator_; }

  /// Execution slots a query submitted with `options` will get (what sizes
  /// a per-slot sink array).
  uint32_t SlotCount(const QueryOptions& options) const {
    const uint32_t cap = options.max_slots == 0
                             ? pool_.size()
                             : std::min(options.max_slots, pool_.size());
    return std::max(1u, cap);
  }

  /// Submit a query as (num_inputs, per-slot operation factory): the same
  /// contract as Executor::RunOp, except `make_op(slot)` is invoked lazily
  /// with slot < SlotCount(options) instead of a thread id.  `collect`
  /// (optional) folds per-slot sinks into the final RunStats after the last
  /// morsel (outputs/checksum); it runs exactly once, race-free.
  /// The factory must tolerate outliving the Submit call (it is copied).
  template <typename OpFactory>
  QueryTicket SubmitOp(uint64_t num_inputs, OpFactory make_op,
                       const QueryOptions& options,
                       std::function<void(RunStats*)> collect = nullptr) {
    using OpType = std::decay_t<decltype(make_op(0u))>;
    auto state = std::make_shared<detail::QueryState>();
    state->num_inputs = num_inputs;
    state->slots = SlotCount(options);
    state->priority = options.priority;
    state->deadline_seconds = std::max(0.0, options.deadline_seconds);
    state->tenant = options.tenant;
    state->tenant_weight =
        options.tenant_weight > 0 ? options.tenant_weight : 1.0;
    // The signature keys the calibration cache for governed queries AND
    // the deadline-aware morsel cap for static ones (a governed run of the
    // same query shape leaves the cycles-per-input a later static query's
    // sizing peeks at).
    const WorkloadSignature signature =
        options.signature.valid()
            ? options.signature
            : WorkloadSignature::Make(
                  typeid(OpType).name(), num_inputs,
                  static_cast<uint32_t>(sizeof(typename OpType::State)));
    // Governed queries: build the per-query governor and morselize finer,
    // so the calibration tournament has enough claims to run on.
    std::shared_ptr<QueryGovernor> governor;
    uint64_t morsel_size;
    if (options.policy == ExecPolicy::kAdaptive) {
      governor = std::make_shared<QueryGovernor>(
          options.adaptive, &calibrator_, signature,
          options.params.stages, num_inputs);
      morsel_size = options.morsel_size > 0
                        ? options.morsel_size
                        : AdaptiveMorselSize(num_inputs, state->slots,
                                             options.adaptive);
    } else {
      morsel_size = ResolveMorselSize(
          num_inputs, state->slots, options.morsel_size,
          std::max(1u, options.params.inflight));
      if (options.morsel_size == 0) {
        morsel_size =
            DeadlineCappedMorsel(morsel_size, signature, num_inputs, options);
      }
      state->degradable = options.policy != options_.degrade_policy;
    }
    state->num_morsels = (num_inputs + morsel_size - 1) / morsel_size;

    struct Slot {
      std::optional<OpType> op;
      EngineStats engine;
      uint64_t morsels = 0;
      PerfCounters::Sample hw;  ///< per-morsel samples, accumulated
    };
    struct Typed {
      OpFactory make_op;
      MorselCursor cursor;
      ExecPolicy policy;
      SchedulerParams params;
      std::shared_ptr<QueryGovernor> governor;  ///< null on static policies
      std::vector<Slot> slots;
      Typed(OpFactory factory, uint64_t total, uint64_t morsel,
            const QueryOptions& options, uint32_t num_slots)
          : make_op(std::move(factory)),
            cursor(total, morsel),
            policy(options.policy),
            params(options.params),
            slots(num_slots) {}
    };
    auto typed = std::make_shared<Typed>(std::move(make_op), num_inputs,
                                         morsel_size, options, state->slots);
    typed->governor = std::move(governor);
    // Raw back-pointer, not the shared_ptr: the closure is stored inside
    // the state it points at (a shared_ptr capture would be a cycle), and
    // it only runs while the state is alive.
    detail::QueryState* const qs = state.get();
    const ExecPolicy degrade_policy = options_.degrade_policy;
    state->run_one_morsel = [typed, qs, degrade_policy](uint32_t slot_id) {
      Range morsel;
      if (!typed->cursor.Next(&morsel)) return false;
      Slot& slot = typed->slots[slot_id];
      if (!slot.op) slot.op.emplace(typed->make_op(slot_id));
      OffsetOp<typename decltype(slot.op)::value_type> rebased(*slot.op,
                                                               morsel.begin);
      if (typed->governor) {
        const QueryGovernor::Choice choice = typed->governor->Acquire();
        // Per-morsel hardware sampling: counters attach to the calling
        // thread, and on this path the morsel runs inline on it, so the
        // governed loop can consume LLC-miss/stall evidence the fork-join
        // path only gets single-threaded.  Free when the kernel forbids
        // perf_event_open (available() is a cached bool).
        static thread_local PerfCounters counters;
        const bool sample_hw = counters.available();
        if (sample_hw) counters.Start();
        CycleTimer timer;
        slot.engine.Merge(
            Run(choice.policy, choice.params, rebased, morsel.size()));
        const uint64_t elapsed = timer.Elapsed();
        if (sample_hw) {
          const PerfCounters::Sample hw = counters.Stop();
          slot.hw.Merge(hw);
          typed->governor->Report(choice, morsel.size(), elapsed, &hw);
        } else {
          typed->governor->Report(choice, morsel.size(), elapsed);
        }
      } else {
        const ExecPolicy policy =
            qs->degraded.load(std::memory_order_relaxed) ? degrade_policy
                                                         : typed->policy;
        slot.engine.Merge(
            Run(policy, typed->params, rebased, morsel.size()));
      }
      ++slot.morsels;
      return true;
    };
    state->collect = [typed, collect](RunStats* run) {
      for (const Slot& slot : typed->slots) {
        run->engine.Merge(slot.engine);
        run->morsels += slot.morsels;
        run->perf.Merge(slot.hw);
      }
      if (typed->governor) typed->governor->Finalize(&run->adaptive);
      if (collect) collect(run);
    };
    QueryTicket ticket(state);
    Enqueue(std::move(state));
    return ticket;
  }

  /// Block until the query completes; helps drain the task queue while
  /// waiting, so Wait() never idles a core the scheduler could use.
  QueryStats Wait(const QueryTicket& ticket);

  /// Non-blocking completion check.
  bool Finished(const QueryTicket& ticket) const;

  /// Block until every query submitted so far has completed.
  void Drain();

  /// Snapshot of the scheduler-level accounting (completed queries only).
  ServingStats serving_stats() const;

 private:
  /// Per-tenant bookkeeping behind ServingStats::tenants (guarded by mu_).
  struct TenantBook {
    double weight = 1.0;
    uint64_t submitted = 0;
    uint64_t admitted = 0;  ///< launched (the kFairShare deficit counter)
    uint64_t completed = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    uint64_t goodput = 0;
  };

  /// Queue the query for admission (admit immediately, queue, or reject).
  void Enqueue(std::shared_ptr<detail::QueryState> state);
  /// Launch the pump tasks of an admitted query.  Called under mu_.
  void LaunchLocked(const std::shared_ptr<detail::QueryState>& state);
  /// One pump step: run one morsel, resubmit or finalize.
  void Pump(const std::shared_ptr<detail::QueryState>& state);
  /// Last pump task of a query: fold stats, publish, admit the next.
  void Finish(const std::shared_ptr<detail::QueryState>& state);
  /// Pop the next admissible query per `order`.  Called under mu_.
  std::shared_ptr<detail::QueryState> PopPendingLocked();
  /// Admit pending queries while inflight slots are free, moving
  /// expired-deadline queries into `shed` (finalize them after releasing
  /// mu_).  Called under mu_.
  void AdmitPendingLocked(
      std::vector<std::shared_ptr<detail::QueryState>>* shed);
  /// Publish a never-launched query (rejected or shed): all-zero RunStats,
  /// outcome set, counted outside the served sums.  Takes mu_ + state mu.
  void FinalizeUnlaunched(const std::shared_ptr<detail::QueryState>& state,
                          QueryOutcome outcome);
  /// Pressure degrade at admission: with degrade_pending_threshold or more
  /// queries waiting, a degradable query's morsels run under
  /// degrade_policy.  Called under mu_ right before LaunchLocked.
  void MaybeDegradeLocked(detail::QueryState& state);
  /// Deadline-aware morsel cap (deadline_morsel_fraction): shrink
  /// `derived` so one morsel of a calibrated workload costs at most the
  /// configured fraction of the query's deadline.
  uint64_t DeadlineCappedMorsel(uint64_t derived,
                                const WorkloadSignature& sig,
                                uint64_t num_inputs,
                                const QueryOptions& options) const;
  bool AllDoneLocked() const {
    return completed_ + rejected_ + shed_ == submitted_;
  }

  QuerySchedulerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  uint64_t next_seq_ = 0;                                  ///< guarded by mu_
  uint32_t inflight_ = 0;                                  ///< guarded by mu_
  std::deque<std::shared_ptr<detail::QueryState>> pending_;  ///< ditto
  // Serving accounting (guarded by mu_).
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t shed_ = 0;
  uint64_t goodput_queries_ = 0;
  uint64_t deadline_missed_ = 0;
  uint64_t degraded_ = 0;
  uint64_t total_morsels_ = 0;
  EngineStats total_engine_;
  double total_queue_seconds_ = 0;
  double total_execute_seconds_ = 0;
  double max_latency_seconds_ = 0;  ///< exact running max (not sampled)
  uint64_t adaptive_queries_ = 0;
  uint64_t adaptive_cache_hits_ = 0;
  uint64_t adaptive_tuning_switches_ = 0;
  std::array<uint64_t, kNumStaticExecPolicies> adaptive_chosen_counts_{};
  std::map<uint32_t, TenantBook> tenants_;  ///< guarded by mu_
  /// Uniform reservoir sample of SERVED per-query latencies
  /// (kLatencySampleCap slots), so percentile accounting cannot grow with
  /// uptime; common/stats.h ReservoirSample (seeded Algorithm R).
  static constexpr size_t kLatencySampleCap = 4096;
  ReservoirSample latencies_{kLatencySampleCap};

  /// Calibration cache (internally synchronized, so not under mu_).
  Calibrator calibrator_;

  /// Declared LAST so it is destroyed FIRST: the pool's destructor joins
  /// the workers, and a worker finishing its final task still touches the
  /// mutexes/condition variables above (Finish's notifications).  After
  /// the dtor's Drain() there is no queued work, but the *notify* of the
  /// last completion may still be in flight on a worker.
  ThreadPool pool_;
};

}  // namespace amac
