// Concurrent multi-query serving: a shared-pool scheduler with admission
// control.
//
// The paper's interleaving keeps ONE query's dependent misses overlapped;
// a serving system has many queries in flight at once.  Executor::Run()
// occupies its whole thread team fork-join style, so two queries can only
// run back to back.  QueryScheduler multiplexes instead: every admitted
// query is chopped into morsels, and each in-flight morsel is one task on
// one shared common/ThreadPool — tasks re-enqueue themselves to the BACK of
// the FIFO queue after each morsel, so morsels from different queries
// round-robin across the same workers and a long scan cannot starve a
// point-lookup query.
//
//   QueryScheduler sched({.num_workers = 8, .max_inflight_queries = 4});
//   QueryTicket a = Submit(sched, Scan(s).Then(Probe(table)), options);
//   QueryTicket b = Submit(sched, Walks(graph, 1 << 20, 16, 7), options);
//   QueryStats qa = sched.Wait(a);   // Wait() helps drain the task queue
//
// Admission control: at most `max_inflight_queries` queries execute
// concurrently; the rest wait in a FIFO or priority-ordered admission
// queue (the `order` knob).  Per-query QueryStats split latency into
// queue-wait vs execute time; scheduler-level ServingStats aggregate
// p50/p95/p99 latency across completed queries — the latency-under-load
// accounting bench/ext_serving.cpp drives.
//
// Threading model: the pool's `size() - 1` workers drain the task queue;
// client threads blocked in Wait() also pump tasks (work-conserving), so a
// scheduler over a 1-thread pool still makes progress.  Per-query
// parallelism is bounded by execution *slots*: `make_op(slot)` is called
// lazily, at most once per slot, with slot < slots(); a slot is held
// exclusively while one of the query's morsels runs, which is what lets
// op factories keep the familiar per-thread-sink discipline.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <typeinfo>
#include <utility>
#include <vector>

#include "adaptive/calibrator.h"
#include "adaptive/governor.h"
#include "adaptive/signature.h"
#include "common/cycle_timer.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/parallel_driver.h"
#include "core/run_stats.h"
#include "core/scheduler.h"

namespace amac {

/// How the admission queue orders queries waiting for an inflight slot.
enum class AdmissionOrder : uint8_t {
  kFifo,      ///< submission order; priorities ignored
  kPriority,  ///< higher QueryOptions::priority first, FIFO within a level
};

struct QuerySchedulerOptions {
  /// Thread-team size (including the slot client threads fill by pumping
  /// in Wait()); clamped to >= 1.
  uint32_t num_workers = 1;
  /// Queries executing concurrently before submissions queue up in the
  /// admission queue; 0 = unbounded.
  uint32_t max_inflight_queries = 0;
  AdmissionOrder order = AdmissionOrder::kFifo;
};

/// Per-query execution configuration (the Executor's ExecConfig knobs plus
/// serving-level ones).
struct QueryOptions {
  ExecPolicy policy = ExecPolicy::kAmac;
  SchedulerParams params;
  /// Inputs per morsel; 0 derives one (ResolveMorselSize).  Morsel size is
  /// also the interleaving granule: smaller morsels = fairer sharing,
  /// more scheduling overhead.
  uint64_t morsel_size = 0;
  /// Under AdmissionOrder::kPriority, higher admits first.
  int32_t priority = 0;
  /// Cap on this query's concurrent morsels (execution slots); 0 = the
  /// scheduler's num_workers.
  uint32_t max_slots = 0;
  /// Under ExecPolicy::kAdaptive: the governor's tuning knobs.
  AdaptiveConfig adaptive;
  /// Under ExecPolicy::kAdaptive: calibration-cache key.  Invalid (the
  /// default) derives one from the operation type + input cardinality +
  /// per-lookup state size; set explicitly when the same op type runs over
  /// structurally different data.
  WorkloadSignature signature;
};

/// What Wait() returns: the familiar RunStats plus the serving split of
/// this query's latency.  run.seconds covers first-morsel to completion
/// (execute span); queue_seconds covers submit to first morsel (admission
/// wait + time behind other queries' morsels); latency_seconds is the
/// client-observed total (== run.dispatch_seconds).
struct QueryStats {
  RunStats run;
  double queue_seconds = 0;
  double latency_seconds = 0;
};

/// Scheduler-level accounting over completed queries.  Latency
/// percentiles are computed over a bounded reservoir sample (uniform over
/// all completed queries), so a long-lived scheduler stays O(1) in memory
/// and serving_stats() cost no matter how many queries it has served;
/// max_latency_seconds is an exact running maximum, not sampled.
struct ServingStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t morsels = 0;       ///< morsels executed, all completed queries
  EngineStats engine;         ///< merged scheduling counters, ditto
  double p50_latency_seconds = 0;
  double p95_latency_seconds = 0;
  double p99_latency_seconds = 0;
  double max_latency_seconds = 0;
  double total_queue_seconds = 0;    ///< sum of per-query queue waits
  double total_execute_seconds = 0;  ///< sum of per-query execute spans
  // Adaptive-execution accounting (kAdaptive queries only).
  uint64_t adaptive_queries = 0;     ///< completed governed queries
  uint64_t adaptive_cache_hits = 0;  ///< of those, calibration-cache hits
  uint64_t adaptive_tuning_switches = 0;  ///< summed winner changes
  /// How often each static policy ended up the governed choice, indexed by
  /// StaticExecPolicyIndex.
  std::array<uint64_t, kNumStaticExecPolicies> adaptive_chosen_counts{};
};

namespace detail {

/// Type-erased shared state of one submitted query.  The typed morsel
/// runner (one per Submit call) lives behind run_one_morsel; everything the
/// scheduler itself touches is virtual-free plain data.
struct QueryState {
  // Immutable after Submit().
  uint64_t num_inputs = 0;
  uint64_t num_morsels = 0;  ///< bounds the pump-task fan-out
  uint32_t slots = 0;
  int32_t priority = 0;
  uint64_t seq = 0;  ///< submission order, ties under kPriority
  /// Run one morsel on the given slot; false once the cursor is exhausted.
  std::function<bool(uint32_t)> run_one_morsel;
  /// Fold per-slot sinks/engine counters into the final RunStats.
  std::function<void(RunStats*)> collect;

  // Slot free-list (guarded by slot_mu).
  std::mutex slot_mu;
  std::vector<uint32_t> free_slots;

  /// Pump tasks still alive for this query; the task that observes the
  /// final decrement finalizes the query.
  std::atomic<uint32_t> outstanding{0};

  // Timing.  submit_timer starts in Submit(); the first morsel task
  // restarts exec timers (exchange on `started` picks the winner).
  WallTimer submit_timer;
  std::atomic<bool> started{false};
  double queue_seconds = 0;   ///< written by the starter, read after done
  WallTimer exec_timer;       ///< restarted by the starter
  CycleTimer exec_cycles;     ///< restarted by the starter

  // Completion.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;  ///< guarded by mu
  QueryStats result;  ///< valid once done
};

}  // namespace detail

/// Future-style handle to a submitted query; pass to Wait()/Finished().
/// Copyable; all copies refer to the same query.
class QueryTicket {
 public:
  QueryTicket() = default;

  bool valid() const { return state_ != nullptr; }

 private:
  friend class QueryScheduler;
  explicit QueryTicket(std::shared_ptr<detail::QueryState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::QueryState> state_;
};

class QueryScheduler {
 public:
  explicit QueryScheduler(const QuerySchedulerOptions& options);
  /// Drains: blocks until every submitted query completed.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  uint32_t num_workers() const { return pool_.size(); }
  const QuerySchedulerOptions& options() const { return options_; }
  ThreadPool& pool() { return pool_; }
  /// The shared calibration cache governed (kAdaptive) queries consult; a
  /// repeated query shape calibrates once per scheduler lifetime.
  Calibrator& calibrator() { return calibrator_; }

  /// Execution slots a query submitted with `options` will get (what sizes
  /// a per-slot sink array).
  uint32_t SlotCount(const QueryOptions& options) const {
    const uint32_t cap = options.max_slots == 0
                             ? pool_.size()
                             : std::min(options.max_slots, pool_.size());
    return std::max(1u, cap);
  }

  /// Submit a query as (num_inputs, per-slot operation factory): the same
  /// contract as Executor::RunOp, except `make_op(slot)` is invoked lazily
  /// with slot < SlotCount(options) instead of a thread id.  `collect`
  /// (optional) folds per-slot sinks into the final RunStats after the last
  /// morsel (outputs/checksum); it runs exactly once, race-free.
  /// The factory must tolerate outliving the Submit call (it is copied).
  template <typename OpFactory>
  QueryTicket SubmitOp(uint64_t num_inputs, OpFactory make_op,
                       const QueryOptions& options,
                       std::function<void(RunStats*)> collect = nullptr) {
    using OpType = std::decay_t<decltype(make_op(0u))>;
    auto state = std::make_shared<detail::QueryState>();
    state->num_inputs = num_inputs;
    state->slots = SlotCount(options);
    state->priority = options.priority;
    // Governed queries: build the per-query governor (cache-keyed by the
    // op-derived signature unless the caller supplied one) and morselize
    // finer, so the calibration tournament has enough claims to run on.
    std::shared_ptr<QueryGovernor> governor;
    uint64_t morsel_size;
    if (options.policy == ExecPolicy::kAdaptive) {
      const WorkloadSignature signature =
          options.signature.valid()
              ? options.signature
              : WorkloadSignature::Make(
                    typeid(OpType).name(), num_inputs,
                    static_cast<uint32_t>(sizeof(typename OpType::State)));
      governor = std::make_shared<QueryGovernor>(
          options.adaptive, &calibrator_, signature,
          options.params.stages);
      morsel_size = options.morsel_size > 0
                        ? options.morsel_size
                        : AdaptiveMorselSize(num_inputs, state->slots,
                                             options.adaptive);
    } else {
      morsel_size = ResolveMorselSize(
          num_inputs, state->slots, options.morsel_size,
          std::max(1u, options.params.inflight));
    }
    state->num_morsels = (num_inputs + morsel_size - 1) / morsel_size;

    struct Slot {
      std::optional<OpType> op;
      EngineStats engine;
      uint64_t morsels = 0;
    };
    struct Typed {
      OpFactory make_op;
      MorselCursor cursor;
      ExecPolicy policy;
      SchedulerParams params;
      std::shared_ptr<QueryGovernor> governor;  ///< null on static policies
      std::vector<Slot> slots;
      Typed(OpFactory factory, uint64_t total, uint64_t morsel,
            const QueryOptions& options, uint32_t num_slots)
          : make_op(std::move(factory)),
            cursor(total, morsel),
            policy(options.policy),
            params(options.params),
            slots(num_slots) {}
    };
    auto typed = std::make_shared<Typed>(std::move(make_op), num_inputs,
                                         morsel_size, options, state->slots);
    typed->governor = std::move(governor);
    state->run_one_morsel = [typed](uint32_t slot_id) {
      Range morsel;
      if (!typed->cursor.Next(&morsel)) return false;
      Slot& slot = typed->slots[slot_id];
      if (!slot.op) slot.op.emplace(typed->make_op(slot_id));
      OffsetOp<typename decltype(slot.op)::value_type> rebased(*slot.op,
                                                               morsel.begin);
      if (typed->governor) {
        const QueryGovernor::Choice choice = typed->governor->Acquire();
        CycleTimer timer;
        slot.engine.Merge(
            Run(choice.policy, choice.params, rebased, morsel.size()));
        typed->governor->Report(choice, morsel.size(), timer.Elapsed());
      } else {
        slot.engine.Merge(
            Run(typed->policy, typed->params, rebased, morsel.size()));
      }
      ++slot.morsels;
      return true;
    };
    state->collect = [typed, collect](RunStats* run) {
      for (const Slot& slot : typed->slots) {
        run->engine.Merge(slot.engine);
        run->morsels += slot.morsels;
      }
      if (typed->governor) typed->governor->Finalize(&run->adaptive);
      if (collect) collect(run);
    };
    QueryTicket ticket(state);
    Enqueue(std::move(state));
    return ticket;
  }

  /// Block until the query completes; helps drain the task queue while
  /// waiting, so Wait() never idles a core the scheduler could use.
  QueryStats Wait(const QueryTicket& ticket);

  /// Non-blocking completion check.
  bool Finished(const QueryTicket& ticket) const;

  /// Block until every query submitted so far has completed.
  void Drain();

  /// Snapshot of the scheduler-level accounting (completed queries only).
  ServingStats serving_stats() const;

 private:
  /// Queue the query for admission (or admit immediately) under mu_.
  void Enqueue(std::shared_ptr<detail::QueryState> state);
  /// Launch the pump tasks of an admitted query.  Called under mu_.
  void LaunchLocked(const std::shared_ptr<detail::QueryState>& state);
  /// One pump step: run one morsel, resubmit or finalize.
  void Pump(const std::shared_ptr<detail::QueryState>& state);
  /// Last pump task of a query: fold stats, publish, admit the next.
  void Finish(const std::shared_ptr<detail::QueryState>& state);
  /// Pop the next admissible query per `order`.  Called under mu_.
  std::shared_ptr<detail::QueryState> PopPendingLocked();

  QuerySchedulerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  uint64_t next_seq_ = 0;                                  ///< guarded by mu_
  uint32_t inflight_ = 0;                                  ///< guarded by mu_
  std::deque<std::shared_ptr<detail::QueryState>> pending_;  ///< ditto
  // Serving accounting (guarded by mu_).
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t total_morsels_ = 0;
  EngineStats total_engine_;
  double total_queue_seconds_ = 0;
  double total_execute_seconds_ = 0;
  double max_latency_seconds_ = 0;  ///< exact running max (not sampled)
  uint64_t adaptive_queries_ = 0;
  uint64_t adaptive_cache_hits_ = 0;
  uint64_t adaptive_tuning_switches_ = 0;
  std::array<uint64_t, kNumStaticExecPolicies> adaptive_chosen_counts_{};
  /// Uniform reservoir sample of per-query latencies (kLatencySampleCap
  /// slots), so percentile accounting cannot grow with uptime.
  static constexpr size_t kLatencySampleCap = 4096;
  std::vector<double> latencies_;

  /// Calibration cache (internally synchronized, so not under mu_).
  Calibrator calibrator_;

  /// Declared LAST so it is destroyed FIRST: the pool's destructor joins
  /// the workers, and a worker finishing its final task still touches the
  /// mutexes/condition variables above (Finish's notifications).  After
  /// the dtor's Drain() there is no queued work, but the *notify* of the
  /// last completion may still be in flight on a worker.
  ThreadPool pool_;
};

}  // namespace amac
