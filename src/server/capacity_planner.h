// Capacity planning for the serving layer: predict the maximum
// sustainable query rate per ExecPolicy from measured service cost, before
// ever pushing real load.
//
// The model is deliberately the simplest one that matches the scheduler's
// structure.  With single-morsel queries (ext_serving --open-loop submits
// morsel_size == inputs, max_slots == 1), the QueryScheduler is an
// M/G/c queue: c serve workers, one query per worker at a time, FIFO-ish
// admission.  Then
//
//   capacity_qps = c / E[S]
//
// where E[S] is the mean per-query service time — obtainable either from
// a direct solo measurement or from a calibrated cycles-per-input (the
// adaptive calibrator's native unit) times inputs over the TSC rate.
// Expected queue wait below capacity comes from Sakasegawa's M/G/c
// approximation, which is what locates the knee: wait explodes as
// offered/capacity -> 1, which is where SLO-aware admission must take
// over from queueing.
//
// Validated by ext_serving --open-loop: the acceptance gate requires the
// prediction within 30% of the measured max goodput for >= 2 policies.
#pragma once

#include <cstdint>

#include "core/scheduler.h"

namespace amac {

/// One policy's predicted serving capacity.
struct CapacityEstimate {
  ExecPolicy policy = ExecPolicy::kAmac;
  double cycles_per_input = 0;  ///< measured service cost, calibrator units
  double service_seconds = 0;   ///< E[S]: one query, one worker
  double capacity_qps = 0;      ///< c / E[S]
};

class CapacityPlanner {
 public:
  /// Build an estimate from a calibrator-style cycles-per-input
  /// measurement: E[S] = cpi * inputs_per_query / tsc_hz, capacity =
  /// workers / E[S].  `workers` is the number of threads actually serving
  /// morsels (for an open-loop run with nobody in Wait(), that is the
  /// pool's size() - 1 spawned workers).
  static CapacityEstimate FromCyclesPerInput(ExecPolicy policy,
                                             double cycles_per_input,
                                             uint64_t inputs_per_query,
                                             uint32_t workers,
                                             double tsc_hz);

  /// Same, from a directly measured mean service time.
  static CapacityEstimate FromServiceSeconds(ExecPolicy policy,
                                             double service_seconds,
                                             uint32_t workers);

  /// Offered-load utilization rho = offered * E[S] / c.
  static double Utilization(double offered_qps, double service_seconds,
                            uint32_t workers);

  /// Expected admission-queue wait at `offered_qps` (Sakasegawa's M/G/c
  /// approximation), with squared coefficients of variation of the
  /// arrival gaps (ca2; 1 = Poisson) and service times (cs2).  Returns
  /// +infinity at or above capacity — the open-loop regime where only
  /// admission control keeps latency finite.
  static double ExpectedWaitSeconds(double offered_qps,
                                    double service_seconds, uint32_t workers,
                                    double ca2 = 1.0, double cs2 = 1.0);

  /// Largest offered rate whose predicted wait stays within
  /// `wait_budget_seconds` (bisection on ExpectedWaitSeconds); the
  /// planner's answer to "how hard can I drive this policy and still meet
  /// the SLO".
  static double MaxQpsForWait(double wait_budget_seconds,
                              double service_seconds, uint32_t workers,
                              double ca2 = 1.0, double cs2 = 1.0);
};

}  // namespace amac
