#include "server/load_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/cycle_timer.h"
#include "common/macros.h"

namespace amac {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalOptions& options)
    : options_(options), rng_(options.seed) {
  AMAC_CHECK(options_.rate_qps > 0);
  mean_rate_qps_ = options_.rate_qps;
  switch (options_.kind) {
    case ArrivalKind::kPoisson:
      break;
    case ArrivalKind::kBursty: {
      AMAC_CHECK(options_.burst_on_seconds > 0);
      AMAC_CHECK(options_.burst_off_seconds > 0);
      AMAC_CHECK(options_.burst_multiplier >= 1);
      // Stationary on-fraction of the two-state chain, then solve the
      // off-rate so the long-run mean is rate_qps:
      //   p_on * on_rate + (1 - p_on) * off_rate = rate_qps
      const double p_on =
          options_.burst_on_seconds /
          (options_.burst_on_seconds + options_.burst_off_seconds);
      on_rate_ = options_.rate_qps * options_.burst_multiplier;
      off_rate_ =
          std::max(0.0, (options_.rate_qps - p_on * on_rate_) / (1 - p_on));
      mean_rate_qps_ = p_on * on_rate_ + (1 - p_on) * off_rate_;
      // Start in the stationary distribution so short streams are not
      // biased toward one state.
      burst_on_ = rng_.NextDouble() < p_on;
      switch_at_ = Exponential(1.0 / (burst_on_ ? options_.burst_on_seconds
                                                : options_.burst_off_seconds));
      break;
    }
    case ArrivalKind::kDiurnal:
      AMAC_CHECK(options_.diurnal_amplitude >= 0 &&
                 options_.diurnal_amplitude <= 1);
      AMAC_CHECK(options_.diurnal_period_seconds > 0);
      rate_max_ = options_.rate_qps * (1 + options_.diurnal_amplitude);
      break;
  }
}

double ArrivalProcess::Exponential(double rate) {
  // Inverse-CDF with (1 - u) so u == 0 is safe; rate 0 means "never".
  if (rate <= 0) return std::numeric_limits<double>::infinity();
  return -std::log(1.0 - rng_.NextDouble()) / rate;
}

double ArrivalProcess::Next() {
  switch (options_.kind) {
    case ArrivalKind::kPoisson:
      now_ += Exponential(options_.rate_qps);
      return now_;
    case ArrivalKind::kBursty:
      for (;;) {
        const double rate = burst_on_ ? on_rate_ : off_rate_;
        const double gap = Exponential(rate);
        if (now_ + gap <= switch_at_) {
          now_ += gap;
          return now_;
        }
        // The proposed arrival lands past the state flip: advance to the
        // flip and redraw under the new rate.  Exponential gaps are
        // memoryless, so discarding the overshoot is exact, not an
        // approximation.
        now_ = switch_at_;
        burst_on_ = !burst_on_;
        switch_at_ =
            now_ + Exponential(1.0 / (burst_on_ ? options_.burst_on_seconds
                                                : options_.burst_off_seconds));
      }
    case ArrivalKind::kDiurnal:
      // Lewis-Shedler thinning: propose at the envelope rate, accept with
      // probability rate(t) / rate_max.
      for (;;) {
        now_ += Exponential(rate_max_);
        const double rate =
            options_.rate_qps *
            (1 + options_.diurnal_amplitude *
                     std::sin(kTwoPi * now_ /
                              options_.diurnal_period_seconds));
        if (rng_.NextDouble() * rate_max_ < rate) return now_;
      }
  }
  AMAC_CHECK(false);
  return now_;
}

LoadGenReport LoadGenerator::Run(const LoadGenOptions& options,
                                 const SubmitFn& submit) {
  AMAC_CHECK(options.duration_seconds > 0);
  std::vector<TenantMix> tenants = options.tenants;
  if (tenants.empty()) tenants.push_back(TenantMix{});
  double total_share = 0;
  for (const TenantMix& t : tenants) {
    AMAC_CHECK(t.share > 0);
    total_share += t.share;
  }

  ArrivalProcess arrivals(options.arrival);
  Rng mix_rng(options.mix_seed);
  LoadGenReport report;
  WallTimer wall;
  for (uint64_t i = 0;
       options.max_queries == 0 || i < options.max_queries; ++i) {
    const double at = arrivals.Next();
    if (at > options.duration_seconds) break;
    // Sleep in bounded chunks up to the scheduled instant.  A single long
    // sleep_until would also work; chunking keeps the worst oversleep on
    // a loaded machine visible in max_lag instead of folded into it.
    for (;;) {
      const double behind = at - wall.ElapsedSeconds();
      if (behind <= 0) break;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(behind, 500e-6)));
    }
    report.max_lag_seconds =
        std::max(report.max_lag_seconds, wall.ElapsedSeconds() - at);
    // Weighted tenant pick.
    const TenantMix* pick = &tenants.back();
    double u = mix_rng.NextDouble() * total_share;
    for (const TenantMix& t : tenants) {
      if (u < t.share) {
        pick = &t;
        break;
      }
      u -= t.share;
    }
    submit(i, *pick);
    ++report.submitted;
  }
  report.wall_seconds = wall.ElapsedSeconds();
  report.offered_qps = report.wall_seconds > 0
                           ? static_cast<double>(report.submitted) /
                                 report.wall_seconds
                           : 0;
  return report;
}

}  // namespace amac
