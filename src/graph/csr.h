// Compressed-sparse-row graph substrate.
//
// Paper §8: "Our future work will examine the efficacy of AMAC on graph
// workloads and operations over unstructured data."  This module provides
// that extension: a CSR graph plus random-walk operations whose access
// pattern is the dependent chain AMAC targets (vertex -> adjacency row ->
// random neighbor -> ...), with optional power-law target skew so the
// irregularity knob matches the database experiments.
#pragma once

#include <cstdint>

#include "common/aligned.h"
#include "common/macros.h"

namespace amac {

class CsrGraph {
 public:
  struct Options {
    uint64_t num_vertices = 1 << 20;
    uint32_t out_degree = 8;   ///< exact out-degree per vertex
    double target_theta = 0;   ///< Zipf skew of edge targets (0 = uniform)
    uint64_t seed = 99;
  };

  /// Generate a random graph per `options`.
  explicit CsrGraph(const Options& options);

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return offsets_[num_vertices_]; }

  /// Adjacency row of `v` as [begin, end) into edges().
  uint64_t RowBegin(uint64_t v) const { return offsets_[v]; }
  uint64_t RowEnd(uint64_t v) const { return offsets_[v + 1]; }
  uint32_t OutDegree(uint64_t v) const {
    return static_cast<uint32_t>(RowEnd(v) - RowBegin(v));
  }

  const uint64_t* offsets() const { return offsets_.data(); }
  const uint32_t* edges() const { return edges_.data(); }

  /// In-degree distribution support for tests (O(m)).
  uint64_t MaxInDegree() const;

 private:
  uint64_t num_vertices_;
  AlignedBuffer<uint64_t> offsets_;  ///< num_vertices + 1
  AlignedBuffer<uint32_t> edges_;
};

}  // namespace amac
