// Hand-written coroutine form of the CSR random walk (graph/graph_ops.h
// holds the stage-machine operation every ExecPolicy runs).  Kept for the
// §6 framework comparison: identical trajectories, but the compiler saves
// and restores the walker state in the coroutine frame.
#pragma once

#include <cstdint>

#include "common/hash.h"
#include "common/rng.h"
#include "coro/interleaver.h"
#include "coro/task.h"
#include "graph/csr.h"
#include "graph/graph_ops.h"

namespace amac {

inline coro::Task RandomWalkTask(const CsrGraph& graph, uint64_t walker,
                                 uint32_t hops, uint64_t seed,
                                 WalkSink& sink) {
  uint64_t rng = seed ^ Mix64(walker + 1);
  uint64_t vertex = SplitMix64(rng) % graph.num_vertices();
  co_await coro::PrefetchAwait{graph.offsets() + vertex};
  for (uint32_t hop = 0;; ++hop) {
    sink.Visit(walker, vertex);
    const uint64_t begin = graph.RowBegin(vertex);
    const uint32_t len = graph.OutDegree(vertex);
    if (len == 0 || hop == hops) co_return;
    const uint64_t edge_index = begin + SplitMix64(rng) % len;
    co_await coro::PrefetchAwait{graph.edges() + edge_index};
    vertex = graph.edges()[edge_index];
    co_await coro::PrefetchAwait{graph.offsets() + vertex};
  }
}

}  // namespace amac
