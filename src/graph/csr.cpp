#include "graph/csr.h"

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace amac {

CsrGraph::CsrGraph(const Options& options)
    : num_vertices_(options.num_vertices),
      offsets_(options.num_vertices + 1),
      edges_(options.num_vertices * options.out_degree) {
  AMAC_CHECK(options.num_vertices > 0);
  Rng rng(options.seed);
  ZipfGenerator zipf(options.num_vertices,
                     options.target_theta > 0 ? options.target_theta : 0.0,
                     options.seed + 1);
  uint64_t edge = 0;
  for (uint64_t v = 0; v < num_vertices_; ++v) {
    offsets_[v] = edge;
    for (uint32_t d = 0; d < options.out_degree; ++d) {
      uint64_t target;
      if (options.target_theta > 0) {
        // Popular ranks mapped through a mixer so hubs spread over the
        // vertex id space (same device as the Zipf relations).
        target = Mix64(zipf.Next()) % num_vertices_;
      } else {
        target = rng.NextBounded(num_vertices_);
      }
      edges_[edge++] = static_cast<uint32_t>(target);
    }
  }
  offsets_[num_vertices_] = edge;
}

uint64_t CsrGraph::MaxInDegree() const {
  std::vector<uint64_t> in(num_vertices_, 0);
  for (uint64_t e = 0; e < num_edges(); ++e) ++in[edges_[e]];
  uint64_t max_in = 0;
  for (uint64_t v = 0; v < num_vertices_; ++v) {
    max_in = std::max(max_in, in[v]);
  }
  return max_in;
}

}  // namespace amac
