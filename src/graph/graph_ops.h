// Random walks over a CSR graph as a generic-engine operation.
//
// One walker performs `hops` steps: at vertex v it (a) reads v's adjacency
// row bounds (dependent access #1), (b) picks a random edge and reads the
// target id (dependent access #2), then moves there.  Per-walker RNG state
// lives inside the operation state, so the walk trajectory — and therefore
// the result — is completely independent of the schedule: every ExecPolicy
// of core/scheduler.h (and any thread count under the parallel driver)
// visits identical vertices.
//
// This is the paper's §8 "graph workloads" extension expressed in the §6
// framework: no new scheduling code was written for it.
#pragma once

#include <cstdint>

#include "common/hash.h"
#include "common/prefetch.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "graph/csr.h"

namespace amac {

/// Accumulates a schedule-independent checksum of visited vertices.
class WalkSink {
 public:
  void Visit(uint64_t walker, uint64_t vertex) {
    sum_ += Mix64(walker * 0x9e3779b97f4a7c15ull + vertex);
    ++visits_;
  }
  uint64_t checksum() const { return sum_; }
  uint64_t visits() const { return visits_; }

  void Merge(const WalkSink& other) {
    sum_ += other.sum_;
    visits_ += other.visits_;
  }

 private:
  uint64_t sum_ = 0;
  uint64_t visits_ = 0;
};

/// Pipeline source (core/pipeline.h): input i is walker i; every vertex
/// visit emits Tuple{vertex, walker} downstream.  Feeding an
/// AggregateStage keyed by vertex computes visit counts — a fused
/// graph-analytics pipeline with no walk trace materialized.  RandomWalkOp
/// below adapts the same machine to the engine Operation concept, so the
/// trajectories (per-walker RNG, schedule-independent) are identical on
/// both paths.
class WalkSource {
 public:
  struct State {
    uint64_t walker;
    uint64_t vertex;
    uint64_t rng;        ///< splitmix64 state: schedule-independent draws
    uint64_t row_begin;
    uint32_t row_len;
    uint32_t hops_left;
    uint8_t stage;       ///< 0 = row bounds prefetched, 1 = edge prefetched
    uint64_t pending_edge_index;
  };

  WalkSource(const CsrGraph& graph, uint64_t num_walkers, uint32_t hops,
             uint64_t seed)
      : graph_(&graph), num_walkers_(num_walkers), hops_(hops), seed_(seed) {}

  uint64_t size() const { return num_walkers_; }

  void Start(State& st, uint64_t idx) {
    st.walker = idx;
    st.rng = seed_ ^ Mix64(idx + 1);
    st.vertex = SplitMix64(st.rng) % graph_->num_vertices();
    st.hops_left = hops_;
    st.stage = 0;
    Prefetch(graph_->offsets() + st.vertex);  // covers v and v+1 (same line
    Prefetch(graph_->offsets() + st.vertex + 1);  // unless straddling)
  }

  template <typename Emit>
  StepStatus Step(State& st, Emit&& emit) {
    if (st.stage == 0) {
      // Row bounds arrived: record the visit, pick the random edge.
      emit(Tuple{static_cast<int64_t>(st.vertex),
                 static_cast<int64_t>(st.walker)});
      st.row_begin = graph_->RowBegin(st.vertex);
      st.row_len = graph_->OutDegree(st.vertex);
      if (st.row_len == 0 || st.hops_left == 0) return StepStatus::kDone;
      st.pending_edge_index =
          st.row_begin + SplitMix64(st.rng) % st.row_len;
      Prefetch(graph_->edges() + st.pending_edge_index);
      st.stage = 1;
      return StepStatus::kParked;
    }
    // Edge target arrived: move there and fetch its row bounds.
    st.vertex = graph_->edges()[st.pending_edge_index];
    --st.hops_left;
    st.stage = 0;
    Prefetch(graph_->offsets() + st.vertex);
    Prefetch(graph_->offsets() + st.vertex + 1);
    return StepStatus::kParked;
  }

 private:
  const CsrGraph* graph_;
  uint64_t num_walkers_;
  uint32_t hops_;
  uint64_t seed_;
};

/// Root pipeline builder: `num_walkers` random walks of `hops` hops.
inline Pipeline<WalkSource> Walks(const CsrGraph& graph, uint64_t num_walkers,
                                  uint32_t hops, uint64_t seed) {
  return From(WalkSource(graph, num_walkers, hops, seed));
}

/// The walk as an engine Operation (WalkSource driven with a WalkSink);
/// kept for the ext_graph_walks ablation and the single-op Executor path.
class RandomWalkOp {
 public:
  using State = WalkSource::State;

  RandomWalkOp(const CsrGraph& graph, uint32_t hops, uint64_t seed,
               WalkSink& sink)
      : source_(graph, /*num_walkers=*/0, hops, seed), sink_(sink) {}

  void Start(State& st, uint64_t idx) { source_.Start(st, idx); }

  StepStatus Step(State& st) {
    return source_.Step(st, [this](const Tuple& row) {
      sink_.Visit(static_cast<uint64_t>(row.payload),
                  static_cast<uint64_t>(row.key));
    });
  }

 private:
  WalkSource source_;
  WalkSink& sink_;
};

}  // namespace amac
