// Generic asynchronous-memory-access-chaining engine.
//
// The paper's §6 ("AMAC automation") calls for "a generalized software model
// and framework for AMAC-style execution" so that developers do not hand
// write state save/restore.  This header is that framework: a user supplies
// an *operation* type describing one lookup as a resumable stage machine,
// and the engine runs any number of inputs through it with the AMAC
// schedule — or, for comparison, with the GP / SPP / sequential schedules,
// since all four only differ in *when* each lookup's next stage runs.
//
// Operation concept:
//
//   struct MyOp {
//     struct State { ... };                  // full per-lookup state
//     void Start(State& st, uint64_t idx);   // stage 0: init + 1st prefetch
//     StepStatus Step(State& st);            // run the current stage
//   };
//
// Step() executes the stage the state says it is in and returns:
//   kParked : a prefetch was issued; re-run Step when the data likely
//             arrived (the engine revisits the slot after touring the
//             other in-flight lookups).
//   kRetry  : a latch/dependency was busy; semantically identical to
//             kParked for scheduling, but engines/statistics distinguish
//             it (GP/SPP-style schedules must spin on it instead).
//   kDone   : the lookup finished.
//
// The engine owns no memory semantics: operations issue their own
// prefetches (common/prefetch.h) and manage their own latches, exactly as
// the hand-written kernels do.  Tests verify the hand-written kernels and
// engine-driven operations produce identical results; the ablation bench
// measures the abstraction cost.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace amac {

enum class StepStatus : uint8_t {
  kParked,
  kRetry,
  kDone,
};

/// Scheduling counters (optional observability for tests/ablations).
struct EngineStats {
  uint64_t lookups = 0;
  uint64_t steps = 0;    ///< total Step() invocations
  uint64_t parks = 0;    ///< steps returning kParked
  uint64_t retries = 0;  ///< steps returning kRetry
  uint64_t noops = 0;    ///< GP/SPP only: stage slots burnt on finished lookups
  /// Lookups a vectorized policy silently ran scalar because the operation
  /// exposes no vector interface (Run()'s kVectorized/kVectorizedAmac
  /// fallback).  Zero on genuinely vectorized runs; lets JSON emitters stop
  /// implying vector execution where none happened.
  uint64_t vec_fallbacks = 0;

  double StepsPerLookup() const {
    return lookups ? static_cast<double>(steps) / static_cast<double>(lookups)
                   : 0;
  }

  /// Fold another engine's counters in (per-thread stats -> run totals).
  void Merge(const EngineStats& other) {
    lookups += other.lookups;
    steps += other.steps;
    parks += other.parks;
    retries += other.retries;
    noops += other.noops;
    vec_fallbacks += other.vec_fallbacks;
  }
};

/// AMAC schedule: W independent slots, rolling cursor, terminal/initial
/// merge (a finishing lookup immediately starts the next input).
template <typename Op>
EngineStats RunAmac(Op& op, uint64_t num_inputs, uint32_t num_inflight) {
  AMAC_CHECK(num_inflight >= 1);
  EngineStats stats;
  stats.lookups = num_inputs;
  if (num_inputs == 0) return stats;

  struct Slot {
    typename Op::State state;
    bool active;
  };
  std::vector<Slot> slots(num_inflight);
  uint64_t next_input = 0;
  uint32_t num_active = 0;
  for (uint32_t k = 0; k < num_inflight; ++k) {
    if (next_input < num_inputs) {
      op.Start(slots[k].state, next_input++);
      slots[k].active = true;
      ++num_active;
    } else {
      slots[k].active = false;
    }
  }

  uint32_t k = 0;
  while (num_active > 0) {
    Slot& slot = slots[k];
    if (slot.active) {
      ++stats.steps;
      switch (op.Step(slot.state)) {
        case StepStatus::kParked:
          ++stats.parks;
          break;
        case StepStatus::kRetry:
          ++stats.retries;
          break;
        case StepStatus::kDone:
          if (next_input < num_inputs) {
            op.Start(slot.state, next_input++);
          } else {
            slot.active = false;
            --num_active;
          }
          break;
      }
    }
    ++k;
    if (k == num_inflight) k = 0;
  }
  return stats;
}

/// GP schedule over the same operation: groups of `group_size` lookups run
/// `num_stages` staged steps (finished lookups burn no-op slots, kRetry
/// spins in place), then a cleanup pass finishes stragglers sequentially.
template <typename Op>
EngineStats RunGroupPrefetch(Op& op, uint64_t num_inputs, uint32_t group_size,
                             uint32_t num_stages) {
  AMAC_CHECK(group_size >= 1 && num_stages >= 1);
  EngineStats stats;
  stats.lookups = num_inputs;
  struct Slot {
    typename Op::State state;
    bool active;
  };
  std::vector<Slot> group(group_size);
  for (uint64_t base = 0; base < num_inputs; base += group_size) {
    const uint32_t in_group = static_cast<uint32_t>(
        std::min<uint64_t>(group_size, num_inputs - base));
    for (uint32_t j = 0; j < in_group; ++j) {
      op.Start(group[j].state, base + j);
      group[j].active = true;
    }
    for (uint32_t stage = 0; stage < num_stages; ++stage) {
      for (uint32_t j = 0; j < in_group; ++j) {
        if (!group[j].active) {
          ++stats.noops;
          continue;
        }
        ++stats.steps;
        const StepStatus st = op.Step(group[j].state);
        if (st == StepStatus::kDone) {
          group[j].active = false;
        } else if (st == StepStatus::kRetry) {
          // Dependency busy: the static schedule cannot park this lookup
          // elsewhere, so the stage slot is wasted and the lookup is left
          // for the cleanup pass (the paper's "executed later, when the
          // dependency is resolved").
          ++stats.retries;
        } else {
          ++stats.parks;
        }
      }
    }
    // Cleanup pass.  Drains round-robin rather than lookup-at-a-time so a
    // lookup blocked on a latch held by a *parked* group member cannot
    // deadlock the pass (ops may hold latches across kParked).
    uint32_t remaining = 0;
    for (uint32_t j = 0; j < in_group; ++j) remaining += group[j].active;
    while (remaining > 0) {
      for (uint32_t j = 0; j < in_group; ++j) {
        if (!group[j].active) continue;
        ++stats.steps;
        const StepStatus st = op.Step(group[j].state);
        if (st == StepStatus::kParked) ++stats.parks;
        if (st == StepStatus::kRetry) ++stats.retries;
        if (st == StepStatus::kDone) {
          group[j].active = false;
          --remaining;
        }
      }
    }
  }
  return stats;
}

/// SPP schedule: static pipeline with `num_stages` stages spaced `distance`
/// iterations apart; a lookup still unfinished at its final scheduled stage
/// bails out sequentially.
template <typename Op>
EngineStats RunSoftwarePipelined(Op& op, uint64_t num_inputs,
                                 uint32_t num_stages, uint32_t distance) {
  AMAC_CHECK(num_stages >= 1 && distance >= 1);
  EngineStats stats;
  stats.lookups = num_inputs;
  const uint64_t window = static_cast<uint64_t>(num_stages) * distance;
  struct Slot {
    typename Op::State state;
    bool active;
  };
  std::vector<Slot> pipe(window);
  for (uint64_t i = 0; i < num_inputs + window; ++i) {
    for (uint32_t s = num_stages; s >= 1; --s) {
      const uint64_t delay = static_cast<uint64_t>(s) * distance;
      if (i < delay) continue;
      const uint64_t t = i - delay;
      if (t >= num_inputs) continue;
      Slot& slot = pipe[t % window];
      if (!slot.active) {
        ++stats.noops;
        continue;
      }
      ++stats.steps;
      const StepStatus st = op.Step(slot.state);
      if (st == StepStatus::kDone) {
        slot.active = false;
        continue;
      }
      if (st == StepStatus::kRetry) ++stats.retries;
      if (st == StepStatus::kParked) ++stats.parks;
      if (s == num_stages) {
        // Pipeline slot expires this iteration: bail out.  If the lookup
        // blocks on a dependency (kRetry) held by another *parked* slot,
        // stepping only this lookup would deadlock, so the drain
        // round-robins over every active slot until this one finishes —
        // the serialization cost the paper attributes to SPP under
        // read/write dependencies.
        while (slot.active) {
          ++stats.steps;
          const StepStatus fin = op.Step(slot.state);
          if (fin == StepStatus::kDone) {
            slot.active = false;
            break;
          }
          if (fin == StepStatus::kParked) ++stats.parks;
          if (fin == StepStatus::kRetry) {
            ++stats.retries;
            for (auto& other : pipe) {
              if (&other == &slot || !other.active) continue;
              ++stats.steps;
              const StepStatus os = op.Step(other.state);
              if (os == StepStatus::kDone) other.active = false;
              if (os == StepStatus::kParked) ++stats.parks;
              if (os == StepStatus::kRetry) ++stats.retries;
            }
          }
        }
      }
    }
    if (i < num_inputs) {
      Slot& slot = pipe[i % window];
      op.Start(slot.state, i);
      slot.active = true;
    }
  }
  return stats;
}

/// Sequential schedule (the no-prefetch baseline expressed over the same
/// operation; useful for correctness cross-checks).
template <typename Op>
EngineStats RunSequential(Op& op, uint64_t num_inputs) {
  EngineStats stats;
  stats.lookups = num_inputs;
  typename Op::State state;
  for (uint64_t i = 0; i < num_inputs; ++i) {
    op.Start(state, i);
    StepStatus st;
    do {
      ++stats.steps;
      st = op.Step(state);
      if (st == StepStatus::kParked) ++stats.parks;
      if (st == StepStatus::kRetry) ++stats.retries;
    } while (st != StepStatus::kDone);
  }
  return stats;
}

}  // namespace amac
