// Ready-made operations for the generic engine (core/engine.h).
//
// These mirror the hand-written kernels in src/join and src/bst so that (a)
// tests can verify the engine schedules them to identical results and (b)
// the ablation bench can price the abstraction against hand-written AMAC.
// HashBuildOp additionally demonstrates the full Table 1 "Hash Join Build"
// stage machine with chain walking and latch retry — the generic form the
// paper tabulates.
#pragma once

#include <cstdint>

#include "bst/bst.h"
#include "bst/bst_search.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "hashtable/chained_table.h"
#include "relation/relation.h"

namespace amac {

// The production hash probe op lives with the join layer: ProbeOp in
// join/join_ops.h (core stays independent of join).

/// Pipeline stage (core/pipeline.h): BST point lookup on the input row's
/// key; a hit emits Tuple{input key, node payload}.
class BstLookupStage {
 public:
  struct State {
    const BstNode* ptr;
    int64_t key;
  };

  explicit BstLookupStage(const BinarySearchTree& tree) : tree_(&tree) {}

  void Start(State& st, const Tuple& in) {
    st.key = in.key;
    st.ptr = tree_->root();
    Prefetch(st.ptr);
  }

  template <typename Emit>
  StepStatus Step(State& st, Emit&& emit) {
    const BstNode* node = st.ptr;
    if (node == nullptr) return StepStatus::kDone;
    if (node->key == st.key) {
      emit(Tuple{st.key, node->payload});
      return StepStatus::kDone;
    }
    const BstNode* child = st.key < node->key ? node->left : node->right;
    if (child == nullptr) return StepStatus::kDone;
    Prefetch(child);
    st.ptr = child;
    return StepStatus::kParked;
  }

 private:
  const BinarySearchTree* tree_;
};

inline BstLookupStage LookupBst(const BinarySearchTree& tree) {
  return BstLookupStage(tree);
}

/// BST search as an engine operation: a thin adapter over BstLookupStage
/// carrying the probe input index, so a hit reaches the sink as
/// (rid, payload).  One descent implementation serves both paths.
template <typename Sink>
class BstSearchOp {
 public:
  struct State {
    BstLookupStage::State inner;
    uint64_t rid;
  };

  BstSearchOp(const BinarySearchTree& tree, const Relation& probe, Sink& sink)
      : stage_(tree), tree_(&tree), probe_(probe), sink_(sink) {}

  void Start(State& st, uint64_t idx) {
    st.rid = idx;
    stage_.Start(st.inner, probe_[idx]);
  }

  StepStatus Step(State& st) {
    return stage_.Step(st.inner, [this, &st](const Tuple& row) {
      sink_.Emit(st.rid, row.payload);
    });
  }

  // Vector interface (core/vector_engine.h): up to 8 descents per slot,
  // advanced level-by-level through the gathered kernel (bst/bst_search.h).
  // An empty tree starts zero lanes — the same no-emission outcome as the
  // scalar descent, reached without touching a null root.
  static constexpr uint32_t kVecLanes = kSimdLanes;
  struct VecState {
    const BstNode* ptr[kSimdLanes];
    int64_t key[kSimdLanes];
    uint64_t rid[kSimdLanes];
    uint32_t active;
  };

  void StartVec(VecState& st, uint64_t base_idx, uint32_t n) {
    AMAC_DCHECK(n >= 1 && n <= kSimdLanes);
    const BstNode* root = tree_->root();
    if (root == nullptr) {
      st.active = 0;
      return;
    }
    Prefetch(root);
    for (uint32_t i = 0; i < n; ++i) {
      st.key[i] = probe_[base_idx + i].key;
      st.rid[i] = base_idx + i;
      st.ptr[i] = root;
    }
    st.active = n == kSimdLanes ? 0xffu : (1u << n) - 1;
  }

  void RefillLane(VecState& st, uint32_t lane, uint64_t idx) {
    st.key[lane] = probe_[idx].key;
    st.rid[lane] = idx;
    st.ptr[lane] = tree_->root();
    Prefetch(st.ptr[lane]);
    st.active |= 1u << lane;
  }

  uint32_t StepVec(VecState& st) {
    st.active = VecBstStep(st.ptr, st.key, st.active,
                           [this, &st](uint32_t lane, int64_t payload) {
                             sink_.Emit(st.rid[lane], payload);
                           });
    return st.active;
  }

 private:
  BstLookupStage stage_;
  const BinarySearchTree* tree_;
  const Relation& probe_;
  Sink& sink_;
};

/// Hash join build as the *generic* Table 1 stage machine: walk the chain
/// to its tail and append (allocating a node when the tail is full), with a
/// try-latch on the bucket header that parks the insert on conflict.  This
/// is the textbook form from the paper's Table 1 — the production kernels
/// in src/join use the O(1) header-eviction discipline instead (see
/// DESIGN.md), so this op exists to exercise kRetry and multi-stage builds.
template <bool kSync>
class HashBuildOp {
 public:
  struct State {
    BucketNode* head;  ///< latch owner
    BucketNode* ptr;   ///< chain walk position (latch held once walking)
    Tuple tuple;
    bool latched;
  };

  HashBuildOp(ChainedHashTable& table, const Relation& build)
      : table_(table), build_(build) {}

  void Start(State& st, uint64_t idx) {
    st.tuple = build_[idx];
    st.head = table_.BucketForKey(st.tuple.key);
    st.ptr = st.head;
    st.latched = false;
    table_.NoteInsertedKey(st.tuple.key);
    PrefetchWrite(st.head);
  }

  StepStatus Step(State& st) {
    if (!st.latched) {
      const bool ok = kSync ? st.head->latch.TryAcquire()
                            : st.head->latch.TryAcquireUnsync();
      if (!ok) return StepStatus::kRetry;
      st.latched = true;
      st.ptr = st.head;
    }
    BucketNode* node = st.ptr;
    if (node->count < BucketNode::kTuplesPerNode) {
      node->tuples[node->count++] = st.tuple;
      Unlatch(st);
      return StepStatus::kDone;
    }
    if (node->next != nullptr) {
      PrefetchWrite(node->next);
      st.ptr = node->next;  // tail walk continues, latch held
      return StepStatus::kParked;
    }
    BucketNode* fresh = table_.AllocOverflowNode();
    fresh->tuples[0] = st.tuple;
    fresh->count = 1;
    node->next = fresh;
    Unlatch(st);
    return StepStatus::kDone;
  }

 private:
  void Unlatch(State& st) {
    if constexpr (kSync) {
      st.head->latch.Release();
    } else {
      st.head->latch.ReleaseUnsync();
    }
    st.latched = false;
  }

  ChainedHashTable& table_;
  const Relation& build_;
};

}  // namespace amac
