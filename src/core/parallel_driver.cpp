#include "core/parallel_driver.h"

namespace amac {

uint64_t ResolveMorselSize(uint64_t num_inputs, uint32_t num_threads,
                           uint64_t requested, uint32_t inflight) {
  if (requested > 0) return requested;
  if (num_inputs == 0) return 1;
  // Target ~8 morsels per thread so claim-order imbalance evens out, but
  // keep every morsel large enough that the schedule's in-flight window
  // (and its fill/drain ramp) is amortized, and cap it so no single claim
  // dominates the tail.
  constexpr uint64_t kMaxMorsel = uint64_t{1} << 16;
  const uint64_t target =
      num_inputs / (static_cast<uint64_t>(std::max(1u, num_threads)) * 8);
  // The floor itself must respect the cap, or clamp(lo > hi) is UB for
  // absurd in-flight widths.
  const uint64_t floor = std::min(
      kMaxMorsel, std::max<uint64_t>(1024, 8ull * std::max(1u, inflight)));
  return std::clamp(target, floor, kMaxMorsel);
}

}  // namespace amac
