// Composable Pipeline / Executor API: multi-operator queries fused through
// one runtime entry point.
//
// The unified runtime (core/scheduler.h, core/parallel_driver.h) runs ONE
// stage machine over N inputs.  Analytics queries are chains of operators —
// the paper's headline multi-operator workload is a hash-join probe feeding
// a group-by — and running them as disjoint phases materializes every
// intermediate result and re-pays the scheduling ramp per operator.  This
// header adds the layer above the engine:
//
//   * a *stage* concept: a resumable machine consuming one input row and
//     emitting zero or more output rows, parking on its own prefetches;
//   * `Pipeline`, a builder composing a source plus stages into one fused
//     engine operation, so a probe hit flows directly into the aggregation
//     insert (or the next lookup) without ever being materialized — and the
//     whole chain's dependent misses share one in-flight window;
//   * `Executor`, which owns the ExecPolicy + SchedulerParams + a
//     persistent ThreadPool and returns one unified `RunStats` from every
//     Run().
//
//   Executor exec(ExecConfig{ExecPolicy::kAmac, SchedulerParams{10, 1, 0},
//                            /*num_threads=*/8});
//   auto query = Scan(s).Then(Probe(table)).Then(Aggregate(agg));
//   RunStats stats = exec.Run(query);
//
// Stage concept (rows are relation Tuples):
//
//   struct MyStage {
//     struct State { ... };                   // full per-row state
//     void Start(State&, const Tuple& in);    // stage 0: init + 1st prefetch
//     template <typename Emit>
//     StepStatus Step(State&, Emit&& emit);   // one stage; emit(Tuple) rows
//   };
//
// A *source* is the same but index-driven: `Start(State&, uint64_t idx)`.
// Generic sources/stages (Scan, Filter, Map) live here; each data-structure
// layer contributes its own (Probe in join/join_ops.h, Aggregate in
// groupby/groupby_ops.h, LookupBTree / LookupBst / LookupSkipList in their
// ops headers, Walks in graph/graph_ops.h).
#pragma once

#include <array>
#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cycle_timer.h"
#include "common/hash.h"
#include "common/prefetch.h"
#include "common/thread_pool.h"
#include "core/parallel_driver.h"
#include "core/run_stats.h"
#include "core/scheduler.h"
#include "metrics/perf_counters.h"
#include "relation/relation.h"
#include "server/query_scheduler.h"

namespace amac {

class Plan;  // plan/plan.h — the declarative layer above this one

/// Terminal sink for fused pipelines: counts emitted rows and folds them
/// into an order-independent checksum (the same mixing discipline as
/// join/sink.h's CountChecksumSink, over (key, payload)).
class RowSink {
 public:
  void Emit(const Tuple& row) {
    ++rows_;
    checksum_ +=
        Mix64(static_cast<uint64_t>(row.key) * 0x9e3779b97f4a7c15ull +
              static_cast<uint64_t>(row.payload));
  }

  uint64_t rows() const { return rows_; }
  uint64_t checksum() const { return checksum_; }

  void Merge(const RowSink& other) {
    rows_ += other.rows_;
    checksum_ += other.checksum_;
  }

 private:
  uint64_t rows_ = 0;
  uint64_t checksum_ = 0;
};

namespace detail {

/// Adapts a stage's emit callable to the (rid, payload) Sink interface the
/// shared traversal kernels use, re-emitting hits as Tuple{key, payload}
/// rows (the index-lookup stages of btree/skiplist use this).
template <typename EmitFn>
struct KeyedEmitSink {
  EmitFn& fn;
  int64_t key;
  void Emit(uint64_t, int64_t payload) { fn(Tuple{key, payload}); }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Generic sources and stages
// ---------------------------------------------------------------------------

/// Source scanning a relation: input i emits rel[i] downstream.
class ScanSource {
 public:
  struct State {
    uint64_t idx;
  };

  explicit ScanSource(const Relation& rel) : rel_(&rel) {}

  uint64_t size() const { return rel_->size(); }

  void Start(State& st, uint64_t idx) {
    st.idx = idx;
    Prefetch(rel_->data() + idx);
  }

  template <typename Emit>
  StepStatus Step(State& st, Emit&& emit) {
    emit((*rel_)[st.idx]);
    return StepStatus::kDone;
  }

 private:
  const Relation* rel_;
};

/// Pure-compute stage dropping rows that fail `pred(row)`.  No prefetch, so
/// it costs one scheduling step per row (documented altitude cost of
/// keeping every stage uniform).
template <typename Pred>
class FilterStage {
 public:
  struct State {
    Tuple row;
  };

  explicit FilterStage(Pred pred) : pred_(std::move(pred)) {}

  void Start(State& st, const Tuple& in) { st.row = in; }

  template <typename Emit>
  StepStatus Step(State& st, Emit&& emit) {
    if (pred_(st.row)) emit(st.row);
    return StepStatus::kDone;
  }

 private:
  Pred pred_;
};

template <typename Pred>
FilterStage<std::decay_t<Pred>> Filter(Pred&& pred) {
  return FilterStage<std::decay_t<Pred>>(std::forward<Pred>(pred));
}

/// Pure-compute stage rewriting each row as `fn(row)` (e.g. re-keying a
/// join output before aggregation).
template <typename Fn>
class MapStage {
 public:
  struct State {
    Tuple row;
  };

  explicit MapStage(Fn fn) : fn_(std::move(fn)) {}

  void Start(State& st, const Tuple& in) { st.row = in; }

  template <typename Emit>
  StepStatus Step(State& st, Emit&& emit) {
    emit(fn_(st.row));
    return StepStatus::kDone;
  }

 private:
  Fn fn_;
};

template <typename Fn>
MapStage<std::decay_t<Fn>> Map(Fn&& fn) {
  return MapStage<std::decay_t<Fn>>(std::forward<Fn>(fn));
}

// ---------------------------------------------------------------------------
// The fused operation
// ---------------------------------------------------------------------------

/// The engine operation a Pipeline compiles to: the source plus every stage
/// machine of ONE input, chained.  Rows emitted by stage k queue into stage
/// k+1's pending list inside the same lookup state; Step() always advances
/// the *deepest* runnable stage, so intermediates stay tiny (at most one
/// upstream step's emissions) and a probe hit reaches the aggregation
/// insert before the next probe input is touched.  Every kParked/kRetry of
/// any stage parks the whole fused lookup, which is what lets one engine
/// window overlap misses across operators.
template <typename Source, typename Sink, typename... Stages>
class FusedOp {
  static constexpr size_t kNumStages = sizeof...(Stages);
  static_assert(kNumStages <= 16, "pipeline too deep for the running mask");

 public:
  struct State {
    typename Source::State source;
    std::tuple<typename Stages::State...> stages;
    /// pending[i]: rows emitted upstream, waiting to enter stage i.
    std::array<std::vector<Tuple>, kNumStages> pending;
    uint32_t running = 0;  ///< bit i: stage i is mid-row
    bool source_active = false;
  };

  FusedOp(const Source& source, const std::tuple<Stages...>& stages,
          Sink& sink)
      : source_(source), stages_(stages), sink_(&sink) {}

  void Start(State& st, uint64_t idx) {
    st.running = 0;
    st.source_active = true;
    for (auto& queue : st.pending) queue.clear();
    source_.Start(st.source, idx);
  }

  StepStatus Step(State& st) {
    StepStatus status;
    if (StepDeepest<kNumStages>(st, &status)) return status;
    if (st.source_active) {
      status = source_.Step(st.source, EmitterTo<0>(st));
      if (status != StepStatus::kDone) return status;
      st.source_active = false;
      return Drained(st) ? StepStatus::kDone : StepStatus::kParked;
    }
    return StepStatus::kDone;
  }

 private:
  /// Emitter feeding queue J; J == kNumStages is the terminal sink.
  template <size_t J>
  auto EmitterTo(State& st) {
    if constexpr (J == kNumStages) {
      return [this](const Tuple& row) { sink_->Emit(row); };
    } else {
      return [&st](const Tuple& row) { st.pending[J].push_back(row); };
    }
  }

  /// Advance the deepest stage that is mid-row or has pending input
  /// (stages J = I-1 .. 0).  Returns false when no stage had work.
  template <size_t I>
  bool StepDeepest(State& st, StepStatus* status) {
    if constexpr (I == 0) {
      (void)st;
      (void)status;
      return false;
    } else {
      constexpr size_t J = I - 1;
      if (st.running & (uint32_t{1} << J)) {
        const StepStatus s = std::get<J>(stages_).Step(
            std::get<J>(st.stages), EmitterTo<J + 1>(st));
        if (s != StepStatus::kDone) {
          *status = s;
          return true;
        }
        st.running &= ~(uint32_t{1} << J);
        *status = !st.source_active && Drained(st) ? StepStatus::kDone
                                                   : StepStatus::kParked;
        return true;
      }
      if (!st.pending[J].empty()) {
        const Tuple row = st.pending[J].back();
        st.pending[J].pop_back();
        std::get<J>(stages_).Start(std::get<J>(st.stages), row);
        st.running |= uint32_t{1} << J;
        // Park so the Start()'s prefetch matures before the first Step.
        *status = StepStatus::kParked;
        return true;
      }
      return StepDeepest<J>(st, status);
    }
  }

  static bool Drained(const State& st) {
    if (st.running != 0) return false;
    for (const auto& queue : st.pending) {
      if (!queue.empty()) return false;
    }
    return true;
  }

  Source source_;
  std::tuple<Stages...> stages_;
  Sink* sink_;
};

// ---------------------------------------------------------------------------
// Pipeline builder
// ---------------------------------------------------------------------------

/// Value-semantic builder: `Scan(s).Then(Probe(table)).Then(Aggregate(agg))`
/// describes a fused multi-operator query.  Stages hold pointers to their
/// shared read-only (or latched) structures, so a Pipeline is cheap to copy
/// and one instance compiles to any number of per-thread operations.
template <typename Source, typename... Stages>
class Pipeline {
 public:
  Pipeline(Source source, std::tuple<Stages...> stages)
      : source_(std::move(source)), stages_(std::move(stages)) {}

  /// Append a stage, returning the extended pipeline.
  template <typename S>
  Pipeline<Source, Stages..., S> Then(S stage) const {
    return Pipeline<Source, Stages..., S>(
        source_, std::tuple_cat(stages_, std::make_tuple(std::move(stage))));
  }

  uint64_t size() const { return source_.size(); }

  /// Materialize the fused engine operation emitting terminal rows into
  /// `sink` (one per thread under the parallel driver).
  template <typename Sink>
  FusedOp<Source, Sink, Stages...> Compile(Sink& sink) const {
    return FusedOp<Source, Sink, Stages...>(source_, stages_, sink);
  }

 private:
  Source source_;
  std::tuple<Stages...> stages_;
};

/// Root builder: a pipeline whose inputs are the tuples of `rel`.
inline Pipeline<ScanSource> Scan(const Relation& rel) {
  return Pipeline<ScanSource>(ScanSource(rel), std::tuple<>{});
}

/// Root builder from any custom source (see graph/graph_ops.h's Walks).
template <typename Source>
Pipeline<std::decay_t<Source>> From(Source&& source) {
  return Pipeline<std::decay_t<Source>>(std::forward<Source>(source),
                                        std::tuple<>{});
}

/// Degenerate pipeline wrapping an existing engine Operation (the
/// core/engine.h concept).  Executor::Run dispatches it exactly as the free
/// Run(policy, params, op, n) / RunParallel would, so engine counters are
/// identical to the free-function path — pinned by the pipeline property
/// tests.  `make_op(tid)` builds the per-thread operation.
template <typename OpFactory>
class OpPipeline {
 public:
  OpPipeline(uint64_t num_inputs, OpFactory make_op)
      : num_inputs_(num_inputs), make_op_(std::move(make_op)) {}

  uint64_t size() const { return num_inputs_; }
  const OpFactory& factory() const { return make_op_; }

 private:
  uint64_t num_inputs_;
  OpFactory make_op_;
};

template <typename OpFactory>
OpPipeline<std::decay_t<OpFactory>> FromOp(uint64_t num_inputs,
                                           OpFactory&& make_op) {
  return OpPipeline<std::decay_t<OpFactory>>(
      num_inputs, std::forward<OpFactory>(make_op));
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Execution configuration: the policy and tuning knobs every Run() uses.
/// Constructed (not aggregate) so the established positional form
/// `ExecConfig{policy, params, threads, morsel}` keeps compiling cleanly
/// as trailing knobs are added.
struct ExecConfig {
  ExecConfig() = default;
  ExecConfig(ExecPolicy policy_in, const SchedulerParams& params_in,
             uint32_t num_threads_in = 1, uint64_t morsel_size_in = 0)
      : policy(policy_in),
        params(params_in),
        num_threads(num_threads_in),
        morsel_size(morsel_size_in) {}

  ExecPolicy policy = ExecPolicy::kAmac;
  SchedulerParams params;
  uint32_t num_threads = 1;
  /// Morsel size for multi-threaded runs; 0 derives one (ResolveMorselSize).
  uint64_t morsel_size = 0;
  /// Governor knobs when policy == ExecPolicy::kAdaptive ("pick for me").
  AdaptiveConfig adaptive;
};

/// Owns the execution policy and a private QueryScheduler, of which it is
/// the trivial one-query client: every workload — fused pipeline or single
/// operation — enters the runtime through Run(), which submits one query
/// and waits for it, coming back as one RunStats.  The scheduler's
/// ThreadPool persists across Run() calls, so repeated phases (bench reps,
/// query sequences) pay thread spawn once.  Policy and tuning can be
/// changed between runs; the team size is fixed at construction.  To run
/// MANY queries concurrently on one team, use a QueryScheduler directly
/// (server/query_scheduler.h) instead of many executors.
class Executor {
 public:
  explicit Executor(const ExecConfig& config);

  const ExecConfig& config() const { return config_; }
  ExecPolicy policy() const { return config_.policy; }
  uint32_t num_threads() const { return config_.num_threads; }
  ThreadPool& pool() { return scheduler_.pool(); }
  QueryScheduler& scheduler() { return scheduler_; }
  /// Calibration cache consulted by kAdaptive runs (shared across Run()
  /// calls: repeated query shapes skip straight to the measured winner).
  Calibrator& calibrator() { return scheduler_.calibrator(); }

  void set_policy(ExecPolicy policy) { config_.policy = policy; }
  void set_params(const SchedulerParams& params) { config_.params = params; }
  void set_morsel_size(uint64_t morsel_size) {
    config_.morsel_size = morsel_size;
  }

  /// Run a fused pipeline: one FusedOp + RowSink per thread, sinks merged
  /// into the returned stats.
  template <typename Source, typename... Stages>
  RunStats Run(const Pipeline<Source, Stages...>& pipeline) {
    std::vector<RowSink> sinks(config_.num_threads);
    RunStats stats = RunOp(pipeline.size(), [&](uint32_t tid) {
      return pipeline.Compile(sinks[tid]);
    });
    RowSink total;
    for (const auto& sink : sinks) total.Merge(sink);
    stats.outputs = total.rows();
    stats.checksum = total.checksum();
    return stats;
  }

  /// Run a wrapped single-operation pipeline (FromOp).
  template <typename OpFactory>
  RunStats Run(const OpPipeline<OpFactory>& pipeline) {
    return RunOp(pipeline.size(), pipeline.factory());
  }

  /// Run a declarative plan (plan/plan.h): enumerate its physical shapes,
  /// choose one by cost, execute it.  Defined in plan/plan.cpp; equivalent
  /// to RunPlan(*this, plan).run.
  RunStats Run(const Plan& plan);

  /// Low-level entry: run `make_op(tid)` instances over [0, num_inputs).
  /// Single-threaded executors run ONE engine over the whole range (no
  /// morselization), so engine counters — including GP/SPP window noops —
  /// equal the free Run(policy, params, op, n) path exactly.
  /// Multi-threaded executors submit the run as one scheduler query
  /// (morsel tasks on the persistent pool) and wait for it; `make_op` is
  /// called lazily with slot ids < num_threads(), one live morsel per
  /// slot, so the per-thread-sink discipline is unchanged.
  /// ExecPolicy::kAdaptive always takes the scheduler path (even with one
  /// thread): the governor needs a morsel stream to measure and re-tune
  /// on, so the counter-parity contract above applies to static policies
  /// only.
  template <typename OpFactory>
  RunStats RunOp(uint64_t num_inputs, OpFactory&& make_op) {
    if (config_.num_threads <= 1 &&
        config_.policy != ExecPolicy::kAdaptive) {
      RunStats stats;
      stats.inputs = num_inputs;
      WallTimer dispatch;
      auto op = make_op(0);
      // One counter group per thread, opened lazily and reused across
      // runs (perf_event_open is expensive; ioctl reset/enable is not).
      static thread_local PerfCounters counters;
      counters.Start();
      WallTimer wall;
      CycleTimer cycles;
      stats.engine =
          amac::Run(config_.policy, config_.params, op, num_inputs);
      stats.cycles = cycles.Elapsed();
      stats.seconds = wall.ElapsedSeconds();
      stats.perf = counters.Stop();
      stats.dispatch_seconds = dispatch.ElapsedSeconds();
      stats.threads = 1;
      return stats;
    }
    QueryOptions query;
    query.policy = config_.policy;
    query.params = config_.params;
    query.morsel_size = config_.morsel_size;
    query.adaptive = config_.adaptive;
    const QueryTicket ticket = scheduler_.SubmitOp(
        num_inputs, std::forward<OpFactory>(make_op), query);
    return scheduler_.Wait(ticket).run;
  }

 private:
  ExecConfig config_;
  QueryScheduler scheduler_;
};

// ---------------------------------------------------------------------------
// Pipelines as scheduler queries
// ---------------------------------------------------------------------------

/// Submit a fused pipeline to a QueryScheduler as one concurrent query:
/// one FusedOp + RowSink per execution slot, folded into the RunStats
/// (outputs/checksum) when the last morsel drains.  The pipeline is copied
/// into the query (value semantics; stages point at shared structures that
/// must outlive the query).
template <typename Source, typename... Stages>
QueryTicket Submit(QueryScheduler& scheduler,
                   const Pipeline<Source, Stages...>& pipeline,
                   const QueryOptions& options = {}) {
  auto sinks =
      std::make_shared<std::vector<RowSink>>(scheduler.SlotCount(options));
  return scheduler.SubmitOp(
      pipeline.size(),
      [sinks, pipeline](uint32_t slot) {
        return pipeline.Compile((*sinks)[slot]);
      },
      options, [sinks](RunStats* run) {
        RowSink total;
        for (const RowSink& sink : *sinks) total.Merge(sink);
        run->outputs = total.rows();
        run->checksum = total.checksum();
      });
}

/// Submit a wrapped single-operation pipeline (FromOp) as a concurrent
/// query.  The factory's sinks must be sized for scheduler.SlotCount.
template <typename OpFactory>
QueryTicket Submit(QueryScheduler& scheduler,
                   const OpPipeline<OpFactory>& pipeline,
                   const QueryOptions& options = {}) {
  return scheduler.SubmitOp(pipeline.size(), pipeline.factory(), options);
}

}  // namespace amac
