#include "core/pipeline.h"

#include <algorithm>

namespace amac {

Executor::Executor(const ExecConfig& config)
    : config_(config), pool_(std::max(1u, config.num_threads)) {
  // A zero-thread request degrades to a single-threaded executor; keep the
  // recorded config consistent with the team that actually exists.
  config_.num_threads = pool_.size();
}

}  // namespace amac
