#include "core/pipeline.h"

#include <algorithm>

namespace amac {

Executor::Executor(const ExecConfig& config)
    : config_(config),
      scheduler_(QuerySchedulerOptions{
          std::max(1u, config.num_threads), /*max_inflight_queries=*/1,
          AdmissionOrder::kFifo}) {
  // A zero-thread request degrades to a single-threaded executor; keep the
  // recorded config consistent with the team that actually exists.
  config_.num_threads = scheduler_.num_workers();
}

}  // namespace amac
