// Morsel-driven parallel driver for the unified execution runtime.
//
// RunParallel shards `num_inputs` across a thread team: each thread builds
// its own operation instance (per-thread sinks, no shared mutable state in
// the op itself), then repeatedly claims a morsel from an atomic cursor and
// runs it through the policy dispatcher (core/scheduler.h) with one engine
// instance per claim.  Dynamic claiming instead of a static split means a
// thread stuck on long chains or latch conflicts cannot strand work on its
// neighbours — the morsel-driven discipline of modern query engines.
//
// Per-thread EngineStats are merged into one ParallelDriverStats, so the
// scheduling counters stay comparable between the single-threaded and the
// parallel paths.
//
//   auto factory = [&](uint32_t tid) {
//     return ProbeOp<true, CountChecksumSink>(table, probe, sinks[tid]);
//   };
//   ParallelDriverStats stats = RunParallel(config, probe.size(), factory);
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"

namespace amac {

struct ParallelDriverConfig {
  ExecPolicy policy = ExecPolicy::kAmac;
  SchedulerParams params;
  uint32_t num_threads = 1;
  /// Inputs per morsel; 0 derives a size from the input count and thread
  /// count (see ResolveMorselSize).
  uint64_t morsel_size = 0;
};

struct ParallelDriverStats {
  EngineStats engine;    ///< merged across every thread and morsel
  uint64_t morsels = 0;  ///< total morsels claimed
  uint32_t threads = 0;
  /// Cycles between the barrier after every thread is up and the barrier
  /// after the last morsel drains — thread spawn/join cost excluded, the
  /// same discipline the phase drivers use (see common/thread_pool.h).
  uint64_t cycles = 0;
  /// Wall seconds over the same barrier-to-barrier region (throughput
  /// numbers, paper Fig. 7/8).
  double seconds = 0;
  /// Wall seconds of the whole RunParallel call, including getting the team
  /// running (std::thread spawn on the spawning path, wakeup on a
  /// ThreadPool).  dispatch_seconds - seconds is the per-call team cost the
  /// persistent pool removes (fig07's spawn-overhead section).
  double dispatch_seconds = 0;
};

/// Morsel sizing: `requested` wins when nonzero; otherwise aim for several
/// morsels per thread (load balance) without dropping below a floor that
/// keeps the in-flight window busy inside each morsel.
uint64_t ResolveMorselSize(uint64_t num_inputs, uint32_t num_threads,
                           uint64_t requested, uint32_t inflight);

namespace detail {

/// Shared morsel-driven body: `launch(threads, closure)` runs the closure
/// on every tid in [0, threads) and joins — either by spawning std::threads
/// (ParallelFor) or by waking a persistent ThreadPool.
template <typename OpFactory, typename Launcher>
ParallelDriverStats RunParallelImpl(Launcher&& launch,
                                    const ParallelDriverConfig& config,
                                    uint64_t num_inputs,
                                    OpFactory&& make_op) {
  const uint32_t threads = std::max(1u, config.num_threads);
  const uint64_t morsel_size = ResolveMorselSize(
      num_inputs, threads, config.morsel_size, config.params.inflight);
  MorselCursor cursor(num_inputs, morsel_size);
  std::vector<EngineStats> per_thread(threads);
  std::vector<uint64_t> claimed(threads, 0);
  SpinBarrier barrier(threads);
  std::vector<uint64_t> elapsed(threads, 0);
  std::vector<double> elapsed_seconds(threads, 0);
  WallTimer dispatch;
  launch(threads, [&](uint32_t tid) {
    auto op = make_op(tid);
    using OpType = std::decay_t<decltype(op)>;
    barrier.Wait();
    CycleTimer timer;
    WallTimer wall;
    Range morsel;
    while (cursor.Next(&morsel)) {
      OffsetOp<OpType> rebased(op, morsel.begin);
      per_thread[tid].Merge(
          Run(config.policy, config.params, rebased, morsel.size()));
      ++claimed[tid];
    }
    barrier.Wait();
    // Each thread's span ends when the last thread reaches the barrier;
    // the max is robust to a thread whose timer started late because it
    // was preempted right after the release (oversubscribed machines).
    elapsed[tid] = timer.Elapsed();
    elapsed_seconds[tid] = wall.ElapsedSeconds();
  });
  ParallelDriverStats stats;
  stats.dispatch_seconds = dispatch.ElapsedSeconds();
  stats.threads = threads;
  for (uint32_t t = 0; t < threads; ++t) {
    stats.engine.Merge(per_thread[t]);
    stats.morsels += claimed[t];
    stats.cycles = std::max(stats.cycles, elapsed[t]);
    stats.seconds = std::max(stats.seconds, elapsed_seconds[t]);
  }
  return stats;
}

}  // namespace detail

/// Run `num_inputs` inputs under `config`.  `make_op(thread_id)` must
/// return a fresh operation for that thread; operations on different
/// threads may share read-only structures but must not share sinks (merge
/// per-thread sinks afterwards) and must use synchronized latches when they
/// mutate shared state.  This overload spawns a fresh std::thread team per
/// call; prefer the ThreadPool overload (or the core Executor) on repeated
/// phases, where per-call spawn cost dominates short runs.
template <typename OpFactory>
ParallelDriverStats RunParallel(const ParallelDriverConfig& config,
                                uint64_t num_inputs, OpFactory&& make_op) {
  return detail::RunParallelImpl(
      [](uint32_t threads, auto&& fn) { ParallelFor(threads, fn); }, config,
      num_inputs, std::forward<OpFactory>(make_op));
}

/// Same, on a persistent ThreadPool.  Runs min(config.num_threads,
/// pool.size()) threads; pool members beyond that sit the call out.
template <typename OpFactory>
ParallelDriverStats RunParallel(ThreadPool& pool,
                                const ParallelDriverConfig& config,
                                uint64_t num_inputs, OpFactory&& make_op) {
  ParallelDriverConfig capped = config;
  capped.num_threads = std::min(std::max(1u, config.num_threads),
                                pool.size());
  return detail::RunParallelImpl(
      [&pool](uint32_t threads, auto&& fn) {
        pool.Run([&](uint32_t tid) {
          if (tid < threads) fn(tid);
        });
      },
      capped, num_inputs, std::forward<OpFactory>(make_op));
}

}  // namespace amac
