// Unified policy-based execution runtime.
//
// The engine schedules in core/engine.h (sequential, GP, SPP, AMAC) and the
// coroutine interleaver in coro/ are the same abstraction — "run N inputs
// through a resumable operation, differing only in when each input's next
// stage executes" — but historically were five disconnected entry points
// that every bench wired up by hand.  This header collapses them behind one
// runtime-selectable dispatcher:
//
//   SchedulerParams params{.inflight = 10, .stages = 4};
//   EngineStats stats = Run(ExecPolicy::kAmac, params, op, num_inputs);
//
// Any operation satisfying the engine.h Operation concept works with every
// policy, including kCoroutine: a generic adapter wraps the stage machine in
// a C++20 coroutine frame and lets the interleaver do the scheduling, so
// layers get the §6 "coroutine framework" for free without writing co_await
// code.  The parallel driver (core/parallel_driver.h) shards any policy
// across threads with morsel-driven work stealing.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/engine.h"
#include "core/vector_engine.h"
#include "coro/interleaver.h"
#include "coro/task.h"

namespace amac {

/// The schedules a workload can be executed with, selectable at runtime.
/// kSequential..kAmac map onto the engine.h schedules (and onto the
/// paper's Baseline/GP/SPP/AMAC); kCoroutine runs the same operation
/// through the coro/ interleaver (§6's framework direction).  kVectorized
/// and kVectorizedAmac are the SIMD schedules (core/vector_engine.h):
/// batch-gather vectorization and interleaved multi-vectorization; ops
/// without a vector interface run them as their scheduling-equivalent
/// scalar schedule (sequential / AMAC).  kAdaptive is not a schedule of
/// its own: it asks the runtime to *measure and choose* among the static
/// schedules per query (src/adaptive/), so it is only meaningful on the
/// morselized paths (Executor / QueryScheduler).
enum class ExecPolicy : uint8_t {
  kSequential,
  kGroupPrefetch,
  kSoftwarePipelined,
  kAmac,
  kCoroutine,
  kVectorized,
  kVectorizedAmac,
  kAdaptive,
};

/// The seven concrete (static) schedules — the candidate set kAdaptive
/// chooses from, and what every differential/oracle loop iterates.
inline constexpr ExecPolicy kAllExecPolicies[] = {
    ExecPolicy::kSequential,        ExecPolicy::kGroupPrefetch,
    ExecPolicy::kSoftwarePipelined, ExecPolicy::kAmac,
    ExecPolicy::kCoroutine,         ExecPolicy::kVectorized,
    ExecPolicy::kVectorizedAmac,
};

inline constexpr size_t kNumStaticExecPolicies =
    sizeof(kAllExecPolicies) / sizeof(kAllExecPolicies[0]);
static_assert(static_cast<size_t>(ExecPolicy::kAdaptive) ==
                  kNumStaticExecPolicies,
              "static policies must be dense below kAdaptive");

/// Dense index of a *static* policy (array slots in per-policy counters);
/// kAdaptive has no slot — it always resolves to a static schedule first.
inline size_t StaticExecPolicyIndex(ExecPolicy policy) {
  AMAC_DCHECK(policy != ExecPolicy::kAdaptive);
  return static_cast<size_t>(policy);
}

inline const char* ExecPolicyName(ExecPolicy policy) {
  switch (policy) {
    case ExecPolicy::kSequential: return "Sequential";
    case ExecPolicy::kGroupPrefetch: return "GP";
    case ExecPolicy::kSoftwarePipelined: return "SPP";
    case ExecPolicy::kAmac: return "AMAC";
    case ExecPolicy::kCoroutine: return "Coroutine";
    case ExecPolicy::kVectorized: return "Vectorized";
    case ExecPolicy::kVectorizedAmac: return "VecAMAC";
    case ExecPolicy::kAdaptive: return "Adaptive";
  }
  return "?";
}

/// Tuning knobs shared by every policy.  `inflight` is the paper's M (AMAC
/// slot count, GP group size, SPP window, coroutine width); `stages` is the
/// paper's N (provisioned staged passes for GP, pipeline stages for SPP;
/// ignored by the dynamic schedules).
struct SchedulerParams {
  uint32_t inflight = 10;
  uint32_t stages = 1;
  /// Explicit SPP prefetch distance; 0 derives it from inflight/stages.
  uint32_t spp_distance = 0;

  /// SPP prefetch distance: the override when set, otherwise derived the
  /// way every driver in the repo does.
  uint32_t SppDistance() const {
    if (spp_distance > 0) return spp_distance;
    return std::max<uint32_t>(1, inflight / std::max(1u, stages));
  }
};

/// Re-bases an operation's [0, n) input indices onto a global range, so an
/// unmodified op (which indexes the full input) can run over a sub-range —
/// a morsel in the parallel driver, or a thread's static partition in the
/// phase drivers.  Part of the runtime's public contract.
template <typename Op>
class OffsetOp : public VecTypesOf<Op> {
 public:
  using State = typename Op::State;

  OffsetOp(Op& op, uint64_t base) : op_(op), base_(base) {}

  void Start(State& st, uint64_t idx) { op_.Start(st, base_ + idx); }
  StepStatus Step(State& st) { return op_.Step(st); }

  // Vector-interface forwarding, instantiated only for ops that have one
  // (VecTypesOf re-exports VecState/kVecLanes in that case), so re-based
  // morsels run the vector schedules too.
  template <typename O = Op, std::enable_if_t<kHasVectorExec<O>, int> = 0>
  void StartVec(typename O::VecState& st, uint64_t base_idx, uint32_t n) {
    op_.StartVec(st, base_ + base_idx, n);
  }
  template <typename O = Op, std::enable_if_t<kHasVectorExec<O>, int> = 0>
  void RefillLane(typename O::VecState& st, uint32_t lane, uint64_t idx) {
    op_.RefillLane(st, lane, base_ + idx);
  }
  template <typename O = Op, std::enable_if_t<kHasVectorExec<O>, int> = 0>
  uint32_t StepVec(typename O::VecState& st) {
    return op_.StepVec(st);
  }

 private:
  Op& op_;
  uint64_t base_;
};

namespace detail {

/// Generic coroutine adapter: the operation's stage machine driven from
/// inside a coroutine frame.  Start()'s prefetch is followed by one
/// suspension, then each Step() suspends on kParked/kRetry — exactly the
/// schedule the hand-written coroutine kernels implement, but derived
/// mechanically from the same Op the other four policies run.
template <typename Op>
coro::Task OpTask(Op& op, uint64_t idx, EngineStats& stats) {
  typename Op::State state;
  op.Start(state, idx);
  co_await coro::YieldAwait{};
  while (true) {
    ++stats.steps;
    const StepStatus st = op.Step(state);
    if (st == StepStatus::kDone) co_return;
    if (st == StepStatus::kRetry) {
      ++stats.retries;
    } else {
      ++stats.parks;
    }
    co_await coro::YieldAwait{};
  }
}

template <typename Op>
EngineStats RunCoroutineSchedule(Op& op, uint64_t num_inputs,
                                 uint32_t width) {
  EngineStats stats;
  stats.lookups = num_inputs;
  coro::Interleave(
      [&](uint64_t idx) { return OpTask(op, idx, stats); }, num_inputs,
      width);
  return stats;
}

}  // namespace detail

/// Single entry point subsuming RunSequential / RunGroupPrefetch /
/// RunSoftwarePipelined / RunAmac / coro::Interleave.  Zero inflight/stages
/// are tolerated degenerate values (clamped to 1, matching SppDistance()'s
/// guards) rather than aborting in the schedule preconditions.
template <typename Op>
EngineStats Run(ExecPolicy policy, const SchedulerParams& params, Op& op,
                uint64_t num_inputs) {
  const uint32_t inflight = std::max(1u, params.inflight);
  const uint32_t stages = std::max(1u, params.stages);
  switch (policy) {
    case ExecPolicy::kSequential:
      return RunSequential(op, num_inputs);
    case ExecPolicy::kGroupPrefetch:
      return RunGroupPrefetch(op, num_inputs, inflight, stages);
    case ExecPolicy::kSoftwarePipelined:
      return RunSoftwarePipelined(op, num_inputs, stages,
                                  params.SppDistance());
    case ExecPolicy::kAmac:
      return RunAmac(op, num_inputs, inflight);
    case ExecPolicy::kCoroutine:
      return detail::RunCoroutineSchedule(op, num_inputs, inflight);
    case ExecPolicy::kVectorized:
      // Ops without a vector interface run the scheduling-equivalent
      // scalar schedule: batch SIMD with no interleaving degenerates to
      // the sequential order (identical results, no SIMD speedup).  The
      // fallback is counted so downstream JSON never implies vector
      // execution that did not happen.
      if constexpr (kHasVectorExec<Op>) {
        return RunVectorized(op, num_inputs);
      } else {
        EngineStats stats = RunSequential(op, num_inputs);
        stats.vec_fallbacks = num_inputs;
        return stats;
      }
    case ExecPolicy::kVectorizedAmac:
      if constexpr (kHasVectorExec<Op>) {
        return RunVectorizedAmac(op, num_inputs, inflight);
      } else {
        EngineStats stats = RunAmac(op, num_inputs, inflight);
        stats.vec_fallbacks = num_inputs;
        return stats;
      }
    case ExecPolicy::kAdaptive:
      // Adaptive selection needs a morsel stream to measure against
      // (src/adaptive/governor.h drives it per morsel from the Executor /
      // QueryScheduler paths).  A one-shot Run() call has nothing to
      // calibrate on, so it degrades to the paper's overall-best static
      // schedule with the caller's knobs.
      return RunAmac(op, num_inputs, inflight);
  }
  AMAC_CHECK(false);
  return EngineStats{};
}

}  // namespace amac
