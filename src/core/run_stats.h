// The unified result type of every runtime entry point.
//
// RunStats is what an Executor::Run call — and, since the serving layer, a
// QueryScheduler query — comes back as: engine scheduling counters merged
// across threads/morsels plus row accounting and timing.  It lives in its
// own header (below core/pipeline.h, above core/engine.h) so the server
// layer can return it without pulling in the pipeline machinery.
#pragma once

#include <cstdint>

#include "core/engine.h"
#include "core/scheduler.h"
#include "metrics/perf_counters.h"

namespace amac {

/// How a submitted run left the system.  Part of the unified result
/// vocabulary (next to RunStats) because every layer that consumes results
/// — the server's QueryStats, the open-loop bench, the load generator's
/// bookkeeping — needs to name it without pulling in the scheduler header.
/// Only kServed runs carry non-zero RunStats; a rejected or shed query
/// never executed a morsel, and its counters MUST stay zero so scheduler-
/// level sums remain "sum of served per-query stats" (the ServingStats
/// merge invariant pinned by tests/server/query_scheduler_test.cpp).
enum class QueryOutcome : uint8_t {
  kServed,    ///< admitted, executed, completed
  kRejected,  ///< refused at submit: the bounded admission queue was full
  kShed,      ///< dropped from the admission queue: deadline already blown
};

inline const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kServed: return "served";
    case QueryOutcome::kRejected: return "rejected";
    case QueryOutcome::kShed: return "shed";
  }
  return "?";
}

/// What the adaptive governor (src/adaptive/) did to this run when it was
/// executed with ExecPolicy::kAdaptive; inert (active == false) otherwise.
struct AdaptiveStats {
  bool active = false;     ///< the run was policy-governed
  bool cache_hit = false;  ///< calibration skipped via the signature cache
  /// The static schedule the run ended on (the calibrated winner, or the
  /// point a mid-query re-tune switched to).
  ExecPolicy chosen_policy = ExecPolicy::kAmac;
  uint32_t chosen_inflight = 0;
  /// Winner changes after the initial calibration (drift re-tunes and
  /// exploration upsets).
  uint32_t tuning_switches = 0;
  uint64_t calibration_morsels = 0;  ///< morsels spent measuring grid points
  uint64_t probe_morsels = 0;        ///< epsilon-greedy exploration morsels
  /// The run started from a simulation-seeded prior (memsim
  /// SeedCalibrator) instead of a measured entry or a fresh calibration.
  bool seeded_from_sim = false;
  /// Hardware-counter evidence the governor consumed (per-morsel
  /// PerfCounters samples); false when the kernel forbids sampling.
  bool hw_observed = false;
  double hw_stall_fraction = 0;       ///< winner stall-fraction EWMA
  double hw_llc_misses_per_input = 0; ///< winner LLC-misses/input EWMA
};

/// Pipeline dimension of a physical plan shape: run the whole chain fused
/// through one stage machine, or split at the join into probe-materialize +
/// aggregate phases (fig12's two columns).
enum class PlanShape : uint8_t {
  kAuto,      ///< not pinned — the optimizer chooses
  kFused,     ///< single fused pipeline, no intermediate materialization
  kTwoPhase,  ///< materialize the join output, then aggregate it
};

/// Which input a join builds its hash table from.
enum class PlanBuildSide : uint8_t {
  kAuto,     ///< not pinned — the optimizer chooses
  kJoinRel,  ///< build on the relation named by the join node (legacy)
  kInput,    ///< build on the scanned input, probe with the join relation
};

/// How a parallel table build partitions work.
enum class PlanBuildMode : uint8_t {
  kAuto,         ///< not pinned — the optimizer chooses
  kChained,      ///< latched chained inserts, any thread any bucket
  kPartitioned,  ///< bucket-range pre-partitioned build (race-free)
};

inline const char* PlanShapeName(PlanShape s) {
  switch (s) {
    case PlanShape::kAuto: return "auto";
    case PlanShape::kFused: return "fused";
    case PlanShape::kTwoPhase: return "two-phase";
  }
  return "?";
}

inline const char* PlanBuildSideName(PlanBuildSide s) {
  switch (s) {
    case PlanBuildSide::kAuto: return "auto";
    case PlanBuildSide::kJoinRel: return "join-rel";
    case PlanBuildSide::kInput: return "input";
  }
  return "?";
}

inline const char* PlanBuildModeName(PlanBuildMode m) {
  switch (m) {
    case PlanBuildMode::kAuto: return "auto";
    case PlanBuildMode::kChained: return "chained";
    case PlanBuildMode::kPartitioned: return "partitioned";
  }
  return "?";
}

/// What the plan optimizer (src/plan/) decided for this run; inert
/// (active == false) when the run was submitted below the plan layer.
struct PlanStats {
  bool active = false;  ///< the run went through PlanOptimizer
  PlanShape shape = PlanShape::kAuto;
  PlanBuildSide build_side = PlanBuildSide::kAuto;
  PlanBuildMode build_mode = PlanBuildMode::kAuto;
  /// Physical alternatives the compiler enumerated for this plan.
  uint32_t candidates_considered = 0;
  /// The choice came from calibrator priors (true) or from measuring a
  /// prefix of every candidate (false, the successive-halving-style
  /// fallback).
  bool from_priors = false;
  /// The cost model's prediction for the chosen shape over the full input.
  double estimated_cost_cycles = 0;
  /// What the chosen shape actually cost end to end (build + run).
  double measured_cost_cycles = 0;
  /// Rows the pipeline kept per input row on this run (terminal rows /
  /// probe inputs), fed back into the shape priors so the fused-vs-two-
  /// phase costing tracks the match-rate regime; negative when the run
  /// could not observe it.
  double observed_selectivity = -1;
};

/// Write-path accounting for the concurrent structures (hashtable upsert /
/// erase, skiplist insert / erase).  Read-only runs leave it zeroed.
struct WriteStats {
  uint64_t inserts = 0;  ///< upserts that created a new key
  uint64_t updates = 0;  ///< upserts that overwrote an existing payload
  uint64_t erases = 0;   ///< deletes that found and removed their key

  uint64_t Total() const { return inserts + updates + erases; }

  void Merge(const WriteStats& other) {
    inserts += other.inserts;
    updates += other.updates;
    erases += other.erases;
  }
};

/// The one result type every Executor::Run returns, subsuming the historic
/// per-operator stats structs (the PR-3 JoinStats / GroupByStats /
/// SkipListStats shims, now removed).  All rate accessors return 0 (not
/// NaN/inf) on empty runs.
struct RunStats {
  EngineStats engine;     ///< scheduling counters, merged across threads
  uint64_t inputs = 0;    ///< rows entering the pipeline's source
  uint64_t outputs = 0;   ///< rows the terminal stage emitted into the sink
                          ///< (for aggregating terminals: the group count)
  uint64_t checksum = 0;  ///< order-independent checksum of emitted rows
  uint64_t morsels = 0;   ///< morsels claimed (0 on the 1-thread path)
  uint32_t threads = 0;
  uint64_t cycles = 0;    ///< execution span (see seconds), in TSC ticks
  /// Wall time of the measured execution region: barrier-to-barrier on the
  /// fork-join path, first-morsel-to-completion on the scheduler path.
  double seconds = 0;
  /// Wall time of the whole run including team dispatch (fork-join path) or
  /// submit-to-completion latency (scheduler path); always >= `seconds`.
  double dispatch_seconds = 0;
  /// Populated when the run executed under ExecPolicy::kAdaptive.
  AdaptiveStats adaptive;
  /// Populated when the run was submitted as a Plan (src/plan/).
  PlanStats plan;
  /// Populated when the operation mutated a concurrent structure (the
  /// write ops fold their per-op counts in after the run).
  WriteStats writes;
  /// Hardware counters over the measured region, sampled on the
  /// single-threaded static-policy path only (counters attach to the
  /// calling thread; pool threads would escape them).  perf.valid is false
  /// there too when the kernel forbids perf_event_open — check it before
  /// consuming, as the fig05/fig06 --json emitters do.
  PerfCounters::Sample perf;

  double CyclesPerInput() const {
    return inputs ? static_cast<double>(cycles) / static_cast<double>(inputs)
                  : 0;
  }
  /// Inputs per second over the measured region (paper Fig. 7/8 style).
  double Throughput() const {
    return seconds > 0 ? static_cast<double>(inputs) / seconds : 0;
  }
};

}  // namespace amac
