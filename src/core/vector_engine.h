// Vectorized schedules over the engine's Operation concept.
//
// The scalar schedules (core/engine.h) advance one lookup per Step().  The
// vector schedules advance a *lane-masked vector* of lookups per step, so
// the per-lookup compute between misses — hashing, key compares — runs
// through the SIMD kernels (common/simd.h) while the scheduling skeleton
// stays the engine's.  An operation opts in by exposing, alongside the
// scalar interface, the vector interface:
//
//   struct MyOp {
//     static constexpr uint32_t kVecLanes = kSimdLanes;  // lanes per slot
//     struct VecState {
//       ...                 // per-lane fields, arrays of kVecLanes
//       uint32_t active;    // lane bitmask, maintained by the op
//     };
//     // Begin lanes [0, n) on inputs base_idx .. base_idx+n-1 (n >= 1 may
//     // be < kVecLanes at the tail).  Sets st.active.
//     void StartVec(VecState& st, uint64_t base_idx, uint32_t n);
//     // Restart one retired lane on a fresh input.  Sets its active bit.
//     void RefillLane(VecState& st, uint32_t lane, uint64_t idx);
//     // Advance every active lane one stage; clears the bits of lanes that
//     // finished.  Returns the new st.active.
//     uint32_t StepVec(VecState& st);
//   };
//
// Two schedules consume it:
//
//   * RunVectorized — pure batch SIMD: one vector at a time, stepped to
//     exhaustion.  No miss overlap beyond the 8 intra-vector gathers; this
//     is the classic "vectorized hash join" point the paper's interleaving
//     argument is made against, included as a first-class grid point.
//   * RunVectorizedAmac — interleaved multi-vectorization: ceil(M / lanes)
//     slots each carry a lane-masked vector; retired lanes refill from the
//     input stream (a fully retired vector restarts through StartVec, so
//     uniform workloads keep the 8-wide vectorized hash on the refill
//     path too), and the rolling cursor tours slots exactly like AMAC.
//
// Operations without the vector interface still accept the vector policies:
// Run() (core/scheduler.h) falls back to the scheduling-equivalent scalar
// schedule (kVectorized -> sequential, kVectorizedAmac -> AMAC), so policy
// sweeps and the calibrator grid stay total over every op.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "core/engine.h"

namespace amac {

template <typename Op, typename = void>
struct HasVectorExecT : std::false_type {};
template <typename Op>
struct HasVectorExecT<Op, std::void_t<typename Op::VecState>>
    : std::true_type {};

/// True when Op implements the vector interface above.
template <typename Op>
inline constexpr bool kHasVectorExec = HasVectorExecT<Op>::value;

/// Conditional base re-exporting the vector types, so wrappers (OffsetOp)
/// expose the vector interface exactly when the wrapped op has one.
template <typename Op, bool = kHasVectorExec<Op>>
struct VecTypesOf {};
template <typename Op>
struct VecTypesOf<Op, true> {
  using VecState = typename Op::VecState;
  static constexpr uint32_t kVecLanes = Op::kVecLanes;
};

/// Pure batch-SIMD schedule: vectors of kVecLanes inputs, one at a time.
template <typename Op>
EngineStats RunVectorized(Op& op, uint64_t num_inputs) {
  EngineStats stats;
  stats.lookups = num_inputs;
  constexpr uint32_t kLanes = Op::kVecLanes;
  typename Op::VecState st;
  for (uint64_t base = 0; base < num_inputs; base += kLanes) {
    const uint32_t n =
        static_cast<uint32_t>(std::min<uint64_t>(kLanes, num_inputs - base));
    op.StartVec(st, base, n);
    uint32_t active = st.active;
    while (active != 0) {
      stats.steps += static_cast<uint32_t>(__builtin_popcount(active));
      active = op.StepVec(st);
      stats.parks += static_cast<uint32_t>(__builtin_popcount(active));
    }
  }
  return stats;
}

/// Interleaved multi-vectorization: AMAC's rolling cursor over
/// ceil(inflight / kVecLanes) slots, each slot a lane-masked vector.
template <typename Op>
EngineStats RunVectorizedAmac(Op& op, uint64_t num_inputs,
                              uint32_t inflight) {
  EngineStats stats;
  stats.lookups = num_inputs;
  if (num_inputs == 0) return stats;
  constexpr uint32_t kLanes = Op::kVecLanes;
  const uint32_t num_slots =
      std::max<uint32_t>(1, (std::max(1u, inflight) + kLanes - 1) / kLanes);
  std::vector<typename Op::VecState> slots(num_slots);
  uint64_t next_input = 0;
  uint32_t active_slots = 0;
  for (auto& st : slots) {
    const uint32_t n = static_cast<uint32_t>(
        std::min<uint64_t>(kLanes, num_inputs - next_input));
    if (n > 0) {
      op.StartVec(st, next_input, n);
      next_input += n;
    } else {
      st.active = 0;
    }
    active_slots += st.active != 0;
  }
  uint32_t k = 0;
  while (active_slots > 0) {
    auto& st = slots[k];
    if (st.active != 0) {
      stats.steps += static_cast<uint32_t>(__builtin_popcount(st.active));
      const uint32_t before = st.active;
      uint32_t after = op.StepVec(st);
      if (after == 0 && num_inputs - next_input >= kLanes) {
        // Whole vector retired with a full chunk pending: restart through
        // StartVec so the refill path keeps the vectorized hash.
        op.StartVec(st, next_input, kLanes);
        next_input += kLanes;
        after = st.active;
      } else {
        uint32_t retired = before & ~after;
        while (retired != 0 && next_input < num_inputs) {
          const uint32_t lane =
              static_cast<uint32_t>(__builtin_ctz(retired));
          retired &= retired - 1;
          op.RefillLane(st, lane, next_input++);
        }
        after = st.active;
      }
      stats.parks += static_cast<uint32_t>(__builtin_popcount(after));
      if (after == 0) --active_slots;
    }
    ++k;
    if (k == num_slots) k = 0;
  }
  return stats;
}

}  // namespace amac
