// 8-wide gather-based group-chain walk step.
//
// One call advances up to 8 latched group-by chain walks (a lane-masked
// vector) by one node each — the exact stage boundary of GroupByOp::Step's
// walk stage (groupby_ops.h) — using masked gathers over the GroupNode
// layout: the group key and the `next` pointer are fetched in-register
// instead of through scalar dependent loads.  `used` is never gathered:
// the table's sentinel invariant (agg_table.h — unused nodes hold
// GroupNode::kEmptyGroupKey, and an unused header always has a null
// `next`) makes the key compare alone exact for any non-sentinel probe
// key.  Lanes probing the sentinel key itself must not enter this kernel;
// GroupByOp routes them through the exact scalar step.
//
// Every lane entering the kernel HOLDS its bucket latch, so the gathered
// loads race with nothing: all writers of the chain serialize on that
// latch.  The kernel only classifies; all mutation (Accumulate, insert)
// stays scalar in GroupByOp, on nodes whose lines the gathers just pulled.
//
// The ISA split follows common/simd.h: intrinsics live in non-template
// AMAC_TARGET_* functions returning plain masks; the wrapper falls back to
// a scalar per-lane visit below AVX2 (same results, no gathers).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/prefetch.h"
#include "common/simd.h"
#include "groupby/agg_table.h"

namespace amac {

// The gather offsets below hard-code the documented GroupNode layout.
static_assert(offsetof(GroupNode, key) == 8);
static_assert(offsetof(GroupNode, next) == 56);

/// Per-step masks of the gathered walk: which lanes found their group at
/// the current node, and which lanes advanced to a next node (their ptrs
/// already updated).  Lanes in neither mask are at their chain end — the
/// caller runs the scalar insert there.  Two words, so the
/// target-attributed kernels return in registers.
struct VecGroupMasks {
  uint32_t match = 0;
  uint32_t advanced = 0;
};

#if AMAC_SIMD_X86
namespace simd_detail {

AMAC_TARGET_AVX2 inline VecGroupMasks VecGroupStepAvx2(GroupNode** ptrs,
                                                       const int64_t* keys,
                                                       uint32_t active) {
  VecGroupMasks r;
  for (uint32_t half = 0; half < 2; ++half) {
    const uint32_t nibble = (active >> (4 * half)) & 0xf;
    if (nibble == 0) continue;
    const __m256i lanes = LaneMask4(nibble);
    const __m256i ptrv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ptrs + 4 * half));
    const __m256i keyv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + 4 * half));
    // The key compare is unconditional on `used`: unused nodes hold the
    // sentinel (agg_table.h invariant) and sentinel-probing lanes never
    // enter this kernel, so a key match implies a used, equal-keyed node.
    const __m256i k = MaskGather64(
        _mm256_add_epi64(ptrv, _mm256_set1_epi64x(8)), lanes);
    const __m256i m = _mm256_and_si256(_mm256_cmpeq_epi64(k, keyv), lanes);
    r.match |= static_cast<uint32_t>(
                   _mm256_movemask_pd(_mm256_castsi256_pd(m)))
               << (4 * half);
    const __m256i walk = _mm256_andnot_si256(m, lanes);
    if (!_mm256_testz_si256(walk, walk)) {
      const __m256i nextv = MaskGather64(
          _mm256_add_epi64(ptrv, _mm256_set1_epi64x(56)), walk);
      const __m256i cont = _mm256_andnot_si256(
          _mm256_cmpeq_epi64(nextv, _mm256_setzero_si256()), walk);
      // Blend + full-width store (not a masked store): the next step
      // reloads these pointers immediately and masked stores defeat
      // store-to-load forwarding.
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ptrs + 4 * half),
                          _mm256_blendv_epi8(ptrv, nextv, cont));
      r.advanced |= static_cast<uint32_t>(
                        _mm256_movemask_pd(_mm256_castsi256_pd(cont)))
                    << (4 * half);
    }
  }
  return r;
}

/// AVX-512 variant: all 8 lanes in one zmm register, lane masks as native
/// kmasks; bit-level semantics identical to the AVX2 kernel.
AMAC_TARGET_AVX512 inline VecGroupMasks VecGroupStepAvx512(
    GroupNode** ptrs, const int64_t* keys, uint32_t active) {
  VecGroupMasks r;
  const __mmask8 lanes = static_cast<__mmask8>(active);
  const __m512i ptrv = _mm512_loadu_si512(ptrs);
  const __m512i keyv = _mm512_loadu_si512(keys);
  const __m512i zero = _mm512_setzero_si512();
  const __m512i k = _mm512_mask_i64gather_epi64(
      zero, lanes, _mm512_add_epi64(ptrv, _mm512_set1_epi64(8)), nullptr, 1);
  const __mmask8 m = _mm512_mask_cmpeq_epi64_mask(lanes, k, keyv);
  const __mmask8 walk = static_cast<__mmask8>(lanes & ~m);
  if (walk != 0) {
    const __m512i nextv = _mm512_mask_i64gather_epi64(
        zero, walk, _mm512_add_epi64(ptrv, _mm512_set1_epi64(56)), nullptr,
        1);
    const __mmask8 cont = _mm512_mask_cmpneq_epi64_mask(walk, nextv, zero);
    _mm512_storeu_si512(ptrs, _mm512_mask_blend_epi64(cont, ptrv, nextv));
    r.advanced = cont;
  }
  r.match = m;
  return r;
}

}  // namespace simd_detail
#endif  // AMAC_SIMD_X86

/// Advance every active lane's latched chain walk by one node.
/// `ptrs[lane]` / `keys[lane]` are the walk positions and group keys; all
/// lanes in `active` must hold their bucket latch and probe a key that is
/// not GroupNode::kEmptyGroupKey.  Advanced lanes have ptrs moved to their
/// next node and prefetched; match lanes stay on the matched node (the
/// caller accumulates there); lanes in neither mask sit at their chain end
/// (the caller inserts there).
inline VecGroupMasks VecGroupWalkStep(GroupNode** ptrs, const int64_t* keys,
                                      uint32_t active) {
#if AMAC_SIMD_X86
  // Nearly-empty vectors drain cheaper through the scalar visit below.
  const SimdLevel level = CurrentSimdLevel();
  if (level >= SimdLevel::kAvx2 && __builtin_popcount(active) > 2) {
    const VecGroupMasks r =
        level >= SimdLevel::kAvx512
            ? simd_detail::VecGroupStepAvx512(ptrs, keys, active)
            : simd_detail::VecGroupStepAvx2(ptrs, keys, active);
    uint32_t walking = r.advanced;
    while (walking != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(walking));
      walking &= walking - 1;
      PrefetchWrite(ptrs[lane]);
    }
    return r;
  }
#endif
  VecGroupMasks r;
  uint32_t pending = active;
  while (pending != 0) {
    const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(pending));
    pending &= pending - 1;
    const GroupNode* node = ptrs[lane];
    const uint32_t bit = 1u << lane;
    if (node->used && node->key == keys[lane]) {
      r.match |= bit;
    } else if (node->used && node->next != nullptr) {
      ptrs[lane] = node->next;
      PrefetchWrite(node->next);
      r.advanced |= bit;
    }
  }
  return r;
}

}  // namespace amac
