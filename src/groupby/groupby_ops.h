// Group-by aggregation as a generic-engine operation (core/scheduler.h).
//
// The stage machine mirrors GroupByAmac (groupby_kernels.h): a try-latch
// stage that parks with kRetry on conflict, then a latched chain walk with
// one node visit per Step — the §3.1 "extra intermediate stage" that keeps
// a parked lookup from re-acquiring its own latch.  With kSync = true the
// same op runs under the morsel-driven parallel driver against a shared
// AggregateTable; aggregation is order-independent, so any policy × thread
// count combination produces an identical table.
#pragma once

#include <cstdint>

#include "common/prefetch.h"
#include "common/simd.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "groupby/agg_table.h"
#include "groupby/groupby_kernels.h"
#include "groupby/vec_groupby.h"
#include "relation/relation.h"

namespace amac {

template <bool kSync>
class GroupByOp {
 public:
  struct State {
    GroupNode* head;  ///< bucket header (owns the latch)
    GroupNode* ptr;   ///< chain walk position while the latch is held
    int64_t key;
    int64_t payload;
    bool latched;
  };

  GroupByOp(AggregateTable& table, const Relation& input)
      : table_(table), input_(&input) {}

  /// Row-driven construction (AggregateStage): inputs arrive via StartRow,
  /// so no backing relation exists.
  explicit GroupByOp(AggregateTable& table)
      : table_(table), input_(nullptr) {}

  void Start(State& st, uint64_t idx) {
    AMAC_DCHECK(input_ != nullptr);
    StartRow(st, (*input_)[idx]);
  }

  void StartRow(State& st, const Tuple& in) {
    st.key = in.key;
    st.payload = in.payload;
    st.head = table_.HeadForKey(st.key);
    st.ptr = nullptr;
    st.latched = false;
    PrefetchWrite(st.head);
  }

  StepStatus Step(State& st) {
    if (!st.latched) {
      // Single try-acquire; on failure the scheduler parks the lookup and
      // tours the other in-flight slots (§3.2: no per-lookup spinning).
      if (!detail::GroupTryLatch<kSync>(st.head)) return StepStatus::kRetry;
      st.latched = true;
      st.ptr = st.head;
    }
    GroupNode* node = st.ptr;
    if (node->used && node->key == st.key) {
      node->Accumulate(st.payload);
      Unlatch(st);
      return StepStatus::kDone;
    }
    if (node->used && node->next != nullptr) {
      Prefetch(node->next);
      st.ptr = node->next;  // stay in the walk stage, latch held
      return StepStatus::kParked;
    }
    // End of chain: create the group (only a header can be unused).
    if (!node->used) {
      AMAC_DCHECK(node == st.head);
      node->used = 1;
      node->key = st.key;
      node->count = 0;
      node->Accumulate(st.payload);
    } else {
      GroupNode* fresh = table_.AllocNode();
      fresh->used = 1;
      fresh->key = st.key;
      fresh->count = 0;
      fresh->Accumulate(st.payload);
      fresh->next = st.head->next;
      st.head->next = fresh;
    }
    Unlatch(st);
    return StepStatus::kDone;
  }

  // Vector interface (core/vector_engine.h).  StartVec hashes all lanes
  // through the 8-wide kernel (common/simd.h); each StepVec try-latches
  // unlatched lanes scalar (a failed acquire just leaves the lane active —
  // the vector-schedule analogue of kRetry; no deadlock, since every latch
  // holder makes progress each step), then advances all latched walkers
  // one node via the gathered kernel (groupby/vec_groupby.h).  Matches and
  // chain-end inserts mutate scalar under the held latch, so the resulting
  // table is bitwise-identical to the scalar schedules'.  Lanes probing
  // the sentinel key run the exact scalar classification instead of the
  // gather (the key compare alone cannot tell them from unused nodes).
  static constexpr uint32_t kVecLanes = kSimdLanes;
  struct VecState {
    GroupNode* head[kSimdLanes];  ///< bucket headers (own the latches)
    GroupNode* ptr[kSimdLanes];   ///< walk positions while latched
    int64_t key[kSimdLanes];
    int64_t payload[kSimdLanes];
    uint32_t active;
    uint32_t latched;
  };

  void StartVec(VecState& st, uint64_t base_idx, uint32_t n) {
    AMAC_DCHECK(input_ != nullptr);
    AMAC_DCHECK(n >= 1 && n <= kSimdLanes);
    int64_t keys[kSimdLanes];
    for (uint32_t i = 0; i < n; ++i) keys[i] = (*input_)[base_idx + i].key;
    for (uint32_t i = n; i < kSimdLanes; ++i) keys[i] = keys[n - 1];
    uint64_t bucket[kSimdLanes];
    HashToBucket8(table_.hash_kind(), keys, table_.bucket_mask(), bucket);
    GroupNode* buckets = table_.buckets();
    for (uint32_t i = 0; i < n; ++i) {
      st.key[i] = keys[i];
      st.payload[i] = (*input_)[base_idx + i].payload;
      st.head[i] = buckets + bucket[i];
      st.ptr[i] = nullptr;
      PrefetchWrite(st.head[i]);
    }
    st.active = n == kSimdLanes ? 0xffu : (1u << n) - 1;
    st.latched = 0;
  }

  void RefillLane(VecState& st, uint32_t lane, uint64_t idx) {
    const Tuple& in = (*input_)[idx];
    st.key[lane] = in.key;
    st.payload[lane] = in.payload;
    st.head[lane] = table_.HeadForKey(in.key);
    st.ptr[lane] = nullptr;
    PrefetchWrite(st.head[lane]);
    st.active |= 1u << lane;
    st.latched &= ~(1u << lane);
  }

  uint32_t StepVec(VecState& st) {
    // Stage 1 per lane: one try-acquire, as the scalar Step does.  Lanes
    // that fail stay active-unlatched and retry on the next tour.
    uint32_t unlatched = st.active & ~st.latched;
    while (unlatched != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(unlatched));
      unlatched &= unlatched - 1;
      if (detail::GroupTryLatch<kSync>(st.head[lane])) {
        st.latched |= 1u << lane;
        st.ptr[lane] = st.head[lane];
      }
    }
    // Stage 2: gathered walk over every latched lane with a gather-safe
    // (non-sentinel) key; sentinel-probing lanes classify scalar.
    uint32_t walkers = st.active & st.latched;
    uint32_t scalar_lanes = 0;
    uint32_t pending = walkers;
    while (pending != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(pending));
      pending &= pending - 1;
      if (st.key[lane] == GroupNode::kEmptyGroupKey) {
        scalar_lanes |= 1u << lane;
      }
    }
    walkers &= ~scalar_lanes;
    VecGroupMasks masks;
    if (walkers != 0) {
      masks = VecGroupWalkStep(st.ptr, st.key, walkers);
    }
    while (scalar_lanes != 0) {
      const uint32_t lane =
          static_cast<uint32_t>(__builtin_ctz(scalar_lanes));
      scalar_lanes &= scalar_lanes - 1;
      const GroupNode* node = st.ptr[lane];
      const uint32_t bit = 1u << lane;
      if (node->used && node->key == st.key[lane]) {
        masks.match |= bit;
      } else if (node->used && node->next != nullptr) {
        st.ptr[lane] = node->next;
        PrefetchWrite(node->next);
        masks.advanced |= bit;
      }
      walkers |= bit;  // classified: retire/advance below with the rest
    }
    // Matches accumulate in place; chain-end lanes insert — both scalar,
    // latch held, exactly the scalar Step's mutation code.
    uint32_t finish = walkers & ~masks.advanced;
    while (finish != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(finish));
      finish &= finish - 1;
      GroupNode* node = st.ptr[lane];
      if (masks.match & (1u << lane)) {
        node->Accumulate(st.payload[lane]);
      } else if (!node->used) {
        AMAC_DCHECK(node == st.head[lane]);
        node->used = 1;
        node->key = st.key[lane];
        node->count = 0;
        node->Accumulate(st.payload[lane]);
      } else {
        GroupNode* fresh = table_.AllocNode();
        fresh->used = 1;
        fresh->key = st.key[lane];
        fresh->count = 0;
        fresh->Accumulate(st.payload[lane]);
        fresh->next = st.head[lane]->next;
        st.head[lane]->next = fresh;
      }
      detail::GroupUnlatch<kSync>(st.head[lane]);
      st.latched &= ~(1u << lane);
      st.active &= ~(1u << lane);
    }
    return st.active;
  }

 private:
  void Unlatch(State& st) {
    detail::GroupUnlatch<kSync>(st.head);
    st.latched = false;
  }

  AggregateTable& table_;
  const Relation* input_;
};

/// Pipeline stage (core/pipeline.h): group-by insert fed by upstream rows
/// (in.key groups, in.payload accumulates).  Terminal — emits nothing; the
/// result is the AggregateTable itself.  kSync = true latches buckets, the
/// correct default whenever the Executor may run multi-threaded;
/// aggregation is commutative, so results are schedule- and
/// thread-count-independent either way.
template <bool kSync = true>
class AggregateStage {
 public:
  using State = typename GroupByOp<kSync>::State;

  explicit AggregateStage(AggregateTable& table) : op_(table) {}

  void Start(State& st, const Tuple& in) { op_.StartRow(st, in); }

  template <typename Emit>
  StepStatus Step(State& st, Emit&&) {
    return op_.Step(st);
  }

 private:
  GroupByOp<kSync> op_;
};

template <bool kSync = true>
AggregateStage<kSync> Aggregate(AggregateTable& table) {
  return AggregateStage<kSync>(table);
}

}  // namespace amac
