// Group-by aggregation as a generic-engine operation (core/scheduler.h).
//
// The stage machine mirrors GroupByAmac (groupby_kernels.h): a try-latch
// stage that parks with kRetry on conflict, then a latched chain walk with
// one node visit per Step — the §3.1 "extra intermediate stage" that keeps
// a parked lookup from re-acquiring its own latch.  With kSync = true the
// same op runs under the morsel-driven parallel driver against a shared
// AggregateTable; aggregation is order-independent, so any policy × thread
// count combination produces an identical table.
#pragma once

#include <cstdint>

#include "common/prefetch.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "groupby/agg_table.h"
#include "groupby/groupby_kernels.h"
#include "relation/relation.h"

namespace amac {

template <bool kSync>
class GroupByOp {
 public:
  struct State {
    GroupNode* head;  ///< bucket header (owns the latch)
    GroupNode* ptr;   ///< chain walk position while the latch is held
    int64_t key;
    int64_t payload;
    bool latched;
  };

  GroupByOp(AggregateTable& table, const Relation& input)
      : table_(table), input_(&input) {}

  /// Row-driven construction (AggregateStage): inputs arrive via StartRow,
  /// so no backing relation exists.
  explicit GroupByOp(AggregateTable& table)
      : table_(table), input_(nullptr) {}

  void Start(State& st, uint64_t idx) {
    AMAC_DCHECK(input_ != nullptr);
    StartRow(st, (*input_)[idx]);
  }

  void StartRow(State& st, const Tuple& in) {
    st.key = in.key;
    st.payload = in.payload;
    st.head = table_.HeadForKey(st.key);
    st.ptr = nullptr;
    st.latched = false;
    PrefetchWrite(st.head);
  }

  StepStatus Step(State& st) {
    if (!st.latched) {
      // Single try-acquire; on failure the scheduler parks the lookup and
      // tours the other in-flight slots (§3.2: no per-lookup spinning).
      if (!detail::GroupTryLatch<kSync>(st.head)) return StepStatus::kRetry;
      st.latched = true;
      st.ptr = st.head;
    }
    GroupNode* node = st.ptr;
    if (node->used && node->key == st.key) {
      node->Accumulate(st.payload);
      Unlatch(st);
      return StepStatus::kDone;
    }
    if (node->used && node->next != nullptr) {
      Prefetch(node->next);
      st.ptr = node->next;  // stay in the walk stage, latch held
      return StepStatus::kParked;
    }
    // End of chain: create the group (only a header can be unused).
    if (!node->used) {
      AMAC_DCHECK(node == st.head);
      node->used = 1;
      node->key = st.key;
      node->count = 0;
      node->Accumulate(st.payload);
    } else {
      GroupNode* fresh = table_.AllocNode();
      fresh->used = 1;
      fresh->key = st.key;
      fresh->count = 0;
      fresh->Accumulate(st.payload);
      fresh->next = st.head->next;
      st.head->next = fresh;
    }
    Unlatch(st);
    return StepStatus::kDone;
  }

 private:
  void Unlatch(State& st) {
    detail::GroupUnlatch<kSync>(st.head);
    st.latched = false;
  }

  AggregateTable& table_;
  const Relation* input_;
};

/// Pipeline stage (core/pipeline.h): group-by insert fed by upstream rows
/// (in.key groups, in.payload accumulates).  Terminal — emits nothing; the
/// result is the AggregateTable itself.  kSync = true latches buckets, the
/// correct default whenever the Executor may run multi-threaded;
/// aggregation is commutative, so results are schedule- and
/// thread-count-independent either way.
template <bool kSync = true>
class AggregateStage {
 public:
  using State = typename GroupByOp<kSync>::State;

  explicit AggregateStage(AggregateTable& table) : op_(table) {}

  void Start(State& st, const Tuple& in) { op_.StartRow(st, in); }

  template <typename Emit>
  StepStatus Step(State& st, Emit&&) {
    return op_.Step(st);
  }

 private:
  GroupByOp<kSync> op_;
};

template <bool kSync = true>
AggregateStage<kSync> Aggregate(AggregateTable& table) {
  return AggregateStage<kSync>(table);
}

}  // namespace amac
