// Aggregation hash table for the group-by operator.
//
// Paper §4: "we extend the hash table used in hash join with an additional
// aggregation field ... We aggregate the values with six aggregation
// functions (avg, count, min, max, sum and sum squared), which are applied
// upon a match in the hash table."
//
// One group per 64-byte node: the running state of all six aggregates
// (avg = sum/count is derived) plus the chain pointer.  The first node of
// each chain is clustered with the bucket header, like the join table.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>

#include "common/aligned.h"
#include "common/hash.h"
#include "common/latch.h"
#include "common/macros.h"
#include "relation/relation.h"

namespace amac {

struct AMAC_CACHE_ALIGNED GroupNode {
  /// Key an unused node holds.  The invariant (maintained by the table's
  /// constructor, Clear() and AllocNode()) lets the gathered group-by walk
  /// (vec_groupby.h) test membership with a key compare alone: a used node
  /// never stores the sentinel unless the caller aggregates the sentinel
  /// key itself, which the vectorized path detects per lane and routes
  /// through the exact scalar step.
  static constexpr int64_t kEmptyGroupKey =
      std::numeric_limits<int64_t>::min();

  Latch latch;        ///< bucket-level latch (meaningful on headers)
  uint8_t used = 0;   ///< 0 = empty header slot
  uint8_t pad[6] = {};
  int64_t key = kEmptyGroupKey;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  uint64_t sumsq = 0;
  GroupNode* next = nullptr;

  /// Fold one payload into all aggregates.
  void Accumulate(int64_t payload) {
    if (used && count > 0) {
      min = payload < min ? payload : min;
      max = payload > max ? payload : max;
    } else {
      min = max = payload;
    }
    ++count;
    sum += payload;
    sumsq += static_cast<uint64_t>(payload) * static_cast<uint64_t>(payload);
  }

  double Avg() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};
static_assert(sizeof(GroupNode) == kCacheLineSize);

class AggregateTable {
 public:
  struct Options {
    HashKind hash_kind = HashKind::kMurmur;
    /// Expected chain nodes per bucket for `expected_groups` distinct keys.
    double target_nodes_per_bucket = 1.0;
  };

  AggregateTable(uint64_t expected_groups, Options options);

  uint64_t BucketIndex(int64_t key) const {
    return hash_kind_ == HashKind::kMurmur
               ? HashToBucket<HashKind::kMurmur>(static_cast<uint64_t>(key),
                                                 bucket_mask_)
               : HashToBucket<HashKind::kRadix>(static_cast<uint64_t>(key),
                                                bucket_mask_);
  }
  GroupNode* HeadForKey(int64_t key) { return &buckets_[BucketIndex(key)]; }

  /// Thread-safe bump allocation of an overflow node.
  GroupNode* AllocNode();

  uint64_t num_buckets() const { return buckets_.size(); }
  GroupNode* buckets() { return buckets_.data(); }
  const GroupNode* buckets() const { return buckets_.data(); }
  uint64_t bucket_mask() const { return bucket_mask_; }
  HashKind hash_kind() const { return hash_kind_; }

  void Clear();

  /// Visit every group (headers + overflow chains); not a hot path.
  void ForEachGroup(const std::function<void(const GroupNode&)>& fn) const;

  /// Number of distinct groups currently stored.
  uint64_t CountGroups() const;

  /// Total rows folded in (sum of the per-group count aggregate) — the
  /// row count that reached the aggregation, which the plan layer reads
  /// off after a run to observe pipeline selectivity without any per-row
  /// instrumentation.  Walks groups; not a hot path.
  uint64_t TotalRows() const;

  /// Order-independent checksum over the full aggregate state of every
  /// group; engines that compute the same aggregation agree on this value.
  uint64_t Checksum() const;

 private:
  AlignedBuffer<GroupNode> buckets_;
  AlignedBuffer<GroupNode> pool_;
  std::atomic<uint64_t> pool_next_{0};
  uint64_t bucket_mask_ = 0;
  HashKind hash_kind_;
};

}  // namespace amac
