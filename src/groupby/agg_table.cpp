#include "groupby/agg_table.h"

namespace amac {

AggregateTable::AggregateTable(uint64_t expected_groups, Options options)
    : hash_kind_(options.hash_kind) {
  AMAC_CHECK(expected_groups > 0);
  uint64_t nbuckets = NextPow2(static_cast<uint64_t>(
      static_cast<double>(expected_groups) / options.target_nodes_per_bucket +
      0.5));
  nbuckets = std::max<uint64_t>(nbuckets, 1);
  buckets_ = AlignedBuffer<GroupNode>(nbuckets);
  bucket_mask_ = nbuckets - 1;
  // Worst case: every group in an overflow node.
  pool_ = AlignedBuffer<GroupNode>(expected_groups + 1);
}

GroupNode* AggregateTable::AllocNode() {
  const uint64_t idx = pool_next_.fetch_add(1, std::memory_order_relaxed);
  AMAC_CHECK_MSG(idx < pool_.size(), "group node pool exhausted");
  GroupNode* node = &pool_[idx];
  node->used = 0;
  node->key = GroupNode::kEmptyGroupKey;
  node->count = 0;
  node->sum = 0;
  node->sumsq = 0;
  node->next = nullptr;
  return node;
}

void AggregateTable::Clear() {
  for (GroupNode& b : buckets_) {
    b.used = 0;
    b.key = GroupNode::kEmptyGroupKey;
    b.count = 0;
    b.sum = 0;
    b.sumsq = 0;
    b.next = nullptr;
  }
  pool_next_.store(0, std::memory_order_relaxed);
}

void AggregateTable::ForEachGroup(
    const std::function<void(const GroupNode&)>& fn) const {
  for (const GroupNode& head : buckets_) {
    for (const GroupNode* n = &head; n != nullptr; n = n->next) {
      if (n->used) fn(*n);
    }
  }
}

uint64_t AggregateTable::CountGroups() const {
  uint64_t groups = 0;
  ForEachGroup([&](const GroupNode&) { ++groups; });
  return groups;
}

uint64_t AggregateTable::TotalRows() const {
  uint64_t rows = 0;
  ForEachGroup([&](const GroupNode& g) {
    rows += static_cast<uint64_t>(g.count);
  });
  return rows;
}

uint64_t AggregateTable::Checksum() const {
  uint64_t sum = 0;
  ForEachGroup([&](const GroupNode& g) {
    uint64_t h = Mix64(static_cast<uint64_t>(g.key));
    h = Mix64(h ^ static_cast<uint64_t>(g.count));
    h = Mix64(h ^ static_cast<uint64_t>(g.sum));
    h = Mix64(h ^ static_cast<uint64_t>(g.min));
    h = Mix64(h ^ static_cast<uint64_t>(g.max));
    h = Mix64(h ^ g.sumsq);
    sum += h;
  });
  return sum;
}

}  // namespace amac
