// Group-by kernels: Baseline, GP, SPP, AMAC.
//
// Every input tuple either updates the aggregates of its key's group node
// or creates that node — a read/write dependency on the bucket, guarded by
// the bucket latch.  This is the workload where the paper's §3.2 latch
// handling matters:
//
//  * Baseline/GP/SPP acquire the latch with a spin and perform the whole
//    latched walk+update in one code stage — their static schedules cannot
//    park a conflicting lookup, so contention serializes them and the chain
//    walk under the latch enjoys no prefetch overlap.
//  * AMAC try-acquires: a failed acquire leaves the lookup parked in its
//    slot (stage 1) and the engine moves on.  After acquisition, node visits
//    proceed in a *separate* stage (stage 2) with the latch held — the
//    "extra intermediate stage" of §3.1 that prevents a lookup from
//    re-acquiring its own latch after being parked mid-chain.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/prefetch.h"
#include "groupby/agg_table.h"
#include "relation/relation.h"

namespace amac {

namespace detail {

template <bool kSync>
inline bool GroupTryLatch(GroupNode* head) {
  if constexpr (kSync) {
    return head->latch.TryAcquire();
  } else {
    return head->latch.TryAcquireUnsync();
  }
}

template <bool kSync>
inline void GroupUnlatch(GroupNode* head) {
  if constexpr (kSync) {
    head->latch.Release();
  } else {
    head->latch.ReleaseUnsync();
  }
}

template <bool kSync>
inline void GroupSpinLatch(GroupNode* head) {
  if constexpr (kSync) {
    head->latch.Acquire();
  } else {
    AMAC_DCHECK(!head->latch.IsHeld());
    (void)head->latch.TryAcquireUnsync();
  }
}

/// Latched walk + update/append, all in one go (used by Baseline/GP/SPP).
/// Caller has already acquired the header latch.
inline void UpdateOrInsertLocked(AggregateTable& table, GroupNode* head,
                                 int64_t key, int64_t payload) {
  if (!head->used) {
    head->used = 1;
    head->key = key;
    head->count = 0;
    head->Accumulate(payload);
    return;
  }
  GroupNode* node = head;
  while (true) {
    if (node->key == key) {
      node->Accumulate(payload);
      return;
    }
    if (node->next == nullptr) break;
    node = node->next;
  }
  GroupNode* fresh = table.AllocNode();
  fresh->used = 1;
  fresh->key = key;
  fresh->count = 0;
  fresh->Accumulate(payload);
  // O(1) push-front behind the header; chain order is irrelevant.
  fresh->next = head->next;
  head->next = fresh;
}

}  // namespace detail

template <bool kSync>
void GroupByBaseline(const Relation& input, uint64_t begin, uint64_t end,
                     AggregateTable& table) {
  for (uint64_t i = begin; i < end; ++i) {
    GroupNode* head = table.HeadForKey(input[i].key);
    detail::GroupSpinLatch<kSync>(head);
    detail::UpdateOrInsertLocked(table, head, input[i].key, input[i].payload);
    detail::GroupUnlatch<kSync>(head);
  }
}

template <bool kSync>
void GroupByGroupPrefetch(const Relation& input, uint64_t begin, uint64_t end,
                          uint32_t group_size, AggregateTable& table) {
  AMAC_CHECK(group_size >= 1);
  std::vector<GroupNode*> heads(group_size);
  for (uint64_t base = begin; base < end; base += group_size) {
    const uint32_t n_in_group =
        static_cast<uint32_t>(std::min<uint64_t>(group_size, end - base));
    for (uint32_t j = 0; j < n_in_group; ++j) {
      heads[j] = table.HeadForKey(input[base + j].key);
      PrefetchWrite(heads[j]);
    }
    for (uint32_t j = 0; j < n_in_group; ++j) {
      const Tuple& t = input[base + j];
      detail::GroupSpinLatch<kSync>(heads[j]);
      detail::UpdateOrInsertLocked(table, heads[j], t.key, t.payload);
      detail::GroupUnlatch<kSync>(heads[j]);
    }
  }
}

template <bool kSync>
void GroupBySoftwarePipelined(const Relation& input, uint64_t begin,
                              uint64_t end, uint32_t distance,
                              AggregateTable& table) {
  AMAC_CHECK(distance >= 1);
  const uint64_t n = end - begin;
  std::vector<GroupNode*> pipe(distance);
  for (uint64_t i = 0; i < n + distance; ++i) {
    if (i >= distance) {
      const uint64_t t = i - distance;
      const Tuple& tup = input[begin + t];
      GroupNode* head = pipe[t % distance];
      detail::GroupSpinLatch<kSync>(head);
      detail::UpdateOrInsertLocked(table, head, tup.key, tup.payload);
      detail::GroupUnlatch<kSync>(head);
    }
    if (i < n) {
      GroupNode* head = table.HeadForKey(input[begin + i].key);
      PrefetchWrite(head);
      pipe[i % distance] = head;
    }
  }
}

/// AMAC group-by (paper Table 1 column 3 plus the §3.1 intermediate stage).
template <bool kSync>
void GroupByAmac(const Relation& input, uint64_t begin, uint64_t end,
                 uint32_t num_inflight, AggregateTable& table) {
  AMAC_CHECK(num_inflight >= 1);
  enum : uint8_t { kStageLatch = 1, kStageWalk = 2, kStageIdle = 0 };
  struct GbState {
    GroupNode* head;  ///< bucket header (owns the latch)
    GroupNode* ptr;   ///< node being visited while the latch is held
    int64_t key;
    int64_t payload;
    uint8_t stage;
  };
  std::vector<GbState> s(num_inflight);

  uint64_t next_input = begin;
  uint32_t num_active = 0;
  for (uint32_t k = 0; k < num_inflight; ++k) {
    if (next_input < end) {
      GroupNode* head = table.HeadForKey(input[next_input].key);
      PrefetchWrite(head);
      s[k] = GbState{head, nullptr, input[next_input].key,
                     input[next_input].payload, kStageLatch};
      ++next_input;
      ++num_active;
    } else {
      s[k].stage = kStageIdle;
    }
  }

  // Completes the lookup in slot `st` and immediately initiates the next
  // input (terminal/initial merge); returns false when input is exhausted.
  auto refill = [&](GbState& st) {
    if (next_input < end) {
      GroupNode* head = table.HeadForKey(input[next_input].key);
      PrefetchWrite(head);
      st = GbState{head, nullptr, input[next_input].key,
                   input[next_input].payload, kStageLatch};
      ++next_input;
      return true;
    }
    st.stage = kStageIdle;
    return false;
  };

  uint32_t k = 0;
  while (num_active > 0) {
    GbState& st = s[k];
    switch (st.stage) {
      case kStageIdle:
        break;
      case kStageLatch:
        // Single try-acquire; on failure the lookup stays parked here and
        // the cursor moves on (§3.2: "no spinning on a single lookup").
        if (detail::GroupTryLatch<kSync>(st.head)) {
          st.ptr = st.head;
          st.stage = kStageWalk;
          // The header was prefetched at initiation; visit it right away.
          goto walk;
        }
        break;
      case kStageWalk: {
      walk:
        GroupNode* node = st.ptr;
        if (node->used && node->key == st.key) {
          node->Accumulate(st.payload);
          detail::GroupUnlatch<kSync>(st.head);
          if (!refill(st)) --num_active;
          break;
        }
        if (node->used && node->next != nullptr) {
          Prefetch(node->next);
          st.ptr = node->next;  // stay in kStageWalk, latch held
          break;
        }
        // End of chain: create the group.
        if (!node->used) {
          // Empty header slot (only the header can be unused).
          AMAC_DCHECK(node == st.head);
          node->used = 1;
          node->key = st.key;
          node->count = 0;
          node->Accumulate(st.payload);
        } else {
          GroupNode* fresh = table.AllocNode();
          fresh->used = 1;
          fresh->key = st.key;
          fresh->count = 0;
          fresh->Accumulate(st.payload);
          fresh->next = st.head->next;
          st.head->next = fresh;
        }
        detail::GroupUnlatch<kSync>(st.head);
        if (!refill(st)) --num_active;
        break;
      }
    }
    ++k;
    if (k == num_inflight) k = 0;
  }
}

}  // namespace amac
