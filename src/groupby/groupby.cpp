#include "groupby/groupby.h"

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "groupby/groupby_kernels.h"
#include "groupby/groupby_ops.h"

namespace amac {

GroupByStats RunGroupBy(Executor& exec, const Relation& input,
                        AggregateTable* table) {
  GroupByStats stats;
  stats.input_tuples = input.size();
  const uint32_t threads = exec.num_threads();
  if (exec.policy() == ExecPolicy::kSequential) {
    // The paper's Baseline is the plain no-prefetch aggregation loop; keep
    // the hand kernel (as the skiplist/BST drivers do) so fig09's speedup
    // ratios stay anchored to the no-prefetch chase.
    WallTimer wall;
    CycleTimer cycles;
    if (threads <= 1) {
      GroupByBaseline<false>(input, 0, input.size(), *table);
    } else {
      SpinBarrier barrier(threads);
      exec.pool().Run([&](uint32_t tid) {
        const Range r = PartitionRange(input.size(), threads, tid);
        barrier.Wait();
        GroupByBaseline<true>(input, r.begin, r.end, *table);
        barrier.Wait();
      });
    }
    stats.cycles = cycles.Elapsed();
    stats.seconds = wall.ElapsedSeconds();
  } else {
    RunStats run;
    if (threads <= 1) {
      // Unsynchronized latches on the single-threaded path, as the hand
      // kernels used.
      run = exec.Run(FromOp(input.size(), [&](uint32_t) {
        return GroupByOp<false>(*table, input);
      }));
    } else {
      run = exec.Run(FromOp(input.size(), [&](uint32_t) {
        return GroupByOp<true>(*table, input);
      }));
    }
    stats.cycles = run.cycles;
    stats.seconds = run.seconds;
  }
  stats.groups = table->CountGroups();
  stats.checksum = table->Checksum();
  return stats;
}

GroupByStats RunGroupBy(const Relation& input, const GroupByConfig& config,
                        AggregateTable* table) {
  Executor exec(config.Exec());
  return RunGroupBy(exec, input, table);
}

GroupByStats RunGroupBy(const Relation& input, uint64_t expected_groups,
                        const GroupByConfig& config) {
  AggregateTable::Options options;
  options.hash_kind = config.hash_kind;
  AggregateTable table(expected_groups, options);
  return RunGroupBy(input, config, &table);
}

}  // namespace amac
