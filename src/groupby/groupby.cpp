#include "groupby/groupby.h"

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "groupby/groupby_kernels.h"
#include "groupby/groupby_ops.h"

namespace amac {

namespace {

template <bool kSync>
void RunKernel(const Relation& input, uint64_t begin, uint64_t end,
               const GroupByConfig& config, AggregateTable& table) {
  switch (config.policy) {
    case ExecPolicy::kSequential:
      GroupByBaseline<kSync>(input, begin, end, table);
      break;
    case ExecPolicy::kGroupPrefetch:
      GroupByGroupPrefetch<kSync>(input, begin, end, config.inflight, table);
      break;
    case ExecPolicy::kSoftwarePipelined:
      GroupBySoftwarePipelined<kSync>(input, begin, end, config.inflight,
                                      table);
      break;
    case ExecPolicy::kAmac:
      GroupByAmac<kSync>(input, begin, end, config.inflight, table);
      break;
    case ExecPolicy::kCoroutine: {
      // No hand-written coroutine kernel: drive the generic GroupByOp stage
      // machine through the unified runtime's coroutine schedule.
      GroupByOp<kSync> op(table, input);
      OffsetOp<GroupByOp<kSync>> rebased(op, begin);
      Run(ExecPolicy::kCoroutine, SchedulerParams{config.inflight, 1, 0},
          rebased, end - begin);
      break;
    }
  }
}

}  // namespace

GroupByStats RunGroupBy(const Relation& input, const GroupByConfig& config,
                        AggregateTable* table) {
  GroupByStats stats;
  stats.input_tuples = input.size();
  WallTimer wall;
  CycleTimer cycles;
  if (config.num_threads <= 1) {
    RunKernel<false>(input, 0, input.size(), config, *table);
  } else {
    SpinBarrier barrier(config.num_threads);
    ParallelFor(config.num_threads, [&](uint32_t tid) {
      const Range r = PartitionRange(input.size(), config.num_threads, tid);
      barrier.Wait();
      RunKernel<true>(input, r.begin, r.end, config, *table);
      barrier.Wait();
    });
  }
  stats.cycles = cycles.Elapsed();
  stats.seconds = wall.ElapsedSeconds();
  stats.groups = table->CountGroups();
  stats.checksum = table->Checksum();
  return stats;
}

GroupByStats RunGroupBy(const Relation& input, uint64_t expected_groups,
                        const GroupByConfig& config) {
  AggregateTable::Options options;
  options.hash_kind = config.hash_kind;
  AggregateTable table(expected_groups, options);
  return RunGroupBy(input, config, &table);
}

}  // namespace amac
