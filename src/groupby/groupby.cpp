#include "groupby/groupby.h"

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "groupby/groupby_kernels.h"
#include "groupby/groupby_ops.h"

namespace amac {

RunStats RunGroupBy(Executor& exec, const Relation& input,
                    AggregateTable* table) {
  RunStats run;
  const uint32_t threads = exec.num_threads();
  if (exec.policy() == ExecPolicy::kSequential) {
    // The paper's Baseline is the plain no-prefetch aggregation loop; keep
    // the hand kernel (as the skiplist/BST drivers do) so fig09's speedup
    // ratios stay anchored to the no-prefetch chase.
    run.inputs = input.size();
    run.threads = std::max(1u, threads);
    WallTimer wall;
    CycleTimer cycles;
    if (threads <= 1) {
      GroupByBaseline<false>(input, 0, input.size(), *table);
    } else {
      SpinBarrier barrier(threads);
      exec.pool().Run([&](uint32_t tid) {
        const Range r = PartitionRange(input.size(), threads, tid);
        barrier.Wait();
        GroupByBaseline<true>(input, r.begin, r.end, *table);
        barrier.Wait();
      });
    }
    run.cycles = cycles.Elapsed();
    run.seconds = wall.ElapsedSeconds();
    run.dispatch_seconds = run.seconds;
  } else if (threads <= 1) {
    // Unsynchronized latches on the single-threaded path, as the hand
    // kernels used.
    run = exec.Run(FromOp(input.size(), [&](uint32_t) {
      return GroupByOp<false>(*table, input);
    }));
  } else {
    run = exec.Run(FromOp(input.size(), [&](uint32_t) {
      return GroupByOp<true>(*table, input);
    }));
  }
  run.outputs = table->CountGroups();
  run.checksum = table->Checksum();
  return run;
}

}  // namespace amac
