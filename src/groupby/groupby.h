// Group-by driver: aggregates an input relation into an AggregateTable with
// a selected execution policy, single- or multi-threaded.
#pragma once

#include <cstdint>

#include "core/scheduler.h"
#include "groupby/agg_table.h"
#include "relation/relation.h"

namespace amac {

struct GroupByConfig {
  ExecPolicy policy = ExecPolicy::kAmac;
  uint32_t inflight = 10;  ///< M: AMAC slots / GP group / SPP distance
  uint32_t num_threads = 1;
  HashKind hash_kind = HashKind::kMurmur;
};

struct GroupByStats {
  uint64_t input_tuples = 0;
  uint64_t groups = 0;
  uint64_t checksum = 0;
  uint64_t cycles = 0;
  double seconds = 0;

  double CyclesPerTuple() const {
    return input_tuples ? static_cast<double>(cycles) /
                              static_cast<double>(input_tuples)
                        : 0;
  }
};

/// Aggregate `input` into `table` (which must be empty and sized for the
/// expected number of groups).
GroupByStats RunGroupBy(const Relation& input, const GroupByConfig& config,
                        AggregateTable* table);

/// Convenience: allocates a table for `expected_groups` and runs.
GroupByStats RunGroupBy(const Relation& input, uint64_t expected_groups,
                        const GroupByConfig& config);

}  // namespace amac
