// Group-by driver: aggregates an input relation into an AggregateTable
// through the unified runtime, single- or multi-threaded.
//
// The entry point takes an `Executor` (core/pipeline.h) and drives the
// generic GroupByOp stage machine (morsel-driven when multi-threaded); the
// hand-written kernels in groupby_kernels.h remain for the ablation bench
// and kernel tests.  The PR-3 GroupByConfig/GroupByStats shims are gone;
// the result is the runtime's unified RunStats.
#pragma once

#include <cstdint>

#include "core/pipeline.h"
#include "core/scheduler.h"
#include "groupby/agg_table.h"
#include "relation/relation.h"

namespace amac {

/// Aggregate `input` into `table` (which must be empty and sized for the
/// expected number of groups) under the executor's policy.  The returned
/// RunStats carry inputs = |input|, outputs = resulting group count, and
/// checksum = the table's order-independent checksum.
RunStats RunGroupBy(Executor& exec, const Relation& input,
                    AggregateTable* table);

}  // namespace amac
