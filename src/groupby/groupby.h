// Group-by driver: aggregates an input relation into an AggregateTable
// through the unified runtime, single- or multi-threaded.
//
// The primary entry points take an `Executor` (core/pipeline.h) and drive
// the generic GroupByOp stage machine (morsel-driven when multi-threaded);
// the hand-written kernels in groupby_kernels.h remain for the ablation
// bench and kernel tests.  The `GroupByConfig` free functions are
// deprecated shims for this PR's migration window (transient Executor per
// call).
#pragma once

#include <cstdint>

#include "core/pipeline.h"
#include "core/scheduler.h"
#include "groupby/agg_table.h"
#include "relation/relation.h"

namespace amac {

/// Deprecated: all-in-one configuration for the legacy free functions.
/// Migrate to Executor(ExecConfig); hash_kind moves to the table options.
struct GroupByConfig {
  ExecPolicy policy = ExecPolicy::kAmac;
  uint32_t inflight = 10;  ///< M: AMAC slots / GP group / SPP distance
  uint32_t num_threads = 1;
  HashKind hash_kind = HashKind::kMurmur;

  /// The execution half of this config, for constructing an Executor.
  ExecConfig Exec() const {
    return ExecConfig{policy, SchedulerParams{inflight, 1, 0}, num_threads,
                      0};
  }
};

struct GroupByStats {
  uint64_t input_tuples = 0;
  uint64_t groups = 0;
  uint64_t checksum = 0;
  uint64_t cycles = 0;
  double seconds = 0;

  double CyclesPerTuple() const {
    return input_tuples ? static_cast<double>(cycles) /
                              static_cast<double>(input_tuples)
                        : 0;
  }
};

/// Aggregate `input` into `table` (which must be empty and sized for the
/// expected number of groups) under the executor's policy.
GroupByStats RunGroupBy(Executor& exec, const Relation& input,
                        AggregateTable* table);

/// Deprecated shims (one-PR migration window): forward to the Executor
/// form through a transient per-call Executor.
GroupByStats RunGroupBy(const Relation& input, const GroupByConfig& config,
                        AggregateTable* table);
GroupByStats RunGroupBy(const Relation& input, uint64_t expected_groups,
                        const GroupByConfig& config);

}  // namespace amac
