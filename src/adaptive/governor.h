// Per-query policy governor: the online loop that turns "measure once"
// calibration into "stay right as conditions change".
//
// One QueryGovernor steers one kAdaptive query.  The morsel runner
// (QueryScheduler::SubmitOp) asks it what schedule to run before every
// morsel and reports the measured (inputs, cycles) afterwards:
//
//   phase kCalibrating — drive a CalibrationEpisode over the candidate
//     grid (skipped entirely on a calibration-cache hit); the winner's
//     measured cycles-per-input becomes the drift baseline and the result
//     is stored back into the shared Calibrator under the query's
//     WorkloadSignature.
//   phase kRunning — run the winner, keeping a per-morsel
//     cycles-per-input EWMA.  With probability epsilon a morsel instead
//     probes one of the other first-halving survivors (epsilon-greedy);
//     a probe that beats the winner by the switch margin usurps it.  When
//     the winner's EWMA drifts past drift_ratio of its calibrated
//     baseline (skew moved, contention appeared, the cached winner no
//     longer fits), the governor re-enters calibration over the survivor
//     set — a successive-halving re-tune mid-query.
//
// All decisions come from a private seeded common/rng.h stream, so a given
// sequence of Acquire()/Report() calls is fully deterministic (pinned by
// tests/adaptive/governor_test.cpp).  Thread-safe at morsel granularity:
// a mutex guards the whole state machine, which is negligible against the
// 1k+-input morsels it decides for.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "adaptive/calibrator.h"
#include "adaptive/signature.h"
#include "common/rng.h"
#include "core/run_stats.h"
#include "metrics/perf_counters.h"

namespace amac {

class QueryGovernor {
 public:
  /// `calibrator` (nullable) supplies the cross-query cache; `stages` is
  /// the caller's pipeline-stage knob, passed through to every grid point.
  /// Non-zero `num_inputs` lets the cache-hit path validate the cached
  /// entry against the relation actually submitted (stale priors from a
  /// pinned signature reused across relation sizes are evicted instead of
  /// adopted).
  QueryGovernor(const AdaptiveConfig& config, Calibrator* calibrator,
                const WorkloadSignature& signature, uint32_t stages,
                uint64_t num_inputs = 0);

  /// The schedule the next morsel should run.  `token` must be handed back
  /// to Report() with the morsel's measurements.
  struct Choice {
    ExecPolicy policy;
    SchedulerParams params;
    uint32_t token;  ///< opaque: grid index + measurement/probe flags
  };
  Choice Acquire();

  /// Fold one executed morsel's cost back into the decision state.  `hw`
  /// (nullable) carries the morsel's hardware counters when the runner
  /// could sample them: a valid sample folds the stall fraction into the
  /// morsel's effective cost (AdaptiveConfig::hw_stall_weight), so
  /// mis-predicted priors self-correct from hardware evidence rather than
  /// wall-clock noise alone.
  void Report(const Choice& choice, uint64_t inputs, uint64_t cycles,
              const PerfCounters::Sample* hw = nullptr);

  /// Final accounting (RunStats::adaptive); called once when the query's
  /// last morsel drained.  A query that drained mid-calibration banks its
  /// partial ranking into the calibrator, so the next same-shaped query
  /// does not start from scratch.
  void Finalize(AdaptiveStats* out);

  /// The current winner (observability/tests).
  GridPoint current() const;
  uint32_t tuning_switches() const;

 private:
  enum class Phase { kCalibrating, kRunning };

  // Token encoding: low 16 bits candidate index, bit 16 measured, bit 17
  // probe, bits 18+ the low 14 bits of the epoch (reports carrying a
  // superseded epoch are dropped: their index means nothing in the new
  // phase; 14 bits of wraparound far outlasts any plausible retune rate).
  static constexpr uint32_t kMeasuredBit = 1u << 16;
  static constexpr uint32_t kProbeBit = 1u << 17;
  static constexpr uint32_t kEpochShift = 18;
  static constexpr uint32_t kEpochMask = (1u << (32 - kEpochShift)) - 1;

  Choice MakeChoice(const GridPoint& point, uint32_t token) const;
  void FinishCalibrationLocked();
  void EnterRetuneLocked();
  /// Install `winner` over `survivors` as the steady state — explore set
  /// (anchor guaranteed, see EnsureAnchorLocked), EWMAs, drift baseline —
  /// shared by the cache-hit constructor path and FinishCalibrationLocked.
  void AdoptWinnerLocked(const GridPoint& winner, double cpi,
                         std::vector<GridPoint> survivors);
  /// Mirror the current steady state into the calibration cache.
  void StoreResultLocked();
  /// Keep the no-prefetch anchor (kSequential) in the explore set: it is
  /// the qualitatively different schedule — calibration on cold caches
  /// favours prefetchers, and warm cache-resident workloads must be able
  /// to flip back to Baseline through exploration.
  void EnsureAnchorLocked();

  const AdaptiveConfig config_;
  Calibrator* const calibrator_;  ///< nullable
  const WorkloadSignature signature_;
  const uint32_t stages_;

  mutable std::mutex mu_;
  Phase phase_;
  uint32_t epoch_ = 0;
  std::unique_ptr<CalibrationEpisode> episode_;  ///< live while calibrating
  std::vector<GridPoint> survivors_;             ///< exploration candidates
  std::vector<double> survivor_ewma_;            ///< cpi EWMA per survivor
  size_t winner_ = 0;                            ///< into survivors_
  size_t probe_cursor_ = 0;  ///< round-robin over the explore set
  double baseline_cpi_ = 0;  ///< calibrated winner cycles/input
  uint32_t drift_strikes_ = 0;  ///< consecutive over-threshold morsels
  Rng rng_;

  bool cache_hit_ = false;
  bool retuning_ = false;     ///< the live episode is a drift re-tune
  GridPoint retune_from_;     ///< winner before the re-tune started
  uint32_t tuning_switches_ = 0;
  uint64_t calibration_morsels_ = 0;
  uint64_t probe_morsels_ = 0;

  /// Simulation-seeded prior handling: a cache hit on a from_sim entry
  /// adopts the simulated ranking but NOT its model-cycle baseline for
  /// drift purposes (the scales differ); after seed_confirm_morsels real
  /// winner morsels the entry is re-stored as measured.
  bool adopted_sim_prior_ = false;  ///< sticky, for Finalize accounting
  bool seed_unconfirmed_ = false;   ///< prior not yet re-stored as measured
  uint32_t seed_winner_reports_ = 0;
  /// Hardware-evidence EWMAs of the winner's morsels (observability and
  /// the AdaptiveStats hw fields); only updated on valid samples.
  bool hw_observed_ = false;
  double hw_stall_ewma_ = 0;
  double hw_llc_per_input_ewma_ = 0;
};

}  // namespace amac
