// Online calibration of the ExecPolicy × inflight grid.
//
// The paper's sensitivity results (Fig. 6, our fig06 bench) show that the
// best memory-latency-hiding schedule and its in-flight width M depend on
// the data structure, hit rate, skew, and contention — there is no single
// right (policy, M).  The calibrator measures instead of guessing:
//
//   * `CalibrationEpisode` is a successive-halving tournament over the
//     candidate grid, fed one morsel of the REAL query at a time (sampling
//     is just the first few MorselCursor claims, so calibration morsels do
//     useful work — they merely run under the schedule being auditioned).
//     Each round every surviving grid point gets `measure_morsels` morsels;
//     the slower half is eliminated; the last survivor is the winner and
//     its measured cycles-per-input becomes the drift baseline.
//   * `Calibrator` caches finished episodes keyed by WorkloadSignature, so
//     a repeated query shape skips straight to the winner (pinned by the
//     tests/adaptive cache-hit suite), and owns the grid construction.
//
// The governor (adaptive/governor.h) drives episodes per query and layers
// the epsilon-greedy exploration / drift re-tuning loop on top.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "adaptive/signature.h"
#include "core/scheduler.h"

namespace amac {

/// One candidate configuration: a static schedule plus its in-flight width
/// (the paper's M; ignored by kSequential).
struct GridPoint {
  ExecPolicy policy = ExecPolicy::kAmac;
  uint32_t inflight = 10;

  /// The SchedulerParams this point runs with; `stages` (the paper's N)
  /// stays the caller's — the grid only searches policy × M.
  SchedulerParams Params(uint32_t stages) const {
    return SchedulerParams{inflight, std::max(1u, stages), 0};
  }
};

inline bool operator==(const GridPoint& a, const GridPoint& b) {
  return a.policy == b.policy && a.inflight == b.inflight;
}

/// Tuning knobs of the adaptive subsystem (ExecConfig::adaptive and
/// QueryOptions::adaptive).  Defaults are deliberately conservative: a
/// small grid, one measurement morsel per point per round, and light
/// exploration, so "pick for me" costs a few percent of steady-state
/// throughput at most.
struct AdaptiveConfig {
  /// In-flight widths crossed with every non-sequential static policy
  /// (kSequential contributes a single grid point).  Zeroes are ignored.
  uint32_t inflight_grid[4] = {4, 10, 16, 32};
  /// Measurement morsels per surviving grid point per halving round.
  uint32_t measure_morsels = 1;
  /// Weight of the newest morsel in the per-point cycles-per-input EWMA.
  double ewma_alpha = 0.25;
  /// Probability that a steady-state morsel explores a non-winner survivor
  /// (epsilon-greedy, round-robin over the explore set); 0 disables
  /// exploration.
  double epsilon = 0.0625;
  /// Re-calibrate when the winner's EWMA throughput falls below this
  /// fraction of its calibrated baseline (cycles/input rises above
  /// baseline / drift_ratio).  0 disables drift re-tuning.
  double drift_ratio = 0.5;
  /// Consecutive over-threshold winner morsels required before a drift
  /// re-tune fires (a single preempted/cold morsel is noise, a streak is
  /// a regime change).
  uint32_t drift_patience = 3;
  /// An exploration probe must beat the winner by this cycles-per-input
  /// factor (probe_cpi < margin * winner_cpi) to usurp it.
  double switch_margin = 0.9;
  /// Weight of the hardware stall-fraction evidence in the governor's
  /// objective: a morsel reported with a valid PerfCounters sample costs
  /// cpi * (1 + hw_stall_weight * stall_fraction), so two schedules with
  /// equal throughput rank by how memory-bound they ran (the stalled
  /// schedule has no headroom when contention rises).  Inert when the
  /// kernel forbids perf_event_open (samples invalid).  0 disables.
  double hw_stall_weight = 0.5;
  /// Winner morsels observed before a simulation-seeded prior is
  /// re-stored as a measured entry (and its model-cycle baseline replaced
  /// by the measured one).
  uint32_t seed_confirm_morsels = 3;
  /// Seed of the governor's private common/rng.h stream; a fixed seed makes
  /// the decision sequence deterministic for a given report sequence.
  uint64_t seed = 0xada9711feed5eedull;
};

/// A finished calibration: the winner, its measured cost, and the
/// runner-up set kept for exploration probes and drift re-tunes.
struct CalibrationResult {
  GridPoint winner;
  double winner_cycles_per_input = 0;
  /// First-halving survivors (best half of the grid), winner included —
  /// the candidate set of later exploration and re-tuning.
  std::vector<GridPoint> survivors;
  /// The entry came from the offline hierarchy simulator (memsim
  /// SeedCalibrator), not from measuring real morsels.  Simulated entries
  /// are PRIORS: they skip cold-start measurement but must never shadow a
  /// fresh measured entry (Store always wins over StoreSeed) and are
  /// re-stored as measured once the governor has observed real morsels.
  bool from_sim = false;
  /// Rows the downstream pipeline kept per input row, observed on the
  /// measure prefix (plan costing, satellite of PR 10); negative when the
  /// run had no filtering stage or nothing was observed.
  double observed_selectivity = -1;
};

/// Successive-halving tournament state machine, fed morsels by the caller.
/// Thread-compatible, not thread-safe — the governor serializes access.
class CalibrationEpisode {
 public:
  CalibrationEpisode(std::vector<GridPoint> candidates,
                     uint32_t measure_morsels);

  /// What the next morsel should run.  `measured` morsels count toward the
  /// current round's quota; once the round is fully assigned but not yet
  /// fully reported, extra morsels ride on the best point seen so far
  /// (measured == false) instead of blocking.
  struct Assignment {
    size_t index = 0;  ///< into candidates()
    bool measured = false;
  };
  Assignment Next();

  /// Fold one measured morsel's cost into candidate `index`.  Completes
  /// rounds and halves the field; after the last halving done() is true.
  void Report(size_t index, uint64_t inputs, uint64_t cycles);

  bool done() const { return done_; }
  /// Best candidate by data so far — the winner once done(), a fallback
  /// choice when the query ran out of morsels mid-episode.
  size_t best() const;
  double BestCyclesPerInput() const;
  size_t size() const { return candidates_.size(); }
  const GridPoint& point(size_t index) const {
    return candidates_[index].point;
  }
  /// Candidates that survived the first halving (or the full field before
  /// it), best-first.
  std::vector<GridPoint> Survivors() const;
  uint64_t measured_morsels() const { return measured_morsels_; }

 private:
  struct Candidate {
    GridPoint point;
    uint64_t inputs = 0;  ///< cumulative across rounds
    uint64_t cycles = 0;
    uint32_t assigned = 0;  ///< this round
    uint32_t reported = 0;  ///< this round
    bool alive = true;
  };

  double CyclesPerInput(const Candidate& c) const;
  void MaybeFinishRound();

  std::vector<Candidate> candidates_;
  uint32_t quota_;  ///< measurement morsels per survivor per round
  uint64_t measured_morsels_ = 0;
  bool first_halving_done_ = false;
  std::vector<size_t> first_survivors_;
  bool done_ = false;
};

/// Morsel size for governed queries.  The default ResolveMorselSize floor
/// (1024 inputs) can leave a small query with fewer morsels than the grid
/// has points; adaptive queries instead target enough claims for the
/// tournament plus steady-state interleaving, with a floor that still
/// amortizes the widest configured in-flight window's fill/drain ramp.
uint64_t AdaptiveMorselSize(uint64_t num_inputs, uint32_t slots,
                            const AdaptiveConfig& config);

/// Shared calibration cache + grid construction.  Thread-safe; one lives
/// in every QueryScheduler (and therefore in every Executor), so repeated
/// query shapes — the serving workload's common case — calibrate once.
class Calibrator {
 public:
  Calibrator() = default;

  /// The candidate grid for `config`: kSequential once, every other static
  /// policy crossed with the configured in-flight widths.
  static std::vector<GridPoint> Grid(const AdaptiveConfig& config);

  /// Cached result for `sig`, counting a hit or miss; invalid signatures
  /// always miss (and are never stored).  When `submitted_inputs` is
  /// non-zero the entry is validated against the relation actually being
  /// submitted: a caller-pinned signature reused across relation sizes
  /// (the stale-prior hazard — the stored signature equals the passed one,
  /// so the key alone cannot catch it) is evicted and counted as a miss
  /// when its stored cardinality bucket no longer matches.
  std::optional<CalibrationResult> Lookup(const WorkloadSignature& sig,
                                          uint64_t submitted_inputs = 0);

  /// Record (or overwrite, after a re-tune) the calibration for `sig`.
  /// The entry is stamped with the current staleness epoch and marked
  /// measured (from_sim cleared): real morsel measurements are the ground
  /// truth and always overwrite, including simulation-seeded entries.
  void Store(const WorkloadSignature& sig, const CalibrationResult& result);

  /// Seed a simulation-derived prior for `sig` (marked from_sim, stamped
  /// with the current epoch).  Source-priority rule: a fresh MEASURED
  /// entry is never shadowed — the seed is refused and false returned.
  /// Stale entries (older epoch or cardinality-bucket mismatch) and other
  /// simulated entries are replaced.
  bool StoreSeed(const WorkloadSignature& sig,
                 const CalibrationResult& result);

  /// The cached winner's cycles-per-input for `sig`, or 0 when unknown.
  /// Unlike Lookup this counts neither a hit nor a miss: it exists for
  /// sizing decisions (the deadline-aware morsel picker, the plan cost
  /// model) that merely peek at the cache without claiming its statistics.
  /// Non-zero `submitted_inputs` applies the same cardinality-bucket
  /// staleness validation as Lookup (evicting on mismatch).
  double PeekCyclesPerInput(const WorkloadSignature& sig,
                            uint64_t submitted_inputs = 0) const;

  /// Full-entry variant of PeekCyclesPerInput (same non-counting, same
  /// staleness validation): the plan cost model reads the stored
  /// observed_selectivity alongside the cycles-per-input.
  std::optional<CalibrationResult> PeekResult(
      const WorkloadSignature& sig, uint64_t submitted_inputs = 0) const;

  /// Begin a new staleness epoch: every entry stored before this call is
  /// treated as stale — lazily evicted on its next Lookup/Peek and skipped
  /// by Entries().  The affordance for "the data changed under the priors"
  /// (bulk load, compaction, tenant swap).
  void AdvanceEpoch();
  uint64_t epoch() const;

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t entries() const;
  /// Simulation-seeded entries currently cached (observability: how much
  /// of the cache is prior vs measurement).
  uint64_t seeded_entries() const;
  /// StoreSeed calls refused because a fresh measured entry held the key.
  uint64_t seed_refusals() const;
  /// Entries dropped by staleness validation (epoch advance or a
  /// cardinality-bucket mismatch against the submitted relation).
  uint64_t stale_evictions() const;

  /// One cached calibration, keyed by its WorkloadSignature::Key().
  struct Entry {
    uint64_t signature_key = 0;
    CalibrationResult result;
  };
  /// Snapshot of the current-epoch cache, ascending by key — what the
  /// serving layer's capacity planner consumes (winner cycles-per-input ->
  /// E[S] -> sustainable QPS) without holding the calibrator lock.
  std::vector<Entry> Entries() const;

 private:
  struct CachedEntry {
    WorkloadSignature sig;  ///< as stored — bucket validated on reuse
    CalibrationResult result;
    uint64_t epoch = 0;  ///< epoch_ at Store time
  };

  /// True when the entry is still trustworthy for a run over
  /// `submitted_inputs` rows (0 skips the cardinality check).  Lock held.
  bool Fresh(const CachedEntry& entry, uint64_t submitted_inputs) const;

  mutable std::mutex mu_;
  mutable std::unordered_map<uint64_t, CachedEntry> cache_;  ///< by sig.Key()
  uint64_t epoch_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  mutable uint64_t stale_evictions_ = 0;
  uint64_t seed_refusals_ = 0;
};

}  // namespace amac
