// Workload signatures: the cache key of the adaptive policy governor.
//
// Calibration (adaptive/calibrator.h) measures every candidate
// ExecPolicy × inflight grid point on a sampled prefix of the real query.
// That measurement is worth reusing whenever "the same kind of query" is
// submitted again, so each op describes itself as a WorkloadSignature:
// the op kind (a hash of its type name — stable within one process, unique
// per instantiated operation type), the input-cardinality bucket (log2, so
// 60k and 62k probes share one calibration but 1k and 1M do not), and the
// per-lookup state footprint (a proxy for payload size: wider state means
// fewer useful in-flight slots per L1).  The Executor / QueryScheduler
// derive a signature automatically from the submitted operation type;
// callers that know better (e.g. the same op type over structurally
// different data) can override it via QueryOptions::signature.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "common/hash.h"

namespace amac {

struct WorkloadSignature {
  /// Hash of the op-kind name; 0 means "unknown" — the query still adapts,
  /// but its calibration is not cached.
  uint64_t op_kind = 0;
  /// ceil-log2 bucket of the input cardinality (bit width of n).
  uint32_t cardinality_log2 = 0;
  /// Per-lookup state footprint in bytes (sizeof(Op::State) by default).
  uint32_t payload_bytes = 0;

  bool valid() const { return op_kind != 0; }

  /// The cache key: all three fields mixed into one 64-bit value.
  uint64_t Key() const {
    uint64_t k = op_kind;
    k = Mix64(k ^ (uint64_t{cardinality_log2} << 32 | payload_bytes));
    return k;
  }

  /// FNV-1a over the kind name (e.g. a typeid().name() or a caller-chosen
  /// label), never returning the reserved 0.
  static uint64_t HashKind(std::string_view name) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return h == 0 ? 1 : h;
  }

  static uint32_t CardinalityBucket(uint64_t num_inputs) {
    return static_cast<uint32_t>(std::bit_width(num_inputs));
  }

  static WorkloadSignature Make(std::string_view kind_name,
                                uint64_t num_inputs,
                                uint32_t payload_bytes) {
    WorkloadSignature sig;
    sig.op_kind = HashKind(kind_name);
    sig.cardinality_log2 = CardinalityBucket(num_inputs);
    sig.payload_bytes = payload_bytes;
    return sig;
  }
};

inline bool operator==(const WorkloadSignature& a,
                       const WorkloadSignature& b) {
  return a.op_kind == b.op_kind &&
         a.cardinality_log2 == b.cardinality_log2 &&
         a.payload_bytes == b.payload_bytes;
}

}  // namespace amac
