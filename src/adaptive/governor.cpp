#include "adaptive/governor.h"

#include <algorithm>

#include "common/macros.h"

namespace amac {

QueryGovernor::QueryGovernor(const AdaptiveConfig& config,
                             Calibrator* calibrator,
                             const WorkloadSignature& signature,
                             uint32_t stages, uint64_t num_inputs)
    : config_(config),
      calibrator_(calibrator),
      signature_(signature),
      stages_(std::max(1u, stages)),
      rng_(config.seed) {
  if (calibrator_ != nullptr) {
    if (const auto cached = calibrator_->Lookup(signature_, num_inputs)) {
      cache_hit_ = true;
      if (cached->from_sim) {
        // A simulated prior ranks the grid but its cycles are MODEL
        // cycles: adopting them as the drift baseline would compare TSC
        // apples to simulator oranges.  Adopt the ranking with no
        // baseline; the first measured winner morsels establish it and
        // convert the entry to a measured one.
        adopted_sim_prior_ = true;
        seed_unconfirmed_ = true;
        AdoptWinnerLocked(cached->winner, 0, cached->survivors);
      } else {
        AdoptWinnerLocked(cached->winner, cached->winner_cycles_per_input,
                          cached->survivors);
      }
      return;
    }
  }
  episode_ = std::make_unique<CalibrationEpisode>(Calibrator::Grid(config_),
                                                  config_.measure_morsels);
  phase_ = Phase::kCalibrating;
}

QueryGovernor::Choice QueryGovernor::MakeChoice(const GridPoint& point,
                                                uint32_t token) const {
  return Choice{point.policy, point.Params(stages_), token};
}

QueryGovernor::Choice QueryGovernor::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t epoch_bits = (epoch_ & kEpochMask) << kEpochShift;
  if (phase_ == Phase::kCalibrating) {
    const CalibrationEpisode::Assignment a = episode_->Next();
    uint32_t token = static_cast<uint32_t>(a.index) | epoch_bits;
    if (a.measured) {
      token |= kMeasuredBit;
      ++calibration_morsels_;
    }
    return MakeChoice(episode_->point(a.index), token);
  }
  if (config_.epsilon > 0 && survivors_.size() > 1 &&
      rng_.NextDouble() < config_.epsilon) {
    // Round-robin over the explore set (not uniform-random): every
    // runner-up gets sampled within |explore| probes, so a mis-calibrated
    // winner is corrected in bounded time.
    probe_cursor_ = (probe_cursor_ + 1) % survivors_.size();
    if (probe_cursor_ == winner_) {
      probe_cursor_ = (probe_cursor_ + 1) % survivors_.size();
    }
    const size_t probe = probe_cursor_;
    ++probe_morsels_;
    return MakeChoice(survivors_[probe], static_cast<uint32_t>(probe) |
                                             kProbeBit | epoch_bits);
  }
  return MakeChoice(survivors_[winner_],
                    static_cast<uint32_t>(winner_) | epoch_bits);
}

void QueryGovernor::Report(const Choice& choice, uint64_t inputs,
                           uint64_t cycles,
                           const PerfCounters::Sample* hw) {
  if (inputs == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if ((choice.token >> kEpochShift) != (epoch_ & kEpochMask)) {
    return;  // superseded episode
  }
  const size_t index = choice.token & 0xffffu;
  if (phase_ == Phase::kCalibrating) {
    // Only quota morsels advance the tournament; ride-along morsels (round
    // fully assigned, reports pending) carry no extra signal worth the
    // round-accounting complexity.
    if (choice.token & kMeasuredBit) {
      episode_->Report(index, inputs, cycles);
      if (episode_->done()) FinishCalibrationLocked();
    }
    return;
  }
  if (index >= survivors_.size()) return;
  double cpi = static_cast<double>(cycles) / static_cast<double>(inputs);
  if (hw != nullptr && hw->valid && hw->cycles > 0) {
    // Hardware evidence: weight the morsel's cost by how memory-bound it
    // ran.  Equal-throughput schedules then rank by stall headroom, and a
    // prior whose predicted schedule stalls on real hardware loses to its
    // survivors even before wall-clock drift would notice.
    if (config_.hw_stall_weight > 0) {
      cpi *= 1 + config_.hw_stall_weight * hw->StallFraction();
    }
    if (index == winner_) {
      hw_observed_ = true;
      const double stall = hw->StallFraction();
      const double llc_per_input =
          static_cast<double>(hw->llc_misses) / static_cast<double>(inputs);
      hw_stall_ewma_ =
          hw_stall_ewma_ <= 0
              ? stall
              : config_.ewma_alpha * stall +
                    (1 - config_.ewma_alpha) * hw_stall_ewma_;
      hw_llc_per_input_ewma_ =
          hw_llc_per_input_ewma_ <= 0
              ? llc_per_input
              : config_.ewma_alpha * llc_per_input +
                    (1 - config_.ewma_alpha) * hw_llc_per_input_ewma_;
    }
  }
  double& ewma = survivor_ewma_[index];
  ewma = ewma <= 0 ? cpi
                   : config_.ewma_alpha * cpi +
                         (1 - config_.ewma_alpha) * ewma;
  if (index == winner_) {
    if (seed_unconfirmed_) {
      // Simulated prior: establish the measured baseline, then promote
      // the cache entry to a measured one (source priority lets later
      // seeds refresh it only once it goes stale).
      if (++seed_winner_reports_ >=
          std::max(1u, config_.seed_confirm_morsels)) {
        seed_unconfirmed_ = false;
        baseline_cpi_ = ewma;
        StoreResultLocked();
      }
      return;  // no drift checks against a not-yet-measured baseline
    }
    // Drift: observed throughput fell below drift_ratio of the calibrated
    // baseline — the winner no longer fits the data it is seeing.  A
    // patience streak filters one-off noise (a preempted morsel balloons
    // its cycle count without the workload having changed).
    if (config_.drift_ratio > 0 && baseline_cpi_ > 0 &&
        ewma * config_.drift_ratio > baseline_cpi_) {
      if (++drift_strikes_ >= std::max(1u, config_.drift_patience)) {
        drift_strikes_ = 0;
        EnterRetuneLocked();
      }
    } else {
      drift_strikes_ = 0;
    }
    return;
  }
  // Exploration probe: usurp the winner only on a clear margin.  The
  // probe bit matters: a late report for a just-deposed winner (another
  // slot's probe usurped while this morsel ran) must only feed that
  // point's EWMA, not bounce the winner back on one sample.
  if ((choice.token & kProbeBit) != 0 &&
      ewma < config_.switch_margin * survivor_ewma_[winner_]) {
    winner_ = index;
    baseline_cpi_ = ewma;
    drift_strikes_ = 0;  // strikes against the old winner don't carry over
    ++tuning_switches_;
    StoreResultLocked();
  }
}

void QueryGovernor::AdoptWinnerLocked(const GridPoint& winner, double cpi,
                                      std::vector<GridPoint> survivors) {
  survivors_ = std::move(survivors);
  auto it = std::find(survivors_.begin(), survivors_.end(), winner);
  if (it == survivors_.end()) {
    survivors_.insert(survivors_.begin(), winner);
    it = survivors_.begin();
  }
  winner_ = static_cast<size_t>(it - survivors_.begin());
  baseline_cpi_ = cpi;
  EnsureAnchorLocked();
  survivor_ewma_.assign(survivors_.size(), 0);
  survivor_ewma_[winner_] = baseline_cpi_;
  drift_strikes_ = 0;
  phase_ = Phase::kRunning;
}

void QueryGovernor::StoreResultLocked() {
  if (calibrator_ != nullptr) {
    CalibrationResult result;
    result.winner = survivors_[winner_];
    result.winner_cycles_per_input = baseline_cpi_;
    result.survivors = survivors_;
    calibrator_->Store(signature_, result);
  }
  // Whatever is stored now is measured: a pending sim prior is superseded.
  seed_unconfirmed_ = false;
}

void QueryGovernor::FinishCalibrationLocked() {
  const GridPoint winner_point = episode_->point(episode_->best());
  if (retuning_ && !(winner_point == retune_from_)) ++tuning_switches_;
  retuning_ = false;
  AdoptWinnerLocked(winner_point, episode_->BestCyclesPerInput(),
                    episode_->Survivors());
  episode_.reset();
  ++epoch_;
  StoreResultLocked();
}

void QueryGovernor::EnsureAnchorLocked() {
  const GridPoint anchor{ExecPolicy::kSequential, 1};
  if (std::find(survivors_.begin(), survivors_.end(), anchor) ==
      survivors_.end()) {
    survivors_.push_back(anchor);
  }
}

void QueryGovernor::EnterRetuneLocked() {
  retuning_ = true;
  retune_from_ = survivors_[winner_];
  episode_ = std::make_unique<CalibrationEpisode>(survivors_,
                                                  config_.measure_morsels);
  phase_ = Phase::kCalibrating;
  ++epoch_;
}

GridPoint QueryGovernor::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ == Phase::kCalibrating) {
    return episode_->point(episode_->best());
  }
  return survivors_[winner_];
}

uint32_t QueryGovernor::tuning_switches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tuning_switches_;
}

void QueryGovernor::Finalize(AdaptiveStats* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ == Phase::kCalibrating && !retuning_ && calibrator_ != nullptr &&
      episode_->BestCyclesPerInput() > 0) {
    // The query drained before the tournament finished (few morsels, or a
    // straggler measurement outrun by ride-along morsels).  Bank the
    // partial ranking: a best-so-far winner beats re-measuring from
    // scratch on the next query of this shape, and steady-state
    // exploration corrects a noisy pick cheaply.
    std::vector<GridPoint> survivors = episode_->Survivors();
    survivors.resize(std::max<size_t>(1, (survivors.size() + 1) / 2));
    calibrator_->Store(
        signature_,
        CalibrationResult{episode_->point(episode_->best()),
                          episode_->BestCyclesPerInput(), survivors});
  }
  out->active = true;
  out->cache_hit = cache_hit_;
  const GridPoint chosen =
      phase_ == Phase::kCalibrating
          ? episode_->point(episode_->best())
          : survivors_[winner_];
  out->chosen_policy = chosen.policy;
  out->chosen_inflight = chosen.inflight;
  out->tuning_switches = tuning_switches_;
  out->calibration_morsels = calibration_morsels_;
  out->probe_morsels = probe_morsels_;
  out->seeded_from_sim = adopted_sim_prior_;
  out->hw_observed = hw_observed_;
  out->hw_stall_fraction = hw_stall_ewma_;
  out->hw_llc_misses_per_input = hw_llc_per_input_ewma_;
}

}  // namespace amac
