#include "adaptive/calibrator.h"

#include <algorithm>

#include "common/macros.h"

namespace amac {

CalibrationEpisode::CalibrationEpisode(std::vector<GridPoint> candidates,
                                       uint32_t measure_morsels)
    : quota_(std::max(1u, measure_morsels)) {
  AMAC_CHECK(!candidates.empty());
  candidates_.reserve(candidates.size());
  for (const GridPoint& point : candidates) {
    Candidate c;
    c.point = point;
    candidates_.push_back(c);
  }
}

double CalibrationEpisode::CyclesPerInput(const Candidate& c) const {
  // No data sorts last: an unmeasured point must never beat a measured one.
  if (c.inputs == 0) return 1e30;
  return static_cast<double>(c.cycles) / static_cast<double>(c.inputs);
}

CalibrationEpisode::Assignment CalibrationEpisode::Next() {
  if (!done_) {
    for (size_t i = 0; i < candidates_.size(); ++i) {
      Candidate& c = candidates_[i];
      if (!c.alive || c.assigned >= quota_) continue;
      ++c.assigned;
      ++measured_morsels_;
      return Assignment{i, true};
    }
  }
  // Round fully assigned (reports pending) or episode done: ride on the
  // best-known point without blocking the morsel stream.
  return Assignment{best(), false};
}

void CalibrationEpisode::Report(size_t index, uint64_t inputs,
                                uint64_t cycles) {
  AMAC_CHECK(index < candidates_.size());
  Candidate& c = candidates_[index];
  c.inputs += inputs;
  c.cycles += cycles;
  ++c.reported;
  MaybeFinishRound();
}

void CalibrationEpisode::MaybeFinishRound() {
  if (done_) return;
  for (const Candidate& c : candidates_) {
    if (c.alive && c.reported < quota_) return;
  }
  // Round complete: keep the fastest half (ceil, so 2 -> 1 terminates).
  std::vector<size_t> alive;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].alive) alive.push_back(i);
  }
  std::sort(alive.begin(), alive.end(), [&](size_t a, size_t b) {
    return CyclesPerInput(candidates_[a]) < CyclesPerInput(candidates_[b]);
  });
  const size_t keep = (alive.size() + 1) / 2;
  for (size_t rank = keep; rank < alive.size(); ++rank) {
    candidates_[alive[rank]].alive = false;
  }
  if (!first_halving_done_) {
    first_halving_done_ = true;
    first_survivors_.assign(alive.begin(), alive.begin() + keep);
  }
  if (keep <= 1) {
    done_ = true;
    return;
  }
  for (Candidate& c : candidates_) {
    c.assigned = 0;
    c.reported = 0;
  }
}

size_t CalibrationEpisode::best() const {
  size_t best_idx = 0;
  double best_cpi = 1e30;
  bool found_alive = false;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const Candidate& c = candidates_[i];
    // Prefer alive candidates; before any data exists the first candidate
    // wins by default.
    if (found_alive && !c.alive) continue;
    const double cpi = CyclesPerInput(c);
    if ((!found_alive && c.alive) || cpi < best_cpi) {
      best_idx = i;
      best_cpi = cpi;
      found_alive = found_alive || c.alive;
    }
  }
  return best_idx;
}

double CalibrationEpisode::BestCyclesPerInput() const {
  const Candidate& c = candidates_[best()];
  return c.inputs == 0
             ? 0
             : static_cast<double>(c.cycles) / static_cast<double>(c.inputs);
}

std::vector<GridPoint> CalibrationEpisode::Survivors() const {
  std::vector<GridPoint> out;
  if (first_halving_done_) {
    out.reserve(first_survivors_.size());
    for (const size_t i : first_survivors_) {
      out.push_back(candidates_[i].point);
    }
    return out;
  }
  // Mid-first-round: rank the full field by the data so far (unmeasured
  // candidates sort last), so a partial episode still yields a best-first
  // candidate list the governor/cache can act on.
  std::vector<size_t> order(candidates_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return CyclesPerInput(candidates_[a]) < CyclesPerInput(candidates_[b]);
  });
  out.reserve(order.size());
  for (const size_t i : order) out.push_back(candidates_[i].point);
  return out;
}

uint64_t AdaptiveMorselSize(uint64_t num_inputs, uint32_t slots,
                            const AdaptiveConfig& config) {
  if (num_inputs == 0) return 1;
  uint32_t max_inflight = 1;
  size_t grid_points = 2;  // kSequential + kVectorized
  for (const uint32_t m : config.inflight_grid) {
    if (m == 0) continue;
    max_inflight = std::max(max_inflight, m);
    grid_points += 5;  // GP/SPP/AMAC/Coroutine/VecAMAC at this width
  }
  // Room for ~2 tournament rounds' worth of measurement plus steady-state
  // claims on every slot.
  const uint64_t target_morsels =
      8 * static_cast<uint64_t>(grid_points) + 8 * std::max(1u, slots);
  constexpr uint64_t kMaxMorsel = uint64_t{1} << 16;
  const uint64_t floor = std::min<uint64_t>(
      kMaxMorsel, std::max<uint64_t>(128, 4ull * max_inflight));
  return std::clamp(num_inputs / target_morsels, floor, kMaxMorsel);
}

std::vector<GridPoint> Calibrator::Grid(const AdaptiveConfig& config) {
  std::vector<GridPoint> grid;
  grid.push_back(GridPoint{ExecPolicy::kSequential, 1});
  // Pure batch vectorization has no meaningful M (one vector in flight);
  // one grid point at the vector width.
  grid.push_back(GridPoint{ExecPolicy::kVectorized, 8});
  for (const ExecPolicy policy :
       {ExecPolicy::kGroupPrefetch, ExecPolicy::kSoftwarePipelined,
        ExecPolicy::kAmac, ExecPolicy::kCoroutine,
        ExecPolicy::kVectorizedAmac}) {
    for (const uint32_t m : config.inflight_grid) {
      if (m == 0) continue;
      grid.push_back(GridPoint{policy, m});
    }
  }
  return grid;
}

bool Calibrator::Fresh(const CachedEntry& entry,
                       uint64_t submitted_inputs) const {
  if (entry.epoch != epoch_) return false;
  if (submitted_inputs != 0 &&
      entry.sig.cardinality_log2 !=
          WorkloadSignature::CardinalityBucket(submitted_inputs)) {
    return false;
  }
  return true;
}

std::optional<CalibrationResult> Calibrator::Lookup(
    const WorkloadSignature& sig, uint64_t submitted_inputs) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sig.valid()) {
    const auto it = cache_.find(sig.Key());
    if (it != cache_.end()) {
      if (Fresh(it->second, submitted_inputs)) {
        ++hits_;
        return it->second.result;
      }
      cache_.erase(it);
      ++stale_evictions_;
    }
  }
  ++misses_;
  return std::nullopt;
}

void Calibrator::Store(const WorkloadSignature& sig,
                       const CalibrationResult& result) {
  if (!sig.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  CachedEntry entry{sig, result, epoch_};
  entry.result.from_sim = false;  // measurement is ground truth
  cache_[sig.Key()] = entry;
}

bool Calibrator::StoreSeed(const WorkloadSignature& sig,
                           const CalibrationResult& result) {
  if (!sig.valid()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find(sig.Key());
  if (it != cache_.end() && !it->second.result.from_sim &&
      Fresh(it->second, 0)) {
    // Source priority: measured > simulated at equal staleness.  The
    // fresh measured entry stands; the prior is refused.
    ++seed_refusals_;
    return false;
  }
  CachedEntry entry{sig, result, epoch_};
  entry.result.from_sim = true;
  cache_[sig.Key()] = entry;
  return true;
}

double Calibrator::PeekCyclesPerInput(const WorkloadSignature& sig,
                                      uint64_t submitted_inputs) const {
  const std::optional<CalibrationResult> result =
      PeekResult(sig, submitted_inputs);
  return result ? result->winner_cycles_per_input : 0;
}

std::optional<CalibrationResult> Calibrator::PeekResult(
    const WorkloadSignature& sig, uint64_t submitted_inputs) const {
  if (!sig.valid()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find(sig.Key());
  if (it == cache_.end()) return std::nullopt;
  if (!Fresh(it->second, submitted_inputs)) {
    cache_.erase(it);
    ++stale_evictions_;
    return std::nullopt;
  }
  return it->second.result;
}

void Calibrator::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
}

uint64_t Calibrator::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint64_t Calibrator::stale_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_evictions_;
}

uint64_t Calibrator::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t Calibrator::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t Calibrator::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

uint64_t Calibrator::seeded_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [key, cached] : cache_) {
    if (cached.result.from_sim && cached.epoch == epoch_) ++n;
  }
  return n;
}

uint64_t Calibrator::seed_refusals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_refusals_;
}

std::vector<Calibrator::Entry> Calibrator::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> entries;
  entries.reserve(cache_.size());
  for (const auto& [key, cached] : cache_) {
    if (cached.epoch != epoch_) continue;  // stale epoch: not planner input
    entries.push_back(Entry{key, cached.result});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.signature_key < b.signature_key;
            });
  return entries;
}

}  // namespace amac
