// Hash join build and probe as unified-runtime operations.
//
// These are the production stage machines the join driver (hash_join.cpp)
// feeds to Run(ExecPolicy, ...) and the morsel-driven parallel driver — the
// same lookup logic as the hand-written kernels in probe_kernels.h /
// build_kernels.h, but expressed once against the core/engine.h Operation
// concept so every schedule (sequential, GP, SPP, AMAC, coroutine) and any
// thread count run them without join-specific scheduling code.
//
// The hand-written kernels remain for the ablation bench (they price the
// abstraction) and for kernel-level tests; the drivers no longer use them.
#pragma once

#include <cstdint>

#include "common/prefetch.h"
#include "common/simd.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "hashtable/chained_table.h"
#include "hashtable/vec_probe.h"
#include "join/build_kernels.h"
#include "relation/relation.h"

namespace amac {

/// Pipeline stage (core/pipeline.h): chained-table probe fed by upstream
/// rows.  The input row's key probes the table; every match emits
/// Tuple{build payload, input payload} downstream — the probe-side value is
/// carried through the join instead of materializing an intermediate, so a
/// hit can flow straight into an AggregateStage insert.  Start hashes and
/// prefetches the bucket header; each Step visits one chain node (emit
/// matches, prefetch the next node).  With kEarlyExit the walk stops at the
/// first match (unique build keys).
template <bool kEarlyExit>
class ProbeStage {
 public:
  struct State {
    const BucketNode* ptr;
    int64_t key;
    int64_t carry;
  };

  explicit ProbeStage(const ChainedHashTable& table) : table_(&table) {}

  void Start(State& st, const Tuple& in) {
    st.key = in.key;
    st.carry = in.payload;
    st.ptr = table_->BucketForKey(st.key);
    Prefetch(st.ptr);
  }

  template <typename Emit>
  StepStatus Step(State& st, Emit&& emit) {
    const BucketNode* node = st.ptr;
    for (uint32_t i = 0; i < node->count; ++i) {
      if (node->tuples[i].key == st.key) {
        emit(Tuple{node->tuples[i].payload, st.carry});
        if constexpr (kEarlyExit) return StepStatus::kDone;
      }
    }
    if (node->next == nullptr) return StepStatus::kDone;
    Prefetch(node->next);
    st.ptr = node->next;
    return StepStatus::kParked;
  }

 private:
  const ChainedHashTable* table_;
};

template <bool kEarlyExit = true>
ProbeStage<kEarlyExit> Probe(const ChainedHashTable& table) {
  return ProbeStage<kEarlyExit>(table);
}

/// The same probe as an engine Operation: a thin adapter over ProbeStage
/// carrying the probe input index, so matches reach a join sink as
/// (rid, build payload).  One walk implementation serves both paths.
template <bool kEarlyExit, typename Sink>
class ProbeOp {
 public:
  using State = typename ProbeStage<kEarlyExit>::State;

  ProbeOp(const ChainedHashTable& table, const Relation& probe, Sink& sink)
      : stage_(table), table_(&table), probe_(probe), sink_(sink) {}

  void Start(State& st, uint64_t idx) {
    stage_.Start(st, Tuple{probe_[idx].key, static_cast<int64_t>(idx)});
  }

  StepStatus Step(State& st) {
    return stage_.Step(st, [this](const Tuple& row) {
      sink_.Emit(static_cast<uint64_t>(row.payload), row.key);
    });
  }

  // Vector interface (core/vector_engine.h): up to 8 chain walks per slot.
  // StartVec hashes all lanes through the 8-wide Mix64 (common/simd.h);
  // each StepVec advances every active lane one node via the gather kernel
  // (hashtable/vec_probe.h).  Emissions are identical to the scalar path:
  // (rid, build payload), chain order per lane.
  static constexpr uint32_t kVecLanes = kSimdLanes;
  struct VecState {
    const BucketNode* ptr[kSimdLanes];
    int64_t key[kSimdLanes];
    uint64_t rid[kSimdLanes];
    uint32_t active;
  };

  void StartVec(VecState& st, uint64_t base_idx, uint32_t n) {
    AMAC_DCHECK(n >= 1 && n <= kSimdLanes);
    int64_t keys[kSimdLanes];
    for (uint32_t i = 0; i < n; ++i) keys[i] = probe_[base_idx + i].key;
    for (uint32_t i = n; i < kSimdLanes; ++i) keys[i] = keys[n - 1];
    uint64_t bucket[kSimdLanes];
    HashToBucket8(table_->hash_kind(), keys, table_->bucket_mask(), bucket);
    const BucketNode* buckets = table_->buckets();
    for (uint32_t i = 0; i < n; ++i) {
      st.key[i] = keys[i];
      st.rid[i] = base_idx + i;
      st.ptr[i] = buckets + bucket[i];
      Prefetch(st.ptr[i]);
    }
    st.active = n == kSimdLanes ? 0xffu : (1u << n) - 1;
  }

  void RefillLane(VecState& st, uint32_t lane, uint64_t idx) {
    st.key[lane] = probe_[idx].key;
    st.rid[lane] = idx;
    st.ptr[lane] = table_->BucketForKey(st.key[lane]);
    Prefetch(st.ptr[lane]);
    st.active |= 1u << lane;
  }

  uint32_t StepVec(VecState& st) {
    st.active = VecChainStep<kEarlyExit>(
        st.ptr, st.key, st.active,
        [this, &st](uint32_t lane, int64_t payload) {
          sink_.Emit(st.rid[lane], payload);
        },
        /*allow_simd=*/!table_->has_sentinel_key());
    return st.active;
  }

 private:
  ProbeStage<kEarlyExit> stage_;
  const ChainedHashTable* table_;
  const Relation& probe_;
  Sink& sink_;
};

/// Build-side insert with the production O(1) header-eviction discipline:
/// Start hashes and prefetches the bucket header with write intent; Step
/// performs the insert.  With kSync the latch is try-acquired — a held
/// latch parks the insert with kRetry and the scheduler tours the other
/// in-flight slots (§3.2's coarse-grained latch spin).
///
/// `ids` (optional) indirects input index -> tuple index, so the
/// partitioned parallel build can run a thread's owned-tuple list through
/// any policy without copying tuples.  Because the insert is a single Step,
/// every schedule (including the coroutine interleaver) completes inserts
/// in input order, which makes the partitioned build's per-bucket chains
/// bitwise-identical to a sequential build.
template <bool kSync>
class BuildOp {
 public:
  struct State {
    BucketNode* head;
    Tuple tuple;
  };

  BuildOp(ChainedHashTable& table, const Relation& build,
          const uint64_t* ids = nullptr)
      : table_(table), build_(build), ids_(ids) {}

  void Start(State& st, uint64_t idx) {
    st.tuple = build_[ids_ != nullptr ? ids_[idx] : idx];
    st.head = table_.BucketForKey(st.tuple.key);
    PrefetchWrite(st.head);
  }

  StepStatus Step(State& st) {
    if constexpr (kSync) {
      if (!st.head->latch.TryAcquire()) return StepStatus::kRetry;
      detail::InsertLocked(table_, st.head, st.tuple);
      st.head->latch.Release();
    } else {
      detail::InsertLocked(table_, st.head, st.tuple);
    }
    return StepStatus::kDone;
  }

 private:
  ChainedHashTable& table_;
  const Relation& build_;
  const uint64_t* ids_;
};

}  // namespace amac
