// Hash join build-phase kernels: Baseline, GP, SPP, AMAC.
//
// The build inserts every R tuple into its bucket.  Inserts use the O(1)
// header-eviction discipline of the Balkesen table, so the dependent-access
// chain is exactly one cache line (the bucket header); what the prefetching
// engines hide is that single miss.  This matches the paper's observation
// that "the build phase overall is not sensitive to skew because the link
// list insertions are uniform operations regardless of the data
// distribution" (§5.1).
//
// Latch discipline (§3.2):
//  * Baseline / GP / SPP spin on a held latch (their static schedule cannot
//    defer the conflicting lookup).
//  * AMAC issues a single try-acquire; on failure the insert stays parked in
//    its circular-buffer slot and is retried when the cursor comes around —
//    "we still spin on the latch but at a coarser granularity".
//  * kSync=false elides atomics entirely (single-threaded mode).
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/prefetch.h"
#include "hashtable/chained_table.h"
#include "relation/relation.h"

namespace amac {

namespace detail {

/// Insert with the header-evict discipline; caller holds the latch (or is
/// single-threaded).  Mirrors ChainedHashTable::InsertInto but lives here
/// so kernels can inline it.
inline void InsertLocked(ChainedHashTable& ht, BucketNode* head,
                         const Tuple& t) {
  if (head->count == BucketNode::kTuplesPerNode) {
    BucketNode* spill = ht.AllocOverflowNode();
    spill->count = head->count;
    spill->tuples[0] = head->tuples[0];
    spill->tuples[1] = head->tuples[1];
    spill->next = head->next;
    head->next = spill;
    head->count = 0;
    // Slot invariant (chained_table.h): the append below refills slot 0;
    // slot 1 must not keep the evicted tuple's key as a ghost.
    head->tuples[1].key = BucketNode::kEmptySlotKey;
  }
  head->tuples[head->count++] = t;
  ht.NoteInsertedKey(t.key);
}

template <bool kSync>
inline void InsertSpin(ChainedHashTable& ht, BucketNode* head,
                       const Tuple& t) {
  if constexpr (kSync) {
    head->latch.Acquire();
    InsertLocked(ht, head, t);
    head->latch.Release();
  } else {
    InsertLocked(ht, head, t);
  }
}

}  // namespace detail

/// Baseline build: dependent access per tuple, no prefetch.
template <bool kSync>
void BuildBaseline(const Relation& build, uint64_t begin, uint64_t end,
                   ChainedHashTable& ht) {
  for (uint64_t i = begin; i < end; ++i) {
    detail::InsertSpin<kSync>(ht, ht.BucketForKey(build[i].key), build[i]);
  }
}

/// GP build: stage 0 prefetches the group's bucket headers (write intent),
/// stage 1 inserts.  A held latch forces a spin — the group schedule has no
/// way to defer one insert without stalling the whole group.
template <bool kSync>
void BuildGroupPrefetch(const Relation& build, uint64_t begin, uint64_t end,
                        uint32_t group_size, ChainedHashTable& ht) {
  AMAC_CHECK(group_size >= 1);
  std::vector<BucketNode*> heads(group_size);
  for (uint64_t base = begin; base < end; base += group_size) {
    const uint32_t n_in_group =
        static_cast<uint32_t>(std::min<uint64_t>(group_size, end - base));
    for (uint32_t j = 0; j < n_in_group; ++j) {
      heads[j] = ht.BucketForKey(build[base + j].key);
      PrefetchWrite(heads[j]);
    }
    for (uint32_t j = 0; j < n_in_group; ++j) {
      detail::InsertSpin<kSync>(ht, heads[j], build[base + j]);
    }
  }
}

/// SPP build: two code stages (hash+prefetch, insert) with a prefetch
/// distance, i.e. the insert of tuple i runs `distance` iterations after its
/// prefetch was issued.
template <bool kSync>
void BuildSoftwarePipelined(const Relation& build, uint64_t begin,
                            uint64_t end, uint32_t distance,
                            ChainedHashTable& ht) {
  AMAC_CHECK(distance >= 1);
  const uint64_t n = end - begin;
  std::vector<BucketNode*> pipe(distance);
  for (uint64_t i = 0; i < n + distance; ++i) {
    if (i >= distance) {
      const uint64_t t = i - distance;
      detail::InsertSpin<kSync>(ht, pipe[t % distance], build[begin + t]);
    }
    if (i < n) {
      BucketNode* head = ht.BucketForKey(build[begin + i].key);
      PrefetchWrite(head);
      pipe[i % distance] = head;
    }
  }
}

/// AMAC build (paper Table 1, "Hash Join Build"): each in-flight insert owns
/// a circular-buffer slot.  Stage 1 try-acquires the latch; failure parks
/// the insert (stage stays 1) and the cursor moves on — the latch retry
/// happens when the slot comes around again.
template <bool kSync>
void BuildAmac(const Relation& build, uint64_t begin, uint64_t end,
               uint32_t num_inflight, ChainedHashTable& ht) {
  AMAC_CHECK(num_inflight >= 1);
  struct BuildState {
    BucketNode* head;
    Tuple tuple;
    bool active;
  };
  std::vector<BuildState> s(num_inflight);

  uint64_t next_input = begin;
  uint32_t num_active = 0;
  for (uint32_t k = 0; k < num_inflight; ++k) {
    if (next_input < end) {
      BucketNode* head = ht.BucketForKey(build[next_input].key);
      PrefetchWrite(head);
      s[k] = BuildState{head, build[next_input], true};
      ++next_input;
      ++num_active;
    } else {
      s[k].active = false;
    }
  }

  uint32_t k = 0;
  while (num_active > 0) {
    BuildState& st = s[k];
    if (st.active) {
      bool inserted;
      if constexpr (kSync) {
        if (st.head->latch.TryAcquire()) {
          detail::InsertLocked(ht, st.head, st.tuple);
          st.head->latch.Release();
          inserted = true;
        } else {
          inserted = false;  // parked; retried on the next cursor pass
        }
      } else {
        detail::InsertLocked(ht, st.head, st.tuple);
        inserted = true;
      }
      if (inserted) {
        if (next_input < end) {
          BucketNode* head = ht.BucketForKey(build[next_input].key);
          PrefetchWrite(head);
          st = BuildState{head, build[next_input], true};
          ++next_input;
        } else {
          st.active = false;
          --num_active;
        }
      }
    }
    ++k;
    if (k == num_inflight) k = 0;
  }
}

}  // namespace amac
