#include "join/hash_join.h"

#include <vector>

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "join/build_kernels.h"
#include "join/probe_kernels.h"

namespace amac {

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kBaseline: return "Baseline";
    case Engine::kGP: return "GP";
    case Engine::kSPP: return "SPP";
    case Engine::kAMAC: return "AMAC";
  }
  return "?";
}

namespace {

uint32_t SppDistance(const JoinConfig& config) {
  return std::max<uint32_t>(1, config.inflight / std::max(1u, config.stages));
}

template <bool kSync>
void RunBuildKernel(const Relation& r, uint64_t begin, uint64_t end,
                    const JoinConfig& config, ChainedHashTable& table) {
  switch (config.engine) {
    case Engine::kBaseline:
      BuildBaseline<kSync>(r, begin, end, table);
      break;
    case Engine::kGP:
      BuildGroupPrefetch<kSync>(r, begin, end, config.inflight, table);
      break;
    case Engine::kSPP:
      BuildSoftwarePipelined<kSync>(r, begin, end, config.inflight, table);
      break;
    case Engine::kAMAC:
      BuildAmac<kSync>(r, begin, end, config.inflight, table);
      break;
  }
}

template <bool kEarlyExit>
void RunProbeKernel(const ChainedHashTable& table, const Relation& s,
                    uint64_t begin, uint64_t end, const JoinConfig& config,
                    CountChecksumSink& sink) {
  switch (config.engine) {
    case Engine::kBaseline:
      ProbeBaseline<kEarlyExit>(table, s, begin, end, sink);
      break;
    case Engine::kGP:
      ProbeGroupPrefetch<kEarlyExit>(table, s, begin, end, config.inflight,
                                     config.stages, sink);
      break;
    case Engine::kSPP:
      ProbeSoftwarePipelined<kEarlyExit>(table, s, begin, end, config.stages,
                                         SppDistance(config), sink);
      break;
    case Engine::kAMAC:
      ProbeAmac<kEarlyExit>(table, s, begin, end, config.inflight, sink);
      break;
  }
}

}  // namespace

void BuildPhase(const Relation& r, const JoinConfig& config,
                ChainedHashTable* table, JoinStats* stats) {
  stats->build_tuples = r.size();
  WallTimer wall;
  CycleTimer cycles;
  if (config.num_threads <= 1) {
    RunBuildKernel<false>(r, 0, r.size(), config, *table);
  } else {
    SpinBarrier barrier(config.num_threads);
    ParallelFor(config.num_threads, [&](uint32_t tid) {
      const Range range = PartitionRange(r.size(), config.num_threads, tid);
      barrier.Wait();
      RunBuildKernel<true>(r, range.begin, range.end, config, *table);
      barrier.Wait();
    });
  }
  stats->build_cycles = cycles.Elapsed();
  stats->build_seconds = wall.ElapsedSeconds();
}

void ProbePhase(const ChainedHashTable& table, const Relation& s,
                const JoinConfig& config, JoinStats* stats) {
  stats->probe_tuples = s.size();
  std::vector<CountChecksumSink> sinks(config.num_threads);
  WallTimer wall;
  CycleTimer cycles;
  if (config.num_threads <= 1) {
    if (config.early_exit) {
      RunProbeKernel<true>(table, s, 0, s.size(), config, sinks[0]);
    } else {
      RunProbeKernel<false>(table, s, 0, s.size(), config, sinks[0]);
    }
  } else {
    SpinBarrier barrier(config.num_threads);
    ParallelFor(config.num_threads, [&](uint32_t tid) {
      const Range range = PartitionRange(s.size(), config.num_threads, tid);
      barrier.Wait();
      if (config.early_exit) {
        RunProbeKernel<true>(table, s, range.begin, range.end, config,
                             sinks[tid]);
      } else {
        RunProbeKernel<false>(table, s, range.begin, range.end, config,
                              sinks[tid]);
      }
      barrier.Wait();
    });
  }
  stats->probe_cycles = cycles.Elapsed();
  stats->probe_seconds = wall.ElapsedSeconds();
  CountChecksumSink total;
  for (const auto& sink : sinks) total.Merge(sink);
  stats->matches = total.matches();
  stats->checksum = total.checksum();
}

JoinStats RunHashJoin(const Relation& r, const Relation& s,
                      const JoinConfig& config) {
  ChainedHashTable::Options options;
  options.target_nodes_per_bucket = config.target_nodes_per_bucket;
  options.hash_kind = config.hash_kind;
  ChainedHashTable table(r.size(), options);
  JoinStats stats;
  BuildPhase(r, config, &table, &stats);
  ProbePhase(table, s, config, &stats);
  return stats;
}

}  // namespace amac
