#include "join/hash_join.h"

#include <algorithm>
#include <vector>

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "core/parallel_driver.h"
#include "join/join_ops.h"
#include "plan/plan.h"

namespace amac {

namespace {

/// Bucket-range partition: the thread that owns a bucket index.  Contiguous
/// monotone ranges so a thread's buckets share cache lines.
inline uint32_t BucketOwner(uint64_t bucket_index, uint64_t num_buckets,
                            uint32_t threads) {
  return static_cast<uint32_t>(bucket_index * threads / num_buckets);
}

/// Partitioned parallel build (race-free, deterministic):
///
///  phase 1 — every thread scans a static slice of R and scatters each
///            tuple index into cell[scanner][owner], owner = the thread
///            whose bucket range the tuple hashes into;
///  phase 2 — every owner concatenates cell[0..T-1][owner] in scanner
///            order (slices are contiguous, so the list is in R order) and
///            inserts its list through the configured policy, *unlatched*:
///            no other thread touches its buckets.
///
/// Per-bucket insertion order equals the sequential build's (R order), so
/// chain contents are bit-identical for any thread count and policy — the
/// property the differential tests pin.
RunStats BuildParallel(Executor& exec, const Relation& r, uint32_t threads,
                       ChainedHashTable* table) {
  const ExecConfig& config = exec.config();
  const uint64_t num_buckets = table->num_buckets();
  std::vector<std::vector<std::vector<uint64_t>>> cells(
      threads, std::vector<std::vector<uint64_t>>(threads));
  std::vector<EngineStats> per_thread(threads);
  std::vector<uint64_t> elapsed(threads, 0);
  std::vector<double> elapsed_seconds(threads, 0);
  SpinBarrier barrier(threads);
  exec.pool().Run([&](uint32_t tid) {
    barrier.Wait();
    CycleTimer timer;
    WallTimer wall;
    const Range slice = PartitionRange(r.size(), threads, tid);
    auto& mine = cells[tid];
    for (auto& cell : mine) {
      cell.reserve((slice.size() / threads) + 1);
    }
    for (uint64_t i = slice.begin; i < slice.end; ++i) {
      const uint32_t owner =
          BucketOwner(table->BucketIndex(r[i].key), num_buckets, threads);
      mine[owner].push_back(i);
    }
    barrier.Wait();  // publishes every scanner's cells to every owner
    uint64_t owned_count = 0;
    for (uint32_t scanner = 0; scanner < threads; ++scanner) {
      owned_count += cells[scanner][tid].size();
    }
    std::vector<uint64_t> ids;
    ids.reserve(owned_count);
    for (uint32_t scanner = 0; scanner < threads; ++scanner) {
      const auto& cell = cells[scanner][tid];
      ids.insert(ids.end(), cell.begin(), cell.end());
    }
    BuildOp<false> op(*table, r, ids.data());
    per_thread[tid] = Run(config.policy, config.params, op, ids.size());
    barrier.Wait();
    elapsed[tid] = timer.Elapsed();
    elapsed_seconds[tid] = wall.ElapsedSeconds();
  });
  RunStats run;
  run.inputs = r.size();
  run.threads = threads;
  for (uint32_t t = 0; t < threads; ++t) {
    run.engine.Merge(per_thread[t]);
    run.cycles = std::max(run.cycles, elapsed[t]);
    run.seconds = std::max(run.seconds, elapsed_seconds[t]);
  }
  run.dispatch_seconds = run.seconds;
  return run;
}

}  // namespace

RunStats BuildPhase(Executor& exec, const Relation& r,
                    ChainedHashTable* table, PlanBuildMode mode) {
  const uint32_t threads = exec.num_threads();
  if (threads == 1) {
    return exec.Run(FromOp(r.size(), [&](uint32_t) {
      return BuildOp<false>(*table, r);
    }));
  }
  if (mode == PlanBuildMode::kChained) {
    return exec.Run(FromOp(r.size(), [&](uint32_t) {
      return BuildOp<true>(*table, r);
    }));
  }
  return BuildParallel(exec, r, threads, table);
}

RunStats ProbePhase(Executor& exec, const ChainedHashTable& table,
                    const Relation& s, bool early_exit) {
  const uint32_t threads = exec.num_threads();
  std::vector<CountChecksumSink> sinks(threads);
  RunStats run;
  if (early_exit) {
    run = exec.Run(FromOp(s.size(), [&](uint32_t tid) {
      return ProbeOp<true, CountChecksumSink>(table, s, sinks[tid]);
    }));
  } else {
    run = exec.Run(FromOp(s.size(), [&](uint32_t tid) {
      return ProbeOp<false, CountChecksumSink>(table, s, sinks[tid]);
    }));
  }
  CountChecksumSink total;
  for (const auto& sink : sinks) total.Merge(sink);
  run.outputs = total.matches();
  run.checksum = total.checksum();
  return run;
}

JoinResult RunHashJoin(Executor& exec, const Relation& r, const Relation& s,
                       const JoinOptions& options) {
  // Legacy shape, expressed as a plan: fused, build on R, partitioned
  // parallel build, ProbePhase's (rid, payload) accounting.  kMatches pins
  // the enumeration to this single shape, so no optimizer measurement ever
  // runs here and phase behavior is byte-for-byte the historic path.
  PlanOptions popts;
  popts.terminal = PlanTerminal::kMatches;
  PlanResult res = RunPlan(exec, Plan::Scan(s).HashJoin(r, options), popts);
  JoinResult result;
  result.build = res.build;
  result.probe = res.run;
  return result;
}

}  // namespace amac
