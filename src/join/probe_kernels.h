// Hash table probe kernels: Baseline, Group Prefetching (GP),
// Software-Pipelined Prefetching (SPP), and AMAC.
//
// All four kernels implement the same contract:
//
//   for every probe tuple t in [begin, end): walk the chain of t.key's
//   bucket; for every stored tuple with a matching key call
//   sink.Emit(rid, payload).  With kEarlyExit the walk stops at the first
//   match (unique build keys, paper's "non-uniform" traversal); without it
//   the full chain is always visited (paper's "uniform" traversal and the
//   correct semantics for skewed, non-unique build keys).
//
// GP and SPP are implemented faithfully to Chen et al. [8] — including the
// structural weaknesses the paper analyzes: per-lookup status checks,
// no-op stages after early termination, and sequential bailout for chains
// longer than the provisioned stage count.  AMAC follows Listing 1 of the
// paper, with the terminal/initial stage merge (§3.1 optimization 1) and a
// rolling (non-modulo) circular-buffer cursor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/prefetch.h"
#include "hashtable/chained_table.h"
#include "relation/relation.h"

namespace amac {

/// Visit one chain node: compare stored keys, emit matches.
/// Returns true if the lookup is finished at this node (match found under
/// early-exit, or end of chain); otherwise *next is the follow-on node.
template <bool kEarlyExit, typename Sink>
inline bool VisitNode(const BucketNode* node, int64_t key, uint64_t rid,
                      Sink& sink, const BucketNode** next) {
  for (uint32_t i = 0; i < node->count; ++i) {
    if (node->tuples[i].key == key) {
      sink.Emit(rid, node->tuples[i].payload);
      if constexpr (kEarlyExit) return true;
    }
  }
  if (node->next == nullptr) return true;
  *next = node->next;
  return false;
}

// ---------------------------------------------------------------------------
// Baseline: plain dependent pointer chase, no software prefetching. MLP is
// whatever the core's out-of-order window extracts on its own.
// ---------------------------------------------------------------------------
template <bool kEarlyExit, typename Sink>
void ProbeBaseline(const ChainedHashTable& ht, const Relation& probe,
                   uint64_t begin, uint64_t end, Sink& sink) {
  for (uint64_t i = begin; i < end; ++i) {
    const int64_t key = probe[i].key;
    const BucketNode* node = ht.BucketForKey(key);
    const BucketNode* next = nullptr;
    while (!VisitNode<kEarlyExit>(node, key, i, sink, &next)) node = next;
  }
}

// ---------------------------------------------------------------------------
// Group Prefetching (Chen et al.): process `group_size` lookups stage by
// stage.  Stage 0 hashes and prefetches every bucket header; each of the
// `num_stages` node-visit stages advances every still-active lookup by one
// node and prefetches the next.  Lookups whose chains outlive the staged
// visits are finished in a sequential cleanup pass (the "bailout").
// ---------------------------------------------------------------------------
template <bool kEarlyExit, typename Sink>
void ProbeGroupPrefetch(const ChainedHashTable& ht, const Relation& probe,
                        uint64_t begin, uint64_t end, uint32_t group_size,
                        uint32_t num_stages, Sink& sink) {
  AMAC_CHECK(group_size >= 1 && num_stages >= 1);
  struct GpState {
    const BucketNode* ptr;
    int64_t key;
    uint64_t rid;
    bool active;
  };
  std::vector<GpState> g(group_size);

  for (uint64_t base = begin; base < end; base += group_size) {
    const uint32_t n_in_group =
        static_cast<uint32_t>(std::min<uint64_t>(group_size, end - base));
    // Code stage 0: hash, record state, prefetch bucket header.
    for (uint32_t j = 0; j < n_in_group; ++j) {
      const int64_t key = probe[base + j].key;
      const BucketNode* bucket = ht.BucketForKey(key);
      Prefetch(bucket);
      g[j] = GpState{bucket, key, base + j, true};
    }
    // Node-visit code stages 1..N: every lookup advances one node per
    // stage.  Early-terminated lookups burn a status check per remaining
    // stage (the overhead the paper measures as wasted instructions).
    for (uint32_t stage = 0; stage < num_stages; ++stage) {
      for (uint32_t j = 0; j < n_in_group; ++j) {
        if (!g[j].active) continue;
        const BucketNode* next = nullptr;
        if (VisitNode<kEarlyExit>(g[j].ptr, g[j].key, g[j].rid, sink,
                                  &next)) {
          g[j].active = false;
        } else {
          Prefetch(next);
          g[j].ptr = next;
        }
      }
    }
    // Cleanup pass (bailout): chains longer than the provisioned stages
    // finish synchronously, with no overlap across lookups.
    for (uint32_t j = 0; j < n_in_group; ++j) {
      if (!g[j].active) continue;
      const BucketNode* node = g[j].ptr;
      const BucketNode* next = nullptr;
      while (!VisitNode<kEarlyExit>(node, g[j].key, g[j].rid, sink, &next)) {
        node = next;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Software-Pipelined Prefetching (Chen et al.): lookup i executes its
// stage-k code `distance` iterations after stage k-1, so at steady state
// `num_stages * distance` lookups are in flight, each at a different
// pipeline depth.  The schedule is static: a lookup that finishes early
// still occupies its pipeline slot (no-op stages); a lookup whose chain is
// longer than the pipeline bails out sequentially in its final stage.
// ---------------------------------------------------------------------------
template <bool kEarlyExit, typename Sink>
void ProbeSoftwarePipelined(const ChainedHashTable& ht, const Relation& probe,
                            uint64_t begin, uint64_t end, uint32_t num_stages,
                            uint32_t distance, Sink& sink) {
  AMAC_CHECK(num_stages >= 1 && distance >= 1);
  const uint64_t n = end - begin;
  const uint64_t window = static_cast<uint64_t>(num_stages) * distance;
  struct SppState {
    const BucketNode* ptr;
    int64_t key;
    bool active;
  };
  std::vector<SppState> pipe(window);

  // Iteration i: stage 0 for lookup i, stage s for lookup i - s*distance.
  // Runs (n + window) iterations so the epilogue drains the pipeline.
  for (uint64_t i = 0; i < n + window; ++i) {
    // Deepest stage first (matches the loop order of Chen et al., which
    // consumes the oldest prefetch before issuing new ones).
    for (uint32_t s = num_stages; s >= 1; --s) {
      const uint64_t delay = static_cast<uint64_t>(s) * distance;
      if (i < delay) continue;  // this pipeline depth not yet filled
      const uint64_t t = i - delay;
      if (t >= n) continue;
      SppState& st = pipe[t % window];
      if (!st.active) continue;  // no-op stage: lookup already finished
      const BucketNode* next = nullptr;
      const uint64_t rid = begin + t;
      if (VisitNode<kEarlyExit>(st.ptr, st.key, rid, sink, &next)) {
        st.active = false;
      } else if (s == num_stages) {
        // Final scheduled stage but the chain continues: bailout.
        const BucketNode* node = next;
        while (!VisitNode<kEarlyExit>(node, st.key, rid, sink, &next)) {
          node = next;
        }
        st.active = false;
      } else {
        Prefetch(next);
        st.ptr = next;
      }
    }
    // Stage 0 for the newest lookup.
    if (i < n) {
      const int64_t key = probe[begin + i].key;
      const BucketNode* bucket = ht.BucketForKey(key);
      Prefetch(bucket);
      pipe[i % window] = SppState{bucket, key, true};
    }
  }
}

// ---------------------------------------------------------------------------
// AMAC (paper Listing 1): every in-flight lookup owns a slot in a
// software-managed circular buffer holding its full state.  Slots advance
// independently; when a lookup finishes, the same stage execution
// immediately initiates the next lookup (terminal/initial merge, §3.1),
// keeping the number of in-flight memory accesses constant.  The cursor is
// a rolling counter, not a modulo (§3.1), so any in-flight count works.
// ---------------------------------------------------------------------------
template <bool kEarlyExit, typename Sink>
void ProbeAmac(const ChainedHashTable& ht, const Relation& probe,
               uint64_t begin, uint64_t end, uint32_t num_inflight,
               Sink& sink) {
  AMAC_CHECK(num_inflight >= 1);
  // The five state fields of Figure 4: rid(idx), key, payload (carried by
  // the sink here), ptr, stage.  For the probe the stage collapses to
  // active/empty because stage 0 is merged into lookup completion.
  struct AmacState {
    const BucketNode* ptr;
    int64_t key;
    uint64_t rid;
    bool active;
  };
  std::vector<AmacState> s(num_inflight);

  uint64_t next_input = begin;
  uint32_t num_active = 0;

  // Prologue: fill the circular buffer (code stage 0 for the first W
  // lookups, prefetching their bucket headers).
  for (uint32_t k = 0; k < num_inflight; ++k) {
    if (next_input < end) {
      const int64_t key = probe[next_input].key;
      const BucketNode* bucket = ht.BucketForKey(key);
      Prefetch(bucket);
      s[k] = AmacState{bucket, key, next_input, true};
      ++next_input;
      ++num_active;
    } else {
      s[k].active = false;
    }
  }

  // Main loop: rolling cursor over the circular buffer.
  uint32_t k = 0;
  while (num_active > 0) {
    AmacState& st = s[k];
    if (st.active) {
      const BucketNode* next = nullptr;
      if (!VisitNode<kEarlyExit>(st.ptr, st.key, st.rid, sink, &next)) {
        Prefetch(next);
        st.ptr = next;
      } else if (next_input < end) {
        // Terminal stage merged with the next lookup's initial stage: the
        // slot is refilled and a new prefetch issued immediately.
        const int64_t key = probe[next_input].key;
        const BucketNode* bucket = ht.BucketForKey(key);
        Prefetch(bucket);
        st = AmacState{bucket, key, next_input, true};
        ++next_input;
      } else {
        st.active = false;
        --num_active;
      }
    }
    // Rolling counter instead of modulo (§3.1): supports arbitrary W.
    ++k;
    if (k == num_inflight) k = 0;
  }
}

}  // namespace amac
