// High-level hash join driver on the unified execution runtime: builds the
// table from R with a partitioned parallel build and probes it with S
// through the morsel-driven parallel driver, reporting the cycle/throughput
// metrics the paper's tables and figures use.
//
// The entry points take an `Executor` (core/pipeline.h), which owns the
// ExecPolicy, tuning parameters, and the persistent thread team; join
// behavior itself is configured with `JoinOptions`.  Both phases come back
// as the runtime's unified RunStats (the PR-3 JoinConfig/JoinStats shims
// are gone).
#pragma once

#include <cstdint>

#include "common/hash.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "hashtable/chained_table.h"
#include "join/sink.h"
#include "relation/relation.h"

namespace amac {

/// Join-specific knobs for the Executor-based API.  Execution policy,
/// in-flight width, stages, thread count, and morsel size live on the
/// Executor, not here.
struct JoinOptions {
  /// Stop a lookup at its first match (valid for unique build keys).
  bool early_exit = true;
  /// Bucket sizing: expected chain nodes per bucket under uniform keys.
  double target_nodes_per_bucket = 1.0;
  HashKind hash_kind = HashKind::kMurmur;
};

/// A full join measurement: one RunStats per phase.  The probe run's
/// outputs/checksum are the join's matches/checksum (CountChecksumSink
/// discipline); all rate accessors return 0 on empty inputs.
struct JoinResult {
  RunStats build;  ///< inputs = |R|
  RunStats probe;  ///< inputs = |S|, outputs = matches

  uint64_t matches() const { return probe.outputs; }
  uint64_t checksum() const { return probe.checksum; }
  double BuildCyclesPerTuple() const { return build.CyclesPerInput(); }
  double ProbeCyclesPerTuple() const { return probe.CyclesPerInput(); }
  /// Paper Fig. 5: cycles per *output* tuple, build+probe stacked.
  double CyclesPerOutputTuple() const {
    return probe.outputs
               ? static_cast<double>(build.cycles + probe.cycles) /
                     static_cast<double>(probe.outputs)
               : 0;
  }
  /// Paper Fig. 7/8: probe throughput in tuples/second.
  double ProbeThroughput() const { return probe.Throughput(); }
};

/// Build `table` from R under the executor's policy; returns the phase's
/// RunStats.  The table must be empty and sized for R.  `mode` selects the
/// parallel-build strategy (a plan-layer structural dimension):
///
///   * kPartitioned (and kAuto, the historic default) partitions by bucket
///     range — tuples are scattered to the thread that owns their bucket,
///     so insertion is race-free (no latches) and every bucket's chain is
///     bit-identical to a 1-thread build's;
///   * kChained inserts under the table's bucket latches, any thread any
///     bucket.  Chain ORDER then depends on thread interleaving, but chain
///     CONTENTS do not — probes over unique build keys (and any
///     full-enumeration probe checksum) are order-independent, which is
///     why the plan layer may offer it as an equivalent shape.
///
/// Single-threaded builds ignore `mode` (both degenerate to the
/// sequential unlatched build).
RunStats BuildPhase(Executor& exec, const Relation& r,
                    ChainedHashTable* table,
                    PlanBuildMode mode = PlanBuildMode::kAuto);

/// Probe `table` with S under the executor's policy; returns the phase's
/// RunStats with outputs = matches and the order-independent match
/// checksum.  With a multi-threaded executor the probe is morsel-driven
/// through the executor's persistent pool with one sink per slot, merged
/// afterwards.
RunStats ProbePhase(Executor& exec, const ChainedHashTable& table,
                    const Relation& s, bool early_exit);

/// Convenience: build + probe with checksum sink on one executor.  Now a
/// thin adapter over the plan layer — Plan::Scan(s).HashJoin(r) executed
/// with the legacy shape pinned (fused, build on R, kMatches accounting) —
/// so the historic perf/counter behavior is exactly preserved while every
/// call site sits above plan/plan.h.
JoinResult RunHashJoin(Executor& exec, const Relation& r, const Relation& s,
                       const JoinOptions& options = {});

}  // namespace amac
