// High-level hash join driver: builds the table from R and probes it with S
// using a selected execution engine, reporting the cycle/throughput metrics
// the paper's tables and figures use.
#pragma once

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "hashtable/chained_table.h"
#include "join/sink.h"
#include "relation/relation.h"

namespace amac {

/// The four execution engines compared throughout the paper.
enum class Engine { kBaseline, kGP, kSPP, kAMAC };

const char* EngineName(Engine e);

struct JoinConfig {
  Engine engine = Engine::kAMAC;
  /// Number of parallel in-flight lookups per thread (paper's M): AMAC
  /// circular-buffer size, GP group size, SPP total pipeline window.
  uint32_t inflight = 10;
  /// Provisioned node-visit stages for GP/SPP (paper's N).  SPP's prefetch
  /// distance is derived as max(1, inflight / stages).
  uint32_t stages = 1;
  uint32_t num_threads = 1;
  /// Stop a lookup at its first match (valid for unique build keys).
  bool early_exit = true;
  /// Bucket sizing: expected chain nodes per bucket under uniform keys.
  double target_nodes_per_bucket = 1.0;
  HashKind hash_kind = HashKind::kMurmur;
};

struct JoinStats {
  uint64_t build_tuples = 0;
  uint64_t probe_tuples = 0;
  uint64_t matches = 0;
  uint64_t checksum = 0;
  uint64_t build_cycles = 0;
  uint64_t probe_cycles = 0;
  double build_seconds = 0;
  double probe_seconds = 0;

  double BuildCyclesPerTuple() const {
    return build_tuples ? static_cast<double>(build_cycles) /
                              static_cast<double>(build_tuples)
                        : 0;
  }
  double ProbeCyclesPerTuple() const {
    return probe_tuples ? static_cast<double>(probe_cycles) /
                              static_cast<double>(probe_tuples)
                        : 0;
  }
  /// Paper Fig. 5: cycles per *output* tuple, build+probe stacked.
  double CyclesPerOutputTuple() const {
    return matches ? static_cast<double>(build_cycles + probe_cycles) /
                         static_cast<double>(matches)
                   : 0;
  }
  /// Paper Fig. 7/8: probe throughput in tuples/second.
  double ProbeThroughput() const {
    return probe_seconds > 0
               ? static_cast<double>(probe_tuples) / probe_seconds
               : 0;
  }
};

/// Build `table` from R with the configured engine (timed into *stats).
/// The table must be empty and sized for R.
void BuildPhase(const Relation& r, const JoinConfig& config,
                ChainedHashTable* table, JoinStats* stats);

/// Probe `table` with S using the configured engine (timed into *stats).
void ProbePhase(const ChainedHashTable& table, const Relation& s,
                const JoinConfig& config, JoinStats* stats);

/// Convenience: build + probe with checksum sink.
JoinStats RunHashJoin(const Relation& r, const Relation& s,
                      const JoinConfig& config);

}  // namespace amac
