// High-level hash join driver on the unified execution runtime: builds the
// table from R with a partitioned parallel build and probes it with S
// through the morsel-driven parallel driver, reporting the cycle/throughput
// metrics the paper's tables and figures use.
//
// The primary entry points take an `Executor` (core/pipeline.h), which owns
// the ExecPolicy, tuning parameters, and the persistent thread team; join
// behavior itself is configured with `JoinOptions`.  The free-function
// forms taking a `JoinConfig` are deprecated shims for this PR's migration
// window: they build a transient Executor per call (re-paying thread spawn
// every time) and will be removed next PR.
#pragma once

#include <cstdint>

#include "common/hash.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "hashtable/chained_table.h"
#include "join/sink.h"
#include "relation/relation.h"

namespace amac {

/// Join-specific knobs for the Executor-based API.  Execution policy,
/// in-flight width, stages, thread count, and morsel size live on the
/// Executor, not here.
struct JoinOptions {
  /// Stop a lookup at its first match (valid for unique build keys).
  bool early_exit = true;
  /// Bucket sizing: expected chain nodes per bucket under uniform keys.
  double target_nodes_per_bucket = 1.0;
  HashKind hash_kind = HashKind::kMurmur;
};

/// Deprecated: all-in-one configuration for the legacy free functions.
/// Migrate to Executor(ExecConfig) + JoinOptions.
struct JoinConfig {
  ExecPolicy policy = ExecPolicy::kAmac;
  /// Number of parallel in-flight lookups per thread (paper's M): AMAC
  /// circular-buffer size, GP group size, SPP total pipeline window,
  /// coroutine width.
  uint32_t inflight = 10;
  /// Provisioned node-visit stages for GP/SPP (paper's N).  SPP's prefetch
  /// distance is derived as max(1, inflight / stages).
  uint32_t stages = 1;
  uint32_t num_threads = 1;
  /// Probe morsel size for the parallel driver; 0 derives one from the
  /// input and thread count (see ResolveMorselSize).
  uint64_t morsel_size = 0;
  /// Stop a lookup at its first match (valid for unique build keys).
  bool early_exit = true;
  /// Bucket sizing: expected chain nodes per bucket under uniform keys.
  double target_nodes_per_bucket = 1.0;
  HashKind hash_kind = HashKind::kMurmur;

  SchedulerParams Params() const {
    return SchedulerParams{inflight, stages, 0};
  }

  /// The execution half of this config, for constructing an Executor.
  ExecConfig Exec() const {
    return ExecConfig{policy, Params(), num_threads, morsel_size};
  }

  /// The join half of this config.
  JoinOptions Options() const {
    return JoinOptions{early_exit, target_nodes_per_bucket, hash_kind};
  }
};

struct JoinStats {
  uint64_t build_tuples = 0;
  uint64_t probe_tuples = 0;
  uint64_t matches = 0;
  uint64_t checksum = 0;
  uint64_t build_cycles = 0;
  uint64_t probe_cycles = 0;
  double build_seconds = 0;
  double probe_seconds = 0;
  /// Morsels claimed by the parallel probe (0 on the 1-thread path).
  uint64_t probe_morsels = 0;
  /// Scheduling counters merged across threads/morsels (observability).
  EngineStats build_engine;
  EngineStats probe_engine;

  /// All rate accessors return 0 (not NaN/inf) on empty inputs, so bench
  /// tables and tests can rely on a well-defined value for degenerate
  /// workloads (pinned by JoinStatsTest).
  double BuildCyclesPerTuple() const {
    return build_tuples ? static_cast<double>(build_cycles) /
                              static_cast<double>(build_tuples)
                        : 0;
  }
  double ProbeCyclesPerTuple() const {
    return probe_tuples ? static_cast<double>(probe_cycles) /
                              static_cast<double>(probe_tuples)
                        : 0;
  }
  /// Paper Fig. 5: cycles per *output* tuple, build+probe stacked.
  double CyclesPerOutputTuple() const {
    return matches ? static_cast<double>(build_cycles + probe_cycles) /
                         static_cast<double>(matches)
                   : 0;
  }
  /// Paper Fig. 7/8: probe throughput in tuples/second.
  double ProbeThroughput() const {
    return probe_seconds > 0
               ? static_cast<double>(probe_tuples) / probe_seconds
               : 0;
  }
};

/// Build `table` from R under the executor's policy (timed into *stats).
/// The table must be empty and sized for R.  With a multi-threaded
/// executor the build is partitioned by bucket range: tuples are scattered
/// to the thread that owns their bucket, so insertion is race-free (no
/// latches) and every bucket's chain is bit-identical to a 1-thread
/// build's.
void BuildPhase(Executor& exec, const Relation& r, ChainedHashTable* table,
                JoinStats* stats);

/// Probe `table` with S under the executor's policy (timed into *stats).
/// With a multi-threaded executor the probe is morsel-driven through the
/// executor's persistent pool with one sink per thread, merged afterwards.
void ProbePhase(Executor& exec, const ChainedHashTable& table,
                const Relation& s, bool early_exit, JoinStats* stats);

/// Convenience: build + probe with checksum sink on one executor.
JoinStats RunHashJoin(Executor& exec, const Relation& r, const Relation& s,
                      const JoinOptions& options = {});

/// Deprecated shims (one-PR migration window): forward to the Executor
/// forms through a transient per-call Executor.
void BuildPhase(const Relation& r, const JoinConfig& config,
                ChainedHashTable* table, JoinStats* stats);
void ProbePhase(const ChainedHashTable& table, const Relation& s,
                const JoinConfig& config, JoinStats* stats);
JoinStats RunHashJoin(const Relation& r, const Relation& s,
                      const JoinConfig& config);

}  // namespace amac
