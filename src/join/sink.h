// Output sinks for probe kernels.
//
// Probe engines are templated on a Sink so benchmarks can choose between
// full materialization (the paper materializes results: "out[s[k].idx] =
// n->pload") and a checksum-only sink used by tests to compare engines.
#pragma once

#include <cstdint>

#include "common/aligned.h"
#include "common/hash.h"
#include "common/macros.h"
#include "relation/relation.h"

namespace amac {

/// Counts matches and folds (rid, payload) into an order-independent
/// checksum; engines that produce identical join results produce identical
/// checksums regardless of emission order.
class CountChecksumSink {
 public:
  void Emit(uint64_t rid, int64_t payload) {
    ++matches_;
    checksum_ += Mix64(rid * 0x9e3779b97f4a7c15ull +
                       static_cast<uint64_t>(payload));
  }

  uint64_t matches() const { return matches_; }
  uint64_t checksum() const { return checksum_; }

  void Merge(const CountChecksumSink& other) {
    matches_ += other.matches_;
    checksum_ += other.checksum_;
  }

 private:
  uint64_t matches_ = 0;
  uint64_t checksum_ = 0;
};

/// Materializes (rid, payload) pairs into a preallocated buffer, preserving
/// nothing about arrival order (rid carries the input order, per the paper's
/// "output order" discussion in §3.1).
class MaterializeSink {
 public:
  explicit MaterializeSink(uint64_t capacity) : out_(capacity) {}

  void Emit(uint64_t rid, int64_t payload) {
    AMAC_DCHECK(used_ < out_.size());
    out_[used_++] = Tuple{static_cast<int64_t>(rid), payload};
  }

  uint64_t size() const { return used_; }
  const Tuple* data() const { return out_.data(); }

 private:
  AlignedBuffer<Tuple> out_;
  uint64_t used_ = 0;
};

}  // namespace amac
