#include "btree/btree.h"

#include <algorithm>
#include <vector>

namespace amac {

BTreeNode* BTree::AllocNode() {
  AMAC_CHECK_MSG(used_ < pool_.size(), "btree pool exhausted");
  return &pool_[used_++];
}

BTree::BTree(const Relation& rel) {
  num_keys_ = rel.size();
  // Worst-case node count for a bottom-up bulk load: n/1 leaves plus a
  // ~1/15 geometric tail of inner nodes.
  const uint64_t max_nodes =
      rel.size() / (BTreeNode::kMaxKeys / 2 + 1) + rel.size() / 64 + 16;
  pool_ = AlignedBuffer<BTreeNode>(max_nodes);

  std::vector<Tuple> sorted(rel.begin(), rel.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const Tuple& a, const Tuple& b) { return a.key < b.key; });

  if (sorted.empty()) {
    root_ = AllocNode();
    root_->is_leaf = 1;
    first_leaf_ = root_;
    height_ = 1;
    num_leaves_ = 1;
    return;
  }

  // Level 0: pack leaves.
  struct Entry {
    BTreeNode* node;
    int64_t min_key;
  };
  std::vector<Entry> level;
  BTreeNode* prev_leaf = nullptr;
  for (uint64_t base = 0; base < sorted.size();
       base += BTreeNode::kMaxKeys) {
    BTreeNode* leaf = AllocNode();
    leaf->is_leaf = 1;
    const uint32_t in_leaf = static_cast<uint32_t>(std::min<uint64_t>(
        BTreeNode::kMaxKeys, sorted.size() - base));
    for (uint32_t i = 0; i < in_leaf; ++i) {
      leaf->keys[i] = sorted[base + i].key;
      leaf->leaf.payloads[i] = sorted[base + i].payload;
    }
    leaf->count = static_cast<uint16_t>(in_leaf);
    leaf->leaf.next_leaf = nullptr;
    if (prev_leaf != nullptr) prev_leaf->leaf.next_leaf = leaf;
    if (first_leaf_ == nullptr) first_leaf_ = leaf;
    prev_leaf = leaf;
    level.push_back(Entry{leaf, leaf->keys[0]});
    ++num_leaves_;
  }
  height_ = 1;

  // Build inner levels bottom-up: each inner takes up to kMaxKeys+1
  // children; separator keys[j] is the minimum key of child j+1.
  while (level.size() > 1) {
    std::vector<Entry> next;
    for (std::size_t base = 0; base < level.size();
         base += BTreeNode::kMaxKeys + 1) {
      BTreeNode* inner = AllocNode();
      inner->is_leaf = 0;
      const uint32_t in_node = static_cast<uint32_t>(std::min<std::size_t>(
          BTreeNode::kMaxKeys + 1, level.size() - base));
      for (uint32_t c = 0; c < in_node; ++c) {
        inner->children[c] = level[base + c].node;
        if (c > 0) inner->keys[c - 1] = level[base + c].min_key;
      }
      inner->count = static_cast<uint16_t>(in_node - 1);
      next.push_back(Entry{inner, level[base].min_key});
    }
    level.swap(next);
    ++height_;
  }
  root_ = level[0].node;
}

const int64_t* BTree::Find(int64_t key) const {
  const BTreeNode* node = root_;
  while (!node->is_leaf) {
    uint32_t i = 0;
    while (i < node->count && key >= node->keys[i]) ++i;
    node = node->children[i];
  }
  const uint32_t i = node->LowerBound(key);
  if (i < node->count && node->keys[i] == key) {
    return &node->leaf.payloads[i];
  }
  return nullptr;
}

BTreeStats BTree::ComputeStats() const {
  BTreeStats stats;
  stats.num_keys = num_keys_;
  stats.num_leaves = num_leaves_;
  stats.num_inner = used_ - num_leaves_;
  stats.height = height_;
  return stats;
}

}  // namespace amac
