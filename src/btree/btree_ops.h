// B+-tree search as a generic-engine operation (core/scheduler.h).
//
// One Step() is one node visit — the same stage boundary as the hand
// kernels in btree_search.h — so every ExecPolicy (and the parallel
// driver) runs it without btree-specific scheduling code.
#pragma once

#include <cstdint>

#include "btree/btree.h"
#include "btree/btree_search.h"
#include "common/simd.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "relation/relation.h"

namespace amac {

template <typename Sink>
class BTreeSearchOp {
 public:
  struct State {
    const BTreeNode* ptr;
    int64_t key;
    uint64_t rid;
  };

  BTreeSearchOp(const BTree& tree, const Relation& probe, Sink& sink)
      : tree_(tree), probe_(probe), sink_(sink) {}

  void Start(State& st, uint64_t idx) {
    st.key = probe_[idx].key;
    st.rid = idx;
    st.ptr = tree_.root();
    PrefetchBTreeNode(st.ptr);
  }

  StepStatus Step(State& st) {
    const BTreeNode* next = nullptr;
    if (VisitBTreeNode(st.ptr, st.key, st.rid, sink_, &next)) {
      return StepStatus::kDone;
    }
    PrefetchBTreeNode(next);
    st.ptr = next;
    return StepStatus::kParked;
  }

  // Vector interface (core/vector_engine.h): up to 8 descents per slot.
  // Each StepVec visits one node per active lane with the SIMD multi-key
  // node compares (VisitBTreeNodeSimd) — the tree is balanced, so lanes of
  // one vector retire together and whole-vector restarts dominate.
  static constexpr uint32_t kVecLanes = kSimdLanes;
  struct VecState {
    const BTreeNode* ptr[kSimdLanes];
    int64_t key[kSimdLanes];
    uint64_t rid[kSimdLanes];
    uint32_t active;
  };

  void StartVec(VecState& st, uint64_t base_idx, uint32_t n) {
    AMAC_DCHECK(n >= 1 && n <= kSimdLanes);
    const BTreeNode* root = tree_.root();
    PrefetchBTreeNode(root);
    for (uint32_t i = 0; i < n; ++i) {
      st.key[i] = probe_[base_idx + i].key;
      st.rid[i] = base_idx + i;
      st.ptr[i] = root;
    }
    st.active = n == kSimdLanes ? 0xffu : (1u << n) - 1;
  }

  void RefillLane(VecState& st, uint32_t lane, uint64_t idx) {
    st.key[lane] = probe_[idx].key;
    st.rid[lane] = idx;
    st.ptr[lane] = tree_.root();
    PrefetchBTreeNode(st.ptr[lane]);
    st.active |= 1u << lane;
  }

  uint32_t StepVec(VecState& st) {
    uint32_t pending = st.active;
    while (pending != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(pending));
      pending &= pending - 1;
      const BTreeNode* next = nullptr;
      if (VisitBTreeNodeSimd(st.ptr[lane], st.key[lane], st.rid[lane],
                             sink_, &next)) {
        st.active &= ~(1u << lane);
      } else {
        PrefetchBTreeNode(next);
        st.ptr[lane] = next;
      }
    }
    return st.active;
  }

 private:
  const BTree& tree_;
  const Relation& probe_;
  Sink& sink_;
};

/// Pipeline stage (core/pipeline.h): B+-tree point lookup on the input
/// row's key; a hit emits Tuple{input key, indexed payload}.
class BTreeLookupStage {
 public:
  struct State {
    const BTreeNode* ptr;
    int64_t key;
  };

  explicit BTreeLookupStage(const BTree& tree) : tree_(&tree) {}

  void Start(State& st, const Tuple& in) {
    st.key = in.key;
    st.ptr = tree_->root();
    PrefetchBTreeNode(st.ptr);
  }

  template <typename EmitFn>
  StepStatus Step(State& st, EmitFn&& emit) {
    detail::KeyedEmitSink<EmitFn> sink{emit, st.key};
    const BTreeNode* next = nullptr;
    if (VisitBTreeNode(st.ptr, st.key, 0, sink, &next)) {
      return StepStatus::kDone;
    }
    PrefetchBTreeNode(next);
    st.ptr = next;
    return StepStatus::kParked;
  }

 private:
  const BTree* tree_;
};

inline BTreeLookupStage LookupBTree(const BTree& tree) {
  return BTreeLookupStage(tree);
}

}  // namespace amac
