// B+-tree search as a generic-engine operation (core/scheduler.h).
//
// One Step() is one node visit — the same stage boundary as the hand
// kernels in btree_search.h — so every ExecPolicy (and the parallel
// driver) runs it without btree-specific scheduling code.
#pragma once

#include <cstdint>

#include "btree/btree.h"
#include "btree/btree_search.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "relation/relation.h"

namespace amac {

template <typename Sink>
class BTreeSearchOp {
 public:
  struct State {
    const BTreeNode* ptr;
    int64_t key;
    uint64_t rid;
  };

  BTreeSearchOp(const BTree& tree, const Relation& probe, Sink& sink)
      : tree_(tree), probe_(probe), sink_(sink) {}

  void Start(State& st, uint64_t idx) {
    st.key = probe_[idx].key;
    st.rid = idx;
    st.ptr = tree_.root();
    PrefetchBTreeNode(st.ptr);
  }

  StepStatus Step(State& st) {
    const BTreeNode* next = nullptr;
    if (VisitBTreeNode(st.ptr, st.key, st.rid, sink_, &next)) {
      return StepStatus::kDone;
    }
    PrefetchBTreeNode(next);
    st.ptr = next;
    return StepStatus::kParked;
  }

 private:
  const BTree& tree_;
  const Relation& probe_;
  Sink& sink_;
};

/// Pipeline stage (core/pipeline.h): B+-tree point lookup on the input
/// row's key; a hit emits Tuple{input key, indexed payload}.
class BTreeLookupStage {
 public:
  struct State {
    const BTreeNode* ptr;
    int64_t key;
  };

  explicit BTreeLookupStage(const BTree& tree) : tree_(&tree) {}

  void Start(State& st, const Tuple& in) {
    st.key = in.key;
    st.ptr = tree_->root();
    PrefetchBTreeNode(st.ptr);
  }

  template <typename EmitFn>
  StepStatus Step(State& st, EmitFn&& emit) {
    detail::KeyedEmitSink<EmitFn> sink{emit, st.key};
    const BTreeNode* next = nullptr;
    if (VisitBTreeNode(st.ptr, st.key, 0, sink, &next)) {
      return StepStatus::kDone;
    }
    PrefetchBTreeNode(next);
    st.ptr = next;
    return StepStatus::kParked;
  }

 private:
  const BTree* tree_;
};

inline BTreeLookupStage LookupBTree(const BTree& tree) {
  return BTreeLookupStage(tree);
}

}  // namespace amac
