// Cache-conscious B+-tree index.
//
// The paper's tree-search discussion (§2.1.2) spans both binary trees and
// the cache-optimized index trees of [10, 16, 23]; SPP "has also been
// applied to balanced search trees [16]".  This module provides that
// balanced, wide-node counterpart to src/bst: 256-byte nodes (4 cache
// lines) holding up to 15 keys, bulk-loaded bottom-up, so a lookup touches
// ~log_16(n) nodes instead of ~1.39*log_2(n) — fewer but fatter dependent
// accesses, which shifts the GP/SPP/AMAC trade-offs (bench/ext_btree).
//
// Read-only after bulk load (index-probe workloads, like the paper's BST
// experiment); all four execution engines live in btree_search.h.
#pragma once

#include <cstdint>

#include "common/aligned.h"
#include "common/macros.h"
#include "relation/relation.h"

namespace amac {

/// Node layout: 4 cache lines.  Inner nodes route by key; leaves store
/// payloads and are forward-linked for scans.
struct alignas(4 * kCacheLineSize) BTreeNode {
  static constexpr uint32_t kMaxKeys = 15;

  uint16_t count = 0;
  uint16_t is_leaf = 0;
  uint8_t pad[4] = {};
  int64_t keys[kMaxKeys] = {};
  union {
    BTreeNode* children[kMaxKeys + 1];  ///< inner: child[i] covers keys < keys[i]
    struct {
      int64_t payloads[kMaxKeys];
      BTreeNode* next_leaf;
    } leaf;
  };

  BTreeNode() : leaf{{}, nullptr} {}

  /// Index of the first key >= `key` (linear scan: count is small and the
  /// node is resident once prefetched).
  uint32_t LowerBound(int64_t key) const {
    uint32_t i = 0;
    while (i < count && keys[i] < key) ++i;
    return i;
  }
};
static_assert(sizeof(BTreeNode) == 4 * kCacheLineSize);

struct BTreeStats {
  uint64_t num_keys = 0;
  uint64_t num_leaves = 0;
  uint64_t num_inner = 0;
  uint32_t height = 0;  ///< nodes on a root-to-leaf path
};

/// Bulk-loaded, read-only B+-tree.
class BTree {
 public:
  /// Build from `rel` (keys need not be sorted or unique; duplicates keep
  /// the first payload encountered after sorting).
  explicit BTree(const Relation& rel);

  const BTreeNode* root() const { return root_; }
  uint32_t height() const { return height_; }

  /// Reference search used by tests; returns nullptr when absent.
  const int64_t* Find(int64_t key) const;

  BTreeStats ComputeStats() const;

 private:
  BTreeNode* AllocNode();

  AlignedBuffer<BTreeNode> pool_;
  uint64_t used_ = 0;
  BTreeNode* root_ = nullptr;
  BTreeNode* first_leaf_ = nullptr;
  uint32_t height_ = 0;
  uint64_t num_keys_ = 0;
  uint64_t num_leaves_ = 0;
};

}  // namespace amac
