// B+-tree search kernels: Baseline, GP, SPP, AMAC.
//
// One stage = one node visit (four cache lines prefetched together).  The
// tree is balanced, so — unlike the BST and skip list — every lookup needs
// exactly `height` stages: the *regular* regime where the paper expects
// GP/SPP to do well.  Comparing ext_btree against fig10_bst isolates how
// much of AMAC's advantage comes from irregularity alone.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "btree/btree.h"
#include "common/macros.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "relation/relation.h"

namespace amac {

inline void PrefetchBTreeNode(const BTreeNode* node) {
  PrefetchRange(node, sizeof(BTreeNode));
}

/// One node visit: descend an inner node or resolve a leaf.
/// Returns true when finished (match emitted or key absent).
template <typename Sink>
inline bool VisitBTreeNode(const BTreeNode* node, int64_t key, uint64_t rid,
                           Sink& sink, const BTreeNode** next) {
  if (!node->is_leaf) {
    uint32_t i = 0;
    while (i < node->count && key >= node->keys[i]) ++i;
    *next = node->children[i];
    return false;
  }
  const uint32_t i = node->LowerBound(key);
  if (i < node->count && node->keys[i] == key) {
    sink.Emit(rid, node->leaf.payloads[i]);
  }
  return true;
}

/// VisitBTreeNode with the node-internal key scans replaced by the SIMD
/// multi-key compares (common/simd.h): one masked 4-wide compare sweep
/// instead of an up-to-15-iteration branchy loop.  keys[] is sorted and
/// followed in-struct by the child/payload union, satisfying the
/// CountSorted* readability contract; results are identical to the scalar
/// visit on every node.
template <typename Sink>
inline bool VisitBTreeNodeSimd(const BTreeNode* node, int64_t key,
                               uint64_t rid, Sink& sink,
                               const BTreeNode** next) {
  if (!node->is_leaf) {
    *next = node->children[CountSortedLessEq(node->keys, node->count, key)];
    return false;
  }
  const uint32_t i = CountSortedLess(node->keys, node->count, key);
  if (i < node->count && node->keys[i] == key) {
    sink.Emit(rid, node->leaf.payloads[i]);
  }
  return true;
}

template <typename Sink>
void BTreeSearchBaseline(const BTree& tree, const Relation& probe,
                         uint64_t begin, uint64_t end, Sink& sink) {
  for (uint64_t i = begin; i < end; ++i) {
    const int64_t key = probe[i].key;
    const BTreeNode* node = tree.root();
    const BTreeNode* next = nullptr;
    while (!VisitBTreeNode(node, key, i, sink, &next)) node = next;
  }
}

template <typename Sink>
void BTreeSearchGroupPrefetch(const BTree& tree, const Relation& probe,
                              uint64_t begin, uint64_t end,
                              uint32_t group_size, uint32_t num_stages,
                              Sink& sink) {
  AMAC_CHECK(group_size >= 1 && num_stages >= 1);
  struct GpState {
    const BTreeNode* ptr;
    int64_t key;
    uint64_t rid;
    bool active;
  };
  std::vector<GpState> g(group_size);
  for (uint64_t base = begin; base < end; base += group_size) {
    const uint32_t in_group =
        static_cast<uint32_t>(std::min<uint64_t>(group_size, end - base));
    for (uint32_t j = 0; j < in_group; ++j) {
      g[j] = GpState{tree.root(), probe[base + j].key, base + j, true};
      PrefetchBTreeNode(tree.root());
    }
    for (uint32_t stage = 0; stage < num_stages; ++stage) {
      for (uint32_t j = 0; j < in_group; ++j) {
        if (!g[j].active) continue;
        const BTreeNode* next = nullptr;
        if (VisitBTreeNode(g[j].ptr, g[j].key, g[j].rid, sink, &next)) {
          g[j].active = false;
        } else {
          PrefetchBTreeNode(next);
          g[j].ptr = next;
        }
      }
    }
    for (uint32_t j = 0; j < in_group; ++j) {  // bailout
      while (g[j].active) {
        const BTreeNode* next = nullptr;
        if (VisitBTreeNode(g[j].ptr, g[j].key, g[j].rid, sink, &next)) {
          g[j].active = false;
        } else {
          g[j].ptr = next;
        }
      }
    }
  }
}

template <typename Sink>
void BTreeSearchSoftwarePipelined(const BTree& tree, const Relation& probe,
                                  uint64_t begin, uint64_t end,
                                  uint32_t num_stages, uint32_t distance,
                                  Sink& sink) {
  AMAC_CHECK(num_stages >= 1 && distance >= 1);
  const uint64_t n = end - begin;
  const uint64_t window = static_cast<uint64_t>(num_stages) * distance;
  struct SppState {
    const BTreeNode* ptr;
    int64_t key;
    bool active;
  };
  std::vector<SppState> pipe(window);
  for (uint64_t i = 0; i < n + window; ++i) {
    for (uint32_t s = num_stages; s >= 1; --s) {
      const uint64_t delay = static_cast<uint64_t>(s) * distance;
      if (i < delay) continue;
      const uint64_t t = i - delay;
      if (t >= n) continue;
      SppState& st = pipe[t % window];
      if (!st.active) continue;
      const uint64_t rid = begin + t;
      const BTreeNode* next = nullptr;
      if (VisitBTreeNode(st.ptr, st.key, rid, sink, &next)) {
        st.active = false;
      } else if (s == num_stages) {
        const BTreeNode* node = next;  // bailout
        while (!VisitBTreeNode(node, st.key, rid, sink, &next)) node = next;
        st.active = false;
      } else {
        PrefetchBTreeNode(next);
        st.ptr = next;
      }
    }
    if (i < n) {
      pipe[i % window] = SppState{tree.root(), probe[begin + i].key, true};
      PrefetchBTreeNode(tree.root());
    }
  }
}

template <typename Sink>
void BTreeSearchAmac(const BTree& tree, const Relation& probe,
                     uint64_t begin, uint64_t end, uint32_t num_inflight,
                     Sink& sink) {
  AMAC_CHECK(num_inflight >= 1);
  struct AmacState {
    const BTreeNode* ptr;
    int64_t key;
    uint64_t rid;
    bool active;
  };
  std::vector<AmacState> s(num_inflight);
  uint64_t next_input = begin;
  uint32_t num_active = 0;
  for (uint32_t k = 0; k < num_inflight; ++k) {
    if (next_input < end) {
      s[k] = AmacState{tree.root(), probe[next_input].key, next_input, true};
      PrefetchBTreeNode(tree.root());
      ++next_input;
      ++num_active;
    } else {
      s[k].active = false;
    }
  }
  uint32_t k = 0;
  while (num_active > 0) {
    AmacState& st = s[k];
    if (st.active) {
      const BTreeNode* next = nullptr;
      if (!VisitBTreeNode(st.ptr, st.key, st.rid, sink, &next)) {
        PrefetchBTreeNode(next);
        st.ptr = next;
      } else if (next_input < end) {
        st = AmacState{tree.root(), probe[next_input].key, next_input, true};
        ++next_input;
      } else {
        st.active = false;
        --num_active;
      }
    }
    ++k;
    if (k == num_inflight) k = 0;
  }
}

}  // namespace amac
