// Hardware performance counters via perf_event_open, with graceful
// degradation: containers and locked-down kernels often forbid the syscall,
// in which case counters report unavailable and callers fall back to
// documented estimates (see bench/table3_profile).
//
// Used to reproduce Table 3 (instructions/cycles per tuple).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace amac {

/// A group of core PMU counters read together.
class PerfCounters {
 public:
  struct Sample {
    bool valid = false;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t l1d_misses = 0;
    uint64_t llc_misses = 0;      ///< off-chip accesses (the paper's currency)
    uint64_t stalled_cycles = 0;  ///< backend stalls (memory-bound signal)
  };

  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True if the kernel admitted at least the instruction counter.
  bool available() const { return available_; }

  void Start();
  /// Stop and return deltas since Start().
  Sample Stop();

 private:
  struct Fd {
    int fd = -1;
    uint64_t value = 0;
  };
  Fd instructions_;
  Fd cycles_;
  Fd l1d_misses_;
  Fd llc_misses_;
  Fd stalled_cycles_;
  bool available_ = false;
};

}  // namespace amac
