// Hardware performance counters via perf_event_open, with graceful
// degradation: containers and locked-down kernels often forbid the syscall,
// in which case counters report unavailable and callers fall back to
// documented estimates (see bench/table3_profile).
//
// Used to reproduce Table 3 (instructions/cycles per tuple).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace amac {

/// A group of core PMU counters read together.
class PerfCounters {
 public:
  struct Sample {
    bool valid = false;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t l1d_misses = 0;
    uint64_t llc_misses = 0;      ///< off-chip accesses (the paper's currency)
    uint64_t stalled_cycles = 0;  ///< backend stalls (memory-bound signal)

    /// Fraction of cycles the backend was stalled — the governor's
    /// hardware-evidence signal (0 when invalid/empty).
    double StallFraction() const {
      return cycles ? static_cast<double>(stalled_cycles) /
                          static_cast<double>(cycles)
                    : 0;
    }
    /// Off-chip misses per kilo-instruction (Table 4's currency).
    double LlcMissesPerKiloInstr() const {
      return instructions ? static_cast<double>(llc_misses) * 1000.0 /
                                static_cast<double>(instructions)
                          : 0;
    }
    /// Accumulate another sample (per-morsel samples folded into a
    /// per-run total); the union is valid when either side was.
    void Merge(const Sample& other) {
      valid = valid || other.valid;
      instructions += other.instructions;
      cycles += other.cycles;
      l1d_misses += other.l1d_misses;
      llc_misses += other.llc_misses;
      stalled_cycles += other.stalled_cycles;
    }
  };

  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True if the kernel admitted at least the instruction counter.
  bool available() const { return available_; }

  void Start();
  /// Stop and return deltas since Start().
  Sample Stop();

 private:
  struct Fd {
    int fd = -1;
    uint64_t value = 0;
  };
  Fd instructions_;
  Fd cycles_;
  Fd l1d_misses_;
  Fd llc_misses_;
  Fd stalled_cycles_;
  bool available_ = false;
};

}  // namespace amac
