#include "metrics/perf_counters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace amac {

#if defined(__linux__)

namespace {

int OpenCounter(uint32_t type, uint64_t config_value) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config_value;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

uint64_t ReadCounter(int fd) {
  uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof(value)) != sizeof(value)) value = 0;
  return value;
}

}  // namespace

PerfCounters::PerfCounters() {
  instructions_.fd =
      OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  cycles_.fd = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  l1d_misses_.fd = OpenCounter(
      PERF_TYPE_HW_CACHE,
      PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
          (PERF_COUNT_HW_CACHE_RESULT_MISS << 16));
  llc_misses_.fd =
      OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  stalled_cycles_.fd = OpenCounter(
      PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
  available_ = instructions_.fd >= 0;
}

PerfCounters::~PerfCounters() {
  for (int fd : {instructions_.fd, cycles_.fd, l1d_misses_.fd,
                 llc_misses_.fd, stalled_cycles_.fd}) {
    if (fd >= 0) close(fd);
  }
}

void PerfCounters::Start() {
  for (Fd* c : {&instructions_, &cycles_, &l1d_misses_, &llc_misses_,
                &stalled_cycles_}) {
    if (c->fd < 0) continue;
    ioctl(c->fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(c->fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfCounters::Sample PerfCounters::Stop() {
  Sample s;
  for (Fd* c : {&instructions_, &cycles_, &l1d_misses_, &llc_misses_,
                &stalled_cycles_}) {
    if (c->fd < 0) continue;
    ioctl(c->fd, PERF_EVENT_IOC_DISABLE, 0);
    c->value = ReadCounter(c->fd);
  }
  s.valid = available_;
  s.instructions = instructions_.value;
  s.cycles = cycles_.value;
  s.l1d_misses = l1d_misses_.value;
  s.llc_misses = llc_misses_.value;
  s.stalled_cycles = stalled_cycles_.value;
  return s;
}

#else  // !__linux__

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::Start() {}
PerfCounters::Sample PerfCounters::Stop() { return Sample{}; }

#endif

}  // namespace amac
