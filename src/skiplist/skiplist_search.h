// Skip list search kernels: Baseline, GP, SPP, AMAC (paper Table 1 col 5
// describes insert; search is its prefix without the splice).
//
// A search stage visits one *candidate node* (one dependent memory access).
// Level descents that need no new node (null / overshoot candidates) happen
// inside the same stage — the paper's observation that "the traversal at
// each skip list level terminates after an arbitrary number of node
// traversals" is precisely the irregularity that hurts GP/SPP here.
//
// Tall towers span multiple cache lines, so prefetching a candidate touches
// both its header line and the line holding the forward pointer at the
// current level.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/prefetch.h"
#include "relation/relation.h"
#include "skiplist/skiplist.h"

namespace amac {

/// Prefetch the lines of `n` needed to (a) compare its key and (b) read its
/// forward pointer at `level`.
inline void PrefetchSkipNode(const SkipNode* n, int32_t level) {
  Prefetch(n);
  const char* slot = reinterpret_cast<const char*>(n) +
                     SkipNode::HeaderBytes() +
                     sizeof(SkipNode*) * static_cast<uint32_t>(level);
  Prefetch(slot);
}

/// Per-lookup cursor: `cur` is resident; the candidate `cur->next[level]`
/// has been prefetched.
struct SkipCursor {
  const SkipNode* cur;
  int32_t level;
};

/// Advance one memory access.  Returns true when the lookup completed
/// (match emitted or key absent); false when it parked on a new prefetch.
template <typename Sink>
inline bool SkipSearchStep(SkipCursor& c, int64_t key, uint64_t rid,
                           Sink& sink) {
  while (true) {
    const SkipNode* cand = c.cur->next[c.level];
    if (cand != nullptr && cand->key < key) {
      // Move right: `cand` just arrived in cache; park on its successor.
      c.cur = cand;
      const SkipNode* nxt = cand->next[c.level];
      if (nxt != nullptr) {
        PrefetchSkipNode(nxt, c.level);
        return false;
      }
      continue;  // chain ends: descend without a new memory access
    }
    if (cand != nullptr && cand->key == key) {
      sink.Emit(rid, cand->payload);
      return true;
    }
    // Candidate overshoots (or null): descend.
    if (c.level == 0) return true;  // key absent
    --c.level;
    const SkipNode* nxt = c.cur->next[c.level];
    if (nxt != nullptr && nxt != cand) {
      PrefetchSkipNode(nxt, c.level);
      return false;
    }
    // Lower-level candidate is the same node (already cached) or null:
    // keep descending inside this stage.
  }
}

/// Initial cursor for a lookup (head is permanently hot).
inline SkipCursor SkipStartCursor(const SkipList& list) {
  return SkipCursor{list.head(),
                    static_cast<int32_t>(SkipList::kMaxLevel) - 1};
}

template <typename Sink>
void SkipSearchBaseline(const SkipList& list, const Relation& probe,
                        uint64_t begin, uint64_t end, Sink& sink) {
  for (uint64_t i = begin; i < end; ++i) {
    const SkipNode* match = list.Find(probe[i].key);
    if (match != nullptr) sink.Emit(i, match->payload);
  }
}

template <typename Sink>
void SkipSearchGroupPrefetch(const SkipList& list, const Relation& probe,
                             uint64_t begin, uint64_t end,
                             uint32_t group_size, uint32_t num_stages,
                             Sink& sink) {
  AMAC_CHECK(group_size >= 1 && num_stages >= 1);
  struct GpState {
    SkipCursor cursor;
    int64_t key;
    uint64_t rid;
    bool active;
  };
  std::vector<GpState> g(group_size);
  for (uint64_t base = begin; base < end; base += group_size) {
    const uint32_t n_in_group =
        static_cast<uint32_t>(std::min<uint64_t>(group_size, end - base));
    for (uint32_t j = 0; j < n_in_group; ++j) {
      g[j] = GpState{SkipStartCursor(list), probe[base + j].key, base + j,
                     true};
    }
    for (uint32_t stage = 0; stage < num_stages; ++stage) {
      for (uint32_t j = 0; j < n_in_group; ++j) {
        if (!g[j].active) continue;
        if (SkipSearchStep(g[j].cursor, g[j].key, g[j].rid, sink)) {
          g[j].active = false;
        }
      }
    }
    for (uint32_t j = 0; j < n_in_group; ++j) {  // bailout pass
      while (g[j].active) {
        if (SkipSearchStep(g[j].cursor, g[j].key, g[j].rid, sink)) {
          g[j].active = false;
        }
      }
    }
  }
}

template <typename Sink>
void SkipSearchSoftwarePipelined(const SkipList& list, const Relation& probe,
                                 uint64_t begin, uint64_t end,
                                 uint32_t num_stages, uint32_t distance,
                                 Sink& sink) {
  AMAC_CHECK(num_stages >= 1 && distance >= 1);
  const uint64_t n = end - begin;
  const uint64_t window = static_cast<uint64_t>(num_stages) * distance;
  struct SppState {
    SkipCursor cursor;
    int64_t key;
    bool active;
  };
  std::vector<SppState> pipe(window);
  for (uint64_t i = 0; i < n + window; ++i) {
    for (uint32_t s = num_stages; s >= 1; --s) {
      const uint64_t delay = static_cast<uint64_t>(s) * distance;
      if (i < delay) continue;
      const uint64_t t = i - delay;
      if (t >= n) continue;
      SppState& st = pipe[t % window];
      if (!st.active) continue;
      const uint64_t rid = begin + t;
      if (SkipSearchStep(st.cursor, st.key, rid, sink)) {
        st.active = false;
      } else if (s == num_stages) {
        while (!SkipSearchStep(st.cursor, st.key, rid, sink)) {  // bailout
        }
        st.active = false;
      }
    }
    if (i < n) {
      pipe[i % window] =
          SppState{SkipStartCursor(list), probe[begin + i].key, true};
    }
  }
}

template <typename Sink>
void SkipSearchAmac(const SkipList& list, const Relation& probe,
                    uint64_t begin, uint64_t end, uint32_t num_inflight,
                    Sink& sink) {
  AMAC_CHECK(num_inflight >= 1);
  struct AmacState {
    SkipCursor cursor;
    int64_t key;
    uint64_t rid;
    bool active;
  };
  std::vector<AmacState> s(num_inflight);
  uint64_t next_input = begin;
  uint32_t num_active = 0;
  for (uint32_t k = 0; k < num_inflight; ++k) {
    if (next_input < end) {
      s[k] = AmacState{SkipStartCursor(list), probe[next_input].key,
                       next_input, true};
      ++next_input;
      ++num_active;
    } else {
      s[k].active = false;
    }
  }
  uint32_t k = 0;
  while (num_active > 0) {
    AmacState& st = s[k];
    if (st.active && SkipSearchStep(st.cursor, st.key, st.rid, sink)) {
      if (next_input < end) {
        st = AmacState{SkipStartCursor(list), probe[next_input].key,
                       next_input, true};
        ++next_input;
      } else {
        st.active = false;
        --num_active;
      }
    }
    ++k;
    if (k == num_inflight) k = 0;
  }
}

}  // namespace amac
