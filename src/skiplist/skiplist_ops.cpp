#include "skiplist/skiplist_ops.h"

#include <vector>

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "join/sink.h"
#include "skiplist/skiplist_insert.h"
#include "skiplist/skiplist_search.h"

namespace amac {

namespace {

uint32_t SppDistance(const SkipListConfig& config) {
  return std::max<uint32_t>(1, config.inflight / std::max(1u, config.stages));
}

void RunSearchKernel(const SkipList& list, const Relation& probe,
                     uint64_t begin, uint64_t end,
                     const SkipListConfig& config, CountChecksumSink& sink) {
  switch (config.engine) {
    case Engine::kBaseline:
      SkipSearchBaseline(list, probe, begin, end, sink);
      break;
    case Engine::kGP:
      SkipSearchGroupPrefetch(list, probe, begin, end, config.inflight,
                              config.stages, sink);
      break;
    case Engine::kSPP:
      SkipSearchSoftwarePipelined(list, probe, begin, end, config.stages,
                                  SppDistance(config), sink);
      break;
    case Engine::kAMAC:
      SkipSearchAmac(list, probe, begin, end, config.inflight, sink);
      break;
  }
}

template <bool kSync>
uint64_t RunInsertKernel(SkipList& list, const Relation& input,
                         uint64_t begin, uint64_t end,
                         const SkipListConfig& config, uint64_t seed) {
  switch (config.engine) {
    case Engine::kBaseline:
      return SkipInsertBaseline<kSync>(list, input, begin, end, seed);
    case Engine::kGP:
      return SkipInsertGroupPrefetch<kSync>(list, input, begin, end,
                                            config.inflight, config.stages,
                                            seed);
    case Engine::kSPP:
      return SkipInsertSoftwarePipelined<kSync>(
          list, input, begin, end, config.stages, SppDistance(config), seed);
    case Engine::kAMAC:
      return SkipInsertAmac<kSync>(list, input, begin, end, config.inflight,
                                   seed);
  }
  return 0;
}

}  // namespace

SkipListStats RunSkipListSearch(const SkipList& list, const Relation& probe,
                                const SkipListConfig& config) {
  SkipListStats stats;
  stats.tuples = probe.size();
  std::vector<CountChecksumSink> sinks(config.num_threads);
  WallTimer wall;
  CycleTimer cycles;
  if (config.num_threads <= 1) {
    RunSearchKernel(list, probe, 0, probe.size(), config, sinks[0]);
  } else {
    SpinBarrier barrier(config.num_threads);
    ParallelFor(config.num_threads, [&](uint32_t tid) {
      const Range r = PartitionRange(probe.size(), config.num_threads, tid);
      barrier.Wait();
      RunSearchKernel(list, probe, r.begin, r.end, config, sinks[tid]);
      barrier.Wait();
    });
  }
  stats.cycles = cycles.Elapsed();
  stats.seconds = wall.ElapsedSeconds();
  CountChecksumSink total;
  for (const auto& s : sinks) total.Merge(s);
  stats.matches = total.matches();
  stats.checksum = total.checksum();
  return stats;
}

SkipListStats RunSkipListInsert(SkipList* list, const Relation& input,
                                const SkipListConfig& config) {
  SkipListStats stats;
  stats.tuples = input.size();
  std::vector<uint64_t> inserted(config.num_threads, 0);
  WallTimer wall;
  CycleTimer cycles;
  if (config.num_threads <= 1) {
    inserted[0] = RunInsertKernel<false>(*list, input, 0, input.size(),
                                         config, config.seed);
  } else {
    SpinBarrier barrier(config.num_threads);
    ParallelFor(config.num_threads, [&](uint32_t tid) {
      const Range r = PartitionRange(input.size(), config.num_threads, tid);
      barrier.Wait();
      inserted[tid] = RunInsertKernel<true>(*list, input, r.begin, r.end,
                                            config, config.seed + tid);
      barrier.Wait();
    });
  }
  stats.cycles = cycles.Elapsed();
  stats.seconds = wall.ElapsedSeconds();
  uint64_t total = 0;
  for (uint64_t v : inserted) total += v;
  // Baseline inserts bump the count inside the list; staged kernels do not.
  if (config.engine != Engine::kBaseline) list->AddElems(total);
  stats.matches = total;
  return stats;
}

}  // namespace amac
