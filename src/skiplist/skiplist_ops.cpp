#include "skiplist/skiplist_ops.h"

#include <vector>

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "join/sink.h"
#include "skiplist/skiplist_insert.h"
#include "skiplist/skiplist_search.h"

namespace amac {

namespace {

/// Insert kernels: no generic op exists (each in-flight insert carries a
/// ~0.5KB pred/succ vector), so the hand-written schedules run under the
/// executor's team.  kCoroutine maps to the scheduling-equivalent dynamic
/// schedule, the AMAC kernel.
template <bool kSync>
uint64_t RunInsertKernel(SkipList& list, const Relation& input,
                         uint64_t begin, uint64_t end, ExecPolicy policy,
                         const SchedulerParams& params, uint64_t seed) {
  switch (policy) {
    case ExecPolicy::kSequential:
      return SkipInsertBaseline<kSync>(list, input, begin, end, seed);
    case ExecPolicy::kGroupPrefetch:
      return SkipInsertGroupPrefetch<kSync>(list, input, begin, end,
                                            params.inflight, params.stages,
                                            seed);
    case ExecPolicy::kSoftwarePipelined:
      return SkipInsertSoftwarePipelined<kSync>(list, input, begin, end,
                                                params.stages,
                                                params.SppDistance(), seed);
    case ExecPolicy::kAmac:
    case ExecPolicy::kCoroutine:
      return SkipInsertAmac<kSync>(list, input, begin, end, params.inflight,
                                   seed);
  }
  return 0;
}

}  // namespace

SkipListStats RunSkipListSearch(Executor& exec, const SkipList& list,
                                const Relation& probe) {
  SkipListStats stats;
  stats.tuples = probe.size();
  const uint32_t threads = exec.num_threads();
  std::vector<CountChecksumSink> sinks(threads);
  if (exec.policy() == ExecPolicy::kSequential) {
    // The paper's Baseline is a plain pointer chase with no prefetches;
    // keep the hand kernel (fig10/ext_btree do the same) so fig11's
    // speedup ratios stay anchored to the no-prefetch chase.
    WallTimer wall;
    CycleTimer cycles;
    if (threads <= 1) {
      SkipSearchBaseline(list, probe, 0, probe.size(), sinks[0]);
    } else {
      SpinBarrier barrier(threads);
      exec.pool().Run([&](uint32_t tid) {
        const Range r = PartitionRange(probe.size(), threads, tid);
        barrier.Wait();
        SkipSearchBaseline(list, probe, r.begin, r.end, sinks[tid]);
        barrier.Wait();
      });
    }
    stats.cycles = cycles.Elapsed();
    stats.seconds = wall.ElapsedSeconds();
  } else {
    const RunStats run = exec.Run(FromOp(probe.size(), [&](uint32_t tid) {
      return SkipSearchOp<CountChecksumSink>(list, probe, sinks[tid]);
    }));
    stats.cycles = run.cycles;
    stats.seconds = run.seconds;
  }
  CountChecksumSink total;
  for (const auto& sink : sinks) total.Merge(sink);
  stats.matches = total.matches();
  stats.checksum = total.checksum();
  return stats;
}

SkipListStats RunSkipListInsert(Executor& exec, SkipList* list,
                                const Relation& input, uint64_t seed) {
  SkipListStats stats;
  stats.tuples = input.size();
  const ExecConfig& config = exec.config();
  const uint32_t threads = exec.num_threads();
  std::vector<uint64_t> inserted(threads, 0);
  WallTimer wall;
  CycleTimer cycles;
  if (threads <= 1) {
    inserted[0] = RunInsertKernel<false>(*list, input, 0, input.size(),
                                         config.policy, config.params, seed);
  } else {
    SpinBarrier barrier(threads);
    exec.pool().Run([&](uint32_t tid) {
      const Range r = PartitionRange(input.size(), threads, tid);
      barrier.Wait();
      inserted[tid] =
          RunInsertKernel<true>(*list, input, r.begin, r.end, config.policy,
                                config.params, seed + tid);
      barrier.Wait();
    });
  }
  stats.cycles = cycles.Elapsed();
  stats.seconds = wall.ElapsedSeconds();
  uint64_t total = 0;
  for (uint64_t v : inserted) total += v;
  // Baseline inserts bump the count inside the list; staged kernels do not.
  if (config.policy != ExecPolicy::kSequential) list->AddElems(total);
  stats.matches = total;
  return stats;
}

SkipListStats RunSkipListSearch(const SkipList& list, const Relation& probe,
                                const SkipListConfig& config) {
  Executor exec(config.Exec());
  return RunSkipListSearch(exec, list, probe);
}

SkipListStats RunSkipListInsert(SkipList* list, const Relation& input,
                                const SkipListConfig& config) {
  Executor exec(config.Exec());
  return RunSkipListInsert(exec, list, input, config.seed);
}

}  // namespace amac
