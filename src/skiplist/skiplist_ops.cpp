#include "skiplist/skiplist_ops.h"

#include <vector>

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "join/sink.h"
#include "skiplist/skiplist_insert.h"
#include "skiplist/skiplist_search.h"

namespace amac {

namespace {

uint32_t SppDistance(const SkipListConfig& config) {
  return SchedulerParams{config.inflight, config.stages, 0}.SppDistance();
}

void RunSearchKernel(const SkipList& list, const Relation& probe,
                     uint64_t begin, uint64_t end,
                     const SkipListConfig& config, CountChecksumSink& sink) {
  switch (config.policy) {
    case ExecPolicy::kSequential:
      SkipSearchBaseline(list, probe, begin, end, sink);
      break;
    case ExecPolicy::kGroupPrefetch:
      SkipSearchGroupPrefetch(list, probe, begin, end, config.inflight,
                              config.stages, sink);
      break;
    case ExecPolicy::kSoftwarePipelined:
      SkipSearchSoftwarePipelined(list, probe, begin, end, config.stages,
                                  SppDistance(config), sink);
      break;
    case ExecPolicy::kAmac:
      SkipSearchAmac(list, probe, begin, end, config.inflight, sink);
      break;
    case ExecPolicy::kCoroutine: {
      // No hand-written coroutine kernel: drive the generic SkipSearchOp
      // through the unified runtime's coroutine schedule.
      SkipSearchOp<CountChecksumSink> op(list, probe, sink);
      OffsetOp<SkipSearchOp<CountChecksumSink>> rebased(op, begin);
      Run(ExecPolicy::kCoroutine, SchedulerParams{config.inflight, 1, 0},
          rebased, end - begin);
      break;
    }
  }
}

template <bool kSync>
uint64_t RunInsertKernel(SkipList& list, const Relation& input,
                         uint64_t begin, uint64_t end,
                         const SkipListConfig& config, uint64_t seed) {
  switch (config.policy) {
    case ExecPolicy::kSequential:
      return SkipInsertBaseline<kSync>(list, input, begin, end, seed);
    case ExecPolicy::kGroupPrefetch:
      return SkipInsertGroupPrefetch<kSync>(list, input, begin, end,
                                            config.inflight, config.stages,
                                            seed);
    case ExecPolicy::kSoftwarePipelined:
      return SkipInsertSoftwarePipelined<kSync>(
          list, input, begin, end, config.stages, SppDistance(config), seed);
    case ExecPolicy::kAmac:
    case ExecPolicy::kCoroutine:
      // The insert has no generic op (each in-flight insert carries a
      // ~0.5KB pred/succ vector); kCoroutine runs the scheduling-equivalent
      // dynamic schedule, the AMAC kernel.
      return SkipInsertAmac<kSync>(list, input, begin, end, config.inflight,
                                   seed);
  }
  return 0;
}

}  // namespace

SkipListStats RunSkipListSearch(const SkipList& list, const Relation& probe,
                                const SkipListConfig& config) {
  SkipListStats stats;
  stats.tuples = probe.size();
  std::vector<CountChecksumSink> sinks(config.num_threads);
  WallTimer wall;
  CycleTimer cycles;
  if (config.num_threads <= 1) {
    RunSearchKernel(list, probe, 0, probe.size(), config, sinks[0]);
  } else {
    SpinBarrier barrier(config.num_threads);
    ParallelFor(config.num_threads, [&](uint32_t tid) {
      const Range r = PartitionRange(probe.size(), config.num_threads, tid);
      barrier.Wait();
      RunSearchKernel(list, probe, r.begin, r.end, config, sinks[tid]);
      barrier.Wait();
    });
  }
  stats.cycles = cycles.Elapsed();
  stats.seconds = wall.ElapsedSeconds();
  CountChecksumSink total;
  for (const auto& s : sinks) total.Merge(s);
  stats.matches = total.matches();
  stats.checksum = total.checksum();
  return stats;
}

SkipListStats RunSkipListInsert(SkipList* list, const Relation& input,
                                const SkipListConfig& config) {
  SkipListStats stats;
  stats.tuples = input.size();
  std::vector<uint64_t> inserted(config.num_threads, 0);
  WallTimer wall;
  CycleTimer cycles;
  if (config.num_threads <= 1) {
    inserted[0] = RunInsertKernel<false>(*list, input, 0, input.size(),
                                         config, config.seed);
  } else {
    SpinBarrier barrier(config.num_threads);
    ParallelFor(config.num_threads, [&](uint32_t tid) {
      const Range r = PartitionRange(input.size(), config.num_threads, tid);
      barrier.Wait();
      inserted[tid] = RunInsertKernel<true>(*list, input, r.begin, r.end,
                                            config, config.seed + tid);
      barrier.Wait();
    });
  }
  stats.cycles = cycles.Elapsed();
  stats.seconds = wall.ElapsedSeconds();
  uint64_t total = 0;
  for (uint64_t v : inserted) total += v;
  // Baseline inserts bump the count inside the list; staged kernels do not.
  if (config.policy != ExecPolicy::kSequential) list->AddElems(total);
  stats.matches = total;
  return stats;
}

}  // namespace amac
