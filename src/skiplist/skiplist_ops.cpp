#include "skiplist/skiplist_ops.h"

#include <vector>

#include "common/barrier.h"
#include "common/cycle_timer.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "join/sink.h"
#include "skiplist/skiplist_insert.h"
#include "skiplist/skiplist_search.h"

namespace amac {

namespace {

/// Insert kernels: no generic op exists (each in-flight insert carries a
/// ~0.5KB pred/succ vector), so the hand-written schedules run under the
/// executor's team.  kCoroutine maps to the scheduling-equivalent dynamic
/// schedule, the AMAC kernel.
template <bool kSync>
uint64_t RunInsertKernel(SkipList& list, const Relation& input,
                         uint64_t begin, uint64_t end, ExecPolicy policy,
                         const SchedulerParams& params, uint64_t seed) {
  switch (policy) {
    case ExecPolicy::kSequential:
    case ExecPolicy::kVectorized:  // no vector insert kernel: sequential
      return SkipInsertBaseline<kSync>(list, input, begin, end, seed);
    case ExecPolicy::kGroupPrefetch:
      return SkipInsertGroupPrefetch<kSync>(list, input, begin, end,
                                            params.inflight, params.stages,
                                            seed);
    case ExecPolicy::kSoftwarePipelined:
      return SkipInsertSoftwarePipelined<kSync>(list, input, begin, end,
                                                params.stages,
                                                params.SppDistance(), seed);
    case ExecPolicy::kAmac:
    case ExecPolicy::kCoroutine:
    // The skip-list insert has no vector kernel (each in-flight insert
    // carries a pred/succ vector); the vector policies take their
    // scheduling-equivalent scalar fallbacks, like Run() does for
    // vector-less ops.
    case ExecPolicy::kVectorizedAmac:
    // kAdaptive is resolved to a static schedule upstream (src/adaptive/);
    // a kernel asked to run it directly gets the work-conserving default.
    case ExecPolicy::kAdaptive:
      return SkipInsertAmac<kSync>(list, input, begin, end, params.inflight,
                                   seed);
  }
  return 0;
}

}  // namespace

RunStats RunSkipListSearch(Executor& exec, const SkipList& list,
                           const Relation& probe) {
  RunStats run;
  const uint32_t threads = exec.num_threads();
  std::vector<CountChecksumSink> sinks(threads);
  if (exec.policy() == ExecPolicy::kSequential) {
    // The paper's Baseline is a plain pointer chase with no prefetches;
    // keep the hand kernel (fig10/ext_btree do the same) so fig11's
    // speedup ratios stay anchored to the no-prefetch chase.
    run.inputs = probe.size();
    run.threads = std::max(1u, threads);
    WallTimer wall;
    CycleTimer cycles;
    if (threads <= 1) {
      SkipSearchBaseline(list, probe, 0, probe.size(), sinks[0]);
    } else {
      SpinBarrier barrier(threads);
      exec.pool().Run([&](uint32_t tid) {
        const Range r = PartitionRange(probe.size(), threads, tid);
        barrier.Wait();
        SkipSearchBaseline(list, probe, r.begin, r.end, sinks[tid]);
        barrier.Wait();
      });
    }
    run.cycles = cycles.Elapsed();
    run.seconds = wall.ElapsedSeconds();
    run.dispatch_seconds = run.seconds;
  } else {
    run = exec.Run(FromOp(probe.size(), [&](uint32_t tid) {
      return SkipSearchOp<CountChecksumSink>(list, probe, sinks[tid]);
    }));
  }
  CountChecksumSink total;
  for (const auto& sink : sinks) total.Merge(sink);
  run.outputs = total.matches();
  run.checksum = total.checksum();
  return run;
}

RunStats RunSkipListInsert(Executor& exec, SkipList* list,
                           const Relation& input, uint64_t seed) {
  RunStats run;
  run.inputs = input.size();
  const ExecConfig& config = exec.config();
  const uint32_t threads = exec.num_threads();
  run.threads = std::max(1u, threads);
  std::vector<uint64_t> inserted(threads, 0);
  WallTimer wall;
  CycleTimer cycles;
  if (threads <= 1) {
    inserted[0] = RunInsertKernel<false>(*list, input, 0, input.size(),
                                         config.policy, config.params, seed);
  } else {
    SpinBarrier barrier(threads);
    exec.pool().Run([&](uint32_t tid) {
      const Range r = PartitionRange(input.size(), threads, tid);
      barrier.Wait();
      inserted[tid] =
          RunInsertKernel<true>(*list, input, r.begin, r.end, config.policy,
                                config.params, seed + tid);
      barrier.Wait();
    });
  }
  run.cycles = cycles.Elapsed();
  run.seconds = wall.ElapsedSeconds();
  run.dispatch_seconds = run.seconds;
  uint64_t total = 0;
  for (uint64_t v : inserted) total += v;
  // Baseline inserts bump the count inside the list; staged kernels do not.
  if (config.policy != ExecPolicy::kSequential) list->AddElems(total);
  run.outputs = total;
  return run;
}

}  // namespace amac
