// Pugh-style concurrent skip list (paper §4: "we adopt the concurrent pugh
// skip list implementation from ASCYLIB [11]").
//
// Nodes have a geometric tower height (p = 1/2, capped at kMaxLevel) and a
// per-node latch guarding updates to that node's forward pointers.  Inserts
// follow Pugh's lock-validate-advance protocol level by level, bottom-up;
// the list supports concurrent inserts.  Searches are wait-free against a
// quiesced list; search-during-insert linearizability is *not* claimed
// (benchmarks never mix the phases, matching the paper's methodology).
//
// Nodes are variable-size (24-byte header + 8 bytes per level), each padded
// to a 64-byte boundary, bump-allocated from one slab: the "larger memory
// space" §4 mentions versus the other structures.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/aligned.h"
#include "common/latch.h"
#include "common/macros.h"
#include "common/rng.h"
#include "relation/relation.h"

namespace amac {

struct SkipNode {
  int64_t key;
  int64_t payload;
  Latch latch;      ///< guards this node's next[] entries
  uint8_t height;   ///< tower height, 1..kMaxLevel
  uint8_t pad[6] = {};
  SkipNode* next[1];  ///< flexible tail: `height` forward pointers

  static constexpr std::size_t HeaderBytes() { return 24; }
  static std::size_t BytesForHeight(uint32_t h) {
    const std::size_t raw = HeaderBytes() + sizeof(SkipNode*) * h;
    return (raw + kCacheLineSize - 1) / kCacheLineSize * kCacheLineSize;
  }
};

/// Publication store for a splice: later acquire-loads of this pointer see
/// the fully initialized node (its own next[] entries were written first).
inline void StoreNextRelease(SkipNode* pred, uint32_t level, SkipNode* node) {
  std::atomic_ref<SkipNode*>(pred->next[level])
      .store(node, std::memory_order_release);
}

/// Acquire-load used by insert-phase searches that run concurrently with
/// splices.  (Read-only search kernels on a quiesced list use plain loads.)
inline SkipNode* LoadNextAcquire(const SkipNode* n, uint32_t level) {
  return std::atomic_ref<SkipNode*>(const_cast<SkipNode*>(n)->next[level])
      .load(std::memory_order_acquire);
}

class SkipList {
 public:
  static constexpr uint32_t kMaxLevel = 20;

  /// `expected_elems` sizes the node slab (checked at allocation time).
  explicit SkipList(uint64_t expected_elems);

  SkipNode* head() { return head_; }
  const SkipNode* head() const { return head_; }

  /// Geometric tower height: P(h >= k) = 2^-(k-1), capped at kMaxLevel.
  static uint32_t RandomHeight(Rng& rng);

  /// Bump-allocate and initialize a node (thread-safe).
  SkipNode* AllocNode(uint32_t height, int64_t key, int64_t payload);

  /// Reference single-threaded insert. Returns false on duplicate key.
  bool InsertUnsync(int64_t key, int64_t payload, Rng& rng);

  /// Reference concurrent insert (Pugh latched splice, spinning).
  /// Returns false on duplicate key.
  bool InsertSync(int64_t key, int64_t payload, Rng& rng);

  /// Reference search.
  const SkipNode* Find(int64_t key) const;

  /// Level-0 traversal (keys ascend). Not safe during concurrent inserts.
  void ForEach(const std::function<void(const SkipNode&)>& fn) const;

  uint64_t size() const { return num_elems_.load(std::memory_order_relaxed); }

  /// Bump the element count after a successful kernel-level splice
  /// (the staged insert kernels link nodes directly).
  void AddElems(uint64_t n) {
    num_elems_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Order-independent checksum over (key, payload); equal contents =>
  /// equal checksum regardless of tower heights.
  uint64_t Checksum() const;

  struct Stats {
    uint64_t num_elems = 0;
    uint64_t slab_bytes_used = 0;
    double avg_height = 0;
    uint32_t max_height = 0;
  };
  Stats ComputeStats() const;

 private:
  friend class SkipListTestPeer;

  AlignedBuffer<uint8_t> slab_;
  std::atomic<uint64_t> slab_used_{0};
  std::atomic<uint64_t> num_elems_{0};
  SkipNode* head_ = nullptr;
};

/// Fill preds/succs for `key` (search-phase of an insert): preds[l] is the
/// rightmost node at level l with key < `key`; succs[l] = preds[l]->next[l].
void FindPredecessors(SkipList& list, int64_t key,
                      SkipNode* preds[SkipList::kMaxLevel],
                      SkipNode* succs[SkipList::kMaxLevel]);

}  // namespace amac
