// Pugh-style concurrent skip list (paper §4: "we adopt the concurrent pugh
// skip list implementation from ASCYLIB [11]").
//
// Nodes have a geometric tower height (p = 1/2, capped at kMaxLevel) and a
// per-node latch guarding updates to that node's forward pointers.  Inserts
// follow Pugh's lock-validate-advance protocol level by level, bottom-up;
// the list supports concurrent inserts.  Searches are wait-free against a
// quiesced list; search-during-insert linearizability is *not* claimed
// (benchmarks never mix the phases, matching the paper's methodology).
//
// Nodes are variable-size (24-byte header + 8 bytes per level), each padded
// to a 64-byte boundary, bump-allocated from one slab: the "larger memory
// space" §4 mentions versus the other structures.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/aligned.h"
#include "common/latch.h"
#include "common/macros.h"
#include "common/rng.h"
#include "relation/relation.h"

namespace amac {

class EpochGuard;

struct SkipNode {
  int64_t key;
  int64_t payload;
  Latch latch;      ///< guards this node's next[] entries
  uint8_t height;   ///< tower height, 1..kMaxLevel
  /// Erase marker: set (under this node's latch) before the tower is
  /// unlinked, cleared never.  Splices that latched a predecessor must
  /// re-walk when they find it deleted — its next[] entries are dying.
  uint8_t deleted;
  /// Insert-in-progress marker: set at allocation, cleared after the last
  /// level is spliced.  EraseSync waits for it so an unlink covers every
  /// level the insert will touch — otherwise a slow insert could re-link a
  /// removed node through its upper levels ("resurrection").
  uint8_t linking;
  uint8_t pad[4] = {};
  SkipNode* next[1];  ///< flexible tail: `height` forward pointers

  static constexpr std::size_t HeaderBytes() { return 24; }
  static std::size_t BytesForHeight(uint32_t h) {
    const std::size_t raw = HeaderBytes() + sizeof(SkipNode*) * h;
    return (raw + kCacheLineSize - 1) / kCacheLineSize * kCacheLineSize;
  }
};

/// Publication store for a splice: later acquire-loads of this pointer see
/// the fully initialized node (its own next[] entries were written first).
inline void StoreNextRelease(SkipNode* pred, uint32_t level, SkipNode* node) {
  std::atomic_ref<SkipNode*>(pred->next[level])
      .store(node, std::memory_order_release);
}

/// Acquire-load used by insert-phase searches that run concurrently with
/// splices.  (Read-only search kernels on a quiesced list use plain loads.)
inline SkipNode* LoadNextAcquire(const SkipNode* n, uint32_t level) {
  return std::atomic_ref<SkipNode*>(const_cast<SkipNode*>(n)->next[level])
      .load(std::memory_order_acquire);
}

// The erase-phase flags are written under latches but read latch-free
// (predecessor checks, the linking wait), so they go through atomic_ref.
inline bool SkipNodeDeleted(const SkipNode* n) {
  return std::atomic_ref<const uint8_t>(n->deleted)
             .load(std::memory_order_acquire) != 0;
}
inline void SetSkipNodeDeleted(SkipNode* n) {
  std::atomic_ref<uint8_t>(n->deleted).store(1, std::memory_order_release);
}
inline bool SkipNodeLinking(const SkipNode* n) {
  return std::atomic_ref<const uint8_t>(n->linking)
             .load(std::memory_order_acquire) != 0;
}
inline void ClearSkipNodeLinking(SkipNode* n) {
  std::atomic_ref<uint8_t>(n->linking).store(0, std::memory_order_release);
}

class SkipList {
 public:
  static constexpr uint32_t kMaxLevel = 20;

  /// `expected_elems` sizes the node slab (checked at allocation time).
  explicit SkipList(uint64_t expected_elems);

  SkipNode* head() { return head_; }
  const SkipNode* head() const { return head_; }

  /// Geometric tower height: P(h >= k) = 2^-(k-1), capped at kMaxLevel.
  static uint32_t RandomHeight(Rng& rng);

  /// Bump-allocate and initialize a node (thread-safe).
  SkipNode* AllocNode(uint32_t height, int64_t key, int64_t payload);

  /// Reference single-threaded insert. Returns false on duplicate key.
  bool InsertUnsync(int64_t key, int64_t payload, Rng& rng);

  /// Reference concurrent insert (Pugh latched splice, spinning).
  /// Returns false on duplicate key.  Safe against concurrent InsertSync
  /// AND EraseSync: deleted predecessors are re-walked, and an insert that
  /// finds its key mid-erase waits for the unlink and then proceeds (the
  /// erase linearizes first).
  bool InsertSync(int64_t key, int64_t payload, Rng& rng);

  /// Concurrent erase (latched, spinning): mark deleted under the victim's
  /// latch, unlink every level top-down (predecessor latches are only ever
  /// taken for keys strictly below the held victim's key, so the wait-for
  /// graph is acyclic), then epoch-retire the node through `guard` — it
  /// recycles onto the height-bucketed free list after the grace period.
  /// The caller must hold `guard` pinned for the whole call.  Returns
  /// false when the key is absent (or already being erased).
  bool EraseSync(int64_t key, EpochGuard& guard);

  /// Epoch deleter: pushes the node back onto the free list (`ctx` is the
  /// SkipList).  Exposed for tests.
  static void RecycleNode(void* obj, void* ctx);

  uint64_t recycled_nodes() const {
    return recycled_.load(std::memory_order_relaxed);
  }

  /// Reference search.
  const SkipNode* Find(int64_t key) const;

  /// Level-0 traversal (keys ascend). Not safe during concurrent inserts.
  void ForEach(const std::function<void(const SkipNode&)>& fn) const;

  uint64_t size() const { return num_elems_.load(std::memory_order_relaxed); }

  /// Bump the element count after a successful kernel-level splice
  /// (the staged insert kernels link nodes directly).
  void AddElems(uint64_t n) {
    num_elems_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Order-independent checksum over (key, payload); equal contents =>
  /// equal checksum regardless of tower heights.
  uint64_t Checksum() const;

  struct Stats {
    uint64_t num_elems = 0;
    uint64_t slab_bytes_used = 0;
    double avg_height = 0;
    uint32_t max_height = 0;
  };
  Stats ComputeStats() const;

 private:
  friend class SkipListTestPeer;

  AlignedBuffer<uint8_t> slab_;
  std::atomic<uint64_t> slab_used_{0};
  std::atomic<uint64_t> num_elems_{0};
  SkipNode* head_ = nullptr;

  // Height-bucketed free lists fed by epoch reclamation; AllocNode prefers
  // them over fresh slab bytes (a node's tower height is fixed at birth).
  std::mutex free_mu_;
  std::vector<std::vector<SkipNode*>> free_by_height_;  ///< by free_mu_
  std::atomic<uint64_t> free_count_{0};
  std::atomic<uint64_t> recycled_{0};
};

/// Fill preds/succs for `key` (search-phase of an insert): preds[l] is the
/// rightmost node at level l with key < `key`; succs[l] = preds[l]->next[l].
void FindPredecessors(SkipList& list, int64_t key,
                      SkipNode* preds[SkipList::kMaxLevel],
                      SkipNode* succs[SkipList::kMaxLevel]);

/// Latch-free re-walk for one level: the rightmost node at `level` with
/// key < `key`.  Splice/unlink loops fall back to this when a cached
/// predecessor turns out deleted.
SkipNode* FindPredAtLevel(SkipList& list, int64_t key, uint32_t level);

}  // namespace amac
