// Skip list write-path stage machines for the unified runtime: inserts and
// erases against a live, concurrently mutated list run under any ExecPolicy
// (and through the QueryScheduler above it), sharing the epoch scheme the
// concurrent hash table uses.
//
// SkipInsertOp is fully staged: the predecessor search parks per candidate
// node (one memory access per Step, reusing the kernel-grade
// SkipInsertSearchStep) and the splice try-acquires each level's
// predecessor latch, parking/retrying on contention exactly like the AMAC
// insert kernel — no latch is ever held across a park, so interleaving is
// deadlock-free by construction.  SkipEraseOp is a single synchronous Step
// (EraseSync spins internally; erases are the rare op in the serving
// mixes, and a staged top-down unlink would have to hold the victim latch
// across parks, which the deadlock argument forbids).
//
// Epoch discipline matches hashtable/concurrent_ops.h: one EpochGuard per
// op instance, re-pinned only when the op has zero in-flight writes (a
// parked search or splice holds raw SkipNode pointers in its state slot).
// Neither op has a vector interface; the vector policies take the scalar
// fallback, counted in EngineStats::vec_fallbacks.
#pragma once

#include <cstdint>

#include "common/macros.h"
#include "common/prefetch.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/run_stats.h"
#include "epoch/epoch.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_insert.h"

namespace amac {

/// Staged concurrent insert.  Duplicate keys are rejected (skip list
/// insert semantics, not an upsert; the duplicate is not counted in
/// WriteStats).  A key mid-erase is waited out via kRetry: the erase
/// linearizes first, then this insert proceeds.
class SkipInsertOp {
 public:
  struct State {
    InsertSearch search;  // ~0.5 KB: cursor + pred/succ vectors (§5.4)
    SkipNode* node;
    SkipNode* pred;
    uint32_t height;
    uint32_t splice_level;
    int64_t key;
    int64_t payload;
    bool splicing;
  };

  SkipInsertOp(SkipList& list, EpochManager* epochs, const int64_t* keys,
               const int64_t* payloads, uint64_t seed)
      : list_(&list),
        keys_(keys),
        payloads_(payloads),
        rng_(seed),
        guard_(epochs) {}

  void Start(State& st, uint64_t idx) {
    if (inflight_ == 0) guard_.Refresh();
    ++inflight_;
    st.key = keys_[idx];
    st.payload = payloads_[idx];
    st.splicing = false;
    InitInsertSearch(*list_, st.search);
  }

  StepStatus Step(State& st) {
    if (!st.splicing) {
      const InsertStep r = SkipInsertSearchStep(st.search, st.key);
      if (r == InsertStep::kParked) return StepStatus::kParked;
      if (r == InsertStep::kDup) {
        --inflight_;
        return StepStatus::kDone;
      }
      st.height = SkipList::RandomHeight(rng_);
      st.node = list_->AllocNode(st.height, st.key, st.payload);
      st.splice_level = 0;
      st.pred = st.search.preds[0];
      st.splicing = true;
    }
    // Splice as many levels as latches allow (bottom-up), parking or
    // retrying instead of spinning — mirrors SkipInsertAmac's kSplice.
    while (st.splice_level < st.height) {
      const uint32_t l = st.splice_level;
      SkipNode* pred = st.pred;
      if (!pred->latch.TryAcquire()) return StepStatus::kRetry;
      if (SkipNodeDeleted(pred)) {
        // Dying predecessor: re-walk this level, retry when we come round.
        pred->latch.Release();
        st.pred = FindPredAtLevel(*list_, st.key, l);
        return StepStatus::kRetry;
      }
      SkipNode* succ = LoadNextAcquire(pred, l);
      if (succ != nullptr && succ->key < st.key) {
        // A concurrent insert advanced this level; chase asynchronously.
        pred->latch.Release();
        st.pred = succ;
        PrefetchSkipNode(succ, static_cast<int32_t>(l));
        return StepStatus::kParked;
      }
      if (l == 0 && succ != nullptr && succ->key == st.key) {
        if (SkipNodeDeleted(succ)) {
          // Mid-erase duplicate: wait out the unlink via retry.
          pred->latch.Release();
          return StepStatus::kRetry;
        }
        pred->latch.Release();
        --inflight_;  // lost the race; abandon the allocated node
        return StepStatus::kDone;
      }
      st.node->next[l] = succ;
      StoreNextRelease(pred, l, st.node);
      pred->latch.Release();
      ++st.splice_level;
      if (st.splice_level < st.height) {
        st.pred = st.search.preds[st.splice_level];
      }
    }
    ClearSkipNodeLinking(st.node);
    list_->AddElems(1);
    ++writes_.inserts;
    --inflight_;
    return StepStatus::kDone;
  }

  const WriteStats& writes() const { return writes_; }

 private:
  SkipList* list_;
  const int64_t* keys_;
  const int64_t* payloads_;
  Rng rng_;
  EpochGuard guard_;
  WriteStats writes_;
  uint64_t inflight_ = 0;
};

/// Concurrent erase as a single synchronous Step (EraseSync spins
/// internally).  A missing key is a no-op (not counted).
class SkipEraseOp {
 public:
  struct State {
    int64_t key;
  };

  SkipEraseOp(SkipList& list, EpochManager* epochs, const int64_t* keys)
      : list_(&list), keys_(keys), guard_(epochs) {}

  void Start(State& st, uint64_t idx) {
    if (inflight_ == 0) guard_.Refresh();
    ++inflight_;
    st.key = keys_[idx];
    Prefetch(list_->head());
  }

  StepStatus Step(State& st) {
    if (list_->EraseSync(st.key, guard_)) ++writes_.erases;
    --inflight_;
    return StepStatus::kDone;
  }

  const WriteStats& writes() const { return writes_; }

 private:
  SkipList* list_;
  const int64_t* keys_;
  EpochGuard guard_;
  WriteStats writes_;
  uint64_t inflight_ = 0;
};

}  // namespace amac
