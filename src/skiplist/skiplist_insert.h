// Skip list insert kernels: Baseline, GP, SPP, AMAC (paper Table 1 col 5).
//
// An insert is a predecessor search (memory-bound, one stage per candidate
// node) followed by the splice (CPU-bound: random level generation, node
// allocation, latch acquire/release loops — §5.4 calls out exactly these
// function calls).  The AMAC variant keeps the predecessor/successor
// vectors inside the per-lookup state slot: ~0.5 KB per in-flight lookup,
// matching §5.4's description of the circular-buffer footprint.
//
// Latch discipline mirrors §3.2: Baseline/GP/SPP spin per level;
// AMAC try-acquires and parks the insert on failure.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/prefetch.h"
#include "common/rng.h"
#include "relation/relation.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_search.h"

namespace amac {

namespace detail {

template <bool kSync>
inline bool SkipTryLatch(SkipNode* n) {
  if constexpr (kSync) {
    return n->latch.TryAcquire();
  } else {
    return n->latch.TryAcquireUnsync();
  }
}

template <bool kSync>
inline void SkipUnlatch(SkipNode* n) {
  if constexpr (kSync) {
    n->latch.Release();
  } else {
    n->latch.ReleaseUnsync();
  }
}

}  // namespace detail

/// Search-phase state of one insert: the cursor plus the collected
/// predecessor/successor vectors (the 0.5 KB the paper attributes to each
/// in-flight skip list insert).
struct InsertSearch {
  SkipNode* cur;
  int32_t level;
  SkipNode* preds[SkipList::kMaxLevel];
  SkipNode* succs[SkipList::kMaxLevel];
};

inline void InitInsertSearch(SkipList& list, InsertSearch& s) {
  s.cur = list.head();
  s.level = static_cast<int32_t>(SkipList::kMaxLevel) - 1;
}

enum class InsertStep {
  kParked,  ///< issued a prefetch; resume later
  kDup,     ///< key already present
  kReady,   ///< preds/succs complete; splice may begin
};

/// One memory access worth of predecessor search.
inline InsertStep SkipInsertSearchStep(InsertSearch& s, int64_t key) {
  // Acquire-loads throughout: this search runs concurrently with other
  // threads' splices in the multi-threaded insert workload.
  while (true) {
    SkipNode* cand = LoadNextAcquire(s.cur, s.level);
    if (cand != nullptr && cand->key < key) {
      s.cur = cand;
      SkipNode* nxt = LoadNextAcquire(cand, s.level);
      if (nxt != nullptr) {
        PrefetchSkipNode(nxt, s.level);
        return InsertStep::kParked;
      }
      continue;
    }
    if (cand != nullptr && cand->key == key && !SkipNodeDeleted(cand)) {
      return InsertStep::kDup;
    }
    // A deleted equal-key candidate is mid-unlink: record preds/succs as
    // usual and let the splice's level-0 re-validation wait it out.
    s.preds[s.level] = s.cur;
    s.succs[s.level] = cand;
    if (s.level == 0) return InsertStep::kReady;
    --s.level;
    SkipNode* nxt = LoadNextAcquire(s.cur, s.level);
    if (nxt != nullptr && nxt != cand) {
      PrefetchSkipNode(nxt, s.level);
      return InsertStep::kParked;
    }
  }
}

/// Synchronous splice with Pugh's lock-validate-advance per level
/// (bottom-up).  Used by Baseline/GP/SPP and by tests. Returns false if a
/// concurrent duplicate won at level 0.
template <bool kSync>
bool SpliceSpin(SkipList& list, InsertSearch& s, uint32_t height,
                int64_t key, int64_t payload) {
  SkipNode* node = list.AllocNode(height, key, payload);
  for (uint32_t l = 0; l < height; ++l) {
    SkipNode* pred = s.preds[l];
    while (true) {
      if constexpr (kSync) {
        pred->latch.Acquire();
      } else {
        (void)detail::SkipTryLatch<false>(pred);
      }
      if (SkipNodeDeleted(pred)) {
        // Dying predecessor (its next[] is being unlinked): re-walk.
        detail::SkipUnlatch<kSync>(pred);
        pred = FindPredAtLevel(list, key, l);
        continue;
      }
      SkipNode* succ = LoadNextAcquire(pred, l);
      if (succ != nullptr && succ->key < key) {
        detail::SkipUnlatch<kSync>(pred);
        pred = succ;
        continue;
      }
      if (l == 0 && succ != nullptr && succ->key == key) {
        if (SkipNodeDeleted(succ)) {
          // Mid-erase duplicate: wait for the unlink, then splice here
          // (the erase linearizes before this insert).
          detail::SkipUnlatch<kSync>(pred);
          Latch::CpuRelax();
          continue;
        }
        detail::SkipUnlatch<kSync>(pred);
        return false;
      }
      node->next[l] = succ;
      StoreNextRelease(pred, l, node);
      detail::SkipUnlatch<kSync>(pred);
      break;
    }
  }
  ClearSkipNodeLinking(node);
  return true;
}

template <bool kSync>
uint64_t SkipInsertBaseline(SkipList& list, const Relation& input,
                            uint64_t begin, uint64_t end, uint64_t seed) {
  Rng rng(seed);
  uint64_t inserted = 0;
  for (uint64_t i = begin; i < end; ++i) {
    const bool ok = kSync ? list.InsertSync(input[i].key, input[i].payload, rng)
                          : list.InsertUnsync(input[i].key, input[i].payload,
                                              rng);
    inserted += ok ? 1 : 0;
  }
  return inserted;
}

template <bool kSync>
uint64_t SkipInsertGroupPrefetch(SkipList& list, const Relation& input,
                                 uint64_t begin, uint64_t end,
                                 uint32_t group_size, uint32_t num_stages,
                                 uint64_t seed) {
  AMAC_CHECK(group_size >= 1 && num_stages >= 1);
  Rng rng(seed);
  uint64_t inserted = 0;
  struct GpState {
    InsertSearch search;
    int64_t key;
    int64_t payload;
    uint8_t status;  // 0 = searching, 1 = ready, 2 = dup
  };
  std::vector<GpState> g(group_size);
  for (uint64_t base = begin; base < end; base += group_size) {
    const uint32_t n_in_group =
        static_cast<uint32_t>(std::min<uint64_t>(group_size, end - base));
    for (uint32_t j = 0; j < n_in_group; ++j) {
      g[j].key = input[base + j].key;
      g[j].payload = input[base + j].payload;
      g[j].status = 0;
      InitInsertSearch(list, g[j].search);
    }
    for (uint32_t stage = 0; stage < num_stages; ++stage) {
      for (uint32_t j = 0; j < n_in_group; ++j) {
        if (g[j].status != 0) continue;
        const InsertStep r = SkipInsertSearchStep(g[j].search, g[j].key);
        if (r == InsertStep::kReady) g[j].status = 1;
        if (r == InsertStep::kDup) g[j].status = 2;
      }
    }
    for (uint32_t j = 0; j < n_in_group; ++j) {
      while (g[j].status == 0) {  // search bailout
        const InsertStep r = SkipInsertSearchStep(g[j].search, g[j].key);
        if (r == InsertStep::kReady) g[j].status = 1;
        if (r == InsertStep::kDup) g[j].status = 2;
      }
      if (g[j].status == 1) {
        const uint32_t h = SkipList::RandomHeight(rng);
        if (SpliceSpin<kSync>(list, g[j].search, h, g[j].key, g[j].payload)) {
          ++inserted;
        }
      }
    }
  }
  return inserted;
}

template <bool kSync>
uint64_t SkipInsertSoftwarePipelined(SkipList& list, const Relation& input,
                                     uint64_t begin, uint64_t end,
                                     uint32_t num_stages, uint32_t distance,
                                     uint64_t seed) {
  AMAC_CHECK(num_stages >= 1 && distance >= 1);
  Rng rng(seed);
  uint64_t inserted = 0;
  const uint64_t n = end - begin;
  const uint64_t window = static_cast<uint64_t>(num_stages) * distance;
  struct SppState {
    InsertSearch search;
    int64_t key;
    int64_t payload;
    bool active;
  };
  std::vector<SppState> pipe(window);
  auto finish = [&](SppState& st) {  // splice once the search is ready
    const uint32_t h = SkipList::RandomHeight(rng);
    if (SpliceSpin<kSync>(list, st.search, h, st.key, st.payload)) {
      ++inserted;
    }
    st.active = false;
  };
  for (uint64_t i = 0; i < n + window; ++i) {
    for (uint32_t s = num_stages; s >= 1; --s) {
      const uint64_t delay = static_cast<uint64_t>(s) * distance;
      if (i < delay) continue;
      const uint64_t t = i - delay;
      if (t >= n) continue;
      SppState& st = pipe[t % window];
      if (!st.active) continue;
      InsertStep r = SkipInsertSearchStep(st.search, st.key);
      if (r == InsertStep::kParked && s == num_stages) {
        // Bailout: the pipeline slot expires this iteration.
        while (r == InsertStep::kParked) {
          r = SkipInsertSearchStep(st.search, st.key);
        }
      }
      if (r == InsertStep::kReady) {
        finish(st);
      } else if (r == InsertStep::kDup) {
        st.active = false;
      }
    }
    if (i < n) {
      SppState& st = pipe[i % window];
      st.key = input[begin + i].key;
      st.payload = input[begin + i].payload;
      st.active = true;
      InitInsertSearch(list, st.search);
    }
  }
  return inserted;
}

/// AMAC insert: fully asynchronous search *and* splice.  The splice
/// try-acquires each level's predecessor latch; failure parks the insert in
/// its slot with no spinning.  No latch is ever held across a park, so the
/// scheme is deadlock-free by construction.
template <bool kSync>
uint64_t SkipInsertAmac(SkipList& list, const Relation& input, uint64_t begin,
                        uint64_t end, uint32_t num_inflight, uint64_t seed) {
  AMAC_CHECK(num_inflight >= 1);
  Rng rng(seed);
  uint64_t inserted = 0;
  enum : uint8_t { kIdle = 0, kSearch = 1, kSplice = 2 };
  struct AmacState {
    InsertSearch search;  // ~0.5 KB: cursor + pred/succ vectors
    SkipNode* node;
    SkipNode* pred;
    uint32_t height;
    uint32_t splice_level;
    int64_t key;
    int64_t payload;
    uint8_t stage;
  };
  std::vector<AmacState> s(num_inflight);

  uint64_t next_input = begin;
  uint32_t num_active = 0;

  auto start = [&](AmacState& st) {
    if (next_input >= end) {
      st.stage = kIdle;
      return false;
    }
    st.key = input[next_input].key;
    st.payload = input[next_input].payload;
    st.stage = kSearch;
    InitInsertSearch(list, st.search);
    ++next_input;
    return true;
  };

  for (uint32_t k = 0; k < num_inflight; ++k) {
    if (start(s[k])) ++num_active;
  }

  uint32_t k = 0;
  while (num_active > 0) {
    AmacState& st = s[k];
    switch (st.stage) {
      case kIdle:
        break;
      case kSearch: {
        const InsertStep r = SkipInsertSearchStep(st.search, st.key);
        if (r == InsertStep::kParked) break;
        if (r == InsertStep::kDup) {
          if (!start(st)) --num_active;
          break;
        }
        // Table 1 stage 2: "Generate rand. lvl / Get new node".
        st.height = SkipList::RandomHeight(rng);
        st.node = list.AllocNode(st.height, st.key, st.payload);
        st.splice_level = 0;
        st.pred = st.search.preds[0];
        st.stage = kSplice;
        [[fallthrough]];
      }
      case kSplice: {
        // Splice as many levels as latches allow; park on a busy latch or
        // an uncached advanced predecessor.
        bool parked = false;
        bool dup = false;
        while (st.splice_level < st.height) {
          const uint32_t l = st.splice_level;
          SkipNode* pred = st.pred;
          if (!detail::SkipTryLatch<kSync>(pred)) {
            parked = true;  // §3.2: move on, retry when the slot comes round
            break;
          }
          if (SkipNodeDeleted(pred)) {
            // Dying predecessor: re-walk this level, then park (the
            // re-walk already paid the memory stalls; stay asynchronous).
            detail::SkipUnlatch<kSync>(pred);
            st.pred = FindPredAtLevel(list, st.key, l);
            parked = true;
            break;
          }
          SkipNode* succ = LoadNextAcquire(pred, l);
          if (succ != nullptr && succ->key < st.key) {
            // A concurrent insert advanced this level; chase the new
            // predecessor asynchronously.
            detail::SkipUnlatch<kSync>(pred);
            st.pred = succ;
            PrefetchSkipNode(succ, static_cast<int32_t>(l));
            parked = true;
            break;
          }
          if (l == 0 && succ != nullptr && succ->key == st.key) {
            if (SkipNodeDeleted(succ)) {
              // Mid-erase duplicate: park and retry this level later; the
              // unlink will finish and this insert then proceeds.
              detail::SkipUnlatch<kSync>(pred);
              parked = true;
              break;
            }
            detail::SkipUnlatch<kSync>(pred);
            dup = true;  // lost the race; abandon the allocated node
            break;
          }
          st.node->next[l] = succ;
          StoreNextRelease(pred, l, st.node);
          detail::SkipUnlatch<kSync>(pred);
          ++st.splice_level;
          if (st.splice_level < st.height) {
            st.pred = st.search.preds[st.splice_level];
          }
        }
        if (parked) break;
        if (!dup) {
          ClearSkipNodeLinking(st.node);
          ++inserted;
        }
        if (!start(st)) --num_active;
        break;
      }
    }
    ++k;
    if (k == num_inflight) k = 0;
  }
  return inserted;
}

}  // namespace amac
