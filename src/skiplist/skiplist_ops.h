// Skip list operation drivers: dispatch search/insert over the unified
// runtime's execution policies with timing, single- or multi-threaded.
#pragma once

#include <cstdint>

#include "core/engine.h"
#include "core/scheduler.h"
#include "relation/relation.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_search.h"

namespace amac {

struct SkipListConfig {
  ExecPolicy policy = ExecPolicy::kAmac;
  uint32_t inflight = 10;  ///< M (AMAC slots / GP group / SPP window)
  uint32_t stages = 8;     ///< N for GP/SPP (search steps before bailout)
  uint32_t num_threads = 1;
  uint64_t seed = 7;
};

struct SkipListStats {
  uint64_t tuples = 0;
  uint64_t matches = 0;   ///< search: emitted matches; insert: new elements
  uint64_t checksum = 0;  ///< search only
  uint64_t cycles = 0;
  double seconds = 0;

  double CyclesPerTuple() const {
    return tuples ? static_cast<double>(cycles) / static_cast<double>(tuples)
                  : 0;
  }
};

/// Probe `list` with every key of `probe`.
SkipListStats RunSkipListSearch(const SkipList& list, const Relation& probe,
                                const SkipListConfig& config);

/// Insert every tuple of `input` into `list` (which is typically empty:
/// the paper's insert workload "builds a skip list from scratch").
SkipListStats RunSkipListInsert(SkipList* list, const Relation& input,
                                const SkipListConfig& config);

/// Skip list search as a generic-engine operation: one Step() is one
/// candidate-node visit (SkipSearchStep), so every ExecPolicy in
/// core/scheduler.h — and the morsel-driven parallel driver — can run
/// searches without skiplist-specific scheduling code.
template <typename Sink>
class SkipSearchOp {
 public:
  struct State {
    SkipCursor cursor;
    int64_t key;
    uint64_t rid;
  };

  SkipSearchOp(const SkipList& list, const Relation& probe, Sink& sink)
      : list_(list), probe_(probe), sink_(sink) {}

  void Start(State& st, uint64_t idx) {
    st.cursor = SkipStartCursor(list_);
    st.key = probe_[idx].key;
    st.rid = idx;
  }

  StepStatus Step(State& st) {
    return SkipSearchStep(st.cursor, st.key, st.rid, sink_)
               ? StepStatus::kDone
               : StepStatus::kParked;
  }

 private:
  const SkipList& list_;
  const Relation& probe_;
  Sink& sink_;
};

}  // namespace amac
