// Skip list operation drivers: dispatch search/insert over the unified
// runtime's execution policies with timing, single- or multi-threaded.
#pragma once

#include <cstdint>

#include "core/engine.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "relation/relation.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_search.h"

namespace amac {

/// Probe `list` with every key of `probe` under the executor's policy
/// (generic SkipSearchOp through the unified runtime; morsel-driven when
/// the executor is multi-threaded).  The returned RunStats carry
/// inputs = |probe|, outputs = matches, and the match checksum.
RunStats RunSkipListSearch(Executor& exec, const SkipList& list,
                           const Relation& probe);

/// Insert every tuple of `input` into `list` (which is typically empty:
/// the paper's insert workload "builds a skip list from scratch") under
/// the executor's policy.  Inserts carry large per-lookup splice state, so
/// they run the hand-written kernels on the executor's thread team.  The
/// returned RunStats carry inputs = |input| and outputs = new elements.
RunStats RunSkipListInsert(Executor& exec, SkipList* list,
                           const Relation& input, uint64_t seed = 7);

/// Skip list search as a generic-engine operation: one Step() is one
/// candidate-node visit (SkipSearchStep), so every ExecPolicy in
/// core/scheduler.h — and the morsel-driven parallel driver — can run
/// searches without skiplist-specific scheduling code.
template <typename Sink>
class SkipSearchOp {
 public:
  struct State {
    SkipCursor cursor;
    int64_t key;
    uint64_t rid;
  };

  SkipSearchOp(const SkipList& list, const Relation& probe, Sink& sink)
      : list_(list), probe_(probe), sink_(sink) {}

  void Start(State& st, uint64_t idx) {
    st.cursor = SkipStartCursor(list_);
    st.key = probe_[idx].key;
    st.rid = idx;
  }

  StepStatus Step(State& st) {
    return SkipSearchStep(st.cursor, st.key, st.rid, sink_)
               ? StepStatus::kDone
               : StepStatus::kParked;
  }

 private:
  const SkipList& list_;
  const Relation& probe_;
  Sink& sink_;
};

/// Pipeline stage (core/pipeline.h): skip list point lookup on the input
/// row's key; a hit emits Tuple{input key, node payload}.
class SkipLookupStage {
 public:
  struct State {
    SkipCursor cursor;
    int64_t key;
  };

  explicit SkipLookupStage(const SkipList& list) : list_(&list) {}

  void Start(State& st, const Tuple& in) {
    st.key = in.key;
    st.cursor = SkipStartCursor(*list_);
  }

  template <typename EmitFn>
  StepStatus Step(State& st, EmitFn&& emit) {
    detail::KeyedEmitSink<EmitFn> sink{emit, st.key};
    return SkipSearchStep(st.cursor, st.key, 0, sink) ? StepStatus::kDone
                                                      : StepStatus::kParked;
  }

 private:
  const SkipList* list_;
};

inline SkipLookupStage LookupSkipList(const SkipList& list) {
  return SkipLookupStage(list);
}

}  // namespace amac
