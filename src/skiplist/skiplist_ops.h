// Skip list operation drivers: dispatch search/insert over the unified
// runtime's execution policies with timing, single- or multi-threaded.
#pragma once

#include <cstdint>

#include "core/engine.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "relation/relation.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_search.h"

namespace amac {

/// Deprecated: all-in-one configuration for the legacy free functions.
/// Migrate to Executor(ExecConfig).
struct SkipListConfig {
  ExecPolicy policy = ExecPolicy::kAmac;
  uint32_t inflight = 10;  ///< M (AMAC slots / GP group / SPP window)
  uint32_t stages = 8;     ///< N for GP/SPP (search steps before bailout)
  uint32_t num_threads = 1;
  uint64_t seed = 7;

  /// The execution half of this config, for constructing an Executor.
  ExecConfig Exec() const {
    return ExecConfig{policy, SchedulerParams{inflight, stages, 0},
                      num_threads, 0};
  }
};

struct SkipListStats {
  uint64_t tuples = 0;
  uint64_t matches = 0;   ///< search: emitted matches; insert: new elements
  uint64_t checksum = 0;  ///< search only
  uint64_t cycles = 0;
  double seconds = 0;

  double CyclesPerTuple() const {
    return tuples ? static_cast<double>(cycles) / static_cast<double>(tuples)
                  : 0;
  }
};

/// Probe `list` with every key of `probe` under the executor's policy
/// (generic SkipSearchOp through the unified runtime; morsel-driven when
/// the executor is multi-threaded).
SkipListStats RunSkipListSearch(Executor& exec, const SkipList& list,
                                const Relation& probe);

/// Insert every tuple of `input` into `list` (which is typically empty:
/// the paper's insert workload "builds a skip list from scratch") under
/// the executor's policy.  Inserts carry large per-lookup splice state, so
/// they run the hand-written kernels on the executor's thread team.
SkipListStats RunSkipListInsert(Executor& exec, SkipList* list,
                                const Relation& input, uint64_t seed = 7);

/// Deprecated shims (one-PR migration window): forward to the Executor
/// forms through a transient per-call Executor.
SkipListStats RunSkipListSearch(const SkipList& list, const Relation& probe,
                                const SkipListConfig& config);
SkipListStats RunSkipListInsert(SkipList* list, const Relation& input,
                                const SkipListConfig& config);

/// Skip list search as a generic-engine operation: one Step() is one
/// candidate-node visit (SkipSearchStep), so every ExecPolicy in
/// core/scheduler.h — and the morsel-driven parallel driver — can run
/// searches without skiplist-specific scheduling code.
template <typename Sink>
class SkipSearchOp {
 public:
  struct State {
    SkipCursor cursor;
    int64_t key;
    uint64_t rid;
  };

  SkipSearchOp(const SkipList& list, const Relation& probe, Sink& sink)
      : list_(list), probe_(probe), sink_(sink) {}

  void Start(State& st, uint64_t idx) {
    st.cursor = SkipStartCursor(list_);
    st.key = probe_[idx].key;
    st.rid = idx;
  }

  StepStatus Step(State& st) {
    return SkipSearchStep(st.cursor, st.key, st.rid, sink_)
               ? StepStatus::kDone
               : StepStatus::kParked;
  }

 private:
  const SkipList& list_;
  const Relation& probe_;
  Sink& sink_;
};

/// Pipeline stage (core/pipeline.h): skip list point lookup on the input
/// row's key; a hit emits Tuple{input key, node payload}.
class SkipLookupStage {
 public:
  struct State {
    SkipCursor cursor;
    int64_t key;
  };

  explicit SkipLookupStage(const SkipList& list) : list_(&list) {}

  void Start(State& st, const Tuple& in) {
    st.key = in.key;
    st.cursor = SkipStartCursor(*list_);
  }

  template <typename EmitFn>
  StepStatus Step(State& st, EmitFn&& emit) {
    detail::KeyedEmitSink<EmitFn> sink{emit, st.key};
    return SkipSearchStep(st.cursor, st.key, 0, sink) ? StepStatus::kDone
                                                      : StepStatus::kParked;
  }

 private:
  const SkipList* list_;
};

inline SkipLookupStage LookupSkipList(const SkipList& list) {
  return SkipLookupStage(list);
}

}  // namespace amac
