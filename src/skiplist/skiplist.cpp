#include "skiplist/skiplist.h"

#include <limits>

#include "common/hash.h"
#include "epoch/epoch.h"

namespace amac {

SkipList::SkipList(uint64_t expected_elems) {
  AMAC_CHECK(expected_elems > 0);
  // Expected node footprint at p = 1/2 is ~66 bytes (64-byte aligned,
  // geometric tower); 96 bytes/element leaves ample slack, and allocation
  // is checked so exhaustion is loud, never silent corruption.
  const uint64_t slab_bytes =
      expected_elems * 96 + (kMaxLevel + 2) * kCacheLineSize + (1 << 16);
  slab_ = AlignedBuffer<uint8_t>(slab_bytes);
  free_by_height_.resize(kMaxLevel + 1);
  head_ = AllocNode(kMaxLevel, std::numeric_limits<int64_t>::min(), 0);
  ClearSkipNodeLinking(head_);  // the head is never "being inserted"
  num_elems_.store(0, std::memory_order_relaxed);  // head is not an element
}

uint32_t SkipList::RandomHeight(Rng& rng) {
  uint32_t h = 1;
  while (h < kMaxLevel && rng.NextBool()) ++h;
  return h;
}

SkipNode* SkipList::AllocNode(uint32_t height, int64_t key, int64_t payload) {
  AMAC_CHECK(height >= 1 && height <= kMaxLevel);
  SkipNode* node = nullptr;
  if (free_count_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(free_mu_);
    auto& bin = free_by_height_[height];
    if (!bin.empty()) {
      node = bin.back();
      bin.pop_back();
      free_count_.fetch_sub(1, std::memory_order_relaxed);
      recycled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (node == nullptr) {
    const std::size_t bytes = SkipNode::BytesForHeight(height);
    const uint64_t offset =
        slab_used_.fetch_add(bytes, std::memory_order_relaxed);
    AMAC_CHECK_MSG(offset + bytes <= slab_.size(),
                   "skip list slab exhausted");
    node = reinterpret_cast<SkipNode*>(slab_.data() + offset);
  }
  // The slab is raw bytes and recycled nodes carry stale contents: every
  // header field is initialized explicitly, `deleted`/`linking` included.
  // `linking` starts SET — EraseSync must not unlink a node whose upper
  // levels are still being spliced — and every insert path clears it after
  // its last level links.
  node->key = key;
  node->payload = payload;
  new (&node->latch) Latch();
  node->height = static_cast<uint8_t>(height);
  node->deleted = 0;
  node->linking = 1;
  for (uint32_t l = 0; l < height; ++l) node->next[l] = nullptr;
  return node;
}

void SkipList::RecycleNode(void* obj, void* ctx) {
  auto* list = static_cast<SkipList*>(ctx);
  auto* node = static_cast<SkipNode*>(obj);
  std::lock_guard<std::mutex> lock(list->free_mu_);
  list->free_by_height_[node->height].push_back(node);
  list->free_count_.fetch_add(1, std::memory_order_relaxed);
}

void FindPredecessors(SkipList& list, int64_t key,
                      SkipNode* preds[SkipList::kMaxLevel],
                      SkipNode* succs[SkipList::kMaxLevel]) {
  SkipNode* cur = list.head();
  for (int32_t level = SkipList::kMaxLevel - 1; level >= 0; --level) {
    SkipNode* cand = LoadNextAcquire(cur, level);
    while (cand != nullptr && cand->key < key) {
      cur = cand;
      cand = LoadNextAcquire(cur, level);
    }
    preds[level] = cur;
    succs[level] = cand;
  }
}

bool SkipList::InsertUnsync(int64_t key, int64_t payload, Rng& rng) {
  SkipNode* preds[kMaxLevel];
  SkipNode* succs[kMaxLevel];
  FindPredecessors(*this, key, preds, succs);
  if (succs[0] != nullptr && succs[0]->key == key) return false;
  const uint32_t height = RandomHeight(rng);
  SkipNode* node = AllocNode(height, key, payload);
  for (uint32_t l = 0; l < height; ++l) {
    node->next[l] = succs[l];
    preds[l]->next[l] = node;
  }
  node->linking = 0;
  num_elems_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SkipList::InsertSync(int64_t key, int64_t payload, Rng& rng) {
  SkipNode* preds[kMaxLevel];
  SkipNode* succs[kMaxLevel];
  for (;;) {
    FindPredecessors(*this, key, preds, succs);
    if (succs[0] != nullptr && succs[0]->key == key) {
      if (!SkipNodeDeleted(succs[0])) return false;
      // The incumbent is mid-erase: wait for its unlink, then this insert
      // proceeds (the erase linearizes first).
      Latch::CpuRelax();
      continue;
    }
    break;
  }
  const uint32_t height = RandomHeight(rng);
  SkipNode* node = AllocNode(height, key, payload);
  // Pugh splice, bottom-up.  For each level: lock the candidate
  // predecessor, re-validate under the lock (concurrent inserts may have
  // linked new nodes; concurrent erases may have removed the predecessor),
  // advancing or re-walking as needed.
  for (uint32_t l = 0; l < height; ++l) {
    SkipNode* pred = preds[l];
    while (true) {
      pred->latch.Acquire();
      if (pred != head_ && SkipNodeDeleted(pred)) {
        pred->latch.Release();  // dying node: its next[] is being unlinked
        pred = FindPredAtLevel(*this, key, l);
        continue;
      }
      SkipNode* succ = LoadNextAcquire(pred, l);
      if (succ != nullptr && succ->key < key) {
        pred->latch.Release();  // stale: advance and retry the lock
        pred = succ;
        continue;
      }
      if (l == 0 && succ != nullptr && succ->key == key) {
        if (SkipNodeDeleted(succ)) {
          // Mid-erase duplicate: let the unlink finish, then splice here.
          pred->latch.Release();
          Latch::CpuRelax();
          continue;
        }
        // Concurrent duplicate won the race; abandon (node stays unlinked).
        pred->latch.Release();
        return false;
      }
      node->next[l] = succ;
      StoreNextRelease(pred, l, node);
      pred->latch.Release();
      break;
    }
  }
  ClearSkipNodeLinking(node);
  num_elems_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

SkipNode* FindPredAtLevel(SkipList& list, int64_t key, uint32_t level) {
  SkipNode* cur = list.head();
  for (int32_t l = SkipList::kMaxLevel - 1;
       l >= static_cast<int32_t>(level); --l) {
    SkipNode* cand = LoadNextAcquire(cur, static_cast<uint32_t>(l));
    while (cand != nullptr && cand->key < key) {
      cur = cand;
      cand = LoadNextAcquire(cur, static_cast<uint32_t>(l));
    }
  }
  return cur;
}

bool SkipList::EraseSync(int64_t key, EpochGuard& guard) {
  SkipNode* preds[kMaxLevel];
  SkipNode* succs[kMaxLevel];
  FindPredecessors(*this, key, preds, succs);
  SkipNode* victim = succs[0];
  if (victim == nullptr || victim->key != key) return false;
  // Resurrection guard: wait until the inserter has spliced every level of
  // the victim's tower, so the unlink below covers all of them.  No latch
  // is held while spinning, and the inserter never waits on this thread,
  // so the wait is deadlock-free.
  while (SkipNodeLinking(victim)) Latch::CpuRelax();
  victim->latch.Acquire();
  if (SkipNodeDeleted(victim)) {
    // Another eraser won; it holds (or held) the victim latch through its
    // whole unlink, so by the time we got the latch the erase completed —
    // this "absent" answer linearizes after it.
    victim->latch.Release();
    return false;
  }
  SetSkipNodeDeleted(victim);
  // Unlink top-down while holding the victim latch.  Deadlock-freedom by
  // key order: every predecessor latch taken here belongs to a node with
  // key strictly below the held victim's key (or the head at -inf), and
  // inserts hold at most one latch at a time, so the wait-for graph over
  // latches is acyclic.
  const uint32_t height = victim->height;
  for (int32_t l = static_cast<int32_t>(height) - 1; l >= 0; --l) {
    const uint32_t level = static_cast<uint32_t>(l);
    SkipNode* pred = preds[level];
    for (;;) {
      pred->latch.Acquire();
      if (pred != head_ && SkipNodeDeleted(pred)) {
        pred->latch.Release();
        pred = FindPredAtLevel(*this, key, level);
        continue;
      }
      SkipNode* succ = LoadNextAcquire(pred, level);
      if (succ == victim) {
        StoreNextRelease(pred, level, LoadNextAcquire(victim, level));
        pred->latch.Release();
        break;
      }
      pred->latch.Release();
      if (succ != nullptr && succ->key < key) {
        pred = succ;  // concurrent inserts advanced this level
      } else {
        // Overshoot (our cached predecessor was re-walked past the
        // victim, or was itself unlinked): retry from a fresh walk.
        pred = FindPredAtLevel(*this, key, level);
      }
    }
  }
  victim->latch.Release();
  num_elems_.fetch_sub(1, std::memory_order_relaxed);
  guard.Retire(victim, &SkipList::RecycleNode, this);
  return true;
}

const SkipNode* SkipList::Find(int64_t key) const {
  const SkipNode* cur = head_;
  for (int32_t level = kMaxLevel - 1; level >= 0; --level) {
    const SkipNode* cand = cur->next[level];
    while (cand != nullptr && cand->key < key) {
      cur = cand;
      cand = cur->next[level];
    }
    if (cand != nullptr && cand->key == key) return cand;
  }
  return nullptr;
}

void SkipList::ForEach(
    const std::function<void(const SkipNode&)>& fn) const {
  for (const SkipNode* n = head_->next[0]; n != nullptr; n = n->next[0]) {
    fn(*n);
  }
}

uint64_t SkipList::Checksum() const {
  uint64_t sum = 0;
  ForEach([&](const SkipNode& n) {
    sum += Mix64(static_cast<uint64_t>(n.key) * 0x9e3779b97f4a7c15ull +
                 static_cast<uint64_t>(n.payload));
  });
  return sum;
}

SkipList::Stats SkipList::ComputeStats() const {
  Stats stats;
  stats.slab_bytes_used = slab_used_.load(std::memory_order_relaxed);
  uint64_t height_sum = 0;
  ForEach([&](const SkipNode& n) {
    ++stats.num_elems;
    height_sum += n.height;
    stats.max_height = std::max<uint32_t>(stats.max_height, n.height);
  });
  if (stats.num_elems > 0) {
    stats.avg_height = static_cast<double>(height_sum) /
                       static_cast<double>(stats.num_elems);
  }
  return stats;
}

}  // namespace amac
