#include "skiplist/skiplist.h"

#include <limits>

#include "common/hash.h"

namespace amac {

SkipList::SkipList(uint64_t expected_elems) {
  AMAC_CHECK(expected_elems > 0);
  // Expected node footprint at p = 1/2 is ~66 bytes (64-byte aligned,
  // geometric tower); 96 bytes/element leaves ample slack, and allocation
  // is checked so exhaustion is loud, never silent corruption.
  const uint64_t slab_bytes =
      expected_elems * 96 + (kMaxLevel + 2) * kCacheLineSize + (1 << 16);
  slab_ = AlignedBuffer<uint8_t>(slab_bytes);
  head_ = AllocNode(kMaxLevel, std::numeric_limits<int64_t>::min(), 0);
  num_elems_.store(0, std::memory_order_relaxed);  // head is not an element
}

uint32_t SkipList::RandomHeight(Rng& rng) {
  uint32_t h = 1;
  while (h < kMaxLevel && rng.NextBool()) ++h;
  return h;
}

SkipNode* SkipList::AllocNode(uint32_t height, int64_t key, int64_t payload) {
  AMAC_CHECK(height >= 1 && height <= kMaxLevel);
  const std::size_t bytes = SkipNode::BytesForHeight(height);
  const uint64_t offset =
      slab_used_.fetch_add(bytes, std::memory_order_relaxed);
  AMAC_CHECK_MSG(offset + bytes <= slab_.size(), "skip list slab exhausted");
  auto* node = reinterpret_cast<SkipNode*>(slab_.data() + offset);
  node->key = key;
  node->payload = payload;
  new (&node->latch) Latch();
  node->height = static_cast<uint8_t>(height);
  for (uint32_t l = 0; l < height; ++l) node->next[l] = nullptr;
  return node;
}

void FindPredecessors(SkipList& list, int64_t key,
                      SkipNode* preds[SkipList::kMaxLevel],
                      SkipNode* succs[SkipList::kMaxLevel]) {
  SkipNode* cur = list.head();
  for (int32_t level = SkipList::kMaxLevel - 1; level >= 0; --level) {
    SkipNode* cand = LoadNextAcquire(cur, level);
    while (cand != nullptr && cand->key < key) {
      cur = cand;
      cand = LoadNextAcquire(cur, level);
    }
    preds[level] = cur;
    succs[level] = cand;
  }
}

bool SkipList::InsertUnsync(int64_t key, int64_t payload, Rng& rng) {
  SkipNode* preds[kMaxLevel];
  SkipNode* succs[kMaxLevel];
  FindPredecessors(*this, key, preds, succs);
  if (succs[0] != nullptr && succs[0]->key == key) return false;
  const uint32_t height = RandomHeight(rng);
  SkipNode* node = AllocNode(height, key, payload);
  for (uint32_t l = 0; l < height; ++l) {
    node->next[l] = succs[l];
    preds[l]->next[l] = node;
  }
  num_elems_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SkipList::InsertSync(int64_t key, int64_t payload, Rng& rng) {
  SkipNode* preds[kMaxLevel];
  SkipNode* succs[kMaxLevel];
  FindPredecessors(*this, key, preds, succs);
  if (succs[0] != nullptr && succs[0]->key == key) return false;
  const uint32_t height = RandomHeight(rng);
  SkipNode* node = AllocNode(height, key, payload);
  // Pugh splice, bottom-up.  For each level: lock the candidate
  // predecessor, re-validate under the lock (concurrent inserts may have
  // linked new nodes), advancing rightward as needed.
  for (uint32_t l = 0; l < height; ++l) {
    SkipNode* pred = preds[l];
    while (true) {
      pred->latch.Acquire();
      SkipNode* succ = LoadNextAcquire(pred, l);
      if (succ != nullptr && succ->key < key) {
        pred->latch.Release();  // stale: advance and retry the lock
        pred = succ;
        continue;
      }
      if (l == 0 && succ != nullptr && succ->key == key) {
        // Concurrent duplicate won the race; abandon (node stays unlinked).
        pred->latch.Release();
        return false;
      }
      node->next[l] = succ;
      StoreNextRelease(pred, l, node);
      pred->latch.Release();
      break;
    }
  }
  num_elems_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

const SkipNode* SkipList::Find(int64_t key) const {
  const SkipNode* cur = head_;
  for (int32_t level = kMaxLevel - 1; level >= 0; --level) {
    const SkipNode* cand = cur->next[level];
    while (cand != nullptr && cand->key < key) {
      cur = cand;
      cand = cur->next[level];
    }
    if (cand != nullptr && cand->key == key) return cand;
  }
  return nullptr;
}

void SkipList::ForEach(
    const std::function<void(const SkipNode&)>& fn) const {
  for (const SkipNode* n = head_->next[0]; n != nullptr; n = n->next[0]) {
    fn(*n);
  }
}

uint64_t SkipList::Checksum() const {
  uint64_t sum = 0;
  ForEach([&](const SkipNode& n) {
    sum += Mix64(static_cast<uint64_t>(n.key) * 0x9e3779b97f4a7c15ull +
                 static_cast<uint64_t>(n.payload));
  });
  return sum;
}

SkipList::Stats SkipList::ComputeStats() const {
  Stats stats;
  stats.slab_bytes_used = slab_used_.load(std::memory_order_relaxed);
  uint64_t height_sum = 0;
  ForEach([&](const SkipNode& n) {
    ++stats.num_elems;
    height_sum += n.height;
    stats.max_height = std::max<uint32_t>(stats.max_height, n.height);
  });
  if (stats.num_elems > 0) {
    stats.avg_height = static_cast<double>(height_sum) /
                       static_cast<double>(stats.num_elems);
  }
  return stats;
}

}  // namespace amac
