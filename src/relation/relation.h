// In-memory relations: 16-byte tuples of (key, payload), as in the paper's
// methodology ("16-byte tuples containing an 8-byte integer key and an
// 8-byte integer payload, representative of an in-memory columnar database
// storage representation").
//
// All generators are deterministic in their seed.
#pragma once

#include <cstdint>

#include "common/aligned.h"
#include "common/rng.h"

namespace amac {

struct Tuple {
  int64_t key;
  int64_t payload;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.key == b.key && a.payload == b.payload;
  }
};
static_assert(sizeof(Tuple) == 16);

/// A flat, cache-line aligned array of tuples.
class Relation {
 public:
  Relation() = default;
  explicit Relation(uint64_t num_tuples) : tuples_(num_tuples) {}

  uint64_t size() const { return tuples_.size(); }
  Tuple* data() { return tuples_.data(); }
  const Tuple* data() const { return tuples_.data(); }
  Tuple& operator[](uint64_t i) { return tuples_[i]; }
  const Tuple& operator[](uint64_t i) const { return tuples_[i]; }
  const Tuple* begin() const { return tuples_.begin(); }
  const Tuple* end() const { return tuples_.end(); }

 private:
  AlignedBuffer<Tuple> tuples_;
};

/// Fisher-Yates shuffle of the tuple order.
void ShuffleRelation(Relation* rel, uint64_t seed);

/// Build relation R for the uniform joins: keys are a random permutation of
/// the dense range [1, n] (unique), payload(k) = PayloadForKey(k) so joins
/// can be validated without a reference table.
Relation MakeDenseUniqueRelation(uint64_t n, uint64_t seed);

/// Probe relation S with a foreign-key relationship into a dense build key
/// range [1, fk_range]: every S key hits exactly one R bucket entry. When
/// n == fk_range the keys are a permutation (each R key matched exactly
/// once, the paper's equal-size join); otherwise keys are drawn uniformly
/// at random from the range.
Relation MakeForeignKeyRelation(uint64_t n, uint64_t fk_range, uint64_t seed);

/// Zipf-skewed relation: keys drawn from [1, key_range] with exponent
/// `theta` (theta = 0 -> uniform random, duplicates possible).
Relation MakeZipfRelation(uint64_t n, uint64_t key_range, double theta,
                          uint64_t seed);

/// Group-by input: `num_groups` distinct dense keys, each repeated
/// `repeats` times (paper: "each key appears three times"), shuffled;
/// payloads are distinct values.
Relation MakeGroupByInput(uint64_t num_groups, uint32_t repeats,
                          uint64_t seed);

/// Deterministic payload for a dense build key; lets probes validate
/// matches without consulting R.
inline int64_t PayloadForKey(int64_t key) { return key ^ 0x5a5a5a5a5a5a5a5all; }

/// Order-independent checksum over (key, payload) pairs, used to compare
/// the output of different execution engines.
uint64_t RelationChecksum(const Relation& rel);

}  // namespace amac
