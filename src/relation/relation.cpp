#include "relation/relation.h"

#include "common/hash.h"
#include "common/macros.h"
#include "common/zipf.h"

namespace amac {

void ShuffleRelation(Relation* rel, uint64_t seed) {
  Rng rng(seed);
  const uint64_t n = rel->size();
  for (uint64_t i = n; i > 1; --i) {
    const uint64_t j = rng.NextBounded(i);
    std::swap((*rel)[i - 1], (*rel)[j]);
  }
}

Relation MakeDenseUniqueRelation(uint64_t n, uint64_t seed) {
  Relation rel(n);
  for (uint64_t i = 0; i < n; ++i) {
    const int64_t key = static_cast<int64_t>(i + 1);
    rel[i] = Tuple{key, PayloadForKey(key)};
  }
  ShuffleRelation(&rel, seed);
  return rel;
}

Relation MakeForeignKeyRelation(uint64_t n, uint64_t fk_range, uint64_t seed) {
  AMAC_CHECK(fk_range >= 1);
  Relation rel(n);
  if (n == fk_range) {
    // Equal sizes: permutation, every build key probed exactly once.
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t key = static_cast<int64_t>(i + 1);
      rel[i] = Tuple{key, static_cast<int64_t>(i)};
    }
    ShuffleRelation(&rel, seed);
  } else {
    Rng rng(seed);
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t key = static_cast<int64_t>(rng.NextBounded(fk_range) + 1);
      rel[i] = Tuple{key, static_cast<int64_t>(i)};
    }
  }
  return rel;
}

Relation MakeZipfRelation(uint64_t n, uint64_t key_range, double theta,
                          uint64_t seed) {
  Relation rel(n);
  if (theta == 0.0) {
    Rng rng(seed);
    for (uint64_t i = 0; i < n; ++i) {
      rel[i] = Tuple{static_cast<int64_t>(rng.NextBounded(key_range) + 1),
                     static_cast<int64_t>(i)};
    }
    return rel;
  }
  ZipfGenerator zipf(key_range, theta, seed);
  // Zipf ranks map to key values through a mixer so that the hot keys are
  // spread across the hash space (as they would be for real skewed
  // attributes) rather than clustered at small integers.
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t rank = zipf.Next();
    const uint64_t key = (Mix64(rank) % key_range) + 1;
    rel[i] = Tuple{static_cast<int64_t>(key), static_cast<int64_t>(i)};
  }
  return rel;
}

Relation MakeGroupByInput(uint64_t num_groups, uint32_t repeats,
                          uint64_t seed) {
  Relation rel(num_groups * repeats);
  uint64_t pos = 0;
  for (uint64_t g = 1; g <= num_groups; ++g) {
    for (uint32_t r = 0; r < repeats; ++r) {
      rel[pos] = Tuple{static_cast<int64_t>(g), static_cast<int64_t>(pos + 1)};
      ++pos;
    }
  }
  ShuffleRelation(&rel, seed);
  return rel;
}

uint64_t RelationChecksum(const Relation& rel) {
  // Commutative combine (sum of mixed pairs) -> order independent.
  uint64_t sum = 0;
  for (const Tuple& t : rel) {
    sum += Mix64(static_cast<uint64_t>(t.key) * 0x9e3779b97f4a7c15ull +
                 static_cast<uint64_t>(t.payload));
  }
  return sum;
}

}  // namespace amac
