#include "hashtable/chained_table.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace amac {

ChainedHashTable::ChainedHashTable(uint64_t expected_tuples, Options options)
    : hash_kind_(options.hash_kind) {
  AMAC_CHECK(expected_tuples > 0);
  AMAC_CHECK(options.target_nodes_per_bucket > 0);
  const double tuples_per_bucket =
      options.target_nodes_per_bucket * BucketNode::kTuplesPerNode;
  uint64_t nbuckets = NextPow2(static_cast<uint64_t>(
      static_cast<double>(expected_tuples) / tuples_per_bucket + 0.5));
  nbuckets = std::max<uint64_t>(nbuckets, 1);
  buckets_ = AlignedBuffer<BucketNode>(nbuckets);
  bucket_mask_ = nbuckets - 1;
  for (BucketNode& b : buckets_) {
    b.tuples[0].key = BucketNode::kEmptySlotKey;
    b.tuples[1].key = BucketNode::kEmptySlotKey;
  }

  uint64_t pool_cap = options.overflow_capacity;
  if (pool_cap == 0) {
    // Worst case: every tuple collides into a single chain; the header
    // absorbs 2 tuples and each overflow node another 2.
    pool_cap = expected_tuples / BucketNode::kTuplesPerNode + 2;
  }
  overflow_pool_ = AlignedBuffer<BucketNode>(pool_cap);
}

void ChainedHashTable::Clear() {
  for (BucketNode& b : buckets_) {
    b.count = 0;
    b.tuples[0].key = BucketNode::kEmptySlotKey;
    b.tuples[1].key = BucketNode::kEmptySlotKey;
    b.next = nullptr;
  }
  pool_next_.store(0, std::memory_order_relaxed);
  has_sentinel_key_.store(false, std::memory_order_relaxed);
}

BucketNode* ChainedHashTable::AllocOverflowNode() {
  const uint64_t idx = pool_next_.fetch_add(1, std::memory_order_relaxed);
  AMAC_CHECK_MSG(idx < overflow_pool_.size(), "overflow pool exhausted");
  BucketNode* node = &overflow_pool_[idx];
  node->count = 0;
  node->tuples[0].key = BucketNode::kEmptySlotKey;
  node->tuples[1].key = BucketNode::kEmptySlotKey;
  node->next = nullptr;
  return node;
}

void ChainedHashTable::InsertInto(BucketNode* head, const Tuple& t) {
  // Balkesen-style O(1) insert: tuples always land in the header node; when
  // it is full its contents are evicted into a fresh overflow node that is
  // linked right behind the header.
  if (head->count == BucketNode::kTuplesPerNode) {
    BucketNode* spill = AllocOverflowNode();
    spill->count = head->count;
    spill->tuples[0] = head->tuples[0];
    spill->tuples[1] = head->tuples[1];
    spill->next = head->next;
    head->next = spill;
    head->count = 0;
    // Slot invariant: the append below refills slot 0; slot 1 would keep
    // the evicted tuple's key as a ghost the sentinel-compare probe could
    // match ahead of its spilled copy.
    head->tuples[1].key = BucketNode::kEmptySlotKey;
  }
  head->tuples[head->count++] = t;
  NoteInsertedKey(t.key);
}

void ChainedHashTable::InsertUnsync(const Tuple& t) {
  InsertInto(BucketForKey(t.key), t);
}

void ChainedHashTable::InsertSync(const Tuple& t) {
  BucketNode* head = BucketForKey(t.key);
  LatchGuard guard(head->latch);
  InsertInto(head, t);
}

ChainStats ChainedHashTable::ComputeStats() const {
  ChainStats stats;
  stats.num_buckets = buckets_.size();
  std::vector<uint64_t> tuples_per_bucket;
  tuples_per_bucket.reserve(buckets_.size());
  for (const BucketNode& head : buckets_) {
    uint64_t nodes = 0;
    uint64_t tuples = 0;
    for (const BucketNode* n = &head; n != nullptr; n = n->next) {
      if (n->count == 0 && n == &head && head.next == nullptr) break;
      ++nodes;
      tuples += n->count;
    }
    tuples_per_bucket.push_back(tuples);
    if (nodes == 0) continue;
    ++stats.used_buckets;
    stats.total_nodes += nodes;
    stats.total_tuples += tuples;
    stats.max_chain_nodes = std::max(stats.max_chain_nodes, nodes);
    stats.chain_length_hist.Add(nodes);
  }
  if (stats.used_buckets > 0) {
    stats.avg_nodes_per_used_bucket =
        static_cast<double>(stats.total_nodes) /
        static_cast<double>(stats.used_buckets);
  }
  if (stats.total_tuples > 0) {
    std::sort(tuples_per_bucket.begin(), tuples_per_bucket.end(),
              std::greater<uint64_t>());
    const uint64_t top = std::max<uint64_t>(tuples_per_bucket.size() / 100, 1);
    uint64_t in_top = 0;
    for (uint64_t i = 0; i < top; ++i) in_top += tuples_per_bucket[i];
    stats.top1pct_tuple_share =
        static_cast<double>(in_top) / static_cast<double>(stats.total_tuples);
  }
  return stats;
}

void ChainedHashTable::FindAll(int64_t key,
                               std::vector<int64_t>* payloads) const {
  for (const BucketNode* n = BucketForKey(key); n != nullptr; n = n->next) {
    for (uint32_t i = 0; i < n->count; ++i) {
      if (n->tuples[i].key == key) payloads->push_back(n->tuples[i].payload);
    }
  }
}

void ChainedHashTable::CollectChain(uint64_t bucket_index,
                                    std::vector<Tuple>* out) const {
  AMAC_CHECK(bucket_index < buckets_.size());
  for (const BucketNode* n = &buckets_[bucket_index]; n != nullptr;
       n = n->next) {
    for (uint32_t i = 0; i < n->count; ++i) out->push_back(n->tuples[i]);
  }
}

void BuildTableUnsync(const Relation& build, ChainedHashTable* table) {
  for (const Tuple& t : build) table->InsertUnsync(t);
}

void BuildTableParallel(const Relation& build, uint32_t num_threads,
                        ChainedHashTable* table) {
  ParallelFor(num_threads, [&](uint32_t tid) {
    const Range r = PartitionRange(build.size(), num_threads, tid);
    for (uint64_t i = r.begin; i < r.end; ++i) table->InsertSync(build[i]);
  });
}

}  // namespace amac
