// 8-wide gather-based bucket-chain probe step.
//
// One call advances up to 8 chain walks (a lane-masked vector) by one node
// each — the exact stage boundary of ProbeStage::Step (join/join_ops.h) —
// using AVX2 masked gathers over the BucketNode layout: both tuple keys and
// the `next` pointer are fetched in-register instead of through scalar
// dependent loads, and all key compares collapse to two vector compares.
// The header (`count`) is never gathered: the table's slot invariant
// (chained_table.h) guarantees unused slots hold kEmptySlotKey, so
// comparing both slots unconditionally is exact — three gather sequences
// per chain step instead of four.  Lane semantics are bitwise-identical to
// the scalar walk: tuples are considered in chain order, kEarlyExit retires
// a lane at its first match, and emissions carry (lane, build payload).
//
// The ISA split follows common/simd.h: intrinsics live in a non-template
// AMAC_TARGET_AVX2 function returning plain match masks + payload arrays;
// the templated wrapper does emission and prefetching in ordinary code and
// falls back to a scalar per-lane walk below AVX2 (same results, no
// gathers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/prefetch.h"
#include "common/simd.h"
#include "hashtable/chained_table.h"

namespace amac {

// The gather offsets below hard-code the documented BucketNode layout.
static_assert(offsetof(BucketNode, count) == 1);
static_assert(offsetof(BucketNode, tuples) == 8);
static_assert(offsetof(BucketNode, next) == 40);
static_assert(sizeof(Tuple) == 16);

/// Per-step masks of the SIMD kernels: which lanes matched which tuple slot
/// of their current node, and which lanes have a next node to walk (their
/// ptrs already advanced).  Three words, so the non-inlinable
/// target-attributed kernels return in registers instead of materializing
/// (and zeroing) a struct through memory every step.  Matched payloads are
/// NOT gathered: the wrapper reads them with scalar loads from the matched
/// node (its line was just gathered, so the loads hit L1) — a payload
/// gather costs its full uop budget for data already in flight.
struct VecChainMasks {
  uint32_t next_active = 0;
  uint32_t match0 = 0;
  uint32_t match1 = 0;
};

#if AMAC_SIMD_X86
namespace simd_detail {

AMAC_TARGET_AVX2 inline VecChainMasks VecChainStepAvx2(
    const BucketNode** ptrs, const int64_t* keys, uint32_t active,
    bool early_exit) {
  VecChainMasks r;
  for (uint32_t half = 0; half < 2; ++half) {
    const uint32_t nibble = (active >> (4 * half)) & 0xf;
    if (nibble == 0) continue;
    const __m256i lanes = LaneMask4(nibble);
    const __m256i ptrv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ptrs + 4 * half));
    const __m256i keyv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + 4 * half));
    // A lane probing the sentinel itself must never "match" an unused
    // slot; such a probe has no matches at all when the table is
    // sentinel-free (the only case this kernel runs — see the wrapper),
    // so the lane just walks to its chain end and retires.
    const __m256i valid = _mm256_andnot_si256(
        _mm256_cmpeq_epi64(keyv,
                           _mm256_set1_epi64x(BucketNode::kEmptySlotKey)),
        lanes);
    // Both key slots are compared unconditionally: unused slots hold the
    // sentinel (slot invariant) and can never equal a valid probe key, so
    // the header's `count` is not needed — no header gather.
    const __m256i k0 =
        MaskGather64(_mm256_add_epi64(ptrv, _mm256_set1_epi64x(8)), lanes);
    const __m256i m0 =
        _mm256_and_si256(_mm256_cmpeq_epi64(k0, keyv), valid);
    const __m256i k1 =
        MaskGather64(_mm256_add_epi64(ptrv, _mm256_set1_epi64x(24)), lanes);
    const __m256i m1 =
        _mm256_and_si256(_mm256_cmpeq_epi64(k1, keyv), valid);
    const uint32_t m0bits =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(m0)));
    const uint32_t m1bits =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(m1)));
    r.match0 |= m0bits << (4 * half);
    r.match1 |= m1bits << (4 * half);
    // Lanes that keep walking: not retired by a match (early exit only),
    // and with a non-null next pointer.  When all lanes of a half matched
    // under early exit the walk mask is empty — no gather, no store —
    // which is the uniform-join fast path.
    __m256i walk = lanes;
    if (early_exit) {
      walk = _mm256_andnot_si256(_mm256_or_si256(m0, m1), walk);
    }
    if (!_mm256_testz_si256(walk, walk)) {
      const __m256i nextv =
          MaskGather64(_mm256_add_epi64(ptrv, _mm256_set1_epi64x(40)), walk);
      const __m256i cont = _mm256_andnot_si256(
          _mm256_cmpeq_epi64(nextv, _mm256_setzero_si256()), walk);
      // Advance via blend + full-width store rather than vpmaskmovq: the
      // caller (and the next step) reloads these pointers immediately, and
      // masked stores defeat store-to-load forwarding.
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ptrs + 4 * half),
                          _mm256_blendv_epi8(ptrv, nextv, cont));
      const uint32_t contbits = static_cast<uint32_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(cont)));
      r.next_active |= contbits << (4 * half);
    }
  }
  return r;
}

/// AVX-512 variant: all 8 lanes in one zmm register, lane masks as native
/// kmasks.  Halves the gather instruction count of the two-half AVX2 path
/// and drops its movemask/LaneMask bookkeeping entirely; the bit-level
/// semantics are identical.
AMAC_TARGET_AVX512 inline VecChainMasks VecChainStepAvx512(
    const BucketNode** ptrs, const int64_t* keys, uint32_t active,
    bool early_exit) {
  VecChainMasks r;
  const __mmask8 lanes = static_cast<__mmask8>(active);
  const __m512i ptrv = _mm512_loadu_si512(ptrs);
  const __m512i keyv = _mm512_loadu_si512(keys);
  const __m512i zero = _mm512_setzero_si512();
  // See the AVX2 kernel: sentinel-probing lanes match nothing, and both
  // slots are compared unconditionally under the slot invariant (no
  // header gather).
  const __mmask8 valid = _mm512_mask_cmpneq_epi64_mask(
      lanes, keyv, _mm512_set1_epi64(BucketNode::kEmptySlotKey));
  const __m512i k0 = _mm512_mask_i64gather_epi64(
      zero, lanes, _mm512_add_epi64(ptrv, _mm512_set1_epi64(8)), nullptr, 1);
  const __mmask8 m0 = _mm512_mask_cmpeq_epi64_mask(valid, k0, keyv);
  const __m512i k1 = _mm512_mask_i64gather_epi64(
      zero, lanes, _mm512_add_epi64(ptrv, _mm512_set1_epi64(24)), nullptr,
      1);
  const __mmask8 m1 = _mm512_mask_cmpeq_epi64_mask(valid, k1, keyv);
  const __mmask8 walk = early_exit
                            ? static_cast<__mmask8>(lanes & ~(m0 | m1))
                            : lanes;
  if (walk != 0) {
    const __m512i nextv = _mm512_mask_i64gather_epi64(
        zero, walk, _mm512_add_epi64(ptrv, _mm512_set1_epi64(40)), nullptr,
        1);
    const __mmask8 cont =
        _mm512_mask_cmpneq_epi64_mask(walk, nextv, zero);
    _mm512_storeu_si512(ptrs, _mm512_mask_blend_epi64(cont, ptrv, nextv));
    r.next_active = cont;
  }
  r.match0 = m0;
  r.match1 = m1;
  return r;
}

}  // namespace simd_detail
#endif  // AMAC_SIMD_X86

/// Advance every active lane's chain walk by one node.  `ptrs[lane]` /
/// `keys[lane]` are the walk positions and probe keys; matched build
/// payloads are emitted as emit(lane, payload) in lane order (tuple slot 0
/// before slot 1, matching the scalar scan order).  Continuing lanes have
/// ptrs advanced and prefetched; the new active mask is returned.
///
/// `allow_simd` must be false when the probed table stores a key equal to
/// BucketNode::kEmptySlotKey (ChainedHashTable::has_sentinel_key()) — the
/// gather kernels tell unused slots apart by that sentinel.  The scalar
/// walk is count-based and exact for any table.
template <bool kEarlyExit, typename EmitFn>
inline uint32_t VecChainStep(const BucketNode** ptrs, const int64_t* keys,
                             uint32_t active, EmitFn&& emit,
                             bool allow_simd = true) {
#if AMAC_SIMD_X86
  // Nearly-empty vectors (the tail of a batch draining its longest chain)
  // go through the scalar walk below: one or two prefetched node visits
  // are cheaper than any gather sequence.
  const SimdLevel level = CurrentSimdLevel();
  if (allow_simd && level >= SimdLevel::kAvx2 &&
      __builtin_popcount(active) > 2) {
    // Snapshot the node each lane is visiting: the kernel advances ptrs
    // for continuing lanes, and matched payloads are read scalar from the
    // visited node below (the gathers just pulled its line into L1).
    const BucketNode* visited[kSimdLanes];
    std::memcpy(visited, ptrs, sizeof(visited));
    const VecChainMasks r =
        level >= SimdLevel::kAvx512
            ? simd_detail::VecChainStepAvx512(ptrs, keys, active, kEarlyExit)
            : simd_detail::VecChainStepAvx2(ptrs, keys, active, kEarlyExit);
    // Tour only the matched lanes, in lane order (slot 0 before slot 1,
    // as the scalar scan emits).
    uint32_t matched = r.match0 | r.match1;
    while (matched != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(matched));
      matched &= matched - 1;
      const uint32_t bit = 1u << lane;
      if (r.match0 & bit) {
        emit(lane, visited[lane]->tuples[0].payload);
        if (kEarlyExit) continue;
      }
      if (r.match1 & bit) emit(lane, visited[lane]->tuples[1].payload);
    }
    uint32_t walking = r.next_active;
    while (walking != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(walking));
      walking &= walking - 1;
      Prefetch(ptrs[lane]);
    }
    return r.next_active;
  }
#endif
  uint32_t next_active = 0;
  uint32_t pending = active;
  while (pending != 0) {
    const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(pending));
    pending &= pending - 1;
    const BucketNode* node = ptrs[lane];
    bool done = false;
    for (uint32_t i = 0; i < node->count; ++i) {
      if (node->tuples[i].key == keys[lane]) {
        emit(lane, node->tuples[i].payload);
        if (kEarlyExit) {
          done = true;
          break;
        }
      }
    }
    if (!done && node->next != nullptr) {
      ptrs[lane] = node->next;
      Prefetch(node->next);
      next_active |= 1u << lane;
    }
  }
  return next_active;
}

}  // namespace amac
