// Chained hash table with cache-line buckets, reproducing the layout the
// paper adopts from Balkesen et al. [4, 5]:
//
//   "Each hash table bucket contains a 1-byte latch for synchronization,
//    two 16-byte tuples and an 8-byte pointer to the next hash table node
//    to be used in the case of collisions."
//   "The first hash table node is clustered with the bucket header."
//
// The bucket header array and all overflow nodes are 64-byte aligned; a
// bucket header and an overflow node share the same BucketNode layout so a
// chain walk is uniform.  The execution engines (baseline / GP / SPP / AMAC)
// operate directly on this layout, so it is deliberately an open struct with
// documented invariants rather than an encapsulated container.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/hash.h"
#include "common/latch.h"
#include "common/macros.h"
#include "common/stats.h"
#include "relation/relation.h"

namespace amac {

/// One cache line of the chain: up to two tuples plus the next pointer.
///
/// Slot invariant: every tuple slot with index >= count holds
/// kEmptySlotKey.  The table's insert paths maintain it (construction,
/// Clear, AllocOverflowNode, and the header-eviction discipline), and the
/// vectorized probe (hashtable/vec_probe.h) relies on it to compare both
/// key slots unconditionally instead of gathering the header for `count` —
/// an unused slot can never equal a probe key.  The one collision —
/// a *stored* key equal to kEmptySlotKey — sets
/// ChainedHashTable::has_sentinel_key() and routes that table's probes
/// through the scalar walk.
struct AMAC_CACHE_ALIGNED BucketNode {
  static constexpr uint32_t kTuplesPerNode = 2;
  /// Key value marking an unused tuple slot (INT64_MIN).
  static constexpr int64_t kEmptySlotKey = INT64_MIN;

  Latch latch;            ///< 1-byte latch (meaningful on bucket headers)
  uint8_t count = 0;      ///< tuples used in this node (0..2)
  uint8_t pad[6] = {};    ///< explicit padding for layout clarity
  Tuple tuples[kTuplesPerNode] = {};
  BucketNode* next = nullptr;  ///< overflow chain
};
static_assert(sizeof(BucketNode) == kCacheLineSize,
              "bucket must occupy exactly one cache line");

/// Aggregate shape of the chains, used by tests and to report workload
/// irregularity (paper §2.2.2: "1% of the hash table buckets ... contain
/// 19% of the total build tuples" at Zipf 0.75).
struct ChainStats {
  uint64_t num_buckets = 0;
  uint64_t used_buckets = 0;
  uint64_t total_tuples = 0;
  uint64_t total_nodes = 0;    ///< used headers + overflow nodes
  uint64_t max_chain_nodes = 0;
  double avg_nodes_per_used_bucket = 0;
  Histogram chain_length_hist{256};
  /// Fraction of all tuples living in the 1% most populated buckets.
  double top1pct_tuple_share = 0;
};

/// The chained table: bucket header array + bump-allocated overflow pool.
class ChainedHashTable {
 public:
  struct Options {
    /// Buckets are sized so the *expected* number of chain nodes per used
    /// bucket under a uniform dense key distribution equals this value.
    /// 1.0 gives the Balkesen no-partitioning layout (2 tuple slots per
    /// key-pair); 2.0 (= 4 tuples/bucket) reproduces the Fig. 3 motivation
    /// setup of "exactly four nodes per bucket" when combined with
    /// `target_nodes_per_bucket = 2` and key duplication.
    double target_nodes_per_bucket = 1.0;
    HashKind hash_kind = HashKind::kMurmur;
    /// Overflow pool capacity in nodes; 0 = auto (worst case: all tuples
    /// collide into one chain).
    uint64_t overflow_capacity = 0;
  };

  ChainedHashTable(uint64_t expected_tuples, Options options);

  /// Non-synchronized insert (single-threaded build).
  void InsertUnsync(const Tuple& t);

  /// Latched insert (multi-threaded build); spins on the bucket latch.
  void InsertSync(const Tuple& t);

  /// Reset to empty (keeps the allocations).
  void Clear();

  uint64_t BucketIndex(int64_t key) const {
    return hash_kind_ == HashKind::kMurmur
               ? HashToBucket<HashKind::kMurmur>(static_cast<uint64_t>(key),
                                                 bucket_mask_)
               : HashToBucket<HashKind::kRadix>(static_cast<uint64_t>(key),
                                                bucket_mask_);
  }

  BucketNode* BucketForKey(int64_t key) {
    return &buckets_[BucketIndex(key)];
  }
  const BucketNode* BucketForKey(int64_t key) const {
    return &buckets_[BucketIndex(key)];
  }

  /// Allocate one overflow node (thread-safe bump allocation).
  BucketNode* AllocOverflowNode();

  /// Record that `key` was stored in the table.  A stored key equal to
  /// BucketNode::kEmptySlotKey would be indistinguishable from an unused
  /// slot under the vectorized probe's sentinel compares, so it flips
  /// has_sentinel_key() and the probes fall back to the scalar walk
  /// (bitwise-identical results, no gathers).  Insert paths that write
  /// tuples directly (join/build_kernels.h, core/ops.h) must call this.
  void NoteInsertedKey(int64_t key) {
    if (AMAC_UNLIKELY(key == BucketNode::kEmptySlotKey) &&
        !has_sentinel_key_.load(std::memory_order_relaxed)) {
      has_sentinel_key_.store(true, std::memory_order_relaxed);
    }
  }

  /// True iff some stored key equals BucketNode::kEmptySlotKey, making the
  /// sentinel-based vector probe unsafe for this table.
  bool has_sentinel_key() const {
    return has_sentinel_key_.load(std::memory_order_relaxed);
  }

  uint64_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_mask() const { return bucket_mask_; }
  HashKind hash_kind() const { return hash_kind_; }
  BucketNode* buckets() { return buckets_.data(); }
  const BucketNode* buckets() const { return buckets_.data(); }
  uint64_t overflow_nodes_used() const {
    return pool_next_.load(std::memory_order_relaxed);
  }

  /// Walk every chain and gather shape statistics (not a hot path).
  ChainStats ComputeStats() const;

  /// Reference probe used by tests: returns payloads of all tuples whose
  /// key matches, in chain order.
  void FindAll(int64_t key, std::vector<int64_t>* payloads) const;

  /// Walk bucket `bucket_index`'s chain in probe order, appending every
  /// stored tuple.  Used by tests to assert that the partitioned parallel
  /// build produces bit-identical chains to a sequential build.
  void CollectChain(uint64_t bucket_index, std::vector<Tuple>* out) const;

 private:
  void InsertInto(BucketNode* head, const Tuple& t);

  AlignedBuffer<BucketNode> buckets_;
  AlignedBuffer<BucketNode> overflow_pool_;
  std::atomic<uint64_t> pool_next_{0};
  std::atomic<bool> has_sentinel_key_{false};
  uint64_t bucket_mask_ = 0;
  HashKind hash_kind_;
};

/// Build the table from a relation, single-threaded (the baseline build;
/// the staged build variants live in src/join/build_*).
void BuildTableUnsync(const Relation& build, ChainedHashTable* table);

/// Latched parallel build on `num_threads` threads.
void BuildTableParallel(const Relation& build, uint32_t num_threads,
                        ChainedHashTable* table);

}  // namespace amac
