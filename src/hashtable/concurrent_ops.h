// Read/write stage machines over ConcurrentChainedTable for the unified
// runtime: every ExecPolicy (and the QueryScheduler above it) can serve
// point lookups, upserts, and deletes against a live, concurrently mutated
// table.
//
// Epoch discipline: each op instance owns one EpochGuard (ops are
// per-scheduler-slot / per-thread, never shared across threads
// concurrently).  The guard re-pins only when the op has ZERO in-flight
// lookups — i.e. at morsel boundaries — because an interleaved schedule
// (AMAC, coroutine, vectorized-AMAC) parks lookups that hold raw node
// pointers across Steps; re-pinning while any lookup is parked would let
// the epoch advance past nodes those lookups still dereference.  The
// `inflight_` counter (Start/StartVec/RefillLane increment, retirement
// decrements) makes that boundary explicit for every schedule.
#pragma once

#include <cstdint>

#include "common/macros.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "core/engine.h"
#include "core/run_stats.h"
#include "epoch/epoch.h"
#include "hashtable/concurrent_table.h"
#if AMAC_SIMD_X86 && !AMAC_TSAN
#include "hashtable/vec_probe.h"
#endif

namespace amac {
namespace concurrent_detail {

/// A permanently empty node.  Lookups probing the reserved sentinel key
/// are pointed here instead of a real bucket: unclaimed slots hold the
/// sentinel, so a sentinel probe against a real chain would false-match.
/// Its slot keys are 0 (any non-sentinel value works — only sentinel
/// probes are ever routed here, and 0 != sentinel), so walking this node
/// yields no matches and terminates immediately under both the scalar
/// walk and the gather kernels.
struct NullBucketHolder {
  BucketNode node;
  NullBucketHolder() {
    static_assert(BucketNode::kEmptySlotKey != 0);
    node.count = 0;
    node.tuples[0] = Tuple{0, 0};
    node.tuples[1] = Tuple{0, 0};
    node.next = nullptr;
  }
};
inline const NullBucketHolder kNullBucketHolder;
inline const BucketNode& kNullBucket = kNullBucketHolder.node;

}  // namespace concurrent_detail

/// Latch-free point lookup against a live table.  Sink concept:
///   sink.Emit(rid, payload)  — key found
///   sink.Miss(rid)           — key absent (or the reserved sentinel)
/// Early-exit semantics always apply: the table holds at most one live
/// version of a key.
template <typename Sink>
class ConcurrentFindOp {
 public:
  struct State {
    const BucketNode* ptr;
    int64_t key;
    uint64_t rid;
  };

  ConcurrentFindOp(const ConcurrentChainedTable& table, const int64_t* keys,
                   Sink& sink)
      : table_(&table),
        keys_(keys),
        sink_(&sink),
        guard_(table.epochs()) {}

  void Start(State& st, uint64_t idx) {
    if (inflight_ == 0) guard_.Refresh();
    ++inflight_;
    st.key = keys_[idx];
    st.rid = idx;
    st.ptr = AMAC_UNLIKELY(st.key == BucketNode::kEmptySlotKey)
                 ? &concurrent_detail::kNullBucket
                 : table_->BucketForKey(st.key);
    Prefetch(st.ptr);
  }

  StepStatus Step(State& st) {
    const BucketNode* node = st.ptr;
    for (uint32_t i = 0; i < BucketNode::kTuplesPerNode; ++i) {
      if (concurrent_detail::LoadKeyAcquire(node->tuples[i]) == st.key) {
        sink_->Emit(st.rid,
                    concurrent_detail::LoadPayloadRelaxed(node->tuples[i]));
        --inflight_;
        return StepStatus::kDone;
      }
    }
    const BucketNode* next = concurrent_detail::LoadNextAcquire(node);
    if (next == nullptr) {
      sink_->Miss(st.rid);
      --inflight_;
      return StepStatus::kDone;
    }
    st.ptr = next;
    Prefetch(next);
    return StepStatus::kParked;
  }

#if AMAC_SIMD_X86 && !AMAC_TSAN
  // Vector interface, same shape as ProbeOp's (join/join_ops.h).  The
  // gather kernels issue plain vector loads over concurrently mutated
  // nodes: exact under x86-TSO with this table's invariants (a slot's key
  // holds one non-sentinel value per incarnation; unlinked nodes stay
  // intact through the epoch grace period) but formally a data race, so
  // the whole interface is compiled out under TSan — Run() then uses the
  // scalar schedule and counts vec_fallbacks, keeping the TSan CI leg
  // race-free without suppressions.
  static constexpr uint32_t kVecLanes = kSimdLanes;
  struct VecState {
    const BucketNode* ptr[kSimdLanes];
    int64_t key[kSimdLanes];
    uint64_t rid[kSimdLanes];
    uint32_t active;
    uint32_t matched;
  };

  void StartVec(VecState& st, uint64_t base_idx, uint32_t n) {
    AMAC_DCHECK(n >= 1 && n <= kSimdLanes);
    if (inflight_ == 0) guard_.Refresh();
    inflight_ += n;
    int64_t keys[kSimdLanes];
    for (uint32_t i = 0; i < n; ++i) keys[i] = keys_[base_idx + i];
    for (uint32_t i = n; i < kSimdLanes; ++i) keys[i] = keys[n - 1];
    uint64_t bucket[kSimdLanes];
    HashToBucket8(table_->hash_kind(), keys, table_->bucket_mask(), bucket);
    const BucketNode* buckets = table_->buckets();
    for (uint32_t i = 0; i < n; ++i) {
      st.key[i] = keys[i];
      st.rid[i] = base_idx + i;
      st.ptr[i] = AMAC_UNLIKELY(keys[i] == BucketNode::kEmptySlotKey)
                      ? &concurrent_detail::kNullBucket
                      : buckets + bucket[i];
      Prefetch(st.ptr[i]);
    }
    st.active = n == kSimdLanes ? 0xffu : (1u << n) - 1;
    st.matched = 0;
  }

  void RefillLane(VecState& st, uint32_t lane, uint64_t idx) {
    ++inflight_;
    st.key[lane] = keys_[idx];
    st.rid[lane] = idx;
    st.ptr[lane] =
        AMAC_UNLIKELY(st.key[lane] == BucketNode::kEmptySlotKey)
            ? &concurrent_detail::kNullBucket
            : table_->BucketForKey(st.key[lane]);
    Prefetch(st.ptr[lane]);
    st.active |= 1u << lane;
    st.matched &= ~(1u << lane);
  }

  uint32_t StepVec(VecState& st) {
    const uint32_t before = st.active;
    st.active = VecChainStep</*kEarlyExit=*/true>(
        st.ptr, st.key, st.active,
        [this, &st](uint32_t lane, int64_t payload) {
          st.matched |= 1u << lane;
          sink_->Emit(st.rid[lane], payload);
        },
        /*allow_simd=*/true);
    // Lanes that retired this step without a match ran off their chain.
    uint32_t missed = before & ~st.active & ~st.matched;
    inflight_ -= __builtin_popcount(before & ~st.active);
    while (missed != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(missed));
      missed &= missed - 1;
      sink_->Miss(st.rid[lane]);
    }
    return st.active;
  }
#endif  // AMAC_SIMD_X86 && !AMAC_TSAN

 private:
  const ConcurrentChainedTable* table_;
  const int64_t* keys_;
  Sink* sink_;
  EpochGuard guard_;
  uint64_t inflight_ = 0;
};

/// Insert-or-update write lookup: Start hashes + write-prefetches the
/// bucket header, the single Step try-acquires the bucket latch (kRetry
/// parks on contention, §3.2's coarse latch spin) and applies
/// UpsertLocked.  Per-op WriteStats are folded into RunStats by the
/// caller after the run.
class UpsertOp {
 public:
  struct State {
    BucketNode* head;
    int64_t key;
    int64_t payload;
  };

  UpsertOp(ConcurrentChainedTable& table, const int64_t* keys,
           const int64_t* payloads)
      : table_(&table),
        keys_(keys),
        payloads_(payloads),
        guard_(table.epochs()) {}

  void Start(State& st, uint64_t idx) {
    if (inflight_ == 0) guard_.Refresh();
    ++inflight_;
    st.key = keys_[idx];
    st.payload = payloads_[idx];
    st.head = table_->BucketForKey(st.key);
    PrefetchWrite(st.head);
  }

  StepStatus Step(State& st) {
    if (!st.head->latch.TryAcquire()) return StepStatus::kRetry;
    const bool inserted =
        table_->UpsertLocked(st.head, st.key, st.payload, guard_);
    st.head->latch.Release();
    if (inserted) {
      ++writes_.inserts;
    } else {
      ++writes_.updates;
    }
    --inflight_;
    return StepStatus::kDone;
  }

  const WriteStats& writes() const { return writes_; }

 private:
  ConcurrentChainedTable* table_;
  const int64_t* keys_;
  const int64_t* payloads_;
  EpochGuard guard_;
  WriteStats writes_;
  uint64_t inflight_ = 0;
};

/// Delete write lookup; same single-Step latch discipline as UpsertOp.
/// A missing key is a no-op (not counted in WriteStats.erases).
class EraseOp {
 public:
  struct State {
    BucketNode* head;
    int64_t key;
  };

  EraseOp(ConcurrentChainedTable& table, const int64_t* keys)
      : table_(&table), keys_(keys), guard_(table.epochs()) {}

  void Start(State& st, uint64_t idx) {
    if (inflight_ == 0) guard_.Refresh();
    ++inflight_;
    st.key = keys_[idx];
    st.head = table_->BucketForKey(st.key);
    PrefetchWrite(st.head);
  }

  StepStatus Step(State& st) {
    if (!st.head->latch.TryAcquire()) return StepStatus::kRetry;
    const bool erased = table_->EraseLocked(st.head, st.key, guard_);
    st.head->latch.Release();
    if (erased) ++writes_.erases;
    --inflight_;
    return StepStatus::kDone;
  }

  const WriteStats& writes() const { return writes_; }

 private:
  ConcurrentChainedTable* table_;
  const int64_t* keys_;
  EpochGuard guard_;
  WriteStats writes_;
  uint64_t inflight_ = 0;
};

}  // namespace amac
