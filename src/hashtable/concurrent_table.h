// Concurrent chained hash table: latch-free epoch-protected readers,
// per-bucket latched writers, full insert/update/delete.
//
// This is the write-path sibling of ChainedHashTable.  It reuses the same
// 64-byte BucketNode (so the vectorized probe kernels in vec_probe.h work
// unchanged on its chains) but owns different invariants, tuned so that a
// reader never takes a latch:
//
//   * Slots are CLAIM-ONCE per node incarnation.  A tuple slot goes
//     sentinel -> key (insert, exactly once) -> sentinel (erase, at most
//     once) and is never re-claimed while the node is linked.  This is
//     what makes the latch-free reader exact: a slot's key only ever holds
//     one non-sentinel value, so the reader's key-then-payload load pair
//     can never stitch key A to payload B (the erase/reinsert ABA a
//     reuse-in-place scheme would allow).  `count` is the number of
//     ever-claimed slots (monotonic per incarnation), preserving the PR 6
//     slot-sentinel invariant — every slot at index >= count holds
//     kEmptySlotKey — plus its concurrent extension: erased slots below
//     count hold kEmptySlotKey too, so the vectorized gathers' two
//     unconditional key compares stay exact.
//   * Publication: a new overflow node is fully initialized before a
//     single release store links it at the chain tail; a claimed slot
//     stores its payload before the key's release store.  Readers walk
//     with acquire loads of key and next (x86: plain MOVs).
//   * Update-in-place only for an existing key's payload (one relaxed
//     atomic store; readers see old or new, both linearizable).
//   * Erase stores the sentinel into the key slot and bumps a per-bucket
//     tombstone count (header pad byte, writer-latch protected).  When it
//     crosses Options::compact_tombstones the bucket is compacted: fully
//     dead overflow nodes (count == 2, both slots sentinel) are unlinked
//     and retired through the EpochManager; the grace period makes their
//     memory reusable by ANY future claim, which is why recycled nodes are
//     the one place slots are reused.  Header nodes are embedded in the
//     bucket array and cannot be unlinked, so fully-tombstoned header
//     slots stay dead — bounded waste of at most one node per bucket.
//
// Writers (insert/update/erase/compaction) serialize per bucket on the
// header's 1-byte latch, exactly the paper's §3.2 build discipline; the
// *Locked entry points expose TryAcquire-based stage machines
// (hashtable/concurrent_ops.h) so write lookups park on contention like
// every other AMAC operation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/aligned.h"
#include "common/hash.h"
#include "common/latch.h"
#include "common/macros.h"
#include "epoch/epoch.h"
#include "hashtable/chained_table.h"
#include "relation/relation.h"

namespace amac {
namespace concurrent_detail {

// Concurrent-access helpers shared by the table and its stage machines
// (concurrent_ops.h).  Readers are latch-free, so every field a reader
// touches goes through atomic_ref: keys with acquire (pairs with the
// claim's release store, making the payload written before it visible),
// payloads relaxed (ordered by the key load or by publication), next with
// acquire (pairs with the tail-link release store).  Writer-side loads use
// relaxed — the bucket latch already orders writers.

inline int64_t LoadKeyAcquire(const Tuple& t) {
  return std::atomic_ref<const int64_t>(t.key).load(
      std::memory_order_acquire);
}
inline int64_t LoadKeyRelaxed(const Tuple& t) {
  return std::atomic_ref<const int64_t>(t.key).load(
      std::memory_order_relaxed);
}
inline int64_t LoadPayloadRelaxed(const Tuple& t) {
  return std::atomic_ref<const int64_t>(t.payload).load(
      std::memory_order_relaxed);
}
inline void StoreKeyRelease(Tuple& t, int64_t key) {
  std::atomic_ref<int64_t>(t.key).store(key, std::memory_order_release);
}
inline void StorePayloadRelaxed(Tuple& t, int64_t payload) {
  std::atomic_ref<int64_t>(t.payload).store(payload,
                                            std::memory_order_relaxed);
}
inline BucketNode* LoadNextAcquire(const BucketNode* node) {
  return std::atomic_ref<BucketNode* const>(node->next)
      .load(std::memory_order_acquire);
}
inline BucketNode* LoadNextRelaxed(const BucketNode* node) {
  return std::atomic_ref<BucketNode* const>(node->next)
      .load(std::memory_order_relaxed);
}
inline void StoreNextRelease(BucketNode* node, BucketNode* next) {
  std::atomic_ref<BucketNode*>(node->next).store(next,
                                                 std::memory_order_release);
}
// `count` (ever-claimed slots) is read by the non-TSan SIMD fallback with
// plain loads; writes go through atomic_ref so the TSan build, where that
// fallback is compiled out, sees only properly ordered accesses.
inline void StoreCountRelaxed(BucketNode* node, uint8_t count) {
  std::atomic_ref<uint8_t>(node->count).store(count,
                                              std::memory_order_relaxed);
}

}  // namespace concurrent_detail

class ConcurrentChainedTable {
 public:
  struct Options {
    /// Bucket count = NextPow2(expected_live / (2 * this)); 1.0 sizes the
    /// headers to hold the expected population without overflow.
    double target_tuples_per_slot = 1.0;
    HashKind hash_kind = HashKind::kMurmur;
    /// Nodes in the first overflow slab; 0 picks a default from
    /// expected_live.  Later slabs double.
    uint64_t initial_overflow_capacity = 0;
    /// Per-bucket erases tolerated before the bucket's chain is compacted
    /// (dead overflow nodes unlinked + epoch-retired).  0 disables
    /// compaction; dead nodes then persist until destruction.
    uint32_t compact_tombstones = 8;
  };

  /// `epochs` must outlive the table; the table must outlive every guard
  /// used against it, and the caller must drain (all guards released +
  /// epochs->ReclaimAll()) before destroying the table, or retirees whose
  /// deleters push into this table's free list would dangle.
  ConcurrentChainedTable(uint64_t expected_live, EpochManager* epochs)
      : ConcurrentChainedTable(expected_live, epochs, Options()) {}
  ConcurrentChainedTable(uint64_t expected_live, EpochManager* epochs,
                         Options options);
  ~ConcurrentChainedTable();

  ConcurrentChainedTable(const ConcurrentChainedTable&) = delete;
  ConcurrentChainedTable& operator=(const ConcurrentChainedTable&) = delete;

  // --- Write path (bucket latch held by caller: stage machines) ---------

  /// Insert `key` or overwrite its payload.  Caller holds `head`'s latch
  /// and a live guard (compaction may retire nodes).  True on insert,
  /// false on update.
  bool UpsertLocked(BucketNode* head, int64_t key, int64_t payload,
                    EpochGuard& guard);
  /// Remove `key`.  Caller holds `head`'s latch and a live guard.  True
  /// when the key was present.
  bool EraseLocked(BucketNode* head, int64_t key, EpochGuard& guard);

  // --- Write path (spinning convenience: preload, oracles, tests) -------

  bool Upsert(int64_t key, int64_t payload, EpochGuard& guard);
  bool Erase(int64_t key, EpochGuard& guard);

  // --- Read path --------------------------------------------------------

  /// Latch-free point lookup; caller must hold a pinned EpochGuard for the
  /// whole call.  True + payload when found.
  bool Find(int64_t key, int64_t* payload) const;

  // --- Geometry (mirrors ChainedHashTable for the probe kernels) --------

  uint64_t BucketIndex(int64_t key) const {
    return hash_kind_ == HashKind::kMurmur
               ? HashToBucket<HashKind::kMurmur>(static_cast<uint64_t>(key),
                                                 bucket_mask_)
               : HashToBucket<HashKind::kRadix>(static_cast<uint64_t>(key),
                                                bucket_mask_);
  }
  BucketNode* BucketForKey(int64_t key) {
    return &buckets_[BucketIndex(key)];
  }
  const BucketNode* BucketForKey(int64_t key) const {
    return &buckets_[BucketIndex(key)];
  }
  uint64_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_mask() const { return bucket_mask_; }
  HashKind hash_kind() const { return hash_kind_; }
  BucketNode* buckets() { return buckets_.data(); }
  const BucketNode* buckets() const { return buckets_.data(); }
  EpochManager* epochs() const { return epochs_; }

  // --- Accounting -------------------------------------------------------

  uint64_t live_keys() const {
    return live_keys_.load(std::memory_order_relaxed);
  }
  uint64_t allocated_nodes() const {
    return allocated_nodes_.load(std::memory_order_relaxed);
  }
  uint64_t recycled_nodes() const {
    return recycled_nodes_.load(std::memory_order_relaxed);
  }
  uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  uint64_t retired_nodes() const {
    return retired_nodes_.load(std::memory_order_relaxed);
  }

  /// Structural invariant check; requires quiescence (no concurrent
  /// writers, epoch drained is not required).  Verifies the slot-sentinel
  /// invariant, per-bucket key placement, global key uniqueness, and that
  /// live tuple count == live_keys().
  struct Audit {
    bool ok = false;
    uint64_t live_tuples = 0;
    uint64_t chain_nodes = 0;  ///< linked overflow nodes
    uint64_t dead_slots = 0;   ///< tombstoned claimed slots
    uint64_t max_chain = 0;    ///< longest chain in nodes, incl. header
  };
  Audit AuditQuiesced() const;

  /// Append every live (key, payload) to `out`; requires quiescence.
  void CollectLive(std::vector<Tuple>* out) const;

 private:
  struct Slab {
    explicit Slab(uint64_t capacity)
        : nodes(capacity, kCacheLineSize), used(0) {}
    AlignedBuffer<BucketNode> nodes;
    std::atomic<uint64_t> used;
  };

  /// Free-list recycle deleter handed to EpochGuard::Retire.
  static void RecycleNode(void* obj, void* ctx);

  BucketNode* AllocNode();
  void InitNode(BucketNode* node);
  void CompactLocked(BucketNode* head, EpochGuard& guard);

  EpochManager* const epochs_;
  HashKind hash_kind_;
  uint32_t compact_tombstones_;
  uint64_t bucket_mask_ = 0;
  AlignedBuffer<BucketNode> buckets_;

  // Overflow node slabs: lock-free bump allocation off current_slab_, with
  // a mutex only on the grow path.  Nodes are never returned to slabs —
  // they recycle through free_ after their epoch grace period.
  std::mutex alloc_mu_;
  std::vector<std::unique_ptr<Slab>> slabs_;  ///< guarded by alloc_mu_
  std::atomic<Slab*> current_slab_{nullptr};

  std::mutex free_mu_;
  std::vector<BucketNode*> free_;  ///< guarded by free_mu_
  std::atomic<uint64_t> free_count_{0};

  std::atomic<uint64_t> live_keys_{0};
  std::atomic<uint64_t> allocated_nodes_{0};
  std::atomic<uint64_t> recycled_nodes_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> retired_nodes_{0};
};

}  // namespace amac
