#include "hashtable/concurrent_table.h"

#include <atomic>
#include <unordered_set>

namespace amac {

using namespace concurrent_detail;  // NOLINT: Load*/Store* helpers

ConcurrentChainedTable::ConcurrentChainedTable(uint64_t expected_live,
                                               EpochManager* epochs,
                                               Options options)
    : epochs_(epochs),
      hash_kind_(options.hash_kind),
      compact_tombstones_(options.compact_tombstones) {
  AMAC_CHECK(epochs_ != nullptr);
  const double target = options.target_tuples_per_slot > 0
                            ? options.target_tuples_per_slot
                            : 1.0;
  const uint64_t want = static_cast<uint64_t>(
      static_cast<double>(std::max<uint64_t>(1, expected_live)) /
      (BucketNode::kTuplesPerNode * target));
  const uint64_t num_buckets = NextPow2(std::max<uint64_t>(1, want));
  bucket_mask_ = num_buckets - 1;
  buckets_ = AlignedBuffer<BucketNode>(num_buckets, kCacheLineSize);
  for (BucketNode& b : buckets_) {
    b.tuples[0].key = BucketNode::kEmptySlotKey;
    b.tuples[1].key = BucketNode::kEmptySlotKey;
  }
  uint64_t first = options.initial_overflow_capacity;
  if (first == 0) first = std::max<uint64_t>(64, expected_live / 4);
  slabs_.push_back(std::make_unique<Slab>(first));
  current_slab_.store(slabs_.back().get(), std::memory_order_release);
}

ConcurrentChainedTable::~ConcurrentChainedTable() = default;

void ConcurrentChainedTable::InitNode(BucketNode* node) {
  // The node is unreachable here (fresh slab slot, or recycled after its
  // epoch grace period); plain stores are ordered by the release store
  // that later links it.
  node->latch.ReleaseUnsync();
  node->count = 0;
  for (uint8_t& p : node->pad) p = 0;
  node->tuples[0] = Tuple{BucketNode::kEmptySlotKey, 0};
  node->tuples[1] = Tuple{BucketNode::kEmptySlotKey, 0};
  node->next = nullptr;
}

BucketNode* ConcurrentChainedTable::AllocNode() {
  if (free_count_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(free_mu_);
    if (!free_.empty()) {
      BucketNode* node = free_.back();
      free_.pop_back();
      free_count_.fetch_sub(1, std::memory_order_relaxed);
      recycled_nodes_.fetch_add(1, std::memory_order_relaxed);
      InitNode(node);
      return node;
    }
  }
  for (;;) {
    Slab* slab = current_slab_.load(std::memory_order_acquire);
    const uint64_t i = slab->used.fetch_add(1, std::memory_order_relaxed);
    if (i < slab->nodes.size()) {
      BucketNode* node = &slab->nodes[i];
      allocated_nodes_.fetch_add(1, std::memory_order_relaxed);
      InitNode(node);
      return node;
    }
    std::lock_guard<std::mutex> lock(alloc_mu_);
    if (current_slab_.load(std::memory_order_acquire) == slab) {
      slabs_.push_back(std::make_unique<Slab>(slab->nodes.size() * 2));
      current_slab_.store(slabs_.back().get(), std::memory_order_release);
    }
  }
}

void ConcurrentChainedTable::RecycleNode(void* obj, void* ctx) {
  auto* table = static_cast<ConcurrentChainedTable*>(ctx);
  auto* node = static_cast<BucketNode*>(obj);
  std::lock_guard<std::mutex> lock(table->free_mu_);
  table->free_.push_back(node);
  table->free_count_.fetch_add(1, std::memory_order_relaxed);
}

bool ConcurrentChainedTable::UpsertLocked(BucketNode* head, int64_t key,
                                          int64_t payload,
                                          EpochGuard& guard) {
  // A stored sentinel key would be indistinguishable from an unclaimed
  // slot for both the latch-free reader and the vectorized gathers; the
  // concurrent table rejects it outright instead of carrying a
  // has_sentinel_key escape hatch through every reader.
  AMAC_CHECK_MSG(key != BucketNode::kEmptySlotKey,
                 "kEmptySlotKey is reserved in ConcurrentChainedTable");
  (void)guard;
  BucketNode* claim_node = nullptr;
  BucketNode* tail = head;
  for (BucketNode* node = head; node != nullptr;
       node = LoadNextRelaxed(node)) {
    for (uint32_t i = 0; i < node->count; ++i) {
      if (LoadKeyRelaxed(node->tuples[i]) == key) {
        StorePayloadRelaxed(node->tuples[i], payload);
        return false;
      }
    }
    if (claim_node == nullptr && node->count < BucketNode::kTuplesPerNode) {
      claim_node = node;
    }
    tail = node;
  }
  if (claim_node != nullptr) {
    // Claim-once: this slot index has never held a key in this node
    // incarnation.  Payload first, then the key's release store, then the
    // (reader-invisible) claim count.
    Tuple& slot = claim_node->tuples[claim_node->count];
    StorePayloadRelaxed(slot, payload);
    StoreKeyRelease(slot, key);
    StoreCountRelaxed(claim_node, claim_node->count + 1);
  } else {
    BucketNode* node = AllocNode();
    node->tuples[0] = Tuple{key, payload};
    node->count = 1;
    StoreNextRelease(tail, node);  // publication
  }
  live_keys_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ConcurrentChainedTable::EraseLocked(BucketNode* head, int64_t key,
                                         EpochGuard& guard) {
  // The sentinel is never stored (UpsertLocked rejects it) and would
  // false-match tombstoned slots below.
  if (AMAC_UNLIKELY(key == BucketNode::kEmptySlotKey)) return false;
  for (BucketNode* node = head; node != nullptr;
       node = LoadNextRelaxed(node)) {
    for (uint32_t i = 0; i < node->count; ++i) {
      if (LoadKeyRelaxed(node->tuples[i]) != key) continue;
      // Tombstone: the slot key goes back to the sentinel and the slot is
      // dead for this incarnation (claim-once).  Readers mid-pair see
      // either (key, payload) — linearized before the erase — or the
      // sentinel.
      StoreKeyRelease(node->tuples[i], BucketNode::kEmptySlotKey);
      live_keys_.fetch_sub(1, std::memory_order_relaxed);
      // head->pad[0] counts this bucket's tombstones; latch-protected,
      // never read by the latch-free paths.
      if (compact_tombstones_ != 0 &&
          ++head->pad[0] >= compact_tombstones_) {
        head->pad[0] = 0;
        CompactLocked(head, guard);
      }
      return true;
    }
  }
  return false;
}

void ConcurrentChainedTable::CompactLocked(BucketNode* head,
                                           EpochGuard& guard) {
  compactions_.fetch_add(1, std::memory_order_relaxed);
  BucketNode* prev = head;
  BucketNode* node = LoadNextRelaxed(head);
  while (node != nullptr) {
    BucketNode* next = LoadNextRelaxed(node);
    const bool dead =
        node->count == BucketNode::kTuplesPerNode &&
        LoadKeyRelaxed(node->tuples[0]) == BucketNode::kEmptySlotKey &&
        LoadKeyRelaxed(node->tuples[1]) == BucketNode::kEmptySlotKey;
    if (dead) {
      // Unlink but leave the node's own next intact: a reader already on
      // the node keeps a valid path to the rest of the chain until the
      // grace period ends and the node recycles through the free list.
      StoreNextRelease(prev, next);
      retired_nodes_.fetch_add(1, std::memory_order_relaxed);
      guard.Retire(node, &ConcurrentChainedTable::RecycleNode, this);
    } else {
      prev = node;
    }
    node = next;
  }
}

bool ConcurrentChainedTable::Upsert(int64_t key, int64_t payload,
                                    EpochGuard& guard) {
  BucketNode* head = BucketForKey(key);
  LatchGuard latch(head->latch);
  return UpsertLocked(head, key, payload, guard);
}

bool ConcurrentChainedTable::Erase(int64_t key, EpochGuard& guard) {
  BucketNode* head = BucketForKey(key);
  LatchGuard latch(head->latch);
  return EraseLocked(head, key, guard);
}

bool ConcurrentChainedTable::Find(int64_t key, int64_t* payload) const {
  if (AMAC_UNLIKELY(key == BucketNode::kEmptySlotKey)) return false;
  for (const BucketNode* node = BucketForKey(key); node != nullptr;
       node = LoadNextAcquire(node)) {
    // Both slots unconditionally (the slot-sentinel invariant): an
    // unclaimed or tombstoned slot holds the sentinel and cannot match.
    for (uint32_t i = 0; i < BucketNode::kTuplesPerNode; ++i) {
      if (LoadKeyAcquire(node->tuples[i]) == key) {
        *payload = LoadPayloadRelaxed(node->tuples[i]);
        return true;
      }
    }
  }
  return false;
}

ConcurrentChainedTable::Audit ConcurrentChainedTable::AuditQuiesced() const {
  Audit audit;
  std::unordered_set<int64_t> seen;
  bool ok = true;
  for (uint64_t b = 0; b < buckets_.size(); ++b) {
    uint64_t chain = 0;
    for (const BucketNode* node = &buckets_[b]; node != nullptr;
         node = LoadNextRelaxed(node)) {
      ++chain;
      if (node != &buckets_[b]) ++audit.chain_nodes;
      for (uint32_t i = 0; i < BucketNode::kTuplesPerNode; ++i) {
        const int64_t key = LoadKeyRelaxed(node->tuples[i]);
        if (i >= node->count) {
          // Slot-sentinel invariant: unclaimed slots hold the sentinel.
          if (key != BucketNode::kEmptySlotKey) ok = false;
          continue;
        }
        if (key == BucketNode::kEmptySlotKey) {
          ++audit.dead_slots;
          continue;
        }
        ++audit.live_tuples;
        if (BucketIndex(key) != b) ok = false;      // misplaced key
        if (!seen.insert(key).second) ok = false;   // duplicate key
      }
    }
    audit.max_chain = std::max(audit.max_chain, chain);
  }
  if (audit.live_tuples != live_keys()) ok = false;
  audit.ok = ok;
  return audit;
}

void ConcurrentChainedTable::CollectLive(std::vector<Tuple>* out) const {
  for (const BucketNode& head : buckets_) {
    for (const BucketNode* node = &head; node != nullptr;
         node = LoadNextRelaxed(node)) {
      for (uint32_t i = 0; i < node->count; ++i) {
        const int64_t key = LoadKeyRelaxed(node->tuples[i]);
        if (key == BucketNode::kEmptySlotKey) continue;
        out->push_back(Tuple{key, LoadPayloadRelaxed(node->tuples[i])});
      }
    }
  }
}

}  // namespace amac
