// Chain-length trace extraction for the memory-system model.
//
// The model replays the *actual* dependent-access counts the real operators
// perform: we walk the real chained hash table with the real probe relation
// and record how many nodes each lookup visits.  This ties the simulated
// scalability curves (Fig 7/8, Table 4) to the same workload irregularity
// the measured single-core experiments use.
#pragma once

#include <cstdint>
#include <vector>

#include "hashtable/chained_table.h"
#include "relation/relation.h"

namespace amac::memsim {

/// Nodes visited per probe lookup (early_exit stops at the first match).
std::vector<uint32_t> CollectWalkLengths(const ChainedHashTable& table,
                                         const Relation& probe,
                                         bool early_exit);

/// Synthetic traces for tests: every lookup visits exactly `nodes` nodes.
std::vector<uint32_t> FixedWalkLengths(uint64_t lookups, uint32_t nodes);

}  // namespace amac::memsim

// Extractors for the other operators (declared in amac:: to keep their
// dependencies one-directional).
namespace amac {
class BinarySearchTree;
class SkipList;
class AggregateTable;
}  // namespace amac

namespace amac::memsim {

/// Nodes visited per BST search (path length to match or leaf).
std::vector<uint32_t> CollectBstWalkLengths(const BinarySearchTree& tree,
                                            const Relation& probe);

/// Candidate nodes visited per skip list search.
std::vector<uint32_t> CollectSkipWalkLengths(const SkipList& list,
                                             const Relation& probe);

/// Chain nodes visited per group-by tuple against a populated table.
std::vector<uint32_t> CollectGroupByWalkLengths(const AggregateTable& table,
                                                const Relation& input);

}  // namespace amac::memsim
