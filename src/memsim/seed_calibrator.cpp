#include "memsim/seed_calibrator.h"

#include <algorithm>

#include "common/macros.h"

namespace amac::memsim {

std::vector<GridPoint> DefaultSeedGrid() {
  std::vector<GridPoint> grid;
  grid.push_back(GridPoint{ExecPolicy::kSequential, 1});
  for (const ExecPolicy policy :
       {ExecPolicy::kGroupPrefetch, ExecPolicy::kSoftwarePipelined,
        ExecPolicy::kAmac, ExecPolicy::kCoroutine}) {
    for (const uint32_t m : {4u, 10u, 16u, 32u}) {
      grid.push_back(GridPoint{policy, m});
    }
  }
  return grid;
}

SeedResult SeedCalibrator(const MachineConfig& machine,
                          const AccessTrace& trace,
                          const WorkloadSignature& signature,
                          Calibrator* calibrator,
                          const SeedOptions& options) {
  AMAC_CHECK(trace.lookups() > 0);
  const std::vector<GridPoint> grid =
      options.grid.empty() ? DefaultSeedGrid() : options.grid;
  const uint64_t lookups =
      options.lookups_per_thread > 0
          ? options.lookups_per_thread
          : std::min<uint64_t>(trace.lookups(), 8192);

  SeedResult out;
  out.table.reserve(grid.size());
  for (const GridPoint& point : grid) {
    SimConfig sim;
    sim.policy = point.policy;
    sim.inflight = point.inflight;
    sim.stages = options.stages;
    sim.num_threads = std::max(1u, options.num_threads);
    sim.lookups_per_thread = lookups;
    sim.trace = &trace;
    sim.prefetcher = options.prefetcher;
    SeedEntry entry;
    entry.point = point;
    entry.sim = Simulate(machine, sim);
    entry.cycles_per_input =
        entry.sim.CyclesPerLookup() * options.cycles_scale;
    out.table.push_back(std::move(entry));
  }
  std::sort(out.table.begin(), out.table.end(),
            [](const SeedEntry& a, const SeedEntry& b) {
              return a.cycles_per_input < b.cycles_per_input;
            });
  // Sub-1% cycle differences are below the model's resolution (in a
  // memory-bound regime the stage instruction cost hides entirely behind
  // latency, so e.g. AMAC and its coroutine-framed variant simulate
  // near-identically).  Within each run of near-tied entries, rank the
  // engine with the cheaper stage first: at equal modeled cycles the
  // lighter code path can only be faster on real hardware.
  constexpr double kTiePrecision = 0.01;
  const EngineCosts costs{};
  size_t run_begin = 0;
  for (size_t i = 1; i <= out.table.size(); ++i) {
    const bool tied =
        i < out.table.size() &&
        out.table[i].cycles_per_input <=
            out.table[run_begin].cycles_per_input * (1.0 + kTiePrecision);
    if (tied) continue;
    std::sort(out.table.begin() + run_begin, out.table.begin() + i,
              [&costs](const SeedEntry& a, const SeedEntry& b) {
                const double ca = costs.StageInstr(a.point.policy);
                const double cb = costs.StageInstr(b.point.policy);
                if (ca != cb) return ca < cb;
                if (a.cycles_per_input != b.cycles_per_input) {
                  return a.cycles_per_input < b.cycles_per_input;
                }
                if (a.point.policy != b.point.policy) {
                  return a.point.policy < b.point.policy;
                }
                return a.point.inflight < b.point.inflight;
              });
    run_begin = i;
  }
  out.winner = out.table.front().point;
  out.winner_cycles_per_input = out.table.front().cycles_per_input;

  if (calibrator != nullptr) {
    CalibrationResult result;
    result.winner = out.winner;
    result.winner_cycles_per_input = out.winner_cycles_per_input;
    // Best simulated half, best-first — the same shape a measured first
    // halving would bank, so exploration and re-tunes work identically.
    const size_t keep = (out.table.size() + 1) / 2;
    result.survivors.reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      result.survivors.push_back(out.table[i].point);
    }
    result.from_sim = true;
    out.stored = calibrator->StoreSeed(signature, result);
  }
  return out;
}

}  // namespace amac::memsim
