#include "memsim/cache/cache.h"

#include <algorithm>

#include "common/macros.h"

namespace amac::memsim {

namespace {
constexpr uint64_t kLineBytes = 64;
uint64_t BlockOf(uint64_t addr) { return addr / kLineBytes; }
}  // namespace

HierarchyConfig HierarchyConfig::XeonX5670() {
  HierarchyConfig h;
  h.l1d = CacheLevelConfig{64, 8, 4, 10};       // 32 KB, MSHRs = paper's 10
  h.l2 = CacheLevelConfig{512, 8, 10, 16};      // 256 KB
  h.llc = CacheLevelConfig{12288, 16, 40, 32};  // 12 MB shared
  h.dram = DramConfig{8, 8192, 100, 160};       // 40 + 160 = flat 200
  return h;
}

HierarchyConfig HierarchyConfig::SparcT4() {
  HierarchyConfig h;
  h.l1d = CacheLevelConfig{64, 4, 4, 10};      // 16 KB
  h.l2 = CacheLevelConfig{256, 8, 12, 16};     // 128 KB
  h.llc = CacheLevelConfig{4096, 16, 50, 128}; // 4 MB shared L3
  h.dram = DramConfig{8, 8192, 130, 190};      // 50 + 190 = flat 240
  return h;
}

// ---------------------------------------------------------------------------
// CacheLevel

CacheLevel::CacheLevel(uint32_t sets, uint32_t ways)
    : sets_(sets), ways_(ways), lines_(size_t{sets} * ways) {
  AMAC_CHECK(sets >= 1 && ways >= 1);
}

CacheLevel::Line* CacheLevel::Find(uint64_t addr) {
  const uint64_t block = BlockOf(addr);
  const uint64_t tag = block / sets_;
  Line* set = &lines_[(block % sets_) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].valid && set[w].tag == tag) return &set[w];
  }
  return nullptr;
}

const CacheLevel::Line* CacheLevel::Find(uint64_t addr) const {
  return const_cast<CacheLevel*>(this)->Find(addr);
}

bool CacheLevel::Probe(uint64_t addr) const { return Find(addr) != nullptr; }

bool CacheLevel::Touch(uint64_t addr, bool is_write) {
  Line* line = Find(addr);
  if (line == nullptr) return false;
  line->lru = ++clock_;
  line->dirty = line->dirty || is_write;
  return true;
}

bool CacheLevel::ConsumePrefetchedFlag(uint64_t addr) {
  Line* line = Find(addr);
  if (line == nullptr || !line->prefetched) return false;
  line->prefetched = false;
  return true;
}

CacheLevel::Victim CacheLevel::Fill(uint64_t addr, bool is_write,
                                    bool prefetched) {
  AMAC_DCHECK(Find(addr) == nullptr);
  const uint64_t block = BlockOf(addr);
  const uint64_t tag = block / sets_;
  Line* set = &lines_[(block % sets_) * ways_];
  Line* victim = &set[0];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (!set[w].valid) {
      victim = &set[w];
      break;
    }
    if (set[w].lru < victim->lru) victim = &set[w];
  }
  Victim out;
  if (victim->valid) {
    ++evictions;
    out.valid = true;
    out.addr = victim->tag * sets_ * kLineBytes +
               (block % sets_) * kLineBytes;
    out.dirty = victim->dirty;
    if (victim->dirty) ++writebacks;
  }
  *victim = Line{tag, ++clock_, true, is_write, prefetched};
  return out;
}

CacheLevel::Invalidated CacheLevel::Invalidate(uint64_t addr) {
  Line* line = Find(addr);
  if (line == nullptr) return Invalidated{};
  Invalidated out{true, line->dirty};
  *line = Line{};
  return out;
}

void CacheLevel::MarkDirty(uint64_t addr) {
  Line* line = Find(addr);
  if (line != nullptr) line->dirty = true;
}

std::vector<uint64_t> CacheLevel::ResidentLines() const {
  std::vector<uint64_t> out;
  for (uint32_t set = 0; set < sets_; ++set) {
    for (uint32_t w = 0; w < ways_; ++w) {
      const Line& line = lines_[size_t{set} * ways_ + w];
      if (line.valid) {
        out.push_back((line.tag * sets_ + set) * kLineBytes);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// CacheHierarchy

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config,
                               uint32_t num_cores, uint32_t cores_per_socket,
                               PrefetcherKind prefetcher)
    : cfg_(config), cores_per_socket_(std::max(1u, cores_per_socket)) {
  const uint32_t sockets =
      (num_cores + cores_per_socket_ - 1) / cores_per_socket_;
  for (uint32_t c = 0; c < num_cores; ++c) {
    l1_.emplace_back(cfg_.l1d.sets, cfg_.l1d.ways);
    l2_.emplace_back(cfg_.l2.sets, cfg_.l2.ways);
    prefetchers_.push_back(MakePrefetcher(prefetcher));
  }
  for (uint32_t s = 0; s < sockets; ++s) {
    llc_.emplace_back(cfg_.llc.sets, cfg_.llc.ways);
    dram_.push_back(
        DramChannel{std::vector<uint64_t>(cfg_.dram.banks, UINT64_MAX)});
  }
}

MemLevel CacheHierarchy::Classify(uint32_t core, uint64_t addr) const {
  if (l1_[core].Probe(addr)) return MemLevel::kL1;
  if (l2_[core].Probe(addr)) return MemLevel::kL2;
  if (llc_[SocketOf(core)].Probe(addr)) return MemLevel::kLLC;
  return MemLevel::kDram;
}

uint32_t CacheHierarchy::DramLatency(uint32_t socket, uint64_t addr,
                                     bool* row_hit) {
  DramChannel& ch = dram_[socket];
  const uint32_t bank =
      static_cast<uint32_t>((addr / cfg_.dram.row_bytes) % cfg_.dram.banks);
  const uint64_t row = addr / (uint64_t{cfg_.dram.row_bytes} *
                               cfg_.dram.banks);
  *row_hit = ch.open_row[bank] == row;
  ch.open_row[bank] = row;
  if (*row_hit) {
    ++stats_.dram_row_hits;
    return cfg_.dram.row_hit_latency;
  }
  return cfg_.dram.row_miss_latency;
}

void CacheHierarchy::FillLevel(MemLevel level, uint32_t core, uint64_t addr,
                               bool is_write, bool prefetched) {
  const uint32_t socket = SocketOf(core);
  switch (level) {
    case MemLevel::kL1: {
      const CacheLevel::Victim v = l1_[core].Fill(addr, is_write, false);
      if (v.valid && v.dirty) {
        // Write-back into L2 (inclusion guarantees the line is there).
        l2_[core].MarkDirty(v.addr);
        ++stats_.writebacks;
      }
      break;
    }
    case MemLevel::kL2: {
      const CacheLevel::Victim v = l2_[core].Fill(addr, false, prefetched);
      if (v.valid) {
        // L1 <= L2 inclusion: the victim leaves the core entirely.
        const CacheLevel::Invalidated inv = l1_[core].Invalidate(v.addr);
        if (v.dirty || inv.dirty) {
          llc_[socket].MarkDirty(v.addr);
          ++stats_.writebacks;
        }
      }
      break;
    }
    case MemLevel::kLLC: {
      const CacheLevel::Victim v =
          llc_[socket].Fill(addr, false, prefetched);
      if (v.valid) {
        // Inclusive LLC: back-invalidate the socket's private levels.
        bool dirty = v.dirty;
        const uint32_t first = socket * cores_per_socket_;
        for (uint32_t c = first;
             c < first + cores_per_socket_ && c < l1_.size(); ++c) {
          dirty = l2_[c].Invalidate(v.addr).dirty || dirty;
          dirty = l1_[c].Invalidate(v.addr).dirty || dirty;
        }
        if (dirty) ++stats_.writebacks;  // posted DRAM write
      }
      break;
    }
    case MemLevel::kDram: break;
  }
}

CacheHierarchy::AccessOutcome CacheHierarchy::Access(uint32_t core,
                                                     uint64_t addr,
                                                     uint32_t pc,
                                                     bool is_write,
                                                     uint64_t now) {
  AccessOutcome out;
  if (l1_[core].Touch(addr, is_write)) {
    ++stats_.l1_hits;
    out.level = MemLevel::kL1;
    out.latency = cfg_.l1d.latency;
    return out;  // L1 hits are invisible to L2 and the prefetcher
  }
  ++stats_.l1_misses;
  const uint32_t socket = SocketOf(core);
  const bool l2_hit = l2_[core].Touch(addr, false);
  if (l2_hit) {
    ++stats_.l2_hits;
    out.level = MemLevel::kL2;
    out.latency = cfg_.l2.latency;
  } else {
    ++stats_.l2_misses;
    if (llc_[socket].Touch(addr, false)) {
      ++stats_.llc_hits;
      out.level = MemLevel::kLLC;
      out.latency = cfg_.llc.latency;
    } else {
      ++stats_.llc_misses;
      ++stats_.dram_accesses;
      out.level = MemLevel::kDram;
      out.latency =
          cfg_.llc.latency + DramLatency(socket, addr, &out.dram_row_hit);
      FillLevel(MemLevel::kLLC, core, addr, false, false);
    }
    FillLevel(MemLevel::kL2, core, addr, false, false);
  }
  FillLevel(MemLevel::kL1, core, addr, is_write, false);
  if (out.level == MemLevel::kDram) {
    // The line was not cached: drop any stale in-flight record (a
    // prefetched line can be evicted before its demand arrives).
    fill_ready_.erase(BlockOf(addr));
  } else {
    // Prefetch accounting: first demand touch of a prefetched line is the
    // "useful" credit; a fill still in flight makes it useful-but-late and
    // the demand waits out the remainder.
    const bool was_prefetched = l2_[core].ConsumePrefetchedFlag(addr) |
                                llc_[socket].ConsumePrefetchedFlag(addr);
    if (was_prefetched) ++stats_.prefetches_useful;
    const auto it = fill_ready_.find(BlockOf(addr));
    if (it != fill_ready_.end()) {
      if (it->second > now) {
        ++stats_.prefetches_late;
        out.latency = std::max<uint64_t>(out.latency, it->second - now);
      }
      fill_ready_.erase(it);
    }
  }
  prefetchers_[core]->Train(addr, pc, l2_hit, &out.prefetch_candidates);
  return out;
}

CacheHierarchy::PrefetchPlan CacheHierarchy::PlanPrefetch(
    uint32_t core, uint64_t addr) const {
  PrefetchPlan plan;
  if (l2_[core].Probe(addr) ||
      fill_ready_.find(BlockOf(addr)) != fill_ready_.end()) {
    plan.filtered = true;
    return plan;
  }
  plan.dram = !llc_[SocketOf(core)].Probe(addr);
  return plan;
}

uint32_t CacheHierarchy::CommitPrefetch(uint32_t core, uint64_t addr,
                                        bool dram, uint64_t now) {
  const uint32_t socket = SocketOf(core);
  uint32_t latency = cfg_.llc.latency;
  if (dram) {
    bool row_hit = false;
    ++stats_.dram_accesses;
    latency += DramLatency(socket, addr, &row_hit);
    FillLevel(MemLevel::kLLC, core, addr, false, true);
  }
  FillLevel(MemLevel::kL2, core, addr, false, true);
  fill_ready_[BlockOf(addr)] = now + latency;
  ++stats_.prefetches_issued;
  return latency;
}

bool CacheHierarchy::CheckInclusive() const {
  for (uint32_t c = 0; c < l1_.size(); ++c) {
    const CacheLevel& llc = llc_[SocketOf(c)];
    for (const uint64_t addr : l1_[c].ResidentLines()) {
      if (!l2_[c].Probe(addr) || !llc.Probe(addr)) return false;
    }
    for (const uint64_t addr : l2_[c].ResidentLines()) {
      if (!llc.Probe(addr)) return false;
    }
  }
  return true;
}

}  // namespace amac::memsim
