// Pluggable hardware-prefetcher models for the cache hierarchy.
//
// The paper's software schedules (GP/SPP/AMAC) exist because the HARDWARE
// prefetcher cannot learn dependent pointer chains — its pattern tables
// key on program counters and address deltas, and a hash-probe's next
// address is data-dependent noise.  Modeling the hardware side makes that
// argument quantitative: the same hierarchy run under a stride prefetcher
// shows near-perfect coverage on a sequential scan and near-zero on the
// probe trace, and every useless prefetch costs a real LLC-queue slot.
//
// Prefetchers train on the L2 access stream (demand L1 misses), the
// conventional placement: the L1 stream is too hot to snoop and the LLC
// stream too filtered to learn from.  Emitted candidates are line
// addresses; the simulator decides fills, queue occupancy, and drops.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace amac::memsim {

enum class PrefetcherKind : uint8_t {
  kNone,      ///< no hardware prefetching
  kNextLine,  ///< fetch addr + 64 on every training access
  kStride,    ///< per-pc stride table with confidence (IP-stride)
  kSpp,       ///< signature-path prefetcher (spp.h)
};

inline const char* PrefetcherKindName(PrefetcherKind k) {
  switch (k) {
    case PrefetcherKind::kNone: return "none";
    case PrefetcherKind::kNextLine: return "next-line";
    case PrefetcherKind::kStride: return "ip-stride";
    case PrefetcherKind::kSpp: return "spp";
  }
  return "?";
}

/// One hardware prefetch engine (per core, like the real ones).  Train()
/// observes a demand access and appends any prefetch candidates (line-
/// aligned byte addresses) to `out`.  Implementations are deterministic:
/// identical access sequences produce identical candidate sequences.
class HwPrefetcher {
 public:
  virtual ~HwPrefetcher() = default;
  /// `addr` is the demanded byte address, `pc` the synthetic load tag from
  /// the trace, `l2_hit` whether the access hit in L2 (prefetchers throttle
  /// on hits to avoid runaway streams).
  virtual void Train(uint64_t addr, uint32_t pc, bool l2_hit,
                     std::vector<uint64_t>* out) = 0;
  virtual const char* name() const = 0;
};

/// Factory over PrefetcherKind; kNone returns an engine that never emits.
std::unique_ptr<HwPrefetcher> MakePrefetcher(PrefetcherKind kind);

/// Degree-1 next-line: the simplest real prefetcher, fetches the
/// successor line of every training access.  High coverage on sequential
/// streams, pure pollution on pointer chases.
class NextLinePrefetcher final : public HwPrefetcher {
 public:
  void Train(uint64_t addr, uint32_t pc, bool l2_hit,
             std::vector<uint64_t>* out) override;
  const char* name() const override { return "next-line"; }
};

/// IP-stride: a small direct-mapped table keyed by pc holding the last
/// address and a confirmed stride; two consecutive matching deltas arm the
/// entry, after which it runs `degree` strides ahead.
class IpStridePrefetcher final : public HwPrefetcher {
 public:
  explicit IpStridePrefetcher(uint32_t degree = 4) : degree_(degree) {}
  void Train(uint64_t addr, uint32_t pc, bool l2_hit,
             std::vector<uint64_t>* out) override;
  const char* name() const override { return "ip-stride"; }

 private:
  struct Entry {
    bool valid = false;
    uint32_t pc = 0;
    uint64_t last_addr = 0;
    int64_t stride = 0;
    uint32_t confidence = 0;  ///< consecutive confirmations, saturating
  };
  static constexpr size_t kEntries = 64;
  const uint32_t degree_;
  Entry table_[kEntries];
};

}  // namespace amac::memsim
