#include "memsim/cache/prefetcher.h"

#include "memsim/cache/spp.h"

namespace amac::memsim {

namespace {

class NoPrefetcher final : public HwPrefetcher {
 public:
  void Train(uint64_t, uint32_t, bool, std::vector<uint64_t>*) override {}
  const char* name() const override { return "none"; }
};

}  // namespace

void NextLinePrefetcher::Train(uint64_t addr, uint32_t /*pc*/,
                               bool /*l2_hit*/,
                               std::vector<uint64_t>* out) {
  out->push_back((addr & ~63ull) + 64);
}

void IpStridePrefetcher::Train(uint64_t addr, uint32_t pc, bool /*l2_hit*/,
                               std::vector<uint64_t>* out) {
  Entry& e = table_[pc % kEntries];
  const uint64_t line = addr & ~63ull;
  if (!e.valid || e.pc != pc) {
    e = Entry{true, pc, line, 0, 0};
    return;
  }
  const int64_t delta = static_cast<int64_t>(line) -
                        static_cast<int64_t>(e.last_addr);
  e.last_addr = line;
  if (delta == 0) return;
  if (delta == e.stride) {
    if (e.confidence < 4) ++e.confidence;
  } else {
    e.stride = delta;
    e.confidence = 0;
    return;
  }
  if (e.confidence < 2) return;  // needs two confirmations to arm
  for (uint32_t k = 1; k <= degree_; ++k) {
    out->push_back(static_cast<uint64_t>(
        static_cast<int64_t>(line) + delta * static_cast<int64_t>(k)));
  }
}

std::unique_ptr<HwPrefetcher> MakePrefetcher(PrefetcherKind kind) {
  switch (kind) {
    case PrefetcherKind::kNone: return std::make_unique<NoPrefetcher>();
    case PrefetcherKind::kNextLine:
      return std::make_unique<NextLinePrefetcher>();
    case PrefetcherKind::kStride:
      return std::make_unique<IpStridePrefetcher>();
    case PrefetcherKind::kSpp: return std::make_unique<SppPrefetcher>();
  }
  return std::make_unique<NoPrefetcher>();
}

}  // namespace amac::memsim
