// Signature-path prefetcher (SPP) model, after Kim et al., MICRO'16 — the
// lookahead signature prefetcher ROADMAP item 4 names via ChampSim's
// spp_dev.
//
// SPP compresses a page's recent block-offset deltas into a 12-bit
// signature, learns "signature -> likely next delta" in a pattern table,
// and then speculatively WALKS that table: from the current signature it
// takes the most confident delta, prefetches it, folds the delta into a
// speculative signature, and repeats — going several dependent steps ahead
// of the demand stream.  A multiplicative path confidence (product of each
// step's delta confidence) throttles the walk: lookahead stops as soon as
// the compound probability drops below a threshold, which is what keeps
// SPP polite on irregular streams where no delta ever becomes confident.
//
// This is exactly the structural reason hardware prefetching loses on the
// paper's workloads: a hash probe's per-page delta sequence is noise, so
// pattern-table confidences stay near-uniform and the lookahead throttles
// after zero or one step, while a sequential scan saturates one delta and
// walks the full depth.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/cache/prefetcher.h"

namespace amac::memsim {

struct SppOptions {
  /// Minimum compound path confidence to keep prefetching along the
  /// signature walk.
  double confidence_threshold = 0.25;
  /// Maximum lookahead steps per training access.
  uint32_t max_depth = 8;
};

class SppPrefetcher final : public HwPrefetcher {
 public:
  explicit SppPrefetcher(const SppOptions& options = {})
      : options_(options) {}

  void Train(uint64_t addr, uint32_t pc, bool l2_hit,
             std::vector<uint64_t>* out) override;
  const char* name() const override { return "spp"; }

 private:
  static constexpr uint32_t kSigBits = 12;
  static constexpr uint32_t kSigMask = (1u << kSigBits) - 1;
  static constexpr uint32_t kBlockBits = 6;   ///< 64 B lines
  static constexpr uint32_t kPageBits = 12;   ///< 4 KB pages
  static constexpr uint32_t kBlocksPerPage = 1u << (kPageBits - kBlockBits);

  /// Per-page tracking: the last block offset seen and the running delta
  /// signature.  Direct-mapped with page tags, like the hardware table.
  struct SigEntry {
    bool valid = false;
    uint64_t page = 0;
    uint32_t last_offset = 0;
    uint32_t signature = 0;
  };
  /// Pattern-table row: up to 4 candidate deltas with per-delta counters
  /// plus a row counter; confidence(delta) = c_delta / c_sig.
  struct PatternEntry {
    struct DeltaSlot {
      int32_t delta = 0;
      uint32_t count = 0;
    };
    DeltaSlot deltas[4];
    uint32_t total = 0;
  };

  static uint32_t FoldDelta(uint32_t signature, int32_t delta) {
    // The MICRO'16 compression: shift-in the signed delta's low bits.
    return ((signature << 3) ^ static_cast<uint32_t>(delta)) & kSigMask;
  }

  /// Record `delta` as an outcome of `signature`; saturates and decays so
  /// stale patterns age out.
  void Learn(uint32_t signature, int32_t delta);
  /// Most confident delta of `signature`, or nullptr when the row has no
  /// data.  `confidence` gets c_delta / c_sig.
  const PatternEntry::DeltaSlot* BestDelta(uint32_t signature,
                                           double* confidence) const;

  static constexpr size_t kSigEntries = 256;
  static constexpr size_t kPatternEntries = 1u << kSigBits;
  static constexpr uint32_t kMaxCount = 15;  ///< 4-bit saturating counters

  const SppOptions options_;
  SigEntry sig_table_[kSigEntries];
  std::vector<PatternEntry> pattern_table_ =
      std::vector<PatternEntry>(kPatternEntries);
};

}  // namespace amac::memsim
