#include "memsim/cache/trace.h"

#include "bst/bst.h"
#include "common/macros.h"
#include "skiplist/skiplist.h"

namespace amac::memsim {

namespace {

/// SplitMix64 step: the deterministic scatter behind the pointer-chase
/// trace (same generator family as common/rng.h, inlined to keep the trace
/// layer dependency-free).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void BeginLookup(AccessTrace* trace) {
  if (trace->offsets.empty()) trace->offsets.push_back(0);
}

void EndLookup(AccessTrace* trace) {
  trace->offsets.push_back(static_cast<uint32_t>(trace->addrs.size()));
}

void Record(AccessTrace* trace, const void* node, uint32_t pc) {
  trace->addrs.push_back(reinterpret_cast<uint64_t>(node));
  trace->pcs.push_back(pc);
}

}  // namespace

std::vector<uint32_t> AccessTrace::ChainLengths() const {
  std::vector<uint32_t> lengths;
  lengths.reserve(lookups());
  for (uint64_t i = 0; i < lookups(); ++i) {
    lengths.push_back(std::max<uint32_t>(1, ChainLength(i)));
  }
  return lengths;
}

AccessTrace CollectAccessTrace(const ChainedHashTable& table,
                               const Relation& probe, bool early_exit) {
  AccessTrace trace;
  trace.addrs.reserve(probe.size() * 2);
  trace.offsets.reserve(probe.size() + 1);
  for (const Tuple& t : probe) {
    BeginLookup(&trace);
    const BucketNode* head = table.BucketForKey(t.key);
    for (const BucketNode* n = head; n != nullptr; n = n->next) {
      // pc 0 is the bucket-array load, pc 1 the overflow-chain load — the
      // two distinct load instructions of the real probe kernel.
      Record(&trace, n, n == head ? 0 : 1);
      if (early_exit) {
        bool matched = false;
        for (uint32_t i = 0; i < n->count; ++i) {
          if (n->tuples[i].key == t.key) {
            matched = true;
            break;
          }
        }
        if (matched) break;
      }
    }
    if (trace.addrs.size() == trace.offsets.back()) {
      // Empty bucket: the probe still touched the bucket array slot.
      Record(&trace, head != nullptr ? static_cast<const void*>(head)
                                     : static_cast<const void*>(&table),
             0);
    }
    EndLookup(&trace);
  }
  return trace;
}

AccessTrace CollectBstAccessTrace(const BinarySearchTree& tree,
                                  const Relation& probe) {
  AccessTrace trace;
  trace.offsets.reserve(probe.size() + 1);
  for (const Tuple& t : probe) {
    BeginLookup(&trace);
    const BstNode* node = tree.root();
    while (node != nullptr) {
      Record(&trace, node, 0);
      if (node->key == t.key) break;
      node = t.key < node->key ? node->left : node->right;
    }
    if (trace.addrs.size() == trace.offsets.back()) {
      Record(&trace, &tree, 0);
    }
    EndLookup(&trace);
  }
  return trace;
}

AccessTrace CollectSkipAccessTrace(const SkipList& list,
                                   const Relation& probe) {
  AccessTrace trace;
  trace.offsets.reserve(probe.size() + 1);
  for (const Tuple& t : probe) {
    BeginLookup(&trace);
    const SkipNode* cur = list.head();
    for (int32_t level = SkipList::kMaxLevel - 1; level >= 0; --level) {
      const SkipNode* cand = cur->next[level];
      while (cand != nullptr && cand->key < t.key) {
        // The search level is the closest analogue of "which load" here:
        // each level's traversal is a distinct access stream.
        Record(&trace, cand, static_cast<uint32_t>(level));
        cur = cand;
        cand = cur->next[level];
      }
      if (cand != nullptr && cand->key == t.key) {
        Record(&trace, cand, static_cast<uint32_t>(level));
        break;
      }
    }
    if (trace.addrs.size() == trace.offsets.back()) {
      Record(&trace, list.head(), 0);
    }
    EndLookup(&trace);
  }
  return trace;
}

AccessTrace StrideAccessTrace(uint64_t lookups, uint32_t chain_length,
                              uint64_t stride_bytes, uint64_t base) {
  AMAC_CHECK(chain_length >= 1 && stride_bytes >= 1);
  AccessTrace trace;
  trace.addrs.reserve(lookups * chain_length);
  trace.offsets.reserve(lookups + 1);
  uint64_t addr = base;
  for (uint64_t i = 0; i < lookups; ++i) {
    BeginLookup(&trace);
    for (uint32_t k = 0; k < chain_length; ++k) {
      trace.addrs.push_back(addr);
      trace.pcs.push_back(0);
      addr += stride_bytes;
    }
    EndLookup(&trace);
  }
  return trace;
}

AccessTrace PointerChaseAccessTrace(uint64_t lookups, uint32_t chain_length,
                                    uint64_t region_bytes, uint64_t seed) {
  AMAC_CHECK(chain_length >= 1 && region_bytes >= 64);
  const uint64_t lines = region_bytes / 64;
  AccessTrace trace;
  trace.addrs.reserve(lookups * chain_length);
  trace.offsets.reserve(lookups + 1);
  uint64_t state = seed;
  for (uint64_t i = 0; i < lookups; ++i) {
    BeginLookup(&trace);
    for (uint32_t k = 0; k < chain_length; ++k) {
      state = Mix64(state);
      trace.addrs.push_back(0x4000'0000ull + (state % lines) * 64);
      trace.pcs.push_back(0);
    }
    EndLookup(&trace);
  }
  return trace;
}

}  // namespace amac::memsim
