#include "memsim/cache/spp.h"

namespace amac::memsim {

void SppPrefetcher::Learn(uint32_t signature, int32_t delta) {
  PatternEntry& row = pattern_table_[signature & kSigMask];
  if (row.total >= kMaxCount * 4) {
    // Decay: halve everything so new behavior can displace old patterns.
    row.total = 0;
    for (auto& slot : row.deltas) {
      slot.count /= 2;
      row.total += slot.count;
    }
  }
  ++row.total;
  PatternEntry::DeltaSlot* victim = &row.deltas[0];
  for (auto& slot : row.deltas) {
    if (slot.count != 0 && slot.delta == delta) {
      if (slot.count < kMaxCount * 4) ++slot.count;
      return;
    }
    if (slot.count < victim->count) victim = &slot;
  }
  victim->delta = delta;
  victim->count = 1;
}

const SppPrefetcher::PatternEntry::DeltaSlot* SppPrefetcher::BestDelta(
    uint32_t signature, double* confidence) const {
  const PatternEntry& row = pattern_table_[signature & kSigMask];
  if (row.total == 0) return nullptr;
  const PatternEntry::DeltaSlot* best = nullptr;
  for (const auto& slot : row.deltas) {
    if (slot.count == 0) continue;
    if (best == nullptr || slot.count > best->count) best = &slot;
  }
  if (best == nullptr) return nullptr;
  *confidence =
      static_cast<double>(best->count) / static_cast<double>(row.total);
  return best;
}

void SppPrefetcher::Train(uint64_t addr, uint32_t /*pc*/, bool /*l2_hit*/,
                          std::vector<uint64_t>* out) {
  const uint64_t page = addr >> kPageBits;
  const uint32_t offset =
      static_cast<uint32_t>((addr >> kBlockBits) & (kBlocksPerPage - 1));
  SigEntry& entry = sig_table_[page % kSigEntries];
  if (!entry.valid || entry.page != page) {
    // New page (or a conflict evicting an old one): start tracking; no
    // delta to learn from yet, so no prefetches either.  Real SPP
    // bootstraps cross-page signatures through a global history register;
    // this model accepts the one-access warmup per page.
    entry = SigEntry{true, page, offset, 0};
    return;
  }
  const int32_t delta =
      static_cast<int32_t>(offset) - static_cast<int32_t>(entry.last_offset);
  if (delta == 0) return;  // same line again: nothing to learn or fetch
  Learn(entry.signature, delta);
  entry.signature = FoldDelta(entry.signature, delta);
  entry.last_offset = offset;

  // Lookahead walk: follow the most confident delta path, compounding the
  // per-step confidence, until the product drops below the threshold, the
  // walk leaves the page, or the depth budget runs out.
  uint32_t spec_sig = entry.signature;
  int64_t spec_offset = offset;
  double path_confidence = 1.0;
  for (uint32_t depth = 0; depth < options_.max_depth; ++depth) {
    double step_confidence = 0;
    const PatternEntry::DeltaSlot* best = BestDelta(spec_sig,
                                                    &step_confidence);
    if (best == nullptr) return;
    path_confidence *= step_confidence;
    if (path_confidence < options_.confidence_threshold) return;
    spec_offset += best->delta;
    if (spec_offset < 0 ||
        spec_offset >= static_cast<int64_t>(kBlocksPerPage)) {
      return;  // page boundary: hardware prefetchers stop here
    }
    out->push_back((page << kPageBits) |
                   (static_cast<uint64_t>(spec_offset) << kBlockBits));
    spec_sig = FoldDelta(spec_sig, best->delta);
  }
}

}  // namespace amac::memsim
