// Multi-level cache hierarchy + DRAM model layered UNDER the MSHR/GQ
// scheduling model (memsim.h).
//
// The flat model answers "how do MSHRs and the LLC Global Queue throttle a
// schedule"; it cannot answer "why does this workload miss at all" — every
// access costs mem_latency regardless of locality.  This layer replays the
// real ADDRESSES (cache/trace.h) through an L1-D/L2/LLC hierarchy with
// true-LRU sets x ways, write-back/write-allocate, inclusive levels with
// back-invalidation, a row-buffer-aware DRAM model, and a pluggable
// hardware prefetcher (cache/prefetcher.h), so the simulator can report
// per-level miss rates and prefetch accuracy/coverage/timeliness for the
// same walks the measured kernels perform.
//
// Modeling conventions (documented in DESIGN.md):
//   * Tag/replacement state mutates atomically at issue time while the
//     DATA latency is paid through the event queue — the standard
//     trace-driven simplification; it keeps the model deterministic.
//   * Level latencies are TOTAL cycles from issue to data: an L2 hit costs
//     l2.latency (not l1 + l2), a DRAM access costs llc.latency plus the
//     row-buffer-dependent DRAM latency.  Presets are chosen so a DRAM
//     row miss equals the flat model's mem_latency.
//   * The hierarchy is inclusive: every L1/L2 line is also in the LLC; an
//     LLC eviction back-invalidates the socket's L1s/L2s (CheckInclusive
//     is the test hook for the invariant).
//   * Hardware prefetches fill L2 + LLC (not L1), train on the L2 demand
//     stream, and compete with demand misses for real LLC-queue slots —
//     the interference channel the scheduling model arbitrates.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "memsim/cache/prefetcher.h"

namespace amac::memsim {

/// One cache level's geometry.  `mshrs` bounds outstanding misses AT this
/// level (enforced by the scheduling model: the L1 value is the paper's
/// per-core L1-D MSHRs; the L2 value caps per-core L2 miss registers; the
/// LLC's miss queue is the machine's shared gq_entries).
struct CacheLevelConfig {
  uint32_t sets = 64;
  uint32_t ways = 8;
  uint32_t latency = 4;  ///< total cycles, issue -> data, on a hit here
  uint32_t mshrs = 16;
};

/// Open-row DRAM: each bank remembers its open row; a hit in the row
/// buffer is materially cheaper than precharge + activate + read.
struct DramConfig {
  uint32_t banks = 8;
  uint32_t row_bytes = 8192;
  uint32_t row_hit_latency = 100;   ///< beyond the LLC lookup
  uint32_t row_miss_latency = 160;  ///< beyond the LLC lookup
};

struct HierarchyConfig {
  CacheLevelConfig l1d;
  CacheLevelConfig l2;
  CacheLevelConfig llc;
  DramConfig dram;

  /// 32 KB/8w L1-D, 256 KB/8w L2, 12 MB/16w shared LLC; DRAM timed so an
  /// LLC row miss totals the flat model's 200 cycles.
  static HierarchyConfig XeonX5670();
  /// 16 KB/4w L1-D, 128 KB/8w L2, 4 MB/16w shared L3; totals 240 cycles.
  static HierarchyConfig SparcT4();
};

/// Where an access found its data.
enum class MemLevel : uint8_t { kL1 = 0, kL2, kLLC, kDram };

inline const char* MemLevelName(MemLevel l) {
  switch (l) {
    case MemLevel::kL1: return "L1";
    case MemLevel::kL2: return "L2";
    case MemLevel::kLLC: return "LLC";
    case MemLevel::kDram: return "DRAM";
  }
  return "?";
}

/// One set-associative level with true LRU.  Pure tag store — data never
/// exists, only placement/replacement/dirtiness metadata.
class CacheLevel {
 public:
  CacheLevel(uint32_t sets, uint32_t ways);

  /// Hit check without touching replacement state (classification peeks).
  bool Probe(uint64_t addr) const;
  /// Hit path: refresh LRU, fold in dirtiness.  False on miss (no fill).
  bool Touch(uint64_t addr, bool is_write);
  /// Was the hit line installed by a prefetch and not yet demanded?
  /// Clears the flag (first demand touch consumes the "useful" credit).
  bool ConsumePrefetchedFlag(uint64_t addr);

  struct Victim {
    bool valid = false;
    uint64_t addr = 0;
    bool dirty = false;
  };
  /// Allocate `addr` (must currently miss), evicting the set's LRU line.
  Victim Fill(uint64_t addr, bool is_write, bool prefetched);
  /// Back-invalidation; returns the line's dirtiness if it was present.
  struct Invalidated {
    bool present = false;
    bool dirty = false;
  };
  Invalidated Invalidate(uint64_t addr);
  /// Mark an already-present line dirty (write-back arriving from above).
  void MarkDirty(uint64_t addr);

  uint64_t hits = 0;        ///< demand hits (prefetch fills excluded)
  uint64_t misses = 0;      ///< demand misses
  uint64_t evictions = 0;
  uint64_t writebacks = 0;  ///< dirty victims pushed down

  uint32_t sets() const { return sets_; }
  uint32_t ways() const { return ways_; }
  /// Every valid line's address (inclusion checking).
  std::vector<uint64_t> ResidentLines() const;

 private:
  struct Line {
    uint64_t tag = 0;
    uint64_t lru = 0;  ///< larger = more recent
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  ///< installed by prefetch, not yet demanded
  };

  Line* Find(uint64_t addr);
  const Line* Find(uint64_t addr) const;

  uint32_t sets_;
  uint32_t ways_;
  uint64_t clock_ = 0;  ///< LRU stamp source
  std::vector<Line> lines_;
};

/// Snapshot of everything the hierarchy counted.
struct HierarchyStats {
  uint64_t l1_hits = 0, l1_misses = 0;
  uint64_t l2_hits = 0, l2_misses = 0;
  uint64_t llc_hits = 0, llc_misses = 0;  ///< llc_misses = demand DRAM trips
  uint64_t writebacks = 0;                ///< dirty evictions, all levels
  uint64_t dram_accesses = 0;             ///< demand + prefetch DRAM trips
  uint64_t dram_row_hits = 0;
  uint64_t prefetches_issued = 0;    ///< candidates that actually filled
  uint64_t prefetches_filtered = 0;  ///< already cached or in flight
  uint64_t prefetches_useful = 0;    ///< prefetched line later demanded
  uint64_t prefetches_late = 0;      ///< demanded before the fill arrived
};

/// The full hierarchy for one modeled machine: per-core L1-D + L2 +
/// prefetcher, per-socket shared LLC + DRAM channel.  NOT thread-safe
/// (driven by the single-threaded event loop).
class CacheHierarchy {
 public:
  CacheHierarchy(const HierarchyConfig& config, uint32_t num_cores,
                 uint32_t cores_per_socket, PrefetcherKind prefetcher);

  /// Non-mutating classification of where `addr` would hit for `core` —
  /// what the scheduling model consults BEFORE committing MSHR/GQ
  /// resources (a retry after backpressure must not re-train anything).
  MemLevel Classify(uint32_t core, uint64_t addr) const;

  struct AccessOutcome {
    MemLevel level = MemLevel::kDram;
    uint32_t latency = 0;  ///< total cycles, issue -> data
    bool dram_row_hit = false;
    /// Prefetch candidates the core's engine emitted while training on
    /// this access; the caller arbitrates queue slots and commits fills.
    std::vector<uint64_t> prefetch_candidates;
  };
  /// Commit a demand access: updates every level's tags/LRU (inclusive
  /// fills + back-invalidation), DRAM row buffers, prefetch-useful
  /// accounting, and trains the core's prefetcher.  `now` is the issue
  /// cycle (late-prefetch latency accounting).
  AccessOutcome Access(uint32_t core, uint64_t addr, uint32_t pc,
                       bool is_write, uint64_t now);

  struct PrefetchPlan {
    bool filtered = false;  ///< already in L2/LLC or already in flight
    bool dram = false;      ///< would miss the LLC: needs a queue slot
  };
  /// Peek-only arbitration input for one candidate.
  PrefetchPlan PlanPrefetch(uint32_t core, uint64_t addr) const;
  /// Commit one candidate (fills L2 + LLC, marks the in-flight window
  /// until `now + latency`).  Returns the fill latency.
  uint32_t CommitPrefetch(uint32_t core, uint64_t addr, bool dram,
                          uint64_t now);

  /// Filtered-candidate accounting (the caller runs the arbitration loop).
  void CountFilteredPrefetch() { ++stats_.prefetches_filtered; }

  const HierarchyStats& stats() const { return stats_; }
  /// Inclusion invariant: every valid L1/L2 line is resident in its
  /// socket's LLC.  Test hook; O(total lines).
  bool CheckInclusive() const;

 private:
  uint32_t SocketOf(uint32_t core) const { return core / cores_per_socket_; }
  uint32_t DramLatency(uint32_t socket, uint64_t addr, bool* row_hit);
  /// Install `addr` at `level` for `core`, handling victim write-back and
  /// (for the LLC) back-invalidation of the socket's upper levels.
  void FillLevel(MemLevel level, uint32_t core, uint64_t addr, bool is_write,
                 bool prefetched);

  const HierarchyConfig cfg_;
  const uint32_t cores_per_socket_;
  std::vector<CacheLevel> l1_;   ///< per core
  std::vector<CacheLevel> l2_;   ///< per core
  std::vector<CacheLevel> llc_;  ///< per socket
  struct DramChannel {
    std::vector<uint64_t> open_row;  ///< per bank; UINT64_MAX = closed
  };
  std::vector<DramChannel> dram_;  ///< per socket
  std::vector<std::unique_ptr<HwPrefetcher>> prefetchers_;  ///< per core
  /// Blocks with a prefetch fill in flight: block -> data-ready cycle.
  std::unordered_map<uint64_t, uint64_t> fill_ready_;
  HierarchyStats stats_;
};

}  // namespace amac::memsim
