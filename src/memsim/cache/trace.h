// Address-trace extraction for the cache-hierarchy model.
//
// workload.h reduces a lookup to its dependent-access COUNT, which is all
// the flat-latency model needs.  The hierarchy model (cache.h) needs the
// actual ADDRESSES: whether two probes share a cache line, whether a chain
// walks sequential pool slots or scattered heap nodes, and whether a
// hardware prefetcher can learn the stream all depend on them.  The
// collectors here replay the same walks as CollectWalkLengths and friends
// but record the real node addresses, so the simulated hierarchy sees the
// exact locality the measured kernels see.
//
// A trace is replayable and position-indexed, so the simulator stays
// deterministic for a fixed trace even though the addresses themselves came
// from one particular heap layout.
#pragma once

#include <cstdint>
#include <vector>

#include "hashtable/chained_table.h"
#include "relation/relation.h"

namespace amac {
class BinarySearchTree;
class SkipList;
}  // namespace amac

namespace amac::memsim {

/// One address stream, sliced per lookup.  Lookup i covers
/// addrs[offsets[i] .. offsets[i + 1]) in dependent order (each access
/// waits on the previous one's data, like the node walks that produced it).
struct AccessTrace {
  std::vector<uint64_t> addrs;
  /// Per-access synthetic "pc" tag (which load instruction issued it) —
  /// what an IP-indexed hardware prefetcher keys its stride table on.
  /// Parallel to `addrs`; empty means every access carries pc 0.
  std::vector<uint32_t> pcs;
  /// Lookup boundaries: size = lookups() + 1, offsets.front() == 0,
  /// offsets.back() == addrs.size().
  std::vector<uint32_t> offsets;

  uint64_t lookups() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  uint32_t ChainLength(uint64_t lookup) const {
    return offsets[lookup + 1] - offsets[lookup];
  }
  uint32_t pc(uint64_t pos) const {
    return pcs.empty() ? 0 : pcs[pos];
  }
  /// The chain-length view of this trace (what the flat model consumes) —
  /// keeps hierarchy and flat runs comparable on identical work.
  std::vector<uint32_t> ChainLengths() const;
};

/// Replay every probe against the real table, recording each visited
/// bucket/overflow node's address (early_exit stops at the first match,
/// mirroring CollectWalkLengths).
AccessTrace CollectAccessTrace(const ChainedHashTable& table,
                               const Relation& probe, bool early_exit);

/// BST search paths: root-to-match/leaf node addresses per probe key.
AccessTrace CollectBstAccessTrace(const BinarySearchTree& tree,
                                  const Relation& probe);

/// Skip list search paths: candidate node addresses per probe key.
AccessTrace CollectSkipAccessTrace(const SkipList& list,
                                   const Relation& probe);

/// Synthetic sequential-stride trace (the hardware prefetcher's best case):
/// lookup i's chain walks `stride_bytes`-spaced addresses continuing from
/// where the previous lookup stopped.
AccessTrace StrideAccessTrace(uint64_t lookups, uint32_t chain_length,
                              uint64_t stride_bytes,
                              uint64_t base = 0x4000'0000ull);

/// Synthetic pointer-chase trace (the paper's irregularity premise): every
/// access lands on a pseudo-random cache line inside `region_bytes`,
/// deterministically derived from `seed` — no learnable stride or
/// signature survives.
AccessTrace PointerChaseAccessTrace(uint64_t lookups, uint32_t chain_length,
                                    uint64_t region_bytes, uint64_t seed);

}  // namespace amac::memsim
