// Hardware-model-in-the-loop calibration seeding.
//
// A cold Calibrator makes every new query shape pay measurement morsels
// (or the plan layer's measure-prefix fallback) before it runs well.  The
// hierarchy simulator already predicts cycles-per-lookup for every
// (policy, M) grid point from a real address trace — SeedCalibrator runs
// that grid offline and stores the ranking as PRE-SEEDED Calibrator
// entries, so the first real query of a shape starts on the simulator's
// winner instead of measuring from scratch.
//
// Seeded entries are priors, not truth:
//   * they are marked `from_sim` and stamped with the current staleness
//     epoch, so AdvanceEpoch ages them exactly like measured entries;
//   * Calibrator::StoreSeed refuses to shadow a fresh measured entry
//     (source priority: measured > simulated at equal staleness);
//   * the governor re-stores the entry as measured once real morsels have
//     been observed, and its drift/exploration machinery corrects a
//     mis-ranked prior the same way it corrects a stale measurement.
//
// The seeding grid is restricted to the scalar schedules the simulator
// models faithfully (Baseline/GP/SPP/AMAC/Coroutine); the SIMD points'
// lane mechanics are below the model's stage granularity, so ranking them
// from simulated cycles would be noise presented as signal.
#pragma once

#include <vector>

#include "adaptive/calibrator.h"
#include "adaptive/signature.h"
#include "memsim/cache/trace.h"
#include "memsim/memsim.h"

namespace amac::memsim {

struct SeedOptions {
  /// Modeled thread count the prior should describe (calibration runs are
  /// per-thread-team, so 1 matches the governor's morsel measurements).
  uint32_t num_threads = 1;
  /// The paper's N (GP/SPP stage provisioning), passed to every sim.
  uint32_t stages = 4;
  /// Hardware prefetcher assumed present on the real machine.
  PrefetcherKind prefetcher = PrefetcherKind::kStride;
  /// Grid to rank; empty uses DefaultSeedGrid().
  std::vector<GridPoint> grid;
  /// Simulated-cycle -> stored cycles-per-input scale, for callers that
  /// calibrated the model clock against the real TSC; 1.0 stores model
  /// cycles (ranking-only priors).
  double cycles_scale = 1.0;
  /// Lookups simulated per thread; 0 derives from the trace (capped so
  /// seeding stays cheap).
  uint64_t lookups_per_thread = 0;
};

/// Scalar policies x in-flight widths — the simulator's fidelity domain.
std::vector<GridPoint> DefaultSeedGrid();

struct SeedEntry {
  GridPoint point;
  double cycles_per_input = 0;  ///< scaled, as stored
  SimResult sim;                ///< full per-point simulation result
};

struct SeedResult {
  GridPoint winner;
  double winner_cycles_per_input = 0;
  std::vector<SeedEntry> table;  ///< ascending cycles-per-input
  /// StoreSeed accepted the prior (false: a fresh measured entry already
  /// held the signature — source priority — or no calibrator was given).
  bool stored = false;
};

/// Simulate `trace` on `machine` for every grid point and seed
/// `calibrator` (nullable: rank only) under `signature`.
SeedResult SeedCalibrator(const MachineConfig& machine,
                          const AccessTrace& trace,
                          const WorkloadSignature& signature,
                          Calibrator* calibrator,
                          const SeedOptions& options = {});

}  // namespace amac::memsim
