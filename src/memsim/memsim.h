// Discrete-event model of the memory-system bottlenecks the paper measures
// on real hardware (§5.1.1): per-core L1-D MSHRs and the shared LLC miss
// queue ("Global Queue" on Nehalem, 32 entries for loads).
//
// Why this exists: Figures 7/8 and Table 4 require a 6-core Xeon X5670 and
// a 64-thread SPARC T4.  This container has one core, so those experiments
// are reproduced on a model that contains exactly (and only) the mechanism
// the paper identifies as the bottleneck:
//
//   * each in-flight memory access holds one of the issuing core's
//     `mshrs_per_core` L1-D MSHRs from issue to fill;
//   * every off-chip access also needs one of the socket's
//     `gq_entries` LLC queue slots; when the queue is full the request
//     waits (holding its MSHR — the backpressure that shows up as "L1-D
//     MSHR hits" in Table 4);
//   * SMT threads share their core's execution bandwidth and MSHRs.
//
// Threads replay the same lookup work the real kernels perform (chains of
// dependent accesses with per-stage instruction cost), under one of four
// scheduling disciplines that abstract the engines:
//
//   Baseline : one lookup at a time, synchronous accesses.
//   GP       : groups of M; stage s consumes lookups in fixed order, so the
//              thread blocks on the first unready lookup (the coupling).
//   SPP      : rolling window; the *scheduled* slot must be ready, else the
//              thread blocks (static pipeline order).
//   AMAC     : work-conserving; any ready slot may run, the thread sleeps
//              only when no in-flight access has completed.
//
// The model makes no absolute-performance claims; it is used for the
// *shape* of thread scaling and the Table 4 counters (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheduler.h"  // ExecPolicy
#include "memsim/cache/cache.h"

namespace amac::memsim {

struct AccessTrace;  // cache/trace.h

/// Machine description (modeled, parameters documented in DESIGN.md).
struct MachineConfig {
  std::string name;
  uint32_t sockets = 1;
  uint32_t cores_per_socket = 6;
  uint32_t smt_per_core = 2;
  uint32_t mshrs_per_core = 10;   ///< outstanding L1-D misses per core
  uint32_t gq_entries = 32;       ///< LLC load-miss queue per socket
  uint32_t mem_latency = 200;     ///< cycles, LLC miss -> fill (flat mode)
  uint32_t issue_width = 4;       ///< instructions per cycle when not stalled
  /// Cache/DRAM geometry for hierarchy mode (SimConfig::trace set); unused
  /// by the flat model.  Presets pair each machine with its hierarchy.
  HierarchyConfig hierarchy;

  static MachineConfig XeonX5670();
  static MachineConfig SparcT4();
};

/// Per-engine instruction cost of one code stage (defaults derived from the
/// paper's Table 3 instruction-per-tuple profile at ~4 accesses/tuple).
struct EngineCosts {
  double baseline_instr = 9.0;
  double gp_instr = 22.0;
  double spp_instr = 17.0;
  double amac_instr = 14.0;
  /// AMAC schedule driven through a coroutine frame: ~15% resume/frame
  /// overhead on top of the hand-packed state machine (ablation bench).
  double coro_instr = 16.0;
  /// SIMD stage: 8 lanes share one gather/compare sequence, so the
  /// per-lookup instruction cost drops below the scalar baseline's.
  double vec_instr = 6.0;
  double noop_instr = 3.0;  ///< GP/SPP status check on a finished lookup

  double StageInstr(ExecPolicy p) const {
    switch (p) {
      case ExecPolicy::kSequential: return baseline_instr;
      case ExecPolicy::kGroupPrefetch: return gp_instr;
      case ExecPolicy::kSoftwarePipelined: return spp_instr;
      case ExecPolicy::kAmac: return amac_instr;
      case ExecPolicy::kCoroutine: return coro_instr;
      // The vector schedules amortize per-stage bookkeeping over 8 lanes;
      // the simulator prices their stage below the scalar baseline's.
      case ExecPolicy::kVectorized:
      case ExecPolicy::kVectorizedAmac: return vec_instr;
      // The simulator models concrete schedules; adaptive resolves to one
      // upstream and is modeled at its work-conserving (AMAC) cost here.
      case ExecPolicy::kAdaptive: return amac_instr;
    }
    return 0;
  }
};

struct SimConfig {
  /// kSequential/kGP/kSPP/kAmac model the paper's engines; kCoroutine is
  /// modeled as the work-conserving (AMAC) discipline at coroutine-frame
  /// instruction cost.
  ExecPolicy policy = ExecPolicy::kAmac;
  uint32_t inflight = 10;          ///< M per thread (1 forced for baseline)
  uint32_t stages = 1;             ///< provisioned N for the GP schedule
  uint32_t num_threads = 1;
  uint64_t lookups_per_thread = 20000;
  EngineCosts costs;
  /// Chain lengths (dependent accesses per lookup); threads draw from this
  /// vector round-robin.  Produce it from real ChainedHashTable stats or a
  /// synthetic distribution (workload.h).  Ignored when `trace` is set.
  const std::vector<uint32_t>* chain_lengths = nullptr;
  /// Thread placement: spread threads across sockets round-robin instead of
  /// filling socket 0 first (Table 4's "2+2" configuration).
  bool scatter_sockets = false;
  /// Hierarchy mode: replay this address trace (cache/trace.h) through the
  /// machine's cache hierarchy instead of charging a flat mem_latency per
  /// access.  Chain lengths come from the trace's per-lookup slices; every
  /// flat-mode behavior is preserved when this is null.
  const AccessTrace* trace = nullptr;
  /// Hardware prefetcher modeled per core in hierarchy mode.
  PrefetcherKind prefetcher = PrefetcherKind::kNone;
};

struct SimResult {
  uint64_t cycles = 0;            ///< makespan
  uint64_t lookups = 0;
  uint64_t accesses = 0;
  double instructions = 0;
  double ipc = 0;                 ///< per-thread average IPC
  double mshr_hits_per_kinstr = 0;///< LLC-queue-delayed fills per k-inst
                                  ///< (hardware-observable as MSHR hits)
  double avg_outstanding = 0;     ///< mean in-flight accesses (achieved MLP)
  uint64_t gq_full_waits = 0;     ///< accesses that queued for an LLC slot

  /// Hierarchy-mode counters (SimConfig::trace set); all zero in flat mode.
  HierarchyStats cache;
  uint64_t prefetch_drops = 0;  ///< candidates dropped: LLC queue was full

  double ThroughputPerKilocycle() const {
    return cycles ? static_cast<double>(lookups) * 1000.0 /
                        static_cast<double>(cycles)
                  : 0;
  }
  double CyclesPerLookup() const {
    return lookups ? static_cast<double>(cycles) /
                         static_cast<double>(lookups)
                   : 0;
  }
  static double Rate(uint64_t part, uint64_t whole) {
    return whole ? static_cast<double>(part) / static_cast<double>(whole)
                 : 0;
  }
  double L1MissRate() const {
    return Rate(cache.l1_misses, cache.l1_hits + cache.l1_misses);
  }
  double L2MissRate() const {
    return Rate(cache.l2_misses, cache.l2_hits + cache.l2_misses);
  }
  double LlcMissRate() const {
    return Rate(cache.llc_misses, cache.llc_hits + cache.llc_misses);
  }
  double DramRowHitRate() const {
    return Rate(cache.dram_row_hits, cache.dram_accesses);
  }
  /// Fraction of issued prefetches a demand access later consumed.
  double PrefetchAccuracy() const {
    return Rate(cache.prefetches_useful, cache.prefetches_issued);
  }
  /// Fraction of would-be DRAM misses a prefetch absorbed (late included).
  double PrefetchCoverage() const {
    return Rate(cache.prefetches_useful,
                cache.prefetches_useful + cache.llc_misses);
  }
  /// Fraction of useful prefetches whose data arrived before the demand.
  double PrefetchTimeliness() const {
    return Rate(cache.prefetches_useful - cache.prefetches_late,
                cache.prefetches_useful);
  }
};

/// Run the model.  Deterministic for a given configuration.
SimResult Simulate(const MachineConfig& machine, const SimConfig& config);

}  // namespace amac::memsim
