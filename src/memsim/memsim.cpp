#include "memsim/memsim.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>

#include "common/macros.h"
#include "memsim/cache/trace.h"

namespace amac::memsim {

MachineConfig MachineConfig::XeonX5670() {
  MachineConfig m;
  m.name = "Xeon x5670 (modeled)";
  m.sockets = 2;             // experiments use one unless scatter_sockets
  m.cores_per_socket = 6;
  m.smt_per_core = 2;
  m.mshrs_per_core = 10;     // paper §5.1: "10 L1-D MSHRs" [14]
  m.gq_entries = 32;         // paper §5.1.1: Global Queue, 32 load entries [22]
  m.mem_latency = 200;
  m.issue_width = 4;         // 4-wide OoO (Table 2)
  m.hierarchy = HierarchyConfig::XeonX5670();
  return m;
}

MachineConfig MachineConfig::SparcT4() {
  MachineConfig m;
  m.name = "SPARC T4 (modeled)";
  m.sockets = 1;
  m.cores_per_socket = 8;
  m.smt_per_core = 8;
  m.mshrs_per_core = 10;
  m.gq_entries = 128;        // banked L2/memory hierarchy: no shared-queue wall
  m.mem_latency = 240;
  m.issue_width = 2;         // 2-wide OoO (Table 2)
  m.hierarchy = HierarchyConfig::SparcT4();
  return m;
}

namespace {

enum class SlotState : uint8_t { kEmpty, kWaiting, kReady };

struct Slot {
  SlotState state = SlotState::kEmpty;
  uint32_t remaining = 0;   ///< dependent accesses left in the lookup
  uint32_t visits_left = 0; ///< SPP: scheduled stage visits before bailout
  bool needs_issue = false; ///< stage executed, access not yet issued (MSHR full)
  // Hierarchy mode: where this lookup's addresses live in the trace.
  uint64_t trace_base = 0;  ///< first access index of the lookup
  uint32_t chain_len = 0;   ///< total accesses of the lookup
};

struct Thread {
  uint32_t id = 0;
  uint32_t core = 0;
  uint32_t socket = 0;
  std::vector<Slot> slots;
  uint32_t cursor = 0;
  // GP phase machine: 0 = init, 1..stages = staged pass, stages+1 = cleanup.
  uint32_t gp_stage = 0;
  uint32_t gp_pos = 0;
  uint64_t next_lookup = 0;
  uint64_t lookups_done = 0;
  /// SPP: slot whose pipeline schedule expired and is draining
  /// synchronously (UINT32_MAX = none).
  uint32_t bailout_slot = UINT32_MAX;
  bool sleeping = false;
  bool finished = false;
  double instructions = 0;
  uint64_t wait_events = 0;  ///< stalls on in-flight data
  /// LLC-queue fill delay, expressed in equivalent full-latency misses —
  /// the model's analogue of "prefetches do not arrive in a timely
  /// manner", which hardware observes as L1-D MSHR hits (Table 4).
  double late_fills = 0;
};

struct Core {
  uint64_t free_time = 0;
  uint32_t mshrs_used = 0;     ///< L1-D miss registers
  uint32_t l2_mshrs_used = 0;  ///< L2 miss registers (hierarchy mode)
};

struct Socket {
  uint32_t gq_used = 0;
  std::queue<uint32_t> gq_waiters;  ///< access ids waiting for a queue slot
};

struct Access {
  uint32_t thread = 0;
  uint32_t slot = 0;
  uint64_t issue_time = 0;
  bool in_gq = false;
  bool queued = false;      ///< had to wait for an LLC queue slot
  bool uses_mshr = true;    ///< holds an L1-D MSHR (false: L1 hit)
  bool uses_l2_mshr = false;///< holds an L2 miss register (LLC/DRAM trips)
  uint32_t latency = 0;     ///< cycles to data once a queue slot is held
};

struct Event {
  uint64_t time;
  uint64_t seq;
  enum Kind : uint8_t { kThreadWake, kAccessDone, kPrefetchDone } kind;
  uint32_t id;  // thread id, access id, or socket id (prefetch)
  bool operator>(const Event& o) const {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

class Sim {
 public:
  Sim(const MachineConfig& machine, const SimConfig& config)
      : m_(machine), c_(config) {
    AMAC_CHECK((c_.chain_lengths != nullptr && !c_.chain_lengths->empty()) ||
               (c_.trace != nullptr && c_.trace->lookups() > 0));
    AMAC_CHECK(c_.num_threads >= 1);
    const uint32_t total_cores = m_.sockets * m_.cores_per_socket;
    if (c_.trace != nullptr) {
      hier_ = std::make_unique<CacheHierarchy>(
          m_.hierarchy, total_cores, m_.cores_per_socket, c_.prefetcher);
    }
    const uint32_t max_threads =
        (c_.scatter_sockets ? total_cores : m_.cores_per_socket) *
        m_.smt_per_core;
    AMAC_CHECK_MSG(c_.num_threads <= max_threads,
                   "more threads than hardware contexts");
    inflight_ = c_.policy == ExecPolicy::kSequential
                    ? 1
                    : std::max(1u, c_.inflight);
    stages_ = std::max<uint32_t>(1, c_.stages);

    cores_.resize(total_cores);
    sockets_.resize(m_.sockets);
    threads_.resize(c_.num_threads);
    for (uint32_t t = 0; t < c_.num_threads; ++t) {
      Thread& th = threads_[t];
      th.id = t;
      // Placement: the paper pins threads "first to physical cores ... and
      // we start using SMT threads upon running out of physical cores",
      // all on ONE socket; the "2+2" experiment scatters across sockets.
      uint32_t core;
      if (c_.scatter_sockets) {
        const uint32_t socket = t % m_.sockets;
        const uint32_t idx = t / m_.sockets;
        core = socket * m_.cores_per_socket + idx % m_.cores_per_socket;
      } else {
        core = t % m_.cores_per_socket;  // socket 0 only; SMT layers next
      }
      th.core = core;
      th.socket = core / m_.cores_per_socket;
      th.slots.resize(inflight_);
      Wake(t, 0);
    }
  }

  SimResult Run() {
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      if (ev.kind == Event::kThreadWake) {
        threads_[ev.id].sleeping = false;
        StepThread(threads_[ev.id]);
      } else if (ev.kind == Event::kPrefetchDone) {
        CompletePrefetch(ev.id);
      } else {
        CompleteAccess(ev.id);
      }
    }
    SimResult r;
    r.cycles = makespan_;
    for (const Thread& th : threads_) {
      r.lookups += th.lookups_done;
      r.instructions += th.instructions;
      r.mshr_hits_per_kinstr += th.late_fills;
    }
    r.accesses = accesses_issued_;
    r.ipc = makespan_ > 0 ? r.instructions /
                                (static_cast<double>(makespan_) *
                                 static_cast<double>(c_.num_threads))
                          : 0;
    r.mshr_hits_per_kinstr =
        r.instructions > 0 ? r.mshr_hits_per_kinstr * 1000.0 / r.instructions
                           : 0;
    r.avg_outstanding =
        makespan_ > 0 ? outstanding_area_ / static_cast<double>(makespan_) : 0;
    r.gq_full_waits = gq_full_waits_;
    if (hier_) {
      r.cache = hier_->stats();
      r.prefetch_drops = prefetch_drops_;
    }
    return r;
  }

 private:
  // -- workload supply ------------------------------------------------------
  uint64_t GlobalLookup(const Thread& th, uint64_t lookup_idx) const {
    return th.id * c_.lookups_per_thread + lookup_idx;
  }

  uint32_t ChainLength(const Thread& th, uint64_t lookup_idx) const {
    if (c_.trace != nullptr) {
      const uint64_t g = GlobalLookup(th, lookup_idx) % c_.trace->lookups();
      return std::max<uint32_t>(1, c_.trace->ChainLength(g));
    }
    const auto& lens = *c_.chain_lengths;
    return std::max<uint32_t>(
        1, lens[GlobalLookup(th, lookup_idx) % lens.size()]);
  }

  bool HasInput(const Thread& th) const {
    return th.next_lookup < c_.lookups_per_thread;
  }

  // -- event plumbing -------------------------------------------------------
  void Wake(uint32_t tid, uint64_t time) {
    Thread& th = threads_[tid];
    if (th.finished) return;
    th.sleeping = true;  // until the wake fires
    events_.push(Event{time, seq_++, Event::kThreadWake, tid});
  }

  void TrackOutstanding(int delta, uint64_t time) {
    // Issues can be stamped slightly ahead of the event clock (at the end
    // of the issuing stage); clamp so the integration stays monotone.
    const uint64_t t = std::max(time, outstanding_since_);
    outstanding_area_ += static_cast<double>(outstanding_) *
                         static_cast<double>(t - outstanding_since_);
    outstanding_since_ = t;
    outstanding_ = static_cast<uint32_t>(static_cast<int>(outstanding_) +
                                         delta);
  }

  // -- memory system --------------------------------------------------------
  /// Try to issue the pending access of `slot`; returns false when the
  /// core's MSHRs are exhausted (caller must retry after a completion).
  bool TryIssue(Thread& th, uint32_t slot_idx, uint64_t time) {
    if (hier_) return TryIssueHier(th, slot_idx, time);
    Core& core = cores_[th.core];
    if (core.mshrs_used >= m_.mshrs_per_core) return false;
    ++core.mshrs_used;
    TrackOutstanding(+1, time);
    const uint32_t access_id = static_cast<uint32_t>(accesses_.size());
    Access access{th.id, slot_idx, time, false, false};
    access.latency = m_.mem_latency;
    accesses_.push_back(access);
    ++accesses_issued_;
    Slot& slot = th.slots[slot_idx];
    slot.needs_issue = false;
    slot.state = SlotState::kWaiting;
    Socket& socket = sockets_[th.socket];
    if (socket.gq_used < m_.gq_entries) {
      ++socket.gq_used;
      accesses_[access_id].in_gq = true;
      events_.push(Event{time + m_.mem_latency, seq_++, Event::kAccessDone,
                         access_id});
    } else {
      ++gq_full_waits_;
      accesses_[access_id].queued = true;
      socket.gq_waiters.push(access_id);  // MSHR stays held: backpressure
    }
    return true;
  }

  /// Hierarchy-mode issue: classify the address first (non-mutating), so a
  /// resource-full retry never re-trains the caches; commit tags, MSHRs,
  /// and prefetches only once the needed resources are held.  L1 hits use
  /// no miss resources; L2 hits hold an L1-D MSHR; LLC hits additionally
  /// hold an L2 miss register; DRAM trips also arbitrate the LLC queue.
  bool TryIssueHier(Thread& th, uint32_t slot_idx, uint64_t time) {
    Slot& slot = th.slots[slot_idx];
    const uint64_t pos =
        slot.trace_base + (slot.chain_len - slot.remaining);
    const uint64_t addr = c_.trace->addrs[pos];
    Core& core = cores_[th.core];
    const MemLevel peek = hier_->Classify(th.core, addr);
    const bool uses_mshr = peek != MemLevel::kL1;
    const bool uses_l2_mshr =
        peek == MemLevel::kLLC || peek == MemLevel::kDram;
    if (uses_mshr && core.mshrs_used >= m_.mshrs_per_core) return false;
    if (uses_l2_mshr && core.l2_mshrs_used >= m_.hierarchy.l2.mshrs) {
      return false;
    }
    const CacheHierarchy::AccessOutcome outcome = hier_->Access(
        th.core, addr, c_.trace->pc(pos), /*is_write=*/false, time);
    if (uses_mshr) ++core.mshrs_used;
    if (uses_l2_mshr) ++core.l2_mshrs_used;
    TrackOutstanding(+1, time);
    const uint32_t access_id = static_cast<uint32_t>(accesses_.size());
    Access access{th.id, slot_idx, time, false, false};
    access.uses_mshr = uses_mshr;
    access.uses_l2_mshr = uses_l2_mshr;
    access.latency = outcome.latency;
    accesses_.push_back(access);
    ++accesses_issued_;
    slot.needs_issue = false;
    slot.state = SlotState::kWaiting;
    if (outcome.level == MemLevel::kDram) {
      Socket& socket = sockets_[th.socket];
      if (socket.gq_used < m_.gq_entries) {
        ++socket.gq_used;
        accesses_[access_id].in_gq = true;
        events_.push(Event{time + outcome.latency, seq_++,
                           Event::kAccessDone, access_id});
      } else {
        ++gq_full_waits_;
        accesses_[access_id].queued = true;
        socket.gq_waiters.push(access_id);
      }
    } else {
      events_.push(Event{time + outcome.latency, seq_++, Event::kAccessDone,
                         access_id});
    }
    IssuePrefetches(th, outcome.prefetch_candidates, time);
    return true;
  }

  /// Arbitrate the core's prefetch candidates: already-cached/in-flight
  /// ones are filtered, DRAM-bound ones need a real LLC queue slot (drop
  /// when full — hardware prefetches are lowest priority), LLC-resident
  /// ones fill the L2 without queue traffic.
  void IssuePrefetches(Thread& th, const std::vector<uint64_t>& candidates,
                       uint64_t time) {
    Socket& socket = sockets_[th.socket];
    for (const uint64_t addr : candidates) {
      const CacheHierarchy::PrefetchPlan plan =
          hier_->PlanPrefetch(th.core, addr);
      if (plan.filtered) {
        hier_->CountFilteredPrefetch();
        continue;
      }
      if (plan.dram) {
        if (socket.gq_used >= m_.gq_entries) {
          ++prefetch_drops_;
          continue;
        }
        ++socket.gq_used;
        const uint32_t latency =
            hier_->CommitPrefetch(th.core, addr, /*dram=*/true, time);
        events_.push(Event{time + latency, seq_++, Event::kPrefetchDone,
                           th.socket});
      } else {
        hier_->CommitPrefetch(th.core, addr, /*dram=*/false, time);
      }
    }
  }

  /// Hand the freed LLC queue slot to the oldest demand waiter.
  void GrantGqSlot(Socket& socket) {
    if (socket.gq_waiters.empty()) return;
    const uint32_t next_id = socket.gq_waiters.front();
    socket.gq_waiters.pop();
    ++socket.gq_used;
    accesses_[next_id].in_gq = true;
    events_.push(Event{now_ + accesses_[next_id].latency, seq_++,
                       Event::kAccessDone, next_id});
  }

  void CompletePrefetch(uint32_t socket_id) {
    Socket& socket = sockets_[socket_id];
    --socket.gq_used;
    GrantGqSlot(socket);
  }

  void CompleteAccess(uint32_t access_id) {
    const Access access = accesses_[access_id];
    Thread& th = threads_[access.thread];
    Socket& socket = sockets_[th.socket];
    Core& core = cores_[th.core];
    if (access.in_gq) {
      --socket.gq_used;
      GrantGqSlot(socket);
    }
    if (access.uses_mshr) --core.mshrs_used;
    if (access.uses_l2_mshr) --core.l2_mshrs_used;
    TrackOutstanding(-1, now_);
    makespan_ = std::max(makespan_, now_);
    if (access.queued && now_ >= access.issue_time + access.latency) {
      th.late_fills += static_cast<double>(
                           now_ - access.issue_time - access.latency) /
                       static_cast<double>(access.latency);
    }
    AMAC_CHECK_MSG(th.slots[access.slot].state == SlotState::kWaiting,
                   "completion for a slot that was not waiting");
    th.slots[access.slot].state = SlotState::kReady;
    if (th.sleeping == false && !th.finished) {
      // Thread is already scheduled/running; it will see the ready slot.
    } else if (!th.finished) {
      Wake(th.id, now_);
    }
    // A freed MSHR may unblock issue-stalled threads on this core.
    for (Thread& other : threads_) {
      if (other.core == th.core && !other.finished && other.sleeping &&
          HasPendingIssue(other)) {
        Wake(other.id, now_);
      }
    }
  }

  static bool HasPendingIssue(const Thread& th) {
    for (const Slot& s : th.slots) {
      if (s.needs_issue) return true;
    }
    return false;
  }

  // -- CPU model ------------------------------------------------------------
  uint64_t ChargeStage(Thread& th, double instr) {
    Core& core = cores_[th.core];
    const uint64_t start = std::max(now_, core.free_time);
    const uint64_t cycles = std::max<uint64_t>(
        1, static_cast<uint64_t>(instr / m_.issue_width + 0.5));
    core.free_time = start + cycles;
    th.instructions += instr;
    makespan_ = std::max(makespan_, core.free_time);
    return core.free_time;
  }

  // -- lookup lifecycle -----------------------------------------------------
  /// Start the next lookup in `slot` (charges a stage and issues the first
  /// access).  Returns issue success; on MSHR exhaustion the slot is left
  /// with needs_issue set.
  bool StartLookup(Thread& th, uint32_t slot_idx, uint64_t time) {
    Slot& slot = th.slots[slot_idx];
    AMAC_DCHECK(HasInput(th));
    slot.remaining = ChainLength(th, th.next_lookup);
    if (c_.trace != nullptr) {
      const uint64_t g =
          GlobalLookup(th, th.next_lookup) % c_.trace->lookups();
      slot.trace_base = c_.trace->offsets[g];
      slot.chain_len = slot.remaining;
    }
    ++th.next_lookup;
    slot.needs_issue = true;
    return TryIssue(th, slot_idx, time);
  }

  /// Consume the arrived data of `slot` (one node visit): charges CPU and
  /// either issues the next access of the chain or completes the lookup.
  /// Returns the cycle at which the stage finished.
  uint64_t ExecuteStage(Thread& th, uint32_t slot_idx, bool refill) {
    Slot& slot = th.slots[slot_idx];
    AMAC_CHECK_MSG(slot.state == SlotState::kReady && slot.remaining > 0,
                   "slot executed out of protocol");
    const uint64_t end = ChargeStage(th, c_.costs.StageInstr(c_.policy));
    --slot.remaining;
    if (slot.remaining > 0) {
      slot.needs_issue = true;
      TryIssue(th, slot_idx, end);  // may leave needs_issue on MSHR pressure
    } else {
      ++th.lookups_done;
      slot.state = SlotState::kEmpty;
      if (refill && HasInput(th)) {
        StartLookup(th, slot_idx, end);
      }
    }
    return end;
  }

  // -- engine scheduling ----------------------------------------------------
  void StepThread(Thread& th) {
    if (th.finished) return;
    // Retry any issue blocked on MSHRs first; if still blocked, sleep.
    for (uint32_t i = 0; i < th.slots.size(); ++i) {
      if (th.slots[i].needs_issue && !TryIssue(th, i, now_)) {
        th.sleeping = true;
        return;  // woken when an MSHR frees
      }
    }
    switch (c_.policy) {
      case ExecPolicy::kSequential:
      case ExecPolicy::kAmac:
      case ExecPolicy::kCoroutine:  // work-conserving, coroutine-frame cost
      // The vector schedules keep AMAC's work-conserving slot discipline
      // (lane retirement/refill is below the simulator's stage
      // granularity); only their stage instruction cost differs.
      case ExecPolicy::kVectorized:
      case ExecPolicy::kVectorizedAmac:
      case ExecPolicy::kAdaptive:   // resolves upstream; modeled as AMAC
        StepWorkConserving(th);
        break;
      case ExecPolicy::kSoftwarePipelined:
        StepPipelined(th);
        break;
      case ExecPolicy::kGroupPrefetch:
        StepGrouped(th);
        break;
    }
  }

  /// AMAC (and Baseline with one slot): run any ready slot; sleep only when
  /// everything in flight is still outstanding.
  void StepWorkConserving(Thread& th) {
    // Fill empty slots while input remains.
    for (uint32_t i = 0; i < th.slots.size(); ++i) {
      if (th.slots[i].state == SlotState::kEmpty && HasInput(th)) {
        if (!StartLookup(th, i, now_)) {
          th.sleeping = true;
          return;
        }
      }
    }
    // One stage execution per event keeps the event loop simple.
    for (uint32_t scan = 0; scan < th.slots.size(); ++scan) {
      const uint32_t k = (th.cursor + scan) % th.slots.size();
      if (th.slots[k].state == SlotState::kReady) {
        const uint64_t end = ExecuteStage(th, k, /*refill=*/true);
        th.cursor = (k + 1) % th.slots.size();
        Wake(th.id, end);
        return;
      }
    }
    FinishOrSleep(th);
  }

  /// SPP: the cursor's slot *must* be consumed next (static schedule); an
  /// unready scheduled slot stalls the thread even if other slots' data has
  /// arrived.  A lookup that outlives its `stages_` scheduled visits bails
  /// out: the thread drains that one lookup synchronously (the expensive
  /// mechanism the paper ascribes to SPP on long chains).
  void StepPipelined(Thread& th) {
    const bool draining = th.bailout_slot != UINT32_MAX;
    const uint32_t idx = draining ? th.bailout_slot : th.cursor;
    Slot& slot = th.slots[idx];
    if (slot.state == SlotState::kEmpty) {
      th.bailout_slot = UINT32_MAX;
      if (HasInput(th)) {
        if (!StartLookup(th, idx, now_)) {
          th.sleeping = true;
          return;
        }
        slot.visits_left = stages_;
        th.cursor = (idx + 1) % th.slots.size();
        Wake(th.id, cores_[th.core].free_time);
      } else {
        // End of input: drain remaining slots out of order.
        StepWorkConserving(th);
      }
      return;
    }
    if (slot.state == SlotState::kReady) {
      const uint64_t end = ExecuteStage(th, idx, /*refill=*/false);
      if (slot.state == SlotState::kEmpty) {
        // Lookup finished; the slot refills on its next scheduled turn.
        th.bailout_slot = UINT32_MAX;
        if (!draining) th.cursor = (idx + 1) % th.slots.size();
      } else if (!draining) {
        if (--slot.visits_left == 0) {
          th.bailout_slot = idx;  // pipeline slot expired: synchronous drain
        } else {
          th.cursor = (idx + 1) % th.slots.size();
        }
      }
      Wake(th.id, end);
      return;
    }
    // Scheduled (or draining) slot still in flight: the pipeline stalls.
    ++th.wait_events;
    th.sleeping = true;
  }

  /// GP: stage-by-stage over a group; within a stage, lookups are consumed
  /// in fixed order, and finished lookups burn no-op checks. The group is
  /// only refilled once every member finished (cleanup included).
  void StepGrouped(Thread& th) {
    while (true) {
      if (th.gp_stage == 0) {  // init phase: start the whole group
        if (!HasInput(th) && GroupEmpty(th)) {
          FinishOrSleep(th);
          return;
        }
        if (th.gp_pos < th.slots.size()) {
          if (HasInput(th)) {
            const bool issued = StartLookup(th, th.gp_pos, now_);
            ChargeStage(th, c_.costs.StageInstr(c_.policy));
            // Advance regardless of issue success: the pending issue is
            // retried by StepThread's entry loop.  (Re-running StartLookup
            // on the same slot would orphan its outstanding access.)
            ++th.gp_pos;
            if (!issued) {
              th.sleeping = true;
              return;
            }
          } else {
            ++th.gp_pos;
          }
          continue;
        }
        th.gp_stage = 1;
        th.gp_pos = 0;
        continue;
      }
      if (th.gp_stage <= stages_) {  // staged passes
        if (th.gp_pos >= th.slots.size()) {
          ++th.gp_stage;
          th.gp_pos = 0;
          continue;
        }
        Slot& slot = th.slots[th.gp_pos];
        if (slot.state == SlotState::kEmpty) {
          ChargeStage(th, c_.costs.noop_instr);  // status check on done slot
          ++th.gp_pos;
          continue;
        }
        if (slot.state == SlotState::kWaiting) {
          ++th.wait_events;  // group coupling: stall on this member
          th.sleeping = true;
          return;
        }
        const uint64_t end = ExecuteStage(th, th.gp_pos, /*refill=*/false);
        ++th.gp_pos;
        Wake(th.id, end);
        return;
      }
      // Cleanup pass: finish stragglers synchronously, in order.
      if (th.gp_pos >= th.slots.size()) {
        th.gp_stage = 0;  // group complete; next group
        th.gp_pos = 0;
        continue;
      }
      Slot& slot = th.slots[th.gp_pos];
      if (slot.state == SlotState::kEmpty) {
        ++th.gp_pos;
        continue;
      }
      if (slot.state == SlotState::kWaiting) {
        ++th.wait_events;
        th.sleeping = true;
        return;
      }
      const uint64_t end = ExecuteStage(th, th.gp_pos, /*refill=*/false);
      Wake(th.id, end);
      return;
    }
  }

  bool GroupEmpty(const Thread& th) const {
    for (const Slot& s : th.slots) {
      if (s.state != SlotState::kEmpty) return false;
    }
    return true;
  }

  void FinishOrSleep(Thread& th) {
    bool any_inflight = false;
    for (const Slot& s : th.slots) {
      if (s.state != SlotState::kEmpty) any_inflight = true;
    }
    if (!any_inflight && !HasInput(th)) {
      th.finished = true;
      return;
    }
    ++th.wait_events;  // nothing consumable: stalled on in-flight data
    th.sleeping = true;
  }

  const MachineConfig& m_;
  const SimConfig& c_;
  uint32_t inflight_ = 1;
  uint32_t stages_ = 1;

  std::vector<Thread> threads_;
  std::vector<Core> cores_;
  std::vector<Socket> sockets_;
  std::vector<Access> accesses_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  uint64_t seq_ = 0;
  uint64_t now_ = 0;
  uint64_t makespan_ = 0;
  uint64_t accesses_issued_ = 0;
  uint64_t gq_full_waits_ = 0;
  uint64_t prefetch_drops_ = 0;
  std::unique_ptr<CacheHierarchy> hier_;  ///< hierarchy mode only
  uint32_t outstanding_ = 0;
  uint64_t outstanding_since_ = 0;
  double outstanding_area_ = 0;
};

}  // namespace

SimResult Simulate(const MachineConfig& machine, const SimConfig& config) {
  Sim sim(machine, config);
  return sim.Run();
}

}  // namespace amac::memsim
