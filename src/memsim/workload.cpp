#include "memsim/workload.h"

#include "bst/bst.h"
#include "groupby/agg_table.h"
#include "skiplist/skiplist.h"

namespace amac::memsim {

std::vector<uint32_t> CollectWalkLengths(const ChainedHashTable& table,
                                         const Relation& probe,
                                         bool early_exit) {
  std::vector<uint32_t> lengths;
  lengths.reserve(probe.size());
  for (const Tuple& t : probe) {
    uint32_t visited = 0;
    for (const BucketNode* n = table.BucketForKey(t.key); n != nullptr;
         n = n->next) {
      ++visited;
      if (early_exit) {
        bool matched = false;
        for (uint32_t i = 0; i < n->count; ++i) {
          if (n->tuples[i].key == t.key) {
            matched = true;
            break;
          }
        }
        if (matched) break;
      }
    }
    lengths.push_back(visited == 0 ? 1 : visited);
  }
  return lengths;
}

std::vector<uint32_t> FixedWalkLengths(uint64_t lookups, uint32_t nodes) {
  return std::vector<uint32_t>(lookups, nodes);
}

std::vector<uint32_t> CollectBstWalkLengths(const BinarySearchTree& tree,
                                            const Relation& probe) {
  std::vector<uint32_t> lengths;
  lengths.reserve(probe.size());
  for (const Tuple& t : probe) {
    uint32_t visited = 0;
    const BstNode* node = tree.root();
    while (node != nullptr) {
      ++visited;
      if (node->key == t.key) break;
      node = t.key < node->key ? node->left : node->right;
    }
    lengths.push_back(visited == 0 ? 1 : visited);
  }
  return lengths;
}

std::vector<uint32_t> CollectSkipWalkLengths(const SkipList& list,
                                             const Relation& probe) {
  std::vector<uint32_t> lengths;
  lengths.reserve(probe.size());
  for (const Tuple& t : probe) {
    uint32_t visited = 0;
    const SkipNode* cur = list.head();
    for (int32_t level = SkipList::kMaxLevel - 1; level >= 0; --level) {
      const SkipNode* cand = cur->next[level];
      while (cand != nullptr && cand->key < t.key) {
        ++visited;
        cur = cand;
        cand = cur->next[level];
      }
      if (cand != nullptr && cand->key == t.key) {
        ++visited;
        break;
      }
    }
    lengths.push_back(visited == 0 ? 1 : visited);
  }
  return lengths;
}

std::vector<uint32_t> CollectGroupByWalkLengths(const AggregateTable& table,
                                                const Relation& input) {
  std::vector<uint32_t> lengths;
  lengths.reserve(input.size());
  for (const Tuple& t : input) {
    uint32_t visited = 0;
    for (const GroupNode* n =
             const_cast<AggregateTable&>(table).HeadForKey(t.key);
         n != nullptr; n = n->next) {
      ++visited;
      if (n->used && n->key == t.key) break;
    }
    lengths.push_back(visited == 0 ? 1 : visited);
  }
  return lengths;
}

}  // namespace amac::memsim
