// Round-robin interleaver: the AMAC circular buffer where each slot holds a
// coroutine frame instead of a hand-packed state struct.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "coro/task.h"

namespace amac::coro {

/// Runs `num_inputs` lookups produced by `factory(idx)` with `width`
/// in-flight coroutines.  `factory` must return a lazily-started Task.
/// Mirrors AMAC: a finishing lookup's slot is immediately refilled with the
/// next input (terminal/initial merge) and the cursor rolls without modulo.
template <typename Factory>
void Interleave(Factory&& factory, uint64_t num_inputs, uint32_t width) {
  AMAC_CHECK(width >= 1);
  if (num_inputs == 0) return;
  std::vector<Task> slots(width);
  uint64_t next_input = 0;
  uint32_t num_active = 0;
  for (uint32_t k = 0; k < width && next_input < num_inputs; ++k) {
    slots[k] = factory(next_input++);
    ++num_active;
  }
  uint32_t k = 0;
  while (num_active > 0) {
    Task& task = slots[k];
    if (task.Valid()) {
      if (task.Resume()) {
        if (next_input < num_inputs) {
          slots[k] = factory(next_input++);
        } else {
          task.Destroy();
          --num_active;
        }
      }
    }
    ++k;
    if (k == width) k = 0;
  }
}

}  // namespace amac::coro
