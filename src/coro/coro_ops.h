// Coroutine implementations of the paper's lookup kernels: each lookup is
// straight-line code with `co_await` at every dependent memory access.
// Results are bit-identical to the hand-written AMAC kernels (tests verify
// this); the difference is purely who maintains the state.
#pragma once

#include <cstdint>

#include "bst/bst.h"
#include "coro/interleaver.h"
#include "coro/task.h"
#include "hashtable/chained_table.h"
#include "relation/relation.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_search.h"

namespace amac::coro {

/// One hash probe lookup as a coroutine.
template <bool kEarlyExit, typename Sink>
Task ProbeTask(const ChainedHashTable& table, int64_t key, uint64_t rid,
               Sink& sink) {
  const BucketNode* node = table.BucketForKey(key);
  co_await PrefetchAwait{node};
  while (true) {
    for (uint32_t i = 0; i < node->count; ++i) {
      if (node->tuples[i].key == key) {
        sink.Emit(rid, node->tuples[i].payload);
        if constexpr (kEarlyExit) co_return;
      }
    }
    if (node->next == nullptr) co_return;
    node = node->next;
    co_await PrefetchAwait{node};
  }
}

/// Interleaved hash probe over a probe relation.
template <bool kEarlyExit, typename Sink>
void ProbeInterleaved(const ChainedHashTable& table, const Relation& probe,
                      uint64_t begin, uint64_t end, uint32_t width,
                      Sink& sink) {
  Interleave(
      [&](uint64_t i) {
        const uint64_t idx = begin + i;
        return ProbeTask<kEarlyExit>(table, probe[idx].key, idx, sink);
      },
      end - begin, width);
}

/// One BST search as a coroutine.
template <typename Sink>
Task BstSearchTask(const BinarySearchTree& tree, int64_t key, uint64_t rid,
                   Sink& sink) {
  const BstNode* node = tree.root();
  if (node == nullptr) co_return;
  co_await PrefetchAwait{node};
  while (true) {
    if (node->key == key) {
      sink.Emit(rid, node->payload);
      co_return;
    }
    const BstNode* child = key < node->key ? node->left : node->right;
    if (child == nullptr) co_return;
    node = child;
    co_await PrefetchAwait{node};
  }
}

template <typename Sink>
void BstSearchInterleaved(const BinarySearchTree& tree, const Relation& probe,
                          uint64_t begin, uint64_t end, uint32_t width,
                          Sink& sink) {
  Interleave(
      [&](uint64_t i) {
        const uint64_t idx = begin + i;
        return BstSearchTask(tree, probe[idx].key, idx, sink);
      },
      end - begin, width);
}

/// One skip list search as a coroutine (suspends once per candidate node,
/// like SkipSearchStep).
template <typename Sink>
Task SkipSearchTask(const SkipList& list, int64_t key, uint64_t rid,
                    Sink& sink) {
  const SkipNode* cur = list.head();
  int32_t level = static_cast<int32_t>(SkipList::kMaxLevel) - 1;
  while (true) {
    const SkipNode* cand = cur->next[level];
    if (cand != nullptr && cand->key < key) {
      cur = cand;
      const SkipNode* nxt = cand->next[level];
      if (nxt != nullptr) {
        // Both the header line and (for tall towers) the forward-pointer
        // line are prefetched before yielding.
        PrefetchSkipNode(nxt, level);
        co_await YieldAwait{};
      }
      continue;
    }
    if (cand != nullptr && cand->key == key) {
      sink.Emit(rid, cand->payload);
      co_return;
    }
    if (level == 0) co_return;
    --level;
    const SkipNode* nxt = cur->next[level];
    if (nxt != nullptr && nxt != cand) {
      PrefetchSkipNode(nxt, level);
      co_await YieldAwait{};
    }
  }
}

template <typename Sink>
void SkipSearchInterleaved(const SkipList& list, const Relation& probe,
                           uint64_t begin, uint64_t end, uint32_t width,
                           Sink& sink) {
  Interleave(
      [&](uint64_t i) {
        const uint64_t idx = begin + i;
        return SkipSearchTask(list, probe[idx].key, idx, sink);
      },
      end - begin, width);
}

}  // namespace amac::coro
