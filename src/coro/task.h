// Minimal C++20 coroutine task for AMAC-style interleaving.
//
// The paper's §6 suggests that "event-driven programming language concepts
// such as coroutines that allow for cooperative multitasking within a
// thread (e.g., escape-and-reenter loops) can help creating a generalized
// software model and framework for AMAC-style execution" — the direction
// later explored by the interleaving-with-coroutines line of work.  Here a
// lookup is written as straight-line code; `co_await PrefetchAwait(p)`
// issues the prefetch and suspends, and the Interleaver (interleaver.h)
// round-robins across suspended lookups exactly like AMAC's circular
// buffer.  The coroutine frame *is* the state slot; the compiler performs
// the state save/restore AMAC writes by hand.  The paper predicts a cost —
// "the user-land threads' state maintenance and space overhead" — which
// bench/ablation_engines measures.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "common/macros.h"
#include "common/prefetch.h"

namespace amac::coro {

/// A resumable lookup. Lazily started; destroyed by the owner.
class Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { Destroy(); }

  /// Resume the lookup; returns true when it ran to completion.
  bool Resume() {
    AMAC_DCHECK(handle_ && !handle_.done());
    handle_.resume();
    return handle_.done();
  }

  bool Valid() const { return static_cast<bool>(handle_); }
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

/// `co_await PrefetchAwait{p}` — issue a read prefetch for `p`'s line and
/// yield to the interleaver until the data had time to arrive.
struct PrefetchAwait {
  const void* addr;
  bool await_ready() const noexcept {
    Prefetch(addr);
    return false;  // always yield after issuing the prefetch
  }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

/// Same with write intent (latched updates).
struct PrefetchWriteAwait {
  const void* addr;
  bool await_ready() const noexcept {
    PrefetchWrite(addr);
    return false;
  }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

/// Plain cooperative yield (latch busy: park and retry later).
struct YieldAwait {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

}  // namespace amac::coro
