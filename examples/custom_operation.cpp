// Writing your own AMAC operation, two ways:
//  1. as a stage machine driven by the generic engine (core/engine.h);
//  2. as a C++20 coroutine driven by the interleaver (coro/) — the
//     "escape-and-reenter" model the paper's §6 sketches as future work.
//
// The example data structure is a bucketed directed graph walk: each lookup
// chases `hops` random pointers through a large node array — the purest
// form of the dependent-access chain AMAC targets.
#include <cstdio>
#include <vector>

#include "common/aligned.h"
#include "common/cycle_timer.h"
#include "common/flags.h"
#include "common/prefetch.h"
#include "common/rng.h"
#include "core/engine.h"
#include "coro/interleaver.h"
#include "coro/task.h"

namespace {

struct AMAC_CACHE_ALIGNED GraphNode {
  const GraphNode* next = nullptr;
  uint64_t value = 0;
};

/// A random ring over `n` cache lines.
amac::AlignedBuffer<GraphNode> MakeGraph(uint64_t n, uint64_t seed) {
  amac::AlignedBuffer<GraphNode> nodes(n);
  std::vector<uint64_t> perm(n);
  for (uint64_t i = 0; i < n; ++i) perm[i] = i;
  amac::Rng rng(seed);
  for (uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  for (uint64_t i = 0; i < n; ++i) {
    nodes[perm[i]].next = &nodes[perm[(i + 1) % n]];
    nodes[perm[i]].value = i;
  }
  return nodes;
}

/// Way 1: the lookup as an explicit stage machine.
class GraphWalkOp {
 public:
  struct State {
    const GraphNode* node;
    uint32_t hops_left;
  };

  GraphWalkOp(const GraphNode* starts, uint64_t count, uint64_t stride,
              uint32_t hops, uint64_t* sum)
      : starts_(starts), count_(count), stride_(stride), hops_(hops),
        sum_(sum) {}

  void Start(State& st, uint64_t idx) {
    st.node = &starts_[(idx * stride_) % count_];
    st.hops_left = hops_;
    amac::Prefetch(st.node);
  }

  amac::StepStatus Step(State& st) {
    *sum_ += st.node->value;
    if (--st.hops_left == 0) return amac::StepStatus::kDone;
    st.node = st.node->next;
    amac::Prefetch(st.node);
    return amac::StepStatus::kParked;
  }

 private:
  const GraphNode* starts_;
  uint64_t count_;
  uint64_t stride_;
  uint32_t hops_;
  uint64_t* sum_;
};

/// Way 2: the same lookup as a coroutine — straight-line code, the
/// compiler keeps the state.
amac::coro::Task GraphWalkTask(const GraphNode* node, uint32_t hops,
                               uint64_t* sum) {
  co_await amac::coro::PrefetchAwait{node};
  for (uint32_t h = 0; h < hops; ++h) {
    *sum += node->value;
    if (h + 1 == hops) break;
    node = node->next;
    co_await amac::coro::PrefetchAwait{node};
  }
}

}  // namespace

int main(int argc, char** argv) {
  amac::Flags flags;
  flags.DefineInt("lookups", 1 << 18, "number of pointer-chase lookups");
  flags.DefineInt("hops", 8, "dependent accesses per lookup");
  flags.DefineInt("inflight", 10, "in-flight lookups");
  flags.Parse(argc, argv);

  const uint64_t n = 1 << 23;  // 512 MB of nodes: beyond any LLC
  const auto graph = MakeGraph(n, 9);
  const uint64_t lookups = flags.GetInt("lookups");
  const uint32_t hops = static_cast<uint32_t>(flags.GetInt("hops"));
  const uint32_t m = static_cast<uint32_t>(flags.GetInt("inflight"));

  // Sequential schedule = the no-prefetch baseline.
  uint64_t sum_seq = 0;
  GraphWalkOp op_seq(graph.data(), n, 7919, hops, &sum_seq);
  amac::CycleTimer timer;
  amac::RunSequential(op_seq, lookups);
  const uint64_t seq_cycles = timer.Elapsed();

  // AMAC schedule over the same operation.
  uint64_t sum_amac = 0;
  GraphWalkOp op_amac(graph.data(), n, 7919, hops, &sum_amac);
  timer.Restart();
  const amac::EngineStats stats = amac::RunAmac(op_amac, lookups, m);
  const uint64_t amac_cycles = timer.Elapsed();

  // Coroutine interleaving of the same walk.
  uint64_t sum_coro = 0;
  timer.Restart();
  amac::coro::Interleave(
      [&](uint64_t idx) {
        return GraphWalkTask(&graph[(idx * 7919) % n], hops, &sum_coro);
      },
      lookups, m);
  const uint64_t coro_cycles = timer.Elapsed();

  std::printf("graph walk: %llu lookups x %u hops\n",
              static_cast<unsigned long long>(lookups), hops);
  std::printf("sequential: %6.1f cycles/lookup\n",
              static_cast<double>(seq_cycles) / lookups);
  std::printf("AMAC:       %6.1f cycles/lookup (%.2fx, %.1f steps/lookup)\n",
              static_cast<double>(amac_cycles) / lookups,
              static_cast<double>(seq_cycles) / amac_cycles,
              stats.StepsPerLookup());
  std::printf("coroutines: %6.1f cycles/lookup (%.2fx)\n",
              static_cast<double>(coro_cycles) / lookups,
              static_cast<double>(seq_cycles) / coro_cycles);
  if (sum_seq != sum_amac || sum_seq != sum_coro) {
    std::fprintf(stderr, "sums disagree!\n");
    return 1;
  }
  return 0;
}
