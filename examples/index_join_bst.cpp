// Index-join scenario (paper §4): probe a binary search tree index once per
// outer tuple — "resembling a join scenario with using an index".  Shows
// how the same AMAC pattern applies beyond hash tables, and how the gain
// grows with index depth.
#include <cstdio>

#include "bst/bst.h"
#include "bst/bst_search.h"
#include "common/cycle_timer.h"
#include "common/flags.h"
#include "join/sink.h"
#include "relation/relation.h"

int main(int argc, char** argv) {
  using namespace amac;

  Flags flags;
  flags.DefineInt("scale_log2", 20, "index size (log2 nodes)");
  flags.DefineInt("inflight", 10, "in-flight descents");
  flags.Parse(argc, argv);
  const uint64_t n = uint64_t{1} << flags.GetInt("scale_log2");
  const uint32_t m = static_cast<uint32_t>(flags.GetInt("inflight"));

  const Relation rows = MakeDenseUniqueRelation(n, 5);
  const BinarySearchTree index = BuildBst(rows);
  const BstStats shape = index.ComputeStats();
  std::printf("index: %llu nodes, height %llu, avg depth %.1f\n",
              static_cast<unsigned long long>(shape.num_nodes),
              static_cast<unsigned long long>(shape.height),
              shape.avg_depth);

  const Relation outer = MakeForeignKeyRelation(n, n, 6);

  CountChecksumSink base_sink;
  CycleTimer timer;
  BstSearchBaseline(index, outer, 0, outer.size(), base_sink);
  const uint64_t base_cycles = timer.Elapsed();

  CountChecksumSink amac_sink;
  timer.Restart();
  BstSearchAmac(index, outer, 0, outer.size(), m, amac_sink);
  const uint64_t amac_cycles = timer.Elapsed();

  std::printf("baseline: %.1f cycles/lookup, %llu matches\n",
              static_cast<double>(base_cycles) / outer.size(),
              static_cast<unsigned long long>(base_sink.matches()));
  std::printf("AMAC(M=%u): %.1f cycles/lookup, %llu matches, speedup %.2fx\n",
              m, static_cast<double>(amac_cycles) / outer.size(),
              static_cast<unsigned long long>(amac_sink.matches()),
              static_cast<double>(base_cycles) /
                  static_cast<double>(amac_cycles));
  if (base_sink.checksum() != amac_sink.checksum()) {
    std::fprintf(stderr, "checksum mismatch!\n");
    return 1;
  }
  return 0;
}
