// Skewed-join scenario: the workload class that motivates AMAC.
//
// Joins a Zipf-skewed fact table against a skewed dimension: bucket chains
// become wildly irregular, which breaks the static schedules of GP/SPP but
// not AMAC.  Prints a per-engine comparison plus the table's chain-shape
// statistics so the irregularity is visible.
#include <cstdio>

#include "common/flags.h"
#include "hashtable/chained_table.h"
#include "join/hash_join.h"
#include "relation/relation.h"

int main(int argc, char** argv) {
  using namespace amac;

  Flags flags;
  flags.DefineInt("scale_log2", 21, "relation cardinality (log2)");
  flags.DefineDouble("zipf", 0.75, "Zipf factor of the build relation keys");
  flags.DefineInt("inflight", 10, "in-flight lookups (AMAC M / GP group)");
  flags.Parse(argc, argv);

  const uint64_t n = uint64_t{1} << flags.GetInt("scale_log2");
  const double theta = flags.GetDouble("zipf");

  const Relation r = MakeZipfRelation(n, n, theta, 3);
  const Relation s = MakeForeignKeyRelation(n, n, 4);

  // Inspect the irregularity AMAC is designed for.
  ChainedHashTable table(n, ChainedHashTable::Options{});
  BuildTableUnsync(r, &table);
  const ChainStats chains = table.ComputeStats();
  std::printf("hash table: %llu buckets, avg %.2f nodes/chain, max %llu, "
              "top-1%% buckets hold %.0f%% of tuples\n",
              static_cast<unsigned long long>(chains.num_buckets),
              chains.avg_nodes_per_used_bucket,
              static_cast<unsigned long long>(chains.max_chain_nodes),
              chains.top1pct_tuple_share * 100);

  std::printf("%-10s %14s %14s\n", "policy", "probe cyc/tup", "speedup");
  double baseline_cycles = 0;
  Executor exec(ExecConfig{
      ExecPolicy::kSequential,
      SchedulerParams{static_cast<uint32_t>(flags.GetInt("inflight")), 1, 0},
      1, 0});
  for (ExecPolicy policy : kAllExecPolicies) {
    exec.set_policy(policy);
    const RunStats run = ProbePhase(exec, table, s, /*early_exit=*/true);
    if (policy == ExecPolicy::kSequential) {
      baseline_cycles = run.CyclesPerInput();
    }
    std::printf("%-10s %14.1f %13.2fx\n", ExecPolicyName(policy),
                run.CyclesPerInput(),
                baseline_cycles / run.CyclesPerInput());
  }
  return 0;
}
