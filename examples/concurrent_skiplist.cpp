// Concurrent skip list scenario: multiple threads build a shared skip list
// with AMAC inserts (latch try-acquire + park, §3.2), then search it with
// interleaved lookups.
#include <cstdio>

#include "common/flags.h"
#include "relation/relation.h"
#include "skiplist/skiplist.h"
#include "skiplist/skiplist_ops.h"

int main(int argc, char** argv) {
  using namespace amac;

  Flags flags;
  flags.DefineInt("scale_log2", 18, "elements (log2)");
  flags.DefineInt("threads", 4, "insert threads");
  flags.DefineInt("inflight", 8, "in-flight operations per thread");
  flags.Parse(argc, argv);
  const uint64_t n = uint64_t{1} << flags.GetInt("scale_log2");

  const Relation input = MakeDenseUniqueRelation(n, 7);
  SkipList list(n);

  Executor exec(ExecConfig{
      ExecPolicy::kAmac,
      SchedulerParams{static_cast<uint32_t>(flags.GetInt("inflight")), 8, 0},
      static_cast<uint32_t>(flags.GetInt("threads")), 0});

  const RunStats insert_stats = RunSkipListInsert(exec, &list, input);
  const SkipList::Stats shape = list.ComputeStats();
  std::printf("inserted %llu elements on %u threads in %.3fs "
              "(avg tower height %.2f, slab %.1f MB)\n",
              static_cast<unsigned long long>(insert_stats.outputs),
              exec.num_threads(), insert_stats.seconds, shape.avg_height,
              static_cast<double>(shape.slab_bytes_used) / (1 << 20));

  const Relation probe = MakeForeignKeyRelation(n, n, 8);
  const RunStats search_stats = RunSkipListSearch(exec, list, probe);
  std::printf("searched %llu keys: %llu matches, %.1f cycles/lookup\n",
              static_cast<unsigned long long>(search_stats.inputs),
              static_cast<unsigned long long>(search_stats.outputs),
              search_stats.CyclesPerInput());
  if (search_stats.outputs != n) {
    std::fprintf(stderr, "expected every key to match!\n");
    return 1;
  }
  return 0;
}
