// Quickstart: one Executor, a hash join, and the same join fused straight
// into a group-by as a single Pipeline.
//
//   build> cmake -B build -G Ninja && cmake --build build
//   run>   ./build/example_quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "groupby/agg_table.h"
#include "groupby/groupby_ops.h"
#include "join/hash_join.h"
#include "join/join_ops.h"
#include "relation/relation.h"

int main() {
  using namespace amac;

  // 1M-tuple build and probe relations with a foreign-key relationship.
  const uint64_t n = 1 << 20;
  const Relation r = MakeDenseUniqueRelation(n, /*seed=*/1);
  const Relation s = MakeForeignKeyRelation(n, n, /*seed=*/2);

  // One Executor owns the execution policy, the tuning knobs, and a
  // persistent thread team reused by every Run().  10 in-flight lookups
  // covers one L1-D MSHR file's worth of outstanding misses on most x86
  // cores.
  Executor exec(ExecConfig{ExecPolicy::kAmac, SchedulerParams{10, 1, 0},
                           /*num_threads=*/4, /*morsel_size=*/0});

  // A classic join through the executor.
  const JoinResult result = RunHashJoin(exec, r, s);
  std::printf("joined %llu x %llu tuples -> %llu matches\n",
              static_cast<unsigned long long>(result.build.inputs),
              static_cast<unsigned long long>(result.probe.inputs),
              static_cast<unsigned long long>(result.matches()));
  std::printf("build: %.1f cycles/tuple, probe: %.1f cycles/tuple\n",
              result.BuildCyclesPerTuple(), result.ProbeCyclesPerTuple());

  // The same probe fused into a group-by: one pipeline, no materialized
  // intermediate — a probe hit flows directly into the aggregation insert.
  ChainedHashTable table(n, ChainedHashTable::Options{});
  BuildPhase(exec, r, &table);
  AggregateTable agg(n + 1, AggregateTable::Options{});
  const RunStats fused =
      exec.Run(Scan(s).Then(Probe<true>(table)).Then(Aggregate(agg)));
  std::printf("fused join->group-by: %llu groups at %.1f Mtuples/s\n",
              static_cast<unsigned long long>(agg.CountGroups()),
              fused.Throughput() / 1e6);

  // Compare with the no-prefetch baseline (same executor, same pool).
  exec.set_policy(ExecPolicy::kSequential);
  const JoinResult base = RunHashJoin(exec, r, s);
  std::printf("baseline probe: %.1f cycles/tuple (AMAC speedup: %.2fx)\n",
              base.ProbeCyclesPerTuple(),
              base.ProbeCyclesPerTuple() / result.ProbeCyclesPerTuple());
  return 0;
}
