// Quickstart: join two relations with AMAC in a dozen lines.
//
//   build> cmake -B build -G Ninja && cmake --build build
//   run>   ./build/examples/quickstart
#include <cstdio>

#include "join/hash_join.h"
#include "relation/relation.h"

int main() {
  using namespace amac;

  // 1M-tuple build and probe relations with a foreign-key relationship.
  const uint64_t n = 1 << 20;
  const Relation r = MakeDenseUniqueRelation(n, /*seed=*/1);
  const Relation s = MakeForeignKeyRelation(n, n, /*seed=*/2);

  // Configure the AMAC engine: 10 in-flight lookups covers one L1-D MSHR
  // file's worth of outstanding misses on most x86 cores.
  JoinConfig config;
  config.policy = ExecPolicy::kAmac;
  config.inflight = 10;

  const JoinStats stats = RunHashJoin(r, s, config);
  std::printf("joined %llu x %llu tuples -> %llu matches\n",
              static_cast<unsigned long long>(stats.build_tuples),
              static_cast<unsigned long long>(stats.probe_tuples),
              static_cast<unsigned long long>(stats.matches));
  std::printf("build: %.1f cycles/tuple, probe: %.1f cycles/tuple\n",
              stats.BuildCyclesPerTuple(), stats.ProbeCyclesPerTuple());

  // Compare with the no-prefetch baseline.
  config.policy = ExecPolicy::kSequential;
  const JoinStats base = RunHashJoin(r, s, config);
  std::printf("baseline probe: %.1f cycles/tuple (AMAC speedup: %.2fx)\n",
              base.ProbeCyclesPerTuple(),
              base.ProbeCyclesPerTuple() / stats.ProbeCyclesPerTuple());
  return 0;
}
