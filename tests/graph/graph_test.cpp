// CSR graph and random-walk tests (the §8 graph-workloads extension).
#include "graph/csr.h"

#include <gtest/gtest.h>

#include "graph/random_walk.h"
#include "join/sink.h"

namespace amac {
namespace {

CsrGraph::Options SmallGraph(double theta = 0) {
  CsrGraph::Options opt;
  opt.num_vertices = 4096;
  opt.out_degree = 8;
  opt.target_theta = theta;
  opt.seed = 301;
  return opt;
}

TEST(CsrGraphTest, DegreeAndEdgeInvariants) {
  const CsrGraph graph(SmallGraph());
  EXPECT_EQ(graph.num_vertices(), 4096u);
  EXPECT_EQ(graph.num_edges(), 4096u * 8);
  for (uint64_t v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(graph.OutDegree(v), 8u);
    for (uint64_t e = graph.RowBegin(v); e < graph.RowEnd(v); ++e) {
      EXPECT_LT(graph.edges()[e], graph.num_vertices());
    }
  }
}

TEST(CsrGraphTest, OffsetsAreMonotone) {
  const CsrGraph graph(SmallGraph());
  for (uint64_t v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_LE(graph.offsets()[v], graph.offsets()[v + 1]);
  }
  EXPECT_EQ(graph.offsets()[0], 0u);
}

TEST(CsrGraphTest, SkewCreatesHubs) {
  const CsrGraph uniform(SmallGraph(0));
  const CsrGraph skewed(SmallGraph(0.99));
  EXPECT_GT(skewed.MaxInDegree(), uniform.MaxInDegree() * 3);
}

TEST(CsrGraphTest, DeterministicForSeed) {
  const CsrGraph a(SmallGraph());
  const CsrGraph b(SmallGraph());
  for (uint64_t e = 0; e < a.num_edges(); e += 97) {
    EXPECT_EQ(a.edges()[e], b.edges()[e]);
  }
}

TEST(RandomWalkTest, VisitCountsMatchHops) {
  const CsrGraph graph(SmallGraph());
  WalkSink sink;
  RandomWalkOp op(graph, /*hops=*/5, /*seed=*/1, sink);
  RunSequential(op, /*num_inputs=*/100);
  // Every vertex has out-degree 8 > 0, so each walker visits hops+1.
  EXPECT_EQ(sink.visits(), 100u * 6);
}

TEST(RandomWalkTest, ScheduleIndependentResults) {
  const CsrGraph graph(SmallGraph(0.75));
  uint64_t expected = 0;
  for (int schedule = 0; schedule < 4; ++schedule) {
    WalkSink sink;
    RandomWalkOp op(graph, 7, 2, sink);
    switch (schedule) {
      case 0: RunSequential(op, 500); break;
      case 1: RunAmac(op, 500, 10); break;
      case 2: RunGroupPrefetch(op, 500, 10, 4); break;
      case 3: RunSoftwarePipelined(op, 500, 4, 3); break;
    }
    if (schedule == 0) {
      expected = sink.checksum();
    } else {
      EXPECT_EQ(sink.checksum(), expected) << "schedule " << schedule;
    }
    EXPECT_EQ(sink.visits(), 500u * 8);
  }
}

TEST(RandomWalkTest, CoroutineWalkMatchesEngineWalk) {
  const CsrGraph graph(SmallGraph());
  WalkSink engine_sink;
  RandomWalkOp op(graph, 6, 3, engine_sink);
  RunAmac(op, 300, 8);

  WalkSink coro_sink;
  coro::Interleave(
      [&](uint64_t w) { return RandomWalkTask(graph, w, 6, 3, coro_sink); },
      300, 8);
  EXPECT_EQ(coro_sink.visits(), engine_sink.visits());
  EXPECT_EQ(coro_sink.checksum(), engine_sink.checksum());
}

TEST(RandomWalkTest, DeadEndsTerminateWalks) {
  // out_degree 0 is not generable; emulate dead ends with a 1-vertex graph
  // whose self-loops still bound the walk by hops.
  CsrGraph::Options opt;
  opt.num_vertices = 1;
  opt.out_degree = 1;
  const CsrGraph graph(opt);
  WalkSink sink;
  RandomWalkOp op(graph, 4, 4, sink);
  RunAmac(op, 10, 3);
  EXPECT_EQ(sink.visits(), 10u * 5);  // all walks stay on vertex 0
}

}  // namespace
}  // namespace amac
