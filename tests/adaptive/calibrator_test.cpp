// CalibrationEpisode (successive halving over synthetic costs) and the
// Calibrator cache: the tournament must find a planted winner, terminate
// in bounded measurement morsels, and cache hits must skip re-measurement.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "adaptive/calibrator.h"

namespace amac {
namespace {

/// Synthetic cost model: cycles-per-input per grid point, index-addressed.
uint64_t SyntheticCycles(size_t index, uint64_t inputs,
                         const std::vector<double>& cpi) {
  return static_cast<uint64_t>(cpi[index] * static_cast<double>(inputs));
}

/// Drive an episode to completion against a synthetic cost vector,
/// returning the number of measured morsels consumed.  Bounded, so a
/// non-terminating episode fails the done() expectations instead of
/// hanging the test.
uint64_t DriveToCompletion(CalibrationEpisode* episode,
                           const std::vector<double>& cpi,
                           uint64_t morsel_inputs = 1000) {
  for (uint32_t guard = 0; guard < 10000 && !episode->done(); ++guard) {
    const auto a = episode->Next();
    if (a.measured) {
      episode->Report(a.index, morsel_inputs,
                      SyntheticCycles(a.index, morsel_inputs, cpi));
    }
  }
  EXPECT_TRUE(episode->done()) << "episode failed to terminate";
  return episode->measured_morsels();
}

TEST(CalibrationEpisodeTest, FindsPlantedWinner) {
  // 8 candidates, costs 10..17 except index 5 planted at 2.
  std::vector<GridPoint> grid;
  std::vector<double> cpi;
  for (uint32_t i = 0; i < 8; ++i) {
    grid.push_back(GridPoint{ExecPolicy::kAmac, i + 1});
    cpi.push_back(i == 5 ? 2.0 : 10.0 + i);
  }
  CalibrationEpisode episode(grid, /*measure_morsels=*/1);
  DriveToCompletion(&episode, cpi);
  EXPECT_TRUE(episode.done());
  EXPECT_EQ(episode.best(), 5u);
  EXPECT_NEAR(episode.BestCyclesPerInput(), 2.0, 1e-9);
}

TEST(CalibrationEpisodeTest, MeasurementBudgetIsBounded) {
  // n + ceil(n/2) + ceil(n/4) + ... <= 2n + log2(n) measured morsels at
  // quota 1 (each ceil adds at most one extra over the geometric sum).
  std::vector<GridPoint> grid;
  std::vector<double> cpi;
  for (uint32_t i = 0; i < 17; ++i) {
    grid.push_back(GridPoint{ExecPolicy::kGroupPrefetch, i + 1});
    cpi.push_back(5.0 + i);
  }
  CalibrationEpisode episode(grid, 1);
  const uint64_t measured = DriveToCompletion(&episode, cpi);
  EXPECT_LE(measured, 2 * grid.size() + 5);
  EXPECT_GE(measured, grid.size());  // every candidate measured at least once
}

TEST(CalibrationEpisodeTest, SurvivorsAreTheFasterHalf) {
  std::vector<GridPoint> grid;
  std::vector<double> cpi;
  for (uint32_t i = 0; i < 8; ++i) {
    grid.push_back(GridPoint{ExecPolicy::kAmac, (i + 1) * 2});
    cpi.push_back(static_cast<double>(i + 1));  // index 0 fastest
  }
  CalibrationEpisode episode(grid, 1);
  DriveToCompletion(&episode, cpi);
  const std::vector<GridPoint> survivors = episode.Survivors();
  ASSERT_EQ(survivors.size(), 4u);
  // First-halving survivors are the 4 cheapest, best-first.
  for (size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(survivors[i].inflight, (i + 1) * 2) << i;
  }
}

TEST(CalibrationEpisodeTest, SingleCandidateStillMeasuresBaseline) {
  CalibrationEpisode episode({GridPoint{ExecPolicy::kSequential, 1}}, 2);
  std::vector<double> cpi{7.0};
  DriveToCompletion(&episode, cpi);
  EXPECT_TRUE(episode.done());
  EXPECT_EQ(episode.best(), 0u);
  EXPECT_NEAR(episode.BestCyclesPerInput(), 7.0, 1e-9);
  EXPECT_EQ(episode.measured_morsels(), 2u);
}

TEST(CalibrationEpisodeTest, RideAlongAssignmentsWhenRoundSaturated) {
  // With one candidate pending report, extra Next() calls must not block
  // or over-assign measurements.
  std::vector<GridPoint> grid{GridPoint{ExecPolicy::kAmac, 4},
                              GridPoint{ExecPolicy::kAmac, 8}};
  CalibrationEpisode episode(grid, 1);
  const auto a0 = episode.Next();
  const auto a1 = episode.Next();
  EXPECT_TRUE(a0.measured);
  EXPECT_TRUE(a1.measured);
  const auto ride = episode.Next();  // round fully assigned
  EXPECT_FALSE(ride.measured);
  episode.Report(a0.index, 100, 100);
  episode.Report(a1.index, 100, 500);
  EXPECT_TRUE(episode.done());
  EXPECT_EQ(episode.best(), a0.index);
}

TEST(CalibratorTest, GridCrossesPoliciesAndWidths) {
  AdaptiveConfig config;
  const std::vector<GridPoint> grid = Calibrator::Grid(config);
  // kSequential once + kVectorized once + 5 policies x 4 widths.
  EXPECT_EQ(grid.size(), 22u);
  EXPECT_EQ(grid[0].policy, ExecPolicy::kSequential);
  EXPECT_EQ(grid[1].policy, ExecPolicy::kVectorized);
  size_t coroutine_points = 0;
  size_t vec_amac_points = 0;
  for (const GridPoint& p : grid) {
    EXPECT_NE(p.policy, ExecPolicy::kAdaptive);
    if (p.policy == ExecPolicy::kCoroutine) ++coroutine_points;
    if (p.policy == ExecPolicy::kVectorizedAmac) ++vec_amac_points;
  }
  EXPECT_EQ(coroutine_points, 4u);
  EXPECT_EQ(vec_amac_points, 4u);
}

TEST(CalibratorTest, CacheHitSkipsReMeasurement) {
  Calibrator calibrator;
  const auto sig = WorkloadSignature::Make("probe", 60000, 16);
  EXPECT_FALSE(calibrator.Lookup(sig).has_value());
  EXPECT_EQ(calibrator.misses(), 1u);

  CalibrationResult result;
  result.winner = GridPoint{ExecPolicy::kAmac, 16};
  result.winner_cycles_per_input = 3.5;
  result.survivors = {result.winner, GridPoint{ExecPolicy::kCoroutine, 16}};
  calibrator.Store(sig, result);
  EXPECT_EQ(calibrator.entries(), 1u);

  const auto cached = calibrator.Lookup(sig);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(calibrator.hits(), 1u);
  EXPECT_TRUE(cached->winner == result.winner);
  EXPECT_NEAR(cached->winner_cycles_per_input, 3.5, 1e-9);
  EXPECT_EQ(cached->survivors.size(), 2u);
}

TEST(CalibratorTest, InvalidSignatureNeverCachesOrHits) {
  Calibrator calibrator;
  const WorkloadSignature invalid;  // op_kind == 0
  CalibrationResult result;
  result.winner = GridPoint{ExecPolicy::kAmac, 8};
  calibrator.Store(invalid, result);
  EXPECT_EQ(calibrator.entries(), 0u);
  EXPECT_FALSE(calibrator.Lookup(invalid).has_value());
  EXPECT_EQ(calibrator.hits(), 0u);
}

TEST(AdaptiveMorselSizeTest, GivesTheTournamentEnoughMorsels) {
  AdaptiveConfig config;
  const std::vector<GridPoint> grid = Calibrator::Grid(config);
  // A mid-size input must morselize into at least ~2x the grid, so one
  // full tournament fits with steady-state room to spare.
  for (const uint64_t inputs : {uint64_t{1} << 16, uint64_t{1} << 20}) {
    const uint64_t morsel = AdaptiveMorselSize(inputs, 4, config);
    ASSERT_GE(morsel, 1u);
    EXPECT_GE(inputs / morsel, 2 * grid.size()) << "inputs=" << inputs;
  }
}

TEST(AdaptiveMorselSizeTest, FloorAmortizesWidestWindow) {
  AdaptiveConfig config;
  // Tiny inputs: morsel must still cover the widest in-flight window's
  // fill/drain ramp (floor >= 4 x max width), not shrink to 1.
  const uint64_t morsel = AdaptiveMorselSize(512, 8, config);
  EXPECT_GE(morsel, 4ull * 32);
  EXPECT_EQ(AdaptiveMorselSize(0, 4, config), 1u);
}

}  // namespace
}  // namespace amac
