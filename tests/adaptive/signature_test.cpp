// WorkloadSignature: the calibration-cache key must be stable for equal
// signatures, distinguish the three components, and bucket cardinalities
// coarsely enough that near-equal inputs share a calibration.
#include <gtest/gtest.h>

#include "adaptive/signature.h"

namespace amac {
namespace {

TEST(WorkloadSignatureTest, DefaultIsInvalid) {
  const WorkloadSignature sig;
  EXPECT_FALSE(sig.valid());
}

TEST(WorkloadSignatureTest, MakeIsDeterministic) {
  const auto a = WorkloadSignature::Make("probe", 60000, 16);
  const auto b = WorkloadSignature::Make("probe", 60000, 16);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Key(), b.Key());
}

TEST(WorkloadSignatureTest, ComponentsDistinguishKeys) {
  const auto base = WorkloadSignature::Make("probe", 60000, 16);
  EXPECT_NE(base.Key(), WorkloadSignature::Make("walk", 60000, 16).Key());
  EXPECT_NE(base.Key(), WorkloadSignature::Make("probe", 60000, 32).Key());
  // A different cardinality BUCKET changes the key...
  EXPECT_NE(base.Key(), WorkloadSignature::Make("probe", 1000, 16).Key());
}

TEST(WorkloadSignatureTest, NearbyCardinalitiesShareABucket) {
  // 60k and 62k live in the same log2 bucket: one calibration serves both.
  EXPECT_EQ(WorkloadSignature::Make("probe", 60000, 16).Key(),
            WorkloadSignature::Make("probe", 62000, 16).Key());
}

TEST(WorkloadSignatureTest, CardinalityBucketEdges) {
  EXPECT_EQ(WorkloadSignature::CardinalityBucket(0), 0u);
  EXPECT_EQ(WorkloadSignature::CardinalityBucket(1), 1u);
  EXPECT_EQ(WorkloadSignature::CardinalityBucket(2), 2u);
  EXPECT_EQ(WorkloadSignature::CardinalityBucket(3), 2u);
  EXPECT_EQ(WorkloadSignature::CardinalityBucket(4), 3u);
  EXPECT_EQ(WorkloadSignature::CardinalityBucket((uint64_t{1} << 20) - 1),
            20u);
  EXPECT_EQ(WorkloadSignature::CardinalityBucket(uint64_t{1} << 20), 21u);
}

TEST(WorkloadSignatureTest, HashKindNeverReturnsReservedZero) {
  // The empty string hashes to FNV's offset basis, not 0; no short string
  // should produce the reserved "unknown" value either.
  EXPECT_NE(WorkloadSignature::HashKind(""), 0u);
  EXPECT_NE(WorkloadSignature::HashKind("a"), 0u);
  EXPECT_NE(WorkloadSignature::HashKind("probe"), 0u);
}

}  // namespace
}  // namespace amac
